package repro

// One benchmark per table and figure of the thesis's evaluation chapter,
// plus ablation benchmarks for the design choices catalogued in DESIGN.md.
// Each benchmark performs the full measurement for its experiment per
// iteration and reports the headline quantity through b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the evaluation.

import (
	"testing"

	"repro/internal/aoc"
	"repro/internal/bench"
	"repro/internal/dse"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/ir"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/topi"
)

func lenetLayers(b *testing.B) []*relay.Layer {
	b.Helper()
	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		b.Fatal(err)
	}
	return layers
}

// ---- Table 6.4 / Fig 6.1: the LeNet optimization ladder ----

func BenchmarkTable64LeNetLadder(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.LeNetLadder()
		if err != nil {
			b.Fatal(err)
		}
		best = res.FPSCE["S10SX"]["TVM-Autorun"]
	}
	b.ReportMetric(best, "fps-S10SX-best")
}

// ---- Fig 6.2: profiling breakdown ----

func BenchmarkFig62LeNetProfile(b *testing.B) {
	var mxWrite float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.LeNetProfile()
		if err != nil {
			b.Fatal(err)
		}
		mxWrite = res.Share["S10MX"]["Autorun"]["write"]
	}
	b.ReportMetric(mxWrite*100, "S10MX-write-%")
}

// ---- Table 6.5 is produced alongside Table 6.4 (area columns) ----

func BenchmarkTable65LeNetArea(b *testing.B) {
	layers := lenetLayers(b)
	var logic float64
	for i := 0; i < b.N; i++ {
		dep, err := host.BuildPipelined(layers, host.PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		logic, _, _ = dep.Design.Utilization()
	}
	b.ReportMetric(logic*100, "logic-%")
}

// ---- Table 6.6 / Fig 6.3: the 1x1 tiling sweep ----

func BenchmarkTable66TilingSweep(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.TilingSweep(fpga.A10)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Routed && r.Improvement > imp {
				imp = r.Improvement
			}
		}
	}
	b.ReportMetric(imp, "best-improvement-x")
}

// ---- Tables 6.9/6.10 / Fig 6.4: LeNet inference ----

func BenchmarkTable69LeNetInference(b *testing.B) {
	var fps float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.LeNetInference()
		if err != nil {
			b.Fatal(err)
		}
		fps = res.FPS["S10SX"]
	}
	b.ReportMetric(fps, "fps-S10SX")
}

// ---- Tables 6.11/6.12 / Fig 6.5: MobileNet inference ----

func BenchmarkTable611MobileNetInference(b *testing.B) {
	var fps float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.FoldedInference("mobilenetv1")
		if err != nil {
			b.Fatal(err)
		}
		fps = res.FPS["S10SX"]
	}
	b.ReportMetric(fps, "fps-S10SX")
}

// ---- Table 6.8: MobileNet per-operation profile ----

func BenchmarkTable68MobileNetOps(b *testing.B) {
	var pw float64
	for i := 0; i < b.N; i++ {
		prof, _, err := bench.OpsProfile("mobilenetv1")
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range prof["S10SX"] {
			if p.Class == "1x1 conv" {
				pw = p.GFLOPS
			}
		}
	}
	b.ReportMetric(pw, "1x1-GFLOPS-S10SX")
}

// ---- Tables 6.14/6.15 / Figs 6.6-6.7: ResNet inference ----

func BenchmarkTable614ResNet18Inference(b *testing.B) {
	var fps float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.FoldedInference("resnet18")
		if err != nil {
			b.Fatal(err)
		}
		fps = res.FPS["S10SX"]
	}
	b.ReportMetric(fps, "fps-S10SX")
}

func BenchmarkTable614ResNet34Inference(b *testing.B) {
	var fps float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.FoldedInference("resnet34")
		if err != nil {
			b.Fatal(err)
		}
		fps = res.FPS["S10SX"]
	}
	b.ReportMetric(fps, "fps-S10SX")
}

// ---- Table 6.16: ResNet per-operation profile ----

func BenchmarkTable616ResNetOps(b *testing.B) {
	var g33 float64
	for i := 0; i < b.N; i++ {
		prof, _, err := bench.OpsProfile("resnet34")
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range prof["S10SX"] {
			if p.Class == "3x3 conv" {
				g33 = p.GFLOPS
			}
		}
	}
	b.ReportMetric(g33, "3x3-GFLOPS-S10SX")
}

// ---- Fig 6.8 / §6.5: routing ----

func BenchmarkFig68RoutingMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RoutingMap(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Tables 6.17-6.19: related work ----

func BenchmarkTable617RelatedWork(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		in, err := bench.GatherRelatedWork()
		if err != nil {
			b.Fatal(err)
		}
		g = in.ResNet34Conv3x3GFLOPS
	}
	b.ReportMetric(g, "3x3-GFLOPS")
}

// ---- Appendix A: transfer speeds ----

func BenchmarkAppendixATransferSpeeds(b *testing.B) {
	var w float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.TransferSpeeds()
		w = rows[len(rows)-1].WriteGBps
	}
	b.ReportMetric(w, "GBps")
}

// ---- Ablations (DESIGN.md) ----

// convPair builds naive and optimized variants of the same convolution and
// returns cycle counts on the S10MX (no auto-unroll, so the schedule effects
// are fully visible).
func convCycles(b *testing.B, naive bool) int64 {
	b.Helper()
	spec := topi.ConvSpec{Name: "abl", C1: 16, H: 30, W: 30, C2: 16, F: 3, S: 1, Relu: true}
	sched := topi.ConvSched{Naive: naive}
	if !naive {
		sched = topi.OptSched(7, 2, 4)
	}
	op, err := topi.Conv2D(spec, sched, topi.ConvIO{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := aoc.Analyze(op.Kernel, fpga.S10MX, aoc.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	return m.Cycles(nil)
}

// BenchmarkAblationFusion measures the fused-activation + write-cache
// schedule against the naive global-scratchpad schedule (II=1 vs II=5 and
// de-serialized loops).
func BenchmarkAblationFusion(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		naive := convCycles(b, true)
		opt := convCycles(b, false)
		ratio = float64(naive) / float64(opt)
	}
	b.ReportMetric(ratio, "speedup-x")
}

// BenchmarkAblationCachedWrites isolates the write cache: the same fused
// loop nest with a global vs private accumulator.
func BenchmarkAblationCachedWrites(b *testing.B) {
	build := func(scope ir.Scope) int64 {
		acc := ir.NewBuffer("acc", scope, 1)
		in := ir.NewBuffer("in", ir.Global, 4096)
		out := ir.NewBuffer("out", ir.Global, 64)
		j, k := ir.V("j"), ir.V("k")
		z := []ir.Expr{ir.CInt(0)}
		body := ir.Loop(j, 64, ir.Seq(
			&ir.Store{Buf: acc, Index: z, Value: ir.CFloat(0)},
			ir.Loop(k, 64, &ir.Store{Buf: acc, Index: z,
				Value: ir.AddE(&ir.Load{Buf: acc, Index: z},
					&ir.Load{Buf: in, Index: []ir.Expr{ir.AddE(ir.MulE(j, ir.CInt(64)), k)}})}),
			&ir.Store{Buf: out, Index: []ir.Expr{j}, Value: &ir.Load{Buf: acc, Index: z}},
		))
		args := []*ir.Buffer{in, out}
		var pre ir.Stmt
		if scope == ir.Global {
			args = append([]*ir.Buffer{acc}, args...)
		} else {
			pre = &ir.Alloc{Buf: acc}
		}
		k2 := &ir.Kernel{Name: "abl", Args: args, Body: ir.Seq(pre, body)}
		m, err := aoc.Analyze(k2, fpga.S10MX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		return m.Cycles(nil)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = float64(build(ir.Global)) / float64(build(ir.Private))
	}
	b.ReportMetric(ratio, "speedup-x")
}

// BenchmarkAblationChannels compares the Channels bitstream against the
// buffered Unrolling bitstream for LeNet.
func BenchmarkAblationChannels(b *testing.B) {
	layers := lenetLayers(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		buffered, err := host.BuildPipelined(layers, host.PipeUnroll, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		chans, err := host.BuildPipelined(layers, host.PipeChannels, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		rb, err := buffered.Run(20, false, false)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := chans.Run(20, false, false)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rc.FPS / rb.FPS
	}
	b.ReportMetric(ratio, "speedup-x")
}

// BenchmarkAblationAutorun measures removing host dispatch from the
// weight-less kernels.
func BenchmarkAblationAutorun(b *testing.B) {
	layers := lenetLayers(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		chans, err := host.BuildPipelined(layers, host.PipeChannels, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		auto, err := host.BuildPipelined(layers, host.PipeAutorun, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := chans.Run(20, false, false)
		if err != nil {
			b.Fatal(err)
		}
		ra, err := auto.Run(20, false, false)
		if err != nil {
			b.Fatal(err)
		}
		ratio = ra.FPS / rc.FPS
	}
	b.ReportMetric(ratio, "speedup-x")
}

// BenchmarkAblationConcurrency measures one queue per kernel vs a single
// shared queue on the autorun bitstream.
func BenchmarkAblationConcurrency(b *testing.B) {
	layers := lenetLayers(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		dep, err := host.BuildPipelined(layers, host.PipeAutorun, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		serial, err := dep.Run(20, false, false)
		if err != nil {
			b.Fatal(err)
		}
		ce, err := dep.Run(20, true, false)
		if err != nil {
			b.Fatal(err)
		}
		ratio = ce.FPS / serial.FPS
	}
	b.ReportMetric(ratio, "speedup-x")
}

// BenchmarkAblationFPRelaxed measures the -fp-relaxed single-cycle
// accumulator on the optimized dense layer.
func BenchmarkAblationFPRelaxed(b *testing.B) {
	op, err := topi.Dense(topi.DenseSpec{Name: "abl", N: 400, M: 120, Bias: true}, false, 8, topi.ConvIO{})
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		relaxed, err := aoc.Analyze(op.Kernel, fpga.S10MX, aoc.Options{FPRelaxed: true, FPC: true})
		if err != nil {
			b.Fatal(err)
		}
		strict, err := aoc.Analyze(op.Kernel, fpga.S10MX, aoc.Options{FPRelaxed: false, FPC: true})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(strict.Cycles(nil)) / float64(relaxed.Cycles(nil))
	}
	b.ReportMetric(ratio, "speedup-x")
}

// BenchmarkAblationSymbolicCoalesce measures the Listing 5.11 stride-1
// workaround on the parameterized 1x1 convolution.
func BenchmarkAblationSymbolicCoalesce(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		with, err := topi.ConvParam("wa", 1, 1, topi.OptSched(7, 8, 4), true, true, false, true)
		if err != nil {
			b.Fatal(err)
		}
		without, err := topi.ConvParam("nowa", 1, 1, topi.OptSched(7, 8, 4), true, true, false, false)
		if err != nil {
			b.Fatal(err)
		}
		mw, err := aoc.Analyze(with.Op.Kernel, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		mo, err := aoc.Analyze(without.Op.Kernel, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		// Compare logic cost: the nonaligned replicated LSUs of the
		// non-workaround kernel.
		ratio = float64(mo.Area.ALUTs) / float64(mw.Area.ALUTs)
	}
	b.ReportMetric(ratio, "logic-bloat-x")
}

// ---- Batched inference: the multi-image throughput path ----

// BenchmarkBatchThroughput compares the seed per-image Infer loop (fresh
// machine, kernels recompiled every image) against the batch engine (warm
// per-worker arenas, pooled buffers, parallel workers) on a 16-image LeNet-5
// batch. The "serial" and "batch" sub-benchmarks measure wall-clock host
// throughput; `fpgacnn bench-batch` runs the same comparison and records it
// in BENCH_batch.json. The batch engine's contract is bit-identical outputs
// at >=2x the images/sec and >=5x fewer allocations per image.
func BenchmarkBatchThroughput(b *testing.B) {
	layers := lenetLayers(b)
	p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 16
	inputs := make([]*tensor.Tensor, batch)
	for i := range inputs {
		inputs[i] = nn.Digit(i % 10)
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, in := range inputs {
				if _, err := p.Infer(in); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "img/s")
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		var res *host.BatchResult
		for i := 0; i < b.N; i++ {
			r, err := p.RunBatch(inputs, host.BatchOptions{})
			if err != nil {
				b.Fatal(err)
			}
			res = r
		}
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "img/s")
		b.ReportMetric(res.ImagesPerSec, "modeled-img/s")
	})
}

// ---- §4.11: parallel design-space exploration ----

func dseBenchLayers(b *testing.B) []*relay.Layer {
	b.Helper()
	layers, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		b.Fatal(err)
	}
	return layers
}

// BenchmarkDSESerial is the baseline: one worker, memoization off — the cost
// of the pre-parallelization explorer over the MobileNetV1 search space.
func BenchmarkDSESerial(b *testing.B) {
	layers := dseBenchLayers(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dse.ExploreWith(layers, "mobilenetv1", fpga.S10SX, dse.Options{
			Workers: 1, MaxCandidates: 24, NoCache: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Evaluated == 0 {
			b.Fatal("no candidates evaluated")
		}
	}
}

// BenchmarkDSEParallel runs the same search with the production settings: a
// 4-worker pool and the compile cache. The ranking is bit-identical to the
// serial run; only the wall-time changes.
func BenchmarkDSEParallel(b *testing.B) {
	layers := dseBenchLayers(b)
	var hitRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dse.ExploreWith(layers, "mobilenetv1", fpga.S10SX, dse.Options{
			Workers: 4, MaxCandidates: 24,
		})
		if err != nil {
			b.Fatal(err)
		}
		hitRate = res.CacheHitRate()
	}
	b.ReportMetric(hitRate*100, "cache-hit-%")
}

// BenchmarkAblationParameterized compares the per-layer naive design against
// the parameterized folded design for LeNet (kernel count and throughput).
func BenchmarkAblationParameterized(b *testing.B) {
	layers := lenetLayers(b)
	cfg := host.FoldedConfig{
		Conv:       map[string]topi.ConvSched{"conv3x3s1": topi.OptSched(1, 1, 1)},
		DenseVec:   4,
		Workaround: true,
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		naive, err := host.BuildFolded(layers, host.FoldedConfig{Naive: true, Workaround: true}, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := host.BuildFolded(layers, cfg, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(naive.Design.Area.ALUTs) / float64(opt.Design.Area.ALUTs)
	}
	b.ReportMetric(ratio, "area-ratio-x")
}
