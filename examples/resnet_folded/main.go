// resnet_folded deploys ResNet-18 and ResNet-34 with folded execution,
// reproducing §6.4.3: the Stratix 10 boards run them (with the headline
// slowdown against the many-threaded CPU), while the Arria 10 cannot build
// the design for want of BRAM.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/aoc"
	"repro/internal/bench"
	"repro/internal/cpuref"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
)

func main() {
	depth := flag.Int("depth", 18, "ResNet depth: 18 or 34")
	flag.Parse()
	net := fmt.Sprintf("resnet%d", *depth)

	g, err := nn.ResNet(*depth)
	if err != nil {
		log.Fatal(err)
	}
	layers, err := relay.Lower(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ResNet-%d: %d fused layers, %.1fM params, %.2fG FLOPs\n\n",
		*depth, len(layers), float64(g.Params())/1e6, float64(g.FLOPs())/1e9)

	tf, threads, _ := cpuref.TFCPUFPS(net)
	gpu, _ := cpuref.GPUFPS(net)
	for _, board := range fpga.Boards {
		cfg := bench.ResNetConfig(board)
		dep, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
		if err != nil {
			log.Fatal(err)
		}
		if !dep.Design.Synthesizable() {
			fmt.Printf("%-6s %v\n", board.Name, dep.Design.Err())
			continue
		}
		r, err := dep.Run(3, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %5.2f FPS (%.1f GFLOPS, fmax %.0f MHz)  vs TF-CPU(%dT) %.2fx  vs GPU %.2fx\n",
			board.Name, r.FPS, r.FPS*float64(g.FLOPs())/1e9, dep.Design.FmaxMHz,
			threads, r.FPS/tf, r.FPS/gpu)
	}

	// The per-operation profile on the S10SX (Table 6.16).
	dep, err := host.BuildFolded(layers, bench.ResNetConfig(fpga.S10SX), fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := dep.ProfileOps()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-operation profile on the S10SX:")
	for _, p := range prof {
		fmt.Printf("  %-12s %5.1f%% of FLOPs  %6.1f GFLOPS  %5.1f%% of time\n",
			p.Class, p.FLOPShare*100, p.GFLOPS, p.TimeShare*100)
	}
}
