// new_operator demonstrates the thesis's extensibility claim (§1.1, §3.1):
// deploying a network with an operator the flow did not originally support —
// channel concatenation — requires only a compute definition and a schedule
// (here: a parameterized offset-copy kernel), not a hand-designed hardware
// template. The demo builds an Inception-style block, verifies it
// functionally against the native reference, and then deploys full GoogLeNet.
package main

import (
	"fmt"
	"log"

	"repro/internal/aoc"
	"repro/internal/bench"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/tensor"
)

func main() {
	// 1. A small inception-style block with four concatenated branches.
	g := relay.NewGraph()
	x := g.Input(8, 14, 14)
	b1 := g.ReLU(g.Conv(x, "b1_1x1", 8, 1, 1, 0))
	b2 := g.ReLU(g.Conv(g.ReLU(g.Conv(x, "b2_red", 4, 1, 1, 0)), "b2_3x3", 8, 3, 1, 1))
	b3 := g.ReLU(g.Conv(x, "b3_5x5", 4, 5, 1, 2))
	b4 := g.ReLU(g.Conv(g.MaxPool(x, 3, 1, 1), "b4_proj", 4, 1, 1, 0))
	y := g.Concat(b1, b2, b3, b4) // 24 channels
	y = g.Flatten(y)
	y = g.Dense(y, "fc", 6)
	y = g.Softmax(y)
	g.InitWeights(99)

	layers, err := relay.Lower(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inception block: %d fused layers (concat lowers to offset copies)\n", len(layers))

	dep, err := host.BuildFolded(layers, host.FoldedConfig{DenseVec: 6, Workaround: true},
		fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folded design: %d kernels, fmax %.0f MHz\n", len(dep.Design.Kernels), dep.Design.FmaxMHz)

	// 2. Functional verification against the native reference.
	in := nn.RandomImage(4, 8, 14, 14)
	want, err := relay.Execute(layers, in)
	if err != nil {
		log.Fatal(err)
	}
	got, err := dep.Infer(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: max |diff| vs reference = %.2e (class %d on both)\n",
		tensor.MaxAbsDiff(got, want), got.ArgMax())

	// 3. The same operator at full scale: GoogLeNet's nine inception modules.
	_, report, err := bench.GoogLeNetFeasibility()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report)
}
