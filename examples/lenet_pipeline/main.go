// lenet_pipeline walks the Table 6.4 optimization ladder on one board:
// the five bitstreams from the naive TVM schedule to the fully channelized,
// autorun, concurrently-executed pipeline, with the per-command profile and
// a sample of the generated OpenCL.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/aoc"
	"repro/internal/codegen"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
)

func main() {
	boardName := flag.String("board", "S10SX", "target board: S10MX, S10SX, A10")
	images := flag.Int("images", 40, "images to simulate per bitstream")
	flag.Parse()

	board, err := fpga.ByName(*boardName)
	if err != nil {
		log.Fatal(err)
	}
	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LeNet-5 optimization ladder on %s (%s)\n\n", board.Name, board.SKU)
	var base float64
	for _, v := range host.PipeVariants {
		dep, err := host.BuildPipelined(layers, v, board, aoc.DefaultOptions)
		if err != nil {
			log.Fatal(err)
		}
		serial, err := dep.Run(*images, false, false)
		if err != nil {
			log.Fatal(err)
		}
		ce, err := dep.Run(*images, true, false)
		if err != nil {
			log.Fatal(err)
		}
		if v == host.PipeBase {
			base = serial.FPS
		}
		logic, ram, dsp := dep.Design.Utilization()
		fmt.Printf("%-12s %7.0f FPS  %7.0f FPS [CE]  (%.2fx base)  logic %2.0f%% ram %2.0f%% dsp %2.0f%% fmax %.0f\n",
			v, serial.FPS, ce.FPS, ce.FPS/base, logic*100, ram*100, dsp*100, dep.Design.FmaxMHz)
	}

	// Profile the autorun bitstream with the event profiler (Fig 6.2).
	dep, err := host.BuildPipelined(layers, host.PipeAutorun, board, aoc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := dep.Run(10, false, true)
	if err != nil {
		log.Fatal(err)
	}
	total := prof.Breakdown["kernel"] + prof.Breakdown["write"] + prof.Breakdown["read"]
	fmt.Printf("\nevent profile (autorun): kernel %.0f%%, write %.0f%%, read %.0f%%\n",
		prof.Breakdown["kernel"]/total*100, prof.Breakdown["write"]/total*100, prof.Breakdown["read"]/total*100)

	// The execution timeline of the concurrent pipelined run.
	tl, err := dep.Run(3, true, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", tl.Timeline)

	// Show the generated OpenCL for the first convolution.
	for _, m := range dep.Design.Kernels {
		if m.Kernel.Name == "conv1" {
			src := codegen.Kernel(m.Kernel)
			fmt.Printf("\ngenerated OpenCL for conv1 (first %d lines):\n", 12)
			for i, line := range strings.Split(src, "\n") {
				if i >= 12 {
					break
				}
				fmt.Println("  " + line)
			}
		}
	}
}
