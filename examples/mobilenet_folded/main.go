// mobilenet_folded deploys MobileNetV1 with folded (time-multiplexed
// parameterized kernels) execution on a chosen board, reproducing the §6.3.2
// story: the naive per-layer design's fate, the parameterized kernel set,
// the per-operation profile and the comparison against the CPU baselines.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/aoc"
	"repro/internal/bench"
	"repro/internal/cpuref"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
)

func main() {
	boardName := flag.String("board", "S10SX", "target board: S10MX, S10SX, A10")
	flag.Parse()
	board, err := fpga.ByName(*boardName)
	if err != nil {
		log.Fatal(err)
	}

	g := nn.MobileNetV1()
	layers, err := relay.Lower(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MobileNetV1: %d fused layers, %.2fM params, %.2fG FLOPs\n\n",
		len(layers), float64(g.Params())/1e6, float64(g.FLOPs())/1e9)

	// The base (naive per-layer) design.
	baseDep, err := host.BuildFolded(layers, bench.NaiveFolded, board, aoc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	if baseDep.Design.Synthesizable() {
		rb, err := baseDep.Run(1, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("base bitstream: %d kernels, %.3f FPS\n", len(baseDep.Design.Kernels), rb.FPS)
	} else {
		fmt.Printf("base bitstream: %v\n", baseDep.Design.Err())
	}

	// The optimized folded deployment (Table 6.7 tiling for this board).
	cfg := bench.MobileNetConfig(board)
	dep, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	if !dep.Design.Synthesizable() {
		log.Fatal(dep.Design.Err())
	}
	logic, ram, dsp := dep.Design.Utilization()
	fmt.Printf("optimized bitstream: %d parameterized kernels for %d layers, logic %.0f%% ram %.0f%% dsp %.0f%%, fmax %.0f MHz\n",
		len(dep.Design.Kernels), len(layers), logic*100, ram*100, dsp*100, dep.Design.FmaxMHz)

	prof, err := dep.ProfileOps()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-operation profile (one forward pass):")
	for _, p := range prof {
		fmt.Printf("  %-12s %5.1f%% of FLOPs  %6.1f GFLOPS  %5.1f%% of time\n",
			p.Class, p.FLOPShare*100, p.GFLOPS, p.TimeShare*100)
	}

	r, err := dep.Run(4, false)
	if err != nil {
		log.Fatal(err)
	}
	tf, threads, _ := cpuref.TFCPUFPS("mobilenetv1")
	gpu, _ := cpuref.GPUFPS("mobilenetv1")
	tvm1, _ := cpuref.TVMCPUFPS("mobilenetv1", 1)
	fmt.Printf("\nthroughput: %.1f FPS (%.1f GFLOPS)\n", r.FPS, r.FPS*float64(g.FLOPs())/1e9)
	fmt.Printf("  vs Keras/TF-CPU (%d threads): %.2fx\n", threads, r.FPS/tf)
	fmt.Printf("  vs TVM-1T:                    %.2fx\n", r.FPS/tvm1)
	fmt.Printf("  vs TF-cuDNN (GTX 1060):       %.2fx\n", r.FPS/gpu)
}
