// tiling_explorer sweeps 1×1-convolution tiling configurations on a board
// (Table 6.6 / Fig 6.3), checks the §6.5 routing-failure cases, prints the
// Fig 6.8 congestion map for a failing configuration, and then runs the
// parallel design-space explorer (§4.11 future work) over the full tiling
// space, bounded by -workers/-timeout/-max.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/dse"
	"repro/internal/fpga"
	"repro/internal/nn"
	"repro/internal/relay"
)

func main() {
	boardName := flag.String("board", "A10", "board for the sweep: S10MX, S10SX, A10")
	netName := flag.String("net", "mobilenetv1", "network for the design-space exploration")
	workers := flag.Int("workers", 0, "explorer evaluation workers (0 = GOMAXPROCS)")
	maxCand := flag.Int("max", 24, "explorer candidate budget")
	timeout := flag.Duration("timeout", 0, "explorer wall-time bound (0 = none)")
	flag.Parse()
	board, err := fpga.ByName(*boardName)
	if err != nil {
		log.Fatal(err)
	}

	_, report, err := bench.TilingSweep(board)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	_, failures, err := bench.RoutingFailures()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(failures)

	m, err := bench.RoutingMap()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(m)

	// Design-space exploration over the same knobs the sweep visualizes:
	// candidate evaluation fans out over the worker pool, kernel compiles are
	// memoized, and the ranking is deterministic for any worker count.
	g, err := nn.ByName(*netName)
	if err != nil {
		log.Fatal(err)
	}
	layers, err := relay.Lower(g)
	if err != nil {
		log.Fatal(err)
	}
	opts := dse.Options{Workers: *workers, MaxCandidates: *maxCand}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Ctx = ctx
	}
	start := time.Now()
	res, err := dse.ExploreWith(layers, *netName, board, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== design-space exploration: %s on %s ==\n\n", *netName, board.Name)
	fmt.Printf("evaluated %d candidates, pruned %d, cache hit-rate %.0f%%, wall %.2fs\n",
		res.Evaluated, res.Pruned, res.CacheHitRate()*100, time.Since(start).Seconds())
	if res.Canceled {
		fmt.Println("search cancelled by -timeout; ranking the candidates evaluated so far")
	}
	best, err := res.Best()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best: 1x1 tiling %d/%d/%d, 3x3 tiling %d/%d, %.1f ms modeled forward pass\n",
		best.PW.W2vec, best.PW.C2vec, best.PW.C1vec,
		best.Conv33.W2vec, best.Conv33.C1vec, best.TimeUS/1e3)
}
