// tiling_explorer sweeps 1×1-convolution tiling configurations on a board
// (Table 6.6 / Fig 6.3), checks the §6.5 routing-failure cases, and prints
// the Fig 6.8 congestion map for a failing configuration.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/fpga"
)

func main() {
	boardName := flag.String("board", "A10", "board for the sweep: S10MX, S10SX, A10")
	flag.Parse()
	board, err := fpga.ByName(*boardName)
	if err != nil {
		log.Fatal(err)
	}

	_, report, err := bench.TilingSweep(board)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	_, failures, err := bench.RoutingFailures()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(failures)

	m, err := bench.RoutingMap()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(m)
}
