// Quickstart: deploy LeNet-5 through the full flow — graph, fusion, kernel
// generation, AOC compilation, host execution — classify a digit on the
// simulated Stratix 10 SX, and report throughput.
package main

import (
	"fmt"
	"log"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
)

func main() {
	// 1. A trained model enters the flow as a graph (here: LeNet-5 with
	//    synthetic weights) and is lowered with operator fusion.
	g := nn.LeNet5()
	layers, err := relay.Lower(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LeNet-5: %d fused layers, %d parameters, %d FLOPs/inference\n",
		len(layers), g.Params(), g.FLOPs())

	// 2. Generate one OpenCL kernel per layer (optimized schedules, CL
	//    channels, autorun pooling) and compile for the Stratix 10 SX.
	dep, err := host.BuildPipelined(layers, host.PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	logic, ram, dsp := dep.Design.Utilization()
	fmt.Printf("bitstream: %d kernels, logic %.0f%%, BRAM %.0f%%, DSP %.0f%%, fmax %.0f MHz\n",
		len(dep.Design.Kernels), logic*100, ram*100, dsp*100, dep.Design.FmaxMHz)

	// 3. Classify a digit: functional execution of the generated kernels on
	//    the IR interpreter (the bitstream-output check).
	digit := 7
	probs, err := dep.Infer(nn.Digit(digit))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input digit %d -> class %d (p=%.3f)\n", digit, probs.ArgMax(), probs.Data[probs.ArgMax()])

	// 4. Timed execution: pipelined inference with concurrent queues.
	r, err := dep.Run(40, true, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("throughput: %.0f FPS (%.0f us/image, %d images simulated)\n",
		r.FPS, r.ElapsedUS/float64(r.Images), r.Images)
}
