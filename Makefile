# Development entry points. CI (.github/workflows/ci.yml) runs exactly these
# targets, so a green `make lint build test race` locally means a green PR.

GO ?= go

.PHONY: all build test race lint bench fmt

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages: the parallel design-space explorer, the
# deployment builders it calls into, and the runtime event queue.
race:
	$(GO) test -race ./internal/dse/... ./internal/host/... ./internal/clrt/...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# Serial-vs-parallel explorer speedup (BenchmarkDSESerial / BenchmarkDSEParallel).
bench:
	$(GO) test -run=NONE -bench=BenchmarkDSE -benchtime=1x ./...

fmt:
	gofmt -w .
