# Development entry points. CI (.github/workflows/ci.yml) runs exactly these
# targets, so a green `make lint build test race` locally means a green PR.

GO ?= go

.PHONY: all build test race lint bench bench-batch bench-sim bench-serve bench-fleet bench-dse chaos trace serve-smoke fleet-smoke dse-smoke fmt

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages: the parallel design-space explorer, the
# deployment builders it calls into, the runtime event queue, the metrics
# registry the retried images publish into, the simulator (shared buffer
# pool + execution-tier stats across batch workers), and the continuous-
# batching server (mutex-serialized engine + worker pool + drain). The fleet
# layer (health-monitored devices + failover requeue) runs with -short so its
# chaos streams stay tractable under the detector.
race:
	$(GO) test -race ./internal/dse/... ./internal/host/... ./internal/clrt/... ./internal/trace/... ./internal/sim/... ./internal/serve/...
	$(GO) test -race -short ./internal/fleet/...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# Serial-vs-parallel explorer speedup (BenchmarkDSESerial / BenchmarkDSEParallel).
bench:
	$(GO) test -run=NONE -bench=BenchmarkDSE -benchtime=1x ./...

# Batched-inference throughput: serial per-image Infer vs the RunBatch engine
# on a 16-image LeNet-5 batch. Writes BENCH_batch.json (wall-clock ns/image
# and allocs/image for both paths, plus the modeled serial-vs-batch speedup);
# CI uploads it as a non-blocking artifact.
bench-batch:
	$(GO) run ./cmd/fpgacnn bench-batch -o BENCH_batch.json
	$(GO) test -run=NONE -bench=BenchmarkBatchThroughput -benchtime=1x .

# Execution-tier benchmark: interp vs closure vs vector on the LeNet conv and
# dense kernels plus one folded MobileNet layer. Writes BENCH_sim.json and
# prints benchstat-comparable BenchmarkSim/<kernel>/<tier> lines; CI runs it
# twice (non-blocking) and uploads both outputs.
bench-sim:
	$(GO) run ./cmd/fpgacnn bench-sim -o BENCH_sim.json

# Open-loop load benchmark for the continuous-batching server: the same QPS
# ramp over (batch-N, deadline-T) operating points including a batch-of-1
# baseline. Every figure is modeled on the virtual clock, so the JSON is
# byte-deterministic and CI diffs it against the checked-in copy.
bench-serve:
	$(GO) run ./cmd/fpgacnn bench-serve -o BENCH_serve.json

# Serve smoke: replay a modest fixed-QPS workload across two fault seeds and
# assert the drain zero-drop contract, the metrics ledger, and reference-
# matching answers on every degradation rung; then round-trip the real HTTP
# server including a drain with a request still queued.
serve-smoke:
	$(GO) run ./cmd/fpgacnn serve-smoke

# Fleet smoke: stream a fixed-QPS lenet5 workload into a two-board fleet and
# kill one board mid-stream, across two load seeds. The fleet CLI itself
# asserts the contracts — zero dropped requests, a well-formed failover
# ledger, and bit-identical answers against the cpuref reference — so any
# violation is a non-zero exit.
fleet-smoke:
	for seed in 1 2; do \
		$(GO) run ./cmd/fpgacnn fleet -boards s10sx:2 -seed $$seed \
			-kill-board s10sx-0 -kill-at-us 30000 || exit 1; \
	done

# Fleet benchmark: single board vs data-parallel replication vs pipeline
# sharding, plus a kill-mid-stream point. Fully modeled on the virtual clock,
# so BENCH_fleet.json is byte-deterministic and CI diffs it against the
# checked-in copy; bench-gates asserts the replication speedup floor.
bench-fleet:
	$(GO) run ./cmd/fpgacnn bench-fleet -o BENCH_fleet.json

# Guided-vs-exhaustive DSE benchmark: guided search must find the exhaustive
# joint-space best on LeNet with >= 10x fewer full evaluations, and at least
# match the thesis's hand-pruned tier on MobileNet while covering its 96768-
# point joint space with >= 100x leverage. Every figure is a pure function of
# (seed, space) — wall time goes to stdout only — so BENCH_dse.json is
# byte-deterministic and CI diffs it against the checked-in copy; bench-gates
# asserts the ratios.
bench-dse:
	$(GO) run ./cmd/fpgacnn bench-dse -o BENCH_dse.json

# DSE smoke: the guided explorer's determinism contract end to end. Two seeds,
# each run at 1 and 8 workers with the result JSON byte-compared (fixed seed +
# any worker count -> byte-identical result), then a cross-board transfer
# round trip (serialize A10's model + top-K, warm-start S10SX from it).
dse-smoke:
	for seed in 1 2; do \
		$(GO) run ./cmd/fpgacnn dse -dse-mode=guided -net mobilenetv1 -board S10SX \
			-dse-max 32 -dse-seed $$seed -dse-workers 1 -json /tmp/dse_$${seed}_w1.json || exit 1; \
		$(GO) run ./cmd/fpgacnn dse -dse-mode=guided -net mobilenetv1 -board S10SX \
			-dse-max 32 -dse-seed $$seed -dse-workers 8 -json /tmp/dse_$${seed}_w8.json || exit 1; \
		cmp /tmp/dse_$${seed}_w1.json /tmp/dse_$${seed}_w8.json || exit 1; \
	done
	$(GO) run ./cmd/fpgacnn dse -dse-mode=guided -net mobilenetv1 -board A10 \
		-dse-max 32 -transfer-out /tmp/dse_a10_state.json
	$(GO) run ./cmd/fpgacnn dse -dse-mode=guided -net mobilenetv1 -board S10SX \
		-dse-max 16 -transfer-in /tmp/dse_a10_state.json

# Chaos smoke: the fault-injection matrix (the Resilient/Watchdog/Ladder tests
# sweep seeds 1-3 internally) under the race detector, the static channel
# verifier over the example networks, and the chaos CLI across three seeds.
chaos:
	$(GO) test -race ./internal/fault/...
	$(GO) test -race -run 'Fault|Injected|Resilient|Watchdog|Ladder|Deadlock|Drain' \
		./internal/clrt/... ./internal/sim/... ./internal/host/...
	$(GO) run ./cmd/fpgacnn verify
	for seed in 1 2 3; do \
		$(GO) run ./cmd/fpgacnn chaos -fault-rate 0.1 -fault-seed $$seed -images 3 || exit 1; \
	done

# Trace smoke: export Chrome traces for both networks twice and require the
# repeats to be byte-identical (the exporter's determinism contract).
trace:
	$(GO) run ./cmd/fpgacnn trace -net lenet5 -images 4 -o /tmp/lenet5.trace.json
	$(GO) run ./cmd/fpgacnn trace -net lenet5 -images 4 -o /tmp/lenet5.trace2.json
	cmp /tmp/lenet5.trace.json /tmp/lenet5.trace2.json
	$(GO) run ./cmd/fpgacnn trace -net mobilenetv1 -images 2 -o /tmp/mobilenet.trace.json
	$(GO) run ./cmd/fpgacnn trace -net mobilenetv1 -images 2 -o /tmp/mobilenet.trace2.json
	cmp /tmp/mobilenet.trace.json /tmp/mobilenet.trace2.json

fmt:
	gofmt -w .
