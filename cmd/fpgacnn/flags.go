package main

// Centralized flag validation. Every subcommand funnels its cross-flag
// constraints through these helpers so conflicting combinations fail the
// same way everywhere: a typed *usageError, printed with the offending
// flags named, and exit status 2 (usage) instead of 1 (runtime failure).
// Before this, `-serial -batch 8` silently ignored -serial and
// `-fault-seed 7` without a rate was a no-op surprise.

import (
	"flag"
	"fmt"
	"strings"
)

// usageError is a flag/argument validation failure. main distinguishes it
// from runtime errors and exits 2, the conventional usage status.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, a ...any) *usageError {
	return &usageError{msg: fmt.Sprintf(format, a...)}
}

// flagWasSet reports whether the user passed the named flag explicitly
// (default values are invisible to fs.Visit).
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// validateFaultFlags enforces the injector's invariants: the rate is a
// probability, and an explicit seed without a rate is a silent no-op the
// user almost certainly did not intend.
func validateFaultFlags(fs *flag.FlagSet, rate float64, seedFlag, rateFlag string) error {
	if rate < 0 || rate > 1 {
		return usagef("-%s must be in [0,1], got %g", rateFlag, rate)
	}
	if flagWasSet(fs, seedFlag) && rate == 0 && !flagWasSet(fs, rateFlag) {
		return usagef("-%s has no effect without -%s > 0", seedFlag, rateFlag)
	}
	return nil
}

// validateRunShape enforces the run-path combinations: the batch engine and
// the per-image loop have disjoint knobs, and mixing them used to silently
// ignore one side.
func validateRunShape(batch, workers int, serial, noDoubleBuffer, profiling bool) error {
	if batch < 0 {
		return usagef("-batch must be >= 0, got %d", batch)
	}
	if batch == 0 {
		if workers > 0 {
			return usagef("-workers applies to the batch engine; add -batch N")
		}
		if noDoubleBuffer {
			return usagef("-no-double-buffer applies to the batch engine; add -batch N")
		}
		return nil
	}
	if serial {
		return usagef("-serial (single command queue) conflicts with -batch (parallel batch engine)")
	}
	if profiling {
		return usagef("-profiling serializes execution and conflicts with -batch; profile the per-image path instead")
	}
	return nil
}

// validateKillFlags enforces the chaos pair: -kill-at-us and -kill-board
// only mean something together, and the victim must be a device the fleet
// actually has.
func validateKillFlags(killBoard string, killAtUS float64, devices []string) error {
	if (killBoard == "") != (killAtUS <= 0) {
		return usagef("-kill-board and -kill-at-us must be set together (board %q, at %g us)", killBoard, killAtUS)
	}
	if killBoard == "" {
		return nil
	}
	for _, d := range devices {
		if d == killBoard {
			return nil
		}
	}
	return usagef("-kill-board %q names no configured device (have %s)", killBoard, strings.Join(devices, ", "))
}
