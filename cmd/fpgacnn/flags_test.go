package main

import (
	"errors"
	"flag"
	"testing"
)

func parseFS(t *testing.T, args ...string) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.Int64("fault-seed", 0, "")
	fs.Float64("fault-rate", 0, "")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestValidateFaultFlags(t *testing.T) {
	fs := parseFS(t, "-fault-rate", "0.5")
	if err := validateFaultFlags(fs, 0.5, "fault-seed", "fault-rate"); err != nil {
		t.Fatalf("valid rate rejected: %v", err)
	}
	fs = parseFS(t, "-fault-rate", "1.5")
	err := validateFaultFlags(fs, 1.5, "fault-seed", "fault-rate")
	var ue *usageError
	if !errors.As(err, &ue) {
		t.Fatalf("rate 1.5: got %v, want usageError", err)
	}
	// Seed without rate is a silent no-op — reject it.
	fs = parseFS(t, "-fault-seed", "7")
	if err := validateFaultFlags(fs, 0, "fault-seed", "fault-rate"); !errors.As(err, &ue) {
		t.Fatalf("seed without rate: got %v, want usageError", err)
	}
	// Explicit rate 0 with a seed is allowed (deliberately disabling).
	fs = parseFS(t, "-fault-seed", "7", "-fault-rate", "0")
	if err := validateFaultFlags(fs, 0, "fault-seed", "fault-rate"); err != nil {
		t.Fatalf("explicit zero rate rejected: %v", err)
	}
}

func TestValidateRunShape(t *testing.T) {
	cases := []struct {
		name           string
		batch, workers int
		serial, noDB   bool
		profiling      bool
		wantErr        bool
	}{
		{name: "per-image default", batch: 0},
		{name: "batch engine", batch: 8, workers: 4},
		{name: "workers without batch", workers: 4, wantErr: true},
		{name: "no-double-buffer without batch", noDB: true, wantErr: true},
		{name: "serial with batch", batch: 8, serial: true, wantErr: true},
		{name: "profiling with batch", batch: 8, profiling: true, wantErr: true},
		{name: "serial per-image", serial: true},
		{name: "negative batch", batch: -1, wantErr: true},
	}
	for _, c := range cases {
		err := validateRunShape(c.batch, c.workers, c.serial, c.noDB, c.profiling)
		if gotErr := err != nil; gotErr != c.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", c.name, err, c.wantErr)
		}
		if err != nil {
			var ue *usageError
			if !errors.As(err, &ue) {
				t.Errorf("%s: error %v is not a usageError", c.name, err)
			}
		}
	}
}

func TestValidateKillFlags(t *testing.T) {
	devs := []string{"s10sx-0", "s10sx-1", "cpuref"}
	if err := validateKillFlags("", 0, devs); err != nil {
		t.Fatalf("no kill: %v", err)
	}
	if err := validateKillFlags("s10sx-1", 5000, devs); err != nil {
		t.Fatalf("valid kill: %v", err)
	}
	var ue *usageError
	if err := validateKillFlags("s10sx-1", 0, devs); !errors.As(err, &ue) {
		t.Fatalf("board without time: %v", err)
	}
	if err := validateKillFlags("", 5000, devs); !errors.As(err, &ue) {
		t.Fatalf("time without board: %v", err)
	}
	if err := validateKillFlags("a10-0", 5000, devs); !errors.As(err, &ue) {
		t.Fatalf("unknown board: %v", err)
	}
}
