package main

// The dse and bench-dse subcommands: CLI access to both search tiers (the
// exhaustive §4.11 enumerator and the learned-cost-model guided annealer) and
// the guided-vs-exhaustive benchmark that CI gates on.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/dse"
	"repro/internal/fpga"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/trace"
)

// runDSE drives the design-space explorer. The default invocation reproduces
// the thesis-comparison table (exhaustive tier, every board); -net switches
// to a single network's joint schedule space, where -dse-mode picks the tier:
//
//	fpgacnn dse                                  # thesis table, all boards
//	fpgacnn dse -net lenet5 -board A10           # exhaustive joint search
//	fpgacnn dse -dse-mode=guided -net mobilenetv1 -board S10SX -dse-seed 1
//	fpgacnn dse -dse-mode=guided ... -transfer-out a10.json   # save state
//	fpgacnn dse -dse-mode=guided ... -transfer-in a10.json    # warm-start
func runDSE(args []string) error {
	fs := flag.NewFlagSet("dse", flag.ContinueOnError)
	mode := fs.String("dse-mode", "exhaustive", "search tier: exhaustive or guided")
	workers := fs.Int("dse-workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	timeout := fs.Duration("dse-timeout", 0, "bound on search wall-time (0 = none)")
	maxCand := fs.Int("dse-max", 0, "full-evaluation budget (0 = tier default; exhaustive joint: unbounded)")
	seed := fs.Int64("dse-seed", 1, "guided search seed (fixed seed -> byte-identical result)")
	netName := fs.String("net", "", "search one network's joint space instead of the thesis table")
	boardName := fs.String("board", "S10SX", "target board for -net searches")
	jsonOut := fs.String("json", "", "write the result JSON to this path (\"-\" = stdout)")
	transferIn := fs.String("transfer-in", "", "warm-start guided search from this serialized state")
	transferOut := fs.String("transfer-out", "", "serialize the fitted model + top-K history to this path")
	transferK := fs.Int("transfer-topk", 8, "ranked candidates kept in -transfer-out")
	metrics := fs.Bool("metrics", false, "print the metrics dump after the search")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mode != "exhaustive" && *mode != "guided" {
		return usagef("-dse-mode must be exhaustive or guided, got %q", *mode)
	}
	guided := *mode == "guided"
	if !guided && (*transferIn != "" || *transferOut != "") {
		return usagef("-transfer-in/-transfer-out require -dse-mode=guided")
	}
	if guided && *netName == "" {
		return usagef("-dse-mode=guided requires -net (the joint space of one network)")
	}
	opts := dse.Options{Workers: *workers, MaxCandidates: *maxCand}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Ctx = ctx
	}
	if *metrics {
		opts.Metrics = trace.NewRegistry()
	}
	dumpMetrics := func() {
		if *metrics {
			fmt.Println("\n== metrics ==")
			fmt.Print(opts.Metrics.DumpText())
		}
	}

	// Legacy invocation: the thesis-comparison experiment across all boards.
	if *netName == "" {
		_, rep, err := bench.DSEExperiment(opts)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		dumpMetrics()
		return nil
	}

	layers, board, err := lowerForDSE(*netName, *boardName)
	if err != nil {
		return err
	}
	t0 := time.Now()
	if guided {
		gopts := dse.GuidedOptions{Options: opts, Seed: *seed}
		if *transferIn != "" {
			t, err := dse.LoadTransfer(*transferIn)
			if err != nil {
				return err
			}
			gopts.Transfer = t
		}
		res, err := dse.ExploreGuided(layers, *netName, board, gopts)
		if err != nil {
			return err
		}
		printGuidedSummary(res, time.Since(t0))
		if *transferOut != "" {
			if err := dse.SaveTransfer(*transferOut, res.TransferState(*transferK)); err != nil {
				return err
			}
			fmt.Printf("wrote transfer state to %s\n", *transferOut)
		}
		dumpMetrics()
		return writeResultJSON(*jsonOut, res)
	}
	res, err := dse.ExploreJointWith(layers, *netName, board, opts)
	if err != nil {
		return err
	}
	printJointSummary(res, time.Since(t0))
	dumpMetrics()
	return writeResultJSON(*jsonOut, res)
}

// lowerForDSE resolves a network/board pair to its lowered layer sequence.
func lowerForDSE(net, boardName string) ([]*relay.Layer, *fpga.Board, error) {
	board, err := fpga.ByName(boardName)
	if err != nil {
		return nil, nil, err
	}
	g, err := nn.ByName(net)
	if err != nil {
		return nil, nil, err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return nil, nil, err
	}
	return layers, board, nil
}

// printJointSummary reports an exhaustive joint-space run. Wall time goes to
// stdout only — it never enters a Result or a JSON report.
func printJointSummary(res *dse.JointResult, wall time.Duration) {
	fmt.Printf("%s on %s: joint space %d points, %d evaluated, %d pruned (%d bandwidth, %d route)\n",
		res.Net, res.Board.Name, res.SpaceSize, res.Evaluated, res.Pruned, res.PrunedBandwidth, res.PrunedRoute)
	if best, err := res.Best(); err == nil {
		fmt.Printf("  best: %.1f us, fmax %.0f MHz, %d DSPs\n", best.TimeUS, best.FmaxMHz, best.DSPs)
	}
	fmt.Printf("  cache: %d hits / %d misses (%.0f%%), wall %.2fs\n",
		res.CacheHits, res.CacheMisses, res.CacheHitRate()*100, wall.Seconds())
}

// printGuidedSummary reports a guided run, including the model-quality gauge.
func printGuidedSummary(res *dse.GuidedResult, wall time.Duration) {
	fmt.Printf("%s on %s (guided, seed %d): joint space %d points, %d evaluated over %d generations, %d pruned (%d bandwidth, %d route)\n",
		res.Net, res.Board.Name, res.Seed, res.SpaceSize, res.Evaluated, res.Generations,
		res.Pruned, res.PrunedBandwidth, res.PrunedRoute)
	if len(res.Ranked) > 0 && res.Ranked[0].Synthesizable {
		b := res.Ranked[0]
		fmt.Printf("  best: %.1f us at %s (fmax %.0f MHz, %d DSPs)\n", b.TimeUS, b.Key, b.FmaxMHz, b.DSPs)
	}
	fmt.Printf("  model rank correlation: %.3f\n", res.RankCorr)
	if res.SpaceSize > 0 && res.Evaluated > 0 {
		fmt.Printf("  coverage: %d of %d points fully evaluated (%.1fx reduction)\n",
			res.Evaluated, res.SpaceSize, float64(res.SpaceSize)/float64(res.Evaluated))
	}
	fmt.Printf("  cache: %d hits / %d misses (%.0f%%), wall %.2fs\n",
		res.CacheHits, res.CacheMisses, res.CacheHitRate()*100, wall.Seconds())
}

// writeResultJSON marshals a result deterministically (encoding/json sorts
// map keys; the result carries no wall-clock fields).
func writeResultJSON(path string, v any) error {
	if path == "" {
		return nil
	}
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// dseBenchSide is one tier's figures in BENCH_dse.json.
type dseBenchSide struct {
	BestUS  float64 `json:"best_us"`
	Evals   int     `json:"evals"`
	BestKey string  `json:"best_key,omitempty"`
	// Guided-only model stats (omitted on the exhaustive side).
	Generations int     `json:"generations,omitempty"`
	RankCorr    float64 `json:"rank_corr,omitempty"`
}

// dseBenchNet compares the two tiers on one network. CI jq-gates Match and
// the eval ratios (see .github/workflows/ci.yml).
type dseBenchNet struct {
	Net       string       `json:"net"`
	Board     string       `json:"board"`
	SpaceSize int64        `json:"space_size"`
	Exhaust   dseBenchSide `json:"exhaustive"`
	Guided    dseBenchSide `json:"guided"`
	// EvalReductionX is exhaustive evals over guided evals (how much cheaper
	// guided was at equal-or-better quality).
	EvalReductionX float64 `json:"eval_reduction_x"`
	// SpaceOverGuidedEvalsX is the joint-space size over guided evals — the
	// coverage ratio a full sweep of the space would have cost.
	SpaceOverGuidedEvalsX float64 `json:"space_over_guided_evals_x"`
	// Match: guided found a configuration at least as fast as the exhaustive
	// tier's best.
	Match bool `json:"match"`
}

// dseBenchReport is the BENCH_dse.json schema. Every field is a pure function
// of (seed, search spaces): byte-identical across runs and worker counts.
type dseBenchReport struct {
	Seed int64 `json:"seed"`
	// Lenet: guided vs *exhaustive joint enumeration* of the same space —
	// ground truth on a space small enough to sweep.
	Lenet dseBenchNet `json:"lenet"`
	// Mobilenet: guided over the full joint space (too large to sweep) vs the
	// thesis's §4.11 exhaustive tier on its hand-pruned subspace.
	Mobilenet dseBenchNet `json:"mobilenet"`
}

// runBenchDSE measures guided search against exhaustive ground truth and
// writes BENCH_dse.json. Wall time is reported on stdout only, keeping the
// JSON byte-deterministic.
func runBenchDSE(args []string) error {
	fs := flag.NewFlagSet("bench-dse", flag.ContinueOnError)
	out := fs.String("o", "BENCH_dse.json", "output path for the JSON report (\"-\" = stdout)")
	seed := fs.Int64("dse-seed", 1, "guided search seed")
	workers := fs.Int("dse-workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep := dseBenchReport{Seed: *seed}

	// LeNet-5 on A10: the joint space is small enough to enumerate, so the
	// exhaustive sweep is ground truth and the gate is exact equality.
	lnLayers, a10, err := lowerForDSE("lenet5", "A10")
	if err != nil {
		return err
	}
	t0 := time.Now()
	lnEx, err := dse.ExploreJointWith(lnLayers, "lenet5", a10, dse.Options{Workers: *workers})
	if err != nil {
		return err
	}
	exWall := time.Since(t0)
	t0 = time.Now()
	lnGd, err := dse.ExploreGuided(lnLayers, "lenet5", a10, dse.GuidedOptions{
		Options: dse.Options{Workers: *workers, MaxCandidates: 32}, Seed: *seed,
	})
	if err != nil {
		return err
	}
	gdWall := time.Since(t0)
	rep.Lenet, err = benchNetRow(&lnEx.Result, lnGd)
	if err != nil {
		return err
	}
	rep.Lenet.SpaceSize = lnEx.SpaceSize
	rep.Lenet.SpaceOverGuidedEvalsX = float64(lnEx.SpaceSize) / float64(lnGd.Evaluated)
	fmt.Printf("lenet5/A10: exhaustive %d evals %.2fs, guided %d evals %.2fs: best %.1f vs %.1f us (%.1fx fewer evals, corr %.2f)\n",
		rep.Lenet.Exhaust.Evals, exWall.Seconds(), rep.Lenet.Guided.Evals, gdWall.Seconds(),
		rep.Lenet.Exhaust.BestUS, rep.Lenet.Guided.BestUS, rep.Lenet.EvalReductionX, rep.Lenet.Guided.RankCorr)

	// MobileNetV1 on S10SX: the joint space is deliberately too large to
	// sweep; the baseline is the thesis's exhaustive tier on its hand-pruned
	// subspace (24-candidate budget, the comparison-table setting) and the
	// gate is guided <= baseline with >= 100x coverage leverage.
	mnLayers, s10, err := lowerForDSE("mobilenetv1", "S10SX")
	if err != nil {
		return err
	}
	t0 = time.Now()
	mnEx, err := dse.ExploreWith(mnLayers, "mobilenetv1", s10, dse.Options{Workers: *workers, MaxCandidates: 24})
	if err != nil {
		return err
	}
	exWall = time.Since(t0)
	t0 = time.Now()
	mnGd, err := dse.ExploreGuided(mnLayers, "mobilenetv1", s10, dse.GuidedOptions{
		Options: dse.Options{Workers: *workers, MaxCandidates: 64}, Seed: *seed,
	})
	if err != nil {
		return err
	}
	gdWall = time.Since(t0)
	rep.Mobilenet, err = benchNetRow(mnEx, mnGd)
	if err != nil {
		return err
	}
	rep.Mobilenet.SpaceSize = mnGd.SpaceSize
	rep.Mobilenet.SpaceOverGuidedEvalsX = float64(mnGd.SpaceSize) / float64(mnGd.Evaluated)
	fmt.Printf("mobilenetv1/S10SX: thesis tier %d evals %.2fs, guided %d evals %.2fs over %d-point space: best %.1f vs %.1f us (%.0fx coverage leverage, corr %.2f)\n",
		rep.Mobilenet.Exhaust.Evals, exWall.Seconds(), rep.Mobilenet.Guided.Evals, gdWall.Seconds(),
		rep.Mobilenet.SpaceSize, rep.Mobilenet.Exhaust.BestUS, rep.Mobilenet.Guided.BestUS,
		rep.Mobilenet.SpaceOverGuidedEvalsX, rep.Mobilenet.Guided.RankCorr)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// benchNetRow folds one exhaustive/guided pair into a report row.
func benchNetRow(ex *dse.Result, gd *dse.GuidedResult) (dseBenchNet, error) {
	row := dseBenchNet{Net: gd.Net, Board: gd.Board.Name}
	exBest, err := ex.Best()
	if err != nil {
		return row, err
	}
	gdBest, err := gd.Best()
	if err != nil {
		return row, err
	}
	row.Exhaust = dseBenchSide{BestUS: exBest.TimeUS, Evals: ex.Evaluated}
	row.Guided = dseBenchSide{
		BestUS: gdBest.TimeUS, Evals: gd.Evaluated,
		Generations: gd.Generations, RankCorr: gd.RankCorr,
	}
	if len(gd.Ranked) > 0 && gd.Ranked[0].Synthesizable {
		row.Guided.BestKey = gd.Ranked[0].Key
	}
	if gd.Evaluated > 0 {
		row.EvalReductionX = float64(ex.Evaluated) / float64(gd.Evaluated)
	}
	row.Match = gdBest.TimeUS <= exBest.TimeUS
	return row, nil
}
