// Command fpgacnn drives the reproduction: it regenerates any table or
// figure from the thesis's evaluation chapter, dumps the generated OpenCL
// for a deployment, and runs the functional verification paths.
//
// Usage:
//
//	fpgacnn list                 # list experiments
//	fpgacnn all                  # run every experiment (the full evaluation)
//	fpgacnn <experiment>         # run one experiment (e.g. lenet-ladder)
//	fpgacnn codegen <net>        # print the generated OpenCL kernels
//	fpgacnn verify               # static channel checks + output vs reference
//	fpgacnn chaos [-fault-seed N] [-fault-rate P] [-watchdog-us D]
//	                             # run the degradation ladder under fault injection
//	fpgacnn dse [-dse-mode M] [-dse-workers N] [-dse-timeout D] [-dse-max N]
//	                             # parallel design-space exploration
//	                             # (-dse-mode=guided: learned-cost-model search)
//	fpgacnn bench-dse -o BENCH_dse.json
//	                             # guided vs exhaustive search benchmark
//	fpgacnn run -net <net> [-images N] [-metrics] [-trace F]
//	                             # timed run with optional metrics/trace export
//	fpgacnn run -batch N -workers K
//	                             # batched inference through the parallel engine
//	fpgacnn bench-batch -o BENCH_batch.json
//	                             # wall-clock serial-vs-batch benchmark, JSON out
//	fpgacnn bench-sim -o BENCH_sim.json
//	                             # interp vs closure vs vector tier benchmark
//	fpgacnn trace -o trace.json  # timed run, exported as a Chrome trace
//	fpgacnn serve -addr :8080    # continuous-batching HTTP inference server
//	fpgacnn bench-serve -o BENCH_serve.json
//	                             # open-loop load benchmark over batching points
//	fpgacnn serve-smoke          # drain/metrics invariants across fault seeds
//	fpgacnn fleet -boards s10sx:2 -kill-board s10sx-0 -kill-at-us 30000
//	                             # multi-board fleet under chaos (zero-drop gate)
//	fpgacnn bench-fleet -o BENCH_fleet.json
//	                             # 1-board vs replicated vs sharded fleet bench
//
// Subcommands that execute kernels functionally (run, verify, bench-batch,
// bench-sim) accept -exec=interp|closure|vector to pick the simulator's
// execution engine (default vector).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/aoc"
	"repro/internal/bench"
	"repro/internal/clrt"
	"repro/internal/codegen"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/ir"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/topi"
	"repro/internal/trace"
	"repro/internal/verify"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	var err error
	switch cmd {
	case "list":
		fmt.Println("experiments:")
		for _, e := range bench.Experiments {
			fmt.Println("  " + e)
		}
		fmt.Println("other commands: all, codegen <net>, verify, chaos, dse [-dse-workers N] [-dse-timeout D]")
	case "all":
		var rep string
		rep, err = bench.All()
		fmt.Print(rep)
	case "codegen":
		err = dumpCodegen(arg(2, "lenet5"))
	case "hostgen":
		err = dumpHostProgram(arg(2, "lenet5"))
	case "timeline":
		err = dumpTimeline(arg(2, "lenet5"), arg(3, "S10SX"))
	case "report":
		err = dumpReport(arg(2, "lenet5"), arg(3, "S10SX"))
	case "graph":
		err = dumpGraph(arg(2, "lenet5"))
	case "verify":
		err = runVerify(os.Args[2:])
	case "chaos":
		err = runChaos(os.Args[2:])
	case "dse":
		err = runDSE(os.Args[2:])
	case "bench-dse":
		err = runBenchDSE(os.Args[2:])
	case "run":
		err = runTimed(os.Args[2:])
	case "bench-batch":
		err = runBenchBatch(os.Args[2:])
	case "bench-sim":
		err = runBenchSim(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "bench-serve":
		err = runBenchServe(os.Args[2:])
	case "serve-smoke":
		err = runServeSmoke(os.Args[2:])
	case "fleet":
		err = runFleet(os.Args[2:])
	case "bench-fleet":
		err = runBenchFleet(os.Args[2:])
	default:
		var rep string
		rep, err = bench.Run(cmd)
		fmt.Print(rep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpgacnn:", err)
		// Flag/argument conflicts exit 2 (usage), runtime failures exit 1.
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func arg(i int, def string) string {
	if len(os.Args) > i {
		return os.Args[i]
	}
	return def
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fpgacnn <command>
  list | all | <experiment> | codegen <net> | hostgen <net> | report <net> <board> |
  timeline <net> <board> | graph <net> | verify [-exec E] |
  run [-net N] [-board B] [-images N] [-batch N] [-workers K] [-serial] [-profiling]
      [-exec E] [-metrics] [-trace F] [-cpuprofile F] [-memprofile F] |
  bench-batch [-net N] [-board B] [-batch N] [-workers K] [-o F] [-exec E]
      [-cpuprofile F] [-memprofile F] |
  bench-sim [-o F] [-cpuprofile F] [-memprofile F] |
  trace [-net N] [-board B] [-images N] [-o F] [-metrics] |
  chaos [-fault-seed N] [-fault-rate P] [-watchdog-us D] [-images N] [-metrics] [-trace F] |
  dse [-dse-mode exhaustive|guided] [-dse-workers N] [-dse-timeout D] [-dse-max N]
      [-dse-seed S] [-net N] [-board B] [-json F]
      [-transfer-in F] [-transfer-out F] [-transfer-topk K] [-metrics] |
  bench-dse [-dse-seed S] [-dse-workers N] [-o F] |
  serve [-addr A] [-net N] [-board B] [-fleet MIX] [-batch-n N] [-deadline-us T]
      [-workers K] [-tenant-queue Q] [-max-pending P] [-fault-seed S] [-fault-rate R] [-exec E] |
  bench-serve [-net N] [-board B] [-workers K] [-seed S] [-o F] [-exec E] |
  serve-smoke [-fault-rate R] [-exec E] |
  fleet [-net N] [-boards MIX] [-shard] [-qps Q] [-dur-us D] [-seed S]
      [-kill-board DEV -kill-at-us T] [-sticky-board DEV -sticky-dur-us D]
      [-brownout-board DEV -brownout-dur-us D -brownout-factor F] [-metrics] [-trace F] |
  bench-fleet [-seed S] [-o F]`)
}

// buildRunner resolves a network/board to a traced-run closure: pipelined
// for LeNet-5 (the thesis's channel pipeline), folded for everything else.
func buildRunner(net, boardName string, concurrent, profiling bool) (func(n int, tc *trace.Collector) (*host.RunResult, error), error) {
	board, err := fpga.ByName(boardName)
	if err != nil {
		return nil, err
	}
	g, err := nn.ByName(net)
	if err != nil {
		return nil, err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return nil, err
	}
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, board, aoc.DefaultOptions)
		if err != nil {
			return nil, err
		}
		return func(n int, tc *trace.Collector) (*host.RunResult, error) {
			return p.RunTraced(n, concurrent, profiling, tc)
		}, nil
	}
	cfg, err := bench.FoldedConfigFor(net, board)
	if err != nil {
		return nil, err
	}
	f, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
	if err != nil {
		return nil, err
	}
	return func(n int, tc *trace.Collector) (*host.RunResult, error) {
		return f.RunTraced(n, profiling, tc)
	}, nil
}

// printRunResult reports a timed run with the map-keyed sections (time by
// event kind, time by kernel) in sorted order, so output is deterministic.
func printRunResult(name string, r *host.RunResult) {
	fmt.Printf("%s: %d image(s), %.1f us simulated, %.1f FPS\n", name, r.Images, r.ElapsedUS, r.FPS)
	fmt.Println("  time by kind:")
	for _, k := range clrt.SortedKinds(r.Breakdown) {
		fmt.Printf("    %-10s %10.1f us\n", k, r.Breakdown[k])
	}
	fmt.Println("  time by kernel:")
	for _, k := range clrt.SortedKinds(r.PerKernelUS) {
		fmt.Printf("    %-14s %10.1f us\n", k, r.PerKernelUS[k])
	}
	fmt.Print(r.Timeline)
}

// writeChromeTrace writes the collected trace to path ("-" = stdout).
func writeChromeTrace(tc *trace.Collector, path string) error {
	if path == "-" {
		return tc.WriteChromeTrace(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tc.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startProfiles starts a CPU profile and/or schedules a heap profile per the
// pprof flag values; the returned stop function must run before exit (callers
// defer it). Empty paths are no-ops.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpgacnn: memprofile:", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fpgacnn: memprofile:", err)
			}
			f.Close()
		}
	}, nil
}

// profileFlags registers the -cpuprofile/-memprofile pair on a FlagSet and
// returns a starter to call after parsing; defer the stop function it
// returns. One helper instead of per-subcommand copies of the flag
// definitions and the startProfiles call.
func profileFlags(fs *flag.FlagSet) func() (func(), error) {
	cpu := fs.String("cpuprofile", "", "write a pprof CPU profile to this path")
	mem := fs.String("memprofile", "", "write a pprof heap profile to this path")
	return func() (func(), error) { return startProfiles(*cpu, *mem) }
}

// execFlag registers -exec on a FlagSet and returns an apply function (call
// after parsing) that sets the process-wide default execution tier for every
// simulator machine the subcommand creates.
func execFlag(fs *flag.FlagSet) func() error {
	s := fs.String("exec", sim.TierVector.String(), "execution engine: interp, closure or vector")
	return func() error {
		t, err := sim.ParseTier(*s)
		if err != nil {
			return err
		}
		sim.SetDefaultTier(t)
		return nil
	}
}

// batchDeployment is the surface the batch engine exposes on both deployment
// shapes (pipelined and folded).
type batchDeployment interface {
	Infer(*tensor.Tensor) (*tensor.Tensor, error)
	RunBatch([]*tensor.Tensor, host.BatchOptions) (*host.BatchResult, error)
}

// buildBatchDeployment resolves a network/board to a deployment that supports
// RunBatch, plus a deterministic input set of the requested size: MNIST
// digits for LeNet-5, seeded random images of the network's input shape
// otherwise.
func buildBatchDeployment(net, boardName string, n int) (batchDeployment, []*tensor.Tensor, error) {
	board, err := fpga.ByName(boardName)
	if err != nil {
		return nil, nil, err
	}
	g, err := nn.ByName(net)
	if err != nil {
		return nil, nil, err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return nil, nil, err
	}
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		if net == "lenet5" {
			inputs[i] = nn.Digit(i % 10)
		} else {
			inputs[i] = nn.RandomImage(uint64(i+1), layers[0].InShape...)
		}
	}
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, board, aoc.DefaultOptions)
		if err != nil {
			return nil, nil, err
		}
		return p, inputs, nil
	}
	cfg, err := bench.FoldedConfigFor(net, board)
	if err != nil {
		return nil, nil, err
	}
	f, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
	if err != nil {
		return nil, nil, err
	}
	return f, inputs, nil
}

// printBatchResult summarizes one RunBatch: modeled device time, throughput,
// how much transfer time double buffering hid, and the fault ledger.
func printBatchResult(name string, r *host.BatchResult) {
	fmt.Printf("%s: batch of %d image(s) on %d worker(s), %.1f us simulated, %.1f images/s\n",
		name, r.Images, r.Workers, r.ModeledUS, r.ImagesPerSec)
	fmt.Printf("  transfer overlap: %.1f of %.1f us hidden behind kernels (ratio %.2f)\n",
		r.Overlap.HiddenUS, r.Overlap.TransferUS, r.Overlap.Ratio)
	if len(r.Faults) > 0 || r.Retries > 0 {
		fmt.Printf("  injected faults: %d, retries: %d\n", len(r.Faults), r.Retries)
		for _, bf := range r.Faults {
			fmt.Printf("  fault: image %d: %s\n", bf.Image, bf.Record)
		}
	}
}

// runTimed is the plain timed-run subcommand with optional observability:
// -metrics prints the registry dump, -trace exports a Chrome trace,
// -cpuprofile/-memprofile write pprof profiles of the host process. With
// -batch N the images go through the parallel batch engine instead of the
// per-image loop.
func runTimed(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	net := fs.String("net", "lenet5", "network (see fpgacnn list)")
	boardName := fs.String("board", "S10SX", "target board")
	images := fs.Int("images", 3, "images to classify")
	batch := fs.Int("batch", 0, "run N images through the batch engine (0 = per-image path)")
	workers := fs.Int("workers", 0, "batch worker count (0 = GOMAXPROCS)")
	serial := fs.Bool("serial", false, "single shared command queue (pipelined nets only)")
	noDB := fs.Bool("no-double-buffer", false, "ablation: depth-1 rings in the batch engine")
	profiling := fs.Bool("profiling", false, "enable the OpenCL event profiler (serializes execution)")
	metrics := fs.Bool("metrics", false, "print the metrics dump after the run")
	traceOut := fs.String("trace", "", "write a Chrome trace JSON to this path (\"-\" = stdout)")
	applyExec := execFlag(fs)
	startProf := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateRunShape(*batch, *workers, *serial, *noDB, *profiling); err != nil {
		return err
	}
	if err := applyExec(); err != nil {
		return err
	}
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer stopProf()
	var tc *trace.Collector
	if *metrics || *traceOut != "" {
		tc = trace.NewCollector()
	}
	if *batch > 0 {
		dep, inputs, err := buildBatchDeployment(*net, *boardName, *batch)
		if err != nil {
			return err
		}
		res, err := dep.RunBatch(inputs, host.BatchOptions{
			Workers: *workers, Trace: tc, NoDoubleBuffer: *noDB,
		})
		if err != nil {
			return err
		}
		printBatchResult(*net, res)
		return finishObservability(tc, *traceOut, *metrics)
	}
	run, err := buildRunner(*net, *boardName, !*serial, *profiling)
	if err != nil {
		return err
	}
	r, err := run(*images, tc)
	if err != nil {
		return err
	}
	printRunResult(*net, r)
	return finishObservability(tc, *traceOut, *metrics)
}

// finishObservability emits the optional post-run artifacts shared by the
// run paths: a Chrome trace file and/or the metrics dump.
func finishObservability(tc *trace.Collector, traceOut string, metrics bool) error {
	if traceOut != "" {
		if err := writeChromeTrace(tc, traceOut); err != nil {
			return err
		}
		if traceOut != "-" {
			fmt.Printf("wrote Chrome trace to %s (open in ui.perfetto.dev)\n", traceOut)
		}
	}
	if metrics {
		fmt.Println("\n== metrics ==")
		fmt.Print(tc.Metrics().DumpText())
	}
	return nil
}

// batchBenchReport is the BENCH_batch.json schema: wall-clock host throughput
// of the serial per-image path vs the batch engine over the same images, plus
// the modeled device-side figures from the simulated run. CI uploads this as
// a non-blocking artifact (see .github/workflows/ci.yml).
type batchBenchReport struct {
	Net     string `json:"net"`
	Board   string `json:"board"`
	Batch   int    `json:"batch"`
	Workers int    `json:"workers"`
	Serial  struct {
		NsPerImage     float64 `json:"ns_per_image"`
		AllocsPerImage float64 `json:"allocs_per_image"`
		ImagesPerSec   float64 `json:"images_per_sec"`
	} `json:"serial"`
	Batched struct {
		NsPerImage     float64 `json:"ns_per_image"`
		AllocsPerImage float64 `json:"allocs_per_image"`
		ImagesPerSec   float64 `json:"images_per_sec"`
	} `json:"batch_engine"`
	SpeedupX    float64 `json:"speedup_images_per_sec_x"`
	AllocRatioX float64 `json:"alloc_reduction_x"`
	// Modeled figures come from the simulated runtime clock: ModeledSerial is
	// a single-stream depth-1 run (the seed host structure), Modeled is the
	// batch engine's worker pool with double buffering. Their ratio isolates
	// the host-architecture win from host-CPU effects, the way the thesis
	// reports its concurrent-queue speedups.
	ModeledSerial struct {
		US           float64 `json:"us"`
		ImagesPerSec float64 `json:"images_per_sec"`
	} `json:"modeled_serial"`
	Modeled struct {
		US           float64 `json:"us"`
		ImagesPerSec float64 `json:"images_per_sec"`
		OverlapRatio float64 `json:"overlap_ratio"`
	} `json:"modeled"`
	ModeledSpeedupX float64 `json:"modeled_speedup_x"`
}

// runBenchBatch measures wall-clock serial-vs-batch host throughput with
// testing.Benchmark and writes the JSON report. The serial baseline is the
// seed per-image Infer path (fresh machine, closures recompiled per image);
// the batch path is RunBatch over the same inputs.
func runBenchBatch(args []string) error {
	fs := flag.NewFlagSet("bench-batch", flag.ContinueOnError)
	net := fs.String("net", "lenet5", "network (see fpgacnn list)")
	boardName := fs.String("board", "S10SX", "target board")
	batch := fs.Int("batch", 16, "images per batch")
	workers := fs.Int("workers", 4, "batch worker count (0 = GOMAXPROCS)")
	out := fs.String("o", "BENCH_batch.json", "output path for the JSON report (\"-\" = stdout)")
	applyExec := execFlag(fs)
	startProf := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyExec(); err != nil {
		return err
	}
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer stopProf()
	dep, inputs, err := buildBatchDeployment(*net, *boardName, *batch)
	if err != nil {
		return err
	}
	// Steady-state measurement, symmetric for both paths: one warmup pass
	// (arena compile, pool fill), then `reps` timed passes over the batch
	// with allocation counts from the runtime's malloc counter.
	const reps = 3
	measure := func(pass func() error) (nsPerImage, allocsPerImage float64, err error) {
		if err := pass(); err != nil {
			return 0, 0, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if err := pass(); err != nil {
				return 0, 0, err
			}
		}
		dt := time.Since(t0)
		runtime.ReadMemStats(&after)
		images := float64(*batch * reps)
		return float64(dt.Nanoseconds()) / images, float64(after.Mallocs-before.Mallocs) / images, nil
	}
	serialNs, serialAllocs, err := measure(func() error {
		for _, in := range inputs {
			if _, err := dep.Infer(in); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("serial baseline: %w", err)
	}
	var modeled *host.BatchResult
	batchNs, batchAllocs, err := measure(func() error {
		res, err := dep.RunBatch(inputs, host.BatchOptions{Workers: *workers})
		if err == nil {
			modeled = res
		}
		return err
	})
	if err != nil {
		return fmt.Errorf("batch engine: %w", err)
	}
	// Modeled single-stream baseline: one worker, depth-1 rings — the seed
	// host structure on the simulated clock.
	modeledSerial, err := dep.RunBatch(inputs, host.BatchOptions{Workers: 1, NoDoubleBuffer: true})
	if err != nil {
		return err
	}
	rep := batchBenchReport{Net: *net, Board: *boardName, Batch: *batch, Workers: modeled.Workers}
	rep.Serial.NsPerImage = serialNs
	rep.Serial.AllocsPerImage = serialAllocs
	rep.Serial.ImagesPerSec = 1e9 / rep.Serial.NsPerImage
	rep.Batched.NsPerImage = batchNs
	rep.Batched.AllocsPerImage = batchAllocs
	rep.Batched.ImagesPerSec = 1e9 / rep.Batched.NsPerImage
	if rep.Batched.NsPerImage > 0 {
		rep.SpeedupX = rep.Serial.NsPerImage / rep.Batched.NsPerImage
	}
	if rep.Batched.AllocsPerImage > 0 {
		rep.AllocRatioX = rep.Serial.AllocsPerImage / rep.Batched.AllocsPerImage
	}
	rep.ModeledSerial.US = modeledSerial.ModeledUS
	rep.ModeledSerial.ImagesPerSec = modeledSerial.ImagesPerSec
	rep.Modeled.US = modeled.ModeledUS
	rep.Modeled.ImagesPerSec = modeled.ImagesPerSec
	rep.Modeled.OverlapRatio = modeled.Overlap.Ratio
	if modeledSerial.ImagesPerSec > 0 {
		rep.ModeledSpeedupX = modeled.ImagesPerSec / modeledSerial.ImagesPerSec
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	fmt.Printf("%s batch=%d workers=%d: serial %.2f ms/image (%.0f allocs), batch %.2f ms/image (%.0f allocs): %.1fx faster, %.1fx fewer allocs, %.1fx modeled\n",
		*net, *batch, rep.Workers,
		rep.Serial.NsPerImage/1e6, rep.Serial.AllocsPerImage,
		rep.Batched.NsPerImage/1e6, rep.Batched.AllocsPerImage,
		rep.SpeedupX, rep.AllocRatioX, rep.ModeledSpeedupX)
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// simBenchKernel is one row of BENCH_sim.json: per-engine wall-clock cost of
// one kernel plus the vectorizer's compile-time counters for it.
type simBenchKernel struct {
	Name               string             `json:"name"`
	NsPerOp            map[string]float64 `json:"ns_per_op"`
	VectorOverClosureX float64            `json:"vector_over_closure_x"`
	InterpOverVectorX  float64            `json:"interp_over_vector_x"`
	VectorLoops        int64              `json:"vector_loops"`
	FallbackLoops      int64              `json:"fallback_loops"`
	GemmLoops          int64              `json:"gemm_loops"`
	GemmRuns           int64              `json:"gemm_runs"`
}

type simBenchReport struct {
	Kernels []simBenchKernel `json:"kernels"`
}

// simBenchCase is one kernel under benchmark: its IR, scalar bindings and a
// binder that attaches deterministic input data to a fresh machine.
type simBenchCase struct {
	name    string
	kern    *ir.Kernel
	scalars map[*ir.Var]int64
	binds   func(m *sim.Machine)
}

// simBenchCases builds the benchmarked kernel set: the two LeNet-5
// convolutions and its big dense layer (thesis Table 6.5 schedules), plus one
// folded MobileNetV1 pointwise layer on the parameterized kernel.
func simBenchCases() ([]simBenchCase, error) {
	mkBinder := func(sizes map[*ir.Buffer]int) func(*sim.Machine) {
		return func(m *sim.Machine) {
			for b, n := range sizes {
				data := make([]float32, n)
				for i := range data {
					data[i] = float32(i%17)*0.25 - 1
				}
				m.Bind(b, data)
			}
		}
	}
	var cases []simBenchCase

	conv1, err := topi.Conv2D(topi.ConvSpec{Name: "conv1", C1: 1, H: 28, W: 28, C2: 6, F: 5, S: 1, Relu: true, Bias: true},
		topi.OptSched(6, 2, 1), topi.ConvIO{})
	if err != nil {
		return nil, err
	}
	cases = append(cases, simBenchCase{name: "lenet_conv1", kern: conv1.Kernel, binds: mkBinder(map[*ir.Buffer]int{
		conv1.In: 1 * 28 * 28, conv1.Weights: 6 * 1 * 5 * 5, conv1.Bias: 6, conv1.Out: 6 * 24 * 24})})

	conv2, err := topi.Conv2D(topi.ConvSpec{Name: "conv2", C1: 6, H: 12, W: 12, C2: 16, F: 5, S: 1, Relu: true, Bias: true},
		topi.OptSched(4, 4, 2), topi.ConvIO{})
	if err != nil {
		return nil, err
	}
	cases = append(cases, simBenchCase{name: "lenet_conv2", kern: conv2.Kernel, binds: mkBinder(map[*ir.Buffer]int{
		conv2.In: 6 * 12 * 12, conv2.Weights: 16 * 6 * 5 * 5, conv2.Bias: 16, conv2.Out: 16 * 8 * 8})})

	dense1, err := topi.Dense(topi.DenseSpec{Name: "dense1", N: 256, M: 120, Relu: true, Bias: true}, false, 32, topi.ConvIO{})
	if err != nil {
		return nil, err
	}
	cases = append(cases, simBenchCase{name: "lenet_dense1", kern: dense1.Kernel, binds: mkBinder(map[*ir.Buffer]int{
		dense1.In: 256, dense1.Weights: 120 * 256, dense1.Bias: 120, dense1.Out: 120})})

	// One folded MobileNet layer: the parameterized pointwise conv bound to
	// the 14x14x64 -> 128 shape; symbolic strides exercise the vectorizer's
	// per-entry coefficient evaluation.
	pw, err := topi.ConvParamAct("mn_pw", 1, 1, topi.ConvSched{W2vec: 7, C2vec: 4, C1vec: 4}, false, true, true, false, false)
	if err != nil {
		return nil, err
	}
	scalars, err := pw.Bind(64, 14, 14, 128)
	if err != nil {
		return nil, err
	}
	cases = append(cases, simBenchCase{name: "mobilenet_fold_pw", kern: pw.Op.Kernel, scalars: scalars,
		binds: mkBinder(map[*ir.Buffer]int{
			pw.Op.In: 64 * 14 * 14, pw.Op.Weights: 128 * 64, pw.Op.Bias: 128, pw.Op.Out: 128 * 14 * 14})})

	// One folded ResNet residual conv: 3x3 on a padded 16x16x128 input with
	// bias + skip-add + ReLU fused in the write-back. Exercises the GEMM
	// tier's im2col path and the full epilogue chain (bias row-broadcast,
	// residual column add, activation).
	rc, err := topi.ConvParamAct("rn_conv3", 3, 1, topi.ConvSched{W2vec: 7, C2vec: 4, C1vec: 4},
		true, false, true, true, false)
	if err != nil {
		return nil, err
	}
	rcScalars, err := rc.Bind(128, 16, 16, 128)
	if err != nil {
		return nil, err
	}
	cases = append(cases, simBenchCase{name: "resnet_fold_conv3", kern: rc.Op.Kernel, scalars: rcScalars,
		binds: mkBinder(map[*ir.Buffer]int{
			rc.Op.In: 128 * 16 * 16, rc.Op.Weights: 128 * 128 * 3 * 3, rc.Op.Bias: 128,
			rc.Op.Skip: 128 * 14 * 14, rc.Op.Out: 128 * 14 * 14})})
	return cases, nil
}

// runBenchSim benchmarks every execution tier on the same kernels and writes
// BENCH_sim.json. Stdout is benchstat-comparable (BenchmarkSim/<kernel>/<tier>
// lines), so two CI runs can be diffed with benchstat directly.
func runBenchSim(args []string) error {
	fs := flag.NewFlagSet("bench-sim", flag.ContinueOnError)
	out := fs.String("o", "BENCH_sim.json", "output path for the JSON report (\"-\" = stdout)")
	startProf := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer stopProf()
	cases, err := simBenchCases()
	if err != nil {
		return err
	}
	rep := simBenchReport{}
	for _, c := range cases {
		row := simBenchKernel{Name: c.name, NsPerOp: map[string]float64{}}
		for _, tier := range []sim.Tier{sim.TierInterp, sim.TierClosure, sim.TierVector} {
			m := sim.NewMachine()
			m.SetTier(tier)
			st := &sim.ExecStats{}
			m.SetStats(st)
			c.binds(m)
			// Warm run: compile outside the measured loop so the numbers are
			// steady-state execution, the regime RunBatch arenas run in.
			if err := m.Run(c.kern, c.scalars); err != nil {
				return fmt.Errorf("%s/%s: %w", c.name, tier, err)
			}
			if tier == sim.TierVector {
				// Counter capture after exactly one run keeps the report
				// deterministic (run-time counts scale with b.N otherwise).
				s := st.Snapshot()
				row.VectorLoops, row.FallbackLoops = s.VectorLoops, s.FallbackLoops
				row.GemmLoops, row.GemmRuns = s.GemmLoops, s.GemmRuns
			}
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := m.Run(c.kern, c.scalars); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			row.NsPerOp[tier.String()] = ns
			fmt.Printf("BenchmarkSim/%s/%s\t%8d\t%12.1f ns/op\n", c.name, tier, r.N, ns)
		}
		if v := row.NsPerOp["vector"]; v > 0 {
			row.VectorOverClosureX = row.NsPerOp["closure"] / v
			row.InterpOverVectorX = row.NsPerOp["interp"] / v
		}
		fmt.Printf("  %s: vector %.1fx over closure, %.1fx over interp (%d GEMM-lowered, %d nests vectorized, %d fallback)\n",
			c.name, row.VectorOverClosureX, row.InterpOverVectorX, row.GemmLoops, row.VectorLoops, row.FallbackLoops)
		rep.Kernels = append(rep.Kernels, row)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// runTrace runs a deployment and exports the Chrome trace — the
// machine-readable counterpart of the `timeline` subcommand. The output is
// byte-identical across repeated runs (the simulation is deterministic and
// the exporter orders everything canonically).
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	net := fs.String("net", "lenet5", "network (see fpgacnn list)")
	boardName := fs.String("board", "S10SX", "target board")
	images := fs.Int("images", 3, "images to classify")
	out := fs.String("o", "trace.json", "output path for the Chrome trace JSON (\"-\" = stdout)")
	metrics := fs.Bool("metrics", false, "print the metrics dump after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	run, err := buildRunner(*net, *boardName, true, false)
	if err != nil {
		return err
	}
	tc := trace.NewCollector()
	if _, err := run(*images, tc); err != nil {
		return err
	}
	if err := writeChromeTrace(tc, *out); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Printf("wrote Chrome trace for %s (%d image(s)) to %s (open in ui.perfetto.dev)\n", *net, *images, *out)
	}
	if *metrics {
		fmt.Println("\n== metrics ==")
		fmt.Print(tc.Metrics().DumpText())
	}
	return nil
}

// dumpCodegen prints the OpenCL program for a network's deployment: the
// pipelined LeNet kernels, or the parameterized folded kernel set.
func dumpCodegen(net string) error {
	g, err := nn.ByName(net)
	if err != nil {
		return err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return err
	}
	var design interface{ Model(string) *aoc.KernelModel }
	var models []*aoc.KernelModel
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		models = p.Design.Kernels
		design = p.Design
	} else {
		cfg, err := bench.FoldedConfigFor(net, fpga.S10SX)
		if err != nil {
			return err
		}
		f, err := host.BuildFolded(layers, cfg, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		models = f.Design.Kernels
		design = f.Design
	}
	_ = design
	var ks []*ir.Kernel
	for _, m := range models {
		ks = append(ks, m.Kernel)
	}
	fmt.Print(codegen.Program(ks))
	return nil
}

// dumpHostProgram prints the generated OpenCL C++ host program (§5.2).
func dumpHostProgram(net string) error {
	g, err := nn.ByName(net)
	if err != nil {
		return err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return err
	}
	var ks []*ir.Kernel
	concurrent := false
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		for _, m := range p.Design.Kernels {
			ks = append(ks, m.Kernel)
		}
		concurrent = true
	} else {
		cfg, err := bench.FoldedConfigFor(net, fpga.S10SX)
		if err != nil {
			return err
		}
		f, err := host.BuildFolded(layers, cfg, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		for _, m := range f.Design.Kernels {
			ks = append(ks, m.Kernel)
		}
	}
	fmt.Print(codegen.HostProgram(net, ks, concurrent))
	return nil
}

// dumpReport prints the AOC/Quartus-style optimization and fit reports for
// a network's deployment on a board.
func dumpReport(net, boardName string) error {
	board, err := fpga.ByName(boardName)
	if err != nil {
		return err
	}
	g, err := nn.ByName(net)
	if err != nil {
		return err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return err
	}
	var design *aoc.Design
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, board, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		design = p.Design
	} else {
		cfg, err := bench.FoldedConfigFor(net, board)
		if err != nil {
			return err
		}
		f, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		design = f.Design
	}
	fmt.Print(design.DesignReport())
	fmt.Println()
	for _, m := range design.Kernels {
		fmt.Print(m.OptimizationReport())
		fmt.Print(m.AreaReport())
		fmt.Println()
	}
	return nil
}

// dumpTimeline prints the execution Gantt chart for a deployment.
func dumpTimeline(net, boardName string) error {
	board, err := fpga.ByName(boardName)
	if err != nil {
		return err
	}
	g, err := nn.ByName(net)
	if err != nil {
		return err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return err
	}
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, board, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		r, err := p.Run(3, true, false)
		if err != nil {
			return err
		}
		fmt.Print(r.Timeline)
		return nil
	}
	cfg, err := bench.FoldedConfigFor(net, board)
	if err != nil {
		return err
	}
	f, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
	if err != nil {
		return err
	}
	r, err := f.Run(1, false)
	if err != nil {
		return err
	}
	fmt.Print(r.Timeline)
	return nil
}

// dumpGraph prints the Relay graph and the fused layer sequence.
func dumpGraph(net string) error {
	g, err := nn.ByName(net)
	if err != nil {
		return err
	}
	fmt.Println("== graph (pre-fusion) ==")
	fmt.Print(relay.DumpGraph(g))
	layers, err := relay.Lower(g)
	if err != nil {
		return err
	}
	fmt.Println("\n== fused layers (one kernel each) ==")
	fmt.Print(relay.DumpLayers(layers))
	return nil
}

// runVerify runs both verification paths: the static channel verifier over
// the example networks' kernel sets (the pre-compile check a real aoc flow
// would want, since a trip-count mismatch only shows up as a hang on
// hardware), then the host program's output-verification path — every LeNet
// bitstream variant executed on the IR interpreter against the native
// reference, over all ten digits.
func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	applyExec := execFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyExec(); err != nil {
		return err
	}
	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		return err
	}
	fmt.Println("== static channel verification ==")
	for _, v := range host.PipeVariants {
		p, err := host.BuildPipelined(layers, v, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		if err := printStaticVerdict("lenet5/"+v.String(), p.KernelSet()); err != nil {
			return err
		}
	}
	mnLayers, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		return err
	}
	cfg, err := bench.FoldedConfigFor("mobilenetv1", fpga.S10SX)
	if err != nil {
		return err
	}
	f, err := host.BuildFolded(mnLayers, cfg, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		return err
	}
	if err := printStaticVerdict("mobilenetv1/folded", f.KernelSet()); err != nil {
		return err
	}
	fmt.Println("\n== output verification ==")
	for _, v := range host.PipeVariants {
		p, err := host.BuildPipelined(layers, v, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		worst := 0.0
		for d := 0; d <= 9; d++ {
			in := nn.Digit(d)
			// Standalone path: the verify subcommand owns the machine, so the
			// golden model may fan its GEMMs out (bit-identical to serial).
			want, err := relay.ExecuteWorkers(layers, in, 0)
			if err != nil {
				return err
			}
			got, err := p.Infer(in)
			if err != nil {
				return err
			}
			if diff := tensor.MaxAbsDiff(got, want); diff > worst {
				worst = diff
			}
			if got.ArgMax() != want.ArgMax() {
				return fmt.Errorf("%s: classification mismatch on digit %d", v, d)
			}
		}
		fmt.Printf("%-12s OK  (10 digits, max |diff| = %.2e)\n", v.String(), worst)
	}
	fmt.Println(strings.Repeat("-", 44))
	fmt.Println("all bitstreams match the reference output")
	return nil
}

// printStaticVerdict runs the static channel verifier on one kernel set and
// prints a one-line verdict (plus any warnings). Errors abort verification.
func printStaticVerdict(name string, ks []*ir.Kernel) error {
	res := verify.Kernels(ks)
	for _, d := range res.Warnings() {
		fmt.Printf("%-22s warning: %s\n", name, d.Msg)
	}
	if errs := res.Errors(); len(errs) > 0 {
		for _, d := range errs {
			fmt.Printf("%-22s ERROR: %s\n", name, d.Msg)
		}
		return fmt.Errorf("%s: static channel verification failed", name)
	}
	fmt.Printf("%-22s OK  (%d kernels, %d warnings)\n", name, len(ks), len(res.Warnings()))
	return nil
}

// runChaos runs the example networks under deterministic fault injection:
// LeNet-5 through the full degradation ladder (with output checking), and
// MobileNetV1 through the resilient timed path on its tuned folded design.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	seed := fs.Int64("fault-seed", 1, "deterministic fault injector seed")
	rate := fs.Float64("fault-rate", 0.1, "per-probe fault probability in [0,1]")
	watchdog := fs.Float64("watchdog-us", 0, "per-image watchdog deadline in simulated microseconds (0 = none)")
	images := fs.Int("images", 5, "images to run per network")
	metrics := fs.Bool("metrics", false, "print the metrics dump after the runs")
	traceOut := fs.String("trace", "", "write a Chrome trace JSON to this path (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFaultFlags(fs, *rate, "fault-seed", "fault-rate"); err != nil {
		return err
	}
	if *watchdog < 0 {
		return usagef("-watchdog-us must be >= 0, got %g", *watchdog)
	}
	ctrl := host.RunControl{FaultSeed: *seed, FaultRate: *rate, WatchdogUS: *watchdog}
	var tc *trace.Collector
	if *metrics || *traceOut != "" {
		tc = trace.NewCollector()
		ctrl.Trace = tc
	}

	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		return err
	}
	rungs := host.PipelinedLadder(layers, fpga.S10SX, aoc.DefaultOptions)
	rep, err := host.RunLadder("lenet5", layers, rungs, nn.Digit(3), *images, ctrl)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())

	mnLayers, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		return err
	}
	cfg, err := bench.FoldedConfigFor("mobilenetv1", fpga.S10SX)
	if err != nil {
		return err
	}
	f, err := host.BuildFolded(mnLayers, cfg, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		return err
	}
	// Place the folded run after the ladder on the shared trace clock.
	ctrl.TraceOffsetUS = tc.MaxEndUS()
	r, stats, err := f.RunResilient(*images, ctrl)
	if err != nil {
		return fmt.Errorf("mobilenetv1: resilient run failed despite retries: %w", err)
	}
	fmt.Printf("\nmobilenetv1 (folded, timed): %d images in %.1f us simulated\n", *images, r.ElapsedUS)
	fmt.Printf("  injected faults: %d, retries: %d, watchdog trips: %d\n",
		len(stats.Faults), stats.Retries, stats.WatchdogTrips)
	for _, rec := range stats.Faults {
		fmt.Printf("  fault: %s\n", rec)
	}
	if *traceOut != "" {
		if err := writeChromeTrace(tc, *traceOut); err != nil {
			return err
		}
		if *traceOut != "-" {
			fmt.Printf("wrote Chrome trace to %s (open in ui.perfetto.dev)\n", *traceOut)
		}
	}
	if *metrics {
		fmt.Println("\n== metrics ==")
		fmt.Print(tc.Metrics().DumpText())
	}
	return nil
}
