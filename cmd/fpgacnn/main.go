// Command fpgacnn drives the reproduction: it regenerates any table or
// figure from the thesis's evaluation chapter, dumps the generated OpenCL
// for a deployment, and runs the functional verification paths.
//
// Usage:
//
//	fpgacnn list                 # list experiments
//	fpgacnn all                  # run every experiment (the full evaluation)
//	fpgacnn <experiment>         # run one experiment (e.g. lenet-ladder)
//	fpgacnn codegen <net>        # print the generated OpenCL kernels
//	fpgacnn verify               # static channel checks + output vs reference
//	fpgacnn chaos [-fault-seed N] [-fault-rate P] [-watchdog-us D]
//	                             # run the degradation ladder under fault injection
//	fpgacnn dse [-dse-workers N] [-dse-timeout D] [-dse-max N]
//	                             # parallel design-space exploration
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aoc"
	"repro/internal/bench"
	"repro/internal/codegen"
	"repro/internal/dse"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/ir"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/verify"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	var err error
	switch cmd {
	case "list":
		fmt.Println("experiments:")
		for _, e := range bench.Experiments {
			fmt.Println("  " + e)
		}
		fmt.Println("other commands: all, codegen <net>, verify, chaos, dse [-dse-workers N] [-dse-timeout D]")
	case "all":
		var rep string
		rep, err = bench.All()
		fmt.Print(rep)
	case "codegen":
		err = dumpCodegen(arg(2, "lenet5"))
	case "hostgen":
		err = dumpHostProgram(arg(2, "lenet5"))
	case "timeline":
		err = dumpTimeline(arg(2, "lenet5"), arg(3, "S10SX"))
	case "report":
		err = dumpReport(arg(2, "lenet5"), arg(3, "S10SX"))
	case "graph":
		err = dumpGraph(arg(2, "lenet5"))
	case "verify":
		err = runVerify()
	case "chaos":
		err = runChaos(os.Args[2:])
	case "dse":
		err = runDSE(os.Args[2:])
	default:
		var rep string
		rep, err = bench.Run(cmd)
		fmt.Print(rep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpgacnn:", err)
		os.Exit(1)
	}
}

func arg(i int, def string) string {
	if len(os.Args) > i {
		return os.Args[i]
	}
	return def
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fpgacnn <command>
  list | all | <experiment> | codegen <net> | hostgen <net> | report <net> <board> |
  timeline <net> <board> | graph <net> | verify |
  chaos [-fault-seed N] [-fault-rate P] [-watchdog-us D] [-images N] |
  dse [-dse-workers N] [-dse-timeout D] [-dse-max N]`)
}

// runDSE drives the parallel design-space explorer experiment with explicit
// control over worker count, candidate budget and wall-time.
func runDSE(args []string) error {
	fs := flag.NewFlagSet("dse", flag.ContinueOnError)
	workers := fs.Int("dse-workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	timeout := fs.Duration("dse-timeout", 0, "bound on search wall-time (0 = none)")
	maxCand := fs.Int("dse-max", 0, "candidate budget per board (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := dse.Options{Workers: *workers, MaxCandidates: *maxCand}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Ctx = ctx
	}
	_, rep, err := bench.DSEExperiment(opts)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}

// dumpCodegen prints the OpenCL program for a network's deployment: the
// pipelined LeNet kernels, or the parameterized folded kernel set.
func dumpCodegen(net string) error {
	g, err := nn.ByName(net)
	if err != nil {
		return err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return err
	}
	var design interface{ Model(string) *aoc.KernelModel }
	var models []*aoc.KernelModel
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		models = p.Design.Kernels
		design = p.Design
	} else {
		cfg, err := bench.FoldedConfigFor(net, fpga.S10SX)
		if err != nil {
			return err
		}
		f, err := host.BuildFolded(layers, cfg, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		models = f.Design.Kernels
		design = f.Design
	}
	_ = design
	var ks []*ir.Kernel
	for _, m := range models {
		ks = append(ks, m.Kernel)
	}
	fmt.Print(codegen.Program(ks))
	return nil
}

// dumpHostProgram prints the generated OpenCL C++ host program (§5.2).
func dumpHostProgram(net string) error {
	g, err := nn.ByName(net)
	if err != nil {
		return err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return err
	}
	var ks []*ir.Kernel
	concurrent := false
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		for _, m := range p.Design.Kernels {
			ks = append(ks, m.Kernel)
		}
		concurrent = true
	} else {
		cfg, err := bench.FoldedConfigFor(net, fpga.S10SX)
		if err != nil {
			return err
		}
		f, err := host.BuildFolded(layers, cfg, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		for _, m := range f.Design.Kernels {
			ks = append(ks, m.Kernel)
		}
	}
	fmt.Print(codegen.HostProgram(net, ks, concurrent))
	return nil
}

// dumpReport prints the AOC/Quartus-style optimization and fit reports for
// a network's deployment on a board.
func dumpReport(net, boardName string) error {
	board, err := fpga.ByName(boardName)
	if err != nil {
		return err
	}
	g, err := nn.ByName(net)
	if err != nil {
		return err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return err
	}
	var design *aoc.Design
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, board, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		design = p.Design
	} else {
		cfg, err := bench.FoldedConfigFor(net, board)
		if err != nil {
			return err
		}
		f, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		design = f.Design
	}
	fmt.Print(design.DesignReport())
	fmt.Println()
	for _, m := range design.Kernels {
		fmt.Print(m.OptimizationReport())
		fmt.Print(m.AreaReport())
		fmt.Println()
	}
	return nil
}

// dumpTimeline prints the execution Gantt chart for a deployment.
func dumpTimeline(net, boardName string) error {
	board, err := fpga.ByName(boardName)
	if err != nil {
		return err
	}
	g, err := nn.ByName(net)
	if err != nil {
		return err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return err
	}
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, board, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		r, err := p.Run(3, true, false)
		if err != nil {
			return err
		}
		fmt.Print(r.Timeline)
		return nil
	}
	cfg, err := bench.FoldedConfigFor(net, board)
	if err != nil {
		return err
	}
	f, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
	if err != nil {
		return err
	}
	r, err := f.Run(1, false)
	if err != nil {
		return err
	}
	fmt.Print(r.Timeline)
	return nil
}

// dumpGraph prints the Relay graph and the fused layer sequence.
func dumpGraph(net string) error {
	g, err := nn.ByName(net)
	if err != nil {
		return err
	}
	fmt.Println("== graph (pre-fusion) ==")
	fmt.Print(relay.DumpGraph(g))
	layers, err := relay.Lower(g)
	if err != nil {
		return err
	}
	fmt.Println("\n== fused layers (one kernel each) ==")
	fmt.Print(relay.DumpLayers(layers))
	return nil
}

// runVerify runs both verification paths: the static channel verifier over
// the example networks' kernel sets (the pre-compile check a real aoc flow
// would want, since a trip-count mismatch only shows up as a hang on
// hardware), then the host program's output-verification path — every LeNet
// bitstream variant executed on the IR interpreter against the native
// reference, over all ten digits.
func runVerify() error {
	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		return err
	}
	fmt.Println("== static channel verification ==")
	for _, v := range host.PipeVariants {
		p, err := host.BuildPipelined(layers, v, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		if err := printStaticVerdict("lenet5/"+v.String(), p.KernelSet()); err != nil {
			return err
		}
	}
	mnLayers, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		return err
	}
	cfg, err := bench.FoldedConfigFor("mobilenetv1", fpga.S10SX)
	if err != nil {
		return err
	}
	f, err := host.BuildFolded(mnLayers, cfg, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		return err
	}
	if err := printStaticVerdict("mobilenetv1/folded", f.KernelSet()); err != nil {
		return err
	}
	fmt.Println("\n== output verification ==")
	for _, v := range host.PipeVariants {
		p, err := host.BuildPipelined(layers, v, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return err
		}
		worst := 0.0
		for d := 0; d <= 9; d++ {
			in := nn.Digit(d)
			want, err := relay.Execute(layers, in)
			if err != nil {
				return err
			}
			got, err := p.Infer(in)
			if err != nil {
				return err
			}
			if diff := tensor.MaxAbsDiff(got, want); diff > worst {
				worst = diff
			}
			if got.ArgMax() != want.ArgMax() {
				return fmt.Errorf("%s: classification mismatch on digit %d", v, d)
			}
		}
		fmt.Printf("%-12s OK  (10 digits, max |diff| = %.2e)\n", v.String(), worst)
	}
	fmt.Println(strings.Repeat("-", 44))
	fmt.Println("all bitstreams match the reference output")
	return nil
}

// printStaticVerdict runs the static channel verifier on one kernel set and
// prints a one-line verdict (plus any warnings). Errors abort verification.
func printStaticVerdict(name string, ks []*ir.Kernel) error {
	res := verify.Kernels(ks)
	for _, d := range res.Warnings() {
		fmt.Printf("%-22s warning: %s\n", name, d.Msg)
	}
	if errs := res.Errors(); len(errs) > 0 {
		for _, d := range errs {
			fmt.Printf("%-22s ERROR: %s\n", name, d.Msg)
		}
		return fmt.Errorf("%s: static channel verification failed", name)
	}
	fmt.Printf("%-22s OK  (%d kernels, %d warnings)\n", name, len(ks), len(res.Warnings()))
	return nil
}

// runChaos runs the example networks under deterministic fault injection:
// LeNet-5 through the full degradation ladder (with output checking), and
// MobileNetV1 through the resilient timed path on its tuned folded design.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	seed := fs.Int64("fault-seed", 1, "deterministic fault injector seed")
	rate := fs.Float64("fault-rate", 0.1, "per-probe fault probability in [0,1]")
	watchdog := fs.Float64("watchdog-us", 0, "per-image watchdog deadline in simulated microseconds (0 = none)")
	images := fs.Int("images", 5, "images to run per network")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctrl := host.RunControl{FaultSeed: *seed, FaultRate: *rate, WatchdogUS: *watchdog}

	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		return err
	}
	rungs := host.PipelinedLadder(layers, fpga.S10SX, aoc.DefaultOptions)
	rep, err := host.RunLadder("lenet5", layers, rungs, nn.Digit(3), *images, ctrl)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())

	mnLayers, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		return err
	}
	cfg, err := bench.FoldedConfigFor("mobilenetv1", fpga.S10SX)
	if err != nil {
		return err
	}
	f, err := host.BuildFolded(mnLayers, cfg, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		return err
	}
	r, stats, err := f.RunResilient(*images, ctrl)
	if err != nil {
		return fmt.Errorf("mobilenetv1: resilient run failed despite retries: %w", err)
	}
	fmt.Printf("\nmobilenetv1 (folded, timed): %d images in %.1f us simulated\n", *images, r.ElapsedUS)
	fmt.Printf("  injected faults: %d, retries: %d, watchdog trips: %d\n",
		len(stats.Faults), stats.Retries, stats.WatchdogTrips)
	for _, rec := range stats.Faults {
		fmt.Printf("  fault: %s\n", rec)
	}
	return nil
}
