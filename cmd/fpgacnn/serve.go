package main

// The serving surface: `fpgacnn serve` (long-running HTTP server with
// graceful drain), `fpgacnn bench-serve` (deterministic open-loop load
// benchmark on the simulated clock, writes BENCH_serve.json), and
// `fpgacnn serve-smoke` (the blocking CI gate: drain zero-drop + metrics
// invariants across fault seeds, plus an HTTP round trip).

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// serveFlags registers the shared server-shape flags and returns a builder
// for the serve.Config they describe.
func serveFlags(fs *flag.FlagSet) func() serve.Config {
	net_ := fs.String("net", "lenet5", "network (see fpgacnn list)")
	board := fs.String("board", "S10SX", "target board")
	batchN := fs.Int("batch-n", 8, "dynamic batch size bound N")
	deadline := fs.Float64("deadline-us", 500, "batch formation deadline T in microseconds")
	workers := fs.Int("workers", 2, "parallel service lanes")
	tenantQ := fs.Int("tenant-queue", 64, "per-tenant bounded queue depth (shed 429 beyond)")
	maxPending := fs.Int("max-pending", 128, "global pending bound (shed 503 beyond)")
	dispatch := fs.Float64("dispatch-us", 150, "modeled host overhead per device dispatch")
	seed := fs.Int64("fault-seed", 0, "deterministic fault injector seed")
	rate := fs.Float64("fault-rate", 0, "per-probe fault probability in [0,1]")
	return func() serve.Config {
		return serve.Config{
			Net: *net_, Board: *board, BatchN: *batchN, DeadlineUS: *deadline,
			Workers: *workers, TenantQueue: *tenantQ, MaxPending: *maxPending,
			DispatchUS: *dispatch, FaultSeed: *seed, FaultRate: *rate,
		}
	}
}

// runServe is the long-running server: HTTP/JSON ingest on -addr, live
// /metrics and /trace, graceful drain on SIGTERM/SIGINT.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	fleetBoards := fs.String("fleet", "", "serve through a multi-board fleet, e.g. \"s10sx:2\" or \"a10:1,s10sx:1\" (empty = single-board ladder)")
	mkCfg := serveFlags(fs)
	applyExec := execFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyExec(); err != nil {
		return err
	}
	cfg := mkCfg()
	if err := validateFaultFlags(fs, cfg.FaultRate, "fault-seed", "fault-rate"); err != nil {
		return err
	}
	s, err := newServerMaybeFleet(cfg, *fleetBoards)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	eff := s.Config()
	fmt.Printf("fpgacnn serve: %s on %s at http://%s\n", eff.Net, eff.Board, ln.Addr())
	fmt.Printf("  batching: up to %d images or %.0f us, %d workers; tenant queue %d, max pending %d\n",
		eff.BatchN, eff.DeadlineUS, eff.Workers, eff.TenantQueue, eff.MaxPending)
	fmt.Printf("  endpoints: POST /v1/infer  GET /metrics  GET /trace  GET /healthz\n")
	fmt.Printf("  SIGTERM drains gracefully (zero dropped in-flight requests)\n")
	if err := s.Serve(ctx, ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	fmt.Println("fpgacnn serve: drained and stopped")
	return nil
}

// benchInput returns the deterministic request-image generator for a net:
// MNIST digits cycling for LeNet-5, seeded random images otherwise.
func benchInput(cfg serve.Config, tc *trace.Collector) (func(i int) *tensor.Tensor, *serve.LadderRunner, error) {
	runner, err := serve.NewLadderRunner(cfg, tc)
	if err != nil {
		return nil, nil, err
	}
	shape := runner.InShape()
	return func(i int) *tensor.Tensor {
		if cfg.Net == "lenet5" {
			return nn.Digit(i % 10)
		}
		return nn.RandomImage(uint64(i+1), shape...)
	}, runner, nil
}

// serveBenchPoint is one (batch-N, deadline-T) operating point in
// BENCH_serve.json.
type serveBenchPoint struct {
	BatchN     int     `json:"batch_n"`
	DeadlineUS float64 `json:"deadline_us"`
	loadgen.Summary
}

// serveBenchReport is the BENCH_serve.json schema. Every figure is simulated
// (virtual clock + modeled device/dispatch time), so the file is
// byte-deterministic and CI can cmp it against the checked-in copy.
type serveBenchReport struct {
	Net        string            `json:"net"`
	Board      string            `json:"board"`
	Workers    int               `json:"workers"`
	DispatchUS float64           `json:"dispatch_us"`
	Profile    loadgen.Profile   `json:"profile"`
	Points     []serveBenchPoint `json:"points"`
	// DynamicOverBatch1X compares the best dynamic point's sustained QPS to
	// batch-of-1 serving at the same worker count — the number the bench
	// gate enforces to stay > 1.
	DynamicOverBatch1X float64 `json:"dynamic_over_batch1_qps_x"`
}

// benchProfile is the standard ramp: under capacity, near capacity, then
// past saturation, so the report shows shedding and tail behavior, not just
// a happy path.
func benchProfile(seed int64) loadgen.Profile {
	return loadgen.Profile{
		Seed: seed,
		Stages: []loadgen.Stage{
			{QPS: 3000, DurUS: 80_000},
			{QPS: 7000, DurUS: 80_000},
			{QPS: 12000, DurUS: 120_000},
		},
		Tenants: []loadgen.Tenant{
			{Name: "alpha", Weight: 0.5},
			{Name: "beta", Weight: 0.3},
			{Name: "gamma", Weight: 0.2},
		},
	}
}

// runBenchServe sweeps the dynamic-batching operating points under the same
// open-loop ramp and writes BENCH_serve.json.
func runBenchServe(args []string) error {
	fs := flag.NewFlagSet("bench-serve", flag.ContinueOnError)
	net_ := fs.String("net", "lenet5", "network (see fpgacnn list)")
	board := fs.String("board", "S10SX", "target board")
	workers := fs.Int("workers", 2, "service lanes (held equal across points)")
	seed := fs.Int64("seed", 1, "arrival process seed")
	out := fs.String("o", "BENCH_serve.json", "output path for the JSON report (\"-\" = stdout)")
	applyExec := execFlag(fs)
	startProf := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyExec(); err != nil {
		return err
	}
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer stopProf()

	profile := benchProfile(*seed)
	points := []struct {
		n  int
		us float64
	}{{1, 500}, {8, 500}, {16, 1000}}

	rep := serveBenchReport{Net: *net_, Board: *board, Workers: *workers, Profile: profile}
	for _, pt := range points {
		cfg := serve.Config{
			Net: *net_, Board: *board, Workers: *workers,
			BatchN: pt.n, DeadlineUS: pt.us,
		}
		tc := trace.NewCollector()
		input, runner, err := benchInput(cfg, tc)
		if err != nil {
			return err
		}
		if rep.DispatchUS == 0 {
			rep.DispatchUS = runner.Config().DispatchUS
		}
		arrivals := profile.Arrivals(input)
		res := serve.RunSim(cfg, runner, arrivals, tc)
		sum := loadgen.Summarize(profile, res, tc.Metrics())
		rep.Points = append(rep.Points, serveBenchPoint{BatchN: pt.n, DeadlineUS: pt.us, Summary: sum})
		fmt.Printf("batch_n=%-3d deadline=%-6.0fus  %s\n", pt.n, pt.us, sum)
	}
	base := rep.Points[0].SustainedQPS
	best := 0.0
	for _, p := range rep.Points[1:] {
		if p.SustainedQPS > best {
			best = p.SustainedQPS
		}
	}
	if base > 0 {
		rep.DynamicOverBatch1X = best / base
	}
	fmt.Printf("dynamic batching over batch-of-1 at %d workers: %.2fx sustained QPS\n",
		*workers, rep.DynamicOverBatch1X)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// runServeSmoke is the blocking CI gate. Part 1 replays a modest fixed-QPS
// workload across fault seeds on the simulated clock and asserts the drain
// and metrics contracts; part 2 round-trips the real HTTP server, including
// a drain with a request still queued.
func runServeSmoke(args []string) error {
	fs := flag.NewFlagSet("serve-smoke", flag.ContinueOnError)
	rate := fs.Float64("fault-rate", 0.05, "injected fault probability for the sim runs")
	applyExec := execFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyExec(); err != nil {
		return err
	}
	for _, seed := range []int64{1, 2} {
		if err := smokeSim(seed, *rate); err != nil {
			return fmt.Errorf("sim smoke (fault seed %d): %w", seed, err)
		}
	}
	if err := smokeHTTP(); err != nil {
		return fmt.Errorf("http smoke: %w", err)
	}
	fmt.Println("serve-smoke: all checks passed")
	return nil
}

// smokeSim runs one seeded workload under fault injection and checks the
// invariants the server promises: zero dropped requests on drain, a
// consistent metrics ledger, and every answer equal to the CPU reference no
// matter which ladder rung served it.
func smokeSim(seed int64, rate float64) error {
	cfg := serve.Config{
		Net: "lenet5", Board: "S10SX", BatchN: 8, DeadlineUS: 500, Workers: 2,
		FaultSeed: seed, FaultRate: rate,
	}
	profile := loadgen.Profile{
		Seed:    seed,
		Stages:  []loadgen.Stage{{QPS: 1000, DurUS: 100_000}},
		Tenants: []loadgen.Tenant{{Name: "alpha", Weight: 0.6}, {Name: "beta", Weight: 0.4}},
	}
	tc := trace.NewCollector()
	input, runner, err := benchInput(cfg, tc)
	if err != nil {
		return err
	}
	arrivals := profile.Arrivals(input)
	res := serve.RunSim(cfg, runner, arrivals, tc)
	sum := loadgen.Summarize(profile, res, tc.Metrics())
	fmt.Printf("seed %d: %s\n", seed, sum)

	if res.DrainDropped != 0 {
		return fmt.Errorf("drain dropped %d in-flight request(s), want 0", res.DrainDropped)
	}
	if res.Accepted != res.Completed {
		return fmt.Errorf("accepted %d != completed %d", res.Accepted, res.Completed)
	}
	m := tc.Metrics()
	if got := m.Counter("serve.requests").Value(); got != int64(res.Offered) {
		return fmt.Errorf("metrics serve.requests = %d, want %d", got, res.Offered)
	}
	if got := m.Counter("serve.completed").Value(); got != int64(res.Completed) {
		return fmt.Errorf("metrics serve.completed = %d, want %d", got, res.Completed)
	}
	rungSum := m.Counter("serve.rung."+serve.RungBatch).Value() +
		m.Counter("serve.rung."+serve.RungSolo).Value() +
		m.Counter("serve.rung."+serve.RungCPURef).Value()
	if rungSum != int64(res.Completed) {
		return fmt.Errorf("rung counters sum to %d, want %d", rungSum, res.Completed)
	}
	shedSum := m.Counter("serve.shed.tenant_queue").Value() +
		m.Counter("serve.shed.overload").Value() +
		m.Counter("serve.shed.draining").Value()
	if shedSum != int64(len(res.Shed)) {
		return fmt.Errorf("shed counters sum to %d, want %d", shedSum, len(res.Shed))
	}
	// Ground truth: request IDs are assigned in arrival order, and arrival i
	// carries digit i%10, so every response is checkable against the CPU
	// reference — degraded rungs included.
	wantClass := [10]int{}
	for d := 0; d <= 9; d++ {
		ref, err := runner.Reference(nn.Digit(d))
		if err != nil {
			return err
		}
		wantClass[d] = ref.ArgMax()
	}
	for _, r := range res.Responses {
		if r.Err != nil {
			return fmt.Errorf("request %d failed: %v", r.ID, r.Err)
		}
		want := wantClass[int(r.ID-1)%10]
		if r.ArgMax != want {
			return fmt.Errorf("request %d (rung %s): argmax %d, reference says %d", r.ID, r.Rung, r.ArgMax, want)
		}
	}
	return nil
}

// smokeHTTP round-trips the wall-clock server: concurrent posts from two
// tenants, metrics and health endpoints, then a graceful drain with a
// request still queued (it must complete, and post-drain posts must shed).
func smokeHTTP() error {
	cfg := serve.Config{
		Net: "lenet5", Board: "S10SX", BatchN: 4, DeadlineUS: 20_000, Workers: 2,
	}
	s, err := serve.NewServer(cfg, nil)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	post := func(tenant string, digit int) (int, map[string]any, error) {
		body, _ := json.Marshal(map[string]any{"tenant": tenant, "digit": digit})
		resp, err := http.Post(base+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, m, nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := "alpha"
			if i%2 == 1 {
				tenant = "beta"
			}
			code, m, err := post(tenant, i%10)
			if err != nil {
				errs <- err
				return
			}
			if code != http.StatusOK {
				errs <- fmt.Errorf("POST /v1/infer: status %d (%v)", code, m)
				return
			}
			if m["rung"] != serve.RungBatch {
				errs <- fmt.Errorf("expected rung %q, got %v", serve.RungBatch, m["rung"])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	get := func(path string) (int, string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String(), nil
	}
	if code, body, err := get("/metrics"); err != nil || code != 200 || !strings.Contains(body, "serve.requests") {
		return fmt.Errorf("GET /metrics: code %d err %v (serve.requests present: %v)",
			code, err, strings.Contains(body, "serve.requests"))
	}
	checkHealth := func(wantCode int, wantStatus string) error {
		code, body, err := get("/healthz")
		if err != nil || code != wantCode {
			return fmt.Errorf("GET /healthz: code %d err %v, want %d", code, err, wantCode)
		}
		var h serve.HealthReply
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			return fmt.Errorf("GET /healthz: not JSON: %v (%q)", err, body)
		}
		if h.Status != wantStatus {
			return fmt.Errorf("GET /healthz: status %q, want %q", h.Status, wantStatus)
		}
		if len(h.Runners) == 0 {
			return fmt.Errorf("GET /healthz: no per-runner health entries")
		}
		for _, r := range h.Runners {
			if r.Name == "" || r.State == "" {
				return fmt.Errorf("GET /healthz: malformed runner entry %+v", r)
			}
		}
		return nil
	}
	if err := checkHealth(200, "ok"); err != nil {
		return err
	}

	// Drain with a request still queued: BatchN 4 and a 20 ms deadline keep
	// a single post pending until the drain flushes it.
	pending := make(chan error, 1)
	go func() {
		code, m, err := post("gamma", 7)
		if err != nil {
			pending <- err
			return
		}
		if code != http.StatusOK {
			pending <- fmt.Errorf("queued request got status %d (%v) across drain", code, m)
			return
		}
		pending <- nil
	}()
	time.Sleep(50 * time.Millisecond) // let the post reach the queue
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		return err
	}
	if err := <-pending; err != nil {
		return err
	}
	if got := s.Metrics().Gauge("serve.drain.dropped").Value(); got != 0 {
		return fmt.Errorf("serve.drain.dropped = %v, want 0", got)
	}
	if code, m, err := post("alpha", 1); err != nil || code != http.StatusServiceUnavailable {
		return fmt.Errorf("post-drain POST: code %d err %v (%v), want 503", code, err, m)
	}
	if err := checkHealth(http.StatusServiceUnavailable, "draining"); err != nil {
		return fmt.Errorf("post-drain: %w", err)
	}
	fmt.Println("http: ingest, metrics, healthz and drain-with-queued-request all OK")
	return nil
}
