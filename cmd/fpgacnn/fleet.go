package main

// The fleet surface: `fpgacnn fleet` replays a seeded open-loop stream
// against a multi-board fleet with scheduled chaos (board kill, sticky
// enqueue, brownout) and enforces the zero-drop + bit-identity contract —
// the CI fleet-smoke gate runs exactly this. `fpgacnn bench-fleet` writes
// BENCH_fleet.json: single-board vs data-parallel replication (with and
// without a mid-stream kill) on LeNet-5, and single vs pipeline-sharded
// ResNet-18 across two board types. Every figure is modeled on the virtual
// clock, so the JSON is byte-deterministic and CI diffs it against the
// checked-in copy.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// newServerMaybeFleet builds the wall-clock server: over the degradation
// ladder by default, or over a fleet when -fleet gives a board mix.
func newServerMaybeFleet(cfg serve.Config, fleetSpec string) (*serve.Server, error) {
	if fleetSpec == "" {
		return serve.NewServer(cfg, nil)
	}
	boards, err := fleet.ParseBoards(fleetSpec)
	if err != nil {
		return nil, usagef("-fleet: %v", err)
	}
	tc := trace.NewCollector()
	fl, err := fleet.New(fleet.Config{
		Net: cfg.Net, Boards: boards,
		FaultSeed: cfg.FaultSeed, FaultRate: cfg.FaultRate,
		DispatchUS: cfg.DispatchUS, CPURefUS: cfg.CPURefUS,
	}, tc)
	if err != nil {
		return nil, err
	}
	if cfg.Workers < fl.DeviceCount() {
		cfg.Workers = fl.DeviceCount()
	}
	return serve.NewServerWithRunner(cfg, fl, tc)
}

// fleetChaosFlags registers the scheduled board-fault knobs and returns a
// builder that validates them against the fleet's device names.
func fleetChaosFlags(fs *flag.FlagSet) func(devices []string) ([]fault.BoardFault, error) {
	killBoard := fs.String("kill-board", "", "device to kill (device loss), e.g. s10sx-0")
	killAt := fs.Float64("kill-at-us", 0, "virtual time of the kill in microseconds")
	killDur := fs.Float64("kill-dur-us", 0, "loss window length (0 = permanent)")
	stickyBoard := fs.String("sticky-board", "", "device whose enqueues fail for a window")
	stickyAt := fs.Float64("sticky-at-us", 0, "sticky-enqueue window start")
	stickyDur := fs.Float64("sticky-dur-us", 0, "sticky-enqueue window length")
	brownBoard := fs.String("brownout-board", "", "device that slows down for a window")
	brownAt := fs.Float64("brownout-at-us", 0, "brownout window start")
	brownDur := fs.Float64("brownout-dur-us", 0, "brownout window length")
	brownFactor := fs.Float64("brownout-factor", 4, "service-time stretch during the brownout (> 1)")
	return func(devices []string) ([]fault.BoardFault, error) {
		if err := validateKillFlags(*killBoard, *killAt, devices); err != nil {
			return nil, err
		}
		var out []fault.BoardFault
		if *killBoard != "" {
			out = append(out, fault.BoardFault{
				Device: *killBoard, Kind: fault.DeviceLoss, AtUS: *killAt, DurUS: *killDur,
			})
		}
		if (*stickyBoard == "") != (*stickyDur <= 0) {
			return nil, usagef("-sticky-board and -sticky-dur-us must be set together")
		}
		if *stickyBoard != "" {
			out = append(out, fault.BoardFault{
				Device: *stickyBoard, Kind: fault.StickyEnqueue, AtUS: *stickyAt, DurUS: *stickyDur,
			})
		}
		if (*brownBoard == "") != (*brownDur <= 0) {
			return nil, usagef("-brownout-board and -brownout-dur-us must be set together")
		}
		if *brownBoard != "" {
			out = append(out, fault.BoardFault{
				Device: *brownBoard, Kind: fault.Brownout, AtUS: *brownAt, DurUS: *brownDur, Factor: *brownFactor,
			})
		}
		for _, bf := range out {
			if err := bf.Validate(); err != nil {
				return nil, usagef("%v", err)
			}
		}
		return out, nil
	}
}

// fleetInput returns the deterministic request-image generator: MNIST digits
// cycling for LeNet-5 (arrival i carries digit i%10, recoverable from the
// request ID), seeded random images otherwise.
func fleetInput(net string, shape []int) func(i int) *tensor.Tensor {
	return func(i int) *tensor.Tensor {
		if net == "lenet5" {
			return nn.Digit(i % 10)
		}
		return nn.RandomImage(uint64(i+1), shape...)
	}
}

// runFleetStream replays one seeded profile against a fleet through
// serve.RunSim and verifies the zero-drop + bit-identity contract: every
// accepted request completes, every answer equals the CPU reference, and no
// failover drops an image. verifyAll bounds how many responses are checked
// against the (possibly expensive) reference chain; < 0 checks everything.
func runFleetStream(fcfg fleet.Config, scfg serve.Config, prof loadgen.Profile, verifyN int, tc *trace.Collector) (loadgen.Summary, fleet.Report, error) {
	if tc == nil {
		tc = trace.NewCollector()
	}
	fl, err := fleet.New(fcfg, tc)
	if err != nil {
		return loadgen.Summary{}, fleet.Report{}, err
	}
	if scfg.Workers <= 0 {
		scfg.Workers = fl.DeviceCount()
	}
	arrivals := prof.Arrivals(fleetInput(fcfg.Net, fl.InShape()))
	res := serve.RunSim(scfg, fl, arrivals, tc)
	sum := loadgen.Summarize(prof, res, tc.Metrics())
	rep := fl.Report()

	if res.DrainDropped != 0 {
		return sum, rep, fmt.Errorf("drain dropped %d in-flight request(s), want 0", res.DrainDropped)
	}
	if rep.FailoverDropped != 0 {
		return sum, rep, fmt.Errorf("failover dropped %d image(s), want 0", rep.FailoverDropped)
	}
	if res.Accepted != res.Completed {
		return sum, rep, fmt.Errorf("accepted %d != completed %d", res.Accepted, res.Completed)
	}
	for _, fo := range rep.Ledger {
		if fo.To == "" || fo.To == fo.From || fo.Cause == "" {
			return sum, rep, fmt.Errorf("malformed ledger entry %+v", fo)
		}
	}

	// Bit-identity: request IDs are assigned in arrival order (before any
	// shed), so ID-1 is the arrival index and the expected input is
	// reconstructible. LeNet-5 checks every response against the 10 digit
	// references; heavier nets spot-check verifyN responses.
	input := fleetInput(fcfg.Net, fl.InShape())
	if fcfg.Net == "lenet5" {
		wantClass := [10]int{}
		for d := 0; d <= 9; d++ {
			ref, err := fl.Reference(nn.Digit(d))
			if err != nil {
				return sum, rep, err
			}
			wantClass[d] = ref.ArgMax()
		}
		for _, r := range res.Responses {
			if r.Err != nil {
				return sum, rep, fmt.Errorf("request %d failed: %v", r.ID, r.Err)
			}
			if want := wantClass[int(r.ID-1)%10]; r.ArgMax != want {
				return sum, rep, fmt.Errorf("request %d (rung %s): argmax %d, reference says %d",
					r.ID, r.Rung, r.ArgMax, want)
			}
		}
	} else {
		checked := 0
		for _, r := range res.Responses {
			if r.Err != nil {
				return sum, rep, fmt.Errorf("request %d failed: %v", r.ID, r.Err)
			}
			if verifyN >= 0 && checked >= verifyN {
				continue
			}
			ref, err := fl.Reference(input(int(r.ID - 1)))
			if err != nil {
				return sum, rep, err
			}
			if r.ArgMax != ref.ArgMax() {
				return sum, rep, fmt.Errorf("request %d (rung %s): argmax %d, reference says %d",
					r.ID, r.Rung, r.ArgMax, ref.ArgMax())
			}
			checked++
		}
	}
	return sum, rep, nil
}

// runFleet is the chaos-capable fleet stream command (and the CI fleet-smoke
// gate): seeded open-loop load against a board mix with optional scheduled
// faults, failing unless the zero-drop and reference-match contracts hold.
func runFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	net_ := fs.String("net", "lenet5", "network (see fpgacnn list)")
	boards := fs.String("boards", "s10sx:2", "board mix, e.g. a10:2,s10sx:1")
	shard := fs.Bool("shard", false, "pipeline-shard the net across the first two boards")
	shardCut := fs.Int("shard-cut", 0, "override the balanced cut layer index (0 = auto)")
	analytic := fs.Bool("analytic", false, "force the analytic executor (modeled time, reference outputs)")
	qps := fs.Float64("qps", 5000, "offered load")
	dur := fs.Float64("dur-us", 60_000, "stream length in virtual microseconds")
	seed := fs.Int64("seed", 1, "arrival process seed")
	batchN := fs.Int("batch-n", 4, "dynamic batch size bound")
	deadline := fs.Float64("deadline-us", 500, "batch formation deadline")
	workers := fs.Int("workers", 0, "engine service lanes (0 = one per FPGA device)")
	slaUS := fs.Float64("sla-us", 25_000, "latency SLA for routing penalties and miss counting")
	faultSeed := fs.Int64("fault-seed", 0, "image-level fault injector seed (sim executor)")
	faultRate := fs.Float64("fault-rate", 0, "image-level fault probability in [0,1]")
	metrics := fs.Bool("metrics", false, "print the metrics dump after the run")
	traceOut := fs.String("trace", "", "write a Chrome trace JSON to this path (\"-\" = stdout)")
	mkFaults := fleetChaosFlags(fs)
	applyExec := execFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFaultFlags(fs, *faultRate, "fault-seed", "fault-rate"); err != nil {
		return err
	}
	if err := applyExec(); err != nil {
		return err
	}
	specs, err := fleet.ParseBoards(*boards)
	if err != nil {
		return usagef("-boards: %v", err)
	}
	fcfg := fleet.Config{
		Net: *net_, Boards: specs, Shard: *shard, ShardCut: *shardCut, Analytic: *analytic,
		FaultSeed: *faultSeed, FaultRate: *faultRate, SLAUS: *slaUS,
	}
	faults, err := mkFaults(fleet.ExpandDeviceNames(fcfg))
	if err != nil {
		return err
	}
	fcfg.Faults = faults

	scfg := serve.Config{Net: *net_, BatchN: *batchN, DeadlineUS: *deadline, Workers: *workers}
	prof := loadgen.Profile{
		Seed:    *seed,
		Stages:  []loadgen.Stage{{QPS: *qps, DurUS: *dur}},
		Tenants: []loadgen.Tenant{{Name: "alpha", Weight: 0.6}, {Name: "beta", Weight: 0.4}},
	}
	fmt.Printf("fleet: %s on [%s] at %.0f qps for %.0f us, chaos plan: %d fault(s)\n",
		*net_, *boards, *qps, *dur, len(faults))

	tc := trace.NewCollector()
	sum, rep, err := runFleetStream(fcfg, scfg, prof, 3, tc)
	if err != nil {
		fmt.Println(sum.String())
		fmt.Print(rep.String())
		return fmt.Errorf("fleet contract: %w", err)
	}
	fmt.Println(sum.String())
	fmt.Print(rep.String())
	fmt.Println("fleet: zero-drop and reference-match contracts hold")
	if *traceOut != "" || *metrics {
		return finishObservability(tc, *traceOut, *metrics)
	}
	return nil
}

// fleetBenchPoint is one fleet configuration in BENCH_fleet.json.
type fleetBenchPoint struct {
	Name   string `json:"name"`
	Net    string `json:"net"`
	Boards string `json:"boards"`
	Shard  bool   `json:"shard,omitempty"`
	Kill   string `json:"kill,omitempty"`
	loadgen.Summary
	Failovers       int `json:"failovers"`
	FailoverDropped int `json:"failover_dropped"`
	SLAMisses       int `json:"sla_misses"`
}

// fleetBenchReport is the BENCH_fleet.json schema. All figures are modeled
// on the virtual clock: byte-deterministic, CI diffs it against the
// checked-in copy and jq-gates the replication speedup and drop counters.
type fleetBenchReport struct {
	Profile loadgen.Profile   `json:"profile"`
	Points  []fleetBenchPoint `json:"points"`
	// ReplicationSpeedupX is 2-board data-parallel sustained QPS over
	// 1-board, same offered load — the bench gate keeps it >= 1.7.
	ReplicationSpeedupX float64 `json:"replication_speedup_x"`
	// ShardSpeedupX is 2-board pipeline-sharded ResNet-18 sustained QPS over
	// the same net whole on the slower board (S10MX): what pipelining buys a
	// board that is too slow to serve the net alone.
	ShardSpeedupX float64 `json:"shard_speedup_x"`
}

// runBenchFleet sweeps the fleet shapes and writes BENCH_fleet.json.
func runBenchFleet(args []string) error {
	fs := flag.NewFlagSet("bench-fleet", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "arrival process seed")
	out := fs.String("o", "BENCH_fleet.json", "output path for the JSON report (\"-\" = stdout)")
	applyExec := execFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyExec(); err != nil {
		return err
	}

	// LeNet-5 saturation profile: one S10SX sustains ~5.1k img/s at batch 8,
	// so 13k offered saturates one board and two boards alike — the
	// replication ratio then measures capacity, not the arrival process.
	prof := loadgen.Profile{
		Seed:    *seed,
		Stages:  []loadgen.Stage{{QPS: 13000, DurUS: 120_000}},
		Tenants: []loadgen.Tenant{{Name: "alpha", Weight: 0.6}, {Name: "beta", Weight: 0.4}},
	}
	scfg := serve.Config{Net: "lenet5", BatchN: 8, DeadlineUS: 500, Workers: 2}
	// ResNet-18 runs the analytic executor; keep the stream small — the
	// functional reference costs real seconds per image.
	resProf := loadgen.Profile{
		Seed:    *seed,
		Stages:  []loadgen.Stage{{QPS: 100, DurUS: 50_000}},
		Tenants: []loadgen.Tenant{{Name: "alpha", Weight: 1}},
	}
	resCfg := serve.Config{Net: "resnet18", BatchN: 2, DeadlineUS: 2_000, Workers: 2}

	points := []struct {
		name   string
		fcfg   fleet.Config
		scfg   serve.Config
		prof   loadgen.Profile
		kill   string
		verify int
	}{
		{
			name: "lenet5-1xS10SX",
			fcfg: fleet.Config{Net: "lenet5", Boards: []fleet.BoardSpec{{Board: "S10SX", Count: 1}}},
			scfg: scfg, prof: prof, verify: -1,
		},
		{
			name: "lenet5-2xS10SX-replicated",
			fcfg: fleet.Config{Net: "lenet5", Boards: []fleet.BoardSpec{{Board: "S10SX", Count: 2}}},
			scfg: scfg, prof: prof, verify: -1,
		},
		{
			name: "lenet5-2xS10SX-kill-midstream",
			fcfg: fleet.Config{
				Net: "lenet5", Boards: []fleet.BoardSpec{{Board: "S10SX", Count: 2}},
				Faults: []fault.BoardFault{{Device: "s10sx-0", Kind: fault.DeviceLoss, AtUS: 60_000}},
			},
			scfg: scfg, prof: prof, kill: "s10sx-0@60000us", verify: -1,
		},
		{
			name: "resnet18-1xS10MX",
			fcfg: fleet.Config{Net: "resnet18", Boards: []fleet.BoardSpec{{Board: "S10MX", Count: 1}}},
			scfg: resCfg, prof: resProf, verify: 2,
		},
		{
			name: "resnet18-S10SX+S10MX-sharded",
			fcfg: fleet.Config{Net: "resnet18", Boards: []fleet.BoardSpec{{Board: "S10SX", Count: 1}, {Board: "S10MX", Count: 1}}, Shard: true},
			scfg: resCfg, prof: resProf, verify: 2,
		},
	}

	rep := fleetBenchReport{Profile: prof}
	byName := map[string]fleetBenchPoint{}
	for _, pt := range points {
		sum, frep, err := runFleetStream(pt.fcfg, pt.scfg, pt.prof, pt.verify, nil)
		if err != nil {
			return fmt.Errorf("%s: %w", pt.name, err)
		}
		boards := ""
		for i, b := range pt.fcfg.Boards {
			if i > 0 {
				boards += ","
			}
			boards += fmt.Sprintf("%s:%d", b.Board, b.Count)
		}
		p := fleetBenchPoint{
			Name: pt.name, Net: pt.fcfg.Net, Boards: boards, Shard: pt.fcfg.Shard,
			Kill: pt.kill, Summary: sum,
			Failovers: frep.Failovers, FailoverDropped: frep.FailoverDropped, SLAMisses: frep.SLAMisses,
		}
		rep.Points = append(rep.Points, p)
		byName[pt.name] = p
		fmt.Printf("%-32s sustained %.0f qps, failovers %d, dropped %d\n",
			pt.name, sum.SustainedQPS, frep.Failovers, frep.FailoverDropped)
	}
	if base := byName["lenet5-1xS10SX"].SustainedQPS; base > 0 {
		rep.ReplicationSpeedupX = byName["lenet5-2xS10SX-replicated"].SustainedQPS / base
	}
	if base := byName["resnet18-1xS10MX"].SustainedQPS; base > 0 {
		rep.ShardSpeedupX = byName["resnet18-S10SX+S10MX-sharded"].SustainedQPS / base
	}
	fmt.Printf("replication speedup %.2fx, shard speedup %.2fx\n",
		rep.ReplicationSpeedupX, rep.ShardSpeedupX)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
