package fleet

// Device wraps one execution resource with the heartbeat/watchdog health
// state machine. Two evidence streams drive it: simulated time (a device
// loss is noticed when heartbeats stop — Suspect after SuspectBeats missed
// beats, Dead after DeadBeats) and dispatch outcomes (a sticky-enqueue
// window is invisible to heartbeats; consecutive dispatch failures escalate
// the same way). Time-driven transitions are precomputed from the fault
// schedule; dispatch-driven ones are applied at discovery and schedule
// their own recovery. All transitions emit trace instants and update the
// per-device state gauge, so a chaos run's timeline is fully inspectable.

import (
	"fmt"
	"sort"

	"repro/internal/aoc"
	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/relay"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// transition is one scheduled health-state change.
type transition struct {
	atUS  float64
	to    State
	cause string
}

// Device is one health-monitored execution resource in the fleet.
type Device struct {
	Name  string
	Board string
	// Components lists sub-resources chaos flags can target (the shard
	// composite exposes its two stage device names here).
	Components []string

	exec executor

	state      State
	stateSince float64
	consecFail int
	served     int
	failIn     int
	failOut    int

	faults []fault.BoardFault
	// trans is the precomputed time-driven transition schedule; ti the next
	// unapplied index. dyn holds dispatch-scheduled recovery transitions.
	trans []transition
	ti    int
	dyn   []transition
}

// buildTransitions precomputes the time-driven part of the state machine
// from the device's fault schedule.
func (d *Device) buildTransitions(cfg Config) {
	hb := cfg.HeartbeatUS
	for _, bf := range d.faults {
		switch bf.Kind {
		case fault.DeviceLoss:
			d.trans = append(d.trans,
				transition{atUS: bf.AtUS + float64(cfg.SuspectBeats)*hb, to: Suspect, cause: "device-loss"},
				transition{atUS: bf.AtUS + float64(cfg.DeadBeats)*hb, to: Dead, cause: "device-loss"},
			)
			if !bf.Permanent() {
				d.trans = append(d.trans,
					transition{atUS: bf.EndUS(), to: Recovering, cause: "revive"},
					transition{atUS: bf.EndUS() + cfg.RecoverUS, to: Healthy, cause: "recovered"},
				)
			}
		case fault.Brownout:
			// A slow board's late heartbeats mark it suspect one beat in.
			d.trans = append(d.trans,
				transition{atUS: bf.AtUS + hb, to: Suspect, cause: "brownout"},
				transition{atUS: bf.EndUS(), to: Healthy, cause: "brownout-clear"},
			)
		case fault.StickyEnqueue:
			// Invisible to heartbeats: only dispatch failures reveal it (see
			// noteDispatchFailure).
		}
	}
	sort.SliceStable(d.trans, func(i, j int) bool { return d.trans[i].atUS < d.trans[j].atUS })
}

// lossCovering returns the device-loss fault whose window covers t, if any.
func (d *Device) lossCovering(t float64) (fault.BoardFault, bool) {
	for _, bf := range d.faults {
		if bf.Kind == fault.DeviceLoss && bf.AtUS <= t && t < bf.EndUS() {
			return bf, true
		}
	}
	return fault.BoardFault{}, false
}

// lossDuring returns the first device-loss fault striking inside (from, to).
func (d *Device) lossDuring(from, to float64) (fault.BoardFault, bool) {
	for _, bf := range d.faults {
		if bf.Kind == fault.DeviceLoss && bf.AtUS > from && bf.AtUS < to {
			return bf, true
		}
	}
	return fault.BoardFault{}, false
}

// stickyAt returns the sticky-enqueue fault active at t, if any.
func (d *Device) stickyAt(t float64) (fault.BoardFault, bool) {
	for _, bf := range d.faults {
		if bf.Kind == fault.StickyEnqueue && bf.AtUS <= t && t < bf.EndUS() {
			return bf, true
		}
	}
	return fault.BoardFault{}, false
}

// brownoutFactorAt returns the service-time stretch at t (1 when none).
func (d *Device) brownoutFactorAt(t float64) float64 {
	for _, bf := range d.faults {
		if bf.Kind == fault.Brownout && bf.AtUS <= t && t < bf.EndUS() {
			return bf.Factor
		}
	}
	return 1
}

// advanceTo applies every scheduled transition up to t, in time order
// across the static and dynamic schedules.
func (d *Device) advanceTo(f *Fleet, t float64) {
	for {
		var tr transition
		src := 0
		switch {
		case d.ti < len(d.trans) && (len(d.dyn) == 0 || d.trans[d.ti].atUS <= d.dyn[0].atUS):
			tr, src = d.trans[d.ti], 1
		case len(d.dyn) > 0:
			tr, src = d.dyn[0], 2
		default:
			return
		}
		if tr.atUS > t {
			return
		}
		if src == 1 {
			d.ti++
		} else {
			d.dyn = d.dyn[1:]
		}
		// Never resurrect a device inside an active loss window (a brownout
		// clearing must not revive a board that has since been lost).
		// Escalations (Suspect/Dead) still apply.
		if tr.to == Healthy || tr.to == Recovering {
			if _, lost := d.lossCovering(tr.atUS); lost {
				continue
			}
		}
		d.setState(f, tr.atUS, tr.to, tr.cause)
	}
}

// setState performs one health transition: state gauge, trace instant, and
// consecutive-failure reset on recovery. No-op when already in the target
// state.
func (d *Device) setState(f *Fleet, atUS float64, to State, cause string) {
	if d.state == to {
		return
	}
	from := d.state
	d.state = to
	d.stateSince = atUS
	if to == Healthy {
		d.consecFail = 0
	}
	// Dispatch evidence can outrun the heartbeat schedule; drop now-stale
	// scheduled transitions so a later advance cannot replay the past.
	for d.ti < len(d.trans) && d.trans[d.ti].atUS <= atUS {
		d.ti++
	}
	for len(d.dyn) > 0 && d.dyn[0].atUS <= atUS {
		d.dyn = d.dyn[1:]
	}
	m := f.tc.Metrics()
	m.Gauge("fleet.dev." + d.Name + ".state").Set(float64(to))
	m.Counter("fleet.health." + to.String()).Inc()
	f.tc.Instant("fleet", d.Name, "health:"+to.String(), "health", atUS,
		map[string]string{"from": from.String(), "cause": cause})
}

// scheduleDyn inserts a dispatch-driven recovery transition, keeping dyn
// sorted.
func (d *Device) scheduleDyn(tr transition) {
	d.dyn = append(d.dyn, tr)
	sort.SliceStable(d.dyn, func(i, j int) bool { return d.dyn[i].atUS < d.dyn[j].atUS })
}

// noteDispatchFailure escalates health on dispatch evidence: consecutive
// failures walk Healthy → Suspect → Dead at the same thresholds as missed
// heartbeats, and the window's end schedules the recovery path.
func (d *Device) noteDispatchFailure(f *Fleet, atUS float64, bf fault.BoardFault, cfg Config) {
	d.consecFail++
	switch {
	case d.consecFail >= cfg.DeadBeats && d.state != Dead:
		d.setState(f, atUS, Dead, bf.Kind.String())
		if !bf.Permanent() {
			d.scheduleDyn(transition{atUS: bf.EndUS(), to: Recovering, cause: bf.Kind.String() + "-clear"})
			d.scheduleDyn(transition{atUS: bf.EndUS() + cfg.RecoverUS, to: Healthy, cause: "recovered"})
		}
	case d.consecFail >= cfg.SuspectBeats && d.state == Healthy:
		d.setState(f, atUS, Suspect, bf.Kind.String())
		d.scheduleDyn(transition{atUS: bf.EndUS(), to: Healthy, cause: bf.Kind.String() + "-clear"})
	}
}

// execResult is one successful device service window.
type execResult struct {
	outs            []*tensor.Tensor
	startUS, endUS  float64
	retries, faults int
}

// executor is the device's execution engine. run executes inputs starting
// no earlier than readyUS (internal busy time may push the start later) and
// advances the device's modeled busy horizon; stretch inflates the service
// duration (brownout). Implementations are driven under the fleet mutex.
type executor interface {
	run(inputs []*tensor.Tensor, readyUS float64, seq int64, stretch float64) (*execResult, error)
	availableAt() float64
	estUS() float64
}

// simExec executes batches through the full batch engine (host.RunBatch):
// real functional simulation, image-level fault injection, modeled device
// time. Viable for LeNet-class nets; heavier nets use refExec.
type simExec struct {
	dep       serve.Deployment
	busyUntil float64
	est       float64
	faultSeed int64
	faultRate float64
}

func newSimExec(cfg Config, board *fpga.Board) (*simExec, error) {
	dep, layers, err := serve.BuildDeployment(cfg.Net, board)
	if err != nil {
		return nil, err
	}
	// Calibrate the routing estimate with one fault-free probe batch at
	// construction (zero input, deterministic): a cold device must not look
	// slower than its siblings or the scheduler never tries it.
	probe, err := dep.RunBatch([]*tensor.Tensor{tensor.New(layers[0].InShape...)}, host.BatchOptions{Workers: 1})
	if err != nil {
		return nil, fmt.Errorf("fleet: calibration probe for %s on %s: %w", cfg.Net, board.Name, err)
	}
	return &simExec{dep: dep, est: probe.ModeledUS, faultSeed: cfg.FaultSeed, faultRate: cfg.FaultRate}, nil
}

func (e *simExec) availableAt() float64 { return e.busyUntil }
func (e *simExec) estUS() float64       { return e.est }

func (e *simExec) run(inputs []*tensor.Tensor, readyUS float64, seq int64, stretch float64) (*execResult, error) {
	start := readyUS
	if e.busyUntil > start {
		start = e.busyUntil
	}
	res, err := e.dep.RunBatch(inputs, host.BatchOptions{
		Workers:   1,
		FaultSeed: e.faultSeed + seq*9973,
		FaultRate: e.faultRate,
	})
	if err != nil {
		// The failed attempt burned a slot: the device was busy while the
		// batch engine retried and gave up.
		e.busyUntil = start + e.est*float64(len(inputs))*stretch
		return nil, err
	}
	dur := res.ModeledUS * stretch
	e.busyUntil = start + dur
	// Learn the per-image service estimate from the observation (the
	// unstretched figure — routing should not assume a brownout persists).
	e.est = res.ModeledUS / float64(len(inputs))
	return &execResult{
		outs: res.Outputs, startUS: start, endUS: start + dur,
		retries: res.Retries, faults: len(res.Faults),
	}, nil
}

// refExec is the analytic executor: functional output via the CPU reference
// chain (bit-identical to ground truth by construction) and timing via a
// fixed modeled per-image cost — the folded deployment's analytic forward
// time for FPGA devices, CPURefUS for the cpuref tier. Nets whose
// functional simulation costs seconds per image serve through this.
type refExec struct {
	layers     []*relay.Layer
	perImageUS float64
	busyUntil  float64
}

// newRefExec builds the analytic executor for net on board: the folded
// deployment is built once for its modeled forward time, then discarded
// from the execution path. Nets without a folded config (LeNet-5's
// pipelined deployment) calibrate the per-image time with one probe batch
// instead — still deterministic, the probe input is all zeros.
func newRefExec(net string, layers []*relay.Layer, board *fpga.Board) (*refExec, error) {
	if fcfg, err := bench.FoldedConfigFor(net, board); err == nil {
		f, err := host.BuildFolded(layers, fcfg, board, aoc.DefaultOptions)
		if err != nil {
			return nil, err
		}
		t, err := f.ForwardTimeUS()
		if err != nil {
			return nil, err
		}
		return &refExec{layers: layers, perImageUS: t}, nil
	}
	dep, _, err := serve.BuildDeployment(net, board)
	if err != nil {
		return nil, err
	}
	probe, err := dep.RunBatch([]*tensor.Tensor{tensor.New(layers[0].InShape...)}, host.BatchOptions{Workers: 1})
	if err != nil {
		return nil, fmt.Errorf("fleet: timing probe for %s on %s: %w", net, board.Name, err)
	}
	return &refExec{layers: layers, perImageUS: probe.ModeledUS}, nil
}

func (e *refExec) availableAt() float64 { return e.busyUntil }
func (e *refExec) estUS() float64       { return e.perImageUS }

func (e *refExec) run(inputs []*tensor.Tensor, readyUS float64, _ int64, stretch float64) (*execResult, error) {
	start := readyUS
	if e.busyUntil > start {
		start = e.busyUntil
	}
	outs := make([]*tensor.Tensor, len(inputs))
	for i, in := range inputs {
		out, err := relay.Execute(e.layers, in)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	end := start + float64(len(inputs))*e.perImageUS*stretch
	e.busyUntil = end
	return &execResult{outs: outs, startUS: start, endUS: end}, nil
}

// dispatchOn routes one batch of images onto d at readyUS and plays the
// fault schedule against the service window. On success the execResult
// covers the whole window. On failure the returned failAt is when the host
// *notices* (sticky enqueues fail fast; a lost board wedges until the
// watchdog fires) and cause attributes it for the failover ledger.
func (f *Fleet) dispatchOn(d *Device, inputs []*tensor.Tensor, readyUS float64, seq int64) (res *execResult, failAt float64, cause string) {
	cfg := f.cfg
	enqueueAt := readyUS + cfg.DispatchUS
	if avail := d.exec.availableAt(); avail > enqueueAt {
		enqueueAt = avail
	}
	if bf, ok := d.stickyAt(enqueueAt); ok {
		// The enqueue call itself fails; bounded host-side retries burn
		// StickyRetryUS before the dispatcher gives up on this device.
		failAt = enqueueAt + cfg.StickyRetryUS
		d.noteDispatchFailure(f, failAt, bf, cfg)
		f.tc.Instant("fleet", d.Name, "dispatch-failed", "failover", failAt,
			map[string]string{"cause": bf.Kind.String(), "images": fmt.Sprint(len(inputs))})
		return nil, failAt, bf.Kind.String()
	}
	if bf, ok := d.lossCovering(enqueueAt); ok {
		// The board is already gone but undetected: the dispatch wedges and
		// only the watchdog notices — at the heartbeat deadline, or one beat
		// after the enqueue, whichever is later.
		failAt = bf.AtUS + float64(cfg.DeadBeats)*cfg.HeartbeatUS
		if min := enqueueAt + cfg.HeartbeatUS; min > failAt {
			failAt = min
		}
		d.setState(f, failAt, Dead, "device-loss")
		f.tc.Instant("fleet", d.Name, "dispatch-failed", "failover", failAt,
			map[string]string{"cause": "device-loss", "images": fmt.Sprint(len(inputs))})
		return nil, failAt, fault.DeviceLoss.String()
	}
	stretch := d.brownoutFactorAt(enqueueAt)
	r, err := d.exec.run(inputs, enqueueAt, seq, stretch)
	if err != nil {
		// Image-level device fault that survived the batch engine's own
		// retries: not a board failure, but the batch must reroute.
		failAt = d.exec.availableAt()
		f.tc.Instant("fleet", d.Name, "dispatch-failed", "failover", failAt,
			map[string]string{"cause": "device-fault", "images": fmt.Sprint(len(inputs)), "err": err.Error()})
		return nil, failAt, "device-fault"
	}
	if bf, ok := d.lossDuring(r.startUS, r.endUS); ok {
		// Killed mid-service: outputs die with the board; the watchdog
		// notices when heartbeats stop.
		failAt = bf.AtUS + float64(cfg.DeadBeats)*cfg.HeartbeatUS
		d.setState(f, failAt, Dead, "device-loss")
		f.tc.Instant("fleet", d.Name, "killed-in-flight", "failover", bf.AtUS,
			map[string]string{"images": fmt.Sprint(len(inputs)), "detected_us": fmt.Sprintf("%.0f", failAt)})
		return nil, failAt, fault.DeviceLoss.String()
	}
	d.consecFail = 0
	d.served += len(inputs)
	f.tc.Metrics().Counter("fleet.dev." + d.Name + ".served").Add(int64(len(inputs)))
	f.tc.Add(trace.Span{
		Proc: "fleet", Track: d.Name, Name: fmt.Sprintf("serve %d img", len(inputs)),
		Cat: "batch", StartUS: r.startUS, DurUS: r.endUS - r.startUS,
		Args: map[string]string{"images": fmt.Sprint(len(inputs)), "dispatch": fmt.Sprint(seq)},
	})
	return r, 0, ""
}
