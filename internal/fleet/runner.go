package fleet

// The scheduler's serve.Runner face. One formed batch arrives; the fleet
// routes it whole to the best device (batches amortize dispatch overhead,
// splitting one would forfeit that), and on any dispatch failure falls back
// to per-image rerouting: each in-flight image is requeued individually
// across the surviving pool, excluding every device that already failed it,
// with the cpuref tier as the floor that cannot fail. Every reroute is a
// ledger entry attributing the image to its failover cause — the artifact
// chaos tests audit to prove zero-drop.

import (
	"fmt"

	"repro/internal/serve"
	"repro/internal/tensor"
)

// Run implements serve.Runner. ServiceUS is the modeled time from batch
// formation to the last image's completion — failover detection latency
// (watchdog beats) and requeue service included, so latency figures under
// chaos are honest.
func (f *Fleet) Run(b *serve.Batch) *serve.BatchOutcome {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceAll(b.FormedUS)

	inputs := make([]*tensor.Tensor, len(b.Reqs))
	idxs := make([]int, len(b.Reqs))
	for i, req := range b.Reqs {
		inputs[i] = req.Input
		idxs[i] = i
	}
	out := &serve.BatchOutcome{Outcomes: make([]serve.Outcome, len(b.Reqs))}
	end := f.runImages(b, inputs, idxs, b.FormedUS, nil, out, 0)
	out.ServiceUS = end - b.FormedUS
	return out
}

// runImages dispatches the given images (idxs into the batch) as one unit
// onto the best non-excluded device, falling back to per-image recursion on
// failure. Returns the latest completion time and fills out.Outcomes for
// every image it settles; served reports which device answered (for the
// caller's ledger entry).
func (f *Fleet) runImages(b *serve.Batch, inputs []*tensor.Tensor, idxs []int,
	readyUS float64, exclude map[string]bool, out *serve.BatchOutcome, depth int) float64 {

	m := f.tc.Metrics()
	d := f.route(readyUS, len(idxs), exclude)
	if d == nil {
		// Unreachable while cpuref exists (it takes no board faults and its
		// executor cannot error), but the contract must hold even if a
		// future change lets it fail: count, mark, and surface loudly.
		for _, idx := range idxs {
			out.Outcomes[idx] = serve.Outcome{ArgMax: -1, Rung: "dropped",
				Err: fmt.Errorf("fleet: no device left for request %d", b.Reqs[idx].ID)}
		}
		f.dropped += len(idxs)
		m.Counter("fleet.failover.dropped").Add(int64(len(idxs)))
		return readyUS
	}

	sub := make([]*tensor.Tensor, len(idxs))
	for i, idx := range idxs {
		sub[i] = inputs[idx]
	}
	f.dispatchSeq++
	res, failAt, cause := f.dispatchOn(d, sub, readyUS, f.dispatchSeq)
	if res != nil {
		for i, idx := range idxs {
			out.Outcomes[idx] = serve.Outcome{ArgMax: res.outs[i].ArgMax(), Rung: d.Name}
		}
		out.DeviceUS += res.endUS - res.startUS
		out.Retries += res.retries
		out.Faults += res.faults
		if depth > 0 {
			d.failIn += len(idxs)
		}
		for _, idx := range idxs {
			if lat := res.endUS - b.Reqs[idx].ArriveUS; lat > f.cfg.SLAUS {
				f.slaMisses++
				m.Counter("fleet.sla_miss").Inc()
			}
		}
		return res.endUS
	}

	// Dispatch failed: the device's health already escalated inside
	// dispatchOn; requeue every image individually across the survivors.
	f.advanceAll(failAt)
	if depth == 0 {
		out.Degraded += len(idxs)
	}
	ex2 := make(map[string]bool, len(exclude)+1)
	for k := range exclude {
		ex2[k] = true
	}
	ex2[d.Name] = true
	d.failOut += len(idxs)
	m.Counter("fleet.failover.total").Add(int64(len(idxs)))
	m.Counter("fleet.failover." + cause).Add(int64(len(idxs)))

	maxEnd := failAt
	for _, idx := range idxs {
		// Record before the recursive dispatch so the ledger stays in event
		// order; fill To from the recursion's chosen device afterwards.
		f.ledger = append(f.ledger, Failover{
			ReqID: b.Reqs[idx].ID, From: d.Name, Cause: cause, AtUS: failAt,
		})
		entry := len(f.ledger) - 1
		end := f.runImages(b, inputs, []int{idx}, failAt, ex2, out, depth+1)
		f.ledger[entry].To = out.Outcomes[idx].Rung
		if end > maxEnd {
			maxEnd = end
		}
	}
	return maxEnd
}
