package fleet

// Pipeline-parallel sharding: a folded net split at a cut layer across two
// boards. Stage A runs layers [0, cut) on board A, the cut activation
// crosses PCIe (device A readback + device B write, the Appendix A model),
// and stage B runs layers [cut, n) on board B. Consecutive batches overlap:
// each stage keeps its own busy horizon, so steady-state throughput is
// bounded by the slower stage plus transfer, not the sum — the point of
// sharding a net too big (or too slow) for one board.
//
// Functional execution composes the CPU reference over the two rebased
// half-chains, which keeps the bit-identity contract trivially exact and
// also proves the split itself is semantics-preserving (the shard test
// checks half∘half against the unsplit chain). Timing is analytic: each
// half is built as a real folded deployment on its board and contributes
// its modeled forward time.

import (
	"fmt"
	"math"

	"repro/internal/aoc"
	"repro/internal/bench"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/relay"
	"repro/internal/tensor"
)

// cutValid reports whether the chain can split at cut: no layer in the tail
// may reference anything before cut-1 (the cut output becomes the tail's
// network input; deeper references would need a second inter-board stream).
func cutValid(layers []*relay.Layer, cut int) bool {
	if cut < 1 || cut >= len(layers) {
		return false
	}
	ok := func(idx int) bool { return idx >= cut-1 }
	for i := cut; i < len(layers); i++ {
		l := layers[i]
		if !ok(l.In) {
			return false
		}
		if l.HasSkip && !ok(l.Skip) {
			return false
		}
		for _, idx := range l.Ins {
			if !ok(idx) {
				return false
			}
		}
	}
	return true
}

// ValidCuts lists every layer index the chain can split at.
func ValidCuts(layers []*relay.Layer) []int {
	var out []int
	for c := 1; c < len(layers); c++ {
		if cutValid(layers, c) {
			out = append(out, c)
		}
	}
	return out
}

// SplitLayers splits the lowered chain at cut into two independently
// executable half-chains. The head is the original prefix; the tail is a
// rebased clone (indices shifted by -cut, with cut-1 becoming the network
// input) so relay.Execute runs it stand-alone on the head's output.
func SplitLayers(layers []*relay.Layer, cut int) (head, tail []*relay.Layer, err error) {
	if !cutValid(layers, cut) {
		return nil, nil, fmt.Errorf("fleet: cannot cut %s-layer chain at %d (cross-cut reference or out of range)",
			fmt.Sprint(len(layers)), cut)
	}
	head = layers[:cut]
	tail = make([]*relay.Layer, len(layers)-cut)
	for i, l := range layers[cut:] {
		c := *l // shallow clone: weights are shared, read-only
		c.In = l.In - cut
		if l.HasSkip {
			c.Skip = l.Skip - cut
		}
		if len(l.Ins) > 0 {
			c.Ins = make([]int, len(l.Ins))
			for j, idx := range l.Ins {
				c.Ins[j] = idx - cut
			}
		}
		tail[i] = &c
	}
	return head, tail, nil
}

// chainFLOPs sums multiply+add work over a half-chain.
func chainFLOPs(layers []*relay.Layer) int64 {
	var sum int64
	for _, l := range layers {
		sum += l.FLOPs()
	}
	return sum
}

// PickCut returns the valid cut that best balances compute between the two
// halves (by FLOPs — cheap and monotone with the modeled stage times).
func PickCut(layers []*relay.Layer) (int, error) {
	cuts := ValidCuts(layers)
	if len(cuts) == 0 {
		return 0, fmt.Errorf("fleet: chain has no valid pipeline cut")
	}
	total := chainFLOPs(layers)
	best, bestGap := cuts[0], int64(math.MaxInt64)
	for _, c := range cuts {
		headF := chainFLOPs(layers[:c])
		gap := headF - (total - headF)
		if gap < 0 {
			gap = -gap
		}
		if gap < bestGap {
			best, bestGap = c, gap
		}
	}
	return best, nil
}

// shardExec is the two-stage pipeline executor. Each stage owns a busy
// horizon; a batch occupies stage A, then the PCIe hop, then stage B, and
// the next batch may enter stage A as soon as it frees.
type shardExec struct {
	headLayers, tailLayers []*relay.Layer
	tAUS, tBUS             float64 // per-image modeled stage times
	cutBytes               int     // cut activation size per image
	pcieA, pcieB           fpga.PCIeModel
	busyA, busyB           float64
}

// newShardExec splits net's chain (auto-balancing the cut unless forced),
// builds each half as a folded deployment on its board for modeled timing,
// and prices the inter-board hop from the cut activation size.
func newShardExec(net string, layers []*relay.Layer, boardA, boardB *fpga.Board, forceCut int) (*shardExec, error) {
	cut := forceCut
	if cut == 0 {
		var err error
		cut, err = PickCut(layers)
		if err != nil {
			return nil, err
		}
	}
	head, tail, err := SplitLayers(layers, cut)
	if err != nil {
		return nil, err
	}
	buildTime := func(half []*relay.Layer, board *fpga.Board) (float64, error) {
		fcfg, err := bench.FoldedConfigFor(net, board)
		if err != nil {
			return 0, fmt.Errorf("fleet: shard stage for %s on %s: %w", net, board.Name, err)
		}
		f, err := host.BuildFolded(half, fcfg, board, aoc.DefaultOptions)
		if err != nil {
			return 0, err
		}
		return f.ForwardTimeUS()
	}
	tA, err := buildTime(head, boardA)
	if err != nil {
		return nil, err
	}
	tB, err := buildTime(tail, boardB)
	if err != nil {
		return nil, err
	}
	bytes := 4
	for _, dim := range head[len(head)-1].OutShape {
		bytes *= dim
	}
	return &shardExec{
		headLayers: head, tailLayers: tail,
		tAUS: tA, tBUS: tB, cutBytes: bytes,
		pcieA: boardA.PCIe, pcieB: boardB.PCIe,
	}, nil
}

// Cut returns the shard's cut layer index (head length).
func (e *shardExec) Cut() int { return len(e.headLayers) }

// xferUS prices moving n cut activations between the boards: device A
// readback plus device B write, each one command (latency) plus bandwidth.
func (e *shardExec) xferUS(n int) float64 {
	return e.pcieA.ReadTimeUS(n*e.cutBytes) + e.pcieB.WriteTimeUS(n*e.cutBytes)
}

// availableAt is stage A's next free slot: the pipeline admits a new batch
// as soon as its first stage frees, which is what lets batches overlap.
func (e *shardExec) availableAt() float64 { return e.busyA }

// estUS is the one-image pipeline latency (routing cost of the device).
func (e *shardExec) estUS() float64 { return e.tAUS + e.xferUS(1) + e.tBUS }

// advanceTiming books one batch of n images through both stage horizons
// and returns its service window (separated from run so timing is testable
// without functional execution).
func (e *shardExec) advanceTiming(n int, readyUS, stretch float64) (startUS, endUS float64) {
	aStart := readyUS
	if e.busyA > aStart {
		aStart = e.busyA
	}
	aEnd := aStart + float64(n)*e.tAUS*stretch
	e.busyA = aEnd
	bStart := aEnd + e.xferUS(n)
	if e.busyB > bStart {
		bStart = e.busyB
	}
	bEnd := bStart + float64(n)*e.tBUS*stretch
	e.busyB = bEnd
	return aStart, bEnd
}

func (e *shardExec) run(inputs []*tensor.Tensor, readyUS float64, _ int64, stretch float64) (*execResult, error) {
	aStart, bEnd := e.advanceTiming(len(inputs), readyUS, stretch)

	outs := make([]*tensor.Tensor, len(inputs))
	for i, in := range inputs {
		mid, err := relay.Execute(e.headLayers, in)
		if err != nil {
			return nil, err
		}
		out, err := relay.Execute(e.tailLayers, mid)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return &execResult{outs: outs, startUS: aStart, endUS: bEnd}, nil
}
