package fleet

// The chaos failover contract: a board killed in the middle of a live
// request stream must cost zero responses and zero correctness. The fleet
// runner is driven through the real serving stack (loadgen arrival stream →
// serve.RunSim → Fleet.Run), a device-loss fault lands mid-stream, and the
// run must end with drain_dropped == 0, failover_dropped == 0, every
// response bit-identical to the CPU reference, and a ledger that attributes
// every rerouted image to its cause. Checked at multiple seeds, and each
// seed replayed to prove byte-determinism — this is the test the fleet-smoke
// CI job mirrors.

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// chaosRun is everything one seeded chaos run produces.
type chaosRun struct {
	sum    loadgen.Summary
	rep    Report
	argmax []int   // per response, completion order
	ids    []int64 // per response, completion order
}

// runChaos replays a seeded 2-board lenet5 stream with s10sx-0 killed at
// killAtUS (no fault when killAtUS <= 0) and returns the full observable
// outcome.
func runChaos(t *testing.T, seed int64, killAtUS float64) chaosRun {
	t.Helper()
	tc := trace.NewCollector()
	var faults []fault.BoardFault
	if killAtUS > 0 {
		faults = append(faults, fault.BoardFault{Device: "s10sx-0", Kind: fault.DeviceLoss, AtUS: killAtUS})
	}
	fl, err := New(Config{
		Net:    "lenet5",
		Boards: []BoardSpec{{Board: "S10SX", Count: 2}},
		Faults: faults,
	}, tc)
	if err != nil {
		t.Fatal(err)
	}
	// Hot enough that batches overlap and routing must spread across both
	// boards (one board sustains ~4300 img/s at batch 4). -short trims the
	// stream so the race-detector run stays affordable.
	durUS := 60_000.0
	if testing.Short() {
		durUS = 24_000
	}
	prof := loadgen.Profile{
		Seed:    seed,
		Stages:  []loadgen.Stage{{QPS: 5000, DurUS: durUS}},
		Tenants: []loadgen.Tenant{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
	}
	// Digit-cycling inputs: arrival i carries digit i%10, and the engine
	// assigns request IDs in arrival order before any shed check, so a
	// response's expected class is recoverable from its ID alone.
	arr := prof.Arrivals(func(i int) *tensor.Tensor { return nn.Digit(i % 10) })
	cfg := serve.Config{Net: "lenet5", BatchN: 4, DeadlineUS: 500, Workers: fl.DeviceCount()}
	res := serve.RunSim(cfg, fl, arr, tc)
	run := chaosRun{
		sum: loadgen.Summarize(prof, res, tc.Metrics()),
		rep: fl.Report(),
	}
	for _, r := range res.Responses {
		if r.Err != nil {
			t.Fatalf("response %d failed: %v", r.ID, r.Err)
		}
		run.argmax = append(run.argmax, r.ArgMax)
		run.ids = append(run.ids, r.ID)
	}
	return run
}

func TestChaosKillMidStreamZeroDropBitIdentical(t *testing.T) {
	// Ground truth once: the CPU reference class for each digit.
	tcRef := trace.NewCollector()
	ref, err := New(Config{Net: "lenet5", Boards: []BoardSpec{{Board: "S10SX", Count: 1}}}, tcRef)
	if err != nil {
		t.Fatal(err)
	}
	wantClass := make([]int, 10)
	for d := 0; d < 10; d++ {
		out, err := ref.Reference(nn.Digit(d))
		if err != nil {
			t.Fatal(err)
		}
		wantClass[d] = out.ArgMax()
	}

	seeds := []int64{1, 2}
	killAt := 30_000.0
	if testing.Short() {
		killAt = 12_000
	}
	for _, seed := range seeds {
		run := runChaos(t, seed, killAt)

		// Zero-drop, both ways it could leak: the engine ledger and the
		// fleet's own failover accounting.
		if run.sum.DrainDropped != 0 {
			t.Fatalf("seed %d: drain_dropped = %d, want 0", seed, run.sum.DrainDropped)
		}
		if run.rep.FailoverDropped != 0 {
			t.Fatalf("seed %d: failover_dropped = %d, want 0", seed, run.rep.FailoverDropped)
		}
		if run.sum.Accepted != run.sum.Completed {
			t.Fatalf("seed %d: accepted %d != completed %d", seed, run.sum.Accepted, run.sum.Completed)
		}

		// The kill really happened and really rerouted work.
		if run.rep.Failovers == 0 {
			t.Fatalf("seed %d: no failovers — kill did not land mid-stream", seed)
		}
		if run.rep.ByCause["device-loss"] != run.rep.Failovers {
			t.Fatalf("seed %d: causes %v, want all device-loss", seed, run.rep.ByCause)
		}
		for _, fo := range run.rep.Ledger {
			if fo.From != "s10sx-0" {
				t.Fatalf("seed %d: failover from %s, want s10sx-0", seed, fo.From)
			}
			if fo.To == "" || fo.To == "s10sx-0" {
				t.Fatalf("seed %d: request %d rerouted to %q", seed, fo.ReqID, fo.To)
			}
			if fo.Cause != "device-loss" {
				t.Fatalf("seed %d: ledger cause %q", seed, fo.Cause)
			}
			if fo.AtUS < killAt {
				t.Fatalf("seed %d: failover at %.0fus precedes the kill", seed, fo.AtUS)
			}
		}

		// Every response bit-identical to the reference: request IDs are
		// assigned in arrival order (before sheds), so ID-1 is the arrival
		// index and the expected digit is (ID-1)%10.
		for i, id := range run.ids {
			if want := wantClass[(id-1)%10]; run.argmax[i] != want {
				t.Fatalf("seed %d: response id %d argmax %d, reference %d",
					seed, id, run.argmax[i], want)
			}
		}

		// Work continued after the kill on the survivors only.
		for _, d := range run.rep.Devices {
			if d.Name == "s10sx-0" && d.State != "dead" {
				t.Fatalf("seed %d: victim state %s, want dead", seed, d.State)
			}
		}

		// Byte-determinism: the same seed replays to the identical outcome —
		// summary, ledger, and the full response sequence.
		if testing.Short() {
			continue
		}
		again := runChaos(t, seed, killAt)
		if !reflect.DeepEqual(run.sum, again.sum) {
			t.Fatalf("seed %d: summary not deterministic:\n%+v\n%+v", seed, run.sum, again.sum)
		}
		if !reflect.DeepEqual(run.rep.Ledger, again.rep.Ledger) {
			t.Fatalf("seed %d: ledger not deterministic", seed)
		}
		if !reflect.DeepEqual(run.argmax, again.argmax) || !reflect.DeepEqual(run.ids, again.ids) {
			t.Fatalf("seed %d: response stream not deterministic", seed)
		}
	}
}

// TestChaosHealthyBaselineMatchesReference pins the no-fault path through the
// same stack: two boards, no chaos, zero drops, no failovers, bit-identity.
func TestChaosHealthyBaselineMatchesReference(t *testing.T) {
	run := runChaos(t, 7, 0)
	if run.sum.DrainDropped != 0 || run.rep.FailoverDropped != 0 {
		t.Fatalf("healthy run dropped: drain %d failover %d", run.sum.DrainDropped, run.rep.FailoverDropped)
	}
	if run.rep.Failovers != 0 {
		t.Fatalf("healthy run recorded %d failovers", run.rep.Failovers)
	}
	tcRef := trace.NewCollector()
	ref, err := New(Config{Net: "lenet5", Boards: []BoardSpec{{Board: "S10SX", Count: 1}}}, tcRef)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range run.ids {
		out, err := ref.Reference(nn.Digit(int((id - 1) % 10)))
		if err != nil {
			t.Fatal(err)
		}
		if run.argmax[i] != out.ArgMax() {
			t.Fatalf("response id %d argmax %d, reference %d", id, run.argmax[i], out.ArgMax())
		}
	}
	// Both boards actually shared the load.
	for _, d := range run.rep.Devices {
		if d.Board == "S10SX" && d.Served == 0 {
			t.Fatalf("device %s served nothing — no load balancing", d.Name)
		}
	}
}
