package fleet

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/serve"
	"repro/internal/trace"
)

func TestParseBoards(t *testing.T) {
	specs, err := ParseBoards("a10:2,s10sx:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []BoardSpec{{"A10", 2}, {"S10SX", 1}}
	if len(specs) != 2 || specs[0] != want[0] || specs[1] != want[1] {
		t.Fatalf("ParseBoards = %v, want %v", specs, want)
	}
	if specs, err = ParseBoards("S10MX"); err != nil || specs[0] != (BoardSpec{"S10MX", 1}) {
		t.Fatalf("bare name: %v, %v", specs, err)
	}
	for _, bad := range []string{"", "nope:1", "a10:0", "a10:x", ","} {
		if _, err := ParseBoards(bad); err == nil {
			t.Errorf("ParseBoards(%q) should fail", bad)
		}
	}
}

// newTestFleet builds a small lenet5 fleet for state-machine tests.
func newTestFleet(t *testing.T, cfg Config) (*Fleet, *trace.Collector) {
	t.Helper()
	tc := trace.NewCollector()
	if cfg.Net == "" {
		cfg.Net = "lenet5"
	}
	if len(cfg.Boards) == 0 {
		cfg.Boards = []BoardSpec{{Board: "S10SX", Count: 1}}
	}
	fl, err := New(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	return fl, tc
}

func TestHealthStateMachineDeviceLoss(t *testing.T) {
	fl, _ := newTestFleet(t, Config{
		Boards: []BoardSpec{{Board: "S10SX", Count: 1}},
		Faults: []fault.BoardFault{{Device: "s10sx-0", Kind: fault.DeviceLoss, AtUS: 10_000, DurUS: 40_000}},
	})
	d := fl.devs[0]
	steps := []struct {
		at   float64
		want State
	}{
		{5_000, Healthy},
		{10_500, Healthy}, // lost but no heartbeat missed yet
		{14_000, Suspect}, // 2 beats (2 x 2000us) missed
		{20_000, Dead},    // 5 beats missed
		{49_000, Dead},    // still inside the loss window
		{51_000, Recovering},
		{99_000, Recovering}, // reprogramming for RecoverUS
		{101_000, Healthy},
	}
	for _, s := range steps {
		fl.advanceAll(s.at)
		if d.state != s.want {
			t.Fatalf("t=%.0f: state %s, want %s", s.at, d.state, s.want)
		}
	}
}

func TestHealthStateMachineBrownout(t *testing.T) {
	fl, _ := newTestFleet(t, Config{
		Faults: []fault.BoardFault{{Device: "s10sx-0", Kind: fault.Brownout, AtUS: 10_000, DurUS: 20_000, Factor: 8}},
	})
	d := fl.devs[0]
	fl.advanceAll(11_000)
	if d.state != Healthy {
		t.Fatalf("before first late beat: %s", d.state)
	}
	fl.advanceAll(13_000)
	if d.state != Suspect {
		t.Fatalf("one late beat in: %s, want suspect", d.state)
	}
	if got := d.brownoutFactorAt(15_000); got != 8 {
		t.Fatalf("brownout factor = %g, want 8", got)
	}
	fl.advanceAll(31_000)
	if d.state != Healthy {
		t.Fatalf("after window: %s, want healthy", d.state)
	}
}

func TestRoutingPrefersFasterAndPenalizesSuspect(t *testing.T) {
	fl, _ := newTestFleet(t, Config{
		Boards: []BoardSpec{{Board: "S10SX", Count: 2}},
	})
	a, b := fl.devs[0], fl.devs[1]
	// Equal estimates: routing order breaks the tie.
	if got := fl.route(0, 8, nil); got != a {
		t.Fatalf("tie: routed to %s, want %s", got.Name, a.Name)
	}
	// A busy device loses to an idle one.
	a.exec.(*simExec).busyUntil = 50_000
	if got := fl.route(0, 8, nil); got != b {
		t.Fatalf("busy: routed to %s, want %s", got.Name, b.Name)
	}
	a.exec.(*simExec).busyUntil = 0
	// Suspect costs one SLA.
	a.state = Suspect
	if got := fl.route(0, 8, nil); got != b {
		t.Fatalf("suspect: routed to %s, want %s", got.Name, b.Name)
	}
	// Dead devices are unroutable; cpuref is the floor.
	a.state, b.state = Dead, Dead
	if got := fl.route(0, 8, nil); got == nil || got.Name != "cpuref" {
		t.Fatalf("blackout: routed to %v, want cpuref", got)
	}
}

// runBatch pushes one batch through the fleet runner directly.
func runBatch(fl *Fleet, formedUS float64, digits ...int) *serve.BatchOutcome {
	reqs := make([]*serve.Request, len(digits))
	for i, d := range digits {
		reqs[i] = &serve.Request{ID: int64(i + 1), Tenant: "t", Input: nn.Digit(d), ArriveUS: formedUS}
	}
	return fl.Run(&serve.Batch{Seq: 1, Reqs: reqs, FormedUS: formedUS})
}

func TestStickyEnqueueFailsOverAndRecovers(t *testing.T) {
	fl, _ := newTestFleet(t, Config{
		Boards: []BoardSpec{{Board: "S10SX", Count: 2}},
		Faults: []fault.BoardFault{{Device: "s10sx-0", Kind: fault.StickyEnqueue, AtUS: 0, DurUS: 30_000}},
	})
	out := runBatch(fl, 1000, 3, 1, 4)
	for i, oc := range out.Outcomes {
		if oc.Err != nil {
			t.Fatalf("outcome %d: %v", i, oc.Err)
		}
		if oc.Rung != "s10sx-1" {
			t.Fatalf("outcome %d served by %s, want s10sx-1 (failover)", i, oc.Rung)
		}
	}
	rep := fl.Report()
	if rep.Failovers != 3 || rep.ByCause["sticky-enqueue"] != 3 {
		t.Fatalf("failovers = %d by cause %v, want 3 sticky-enqueue", rep.Failovers, rep.ByCause)
	}
	if rep.FailoverDropped != 0 {
		t.Fatalf("dropped %d, want 0", rep.FailoverDropped)
	}
	if fl.devs[0].consecFail == 0 {
		t.Fatal("victim should have recorded dispatch failures")
	}
	// After the window the device serves again (health recovered via the
	// dispatch-scheduled path once it had escalated, or stayed healthy).
	fl.advanceAll(90_000)
	if fl.devs[0].state != Healthy {
		t.Fatalf("post-window state %s, want healthy", fl.devs[0].state)
	}
}

func TestBrownoutStretchesService(t *testing.T) {
	fl, _ := newTestFleet(t, Config{
		Boards: []BoardSpec{{Board: "S10SX", Count: 1}},
		Faults: []fault.BoardFault{{Device: "s10sx-0", Kind: fault.Brownout, AtUS: 100_000, DurUS: 100_000, Factor: 8}},
	})
	normal := runBatch(fl, 0, 2, 7).ServiceUS
	slow := runBatch(fl, 120_000, 2, 7).ServiceUS
	// Both windows include one DispatchUS; the device portion stretches 8x.
	wantDevice := (normal - fl.cfg.DispatchUS) * 8
	gotDevice := slow - fl.cfg.DispatchUS
	if diff := gotDevice/wantDevice - 1; diff > 0.01 || diff < -0.01 {
		t.Fatalf("brownout service %gus, want ~%gus (normal %gus)", gotDevice, wantDevice, normal)
	}
}

func TestKillMidServiceRequeuesInFlight(t *testing.T) {
	fl, _ := newTestFleet(t, Config{
		Boards: []BoardSpec{{Board: "S10SX", Count: 2}},
		// Kill lands inside the first batch's service window on s10sx-0
		// (dispatch at 1150us, ~776us modeled service for four images).
		Faults: []fault.BoardFault{{Device: "s10sx-0", Kind: fault.DeviceLoss, AtUS: 1_500}},
	})
	wantRef := make([]int, 10)
	for d := 0; d < 10; d++ {
		ref, err := fl.Reference(nn.Digit(d))
		if err != nil {
			t.Fatal(err)
		}
		wantRef[d] = ref.ArgMax()
	}
	digits := []int{0, 1, 2, 3}
	out := runBatch(fl, 1000, digits...)
	for i, oc := range out.Outcomes {
		if oc.Err != nil {
			t.Fatalf("outcome %d: %v", i, oc.Err)
		}
		if oc.Rung != "s10sx-1" {
			t.Fatalf("outcome %d served by %s, want s10sx-1", i, oc.Rung)
		}
		if oc.ArgMax != wantRef[digits[i]] {
			t.Fatalf("outcome %d argmax %d, reference %d", i, oc.ArgMax, wantRef[digits[i]])
		}
	}
	if fl.devs[0].state != Dead {
		t.Fatalf("victim state %s, want dead", fl.devs[0].state)
	}
	rep := fl.Report()
	if rep.Failovers != 4 || rep.ByCause["device-loss"] != 4 || rep.FailoverDropped != 0 {
		t.Fatalf("report: %+v", rep)
	}
	for _, fo := range rep.Ledger {
		if fo.From != "s10sx-0" || fo.To != "s10sx-1" || fo.Cause != "device-loss" {
			t.Fatalf("ledger entry %+v", fo)
		}
		// Detection is the watchdog deadline, not the kill instant.
		if wantDetect := 1_500 + 5*2_000.0; fo.AtUS != wantDetect {
			t.Fatalf("failover at %.0fus, want %.0f (loss + DeadBeats heartbeats)", fo.AtUS, wantDetect)
		}
	}
	// ServiceUS covers detection latency plus the requeue run.
	if out.ServiceUS < 11_000 {
		t.Fatalf("ServiceUS %.0f should include the watchdog detection latency", out.ServiceUS)
	}
}

func TestTotalBlackoutFallsToCPURef(t *testing.T) {
	fl, _ := newTestFleet(t, Config{
		Boards: []BoardSpec{{Board: "S10SX", Count: 1}},
		Faults: []fault.BoardFault{{Device: "s10sx-0", Kind: fault.DeviceLoss, AtUS: 1_000}},
	})
	out := runBatch(fl, 2_000, 5, 6)
	for i, oc := range out.Outcomes {
		if oc.Err != nil || oc.Rung != "cpuref" {
			t.Fatalf("outcome %d: rung %s err %v, want cpuref", i, oc.Rung, oc.Err)
		}
	}
	if rep := fl.Report(); rep.FailoverDropped != 0 {
		t.Fatalf("dropped %d, want 0", rep.FailoverDropped)
	}
}

func TestFaultValidationAtConstruction(t *testing.T) {
	cases := []Config{
		{Faults: []fault.BoardFault{{Device: "nope", Kind: fault.DeviceLoss}}},
		{Faults: []fault.BoardFault{{Device: "cpuref", Kind: fault.DeviceLoss}}},
		{Faults: []fault.BoardFault{{Device: "s10sx-0", Kind: fault.Brownout, DurUS: 10, Factor: 0.5}}},
		{FaultRate: 0.1, Analytic: true}, // image faults need the sim executor
	}
	for i, cfg := range cases {
		cfg.Net = "lenet5"
		cfg.Boards = []BoardSpec{{Board: "S10SX", Count: 1}}
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("case %d: New should reject %+v", i, cfg)
		}
	}
}

func TestSplitLayersBitIdentical(t *testing.T) {
	g, err := nn.ByName("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	layers, err := relay.Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	cuts := ValidCuts(layers)
	if len(cuts) == 0 {
		t.Fatal("resnet18 has no valid pipeline cut")
	}
	cut, err := PickCut(layers)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("resnet18: %d layers, %d valid cuts, balanced cut at %d", len(layers), len(cuts), cut)
	head, tail, err := SplitLayers(layers, cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(head)+len(tail) != len(layers) {
		t.Fatalf("split sizes %d+%d != %d", len(head), len(tail), len(layers))
	}
	in := nn.RandomImage(7, layers[0].InShape...)
	want, err := relay.Execute(layers, in)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := relay.Execute(head, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := relay.Execute(tail, mid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != len(want.Data) {
		t.Fatalf("output sizes differ: %d vs %d", len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("split output diverges at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
	// Rebasing must not mutate the original chain.
	if layers[cut].In != tail[0].In+cut {
		t.Fatal("SplitLayers mutated the source chain")
	}
	// A cut through a residual block must be rejected.
	bad := false
	for c := 1; c < len(layers); c++ {
		if !cutValid(layers, c) {
			bad = true
			if _, _, err := SplitLayers(layers, c); err == nil {
				t.Fatalf("SplitLayers accepted invalid cut %d", c)
			}
			break
		}
	}
	if !bad {
		t.Log("note: every cut in this chain is valid (no cross-cut skip found)")
	}
}

func TestShardPipelineOverlap(t *testing.T) {
	ex := &shardExec{
		tAUS: 100, tBUS: 80, cutBytes: 1000,
	}
	// Zero-latency PCIe for arithmetic clarity is not possible (models have
	// latency terms), so use explicit small models.
	ex.pcieA.ReadLatencyUS, ex.pcieA.ReadGBps = 10, 1
	ex.pcieB.WriteLatencyUS, ex.pcieB.WriteGBps = 10, 1
	xfer1 := ex.xferUS(1)
	if xfer1 != 10+1+10+1 {
		t.Fatalf("xferUS(1) = %g, want 22", xfer1)
	}
	// Two 1-image batches back to back: the second enters stage A as soon
	// as the first leaves it, so its completion is gated by stage A + xfer +
	// stage B, with stage B queueing behind the first.
	s1, e1 := ex.advanceTiming(1, 0, 1)
	s2, e2 := ex.advanceTiming(1, 0, 1)
	if s1 != 0 || e1 != 100+22+80 {
		t.Fatalf("first batch window [%g, %g], want [0, 202]", s1, e1)
	}
	if s2 != 100 {
		t.Fatalf("second batch entered stage A at %g, want 100 (pipeline overlap)", s2)
	}
	// Second batch: stage A 100..200, xfer lands at 222, stage B free at
	// 202 — so stage B runs 222..302, gated by the transfer, not the queue.
	if e2 != 100+100+22+80 {
		t.Fatalf("second batch end %g, want 302", e2)
	}
	// availableAt exposes stage A's horizon (admission point), not e2.
	if ex.availableAt() != 200 {
		t.Fatalf("availableAt = %g, want 200", ex.availableAt())
	}
}
