// Package fleet turns the single-device serving stack into a fault-tolerant
// multi-board cluster: N simulated devices of mixed board types (the three
// evaluation platforms of the thesis) plus the cpuref tier, each wrapped in
// a health-monitored Device, under a scheduler that routes dynamic batches
// by network affinity, modeled queue depth and SLA pressure.
//
// The fleet implements serve.Runner, so both serve frontends (the
// deterministic discrete-event simulation and the wall-clock HTTP server)
// drive it unchanged. Three properties are load-bearing:
//
//   - Health is a watchdog state machine per device — healthy → suspect →
//     dead → recovering — driven by simulated time (missed heartbeats) and
//     dispatch evidence (failed or wedged enqueues), fed by the scheduled
//     board-level fault class in internal/fault (device loss, sticky
//     enqueue, brownout).
//   - Failover is zero-drop: when a board dies mid-service, every in-flight
//     image is requeued onto surviving boards — or the cpuref tier as last
//     resort, which never fails — and the ledger attributes each rerouted
//     image to its cause. `drain_dropped == failover_dropped == 0` is the
//     contract chaos tests assert.
//   - Throughput composes two parallelism shapes: data-parallel replication
//     (identical deployments on several boards) and pipeline-parallel
//     sharding (a folded ResNet split at a cut layer across two boards,
//     inter-board transfers costed with the Appendix A PCIe model).
//
// Everything is deterministic on the virtual clock: routing ties break by
// device name, fault schedules are explicit timestamps, and per-dispatch
// fault seeds derive from a global dispatch sequence.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/fpga"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// State is one device's health state.
type State int

const (
	// Healthy: heartbeats on time, dispatches succeeding; fully routable.
	Healthy State = iota
	// Suspect: missed heartbeats or failed dispatches below the dead
	// threshold; still routable but penalized by one SLA in the score.
	Suspect
	// Dead: the watchdog gave up; never routed, in-flight work requeued.
	Dead
	// Recovering: the board came back and is reprogramming; not yet
	// routable.
	Recovering
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Recovering:
		return "recovering"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// BoardSpec is one entry of a fleet's board mix.
type BoardSpec struct {
	Board string `json:"board"`
	Count int    `json:"count"`
}

// ParseBoards parses the -boards flag syntax "a10:2,s10sx:1" (case
// insensitive board names, count defaults to 1).
func ParseBoards(spec string) ([]BoardSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("fleet: empty board spec")
	}
	var out []BoardSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, countStr, hasCount := strings.Cut(part, ":")
		b, err := fpga.ByName(strings.ToUpper(strings.TrimSpace(name)))
		if err != nil {
			return nil, fmt.Errorf("fleet: board spec %q: %w", part, err)
		}
		count := 1
		if hasCount {
			count, err = strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil || count < 1 {
				return nil, fmt.Errorf("fleet: board spec %q: count must be a positive integer", part)
			}
		}
		out = append(out, BoardSpec{Board: b.Name, Count: count})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet: empty board spec")
	}
	return out, nil
}

// Config parameterizes a fleet. The zero value is not usable; New applies
// defaults to unset tuning knobs.
type Config struct {
	// Net selects the model every FPGA device deploys; cpuref always serves
	// it too (network affinity is uniform within one fleet — the scheduler's
	// affinity term reduces to per-board service estimates).
	Net string
	// Boards is the device mix, expanded in order into devices named
	// <board>-<i> (lowercase).
	Boards []BoardSpec
	// Shard folds the first two FPGA devices into one pipeline-parallel
	// device: the net is split at a cut layer, each half deployed on its
	// board, and the cut activation crosses PCIe at the Appendix A cost.
	Shard bool
	// ShardCut overrides the automatically balanced cut layer index (0 =
	// pick the valid cut that best balances modeled per-stage time).
	ShardCut int
	// Analytic forces the analytic executor (functional output via the CPU
	// reference chain, timing via the folded deployment's modeled forward
	// time) even for nets with a full batch-engine simulation. Non-LeNet
	// nets always use the analytic executor — their functional simulation
	// costs seconds per image, unusable under a load stream.
	Analytic bool

	// Faults is the scheduled board-level chaos plan.
	Faults []fault.BoardFault
	// FaultSeed/FaultRate inject image-level device faults into sim-executor
	// dispatches (as in serve); requires the sim executor.
	FaultSeed int64
	FaultRate float64

	// HeartbeatUS is the watchdog heartbeat period. A device is Suspect
	// after SuspectBeats missed beats, Dead after DeadBeats; a revived board
	// stays Recovering (unroutable) for RecoverUS while it reprograms.
	HeartbeatUS  float64
	SuspectBeats int
	DeadBeats    int
	RecoverUS    float64
	// SLAUS is the latency target: Suspect devices are penalized by one SLA
	// in the routing score, and completions past it count as SLA misses.
	SLAUS float64
	// DispatchUS is the modeled host overhead per dispatch; CPURefUS the
	// per-image cost of the cpuref tier; StickyRetryUS the time burned
	// discovering one sticky-enqueue failure (bounded host-side retries).
	DispatchUS    float64
	CPURefUS      float64
	StickyRetryUS float64
}

func (c Config) withDefaults() Config {
	if c.Net == "" {
		c.Net = "lenet5"
	}
	if c.HeartbeatUS <= 0 {
		c.HeartbeatUS = 2000
	}
	if c.SuspectBeats <= 0 {
		c.SuspectBeats = 2
	}
	if c.DeadBeats <= c.SuspectBeats {
		c.DeadBeats = c.SuspectBeats + 3
	}
	if c.RecoverUS <= 0 {
		c.RecoverUS = 50_000
	}
	if c.SLAUS <= 0 {
		c.SLAUS = 25_000
	}
	if c.DispatchUS <= 0 {
		c.DispatchUS = 150
	}
	// CPURefUS == 0 means "derive from the net's FLOPs" — resolved in New,
	// where the lowered chain is available.
	if c.StickyRetryUS <= 0 {
		c.StickyRetryUS = 200
	}
	return c
}

// cpuRefFLOPsPerUS models the scalar CPU reference executor's throughput
// (2000 FLOPs/us = 2 GFLOP/s) for pricing the cpuref tier's service time.
const cpuRefFLOPsPerUS = 2000

// Failover is one ledger entry: one image rerouted off a failed device.
type Failover struct {
	ReqID int64   `json:"req_id"`
	From  string  `json:"from"`
	To    string  `json:"to"`
	Cause string  `json:"cause"`
	AtUS  float64 `json:"at_us"`
}

// Fleet is the scheduler over the device pool. It implements serve.Runner
// (and serve.FrontendRunner / serve.HealthReporter); safe for concurrent Run
// calls — one mutex serializes scheduling state, which is exact on the
// simulated clock and conservative on the wall clock.
type Fleet struct {
	cfg    Config
	tc     *trace.Collector
	layers []*relay.Layer // full reference chain (cpuref ground truth)
	inLen  int

	mu          sync.Mutex
	devs        []*Device
	nowUS       float64 // watermark: latest time health has advanced to
	dispatchSeq int64
	ledger      []Failover
	dropped     int
	slaMisses   int
}

// New builds the fleet: one deployment per device slot, the shard composite
// when requested, and the cpuref tier as the always-alive floor.
func New(cfg Config, tc *trace.Collector) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if tc == nil {
		tc = trace.NewCollector()
	}
	if len(cfg.Boards) == 0 {
		return nil, fmt.Errorf("fleet: no boards configured")
	}
	g, err := nn.ByName(cfg.Net)
	if err != nil {
		return nil, err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return nil, err
	}
	if cfg.CPURefUS <= 0 {
		// The cpuref tier must price like a CPU, not a constant: a modeled
		// ~2 GFLOP/s scalar reference (floor 20 ms) keeps it the genuine
		// last resort — slower than any board — for heavy nets too.
		cfg.CPURefUS = float64(chainFLOPs(layers)) / cpuRefFLOPsPerUS
		if cfg.CPURefUS < 20_000 {
			cfg.CPURefUS = 20_000
		}
	}
	f := &Fleet{cfg: cfg, tc: tc, layers: layers, inLen: 1}
	for _, d := range layers[0].InShape {
		f.inLen *= d
	}

	// Expand the board mix into device slots.
	type slot struct {
		board *fpga.Board
		name  string
	}
	var slots []slot
	index := map[string]int{}
	for _, spec := range cfg.Boards {
		b, err := fpga.ByName(spec.Board)
		if err != nil {
			return nil, err
		}
		for i := 0; i < spec.Count; i++ {
			name := fmt.Sprintf("%s-%d", strings.ToLower(b.Name), index[b.Name])
			index[b.Name]++
			slots = append(slots, slot{board: b, name: name})
		}
	}

	useSim := cfg.Net == "lenet5" && !cfg.Analytic
	if cfg.FaultRate > 0 && !useSim {
		return nil, fmt.Errorf("fleet: image-level fault injection (-fault-rate) requires the sim executor (lenet5, non-analytic)")
	}

	if cfg.Shard {
		if len(slots) < 2 {
			return nil, fmt.Errorf("fleet: -shard needs at least two FPGA devices, have %d", len(slots))
		}
		a, b := slots[0], slots[1]
		ex, err := newShardExec(cfg.Net, layers, a.board, b.board, cfg.ShardCut)
		if err != nil {
			return nil, err
		}
		f.devs = append(f.devs, &Device{
			Name:       fmt.Sprintf("shard-%s+%s", a.name, b.name),
			Board:      a.board.Name + "+" + b.board.Name,
			Components: []string{a.name, b.name},
			exec:       ex,
		})
		slots = slots[2:]
	}
	for _, s := range slots {
		var ex executor
		if useSim {
			ex, err = newSimExec(cfg, s.board)
		} else {
			ex, err = newRefExec(cfg.Net, layers, s.board)
		}
		if err != nil {
			return nil, err
		}
		f.devs = append(f.devs, &Device{Name: s.name, Board: s.board.Name, exec: ex})
	}
	// The cpuref tier: the routing floor that cannot die.
	f.devs = append(f.devs, &Device{
		Name:  "cpuref",
		Board: "cpu",
		exec:  &refExec{layers: layers, perImageUS: cfg.CPURefUS},
	})

	// Bind the chaos plan to devices and precompute time-driven transitions.
	for _, bf := range cfg.Faults {
		if err := bf.Validate(); err != nil {
			return nil, err
		}
		d := f.deviceForFault(bf.Device)
		if d == nil {
			return nil, fmt.Errorf("fleet: fault targets unknown device %q (have %s)",
				bf.Device, strings.Join(f.DeviceNames(), ", "))
		}
		if d.Name == "cpuref" {
			return nil, fmt.Errorf("fleet: the cpuref tier cannot take board faults (it is the failover floor)")
		}
		d.faults = append(d.faults, bf)
	}
	for _, d := range f.devs {
		d.buildTransitions(cfg)
		f.tc.Metrics().Gauge("fleet.dev." + d.Name + ".state").Set(float64(d.state))
	}
	return f, nil
}

// deviceForFault resolves a chaos target: a device name, or a shard
// component name (killing a component kills the composite device).
func (f *Fleet) deviceForFault(name string) *Device {
	for _, d := range f.devs {
		if d.Name == name {
			return d
		}
		for _, c := range d.Components {
			if c == name {
				return d
			}
		}
	}
	return nil
}

// ExpandDeviceNames computes the device names a Config would produce
// without building any deployment — the CLI validates chaos targets against
// this before paying for construction. Shard composites list both the
// composite name and the component names (either is a valid chaos target).
func ExpandDeviceNames(cfg Config) []string {
	cfg = cfg.withDefaults()
	var names []string
	index := map[string]int{}
	for _, spec := range cfg.Boards {
		for i := 0; i < spec.Count; i++ {
			lower := strings.ToLower(spec.Board)
			names = append(names, fmt.Sprintf("%s-%d", lower, index[spec.Board]))
			index[spec.Board]++
		}
	}
	if cfg.Shard && len(names) >= 2 {
		composite := fmt.Sprintf("shard-%s+%s", names[0], names[1])
		names = append([]string{composite, names[0], names[1]}, names[2:]...)
	}
	return append(names, "cpuref")
}

// DeviceNames lists the fleet's device names in routing order.
func (f *Fleet) DeviceNames() []string {
	names := make([]string, len(f.devs))
	for i, d := range f.devs {
		names[i] = d.Name
	}
	return names
}

// DeviceCount returns the number of routable service lanes (FPGA devices;
// the cpuref floor is excluded — it is a fallback, not a lane).
func (f *Fleet) DeviceCount() int { return len(f.devs) - 1 }

// InShape returns the deployment input shape (serve payload validation).
func (f *Fleet) InShape() []int { return f.layers[0].InShape }

// InputLen returns the flat input element count.
func (f *Fleet) InputLen() int { return f.inLen }

// Reference runs the CPU reference chain on one input — the bit-exact
// ground truth every device must match.
func (f *Fleet) Reference(in *tensor.Tensor) (*tensor.Tensor, error) {
	return relay.Execute(f.layers, in)
}

// RunnerHealth implements serve.HealthReporter: one entry per device.
func (f *Fleet) RunnerHealth() []serve.DeviceHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]serve.DeviceHealth, len(f.devs))
	for i, d := range f.devs {
		backlog := d.exec.availableAt() - f.nowUS
		if backlog < 0 {
			backlog = 0
		}
		out[i] = serve.DeviceHealth{
			Name: d.Name, Board: d.Board, State: d.state.String(),
			BacklogUS: backlog, Served: d.served,
			FailoversIn: d.failIn, FailoversOut: d.failOut,
		}
	}
	return out
}

// DeviceReport is one device's line in a fleet run report.
type DeviceReport struct {
	Name         string `json:"name"`
	Board        string `json:"board"`
	State        string `json:"state"`
	Served       int    `json:"served"`
	FailoversIn  int    `json:"failovers_in"`
	FailoversOut int    `json:"failovers_out"`
}

// Report summarizes the fleet after a run: per-device tallies, the failover
// ledger, and the zero-drop counter the chaos gates assert on.
type Report struct {
	Devices         []DeviceReport `json:"devices"`
	Failovers       int            `json:"failovers"`
	ByCause         map[string]int `json:"failovers_by_cause,omitempty"`
	FailoverDropped int            `json:"failover_dropped"`
	SLAMisses       int            `json:"sla_misses"`
	Ledger          []Failover     `json:"ledger,omitempty"`
}

// Report snapshots the fleet's post-run state.
func (f *Fleet) Report() Report {
	f.mu.Lock()
	defer f.mu.Unlock()
	rep := Report{FailoverDropped: f.dropped, Failovers: len(f.ledger), SLAMisses: f.slaMisses}
	for _, d := range f.devs {
		rep.Devices = append(rep.Devices, DeviceReport{
			Name: d.Name, Board: d.Board, State: d.state.String(),
			Served: d.served, FailoversIn: d.failIn, FailoversOut: d.failOut,
		})
	}
	if len(f.ledger) > 0 {
		rep.ByCause = map[string]int{}
		for _, fo := range f.ledger {
			rep.ByCause[fo.Cause]++
		}
		rep.Ledger = append(rep.Ledger, f.ledger...)
	}
	return rep
}

// Ledger returns a copy of the failover ledger in event order.
func (f *Fleet) Ledger() []Failover {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Failover, len(f.ledger))
	copy(out, f.ledger)
	return out
}

// FailoverDropped returns the count of images no device (including cpuref)
// could take — always 0 by construction; the chaos gates assert it.
func (f *Fleet) FailoverDropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// advanceAll processes time-driven health transitions up to t on every
// device. Monotonic: earlier timestamps are no-ops.
func (f *Fleet) advanceAll(t float64) {
	if t <= f.nowUS {
		return
	}
	f.nowUS = t
	for _, d := range f.devs {
		d.advanceTo(f, t)
	}
}

// route picks the device with the earliest estimated completion for n
// images ready at t: max(ready, device free) + dispatch + n * service
// estimate, plus one SLA of penalty for suspect devices. Dead and
// recovering devices (and the exclude set) are skipped; ties break by
// routing order (device construction order), which makes routing fully
// deterministic.
func (f *Fleet) route(t float64, n int, exclude map[string]bool) *Device {
	var best *Device
	bestScore := math.Inf(1)
	for _, d := range f.devs {
		if exclude[d.Name] || d.state == Dead || d.state == Recovering {
			continue
		}
		start := math.Max(t, d.exec.availableAt()) + f.cfg.DispatchUS
		score := start + float64(n)*d.exec.estUS()
		if d.state == Suspect {
			score += f.cfg.SLAUS
		}
		if score < bestScore {
			best, bestScore = d, score
		}
	}
	return best
}

// sortedCauses returns the ledger's distinct causes (deterministic order,
// for rendering).
func (r Report) sortedCauses() []string {
	out := make([]string, 0, len(r.ByCause))
	for c := range r.ByCause {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// String renders a terminal summary of the report.
func (r Report) String() string {
	var sb strings.Builder
	for _, d := range r.Devices {
		fmt.Fprintf(&sb, "  %-22s %-10s %-10s served %-6d failover in %d out %d\n",
			d.Name, d.Board, d.State, d.Served, d.FailoversIn, d.FailoversOut)
	}
	fmt.Fprintf(&sb, "  failovers %d dropped %d sla_misses %d", r.Failovers, r.FailoverDropped, r.SLAMisses)
	for _, c := range r.sortedCauses() {
		fmt.Fprintf(&sb, " %s=%d", c, r.ByCause[c])
	}
	sb.WriteByte('\n')
	return sb.String()
}
