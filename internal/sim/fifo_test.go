package sim

import (
	"testing"

	"repro/internal/ir"
)

// TestFifoBoundedRetention is the regression test for the unbounded-retention
// bug: head used to advance while data was never compacted, so a steady-state
// producer/consumer pair (a long batch run streaming images through a
// pipeline) held every value ever pushed. The compaction rule must keep the
// backing capacity proportional to the peak occupancy, not the total traffic.
func TestFifoBoundedRetention(t *testing.T) {
	f := &Fifo{}
	const occupancy = 16
	for i := 0; i < occupancy; i++ {
		f.Push(float32(i))
	}
	// A million interleaved push/pop cycles at constant occupancy: without
	// compaction the slice grows to ~1e6 entries.
	next := float32(occupancy)
	want := float32(0)
	for i := 0; i < 1_000_000; i++ {
		f.Push(next)
		next++
		v, ok := f.Pop()
		if !ok {
			t.Fatalf("cycle %d: unexpected empty fifo", i)
		}
		if v != want {
			t.Fatalf("cycle %d: FIFO order broken: got %v, want %v", i, v, want)
		}
		want++
	}
	if f.Len() != occupancy {
		t.Fatalf("occupancy drifted: %d", f.Len())
	}
	// Capacity bound: compaction triggers once head passes both the minimum
	// and half the slice, so the slice never exceeds ~2x(occupancy+minimum).
	if limit := 4 * (occupancy + fifoCompactMin); f.Cap() > limit {
		t.Fatalf("fifo retained %d cap after 1e6 cycles at occupancy %d (limit %d)", f.Cap(), occupancy, limit)
	}
	if f.Peak != occupancy+1 {
		t.Fatalf("peak tracking broken: %d", f.Peak)
	}
}

// TestFifoCompactionPreservesDrainSemantics checks the full-drain fast path
// and order across mixed burst sizes.
func TestFifoCompactionPreservesDrainSemantics(t *testing.T) {
	f := &Fifo{}
	next, want := float32(0), float32(0)
	for round := 0; round < 1000; round++ {
		push := 1 + round%97
		for i := 0; i < push; i++ {
			f.Push(next)
			next++
		}
		pop := push
		if round%3 == 0 {
			pop = f.Len() // full drain
		}
		for i := 0; i < pop; i++ {
			v, ok := f.Pop()
			if !ok {
				t.Fatalf("round %d: premature empty", round)
			}
			if v != want {
				t.Fatalf("round %d: got %v, want %v", round, v, want)
			}
			want++
		}
	}
	for f.Len() > 0 {
		v, _ := f.Pop()
		if v != want {
			t.Fatalf("drain: got %v, want %v", v, want)
		}
		want++
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty fifo succeeded")
	}
}

// TestMachineAllocReuse asserts the arena contract: re-running a kernel with
// an Alloc statement on the same machine reuses the previous binding (zeroed)
// instead of allocating, and ResetChannels keeps FIFO storage.
func TestMachineAllocReuse(t *testing.T) {
	scratch := ir.NewBuffer("scratch", ir.Private, 128)
	out := ir.NewBuffer("out", ir.Global, 128)
	i := ir.V("i")
	k := &ir.Kernel{Name: "arena", Args: []*ir.Buffer{out}, Body: ir.Seq(
		&ir.Alloc{Buf: scratch},
		ir.Loop(i, 128, &ir.Store{Buf: scratch, Index: []ir.Expr{i},
			Value: ir.AddE(&ir.Load{Buf: scratch, Index: []ir.Expr{i}}, ir.CFloat(1))}),
		ir.Loop(i, 128, &ir.Store{Buf: out, Index: []ir.Expr{i},
			Value: &ir.Load{Buf: scratch, Index: []ir.Expr{i}}}),
	)}
	m := NewMachine()
	m.SetPool(&BufPool{})
	m.Bind(out, m.Grab(128))
	if err := m.Run(k, nil); err != nil {
		t.Fatal(err)
	}
	first := m.Buffer(scratch)
	if err := m.Run(k, nil); err != nil {
		t.Fatal(err)
	}
	if &first[0] != &m.Buffer(scratch)[0] {
		t.Fatal("Alloc did not reuse the previous binding on a warm machine")
	}
	// The scratch must have been zeroed between runs: each run writes 1s,
	// not accumulated 2s.
	for idx, v := range m.Buffer(out) {
		if v != 1 {
			t.Fatalf("scratch not zeroed on reuse: out[%d] = %v", idx, v)
		}
	}
}
