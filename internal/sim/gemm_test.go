package sim_test

// GEMM-lowering guard tests: when the run-time stride verification rejects a
// nest (here: output aliasing the input), the machine must replay the nest on
// its scalar twin, count the bailout, and still produce output bit-identical
// to the interpreter under the same (aliased) bindings.

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topi"
)

func TestGemmBailoutReplaysOnTwin(t *testing.T) {
	op, err := topi.Conv2D(topi.ConvSpec{Name: "alias", C1: 3, H: 10, W: 10, C2: 4, F: 3, S: 1, Relu: true, Bias: true},
		topi.OptSched(4, 2, 1), topi.ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	// One backing slice: the output region is a prefix of the input region,
	// so D overlaps A and the GEMM guard must refuse to lower at run time.
	// The aliased semantics are still well-defined (the interpreter's
	// statement order), and the twin must reproduce them exactly.
	mk := func() (in, wt, b, out []float32) {
		backing := seeded(1, 3, 10, 10).Data // 300 floats
		return backing, seeded(2, 4, 3, 3, 3).Data, seeded(3, 4).Data, backing[:4*8*8]
	}
	run := func(tier sim.Tier, st *sim.ExecStats) []float32 {
		in, wt, b, out := mk()
		m := sim.NewMachine()
		m.SetTier(tier)
		m.SetStats(st)
		m.Bind(op.In, in)
		m.Bind(op.Weights, wt)
		m.Bind(op.Bias, b)
		m.Bind(op.Out, out)
		if err := m.Run(op.Kernel, nil); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(sim.TierInterp, nil)
	st := &sim.ExecStats{}
	got := run(sim.TierVector, st)
	s := st.Snapshot()
	if s.GemmLoops == 0 {
		t.Fatalf("conv nest was not GEMM-lowered at compile time: %+v", s)
	}
	if s.GemmBailouts == 0 {
		t.Fatalf("aliased bindings must fail the GEMM guard, got %+v", s)
	}
	if s.GemmRuns != 0 {
		t.Fatalf("aliased nest must not run on the GEMM path, got %+v", s)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("twin replay diverged from interpreter at %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestGemmCleanBindingsDoNotBail is the control: the same kernel with
// disjoint buffers takes the GEMM path with zero bailouts and stays
// bit-identical to the interpreter.
func TestGemmCleanBindingsDoNotBail(t *testing.T) {
	op, err := topi.Conv2D(topi.ConvSpec{Name: "clean", C1: 3, H: 10, W: 10, C2: 4, F: 3, S: 1, Relu: true, Bias: true},
		topi.OptSched(4, 2, 1), topi.ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(tier sim.Tier, st *sim.ExecStats) []float32 {
		out := make([]float32, 4*8*8)
		m := sim.NewMachine()
		m.SetTier(tier)
		m.SetStats(st)
		m.Bind(op.In, seeded(1, 3, 10, 10).Data)
		m.Bind(op.Weights, seeded(2, 4, 3, 3, 3).Data)
		m.Bind(op.Bias, seeded(3, 4).Data)
		m.Bind(op.Out, out)
		if err := m.Run(op.Kernel, nil); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(sim.TierInterp, nil)
	st := &sim.ExecStats{}
	got := run(sim.TierVector, st)
	s := st.Snapshot()
	if s.GemmRuns == 0 || s.GemmBailouts != 0 {
		t.Fatalf("clean bindings must take the GEMM path without bailing: %+v", s)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GEMM path diverged from interpreter at %d: %v != %v", i, got[i], want[i])
		}
	}
}
