package sim

// Closure compilation: kernels are lowered once per Run into a tree of Go
// closures over a flat integer environment, replacing per-node map lookups
// and type switches with direct calls. Semantics (bounds checks, channel
// underflow, shadowing) are identical to the tree-walking interpreter in
// interp.go, which tests keep as a cross-checking oracle via RunInterp.

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// cenv is the compiled execution environment: loop variables and scalar
// parameters live in int slots, and each buffer the kernel touches has a
// resolved-slice slot filled lazily on first access — one machine-map lookup
// per buffer per run instead of one per element access.
type cenv struct {
	ints []int64
	bufs [][]float32
	m    *Machine
}

// compiledKernel is a cached closure program for one kernel on one machine.
type compiledKernel struct {
	run    stmtFn
	slots  map[*ir.Var]int
	nSlots int
	nBufs  int
	// env is reused across runs (machines are single-threaded): int slots
	// are always written before read, so only the buffer-resolution cache
	// needs clearing between runs.
	env *cenv
}

type intFn func(*cenv) int64
type floatFn func(*cenv) float32
type stmtFn func(*cenv)

// compiler assigns variable slots and resolves buffers.
type compiler struct {
	m        *Machine
	slots    map[*ir.Var]int
	nSlots   int
	bufSlots map[*ir.Buffer]int
	kernel   *ir.Kernel
	// vectorize enables the affine loop-nest vectorizer (vector.go);
	// nVector/nFallback count nests lowered to microkernels vs innermost
	// compute loops left on closures, reported into ExecStats by Run.
	vectorize bool
	nVector   int64
	nFallback int64
	// gemm enables whole-nest GEMM recognition (gemm.go), tried before the
	// per-loop vectorizer; nGemm counts recognized nests. Cleared while
	// compiling a GEMM nest's replay twin.
	gemm  bool
	nGemm int64
}

func (c *compiler) slot(v *ir.Var) int {
	s, ok := c.slots[v]
	if !ok {
		s = c.nSlots
		c.slots[v] = s
		c.nSlots++
	}
	return s
}

func (c *compiler) bufSlot(b *ir.Buffer) int {
	s, ok := c.bufSlots[b]
	if !ok {
		s = len(c.bufSlots)
		c.bufSlots[b] = s
	}
	return s
}

// bufferRef resolves data lazily into the environment's buffer slot: Alloc
// statements bind buffers during execution, so the first touch must read the
// machine map, but every later access in the same run hits the cached slice.
func (c *compiler) bufferRef(b *ir.Buffer) func(*cenv) []float32 {
	s := c.bufSlot(b)
	return func(e *cenv) []float32 {
		data := e.bufs[s]
		if data == nil {
			data = e.m.bufs[b]
			if data == nil {
				panic(fmt.Sprintf("load from unbound buffer %s", b.Name))
			}
			e.bufs[s] = data
		}
		return data
	}
}

// offsetFn compiles a multi-dimensional index into a flat-offset closure
// with bounds checks identical to the interpreter's. Constant dimensions
// (the common case: only parameterized folded kernels have symbolic shapes)
// are folded at compile time so the per-access path does no dim evaluation.
func (c *compiler) offsetFn(b *ir.Buffer, idx []ir.Expr) intFn {
	idxFns := make([]intFn, len(idx))
	constDims := make([]int64, len(idx))
	allConst := true
	for i := range idx {
		idxFns[i] = c.intFn(idx[i])
		if imm, ok := b.Shape[i].(*ir.IntImm); ok {
			constDims[i] = imm.Value
		} else {
			allConst = false
		}
	}
	name := b.Name
	if allConst {
		if len(idx) == 1 {
			x0, dim := idxFns[0], constDims[0]
			return func(e *cenv) int64 {
				x := x0(e)
				if x < 0 || x >= dim {
					panic(fmt.Sprintf("index %d out of bounds [0,%d) in dim %d of %s", x, dim, 0, name))
				}
				return x
			}
		}
		return func(e *cenv) int64 {
			off := int64(0)
			for i, fn := range idxFns {
				dim := constDims[i]
				x := fn(e)
				if x < 0 || x >= dim {
					panic(fmt.Sprintf("index %d out of bounds [0,%d) in dim %d of %s", x, dim, i, name))
				}
				off = off*dim + x
			}
			return off
		}
	}
	dimFns := make([]intFn, len(idx))
	for i := range idx {
		dimFns[i] = c.intFn(b.Shape[i])
	}
	return func(e *cenv) int64 {
		off := int64(0)
		for i := range idxFns {
			dim := dimFns[i](e)
			x := idxFns[i](e)
			if x < 0 || x >= dim {
				panic(fmt.Sprintf("index %d out of bounds [0,%d) in dim %d of %s", x, dim, i, name))
			}
			off = off*dim + x
		}
		return off
	}
}

func (c *compiler) intFn(x ir.Expr) intFn {
	switch v := x.(type) {
	case *ir.IntImm:
		val := v.Value
		return func(*cenv) int64 { return val }
	case *ir.Var:
		s := c.slot(v)
		return func(e *cenv) int64 { return e.ints[s] }
	case *ir.Binary:
		a, b := c.intFn(v.A), c.intFn(v.B)
		// Leaf forms of the operands: index arithmetic is overwhelmingly
		// chains of Add/Mul over loop variables and constants, so collapsing
		// a leaf operand into the parent closure removes one call per node
		// per element access.
		aImm, aIsImm := v.A.(*ir.IntImm)
		bImm, bIsImm := v.B.(*ir.IntImm)
		aVar, aIsVar := v.A.(*ir.Var)
		bVar, bIsVar := v.B.(*ir.Var)
		switch v.Op {
		case ir.Add:
			switch {
			case aIsVar && bIsVar:
				as, bs := c.slot(aVar), c.slot(bVar)
				return func(e *cenv) int64 { return e.ints[as] + e.ints[bs] }
			case aIsVar && bIsImm:
				as, k := c.slot(aVar), bImm.Value
				return func(e *cenv) int64 { return e.ints[as] + k }
			case bIsImm:
				k := bImm.Value
				return func(e *cenv) int64 { return a(e) + k }
			case bIsVar:
				bs := c.slot(bVar)
				return func(e *cenv) int64 { return a(e) + e.ints[bs] }
			case aIsImm:
				k := aImm.Value
				return func(e *cenv) int64 { return k + b(e) }
			case aIsVar:
				as := c.slot(aVar)
				return func(e *cenv) int64 { return e.ints[as] + b(e) }
			}
			return func(e *cenv) int64 { return a(e) + b(e) }
		case ir.Sub:
			return func(e *cenv) int64 { return a(e) - b(e) }
		case ir.Mul:
			switch {
			case aIsVar && bIsVar:
				as, bs := c.slot(aVar), c.slot(bVar)
				return func(e *cenv) int64 { return e.ints[as] * e.ints[bs] }
			case aIsVar && bIsImm:
				as, k := c.slot(aVar), bImm.Value
				return func(e *cenv) int64 { return e.ints[as] * k }
			case bIsImm:
				k := bImm.Value
				return func(e *cenv) int64 { return a(e) * k }
			case bIsVar:
				bs := c.slot(bVar)
				return func(e *cenv) int64 { return a(e) * e.ints[bs] }
			case aIsImm:
				k := aImm.Value
				return func(e *cenv) int64 { return k * b(e) }
			case aIsVar:
				as := c.slot(aVar)
				return func(e *cenv) int64 { return e.ints[as] * b(e) }
			}
			return func(e *cenv) int64 { return a(e) * b(e) }
		case ir.Div:
			return func(e *cenv) int64 { return a(e) / b(e) }
		case ir.Mod:
			return func(e *cenv) int64 { return a(e) % b(e) }
		case ir.MaxOp:
			return func(e *cenv) int64 { return maxI(a(e), b(e)) }
		case ir.MinOp:
			return func(e *cenv) int64 { return minI(a(e), b(e)) }
		case ir.LT:
			return func(e *cenv) int64 { return b2i(a(e) < b(e)) }
		case ir.GE:
			return func(e *cenv) int64 { return b2i(a(e) >= b(e)) }
		case ir.EQ:
			return func(e *cenv) int64 { return b2i(a(e) == b(e)) }
		case ir.And:
			return func(e *cenv) int64 { return b2i(a(e) != 0 && b(e) != 0) }
		}
	case *ir.Select:
		cond, a, b := c.intFn(v.Cond), c.intFn(v.A), c.intFn(v.B)
		return func(e *cenv) int64 {
			if cond(e) != 0 {
				return a(e)
			}
			return b(e)
		}
	}
	panic(fmt.Sprintf("not an int expr: %T %v", x, x))
}

func (c *compiler) floatFn(x ir.Expr) floatFn {
	switch v := x.(type) {
	case *ir.FloatImm:
		val := float32(v.Value)
		return func(*cenv) float32 { return val }
	case *ir.IntImm:
		val := float32(v.Value)
		return func(*cenv) float32 { return val }
	case *ir.Load:
		ref := c.bufferRef(v.Buf)
		off := c.offsetFn(v.Buf, v.Index)
		return func(e *cenv) float32 { return ref(e)[off(e)] }
	case *ir.ChannelRead:
		fifo := c.m.Channel(v.Ch)
		name := v.Ch.Name
		return func(*cenv) float32 {
			val, ok := fifo.Pop()
			if !ok {
				panic(deadlockPanic{channel: name})
			}
			return val
		}
	case *ir.Binary:
		a, b := c.floatFn(v.A), c.floatFn(v.B)
		switch v.Op {
		case ir.Add:
			return func(e *cenv) float32 { return a(e) + b(e) }
		case ir.Sub:
			return func(e *cenv) float32 { return a(e) - b(e) }
		case ir.Mul:
			return func(e *cenv) float32 { return a(e) * b(e) }
		case ir.Div:
			return func(e *cenv) float32 { return a(e) / b(e) }
		case ir.MaxOp:
			return func(e *cenv) float32 { return maxF(a(e), b(e)) }
		case ir.MinOp:
			return func(e *cenv) float32 { return minF(a(e), b(e)) }
		}
		panic(fmt.Sprintf("op %s not valid on floats", v.Op))
	case *ir.Call:
		args := make([]floatFn, len(v.Args))
		for i, a := range v.Args {
			args[i] = c.floatFn(a)
		}
		switch v.Fn {
		case "exp":
			return func(e *cenv) float32 { return expF(args[0](e)) }
		case "sqrt":
			return func(e *cenv) float32 { return sqrtF(args[0](e)) }
		case "max":
			return func(e *cenv) float32 { return maxF(args[0](e), args[1](e)) }
		case "min":
			return func(e *cenv) float32 { return minF(args[0](e), args[1](e)) }
		}
		panic(fmt.Sprintf("unknown intrinsic %q", v.Fn))
	case *ir.Select:
		cond := c.intFn(v.Cond)
		a, b := c.floatFn(v.A), c.floatFn(v.B)
		return func(e *cenv) float32 {
			if cond(e) != 0 {
				return a(e)
			}
			return b(e)
		}
	}
	panic(fmt.Sprintf("not a float expr: %T %v", x, x))
}

func (c *compiler) stmtFn(s ir.Stmt) stmtFn {
	switch x := s.(type) {
	case nil:
		return func(*cenv) {}
	case *ir.Block:
		fns := make([]stmtFn, len(x.Stmts))
		for i, st := range x.Stmts {
			fns[i] = c.stmtFn(st)
		}
		return func(e *cenv) {
			for _, f := range fns {
				f(e)
			}
		}
	case *ir.Alloc:
		buf := x.Buf
		s := c.bufSlot(buf)
		dimFns := make([]intFn, len(buf.Shape))
		for i, d := range buf.Shape {
			dimFns[i] = c.intFn(d)
		}
		return func(e *cenv) {
			n := int64(1)
			for _, d := range dimFns {
				n *= d(e)
			}
			e.m.allocFor(buf, n)
			// Refresh the cached resolution: allocFor may have replaced the
			// backing slice.
			e.bufs[s] = e.m.bufs[buf]
		}
	case *ir.For:
		if c.gemm {
			if fn := c.gemmLoop(x); fn != nil {
				c.nGemm++
				return fn
			}
		}
		if c.vectorize {
			if fn := c.vectorLoop(x); fn != nil {
				c.nVector++
				return fn
			}
			if innermostComputeLoop(x) {
				// Countable bailout: an innermost loop with stores or
				// channel ops stays on the scalar closure tier.
				c.nFallback++
			}
		}
		extent := c.intFn(x.Extent)
		slot := c.slot(x.Var)
		body := c.stmtFn(x.Body)
		return func(e *cenv) {
			n := extent(e)
			for i := int64(0); i < n; i++ {
				e.ints[slot] = i
				body(e)
			}
		}
	case *ir.Store:
		ref := c.bufferRef(x.Buf)
		off := c.offsetFn(x.Buf, x.Index)
		val := c.floatFn(x.Value)
		return func(e *cenv) { ref(e)[off(e)] = val(e) }
	case *ir.ChannelWrite:
		fifo := c.m.Channel(x.Ch)
		val := c.floatFn(x.Value)
		return func(e *cenv) { fifo.Push(val(e)) }
	case *ir.IfThen:
		cond := c.intFn(x.Cond)
		then := c.stmtFn(x.Then)
		var els stmtFn
		if x.Else != nil {
			els = c.stmtFn(x.Else)
		}
		return func(e *cenv) {
			if cond(e) != 0 {
				then(e)
			} else if els != nil {
				els(e)
			}
		}
	}
	panic(fmt.Sprintf("unknown stmt %T", s))
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Float helpers match the interpreter exactly (math.Max/Min semantics,
// including NaN propagation), so compiled and interpreted runs are
// bit-identical.
func maxF(a, b float32) float32 { return float32(math.Max(float64(a), float64(b))) }
func minF(a, b float32) float32 { return float32(math.Min(float64(a), float64(b))) }
func expF(x float32) float32    { return float32(math.Exp(float64(x))) }
func sqrtF(x float32) float32   { return float32(math.Sqrt(float64(x))) }
