package sim

// Whole-nest GEMM lowering — the vector tier's top rung. When the structural
// matcher (ir.MatchGemmNest) recognizes a conv/dense reduction nest, the
// compiler lowers the *entire* nest onto the cache-blocked cpuref.Gemm, with
// the write-back's elementwise tail (bias add, residual add, ReLU/ReLU6)
// fused into the epilogue. Everything the matcher could not prove
// syntactically is verified here at run time, once per nest entry, against
// the evaluated strides:
//
//   - every reduction-nest level classifies as exactly one of k (reduction),
//     m (A rows), n (B columns) or broadcast, with the k levels forming A's
//     contiguous minor axis and the m levels tiling A's rows exactly;
//   - the B operand is either already the row-major [K,N] matrix (pointwise
//     conv, dense — zero copy) or a [C1,H,W] input whose k/n strides spell
//     out an (F,s) im2col gather, in which case cpuref.Im2colSlice builds the
//     patch matrix into persistent scratch;
//   - the write-back nest walks a contiguous column range of each output row
//     and the destination is injective over the nest (no write ever lands on
//     another write's slot), so epilogue order cannot be observed;
//   - no operand aliases the destination or the accumulator tile.
//
// Any failed check replays the nest on the scalar/vector twin, counted in
// ExecStats.GemmBailouts — the same bit-identity discipline as the per-loop
// vectorizer. The numerical contract is exact: cpuref.Gemm accumulates in
// ascending-k order with per-step float32 rounding (no FMA contraction), the
// bias/residual adds happen after the full k sum in scalar evaluation order,
// and the activation helpers are bit-identical to the closure tier's
// math.Max/math.Min round trips (including NaN and signed-zero behavior).
//
// The compiled gemmLoop, its scratch (C tile, im2col patches) and the
// verified lowering live with the per-machine compiled kernel, so a
// host.RunBatch worker pays the lowering once and reuses the scratch for
// every image in the batch.

import (
	"math"

	"repro/internal/cpuref"
	"repro/internal/ir"
)

const (
	// gemmMinCols: with fewer output columns than this per row, the
	// row-at-a-time vector microkernels already saturate — skip (uncounted).
	gemmMinCols = 8
	// gemmMinMACs: below this many multiply-accumulates the per-entry stride
	// verification outweighs the GEMM win.
	gemmMinMACs = 4096
)

// Reduction-level classes assigned by verifyAssign.
const (
	gclsDrop int8 = iota // extent 1: contributes nothing
	gclsK                // reduction level (no tile/dest dependence)
	gclsM                // tiles A's row axis
	gclsN                // tiles B's column axis
	gclsB                // broadcast: only the destination depends on it
)

// tryGemm outcomes.
const (
	gemmOK   = iota // executed on the GEMM path
	gemmSkip        // unprofitable / zero-trip: run the twin, not a bailout
	gemmBail        // guard failure: run the twin, counted in ExecStats
)

// flatAcc is a compiled buffer access plus its per-entry flattening: the
// flat base/stride form evaluated against the current environment, with the
// bounds box already checked.
type flatAcc struct {
	acc  *vecAccess
	str  []int64
	base int64
	data []float32
}

// gemmLoop is a compiled GEMM-lowered nest plus its run-time scratch.
// Machines are single-threaded, so scratch lives with the compiled program
// and is reused across runs (RunBatch amortization).
type gemmLoop struct {
	nOuter, nRed, nEpi int

	redExt  []intFn // outer extents ++ reduction-part extents
	epiExt  []intFn // outer extents ++ write-part extents
	initExt []intFn // init-part extents

	initToRed []int // init level -> reduction-list index
	epiToRed  []int // epi level -> reduction-list index, -1 if not shared

	faT, faA, faB, faD flatAcc
	faCh               []flatAcc

	initVal floatFn
	act     ir.GemmAct
	twin    stmtFn // scalar/vector replay for skips and bailouts

	// ---- per-entry scratch (sized at compile time) ----
	ext, eext, iext              []int64
	cls                          []int8
	sDr                          []int64 // destination stride per reduction-list var
	nrs                          []int64 // column radix per n-classified var
	bc0, bc1, bc2                []int64 // per-dim B coefficients (im2col probe)
	kIdx, mIdx, nIdx, eIdx, dIdx []int

	gA, gB                   *flatAcc
	M, K, N, nCov            int64
	direct                   bool
	icC1, icH, icW, icF, icS int64

	rowExt, rowD, rowC []int64
	rowCh              [][]int64
	chOff              []int64
	chCol              []bool
	rowIdx             []int64

	cbuf, patches []float32
}

// gemmLoop tries to lower the whole nest rooted at f onto cpuref.Gemm; nil
// means "not recognized", and the caller falls through to the per-loop
// vectorizer.
func (c *compiler) gemmLoop(f *ir.For) stmtFn {
	g := ir.MatchGemmNest(f)
	if g == nil {
		return nil
	}
	// The accumulator tile must be kernel-private: allocated here and never
	// referenced outside the nest, so replacing its per-element history with
	// one bulk GEMM is unobservable.
	if c.kernel == nil || !gemmBufPrivate(c.kernel.Body, f, g.T) {
		return nil
	}
	redVars := append(append([]*ir.Var{}, g.OuterVars...), g.Red.Vars...)
	epiVars := append(append([]*ir.Var{}, g.OuterVars...), g.Write.Vars...)
	gl := &gemmLoop{
		nOuter: len(g.OuterVars),
		nRed:   len(redVars),
		nEpi:   len(epiVars),
		act:    g.Act,
	}
	for _, x := range g.OuterExtents {
		gl.redExt = append(gl.redExt, c.intFn(x))
		gl.epiExt = append(gl.epiExt, c.intFn(x))
	}
	for _, x := range g.Red.Extents {
		gl.redExt = append(gl.redExt, c.intFn(x))
	}
	for _, x := range g.Write.Extents {
		gl.epiExt = append(gl.epiExt, c.intFn(x))
	}
	for _, x := range g.Init.Extents {
		gl.initExt = append(gl.initExt, c.intFn(x))
	}
	findRed := func(v *ir.Var) int {
		for i, rv := range redVars {
			if rv == v {
				return i
			}
		}
		return -1
	}
	for _, v := range g.Init.Vars {
		r := findRed(v)
		if r < 0 {
			return nil // matcher guarantees this; belt and braces
		}
		gl.initToRed = append(gl.initToRed, r)
	}
	for _, v := range epiVars {
		gl.epiToRed = append(gl.epiToRed, findRed(v))
	}

	gl.faT.acc = c.access(g.T, g.Red.Store.Index, redVars)
	gl.faA.acc = c.access(g.LoadA.Buf, g.LoadA.Index, redVars)
	gl.faB.acc = c.access(g.LoadB.Buf, g.LoadB.Index, redVars)
	gl.faD.acc = c.access(g.D, g.Write.Store.Index, epiVars)
	if gl.faT.acc == nil || gl.faA.acc == nil || gl.faB.acc == nil || gl.faD.acc == nil {
		return nil
	}
	for _, ld := range g.Chain {
		a := c.access(ld.Buf, ld.Index, epiVars)
		if a == nil {
			return nil
		}
		gl.faCh = append(gl.faCh, flatAcc{acc: a})
	}
	gl.initVal = c.floatFn(g.Init.Store.Value)

	// Compile the replay twin with GEMM lowering off (the per-loop
	// vectorizer still applies, so bailouts replay fast).
	c.gemm = false
	gl.twin = c.stmtFn(f)
	c.gemm = true

	nR, nE, nCh := gl.nRed, gl.nEpi, len(gl.faCh)
	gl.ext = make([]int64, nR)
	gl.eext = make([]int64, nE)
	gl.iext = make([]int64, len(gl.initExt))
	gl.cls = make([]int8, nR)
	gl.sDr = make([]int64, nR)
	gl.nrs = make([]int64, nR)
	gl.bc0 = make([]int64, nR)
	gl.bc1 = make([]int64, nR)
	gl.bc2 = make([]int64, nR)
	gl.kIdx = make([]int, 0, nR)
	gl.mIdx = make([]int, 0, nR)
	gl.nIdx = make([]int, 0, nR)
	gl.eIdx = make([]int, 0, nE)
	gl.dIdx = make([]int, 0, nE)
	gl.faT.str = make([]int64, nR)
	gl.faA.str = make([]int64, nR)
	gl.faB.str = make([]int64, nR)
	gl.faD.str = make([]int64, nE)
	for i := range gl.faCh {
		gl.faCh[i].str = make([]int64, nE)
	}
	gl.rowExt = make([]int64, nE)
	gl.rowD = make([]int64, nE)
	gl.rowC = make([]int64, nE)
	gl.rowCh = make([][]int64, nCh)
	for i := range gl.rowCh {
		gl.rowCh[i] = make([]int64, nE)
	}
	gl.chOff = make([]int64, nCh)
	gl.chCol = make([]bool, nCh)
	gl.rowIdx = make([]int64, nE)
	return gl.run
}

// gemmBufPrivate reports whether b is allocated by the kernel itself and
// every load/store of b sits inside nest f.
func gemmBufPrivate(body ir.Stmt, f *ir.For, b *ir.Buffer) bool {
	refs := func(s ir.Stmt) int {
		n := 0
		ir.WalkStmt(s, func(st ir.Stmt) {
			if sto, ok := st.(*ir.Store); ok && sto.Buf == b {
				n++
			}
		})
		ir.WalkExprs(s, func(x ir.Expr) {
			if ld, ok := x.(*ir.Load); ok && ld.Buf == b {
				n++
			}
		})
		return n
	}
	alloc := false
	ir.WalkStmt(body, func(st ir.Stmt) {
		if al, ok := st.(*ir.Alloc); ok && al.Buf == b {
			alloc = true
		}
	})
	return alloc && refs(body) == refs(f)
}

func (gl *gemmLoop) run(e *cenv) {
	switch gl.tryGemm(e) {
	case gemmOK:
		if st := e.m.stats; st != nil {
			st.GemmRuns.Add(1)
		}
	case gemmBail:
		if st := e.m.stats; st != nil {
			st.GemmBailouts.Add(1)
		}
		gl.twin(e)
	default:
		gl.twin(e)
	}
}

// flatten evaluates fa's flat base/strides over the given extents and checks
// the per-dimension bounds box plus the flat upper bound, exactly like the
// per-loop vectorizer's setup.
func (gl *gemmLoop) flatten(fa *flatAcc, e *cenv, ext []int64) bool {
	a := fa.acc
	fa.data = a.ref(e)
	str := fa.str
	for l := range str {
		str[l] = 0
	}
	fb, maxFlat := int64(0), int64(0)
	for d := range a.dims {
		dim := a.dims[d](e)
		base := a.bases[d](e)
		lo, hi := base, base
		for l := range ext {
			cv := a.coefs[d][l](e)
			if cv >= 0 {
				hi += cv * (ext[l] - 1)
			} else {
				lo += cv * (ext[l] - 1)
			}
			str[l] = str[l]*dim + cv
		}
		if lo < 0 || hi >= dim {
			return false
		}
		fb = fb*dim + base
		maxFlat = maxFlat*dim + hi
	}
	if maxFlat >= int64(len(fa.data)) {
		return false
	}
	fa.base = fb
	return true
}

func (gl *gemmLoop) tryGemm(e *cenv) int {
	for i, fn := range gl.redExt {
		v := fn(e)
		if v <= 0 {
			return gemmSkip
		}
		gl.ext[i] = v
	}
	for i, fn := range gl.epiExt {
		v := fn(e)
		if v <= 0 {
			return gemmSkip
		}
		gl.eext[i] = v
	}
	for i, fn := range gl.initExt {
		v := fn(e)
		if v <= 0 {
			return gemmSkip
		}
		gl.iext[i] = v
	}
	// The init loops must cover exactly the reduction's tile walk, and every
	// shared write-back level must agree with its reduction extent.
	for i, r := range gl.initToRed {
		if gl.iext[i] != gl.ext[r] {
			return gemmBail
		}
	}
	for i := gl.nOuter; i < gl.nEpi; i++ {
		if r := gl.epiToRed[i]; r >= 0 && gl.eext[i] != gl.ext[r] {
			return gemmBail
		}
	}
	if !gl.flatten(&gl.faT, e, gl.ext) ||
		!gl.flatten(&gl.faA, e, gl.ext) ||
		!gl.flatten(&gl.faB, e, gl.ext) ||
		!gl.flatten(&gl.faD, e, gl.eext) {
		return gemmBail
	}
	for i := range gl.faCh {
		if !gl.flatten(&gl.faCh[i], e, gl.eext) {
			return gemmBail
		}
	}
	for i := 0; i < gl.nEpi; i++ {
		if gl.faD.str[i] < 0 {
			return gemmBail
		}
	}
	for r := range gl.sDr {
		gl.sDr[r] = 0
	}
	for i := 0; i < gl.nEpi; i++ {
		if r := gl.epiToRed[i]; r >= 0 {
			gl.sDr[r] = gl.faD.str[i]
		}
	}
	if !gl.verifyAssign(e, &gl.faA, &gl.faB) && !gl.verifyAssign(e, &gl.faB, &gl.faA) {
		return gemmBail
	}
	if !gl.verifyEpi() {
		return gemmBail
	}
	if gl.nCov < gemmMinCols || gl.M*gl.K*gl.nCov < gemmMinMACs {
		return gemmSkip
	}
	// Aliasing: the GEMM reads all of A/B up front and the epilogue rewrites
	// D afterwards, so any overlap between operands, tile and destination
	// could observe a different interleaving than the scalar nest.
	if overlaps(gl.faD.data, gl.gA.data) || overlaps(gl.faD.data, gl.gB.data) ||
		overlaps(gl.faD.data, gl.faT.data) ||
		overlaps(gl.faT.data, gl.gA.data) || overlaps(gl.faT.data, gl.gB.data) {
		return gemmBail
	}
	for i := range gl.faCh {
		if overlaps(gl.faCh[i].data, gl.faD.data) || overlaps(gl.faCh[i].data, gl.faT.data) {
			return gemmBail
		}
	}
	gl.execute(e)
	return gemmOK
}

// verifyAssign classifies every reduction-nest level against the operand
// assignment (fa = row operand A, fb = column operand B) and checks the A
// layout and B mode. The product's operand order is commutative for the
// rounding contract (a single float32 multiply), so the caller tries both.
func (gl *gemmLoop) verifyAssign(e *cenv, fa, fb *flatAcc) bool {
	sT, sa, sb := gl.faT.str, fa.str, fb.str
	kIdx, mIdx, nIdx := gl.kIdx[:0], gl.mIdx[:0], gl.nIdx[:0]
	for r := 0; r < gl.nRed; r++ {
		gl.nrs[r] = 0
		if gl.ext[r] == 1 {
			gl.cls[r] = gclsDrop
			continue
		}
		st, sA, sB, sd := sT[r], sa[r], sb[r], gl.sDr[r]
		if st < 0 || sA < 0 || sB < 0 {
			return false
		}
		switch {
		case st == 0 && sd == 0:
			// Pure reduction level. At an outer position the scalar program
			// re-initializes the tile between its iterations, which a single
			// GEMM would sum across — bail.
			if r < gl.nOuter || (sA == 0 && sB == 0) {
				return false
			}
			gl.cls[r] = gclsK
			kIdx = append(kIdx, r)
		case r >= gl.nOuter && st == 0:
			// Output-shaped level without its own tile slot: the scalar nest
			// interleaves different (m,n) sums through one accumulator.
			return false
		case sA != 0 && sB != 0:
			return false // drives both operands: not matmul-shaped
		case sA != 0:
			gl.cls[r] = gclsM
			mIdx = append(mIdx, r)
		case sB != 0:
			gl.cls[r] = gclsN
			nIdx = append(nIdx, r)
		default:
			if sd == 0 {
				return false
			}
			gl.cls[r] = gclsB
		}
	}
	// k levels must form A's contiguous minor axis in nest order.
	K := int64(1)
	for i := len(kIdx) - 1; i >= 0; i-- {
		if sa[kIdx[i]] != K {
			return false
		}
		K *= gl.ext[kIdx[i]]
	}
	// m levels must tile A's row axis exactly: strides K, K·e1, K·e1·e2, …
	sortIdxBy(mIdx, func(r int) int64 { return sa[r] })
	M, want := int64(1), K
	for _, r := range mIdx {
		if sa[r] != want {
			return false
		}
		want *= gl.ext[r]
		M *= gl.ext[r]
	}
	gl.M, gl.K = M, K
	gl.kIdx, gl.mIdx, gl.nIdx = kIdx, mIdx, nIdx
	if gl.tryDirectB(fa, fb) || gl.tryIm2colB(e, fb) {
		gl.gA, gl.gB = fa, fb
		return true
	}
	return false
}

// tryDirectB checks whether fb is already the row-major [K,N] matrix: the n
// levels tile its minor axis exactly and every k level strides by whole rows.
// Zero-copy (pointwise conv after fold, dense).
func (gl *gemmLoop) tryDirectB(fa, fb *flatAcc) bool {
	sb := fb.str
	sortIdxBy(gl.nIdx, func(r int) int64 { return sb[r] })
	N, want := int64(1), int64(1)
	for _, r := range gl.nIdx {
		if sb[r] != want {
			return false
		}
		gl.nrs[r] = sb[r]
		want *= gl.ext[r]
		N *= gl.ext[r]
	}
	for _, r := range gl.kIdx {
		if sb[r] != N*fa.str[r] {
			return false
		}
	}
	gl.N = N
	gl.direct = true
	return true
}

// tryIm2colB checks whether fb is a rank-3 [C1,H,W] input addressed as
// in[c, s·y+fy, s·x+fx]: the k levels decompose into (channel, fy, fx)
// phases with the patch-row radix (c·F+fy)·F+fx, and the n levels walk the
// output pixels with uniform stride s. On success the operand is lowered by
// cpuref.Im2colSlice into the [C1·F·F, h2·w2] patch matrix.
func (gl *gemmLoop) tryIm2colB(e *cenv, fb *flatAcc) bool {
	a := fb.acc
	if len(a.dims) != 3 {
		return false
	}
	var dims [3]int64
	for d := 0; d < 3; d++ {
		if a.bases[d](e) != 0 {
			return false
		}
		dims[d] = a.dims[d](e)
	}
	probe := func(r int) bool {
		gl.bc0[r] = a.coefs[0][r](e)
		gl.bc1[r] = a.coefs[1][r](e)
		gl.bc2[r] = a.coefs[2][r](e)
		if gl.bc0[r] < 0 || gl.bc1[r] < 0 || gl.bc2[r] < 0 {
			return false
		}
		nz := 0
		if gl.bc0[r] != 0 {
			nz++
		}
		if gl.bc1[r] != 0 {
			nz++
		}
		if gl.bc2[r] != 0 {
			nz++
		}
		return nz == 1
	}
	// k phases, minor to major: fx (input x), fy (input y), channel.
	Fx, Fy, Kc := int64(1), int64(1), int64(1)
	phase := 2
	ka := int64(1)
	for i := len(gl.kIdx) - 1; i >= 0; i-- {
		r := gl.kIdx[i]
		if !probe(r) {
			return false
		}
		switch {
		case gl.bc2[r] != 0:
			if phase != 2 || gl.bc2[r] != ka || ka != Fx {
				return false
			}
			Fx *= gl.ext[r]
		case gl.bc1[r] != 0:
			if phase == 0 || gl.bc1[r] != Fy || ka != Fx*Fy {
				return false
			}
			phase = 1
			Fy *= gl.ext[r]
		default:
			if gl.bc0[r] != Kc || ka != Fx*Fy*Kc {
				return false
			}
			phase = 0
			Kc *= gl.ext[r]
		}
		ka *= gl.ext[r]
	}
	if Fx != Fy {
		return false // Im2col gathers square windows
	}
	f := Fx
	// n levels: output x on the minor input dim, output y on the middle one,
	// all scaled by one convolution stride.
	s := int64(0)
	for _, r := range gl.nIdx {
		if !probe(r) || gl.bc0[r] != 0 {
			return false
		}
		v := gl.bc2[r]
		if v == 0 {
			v = gl.bc1[r]
		}
		if s == 0 || v < s {
			s = v
		}
	}
	if s == 0 {
		s = 1
	}
	sortIdxBy(gl.nIdx, func(r int) int64 { return gl.bc2[r] + gl.bc1[r] })
	w2x, h2y := int64(1), int64(1)
	for _, r := range gl.nIdx {
		if gl.bc2[r] == 0 {
			continue
		}
		if gl.bc2[r] != w2x*s {
			return false
		}
		w2x *= gl.ext[r]
	}
	for _, r := range gl.nIdx {
		if gl.bc1[r] == 0 {
			continue
		}
		if gl.bc1[r] != h2y*s {
			return false
		}
		h2y *= gl.ext[r]
	}
	if dims[1] < f || dims[2] < f {
		return false
	}
	w2 := (dims[2]-f)/s + 1
	h2 := (dims[1]-f)/s + 1
	// The x levels must cover a full output row (columns are contiguous in
	// the patch matrix); partial y coverage just reads fewer rows.
	if w2x != w2 || h2y > h2 || Kc > dims[0] {
		return false
	}
	// Im2colSlice reads the whole [C1,H,W] box, which may exceed the
	// scalar-touched region the bounds box proved — require the binding to
	// cover it.
	if dims[0]*dims[1]*dims[2] > int64(len(fb.data)) {
		return false
	}
	for _, r := range gl.nIdx {
		if gl.bc2[r] != 0 {
			gl.nrs[r] = gl.bc2[r] / s
		} else {
			gl.nrs[r] = gl.bc1[r] / s * w2
		}
	}
	gl.N = h2 * w2
	gl.direct = false
	gl.icC1, gl.icH, gl.icW, gl.icF, gl.icS = dims[0], dims[1], dims[2], f, s
	return true
}

// verifyEpi checks the write-back nest: its n levels walk a contiguous
// [0,nCov) column prefix of each output row, every post-add chain is either
// column-shaped (residual) or row-invariant (bias), and the destination is
// injective over the nest so emission order is unobservable.
func (gl *gemmLoop) verifyEpi() bool {
	eIdx := gl.eIdx[:0]
	for i := 0; i < gl.nEpi; i++ {
		if r := gl.epiToRed[i]; r >= 0 && gl.cls[r] == gclsN {
			eIdx = append(eIdx, i)
		}
	}
	sortIdxBy(eIdx, func(i int) int64 { return gl.nrs[gl.epiToRed[i]] })
	nCov, want := int64(1), int64(1)
	for _, i := range eIdx {
		r := gl.epiToRed[i]
		if gl.nrs[r] != want || gl.faD.str[i] != gl.nrs[r] {
			return false
		}
		want *= gl.eext[i]
		nCov *= gl.eext[i]
	}
	if nCov > gl.N {
		return false
	}
	gl.nCov = nCov
	for ch := range gl.faCh {
		col, inv := true, true
		for _, i := range eIdx {
			sc := gl.faCh[ch].str[i]
			if sc != gl.nrs[gl.epiToRed[i]] {
				col = false
			}
			if sc != 0 {
				inv = false
			}
		}
		if !col && !inv {
			return false
		}
		gl.chCol[ch] = col
	}
	dIdx := gl.dIdx[:0]
	for i := 0; i < gl.nEpi; i++ {
		if gl.eext[i] > 1 {
			dIdx = append(dIdx, i)
		}
	}
	sortIdxBy(dIdx, func(i int) int64 { return gl.faD.str[i] })
	span := int64(0)
	for _, i := range dIdx {
		sd := gl.faD.str[i]
		if sd <= span {
			return false
		}
		span += sd * (gl.eext[i] - 1)
	}
	return true
}

func (gl *gemmLoop) execute(e *cenv) {
	m, k, n := gl.M, gl.K, gl.N
	mn := m * n
	if int64(cap(gl.cbuf)) < mn {
		gl.cbuf = make([]float32, mn)
	}
	cb := gl.cbuf[:mn]
	v0 := gl.initVal(e)
	if math.Float32bits(v0) == 0 {
		clear(cb)
	} else {
		for i := range cb {
			cb[i] = v0
		}
	}
	a := gl.gA.data[gl.gA.base:]
	var b []float32
	if gl.direct {
		b = gl.gB.data[gl.gB.base:]
	} else {
		gl.patches = cpuref.Im2colSlice(gl.gB.data,
			int(gl.icC1), int(gl.icH), int(gl.icW), int(gl.icF), int(gl.icS), 0, gl.patches)
		b = gl.patches
	}
	// workers=1: machines run inside RunBatch's worker pool — nesting a
	// goroutine fan-out here would oversubscribe the host (see
	// cpuref.Conv2DParallel).
	cpuref.Gemm(a, b, cb, int(m), int(k), int(n), 1)
	gl.epilogue(cb)
}

// epilogue walks the write-back rows in nest order, fusing the post-add
// chain and activation into one pass over each [0,nCov) column range.
func (gl *gemmLoop) epilogue(cb []float32) {
	nCov := gl.nCov
	nch := len(gl.faCh)
	nRow := 0
	for i := 0; i < gl.nEpi; i++ {
		r := gl.epiToRed[i]
		if r >= 0 && gl.cls[r] == gclsN {
			continue
		}
		gl.rowExt[nRow] = gl.eext[i]
		gl.rowD[nRow] = gl.faD.str[i]
		cs := int64(0)
		if r >= 0 && gl.cls[r] == gclsM {
			cs = gl.gA.str[r] / gl.K * gl.N
		}
		gl.rowC[nRow] = cs
		for ch := 0; ch < nch; ch++ {
			gl.rowCh[ch][nRow] = gl.faCh[ch].str[i]
		}
		nRow++
	}
	offD, cRow := gl.faD.base, int64(0)
	for ch := 0; ch < nch; ch++ {
		gl.chOff[ch] = gl.faCh[ch].base
	}
	idx := gl.rowIdx[:nRow]
	for i := range idx {
		idx[i] = 0
	}
	dD := gl.faD.data
	for {
		gl.emitRow(dD[offD:offD+nCov], cb[cRow:cRow+nCov])
		l := nRow - 1
		for ; l >= 0; l-- {
			idx[l]++
			if idx[l] < gl.rowExt[l] {
				offD += gl.rowD[l]
				cRow += gl.rowC[l]
				for ch := 0; ch < nch; ch++ {
					gl.chOff[ch] += gl.rowCh[ch][l]
				}
				break
			}
			idx[l] = 0
			offD -= (gl.rowExt[l] - 1) * gl.rowD[l]
			cRow -= (gl.rowExt[l] - 1) * gl.rowC[l]
			for ch := 0; ch < nch; ch++ {
				gl.chOff[ch] -= (gl.rowExt[l] - 1) * gl.rowCh[ch][l]
			}
		}
		if l < 0 {
			return
		}
	}
}

// emitRow writes one output row: d[i] = act(c[i] + chain…), with the adds in
// scalar evaluation order (each one rounding to float32 before the next).
func (gl *gemmLoop) emitRow(d, c []float32) {
	switch len(gl.faCh) {
	case 0:
		switch gl.act {
		case ir.GemmActRelu:
			for i, v := range c {
				d[i] = reluFast(v)
			}
		case ir.GemmActRelu6:
			for i, v := range c {
				d[i] = relu6Fast(v)
			}
		default:
			copy(d, c)
		}
		return
	case 1:
		ch := &gl.faCh[0]
		if gl.chCol[0] {
			s := ch.data[gl.chOff[0] : gl.chOff[0]+int64(len(c))]
			switch gl.act {
			case ir.GemmActRelu:
				for i, v := range c {
					d[i] = reluFast(v + s[i])
				}
			case ir.GemmActRelu6:
				for i, v := range c {
					d[i] = relu6Fast(v + s[i])
				}
			default:
				for i, v := range c {
					d[i] = v + s[i]
				}
			}
			return
		}
		b := ch.data[gl.chOff[0]]
		switch gl.act {
		case ir.GemmActRelu:
			for i, v := range c {
				d[i] = reluFast(v + b)
			}
		case ir.GemmActRelu6:
			for i, v := range c {
				d[i] = relu6Fast(v + b)
			}
		default:
			for i, v := range c {
				d[i] = v + b
			}
		}
		return
	}
	for i, v := range c {
		for ch := range gl.faCh {
			if gl.chCol[ch] {
				v += gl.faCh[ch].data[gl.chOff[ch]+int64(i)]
			} else {
				v += gl.faCh[ch].data[gl.chOff[ch]]
			}
		}
		switch gl.act {
		case ir.GemmActRelu:
			v = reluFast(v)
		case ir.GemmActRelu6:
			v = relu6Fast(v)
		}
		d[i] = v
	}
}

// reluFast is bit-identical to float32(math.Max(float64(v), 0)) — the
// closure tier's max — including NaN propagation and -0 → +0.
func reluFast(v float32) float32 {
	if v > 0 {
		return v
	}
	if v == v {
		return 0
	}
	return v // NaN
}

// relu6Fast is bit-identical to min(max(v, 0), 6) through the same helpers.
func relu6Fast(v float32) float32 {
	v = reluFast(v)
	if v > 6 {
		return 6
	}
	return v
}

// sortIdxBy insertion-sorts idx ascending by key — the lists are a handful
// of loop levels, and this allocates nothing.
func sortIdxBy(idx []int, key func(int) int64) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && key(idx[j-1]) > key(idx[j]); j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
}
