package sim_test

// Cross-tier bit-identity: the vector tier must produce outputs bit-identical
// to the interpreter oracle and the closure tier on every kernel shape topi
// emits, plus crafted nests that exercise the analyzer's edges (strided
// gather, reversal, aliasing, guard bailouts, zero-trip loops, symbolic
// shapes). External test package: sim must not depend on topi.

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/topi"
)

var allTiers = []sim.Tier{sim.TierInterp, sim.TierClosure, sim.TierVector}

func seeded(seed uint64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillSeq(seed)
	return t
}

// runOpTier executes a constant-shape op on one tier and returns the output
// plus the stats the run accumulated.
func runOpTier(t *testing.T, op *topi.Op, tier sim.Tier, in, w, b, skip *tensor.Tensor) (*tensor.Tensor, sim.StatsSnapshot) {
	t.Helper()
	m := sim.NewMachine()
	m.SetTier(tier)
	st := &sim.ExecStats{}
	m.SetStats(st)
	if op.In != nil {
		m.Bind(op.In, in.Data)
	}
	if op.Weights != nil {
		m.Bind(op.Weights, w.Data)
	}
	if op.Bias != nil {
		m.Bind(op.Bias, b.Data)
	}
	if op.Skip != nil {
		m.Bind(op.Skip, skip.Data)
	}
	for _, sc := range op.Scratches {
		if n, ok := sc.ConstLen(); ok {
			m.Bind(sc, make([]float32, n))
		}
	}
	out := tensor.New(op.OutShape...)
	if op.Out != nil {
		m.Bind(op.Out, out.Data)
	}
	if err := m.Run(op.Kernel, nil); err != nil {
		t.Fatalf("tier %s: %v", tier, err)
	}
	return out, st.Snapshot()
}

func assertBitEqual(t *testing.T, tag string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: elem %d: %v != %v (bit-identity contract)", tag, i, got[i], want[i])
		}
	}
}

// TestTopiKernelsBitIdenticalAcrossTiers runs every kernel family the
// schedules emit on all three tiers and requires bit-equal outputs.
func TestTopiKernelsBitIdenticalAcrossTiers(t *testing.T) {
	type k struct {
		name string
		op   *topi.Op
		// wantVector requires the vector tier to actually lower at least
		// one nest for this kernel (no silent full fallback).
		wantVector bool
	}
	var kernels []k
	mk := func(name string, op *topi.Op, err error, wantVector bool) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		kernels = append(kernels, k{name, op, wantVector})
	}

	convSpec := topi.ConvSpec{Name: "c", C1: 4, H: 12, W: 12, C2: 6, F: 3, S: 1, Relu: true, Bias: true}
	opN, err := topi.Conv2D(convSpec, topi.ConvSched{Naive: true}, topi.ConvIO{})
	mk("conv-naive", opN, err, true)
	opO, err := topi.Conv2D(convSpec, topi.OptSched(5, 2, 2), topi.ConvIO{})
	mk("conv-opt", opO, err, true)
	resSpec := convSpec
	resSpec.Name, resSpec.Residual, resSpec.Relu6, resSpec.Relu = "cr", true, true, false
	opR, err := topi.Conv2D(resSpec, topi.OptSched(5, 2, 2), topi.ConvIO{})
	mk("conv-residual-relu6", opR, err, true)
	opD, err := topi.DepthwiseConv2D(topi.DepthwiseSpec{Name: "dw", C: 4, H: 10, W: 10, F: 3, S: 1, Relu: true, Bias: true}, false, 4, topi.ConvIO{})
	mk("depthwise", opD, err, true)
	opFCn, err := topi.Dense(topi.DenseSpec{Name: "fcn", N: 24, M: 10, Relu: true, Bias: true}, true, 0, topi.ConvIO{})
	mk("dense-naive", opFCn, err, true)
	opFC, err := topi.Dense(topi.DenseSpec{Name: "fc", N: 24, M: 10, Relu: true, Bias: true}, false, 8, topi.ConvIO{})
	mk("dense-opt", opFC, err, true)
	opPM, err := topi.Pool2D(topi.PoolSpec{Name: "pm", C: 3, H: 8, W: 8, F: 2, S: 2}, false, topi.ConvIO{}, false)
	mk("pool-max", opPM, err, true)
	opPA, err := topi.Pool2D(topi.PoolSpec{Name: "pa", C: 3, H: 8, W: 8, F: 2, S: 2, Avg: true}, false, topi.ConvIO{}, false)
	mk("pool-avg", opPA, err, false)
	opSM, err := topi.Softmax("sm", 10, false, topi.ConvIO{})
	mk("softmax", opSM, err, true)
	opPad, err := topi.Pad2D(topi.PadSpec{Name: "pd", C: 3, H: 6, W: 6, P: 1}, topi.ConvIO{})
	mk("pad", opPad, err, false) // div/mod delinearized indices: scalar by design

	for _, tc := range kernels {
		in := seeded(1, 4, 16, 16) // oversized backing data; shapes differ per op
		var ref []float32
		for _, tier := range allTiers {
			w := seeded(2, 8, 4, 3, 3)
			b := seeded(3, 16)
			skip := seeded(4, 8, 12, 12)
			out, st := runOpTier(t, tc.op, tier, in, w, b, skip)
			if tier == sim.TierInterp {
				ref = out.Data
				continue
			}
			assertBitEqual(t, tc.name+"/"+tier.String(), out.Data, ref)
			if tier == sim.TierVector {
				// A whole-nest GEMM lowering (gemm.go) subsumes the per-loop
				// microkernels — either engine satisfies "vectorized".
				vecOK := st.VectorLoops > 0 && st.VectorRuns > 0
				gemmOK := st.GemmLoops > 0 && st.GemmRuns > 0
				if tc.wantVector && !vecOK && !gemmOK {
					t.Errorf("%s: expected vectorized nests, got loops=%d runs=%d fallbacks=%d gemm=%d/%d",
						tc.name, st.VectorLoops, st.VectorRuns, st.FallbackLoops, st.GemmLoops, st.GemmRuns)
				}
				if st.GuardBailouts != 0 {
					t.Errorf("%s: unexpected guard bailouts (%d): in-bounds schedules must vectorize cleanly", tc.name, st.GuardBailouts)
				}
			}
		}
	}
}

// TestParamDenseBitIdenticalAcrossTiers covers symbolic-shape kernels: the
// affine pass must carry symbolic strides (evaluated per nest entry), and
// the merged reduction must still collapse to a unit-stride dot.
func TestParamDenseBitIdenticalAcrossTiers(t *testing.T) {
	pd, err := topi.DenseParam("fcp", 8, true, true, false)
	if err != nil {
		t.Fatal(err)
	}
	scalars, err := pd.Bind(32, 6)
	if err != nil {
		t.Fatal(err)
	}
	in := seeded(7, 32)
	w := seeded(8, 6, 32)
	b := seeded(9, 6)
	var ref []float32
	for _, tier := range allTiers {
		m := sim.NewMachine()
		m.SetTier(tier)
		st := &sim.ExecStats{}
		m.SetStats(st)
		m.Bind(pd.Op.In, in.Data)
		m.Bind(pd.Op.Weights, w.Data)
		m.Bind(pd.Op.Bias, b.Data)
		out := make([]float32, 6)
		m.Bind(pd.Op.Out, out)
		if err := m.Run(pd.Op.Kernel, scalars); err != nil {
			t.Fatalf("tier %s: %v", tier, err)
		}
		if tier == sim.TierInterp {
			ref = out
			continue
		}
		assertBitEqual(t, "dense-param/"+tier.String(), out, ref)
		if tier == sim.TierVector && st.VectorRuns.Load() == 0 {
			t.Error("symbolic dense did not vectorize")
		}
	}
}

// buildNest wraps a store in a counted nest (innermost last).
func buildNest(store ir.Stmt, vars []*ir.Var, extents []int) ir.Stmt {
	s := store
	for i := len(vars) - 1; i >= 0; i-- {
		s = ir.Loop(vars[i], extents[i], s)
	}
	return s
}

func runKernelTier(t *testing.T, kern *ir.Kernel, tier sim.Tier, binds map[*ir.Buffer][]float32, scalars map[*ir.Var]int64) (error, sim.StatsSnapshot) {
	t.Helper()
	m := sim.NewMachine()
	m.SetTier(tier)
	st := &sim.ExecStats{}
	m.SetStats(st)
	for b, data := range binds {
		m.Bind(b, data)
	}
	return m.Run(kern, scalars), st.Snapshot()
}

// TestStridedGatherAndReversal: non-unit and negative strides are affine and
// must vectorize without the copy() fast path corrupting order.
func TestStridedGatherAndReversal(t *testing.T) {
	src := ir.NewBuffer("src", ir.Global, 64)
	dst := ir.NewBuffer("dst", ir.Global, 32)
	i := ir.V("i")
	// dst[i] = src[62 - 2i]: stride -2, base 62.
	store := &ir.Store{Buf: dst, Index: []ir.Expr{i},
		Value: &ir.Load{Buf: src, Index: []ir.Expr{ir.SubE(ir.CInt(62), ir.MulE(i, ir.CInt(2)))}}}
	kern := &ir.Kernel{Name: "rev", Args: []*ir.Buffer{src, dst}, Body: buildNest(store, []*ir.Var{i}, []int{32})}
	if err := kern.Validate(); err != nil {
		t.Fatal(err)
	}
	srcData := make([]float32, 64)
	for j := range srcData {
		srcData[j] = float32(j) * 0.5
	}
	var ref []float32
	for _, tier := range allTiers {
		out := make([]float32, 32)
		err, st := runKernelTier(t, kern, tier, map[*ir.Buffer][]float32{src: srcData, dst: out}, nil)
		if err != nil {
			t.Fatalf("tier %s: %v", tier, err)
		}
		if tier == sim.TierInterp {
			ref = out
			continue
		}
		assertBitEqual(t, "reversal/"+tier.String(), out, ref)
		if tier == sim.TierVector && st.VectorRuns != 1 {
			t.Errorf("reversal gather should vectorize, runs=%d", st.VectorRuns)
		}
	}
}

// TestGuardBailoutReproducesScalarPanic: when the hoisted box check fails,
// the nest must re-run on the scalar closures and surface the identical
// bounds error (message and partial writes included).
func TestGuardBailoutReproducesScalarPanic(t *testing.T) {
	src := ir.NewBuffer("src", ir.Global, 8)
	dst := ir.NewBuffer("dst", ir.Global, 8)
	i := ir.V("i")
	// src[i+4] walks out of bounds at i=4.
	store := &ir.Store{Buf: dst, Index: []ir.Expr{i},
		Value: &ir.Load{Buf: src, Index: []ir.Expr{ir.AddE(i, ir.CInt(4))}}}
	kern := &ir.Kernel{Name: "oob", Args: []*ir.Buffer{src, dst}, Body: buildNest(store, []*ir.Var{i}, []int{8})}
	if err := kern.Validate(); err != nil {
		t.Fatal(err)
	}
	srcData := make([]float32, 8)
	for j := range srcData {
		srcData[j] = float32(j + 1)
	}
	var refErr string
	var refOut []float32
	for _, tier := range allTiers {
		out := make([]float32, 8)
		err, st := runKernelTier(t, kern, tier, map[*ir.Buffer][]float32{src: srcData, dst: out}, nil)
		if err == nil {
			t.Fatalf("tier %s: expected bounds error", tier)
		}
		if !strings.Contains(err.Error(), "out of bounds") {
			t.Fatalf("tier %s: unexpected error %v", tier, err)
		}
		if tier == sim.TierInterp {
			refErr, refOut = err.Error(), out
			continue
		}
		if err.Error() != refErr {
			t.Errorf("tier %s: error %q != oracle %q", tier, err, refErr)
		}
		assertBitEqual(t, "oob-partial-writes/"+tier.String(), out, refOut)
		if tier == sim.TierVector && st.GuardBailouts != 1 {
			t.Errorf("expected exactly one guard bailout, got %d", st.GuardBailouts)
		}
	}
}

// TestAliasedReductionKeepsScalarOrder: when the reduction rhs reads the
// accumulator's own buffer, hoisting the accumulator into a register would
// diverge; the tier must detect the overlap and run in exact element order.
func TestAliasedReductionKeepsScalarOrder(t *testing.T) {
	buf := ir.NewBuffer("a", ir.Global, 16)
	k := ir.V("k")
	// a[0] = a[0] + a[k]: k=0 reads the just-updated accumulator — order
	// sensitive in the extreme.
	store := &ir.Store{Buf: buf, Index: []ir.Expr{ir.CInt(0)},
		Value: ir.AddE(&ir.Load{Buf: buf, Index: []ir.Expr{ir.CInt(0)}},
			&ir.Load{Buf: buf, Index: []ir.Expr{k}})}
	kern := &ir.Kernel{Name: "alias", Args: []*ir.Buffer{buf}, Body: buildNest(store, []*ir.Var{k}, []int{16})}
	if err := kern.Validate(); err != nil {
		t.Fatal(err)
	}
	mkData := func() []float32 {
		d := make([]float32, 16)
		for j := range d {
			d[j] = float32(j)*1.25 + 0.1
		}
		return d
	}
	var ref []float32
	for _, tier := range allTiers {
		data := mkData()
		err, _ := runKernelTier(t, kern, tier, map[*ir.Buffer][]float32{buf: data}, nil)
		if err != nil {
			t.Fatalf("tier %s: %v", tier, err)
		}
		if tier == sim.TierInterp {
			ref = data
			continue
		}
		assertBitEqual(t, "aliased-reduce/"+tier.String(), data, ref)
	}
}

// TestZeroTripNestIsNoop: a zero-extent outer loop must not evaluate inner
// extents, resolve buffers, or bounds-check anything — even when the body
// would be wildly out of bounds.
func TestZeroTripNestIsNoop(t *testing.T) {
	dst := ir.NewBuffer("dst", ir.Global, 4)
	n := ir.Param("n")
	i, j := ir.V("i"), ir.V("j")
	store := &ir.Store{Buf: dst, Index: []ir.Expr{ir.AddE(j, ir.CInt(1000))}, Value: ir.CFloat(1)}
	kern := &ir.Kernel{Name: "zt", Args: []*ir.Buffer{dst}, ScalarArgs: []*ir.Var{n},
		Body: ir.LoopE(i, n, ir.Loop(j, 4, store))}
	if err := kern.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tier := range allTiers {
		out := make([]float32, 4)
		err, _ := runKernelTier(t, kern, tier, map[*ir.Buffer][]float32{dst: out}, map[*ir.Var]int64{n: 0})
		if err != nil {
			t.Fatalf("tier %s: zero-trip nest must be a no-op, got %v", tier, err)
		}
	}
}

// TestVectorTierStatsExposeFallbacks: a kernel mixing a vectorizable nest
// with a non-affine one must report both counters (no silent scalar loops).
func TestVectorTierStatsExposeFallbacks(t *testing.T) {
	src := ir.NewBuffer("src", ir.Global, 16)
	dst := ir.NewBuffer("dst", ir.Global, 16)
	i, j := ir.V("i"), ir.V("j")
	affine := &ir.Store{Buf: dst, Index: []ir.Expr{i}, Value: &ir.Load{Buf: src, Index: []ir.Expr{i}}}
	// mod-indexed: non-affine, stays scalar.
	wrapped := &ir.Store{Buf: dst, Index: []ir.Expr{ir.ModE(j, ir.CInt(16))},
		Value: ir.AddE(&ir.Load{Buf: dst, Index: []ir.Expr{ir.ModE(j, ir.CInt(16))}}, ir.CFloat(1))}
	kern := &ir.Kernel{Name: "mix", Args: []*ir.Buffer{src, dst},
		Body: ir.Seq(ir.Loop(i, 16, affine), ir.Loop(j, 16, wrapped))}
	if err := kern.Validate(); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 16)
	err, st := runKernelTier(t, kern, sim.TierVector, map[*ir.Buffer][]float32{src: make([]float32, 16), dst: out}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.VectorLoops != 1 || st.FallbackLoops != 1 {
		t.Fatalf("want 1 vector + 1 fallback loop, got %d + %d", st.VectorLoops, st.FallbackLoops)
	}
	if st.CacheMisses != 1 {
		t.Fatalf("first run must be a cache miss, got %d", st.CacheMisses)
	}
}

// TestTierCacheKeyedByTier: switching tiers on one machine must not reuse a
// program compiled for the other engine, and repeat runs must hit the cache.
func TestTierCacheKeyedByTier(t *testing.T) {
	src := ir.NewBuffer("s", ir.Global, 8)
	dst := ir.NewBuffer("d", ir.Global, 8)
	i := ir.V("i")
	kern := &ir.Kernel{Name: "cache", Args: []*ir.Buffer{src, dst},
		Body: ir.Loop(i, 8, &ir.Store{Buf: dst, Index: []ir.Expr{i}, Value: &ir.Load{Buf: src, Index: []ir.Expr{i}}})}
	m := sim.NewMachine()
	st := &sim.ExecStats{}
	m.SetStats(st)
	m.Bind(src, make([]float32, 8))
	m.Bind(dst, make([]float32, 8))
	for _, tier := range []sim.Tier{sim.TierVector, sim.TierClosure, sim.TierVector, sim.TierClosure} {
		m.SetTier(tier)
		if err := m.Run(kern, nil); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Snapshot()
	if s.CacheMisses != 2 || s.CacheHits != 2 {
		t.Fatalf("want 2 misses (one per tier) + 2 hits, got %d misses %d hits", s.CacheMisses, s.CacheHits)
	}
}

// TestParseTier covers the -exec flag surface.
func TestParseTier(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want sim.Tier
	}{{"interp", sim.TierInterp}, {"closure", sim.TierClosure}, {"vector", sim.TierVector}} {
		got, err := sim.ParseTier(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseTier(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("round trip %q -> %q", tc.in, got)
		}
	}
	if _, err := sim.ParseTier("turbo"); err == nil {
		t.Fatal("expected error for unknown tier")
	}
}
