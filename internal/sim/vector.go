package sim

// The vector execution tier: affine loop nests are lowered to flat slice
// microkernels instead of per-element closure trees. This is the simulator's
// analogue of the thesis's unroll/kvec vectorization primitives (§5.1): the
// schedules shape conv/dense inner loops into dense inner products exactly so
// hardware can execute them as wide SIMD-style pipelines, and the same shape
// lets the simulator execute them as tight Go loops over float32 slices.
//
// Pipeline, per For encountered during closure compilation (compile.go):
//
//  1. collect the perfect nest rooted at the loop (a chain of single-child
//     For statements ending in exactly one Store);
//  2. decompose every buffer access with the reusable affine pass
//     (ir.Linearize): index = base + Σ stride·var with nest-invariant
//     bases/strides, constant or symbolic (parameterized folded kernels);
//  3. classify the stored value: fill (nest-invariant value), copy (a single
//     affine load), reduction (acc = acc ⊕ rhs: the kvec dot product, sum,
//     max/min pooling), or elementwise map (a float tree over affine loads —
//     bias-add, ReLU, exp, …);
//  4. at run time, evaluate extents/bases/strides once per nest entry, hoist
//     every per-element bounds check into one box check per access, merge
//     adjacent levels whose strides are contiguous (collapsing e.g. the
//     dense ko/ki split back into one unit-stride dot), and dispatch to the
//     microkernel.
//
// Bit-identity contract: microkernels perform the same float32 operations in
// the same order as the interpreter, with every intermediate rounded to
// float32 (products are assigned to a variable before accumulation so the Go
// compiler cannot contract them into an FMA). Anything the analysis cannot
// prove — non-affine indices, channel ops, var-dependent selects, triangular
// nests — falls back per-loop to the closure tier, and every bailout is
// counted (ExecStats.FallbackLoops). If the run-time box check fails (an
// access would leave its buffer), the nest re-runs on the scalar closures to
// reproduce the exact per-element panic (ExecStats.GuardBailouts).

import (
	"unsafe"

	"repro/internal/ir"
)

type vecKind int

const (
	vkFill vecKind = iota
	vkMap
	vkReduce
)

// mexec is the per-element state a map program reads: one resolved slice and
// one flat offset per access. Offsets are advanced by the nest driver.
type mexec struct {
	data [][]float32
	off  []int64
}

// mfn evaluates one element of a map/rhs program. Nest-invariant subtrees
// evaluate through the closure environment (outer loop vars, scalars).
type mfn func(*cenv, *mexec) float32

// vecAccess is one buffer access in compiled form: everything needed to
// evaluate flat base/strides and the bounds box once per nest entry.
type vecAccess struct {
	ref   func(*cenv) []float32
	dims  []intFn   // buffer extents (possibly symbolic)
	bases []intFn   // per-dim affine base
	coefs [][]intFn // per-dim, per-nest-var affine coefficient
}

// vecLoop is a compiled vectorized nest plus its run-time scratch. Machines
// are single-threaded, so scratch lives with the compiled program.
type vecLoop struct {
	kind    vecKind
	nVars   int
	extents []intFn
	accs    []*vecAccess // [0] is always the store destination
	val     floatFn      // vkFill: invariant value
	prog    mfn          // vkMap / generic vkReduce rhs
	op      ir.BinOp     // vkReduce: Add, MaxOp or MinOp
	rhsMul  bool         // vkReduce: rhs is exactly load·load (accs[1]·accs[2])
	rhsLoad bool         // vkReduce: rhs is exactly one load (accs[1])
	bare    bool         // vkMap: value is exactly one load (accs[1]) — copy
	scalar  stmtFn       // closure-tier fallback for guard failures
	// redOuter (run-time) is the count of merged levels outside the
	// reduction suffix; == len(mext) means "execute in map order".
	redOuter int

	// scratch, sized at compile time
	ext  []int64   // raw extents
	str  [][]int64 // flat stride per access per raw level
	base []int64   // flat base per access
	data [][]float32
	mext []int64   // merged extents
	mstr [][]int64 // merged strides per access
	idx  []int64   // odometer
	off  []int64   // current flat offset per access
	me   mexec
}

// vectorLoop tries to lower the nest rooted at f; nil means "not recognized,
// compile it on the closure tier".
func (c *compiler) vectorLoop(f *ir.For) stmtFn {
	vars, extents, store := collectNest(f)
	if store == nil {
		return nil
	}
	if hasChanRead(store.Value) {
		return nil // channel pops are ordered side effects; never vectorized
	}
	vl := &vecLoop{nVars: len(vars)}
	for _, e := range extents {
		vl.extents = append(vl.extents, c.intFn(e))
	}
	dst := c.access(store.Buf, store.Index, vars)
	if dst == nil {
		return nil
	}
	vl.accs = append(vl.accs, dst)

	// Classify the stored value.
	switch {
	case !ir.UsesAnyVar(store.Value, vars) && !hasLoad(store.Value):
		vl.kind = vkFill
		vl.val = c.floatFn(store.Value)
	default:
		if b, ok := store.Value.(*ir.Binary); ok &&
			(b.Op == ir.Add || b.Op == ir.MaxOp || b.Op == ir.MinOp) {
			if ld, ok := b.A.(*ir.Load); ok && ld.Buf == store.Buf && indexEq(ld.Index, store.Index) {
				// acc = acc ⊕ rhs: reduction candidate. The rhs program
				// excludes the accumulator load; if at run time the store
				// varies on the innermost level (no reduction suffix) or
				// the rhs aliases the accumulator, it executes in exact
				// per-element map order instead.
				prog, ok := c.mapProg(b.B, vars, vl)
				if !ok {
					return nil
				}
				vl.kind = vkReduce
				vl.op = b.Op
				vl.prog = prog
				if m, ok := b.B.(*ir.Binary); ok && m.Op == ir.Mul && len(vl.accs) == 3 {
					_, la := m.A.(*ir.Load)
					_, lb := m.B.(*ir.Load)
					vl.rhsMul = la && lb
				}
				if _, ok := b.B.(*ir.Load); ok && len(vl.accs) == 2 {
					vl.rhsLoad = true
				}
				break
			}
		}
		prog, ok := c.mapProg(store.Value, vars, vl)
		if !ok {
			return nil
		}
		vl.kind = vkMap
		vl.prog = prog
		if _, ok := store.Value.(*ir.Load); ok && len(vl.accs) == 2 {
			vl.bare = true
		}
	}

	// Scalar twin for guard bailouts: identical panics and partial writes.
	saved := c.vectorize
	c.vectorize = false
	vl.scalar = c.stmtFn(f)
	c.vectorize = saved

	vl.allocScratch()
	return vl.run
}

// collectNest walks a chain of single-statement For bodies down to a single
// Store. Extents must not reference any enclosing nest variable (triangular
// nests are not boxes). A nil store means the shape was not recognized.
func collectNest(f *ir.For) ([]*ir.Var, []ir.Expr, *ir.Store) {
	var vars []*ir.Var
	var extents []ir.Expr
	s := ir.Stmt(f)
	for {
		switch x := s.(type) {
		case *ir.For:
			if ir.UsesAnyVar(x.Extent, vars) {
				return nil, nil, nil
			}
			vars = append(vars, x.Var)
			extents = append(extents, x.Extent)
			s = x.Body
		case *ir.Block:
			if len(x.Stmts) != 1 {
				return nil, nil, nil
			}
			s = x.Stmts[0]
		case *ir.Store:
			return vars, extents, x
		default:
			return nil, nil, nil
		}
	}
}

// innermostComputeLoop reports whether f is an innermost loop (no nested
// For) that performs stores or channel writes — the unit FallbackLoops
// counts so every scalar bailout is visible in the metrics.
func innermostComputeLoop(f *ir.For) bool {
	inner, compute := true, false
	ir.WalkStmt(f.Body, func(s ir.Stmt) {
		switch s.(type) {
		case *ir.For:
			inner = false
		case *ir.Store, *ir.ChannelWrite:
			compute = true
		}
	})
	return inner && compute
}

func hasChanRead(e ir.Expr) bool {
	found := false
	ir.WalkExpr(e, func(x ir.Expr) {
		if _, ok := x.(*ir.ChannelRead); ok {
			found = true
		}
	})
	return found
}

func hasLoad(e ir.Expr) bool {
	found := false
	ir.WalkExpr(e, func(x ir.Expr) {
		if _, ok := x.(*ir.Load); ok {
			found = true
		}
	})
	return found
}

func indexEq(a, b []ir.Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

// access compiles the affine decomposition of one buffer access, or nil when
// any index is not affine in the nest.
func (c *compiler) access(buf *ir.Buffer, index []ir.Expr, vars []*ir.Var) *vecAccess {
	ap, ok := ir.LinearizeAccess(buf, index, vars)
	if !ok {
		return nil
	}
	a := &vecAccess{ref: c.bufferRef(buf)}
	for d, lin := range ap.Dims {
		a.dims = append(a.dims, c.intFn(buf.Shape[d]))
		a.bases = append(a.bases, c.intFn(lin.Base))
		cf := make([]intFn, len(vars))
		for i, coeff := range lin.Coeffs {
			cf[i] = c.intFn(coeff)
		}
		a.coefs = append(a.coefs, cf)
	}
	return a
}

// mapProg compiles a float value tree into a per-element program. Loads with
// affine indices become registered accesses; nest-invariant subtrees without
// loads evaluate through the closure tier per element (same evaluation count
// as scalar execution). Channel reads and var-dependent selects fail.
func (c *compiler) mapProg(e ir.Expr, vars []*ir.Var, vl *vecLoop) (mfn, bool) {
	if !ir.UsesAnyVar(e, vars) && !hasLoad(e) && !hasChanRead(e) {
		v := c.floatFn(e)
		return func(ce *cenv, _ *mexec) float32 { return v(ce) }, true
	}
	switch x := e.(type) {
	case *ir.Load:
		a := c.access(x.Buf, x.Index, vars)
		if a == nil {
			return nil, false
		}
		j := len(vl.accs)
		vl.accs = append(vl.accs, a)
		return func(_ *cenv, m *mexec) float32 { return m.data[j][m.off[j]] }, true
	case *ir.Binary:
		a, ok := c.mapProg(x.A, vars, vl)
		if !ok {
			return nil, false
		}
		b, ok := c.mapProg(x.B, vars, vl)
		if !ok {
			return nil, false
		}
		switch x.Op {
		case ir.Add:
			return func(ce *cenv, m *mexec) float32 { return a(ce, m) + b(ce, m) }, true
		case ir.Sub:
			return func(ce *cenv, m *mexec) float32 { return a(ce, m) - b(ce, m) }, true
		case ir.Mul:
			return func(ce *cenv, m *mexec) float32 { return a(ce, m) * b(ce, m) }, true
		case ir.Div:
			return func(ce *cenv, m *mexec) float32 { return a(ce, m) / b(ce, m) }, true
		case ir.MaxOp:
			return func(ce *cenv, m *mexec) float32 { return maxF(a(ce, m), b(ce, m)) }, true
		case ir.MinOp:
			return func(ce *cenv, m *mexec) float32 { return minF(a(ce, m), b(ce, m)) }, true
		}
		return nil, false
	case *ir.Call:
		args := make([]mfn, len(x.Args))
		for i, arg := range x.Args {
			fn, ok := c.mapProg(arg, vars, vl)
			if !ok {
				return nil, false
			}
			args[i] = fn
		}
		switch {
		case x.Fn == "exp" && len(args) == 1:
			return func(ce *cenv, m *mexec) float32 { return expF(args[0](ce, m)) }, true
		case x.Fn == "sqrt" && len(args) == 1:
			return func(ce *cenv, m *mexec) float32 { return sqrtF(args[0](ce, m)) }, true
		case x.Fn == "max" && len(args) == 2:
			return func(ce *cenv, m *mexec) float32 { return maxF(args[0](ce, m), args[1](ce, m)) }, true
		case x.Fn == "min" && len(args) == 2:
			return func(ce *cenv, m *mexec) float32 { return minF(args[0](ce, m), args[1](ce, m)) }, true
		}
		return nil, false
	case *ir.FloatImm:
		v := float32(x.Value)
		return func(*cenv, *mexec) float32 { return v }, true
	case *ir.IntImm:
		v := float32(x.Value)
		return func(*cenv, *mexec) float32 { return v }, true
	}
	return nil, false
}

func (vl *vecLoop) allocScratch() {
	r, na := vl.nVars, len(vl.accs)
	vl.ext = make([]int64, r)
	vl.base = make([]int64, na)
	vl.data = make([][]float32, na)
	vl.str = make([][]int64, na)
	vl.mstr = make([][]int64, na)
	for j := range vl.str {
		vl.str[j] = make([]int64, r)
		vl.mstr[j] = make([]int64, r)
	}
	vl.mext = make([]int64, r)
	vl.idx = make([]int64, r)
	vl.off = make([]int64, na)
	vl.me = mexec{data: vl.data, off: vl.off}
}

// run executes one entry of the vectorized nest.
func (vl *vecLoop) run(e *cenv) {
	// Trip counts first, in nest order, stopping at the first empty level —
	// a zero-trip outer loop must not evaluate inner extents or touch
	// buffers, exactly like the scalar tiers.
	for l, fn := range vl.extents {
		n := fn(e)
		if n <= 0 {
			return
		}
		vl.ext[l] = n
	}
	if !vl.setup(e) {
		if st := e.m.stats; st != nil {
			st.GuardBailouts.Add(1)
		}
		vl.scalar(e)
		return
	}
	if st := e.m.stats; st != nil {
		st.VectorRuns.Add(1)
	}
	switch vl.kind {
	case vkFill:
		vl.runFill(e)
	case vkMap:
		vl.runMap(e, len(vl.mext))
	case vkReduce:
		vl.runReduce(e)
	}
}

// setup resolves slices, evaluates bases/strides, performs the hoisted
// bounds box check per access, and merges contiguous levels. Returns false
// when any access could leave [0,dim) in some dimension or overrun its
// slice — the caller re-runs the nest on the scalar closures so the panic
// (message, partial writes) is bit-identical.
func (vl *vecLoop) setup(e *cenv) bool {
	r := vl.nVars
	for j, a := range vl.accs {
		vl.data[j] = a.ref(e)
		fb := int64(0)
		maxFlat := int64(0)
		for l := 0; l < r; l++ {
			vl.str[j][l] = 0
		}
		// Row-major: walk dims outer→inner, scaling the accumulated flat
		// base/strides by each inner extent.
		for d := range a.dims {
			dim := a.dims[d](e)
			base := a.bases[d](e)
			lo, hi := base, base
			for l := 0; l < r; l++ {
				cv := a.coefs[d][l](e)
				if cv >= 0 {
					hi += cv * (vl.ext[l] - 1)
				} else {
					lo += cv * (vl.ext[l] - 1)
				}
				vl.str[j][l] = vl.str[j][l]*dim + cv
			}
			if lo < 0 || hi >= dim {
				return false
			}
			fb = fb*dim + base
			maxFlat = maxFlat*dim + hi
		}
		vl.base[j] = fb
		if maxFlat >= int64(len(vl.data[j])) {
			return false
		}
	}
	if vl.kind == vkReduce {
		// Reduction split: the maximal suffix of levels over which the
		// accumulator's flat offset is constant.
		split := r
		for split > 0 && vl.str[0][split-1] == 0 {
			split--
		}
		vl.mergeLevels(0, split)
		nOuter := len(vl.mext)
		vl.mergeLevels(split, r)
		vl.redOuter = nOuter
		if split == r {
			// The store varies on the innermost level: no reduction to
			// hoist; execute in exact per-element order.
			vl.redOuter = len(vl.mext)
		}
		// Hoisting the accumulator into a register requires that nothing
		// the rhs reads aliases it; otherwise run in map order, which is
		// exact under any aliasing.
		for j := 1; j < len(vl.data); j++ {
			if overlaps(vl.data[0], vl.data[j]) {
				vl.redOuter = len(vl.mext)
				break
			}
		}
	} else {
		vl.mergeLevels(0, r)
	}
	return true
}

// mergeLevels appends the contiguity-merged form of raw levels [from,to)
// onto mext/mstr. Adjacent levels merge when every access satisfies
// stride[outer] == extent[inner]·stride[inner]; merging collapses split
// loops (the dense ko/ki pair) back into one long unit-stride level. Groups
// never merge across calls, so a reduction suffix stays separate from the
// outer levels.
func (vl *vecLoop) mergeLevels(from, to int) {
	if from == 0 {
		vl.mext = vl.mext[:0]
		for j := range vl.mstr {
			vl.mstr[j] = vl.mstr[j][:0]
		}
	}
	groupStart := len(vl.mext)
	for l := from; l < to; l++ {
		n := len(vl.mext)
		if n > groupStart && vl.canMerge(n-1, l) {
			vl.mext[n-1] *= vl.ext[l]
			for j := range vl.mstr {
				vl.mstr[j][n-1] = vl.str[j][l]
			}
			continue
		}
		vl.mext = append(vl.mext, vl.ext[l])
		for j := range vl.mstr {
			vl.mstr[j] = append(vl.mstr[j], vl.str[j][l])
		}
	}
}

// canMerge reports whether merged level m (the group's last) is contiguous
// with raw level l for every access.
func (vl *vecLoop) canMerge(m, l int) bool {
	for j := range vl.mstr {
		if vl.mstr[j][m] != vl.ext[l]*vl.str[j][l] {
			return false
		}
	}
	return true
}

// forRows iterates the odometer over merged levels [0,last) and calls row
// with offsets positioned at the start of each innermost row, in exact
// scalar order. Offsets in vl.off are maintained incrementally.
func (vl *vecLoop) forRows(last int, row func()) {
	for j := range vl.off {
		vl.off[j] = vl.base[j]
	}
	if last <= 0 {
		row()
		return
	}
	idx := vl.idx[:last]
	for i := range idx {
		idx[i] = 0
	}
	for {
		row()
		l := last - 1
		for ; l >= 0; l-- {
			idx[l]++
			if idx[l] < vl.mext[l] {
				for j := range vl.off {
					vl.off[j] += vl.mstr[j][l]
				}
				break
			}
			idx[l] = 0
			for j := range vl.off {
				vl.off[j] -= (vl.mext[l] - 1) * vl.mstr[j][l]
			}
		}
		if l < 0 {
			return
		}
	}
}

func (vl *vecLoop) runFill(e *cenv) {
	v := vl.val(e)
	last := len(vl.mext) - 1
	n, ds := vl.mext[last], vl.mstr[0][last]
	vl.forRows(last, func() {
		d, o := vl.data[0], vl.off[0]
		if ds == 1 {
			s := d[o : o+n]
			if v == 0 {
				clear(s)
				return
			}
			for i := range s {
				s[i] = v
			}
			return
		}
		for i := int64(0); i < n; i++ {
			d[o] = v
			o += ds
		}
	})
}

// runMap executes levels [0,levels) elementwise: dst[·] = prog(·). Exact
// per-element order makes it safe under any aliasing, including
// self-referencing stores.
func (vl *vecLoop) runMap(e *cenv, levels int) {
	last := levels - 1
	n, ds := vl.mext[last], vl.mstr[0][last]
	if vl.bare {
		ss := vl.mstr[1][last]
		vl.forRows(last, func() {
			d, s := vl.data[0], vl.data[1]
			do, so := vl.off[0], vl.off[1]
			if ds == 1 && ss == 1 && !overlaps(d[do:do+n], s[so:so+n]) {
				copy(d[do:do+n], s[so:so+n])
				return
			}
			for i := int64(0); i < n; i++ {
				d[do] = s[so]
				do += ds
				so += ss
			}
		})
		return
	}
	prog, me := vl.prog, &vl.me
	vl.forRows(last, func() {
		d := vl.data[0]
		for i := int64(0); i < n; i++ {
			d[vl.off[0]] = prog(e, me)
			for j := range vl.off {
				vl.off[j] += vl.mstr[j][last]
			}
		}
		for j := range vl.off {
			vl.off[j] -= n * vl.mstr[j][last]
		}
	})
}

func (vl *vecLoop) runReduce(e *cenv) {
	mo := vl.redOuter
	ml := len(vl.mext)
	if mo == ml {
		// Map order (no reduction suffix, or rhs aliases the accumulator):
		// dst[·] = dst[·] ⊕ prog(·) per element.
		op, prog, me := vl.op, vl.prog, &vl.me
		last := ml - 1
		n := vl.mext[last]
		vl.forRows(last, func() {
			d := vl.data[0]
			for i := int64(0); i < n; i++ {
				o := vl.off[0]
				d[o] = applyOp(op, d[o], prog(e, me))
				for j := range vl.off {
					vl.off[j] += vl.mstr[j][last]
				}
			}
			for j := range vl.off {
				vl.off[j] -= n * vl.mstr[j][last]
			}
		})
		return
	}
	// Register-hoisted accumulation: one load and one store of the
	// accumulator per outer element, reduction suffix in between.
	vl.forRows(mo, func() {
		d := vl.data[0]
		o := vl.off[0]
		d[o] = vl.reduceTail(e, mo, d[o])
	})
}

// reduceTail folds the merged reduction levels [mo, len) into acc.
func (vl *vecLoop) reduceTail(e *cenv, mo int, acc float32) float32 {
	last := len(vl.mext) - 1
	n := vl.mext[last]
	// Iterate reduction levels above the innermost with a local odometer
	// (the outer odometer in forRows owns vl.idx[:mo]).
	var redLoop func(l int, acc float32) float32
	redLoop = func(l int, acc float32) float32 {
		if l == last {
			return vl.reduceRow(e, acc, n)
		}
		for i := int64(0); i < vl.mext[l]; i++ {
			acc = redLoop(l+1, acc)
			for j := 1; j < len(vl.off); j++ {
				vl.off[j] += vl.mstr[j][l]
			}
		}
		for j := 1; j < len(vl.off); j++ {
			vl.off[j] -= vl.mext[l] * vl.mstr[j][l]
		}
		return acc
	}
	return redLoop(mo, acc)
}

// reduceRow folds one innermost row of n elements into acc. The unit-stride
// dot product — the kvec inner product of every conv/dense schedule — gets
// the subslice form so the bounds checks vanish from the hot loop; every
// variant keeps the product in a separate variable so it is rounded to
// float32 before accumulation (no FMA contraction — bit-identity).
func (vl *vecLoop) reduceRow(e *cenv, acc float32, n int64) float32 {
	last := len(vl.mext) - 1
	switch {
	case vl.rhsMul && vl.op == ir.Add:
		a, b := vl.data[1], vl.data[2]
		ao, bo := vl.off[1], vl.off[2]
		as, bs := vl.mstr[1][last], vl.mstr[2][last]
		if as == 1 && bs == 1 {
			aa := a[ao : ao+n]
			bb := b[bo : bo+n]
			for i := range aa {
				p := aa[i] * bb[i]
				acc += p
			}
			return acc
		}
		for i := int64(0); i < n; i++ {
			p := a[ao] * b[bo]
			acc += p
			ao += as
			bo += bs
		}
		return acc
	case vl.rhsLoad:
		a := vl.data[1]
		ao, as := vl.off[1], vl.mstr[1][last]
		switch vl.op {
		case ir.Add:
			if as == 1 {
				for _, v := range a[ao : ao+n] {
					acc += v
				}
				return acc
			}
			for i := int64(0); i < n; i++ {
				acc += a[ao]
				ao += as
			}
			return acc
		case ir.MaxOp:
			for i := int64(0); i < n; i++ {
				acc = maxF(acc, a[ao])
				ao += as
			}
			return acc
		case ir.MinOp:
			for i := int64(0); i < n; i++ {
				acc = minF(acc, a[ao])
				ao += as
			}
			return acc
		}
	}
	op, prog, me := vl.op, vl.prog, &vl.me
	for i := int64(0); i < n; i++ {
		acc = applyOp(op, acc, prog(e, me))
		for j := 1; j < len(vl.off); j++ {
			vl.off[j] += vl.mstr[j][last]
		}
	}
	for j := 1; j < len(vl.off); j++ {
		vl.off[j] -= n * vl.mstr[j][last]
	}
	return acc
}

func applyOp(op ir.BinOp, a, b float32) float32 {
	switch op {
	case ir.Add:
		return a + b
	case ir.MaxOp:
		return maxF(a, b)
	}
	return minF(a, b)
}

// overlaps reports whether two slices share backing memory.
func overlaps(a, b []float32) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	pa := uintptr(unsafe.Pointer(unsafe.SliceData(a)))
	pb := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	const sz = unsafe.Sizeof(float32(0))
	return pa < pb+uintptr(len(b))*sz && pb < pa+uintptr(len(a))*sz
}
