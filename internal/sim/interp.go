// Package sim executes IR kernels. It has two halves:
//
//   - interp.go: a functional interpreter. Kernels are compiled to closures
//     and run against real float32 buffers, so the numeric output of any
//     schedule (naive or optimized, pipelined or folded) can be checked
//     against the native Go references in internal/cpuref. This is the
//     reproduction's stand-in for "run the bitstream and verify the output".
//
//   - timing lives in internal/aoc (static cycle model) and internal/clrt
//     (event-level host simulation); sim deliberately knows nothing about
//     time, only values.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/ir"
)

// ErrChannelDeadlock marks executions that would hang on hardware: a kernel
// reading an empty channel, or a finished graph leaving undrained channel
// values (producer/consumer trip-count mismatch, §4.6). Callers assert on it
// with errors.Is; the static checker in internal/verify rejects most such
// designs before they ever reach execution.
var ErrChannelDeadlock = errors.New("channel deadlock")

// DeadlockError carries the offending channel. It wraps ErrChannelDeadlock.
type DeadlockError struct {
	Channel string
	// Undrained is the leftover value count for drain failures; 0 means an
	// underflow (read from empty channel).
	Undrained int
}

func (e *DeadlockError) Error() string {
	if e.Undrained > 0 {
		return fmt.Sprintf("channel %s holds %d undrained values after graph execution (deadlock on hardware)", e.Channel, e.Undrained)
	}
	return fmt.Sprintf("read from empty channel %s (deadlock on hardware)", e.Channel)
}

func (e *DeadlockError) Unwrap() error { return ErrChannelDeadlock }

// deadlockPanic is the panic payload the interpreter and closure compiler
// throw on channel underflow deep inside expression evaluation; Run and
// RunInterp recover it into a typed *DeadlockError.
type deadlockPanic struct{ channel string }

// recoverRunErr converts an execution panic into the error Run returns:
// channel underflows become typed deadlock errors, everything else (bounds
// violations, unbound buffers) keeps the generic fault message a real OpenCL
// run would surface.
func recoverRunErr(kernel string, r any) error {
	if d, ok := r.(deadlockPanic); ok {
		return fmt.Errorf("kernel %s: %w", kernel, &DeadlockError{Channel: d.channel})
	}
	return fmt.Errorf("kernel %s: %v", kernel, r)
}

// Fifo is a channel's runtime state: an unbounded float queue. Functional
// interpretation runs producers before consumers, so depth limits (which only
// affect timing) are not enforced here; they are modeled in clrt.
type Fifo struct {
	data []float32
	head int
	// Peak tracks the maximum occupancy seen, used by tests to validate the
	// channel-depth sizing rule from §4.11.
	Peak int
}

// Push appends a value.
func (f *Fifo) Push(v float32) {
	f.data = append(f.data, v)
	if n := f.Len(); n > f.Peak {
		f.Peak = n
	}
}

// fifoCompactMin is the head position below which Pop never compacts: tiny
// queues churn too fast for the copy to pay off.
const fifoCompactMin = 64

// Pop removes and returns the oldest value.
func (f *Fifo) Pop() (float32, bool) {
	if f.head >= len(f.data) {
		return 0, false
	}
	v := f.data[f.head]
	f.head++
	if f.head == len(f.data) {
		f.data = f.data[:0]
		f.head = 0
	} else if f.head >= fifoCompactMin && f.head > len(f.data)/2 {
		// Compact: without this, a steady-state producer/consumer pair (a
		// long batch run) appends forever while head chases the tail, and the
		// slice retains every value ever pushed. Shifting the live window to
		// the front bounds capacity to ~2x the peak occupancy.
		n := copy(f.data, f.data[f.head:])
		f.data = f.data[:n]
		f.head = 0
	}
	return v, true
}

// Cap returns the capacity of the backing slice (tests assert the compaction
// rule keeps it bounded across arbitrarily long push/pop sequences).
func (f *Fifo) Cap() int { return cap(f.data) }

// Len returns current occupancy.
func (f *Fifo) Len() int { return len(f.data) - f.head }

// BufPool recycles float32 slices across images of a batch run. Slices are
// bucketed by ceil-power-of-two capacity so a Get never returns a slice that
// is later outgrown by the same binding. Safe for concurrent use (it is
// shared by every worker arena of a batch); returned slices are always
// zeroed, matching the make([]float32, n) they replace.
type BufPool struct {
	buckets sync.Map // uint -> *sync.Pool of []float32 with cap == 1<<uint
}

func poolBucket(n int) uint {
	b := uint(0)
	for 1<<b < n {
		b++
	}
	return b
}

// Get returns a zeroed slice of length n.
func (p *BufPool) Get(n int) []float32 {
	if p == nil || n == 0 {
		return make([]float32, n)
	}
	b := poolBucket(n)
	sp, ok := p.buckets.Load(b)
	if !ok {
		sp, _ = p.buckets.LoadOrStore(b, &sync.Pool{})
	}
	if v := sp.(*sync.Pool).Get(); v != nil {
		s := v.([]float32)[:n]
		clear(s)
		return s
	}
	return make([]float32, n, 1<<b)
}

// Put returns a slice to the pool. The caller must not touch it afterwards.
func (p *BufPool) Put(s []float32) {
	if p == nil || cap(s) == 0 {
		return
	}
	b := poolBucket(cap(s))
	if 1<<b != cap(s) {
		return // not one of ours; dropping it is always safe
	}
	sp, ok := p.buckets.Load(b)
	if !ok {
		sp, _ = p.buckets.LoadOrStore(b, &sync.Pool{})
	}
	sp.(*sync.Pool).Put(s[:0])
}

// Machine holds buffer and channel bindings for kernel execution.
type Machine struct {
	bufs  map[*ir.Buffer][]float32
	chans map[*ir.Channel]*Fifo
	// compiled caches compiled kernels per execution tier: folded
	// deployments invoke the same kernel dozens of times per image, and a
	// batch arena reuses the machine across images so every kernel compiles
	// exactly once per worker per tier. The tier tag keeps -exec A/B
	// switches from executing a program built for the other engine.
	compiled map[compileKey]*compiledKernel
	// pool, when set, backs Alloc-statement buffers and Grab calls so a
	// reused machine stops allocating per image.
	pool *BufPool
	// tier selects the execution engine (tier.go); stats, when set, counts
	// cache and vectorization events (shared across a deployment's workers).
	tier  Tier
	stats *ExecStats
}

// compileKey is the compiled-kernel cache key: one program per kernel per
// execution tier.
type compileKey struct {
	k    *ir.Kernel
	tier Tier
}

// NewMachine returns an empty machine on the default execution tier.
func NewMachine() *Machine {
	return &Machine{
		bufs:     map[*ir.Buffer][]float32{},
		chans:    map[*ir.Channel]*Fifo{},
		compiled: map[compileKey]*compiledKernel{},
		tier:     DefaultTier(),
	}
}

// SetPool attaches a buffer pool (shared across the worker machines of a
// batch). A nil pool reverts to plain allocation.
func (m *Machine) SetPool(p *BufPool) { m.pool = p }

// Grab returns a zeroed slice of length n from the machine's pool (or the
// heap when no pool is attached). Hosts use it for per-image output and
// scratch bindings.
func (m *Machine) Grab(n int) []float32 { return m.pool.Get(n) }

// allocFor services an ir.Alloc: if the buffer already holds a binding with
// enough capacity (the previous image's), it is truncated and zeroed in
// place; otherwise a fresh slice comes from the pool. This is what turns the
// per-image allocation storm of kernel-local scratchpads into a steady state.
func (m *Machine) allocFor(b *ir.Buffer, n int64) {
	if old := m.bufs[b]; int64(cap(old)) >= n {
		s := old[:n]
		clear(s)
		m.bufs[b] = s
		return
	}
	m.bufs[b] = m.pool.Get(int(n))
}

// ResetChannels clears every channel FIFO while keeping the backing storage,
// so the next image of a batch reuses the same capacity instead of growing
// fresh queues. Peak occupancy tracking is preserved across the reset.
func (m *Machine) ResetChannels() {
	for _, f := range m.chans {
		f.data = f.data[:0]
		f.head = 0
	}
}

// Bind attaches data to a buffer (typically a kernel argument).
func (m *Machine) Bind(b *ir.Buffer, data []float32) { m.bufs[b] = data }

// Buffer returns the data bound to b, or nil.
func (m *Machine) Buffer(b *ir.Buffer) []float32 { return m.bufs[b] }

// Channel returns (allocating if needed) the FIFO for ch.
func (m *Machine) Channel(ch *ir.Channel) *Fifo {
	f, ok := m.chans[ch]
	if !ok {
		f = &Fifo{}
		m.chans[ch] = f
	}
	return f
}

// Run executes kernel k with the given scalar-argument bindings. Global
// argument buffers must be bound beforehand; local/private allocations are
// created automatically. Returns an error on any fault a real OpenCL run
// would surface (out-of-bounds access, read from empty channel, unbound
// argument). Execution goes through the engine the machine's tier selects:
// the closure compiler (compile.go), optionally with the affine vectorizer
// (vector.go), or the tree-walking interpreter. RunInterp is kept as a
// cross-checking oracle.
func (m *Machine) Run(k *ir.Kernel, scalars map[*ir.Var]int64) (err error) {
	if m.tier == TierInterp {
		return m.RunInterp(k, scalars)
	}
	defer func() {
		if r := recover(); r != nil {
			err = recoverRunErr(k.Name, r)
		}
	}()
	if err := m.precheck(k, scalars); err != nil {
		return err
	}
	key := compileKey{k: k, tier: m.tier}
	ck, ok := m.compiled[key]
	if ok {
		if m.stats != nil {
			m.stats.CacheHits.Add(1)
		}
	} else {
		if m.stats != nil {
			m.stats.CacheMisses.Add(1)
		}
		c := &compiler{m: m, slots: map[*ir.Var]int{}, bufSlots: map[*ir.Buffer]int{}, kernel: k,
			vectorize: m.tier == TierVector, gemm: m.tier == TierVector}
		// Reserve scalar-argument slots before compiling the body.
		for _, v := range k.ScalarArgs {
			c.slot(v)
		}
		run := c.stmtFn(k.Body)
		ck = &compiledKernel{run: run, slots: c.slots, nSlots: c.nSlots, nBufs: len(c.bufSlots)}
		if m.stats != nil {
			m.stats.VectorLoops.Add(c.nVector)
			m.stats.FallbackLoops.Add(c.nFallback)
			m.stats.GemmLoops.Add(c.nGemm)
		}
		m.compiled[key] = ck
	}
	e := ck.env
	if e == nil {
		e = &cenv{ints: make([]int64, ck.nSlots), bufs: make([][]float32, ck.nBufs), m: m}
		ck.env = e
	} else {
		// Bindings may have changed since the last run; drop the cached
		// buffer resolutions. Int slots need no reset: loop variables and
		// scalar arguments are written before every read.
		clear(e.bufs)
	}
	for _, v := range k.ScalarArgs {
		e.ints[ck.slots[v]] = scalars[v]
	}
	ck.run(e)
	return nil
}

// RunInterp executes k on the tree-walking interpreter (identical semantics
// to Run; used by tests to cross-check the compiler).
func (m *Machine) RunInterp(k *ir.Kernel, scalars map[*ir.Var]int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoverRunErr(k.Name, r)
		}
	}()
	if err := m.precheck(k, scalars); err != nil {
		return err
	}
	env := &env{m: m, vars: map[*ir.Var]int64{}}
	for _, v := range k.ScalarArgs {
		env.vars[v] = scalars[v]
	}
	env.exec(k.Body)
	return nil
}

// precheck validates bindings and buffer sizes before execution.
func (m *Machine) precheck(k *ir.Kernel, scalars map[*ir.Var]int64) error {
	for _, b := range k.Args {
		if m.bufs[b] == nil {
			return fmt.Errorf("kernel %s: argument buffer %s not bound", k.Name, b.Name)
		}
	}
	env := &env{m: m, vars: map[*ir.Var]int64{}}
	for _, v := range k.ScalarArgs {
		val, ok := scalars[v]
		if !ok {
			return fmt.Errorf("kernel %s: scalar argument %s not bound", k.Name, v.Name)
		}
		env.vars[v] = val
	}
	// Verify argument buffer sizes against (possibly symbolic) shapes.
	for _, b := range k.Args {
		want := env.bufLen(b)
		if int64(len(m.bufs[b])) < want {
			return fmt.Errorf("kernel %s: buffer %s bound with %d elems, shape needs %d", k.Name, b.Name, len(m.bufs[b]), want)
		}
	}
	return nil
}

// RunGraph interprets a set of kernels in the given order, which must be a
// topological order of the channel dataflow (producers first). This mirrors
// the functional outcome of concurrent pipelined execution.
func (m *Machine) RunGraph(ks []*ir.Kernel, scalars map[*ir.Var]int64) error {
	for _, k := range ks {
		if err := m.Run(k, scalars); err != nil {
			return err
		}
	}
	// A finished pipelined pass must drain every channel; leftovers mean a
	// producer/consumer count mismatch (a hang on hardware).
	for ch, f := range m.chans {
		if f.Len() != 0 {
			return &DeadlockError{Channel: ch.Name, Undrained: f.Len()}
		}
	}
	return nil
}

type env struct {
	m    *Machine
	vars map[*ir.Var]int64
}

func (e *env) bufLen(b *ir.Buffer) int64 {
	n := int64(1)
	for _, d := range b.Shape {
		n *= e.evalI(d)
	}
	return n
}

func (e *env) offset(b *ir.Buffer, idx []ir.Expr) int64 {
	off := int64(0)
	for i, ix := range idx {
		dim := e.evalI(b.Shape[i])
		x := e.evalI(ix)
		if x < 0 || x >= dim {
			panic(fmt.Sprintf("index %d out of bounds [0,%d) in dim %d of %s", x, dim, i, b.Name))
		}
		off = off*dim + x
	}
	return off
}

func (e *env) exec(s ir.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ir.Block:
		for _, c := range x.Stmts {
			e.exec(c)
		}
	case *ir.Alloc:
		e.m.allocFor(x.Buf, e.bufLen(x.Buf))
	case *ir.For:
		n := e.evalI(x.Extent)
		for i := int64(0); i < n; i++ {
			e.vars[x.Var] = i
			e.exec(x.Body)
		}
		delete(e.vars, x.Var)
	case *ir.Store:
		data := e.m.bufs[x.Buf]
		if data == nil {
			panic(fmt.Sprintf("store to unbound buffer %s", x.Buf.Name))
		}
		data[e.offset(x.Buf, x.Index)] = e.evalF(x.Value)
	case *ir.ChannelWrite:
		e.m.Channel(x.Ch).Push(e.evalF(x.Value))
	case *ir.IfThen:
		if e.evalI(x.Cond) != 0 {
			e.exec(x.Then)
		} else if x.Else != nil {
			e.exec(x.Else)
		}
	default:
		panic(fmt.Sprintf("unknown stmt %T", s))
	}
}

func (e *env) evalI(x ir.Expr) int64 {
	switch v := x.(type) {
	case *ir.IntImm:
		return v.Value
	case *ir.Var:
		val, ok := e.vars[v]
		if !ok {
			panic(fmt.Sprintf("unbound variable %s", v.Name))
		}
		return val
	case *ir.Binary:
		a, b := e.evalI(v.A), e.evalI(v.B)
		switch v.Op {
		case ir.Add:
			return a + b
		case ir.Sub:
			return a - b
		case ir.Mul:
			return a * b
		case ir.Div:
			return a / b
		case ir.Mod:
			return a % b
		case ir.MaxOp:
			if a > b {
				return a
			}
			return b
		case ir.MinOp:
			if a < b {
				return a
			}
			return b
		case ir.LT:
			return b2i(a < b)
		case ir.GE:
			return b2i(a >= b)
		case ir.EQ:
			return b2i(a == b)
		case ir.And:
			return b2i(a != 0 && b != 0)
		}
	case *ir.Select:
		if e.evalI(v.Cond) != 0 {
			return e.evalI(v.A)
		}
		return e.evalI(v.B)
	}
	panic(fmt.Sprintf("not an int expr: %T %v", x, x))
}

func (e *env) evalF(x ir.Expr) float32 {
	switch v := x.(type) {
	case *ir.FloatImm:
		return float32(v.Value)
	case *ir.IntImm:
		return float32(v.Value)
	case *ir.Load:
		data := e.m.bufs[v.Buf]
		if data == nil {
			panic(fmt.Sprintf("load from unbound buffer %s", v.Buf.Name))
		}
		return data[e.offset(v.Buf, v.Index)]
	case *ir.ChannelRead:
		val, ok := e.m.Channel(v.Ch).Pop()
		if !ok {
			panic(deadlockPanic{channel: v.Ch.Name})
		}
		return val
	case *ir.Binary:
		a, b := e.evalF(v.A), e.evalF(v.B)
		switch v.Op {
		case ir.Add:
			return a + b
		case ir.Sub:
			return a - b
		case ir.Mul:
			return a * b
		case ir.Div:
			return a / b
		case ir.MaxOp:
			return float32(math.Max(float64(a), float64(b)))
		case ir.MinOp:
			return float32(math.Min(float64(a), float64(b)))
		}
		panic(fmt.Sprintf("op %s not valid on floats", v.Op))
	case *ir.Call:
		switch v.Fn {
		case "exp":
			return float32(math.Exp(float64(e.evalF(v.Args[0]))))
		case "sqrt":
			return float32(math.Sqrt(float64(e.evalF(v.Args[0]))))
		case "max":
			return float32(math.Max(float64(e.evalF(v.Args[0])), float64(e.evalF(v.Args[1]))))
		case "min":
			return float32(math.Min(float64(e.evalF(v.Args[0])), float64(e.evalF(v.Args[1]))))
		}
		panic(fmt.Sprintf("unknown intrinsic %q", v.Fn))
	case *ir.Select:
		if e.evalI(v.Cond) != 0 {
			return e.evalF(v.A)
		}
		return e.evalF(v.B)
	}
	panic(fmt.Sprintf("not a float expr: %T %v", x, x))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
