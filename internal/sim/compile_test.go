package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// The compiled executor must be indistinguishable from the tree-walking
// interpreter: same values, same faults.

func TestCompiledMatchesInterpreterOnMatvec(t *testing.T) {
	mm, nn := 6, 20
	x := ir.NewBuffer("x", ir.Global, nn)
	y := ir.NewBuffer("Y", ir.Global, mm, nn)
	out := ir.NewBuffer("c", ir.Global, mm)
	acc := ir.NewBuffer("acc", ir.Private, 1)
	i, k := ir.V("i"), ir.V("k")
	z := []ir.Expr{ir.CInt(0)}
	kern := &ir.Kernel{Name: "mv", Args: []*ir.Buffer{x, y, out},
		Body: ir.Seq(&ir.Alloc{Buf: acc},
			ir.Loop(i, mm, ir.Seq(
				&ir.Store{Buf: acc, Index: z, Value: ir.CFloat(0)},
				ir.Loop(k, nn, &ir.Store{Buf: acc, Index: z,
					Value: ir.AddE(&ir.Load{Buf: acc, Index: z},
						ir.MulE(&ir.Load{Buf: x, Index: []ir.Expr{k}}, &ir.Load{Buf: y, Index: []ir.Expr{i, k}}))}),
				&ir.Store{Buf: out, Index: []ir.Expr{i}, Value: &ir.Load{Buf: acc, Index: z}},
			)))}

	f := func(seed uint64) bool {
		xd := make([]float32, nn)
		yd := make([]float32, mm*nn)
		for j := range xd {
			xd[j] = float32((int(seed)+j)%11) - 5
		}
		for j := range yd {
			yd[j] = float32((int(seed)*3+j)%7) - 3
		}
		run := func(interp bool) []float32 {
			m := NewMachine()
			m.Bind(x, xd)
			m.Bind(y, yd)
			od := make([]float32, mm)
			m.Bind(out, od)
			var err error
			if interp {
				err = m.RunInterp(kern, nil)
			} else {
				err = m.Run(kern, nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			return od
		}
		a, b := run(true), run(false)
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledFaultsMatchInterpreter(t *testing.T) {
	// Out-of-bounds: both paths must report the same fault.
	a := ir.NewBuffer("a", ir.Global, 4)
	i := ir.V("i")
	k := &ir.Kernel{Name: "oob", Args: []*ir.Buffer{a},
		Body: ir.Loop(i, 8, &ir.Store{Buf: a, Index: []ir.Expr{i}, Value: ir.CFloat(0)})}
	m1 := NewMachine()
	m1.Bind(a, make([]float32, 8))
	e1 := m1.Run(k, nil)
	m2 := NewMachine()
	m2.Bind(a, make([]float32, 8))
	e2 := m2.RunInterp(k, nil)
	if e1 == nil || e2 == nil {
		t.Fatal("both paths must fault")
	}
	if e1.Error() != e2.Error() {
		t.Fatalf("fault messages differ:\n  compiled: %v\n  interp:   %v", e1, e2)
	}

	// Channel underflow.
	c := &ir.Channel{Name: "c"}
	d := ir.NewBuffer("d", ir.Global, 1)
	kc := &ir.Kernel{Name: "under", Args: []*ir.Buffer{d},
		Body: &ir.Store{Buf: d, Index: []ir.Expr{ir.CInt(0)}, Value: &ir.ChannelRead{Ch: c}}}
	m3 := NewMachine()
	m3.Bind(d, make([]float32, 1))
	if err := m3.Run(kc, nil); err == nil || !strings.Contains(err.Error(), "empty channel") {
		t.Fatalf("compiled underflow fault wrong: %v", err)
	}
}

func TestCompiledSymbolicShapes(t *testing.T) {
	n := ir.Param("n")
	in := ir.NewBufferE("in", ir.Global, n)
	out := ir.NewBufferE("out", ir.Global, n)
	i := ir.V("i")
	k := &ir.Kernel{Name: "scale", Args: []*ir.Buffer{in, out}, ScalarArgs: []*ir.Var{n},
		Body: ir.LoopE(i, n, &ir.Store{Buf: out, Index: []ir.Expr{i},
			Value: ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{i}}, ir.CFloat(3))})}
	m := NewMachine()
	ind := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	m.Bind(in, ind)
	od := make([]float32, 8)
	m.Bind(out, od)
	if err := m.Run(k, map[*ir.Var]int64{n: 6}); err != nil {
		t.Fatal(err)
	}
	if od[5] != 18 || od[6] != 0 {
		t.Fatalf("symbolic compiled run wrong: %v", od)
	}
}

func TestCompiledChannelsRoundTrip(t *testing.T) {
	ch := &ir.Channel{Name: "c", Depth: 8}
	a := ir.NewBuffer("a", ir.Global, 8)
	b := ir.NewBuffer("b", ir.Global, 8)
	i, j := ir.V("i"), ir.V("j")
	prod := &ir.Kernel{Name: "p", Args: []*ir.Buffer{a},
		Body: ir.Loop(i, 8, &ir.ChannelWrite{Ch: ch, Value: &ir.Load{Buf: a, Index: []ir.Expr{i}}})}
	cons := &ir.Kernel{Name: "q", Args: []*ir.Buffer{b},
		Body: ir.Loop(j, 8, &ir.Store{Buf: b, Index: []ir.Expr{j}, Value: &ir.ChannelRead{Ch: ch}})}
	m := NewMachine()
	ad := []float32{9, 8, 7, 6, 5, 4, 3, 2}
	m.Bind(a, ad)
	m.Bind(b, make([]float32, 8))
	if err := m.RunGraph([]*ir.Kernel{prod, cons}, nil); err != nil {
		t.Fatal(err)
	}
	for idx, v := range m.Buffer(b) {
		if v != ad[idx] {
			t.Fatalf("channel round trip wrong at %d", idx)
		}
	}
}

// BenchmarkCompiledVsInterp documents the speedup of closure compilation on
// a conv-like workload.
func BenchmarkCompiledVsInterp(b *testing.B) {
	nn := 64
	x := ir.NewBuffer("x", ir.Global, nn)
	y := ir.NewBuffer("Y", ir.Global, nn, nn)
	out := ir.NewBuffer("c", ir.Global, nn)
	acc := ir.NewBuffer("acc", ir.Private, 1)
	i, k := ir.V("i"), ir.V("k")
	z := []ir.Expr{ir.CInt(0)}
	kern := &ir.Kernel{Name: "mv", Args: []*ir.Buffer{x, y, out},
		Body: ir.Seq(&ir.Alloc{Buf: acc},
			ir.Loop(i, nn, ir.Seq(
				&ir.Store{Buf: acc, Index: z, Value: ir.CFloat(0)},
				ir.Loop(k, nn, &ir.Store{Buf: acc, Index: z,
					Value: ir.AddE(&ir.Load{Buf: acc, Index: z},
						ir.MulE(&ir.Load{Buf: x, Index: []ir.Expr{k}}, &ir.Load{Buf: y, Index: []ir.Expr{i, k}}))}),
				&ir.Store{Buf: out, Index: []ir.Expr{i}, Value: &ir.Load{Buf: acc, Index: z}},
			)))}
	m := NewMachine()
	m.Bind(x, make([]float32, nn))
	m.Bind(y, make([]float32, nn*nn))
	m.Bind(out, make([]float32, nn))

	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := m.Run(kern, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := m.RunInterp(kern, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
