package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/ir"
)

// vecAddKernel builds b[i] = a[i] + 1 over n elements.
func vecAddKernel(n int) (*ir.Kernel, *ir.Buffer, *ir.Buffer) {
	a := ir.NewBuffer("a", ir.Global, n)
	b := ir.NewBuffer("b", ir.Global, n)
	i := ir.V("i")
	k := &ir.Kernel{
		Name: "vadd",
		Args: []*ir.Buffer{a, b},
		Body: ir.Loop(i, n, &ir.Store{Buf: b, Index: []ir.Expr{i}, Value: ir.AddE(&ir.Load{Buf: a, Index: []ir.Expr{i}}, ir.CFloat(1))}),
	}
	return k, a, b
}

func TestRunVecAdd(t *testing.T) {
	k, a, b := vecAddKernel(8)
	m := NewMachine()
	in := make([]float32, 8)
	for i := range in {
		in[i] = float32(i)
	}
	m.Bind(a, in)
	m.Bind(b, make([]float32, 8))
	if err := m.Run(k, nil); err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Buffer(b) {
		if v != float32(i)+1 {
			t.Fatalf("b[%d] = %v", i, v)
		}
	}
}

func TestRunUnboundArg(t *testing.T) {
	k, a, _ := vecAddKernel(4)
	m := NewMachine()
	m.Bind(a, make([]float32, 4))
	err := m.Run(k, nil)
	if err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Fatalf("want unbound error, got %v", err)
	}
}

func TestRunShortBuffer(t *testing.T) {
	k, a, b := vecAddKernel(8)
	m := NewMachine()
	m.Bind(a, make([]float32, 8))
	m.Bind(b, make([]float32, 4))
	err := m.Run(k, nil)
	if err == nil || !strings.Contains(err.Error(), "shape needs") {
		t.Fatalf("want size error, got %v", err)
	}
}

func TestRunOutOfBounds(t *testing.T) {
	a := ir.NewBuffer("a", ir.Global, 4)
	i := ir.V("i")
	k := &ir.Kernel{
		Name: "oob",
		Args: []*ir.Buffer{a},
		Body: ir.Loop(i, 8, &ir.Store{Buf: a, Index: []ir.Expr{i}, Value: ir.CFloat(0)}),
	}
	m := NewMachine()
	m.Bind(a, make([]float32, 8)) // physically big enough, logically OOB
	err := m.Run(k, nil)
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("want OOB error, got %v", err)
	}
}

func TestSymbolicShapes(t *testing.T) {
	n := ir.Param("n")
	out := ir.NewBufferE("out", ir.Global, n)
	i := ir.V("i")
	k := &ir.Kernel{
		Name:       "fill",
		Args:       []*ir.Buffer{out},
		ScalarArgs: []*ir.Var{n},
		Body:       ir.LoopE(i, n, &ir.Store{Buf: out, Index: []ir.Expr{i}, Value: ir.CFloat(3)}),
	}
	m := NewMachine()
	m.Bind(out, make([]float32, 10))
	if err := m.Run(k, map[*ir.Var]int64{n: 5}); err != nil {
		t.Fatal(err)
	}
	got := m.Buffer(out)
	for i := 0; i < 5; i++ {
		if got[i] != 3 {
			t.Fatalf("out[%d] = %v", i, got[i])
		}
	}
	if got[5] != 0 {
		t.Fatal("kernel wrote past symbolic extent")
	}
	// Missing scalar binding must fail.
	if err := m.Run(k, nil); err == nil {
		t.Fatal("want error for missing scalar binding")
	}
}

func TestLocalAlloc(t *testing.T) {
	in := ir.NewBuffer("in", ir.Global, 4)
	out := ir.NewBuffer("out", ir.Global, 1)
	acc := ir.NewBuffer("acc", ir.Private, 1)
	i := ir.V("i")
	z := []ir.Expr{ir.CInt(0)}
	k := &ir.Kernel{
		Name: "reduce",
		Args: []*ir.Buffer{in, out},
		Body: ir.Seq(
			&ir.Alloc{Buf: acc},
			&ir.Store{Buf: acc, Index: z, Value: ir.CFloat(0)},
			ir.Loop(i, 4, &ir.Store{Buf: acc, Index: z,
				Value: ir.AddE(&ir.Load{Buf: acc, Index: z}, &ir.Load{Buf: in, Index: []ir.Expr{i}})}),
			&ir.Store{Buf: out, Index: z, Value: &ir.Load{Buf: acc, Index: z}},
		),
	}
	m := NewMachine()
	m.Bind(in, []float32{1, 2, 3, 4})
	m.Bind(out, make([]float32, 1))
	if err := m.Run(k, nil); err != nil {
		t.Fatal(err)
	}
	if m.Buffer(out)[0] != 10 {
		t.Fatalf("sum = %v, want 10", m.Buffer(out)[0])
	}
}

func TestChannelPipeline(t *testing.T) {
	// Reproduces Listing 4.13: A writes a[i]+1 to c0, B multiplies by 0.35
	// into c1, C divides by -1.1 into d.
	c0 := &ir.Channel{Name: "c0"}
	c1 := &ir.Channel{Name: "c1", Depth: 8}
	a := ir.NewBuffer("a", ir.Global, 8)
	d := ir.NewBuffer("d", ir.Global, 8)
	i := ir.V("i")
	kA := &ir.Kernel{Name: "A", Args: []*ir.Buffer{a},
		Body: ir.Loop(i, 8, &ir.ChannelWrite{Ch: c0, Value: ir.AddE(&ir.Load{Buf: a, Index: []ir.Expr{i}}, ir.CFloat(1))})}
	j := ir.V("j")
	kB := &ir.Kernel{Name: "B", Autorun: true,
		Body: ir.Loop(j, 8, &ir.ChannelWrite{Ch: c1, Value: ir.MulE(&ir.ChannelRead{Ch: c0}, ir.CFloat(0.35))})}
	l := ir.V("l")
	kC := &ir.Kernel{Name: "C", Args: []*ir.Buffer{d},
		Body: ir.Loop(l, 8, &ir.Store{Buf: d, Index: []ir.Expr{l}, Value: ir.DivE(&ir.ChannelRead{Ch: c1}, ir.CFloat(-1.1))})}

	m := NewMachine()
	in := make([]float32, 8)
	for i := range in {
		in[i] = float32(i)
	}
	m.Bind(a, in)
	m.Bind(d, make([]float32, 8))
	if err := m.RunGraph([]*ir.Kernel{kA, kB, kC}, nil); err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Buffer(d) {
		want := (float32(i) + 1) * 0.35 / -1.1
		if math.Abs(float64(v-want)) > 1e-6 {
			t.Fatalf("d[%d] = %v, want %v", i, v, want)
		}
	}
	if m.Channel(c0).Peak != 8 || m.Channel(c1).Peak != 8 {
		t.Fatalf("peaks: %d %d", m.Channel(c0).Peak, m.Channel(c1).Peak)
	}
}

func TestChannelUnderflow(t *testing.T) {
	c := &ir.Channel{Name: "c"}
	d := ir.NewBuffer("d", ir.Global, 1)
	k := &ir.Kernel{Name: "C", Args: []*ir.Buffer{d},
		Body: &ir.Store{Buf: d, Index: []ir.Expr{ir.CInt(0)}, Value: &ir.ChannelRead{Ch: c}}}
	m := NewMachine()
	m.Bind(d, make([]float32, 1))
	err := m.Run(k, nil)
	if err == nil || !strings.Contains(err.Error(), "empty channel") {
		t.Fatalf("want underflow error, got %v", err)
	}
	if !errors.Is(err, ErrChannelDeadlock) {
		t.Fatalf("underflow must wrap ErrChannelDeadlock, got %v", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) || de.Channel != "c" || de.Undrained != 0 {
		t.Fatalf("want DeadlockError for channel c, got %#v", de)
	}
}

func TestGraphUndrainedChannel(t *testing.T) {
	c := &ir.Channel{Name: "c"}
	a := ir.NewBuffer("a", ir.Global, 2)
	i := ir.V("i")
	kA := &ir.Kernel{Name: "A", Args: []*ir.Buffer{a},
		Body: ir.Loop(i, 2, &ir.ChannelWrite{Ch: c, Value: &ir.Load{Buf: a, Index: []ir.Expr{i}}})}
	m := NewMachine()
	m.Bind(a, make([]float32, 2))
	err := m.RunGraph([]*ir.Kernel{kA}, nil)
	if err == nil || !strings.Contains(err.Error(), "undrained") {
		t.Fatalf("want undrained error, got %v", err)
	}
	if !errors.Is(err, ErrChannelDeadlock) {
		t.Fatalf("undrained channels must wrap ErrChannelDeadlock, got %v", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) || de.Channel != "c" || de.Undrained != 2 {
		t.Fatalf("want DeadlockError{c, 2}, got %#v", de)
	}
}

func TestIfThenSelect(t *testing.T) {
	// Zero-padding pattern: out[i] = (i >= 1 && i < 3) ? in[i-1] : 0
	in := ir.NewBuffer("in", ir.Global, 2)
	out := ir.NewBuffer("out", ir.Global, 4)
	i := ir.V("i")
	cond := &ir.Binary{Op: ir.And,
		A: &ir.Binary{Op: ir.GE, A: i, B: ir.CInt(1)},
		B: &ir.Binary{Op: ir.LT, A: i, B: ir.CInt(3)}}
	k := &ir.Kernel{Name: "pad", Args: []*ir.Buffer{in, out},
		Body: ir.Loop(i, 4, &ir.Store{Buf: out, Index: []ir.Expr{i},
			Value: &ir.Select{Cond: cond, A: &ir.Load{Buf: in, Index: []ir.Expr{ir.SubE(i, ir.CInt(1))}}, B: ir.CFloat(0)}})}
	// Select must not evaluate the taken-from branch when cond is false —
	// in[i-1] would be out of bounds at i=0.
	m := NewMachine()
	m.Bind(in, []float32{5, 6})
	m.Bind(out, make([]float32, 4))
	if err := m.Run(k, nil); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 5, 6, 0}
	for i, v := range m.Buffer(out) {
		if v != want[i] {
			t.Fatalf("out = %v, want %v", m.Buffer(out), want)
		}
	}
}

func TestIntrinsics(t *testing.T) {
	out := ir.NewBuffer("out", ir.Global, 3)
	k := &ir.Kernel{Name: "intr", Args: []*ir.Buffer{out},
		Body: ir.Seq(
			&ir.Store{Buf: out, Index: []ir.Expr{ir.CInt(0)}, Value: &ir.Call{Fn: "exp", Args: []ir.Expr{ir.CFloat(0)}}},
			&ir.Store{Buf: out, Index: []ir.Expr{ir.CInt(1)}, Value: &ir.Call{Fn: "max", Args: []ir.Expr{ir.CFloat(-2), ir.CFloat(3)}}},
			&ir.Store{Buf: out, Index: []ir.Expr{ir.CInt(2)}, Value: &ir.Call{Fn: "sqrt", Args: []ir.Expr{ir.CFloat(9)}}},
		)}
	m := NewMachine()
	m.Bind(out, make([]float32, 3))
	if err := m.Run(k, nil); err != nil {
		t.Fatal(err)
	}
	got := m.Buffer(out)
	if got[0] != 1 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("intrinsics = %v", got)
	}
}

func TestFifoOrder(t *testing.T) {
	f := &Fifo{}
	for i := 0; i < 100; i++ {
		f.Push(float32(i))
	}
	for i := 0; i < 100; i++ {
		v, ok := f.Pop()
		if !ok || v != float32(i) {
			t.Fatalf("pop %d = %v,%v", i, v, ok)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty must fail")
	}
	if f.Peak != 100 {
		t.Fatalf("peak = %d", f.Peak)
	}
}
