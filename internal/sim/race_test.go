package sim_test

// Run under `go test -race ./internal/sim/`: RunBatch-style concurrency.
// Worker machines are private, but the BufPool and the ExecStats sink are
// shared across all of them, and the stats are read (Snapshot) while workers
// are still running — exactly what the host's metrics drain does.

import (
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/topi"
)

func TestSharedPoolAndStatsUnderConcurrency(t *testing.T) {
	op, err := topi.Conv2D(topi.ConvSpec{Name: "rc", C1: 3, H: 10, W: 10, C2: 4, F: 3, S: 1, Relu: true, Bias: true},
		topi.OptSched(4, 2, 1), topi.ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	pool := &sim.BufPool{}
	stats := &sim.ExecStats{}
	const workers = 8
	const iters = 25

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			// One warm machine per worker, like NewArena; pool and stats
			// are the shared state under test.
			m := sim.NewMachine()
			m.SetTier(sim.TierVector)
			m.SetPool(pool)
			m.SetStats(stats)
			in := seeded(seed, 3, 10, 10)
			wt := seeded(seed+1, 4, 3, 3, 3)
			b := seeded(seed+2, 4)
			m.Bind(op.In, in.Data)
			m.Bind(op.Weights, wt.Data)
			m.Bind(op.Bias, b.Data)
			for i := 0; i < iters; i++ {
				out := pool.Get(4 * 8 * 8)
				m.Bind(op.Out, out)
				if err := m.Run(op.Kernel, nil); err != nil {
					t.Error(err)
					return
				}
				pool.Put(out)
			}
		}(uint64(w) * 17)
	}
	// Concurrent metrics drain, as the host does mid-batch.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = stats.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := stats.Snapshot()
	// The conv nest now lowers whole onto the GEMM tier; either counter
	// proves the vector engine ran across workers.
	if s.VectorRuns+s.GemmRuns == 0 || s.CacheMisses == 0 {
		t.Fatalf("expected vector/GEMM activity across workers, got %+v", s)
	}
}

// TestDefaultTierConcurrentSet covers the package-level default (set once by
// the CLI, read by every NewMachine, including those created inside batch
// workers).
func TestDefaultTierConcurrentSet(t *testing.T) {
	prev := sim.DefaultTier()
	defer sim.SetDefaultTier(prev)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				sim.SetDefaultTier(sim.TierClosure)
			} else {
				_ = sim.NewMachine().GetTier()
			}
		}(i)
	}
	wg.Wait()
}

// TestCompiledCacheSingleMachineSequential pins down the documented contract:
// the compiled-kernel cache is per-machine and machines are not safe for
// concurrent Run; workers get their own machine and share only pool + stats.
// This test exists so the contract is written down next to the race tests.
func TestCompiledCacheSingleMachineSequential(t *testing.T) {
	src := ir.NewBuffer("s", ir.Global, 16)
	dst := ir.NewBuffer("d", ir.Global, 16)
	i := ir.V("i")
	kern := &ir.Kernel{Name: "seq", Args: []*ir.Buffer{src, dst},
		Body: ir.Loop(i, 16, &ir.Store{Buf: dst, Index: []ir.Expr{i}, Value: &ir.Load{Buf: src, Index: []ir.Expr{i}}})}
	st := &sim.ExecStats{}
	m := sim.NewMachine()
	m.SetStats(st)
	m.Bind(src, make([]float32, 16))
	m.Bind(dst, make([]float32, 16))
	for r := 0; r < 10; r++ {
		if err := m.Run(kern, nil); err != nil {
			t.Fatal(err)
		}
	}
	if s := st.Snapshot(); s.CacheMisses != 1 || s.CacheHits != 9 {
		t.Fatalf("cache contract: want 1 miss + 9 hits, got %+v", s)
	}
}
