package sim

// Execution tiers. The machine has three engines with bit-identical
// semantics:
//
//	TierInterp  — tree-walking interpreter (interp.go); the oracle.
//	TierClosure — closure compiler (compile.go); per-element closure calls.
//	TierVector  — closure compiler + affine loop-nest vectorizer
//	              (vector.go); recognized nests run as flat slice
//	              microkernels, everything else falls back per-loop to the
//	              closure tier.
//
// The default is TierVector; tests cross-check it against RunInterp.

import (
	"fmt"
	"sync/atomic"
)

// Tier selects which engine Machine.Run uses.
type Tier int32

const (
	TierVector Tier = iota
	TierClosure
	TierInterp
)

func (t Tier) String() string {
	switch t {
	case TierVector:
		return "vector"
	case TierClosure:
		return "closure"
	case TierInterp:
		return "interp"
	}
	return fmt.Sprintf("tier(%d)", int32(t))
}

// ParseTier parses a -exec flag value.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "vector":
		return TierVector, nil
	case "closure":
		return TierClosure, nil
	case "interp":
		return TierInterp, nil
	}
	return 0, fmt.Errorf("sim: unknown execution tier %q (want interp, closure or vector)", s)
}

// defaultTier seeds the tier of newly created machines; the CLI's -exec flag
// sets it once at startup. Atomic because machines are created from batch
// workers.
var defaultTier atomic.Int32

// SetDefaultTier sets the tier new machines start with.
func SetDefaultTier(t Tier) { defaultTier.Store(int32(t)) }

// DefaultTier returns the tier new machines start with.
func DefaultTier() Tier { return Tier(defaultTier.Load()) }

// SetTier switches this machine's engine. Compiled programs are cached per
// tier, so switching back and forth does not recompile.
func (m *Machine) SetTier(t Tier) { m.tier = t }

// GetTier returns the machine's current engine.
func (m *Machine) GetTier() Tier { return m.tier }

// ExecStats aggregates compile- and run-time tier counters across the
// machines that share it (all workers of a batch deployment). All fields are
// atomic; sim does not depend on internal/trace — hosts drain a snapshot
// into the metrics registry, mirroring the aoc.CompileObserver convention.
type ExecStats struct {
	// CacheHits / CacheMisses count compiled-kernel cache lookups in Run.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// VectorLoops / FallbackLoops are compile-time counts: loop nests
	// lowered to microkernels vs innermost compute loops left on the
	// closure tier (every vectorization bailout is countable).
	VectorLoops   atomic.Int64
	FallbackLoops atomic.Int64
	// VectorRuns / GuardBailouts are run-time counts: microkernel
	// executions vs nests whose pre-loop span check failed (out-of-bounds
	// or aliasing) and were re-run on the scalar closures.
	VectorRuns    atomic.Int64
	GuardBailouts atomic.Int64
	// GemmLoops is a compile-time count of whole nests recognized and
	// lowered onto cpuref.Gemm (gemm.go); GemmRuns / GemmBailouts are the
	// run-time executions vs stride-guard failures replayed on the twin.
	GemmLoops    atomic.Int64
	GemmRuns     atomic.Int64
	GemmBailouts atomic.Int64
}

// StatsSnapshot is a plain-value copy of ExecStats.
type StatsSnapshot struct {
	CacheHits, CacheMisses            int64
	VectorLoops, FallbackLoops        int64
	VectorRuns, GuardBailouts         int64
	GemmLoops, GemmRuns, GemmBailouts int64
}

// Snapshot returns current counter values; nil-safe.
func (s *ExecStats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		CacheHits:     s.CacheHits.Load(),
		CacheMisses:   s.CacheMisses.Load(),
		VectorLoops:   s.VectorLoops.Load(),
		FallbackLoops: s.FallbackLoops.Load(),
		VectorRuns:    s.VectorRuns.Load(),
		GuardBailouts: s.GuardBailouts.Load(),
		GemmLoops:     s.GemmLoops.Load(),
		GemmRuns:      s.GemmRuns.Load(),
		GemmBailouts:  s.GemmBailouts.Load(),
	}
}

// SetStats attaches a stats sink to the machine (shared across the machines
// of a deployment). nil disables counting.
func (m *Machine) SetStats(s *ExecStats) { m.stats = s }
