package trace

// Small deterministic statistics helpers for published metrics. Only
// IEEE-exact float operations (+, -, ×, ÷, sqrt) are used, so results are
// bit-identical across conforming platforms — these values end up in
// byte-diffed benchmark reports.

import "math"

// SpearmanRank returns the Spearman rank correlation between pred and
// actual (average ranks for ties). Returns 0 when the slices are shorter
// than 2, of unequal length, or when either side is constant (zero
// variance). +1 means the prediction ranks candidates exactly like the
// ground truth; values near 0 mean the ranking carries no signal.
func SpearmanRank(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) < 2 {
		return 0
	}
	rp := ranks(pred)
	ra := ranks(actual)
	return pearson(rp, ra)
}

// ranks assigns 1-based average-tie ranks.
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value (ties keep index order): n is small and this
	// avoids sort.Slice's interface overhead while staying deterministic.
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && (x[idx[j-1]] > x[idx[j]] || (x[idx[j-1]] == x[idx[j]] && idx[j-1] > idx[j])) {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// Average rank for the tie block [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// pearson returns the Pearson correlation of two equal-length series.
func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}
