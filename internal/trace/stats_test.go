package trace

import (
	"math"
	"testing"
)

// approx allows a few ulps of rounding in the Pearson step; exact bit
// determinism across repeated calls is asserted separately.
func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSpearmanRank(t *testing.T) {
	cases := []struct {
		name         string
		pred, actual []float64
		want         float64
	}{
		{"perfect", []float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}, 1},
		{"perfect nonlinear", []float64{1, 2, 3, 4}, []float64{1, 100, 10000, 1000000}, 1},
		{"reversed", []float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}, -1},
		{"constant pred", []float64{5, 5, 5}, []float64{1, 2, 3}, 0},
		{"constant actual", []float64{1, 2, 3}, []float64{7, 7, 7}, 0},
		{"too short", []float64{1}, []float64{1}, 0},
		{"length mismatch", []float64{1, 2}, []float64{1, 2, 3}, 0},
		{"empty", nil, nil, 0},
	}
	for _, c := range cases {
		if got := SpearmanRank(c.pred, c.actual); !approx(got, c.want) {
			t.Errorf("%s: SpearmanRank = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSpearmanRankTies(t *testing.T) {
	// Ties get average ranks: pred {1,2,2,3} ranks to {1, 2.5, 2.5, 4}.
	// Against a strictly increasing actual the correlation is high but below
	// 1 because the tie breaks the strict monotone match.
	got := SpearmanRank([]float64{1, 2, 2, 3}, []float64{10, 20, 30, 40})
	if got <= 0.9 || got >= 1 {
		t.Fatalf("tied ranks: got %v, want in (0.9, 1)", got)
	}
	// Ties on both sides in the same places restore a perfect match.
	if got := SpearmanRank([]float64{1, 2, 2, 3}, []float64{10, 20, 20, 30}); !approx(got, 1) {
		t.Fatalf("matched ties: got %v, want 1", got)
	}
}

func TestSpearmanRankDeterministic(t *testing.T) {
	pred := []float64{3.2, 1.1, 4.8, 1.1, 2.9, 7.5, 0.3}
	actual := []float64{30, 12, 50, 11, 28, 70, 5}
	first := SpearmanRank(pred, actual)
	for i := 0; i < 10; i++ {
		if got := SpearmanRank(pred, actual); got != first {
			t.Fatalf("run %d: got %v, want %v (bit-identical)", i, got, first)
		}
	}
}
