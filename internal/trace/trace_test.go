package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clrt"
	"repro/internal/fault"
)

// goldenCollector builds a small fixed trace exercising both processes, both
// lanes, instants and args — the shape a real run produces, shrunk to stay
// readable in the golden file.
func goldenCollector() *Collector {
	c := NewCollector()
	c.AddEvents([]*clrt.Event{
		{Kind: "write", Name: "input", QueuedUS: 0, StartUS: 0, EndUS: 10, Queue: 0, Bytes: 4096},
		{Kind: "kernel", Name: "conv1", QueuedUS: 0, StartUS: 10, EndUS: 60, Queue: 1, StallUS: 5, Stalled: true},
		{Kind: "read", Name: "output", QueuedUS: 60, StartUS: 60, EndUS: 70, Queue: 0, Bytes: 2048, Corrupt: true},
	}, 100, 0)
	c.Add(Span{Proc: "host", Track: "images", Name: "image 0", Cat: "image",
		StartUS: 0, DurUS: 70, Args: map[string]string{"events": "3"}})
	c.AddFaults([]fault.Record{
		{Seq: 1, Kind: fault.TransferCorrupt, Code: fault.Success, Op: "read output", AtUS: 70},
	}, 0)
	return c
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exporter output diverged from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if parsed.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", parsed.Unit)
	}
	var xs, is, ms int
	for _, e := range parsed.TraceEvents {
		switch e["ph"] {
		case "X":
			xs++
		case "i":
			is++
			if e["s"] != "t" {
				t.Fatalf("instant event missing thread scope: %v", e)
			}
		case "M":
			ms++
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	// 4 complete spans (3 device events + 1 host image), 1 fault instant,
	// 2 process_name + 4 tracks x (thread_name + thread_sort_index).
	if xs != 4 || is != 1 || ms != 2+2*4 {
		t.Fatalf("event mix X=%d i=%d M=%d, want 4/1/10", xs, is, ms)
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	c := goldenCollector()
	if err := c.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same collector differ")
	}
	// A freshly rebuilt collector must serialize identically too — the
	// acceptance bar for trace determinism across repeated runs.
	var c2 bytes.Buffer
	if err := goldenCollector().WriteChromeTrace(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c2.Bytes()) {
		t.Fatal("rebuilt collector serializes differently")
	}
}

func TestAddEventsMetrics(t *testing.T) {
	c := NewCollector()
	c.AddEvents([]*clrt.Event{
		{Kind: "write", Name: "in", StartUS: 0, EndUS: 10, Bytes: 4000},
		{Kind: "kernel", Name: "k1", StartUS: 10, EndUS: 60, StallUS: 5, Queue: 1},
		{Kind: "read", Name: "out", StartUS: 60, EndUS: 70, Bytes: 2000},
	}, 100, 0)
	reg := c.Metrics()
	if got := reg.Gauge("clrt.kernel_occupancy").Value(); got != 0.5 {
		t.Fatalf("occupancy = %v, want 0.5 (50 busy us / 100 elapsed)", got)
	}
	if got := reg.Gauge("clrt.channel_stall_pct").Value(); got != 10 {
		t.Fatalf("stall pct = %v, want 10 (5 stall us / 50 busy us)", got)
	}
	if got := reg.Gauge("clrt.transfer_mbps").Value(); got != 300 {
		t.Fatalf("transfer mbps = %v, want 300 (6000 B / 20 us)", got)
	}
	for kind, want := range map[string]int64{"kernel": 1, "write": 1, "read": 1} {
		if got := reg.Counter("clrt.events." + kind).Value(); got != want {
			t.Fatalf("events.%s = %d, want %d", kind, got, want)
		}
	}
	if got := len(c.Spans()); got != 3 {
		t.Fatalf("spans = %d, want 3", got)
	}
}

func TestAddEventsOffset(t *testing.T) {
	c := NewCollector()
	c.AddEvents([]*clrt.Event{{Kind: "kernel", Name: "k", StartUS: 5, EndUS: 15}}, 15, 1000)
	spans := c.Spans()
	if spans[0].StartUS != 1005 || spans[0].DurUS != 10 {
		t.Fatalf("offset span = [%v +%v], want [1005 +10]", spans[0].StartUS, spans[0].DurUS)
	}
	if got := c.MaxEndUS(); got != 1015 {
		t.Fatalf("MaxEndUS = %v, want 1015", got)
	}
}

func TestAddFaults(t *testing.T) {
	c := NewCollector()
	c.AddFaults([]fault.Record{
		{Seq: 1, Kind: fault.TransferFail, Code: fault.OutOfResources, Op: "write w", AtUS: 3},
		{Seq: 2, Kind: fault.TransferFail, Code: fault.OutOfResources, Op: "write w", AtUS: 7},
		{Seq: 3, Kind: fault.KernelStall, Code: fault.ExecStatusErrorForEvents, Op: "kernel k", AtUS: 9},
	}, 100)
	if got := c.Metrics().Counter("fault.transfer-fail").Value(); got != 2 {
		t.Fatalf("transfer-fail count = %d, want 2", got)
	}
	if got := c.Metrics().Counter("fault.kernel-stall").Value(); got != 1 {
		t.Fatalf("kernel-stall count = %d, want 1", got)
	}
	spans := c.Spans()
	if len(spans) != 3 || !spans[0].Instant || spans[0].StartUS != 103 {
		t.Fatalf("fault instants malformed: %+v", spans)
	}
	if spans[2].Args["code"] != "CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST" {
		t.Fatalf("fault args missing CL code: %v", spans[2].Args)
	}
}

func TestNilCollectorInert(t *testing.T) {
	var c *Collector
	c.Add(Span{Name: "x"})
	c.Instant("host", "t", "n", "c", 0, nil)
	c.AddEvents([]*clrt.Event{{Kind: "kernel", Name: "k", EndUS: 1}}, 1, 0)
	c.AddFaults([]fault.Record{{}}, 0)
	c.Metrics().Counter("x").Inc()
	c.Metrics().Gauge("x").Set(1)
	c.Metrics().Histogram("x").Observe(1)
	if c.Spans() != nil || c.MaxEndUS() != 0 {
		t.Fatal("nil collector should report nothing")
	}
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil collector export: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil collector export is not valid JSON: %v", err)
	}
}
