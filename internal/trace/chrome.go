package trace

// Chrome trace event format exporter (the catapult JSON consumed by
// about://tracing and https://ui.perfetto.dev). One trace process per span
// Proc ("device", "host"), one thread per track, complete ("X") events for
// spans and instant ("i") events for markers.
//
// Determinism: pids are assigned by sorted process name, tids by first
// appearance in the span stream, spans are stably sorted by start time, and
// encoding/json emits map keys (span args) sorted — so a deterministic run
// produces a byte-identical trace file.

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the traceEvents array. Field order here fixes
// the byte layout of every exported event.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   *float64          `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the collector's spans as Chrome trace JSON.
// Timestamps are simulated microseconds, which is exactly the unit the
// format expects. Nil-safe: a nil collector writes an empty (but valid)
// trace.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	spans := c.Spans()
	sortSpansForExport(spans)

	// pid per process name, sorted so "device" < "host" regardless of which
	// layer records first.
	procSet := map[string]bool{}
	for _, s := range spans {
		procSet[s.Proc] = true
	}
	pids := map[string]int{}
	for i, p := range sortedKeys(procSet) {
		pids[p] = i + 1
	}

	// tid per (proc, track), in first-appearance order of the time-sorted
	// stream: queue 0's setup transfers come first, so track numbering is
	// stable for a given run shape.
	type trackKey struct{ proc, track string }
	tids := map[trackKey]int{}
	var trackOrder []trackKey
	for _, s := range spans {
		k := trackKey{s.Proc, s.Track}
		if _, ok := tids[k]; !ok {
			tids[k] = len(trackOrder) + 1
			trackOrder = append(trackOrder, k)
		}
	}

	evs := make([]chromeEvent, 0, len(spans)+2*len(trackOrder)+len(pids))
	for _, p := range sortedKeys(pids) {
		evs = append(evs, chromeEvent{
			Name: "process_name", Phase: "M", PID: pids[p],
			Args: map[string]string{"name": p},
		})
	}
	for _, k := range trackOrder {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Phase: "M", PID: pids[k.proc], TID: tids[k],
			Args: map[string]string{"name": k.track},
		})
		evs = append(evs, chromeEvent{
			Name: "thread_sort_index", Phase: "M", PID: pids[k.proc], TID: tids[k],
			Args: map[string]string{"sort_index": fmt.Sprintf("%d", tids[k])},
		})
	}
	for _, s := range spans {
		e := chromeEvent{
			Name: s.Name, Cat: s.Cat, TS: s.StartUS,
			PID: pids[s.Proc], TID: tids[trackKey{s.Proc, s.Track}],
			Args: s.Args,
		}
		if s.Instant {
			e.Phase = "i"
			e.Scope = "t"
		} else {
			e.Phase = "X"
			dur := s.DurUS
			e.Dur = &dur
		}
		evs = append(evs, e)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
