package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers get-or-create and publication from many
// goroutines; run under -race it proves the registry needs no external
// locking (the host publishes from concurrently retried images).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.count").Inc()
				r.Gauge("shared.gauge").Set(float64(i))
				r.Histogram("shared.hist").Observe(float64(i))
				r.Counter(fmt.Sprintf("worker.%d", w)).Add(2)
				_ = r.DumpText()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != workers*iters {
		t.Fatalf("shared counter = %d, want %d", got, workers*iters)
	}
	s := r.Histogram("shared.hist").Snapshot()
	if s.Count != workers*iters || s.Min != 0 || s.Max != iters-1 {
		t.Fatalf("hist snapshot = %+v", s)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter(fmt.Sprintf("worker.%d", w)).Value(); got != 2*iters {
			t.Fatalf("worker.%d = %d, want %d", w, got, 2*iters)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := &Histogram{}
	if s := h.Snapshot(); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	for _, v := range []float64{4, 2, 6} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 12 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestDumpTextSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz.last").Inc()
	r.Counter("aa.first").Inc()
	r.Gauge("mid.gauge").Set(1.5)
	r.Histogram("hh.hist").Observe(3)
	out := r.DumpText()
	if strings.Index(out, "aa.first") > strings.Index(out, "zz.last") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	for _, want := range []string{"counters:", "gauges:", "histograms:", "mid.gauge", "n=1 mean=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(0.25)
	r.Histogram("h").Observe(10)
	raw, err := r.DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters   map[string]int64        `json:"counters"`
		Gauges     map[string]float64      `json:"gauges"`
		Histograms map[string]HistSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, raw)
	}
	if got.Counters["c"] != 7 || got.Gauges["g"] != 0.25 || got.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost values: %+v", got)
	}
}

func TestNilRegistryInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 {
		t.Fatal("nil registry should read zero")
	}
	if r.DumpText() != "" {
		t.Fatal("nil registry should dump empty text")
	}
	raw, err := r.DumpJSON()
	if err != nil {
		t.Fatalf("nil DumpJSON: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("nil DumpJSON invalid: %v", err)
	}
}

func TestCacheObserver(t *testing.T) {
	r := NewRegistry()
	o := CacheObserver{Reg: r}
	o.ObserveCompile("conv", false)
	o.ObserveCompile("conv", true)
	o.ObserveCompile("conv", true)
	if h, m := r.Counter("aoc.compile_cache.hits").Value(), r.Counter("aoc.compile_cache.misses").Value(); h != 2 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", h, m)
	}
}
