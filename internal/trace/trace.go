// Package trace is the runtime's observability layer: structured spans over
// simulated time, a metrics registry, and a Chrome-trace exporter. The
// thesis evaluates its runtime by looking at execution timelines
// (serial-vs-concurrent queues, channel-pipeline overlap, the PCIe
// bottleneck, §5.2); this package makes those timelines machine-readable —
// the clrt event stream becomes device-side spans, and the host layers add
// per-image, per-ladder-rung and per-DSE-candidate spans with fault
// annotations from internal/fault.
//
// Everything is deterministic for a deterministic run: spans are keyed on
// simulated microseconds, never the wall clock, so a fixed seed yields a
// byte-identical trace.
package trace

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/clrt"
	"repro/internal/fault"
)

// Span is one interval (or instant) on a named track. Proc groups tracks
// into a Chrome-trace process ("device" for simulator events, "host" for
// host-program phases); Track is the thread-level lane.
type Span struct {
	Proc  string
	Track string
	Name  string
	// Cat is the Chrome-trace category ("kernel", "write", "read", "image",
	// "rung", "candidate", "fault", ...): traces can be filtered by it in the
	// Perfetto UI.
	Cat     string
	StartUS float64
	DurUS   float64
	// Instant marks a zero-duration marker event (rendered as an arrow tick);
	// DurUS is ignored.
	Instant bool
	// Args become the span's argument table in the trace viewer.
	Args map[string]string
}

// Collector accumulates spans for one traced run. Safe for concurrent use; a
// nil *Collector is inert, so the host can thread it unconditionally.
type Collector struct {
	mu    sync.Mutex
	spans []Span
	reg   *Registry
}

// NewCollector returns an empty collector with a fresh metrics registry.
func NewCollector() *Collector {
	return &Collector{reg: NewRegistry()}
}

// Metrics returns the collector's registry. Nil-safe (returns a nil, inert
// registry).
func (c *Collector) Metrics() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Add records one span. Nil-safe.
func (c *Collector) Add(s Span) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Instant records a zero-duration marker. Nil-safe.
func (c *Collector) Instant(proc, track, name, cat string, atUS float64, args map[string]string) {
	c.Add(Span{Proc: proc, Track: track, Name: name, Cat: cat, StartUS: atUS, Instant: true, Args: args})
}

// Spans returns a copy of the recorded spans in insertion order. Nil-safe.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// AddEvents converts a clrt event stream into device-process spans, one
// track per command queue with kernels and transfers on separate lanes, and
// publishes the event-derived metrics (occupancy, channel stall %, transfer
// bandwidth). offsetUS shifts the events on the global trace clock — ladder
// rungs each run in a fresh context starting at 0, so the host passes the
// cumulative time of the preceding rungs. elapsedUS is the context's total
// simulated time (Context.ElapsedUS), the denominator for occupancy.
// Call after Context.Finish: autorun propagation can extend producer spans
// until the queues drain. Nil-safe.
func (c *Collector) AddEvents(events []*clrt.Event, elapsedUS, offsetUS float64) {
	c.AddEventsAs("device", events, elapsedUS, offsetUS)
}

// AddEventsAs is AddEvents with an explicit trace process name. Batch runs
// give each worker's device context its own process ("device w0", "device
// w1", ...) so per-worker queues do not collide on one track namespace.
// Nil-safe.
func (c *Collector) AddEventsAs(proc string, events []*clrt.Event, elapsedUS, offsetUS float64) {
	if c == nil {
		return
	}
	var kernelBusyUS, stallUS float64
	var xferBytes, xferUS float64
	for _, e := range events {
		lane := "transfers"
		if e.Kind == "kernel" {
			lane = "kernels"
		}
		args := map[string]string{"queue": fmt.Sprintf("%d", e.Queue)}
		dur := e.EndUS - e.StartUS
		switch e.Kind {
		case "kernel":
			kernelBusyUS += dur
			stallUS += e.StallUS
			if e.StallUS > 0 {
				args["channel_stall_us"] = fmt.Sprintf("%.1f", e.StallUS)
			}
			if e.Stalled {
				args["stalled"] = "true"
			}
			c.reg.Histogram("clrt.kernel_us").Observe(dur)
		case "write", "read":
			xferBytes += float64(e.Bytes)
			xferUS += dur
			args["bytes"] = fmt.Sprintf("%d", e.Bytes)
			if dur > 0 {
				// bytes/us == MB/s
				args["mbps"] = fmt.Sprintf("%.1f", float64(e.Bytes)/dur)
			}
			if e.Corrupt {
				args["corrupt"] = "true"
			}
			c.reg.Histogram("clrt.transfer_us").Observe(dur)
		}
		c.reg.Counter("clrt.events." + e.Kind).Inc()
		c.Add(Span{
			Proc:    proc,
			Track:   fmt.Sprintf("queue %d %s", e.Queue, lane),
			Name:    e.Kind + " " + e.Name,
			Cat:     e.Kind,
			StartUS: offsetUS + e.StartUS,
			DurUS:   dur,
			Args:    args,
		})
	}
	if elapsedUS > 0 {
		c.reg.Gauge("clrt.kernel_occupancy").Set(kernelBusyUS / elapsedUS)
	}
	if kernelBusyUS > 0 {
		c.reg.Gauge("clrt.channel_stall_pct").Set(100 * stallUS / kernelBusyUS)
	}
	if xferUS > 0 {
		// bytes per microsecond is numerically MB/s.
		c.reg.Gauge("clrt.transfer_mbps").Set(xferBytes / xferUS)
	}
}

// AddFaults turns an injector's ledger into instant markers on a dedicated
// host-process "faults" track and bumps per-kind fault counters. offsetUS
// shifts the records onto the global trace clock (see AddEvents). Nil-safe.
func (c *Collector) AddFaults(records []fault.Record, offsetUS float64) {
	if c == nil {
		return
	}
	for _, r := range records {
		c.reg.Counter("fault." + r.Kind.String()).Inc()
		c.Instant("host", "faults", r.Kind.String(), "fault", offsetUS+r.AtUS, map[string]string{
			"seq":  fmt.Sprintf("%d", r.Seq),
			"code": r.Code.String(),
			"op":   r.Op,
		})
	}
}

// MaxEndUS returns the latest span end time on the global trace clock — the
// offset at which a subsequent run should be placed to follow everything
// recorded so far. Nil-safe.
func (c *Collector) MaxEndUS() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var end float64
	for _, s := range c.spans {
		e := s.StartUS
		if !s.Instant {
			e += s.DurUS
		}
		if e > end {
			end = e
		}
	}
	return end
}

// sortSpansForExport orders spans deterministically for the exporter:
// process, then track first-appearance is resolved separately; within the
// stream ordering is by start time, then insertion order (stable sort).
func sortSpansForExport(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
}
