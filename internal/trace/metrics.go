package trace

// A lightweight metrics registry: named counters, gauges and histograms with
// deterministic text/JSON dumps. The runtime publishes what the thesis's
// evaluation reads off its timelines — kernel occupancy, channel stall %,
// PCIe transfer bandwidth — plus operational counters from the DSE and
// resilience layers (candidates/sec, compile-cache hit ratio, retries,
// fallbacks). All types are safe for concurrent use, and a nil *Registry is
// inert so callers can publish unconditionally.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// CacheObserver publishes compile-cache lookups into a registry. It
// satisfies aoc.CompileObserver structurally — aoc sits below this package
// and cannot import it, so the interface lives there and the implementation
// here: cache.SetObserver(trace.CacheObserver{Reg: reg}).
type CacheObserver struct{ Reg *Registry }

// ObserveCompile counts one memoized kernel-analysis lookup.
func (o CacheObserver) ObserveCompile(kernel string, hit bool) {
	if hit {
		o.Reg.Counter("aoc.compile_cache.hits").Inc()
	} else {
		o.Reg.Counter("aoc.compile_cache.misses").Inc()
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta. Nil-safe.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the current value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 before any Set). Nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram tracks the distribution of observed values as count / sum / min /
// max. It deliberately stores no samples: observations arrive per kernel
// launch and per transfer, and the dump must stay cheap and deterministic.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Snapshot returns the current count/sum/min/max. Nil-safe.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	return s
}

// HistSnapshot is a point-in-time summary of a Histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Registry holds named metrics. Get-or-create accessors make call sites
// one-liners; the same name always returns the same metric. A nil *Registry
// returns nil metrics, whose methods are in turn nil-safe, so an untraced run
// pays only pointer checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it on first use.
// Nil-safe: a nil registry returns a nil (inert) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// snapshot copies the metric maps under the lock so dumps never race with
// concurrent publishers.
func (r *Registry) snapshot() (cs map[string]*Counter, gs map[string]*Gauge, hs map[string]*Histogram) {
	cs, gs, hs = map[string]*Counter{}, map[string]*Gauge{}, map[string]*Histogram{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		cs[k] = v
	}
	for k, v := range r.gauges {
		gs[k] = v
	}
	for k, v := range r.hists {
		hs[k] = v
	}
	return cs, gs, hs
}

// sortedKeys returns the keys of a map in sorted order — every dump walks
// maps in this order so output is deterministic (the same discipline as the
// ProfileOps fix).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// DumpText renders all metrics as aligned text, sections and names sorted.
// Nil-safe: a nil registry dumps an empty string.
func (r *Registry) DumpText() string {
	if r == nil {
		return ""
	}
	cs, gs, hs := r.snapshot()
	var b strings.Builder
	if len(cs) > 0 {
		b.WriteString("counters:\n")
		for _, k := range sortedKeys(cs) {
			fmt.Fprintf(&b, "  %-32s %d\n", k, cs[k].Value())
		}
	}
	if len(gs) > 0 {
		b.WriteString("gauges:\n")
		for _, k := range sortedKeys(gs) {
			fmt.Fprintf(&b, "  %-32s %.4g\n", k, gs[k].Value())
		}
	}
	if len(hs) > 0 {
		b.WriteString("histograms:\n")
		for _, k := range sortedKeys(hs) {
			s := hs[k].Snapshot()
			fmt.Fprintf(&b, "  %-32s n=%d mean=%.4g min=%.4g max=%.4g\n",
				k, s.Count, s.Mean, s.Min, s.Max)
		}
	}
	return b.String()
}

// DumpJSON renders all metrics as a JSON object with "counters", "gauges"
// and "histograms" keys. encoding/json emits map keys sorted, so the dump is
// byte-deterministic for the same metric values. Nil-safe.
func (r *Registry) DumpJSON() ([]byte, error) {
	out := struct {
		Counters   map[string]int64        `json:"counters"`
		Gauges     map[string]float64      `json:"gauges"`
		Histograms map[string]HistSnapshot `json:"histograms"`
	}{map[string]int64{}, map[string]float64{}, map[string]HistSnapshot{}}
	if r != nil {
		cs, gs, hs := r.snapshot()
		for k, c := range cs {
			out.Counters[k] = c.Value()
		}
		for k, g := range gs {
			out.Gauges[k] = g.Value()
		}
		for k, h := range hs {
			out.Histograms[k] = h.Snapshot()
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
