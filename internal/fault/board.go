package fault

// Board-level faults: whole-device failure modes the fleet layer
// (internal/fleet) recovers from by rerouting work across boards, as opposed
// to the operation-level probes above, which the single-device retry ladder
// absorbs. These are scheduled, not probabilistic: a chaos run names the
// victim device and the simulated time of the hit, so a kill-a-board test is
// exactly reproducible and the assertion "no request was dropped" is about
// the scheduler, never about the dice.

import "fmt"

// Board-level failure modes, continuing the Kind enum.
const (
	// DeviceLoss: the board drops off the bus entirely (XCVR loss, shell
	// crash, host hot-unplugs the PAC). In-flight work is gone; the host only
	// notices when heartbeats stop or a dispatch wedges past the watchdog.
	DeviceLoss Kind = iota + FitFlake + 1
	// StickyEnqueue: every enqueue to the board fails for a window (exhausted
	// device memory pool, wedged command queue). The board still heartbeats,
	// so only dispatch failures reveal it.
	StickyEnqueue
	// Brownout: the board stays up but runs slow for a window (thermal
	// throttle, a neighbor saturating the PCIe switch). Service times stretch
	// by Factor; heartbeats arrive late, marking the device suspect.
	Brownout
)

// boardKindNames extends Kind.String for the board-level kinds.
func boardKindName(k Kind) (string, bool) {
	switch k {
	case DeviceLoss:
		return "device-loss", true
	case StickyEnqueue:
		return "sticky-enqueue", true
	case Brownout:
		return "brownout", true
	}
	return "", false
}

// BoardFault is one scheduled board-level fault: Kind hits Device at AtUS on
// the simulated clock. DurUS bounds the window for recoverable kinds; for
// DeviceLoss, DurUS == 0 means the board never comes back. Factor is the
// Brownout service-time multiplier (ignored otherwise).
type BoardFault struct {
	Device string  `json:"device"`
	Kind   Kind    `json:"kind"`
	AtUS   float64 `json:"at_us"`
	DurUS  float64 `json:"dur_us,omitempty"`
	Factor float64 `json:"factor,omitempty"`
}

// EndUS returns the end of the fault window; +Inf conceptually for a
// permanent DeviceLoss, represented as a very large sentinel so comparisons
// stay total.
func (f BoardFault) EndUS() float64 {
	if f.Kind == DeviceLoss && f.DurUS <= 0 {
		return permanentUS
	}
	return f.AtUS + f.DurUS
}

// permanentUS is far beyond any simulated run's horizon.
const permanentUS = 1e18

// Permanent reports whether the fault never clears.
func (f BoardFault) Permanent() bool { return f.Kind == DeviceLoss && f.DurUS <= 0 }

// Validate checks a scheduled board fault for internal consistency.
func (f BoardFault) Validate() error {
	if f.Device == "" {
		return fmt.Errorf("fault: board fault needs a device name")
	}
	if f.AtUS < 0 {
		return fmt.Errorf("fault: board fault on %s at negative time %.0f", f.Device, f.AtUS)
	}
	switch f.Kind {
	case DeviceLoss:
		// DurUS 0 is a permanent loss; positive is a bounce.
		if f.DurUS < 0 {
			return fmt.Errorf("fault: device-loss on %s with negative duration", f.Device)
		}
	case StickyEnqueue:
		if f.DurUS <= 0 {
			return fmt.Errorf("fault: sticky-enqueue on %s needs a positive window", f.Device)
		}
	case Brownout:
		if f.DurUS <= 0 {
			return fmt.Errorf("fault: brownout on %s needs a positive window", f.Device)
		}
		if f.Factor <= 1 {
			return fmt.Errorf("fault: brownout on %s needs factor > 1, got %g", f.Device, f.Factor)
		}
	default:
		return fmt.Errorf("fault: %s is not a board-level fault kind", f.Kind)
	}
	return nil
}

func (f BoardFault) String() string {
	s := fmt.Sprintf("%s on %s at t=%.0fus", f.Kind, f.Device, f.AtUS)
	if f.Permanent() {
		return s + " (permanent)"
	}
	s += fmt.Sprintf(" for %.0fus", f.DurUS)
	if f.Kind == Brownout {
		s += fmt.Sprintf(" x%.1f", f.Factor)
	}
	return s
}
