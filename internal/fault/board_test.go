package fault

import (
	"strings"
	"testing"
)

func TestBoardFaultValidate(t *testing.T) {
	cases := []struct {
		name    string
		f       BoardFault
		wantErr string
	}{
		{"permanent loss", BoardFault{Device: "a10-0", Kind: DeviceLoss, AtUS: 100}, ""},
		{"bounce loss", BoardFault{Device: "a10-0", Kind: DeviceLoss, AtUS: 100, DurUS: 5000}, ""},
		{"sticky", BoardFault{Device: "a10-0", Kind: StickyEnqueue, AtUS: 0, DurUS: 100}, ""},
		{"brownout", BoardFault{Device: "a10-0", Kind: Brownout, AtUS: 0, DurUS: 100, Factor: 4}, ""},
		{"no device", BoardFault{Kind: DeviceLoss}, "device name"},
		{"negative time", BoardFault{Device: "x", Kind: DeviceLoss, AtUS: -1}, "negative time"},
		{"sticky no window", BoardFault{Device: "x", Kind: StickyEnqueue}, "positive window"},
		{"brownout factor", BoardFault{Device: "x", Kind: Brownout, DurUS: 10, Factor: 1}, "factor > 1"},
		{"op-level kind", BoardFault{Device: "x", Kind: TransferFail}, "not a board-level"},
	}
	for _, c := range cases {
		err := c.f.Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestBoardFaultWindows(t *testing.T) {
	perm := BoardFault{Device: "d", Kind: DeviceLoss, AtUS: 50}
	if !perm.Permanent() {
		t.Fatal("DurUS 0 device-loss should be permanent")
	}
	if perm.EndUS() < 1e17 {
		t.Fatalf("permanent loss EndUS = %g, want sentinel", perm.EndUS())
	}
	bounce := BoardFault{Device: "d", Kind: DeviceLoss, AtUS: 50, DurUS: 100}
	if bounce.Permanent() || bounce.EndUS() != 150 {
		t.Fatalf("bounce loss: permanent=%v end=%g, want false/150", bounce.Permanent(), bounce.EndUS())
	}
}

func TestBoardKindStrings(t *testing.T) {
	want := map[Kind]string{
		DeviceLoss:    "device-loss",
		StickyEnqueue: "sticky-enqueue",
		Brownout:      "brownout",
		TransferFail:  "transfer-fail", // op-level kinds unaffected
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
