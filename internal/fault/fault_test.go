package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// runProbes drives a fixed probe sequence and returns the ledger.
func runProbes(in *Injector) []Record {
	for i := 0; i < 50; i++ {
		in.Transfer(fmt.Sprintf("write%d", i), float64(i))
		in.Enqueue(fmt.Sprintf("kernel%d", i), float64(i))
		in.Stall(fmt.Sprintf("kernel%d", i), float64(i))
		in.Program("program", float64(i))
	}
	return in.Records()
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := runProbes(NewInjector(7, 0.2))
	b := runProbes(NewInjector(7, 0.2))
	if len(a) == 0 {
		t.Fatal("rate 0.2 over 200 probes injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("ledger lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := runProbes(NewInjector(1, 0.2))
	b := runProbes(NewInjector(2, 0.2))
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestRateExtremes(t *testing.T) {
	if got := runProbes(NewInjector(3, 0)); len(got) != 0 {
		t.Fatalf("rate 0 injected %d faults", len(got))
	}
	all := runProbes(NewInjector(3, 1))
	if len(all) != 200 {
		t.Fatalf("rate 1 injected %d of 200 probes", len(all))
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if err := in.Transfer("w", 0); err != nil {
		t.Fatal("nil injector injected a transfer fault")
	}
	if x := in.Stall("k", 0); x != 1 {
		t.Fatalf("nil injector stall factor %v", x)
	}
	if in.Records() != nil || in.Count() != 0 {
		t.Fatal("nil injector has records")
	}
}

func TestErrorTaxonomy(t *testing.T) {
	in := NewInjector(11, 1)
	terr := in.Transfer("write input", 5)
	if terr == nil {
		t.Fatal("rate-1 transfer probe did not fire")
	}
	if terr.Kind != TransferFail && terr.Kind != TransferCorrupt {
		t.Fatalf("unexpected transfer fault kind %v", terr.Kind)
	}
	if !IsTransient(terr) {
		t.Fatal("transfer faults must be transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", terr)) {
		t.Fatal("IsTransient must see through wrapping")
	}
	eerr := in.Enqueue("kernel conv1", 6)
	if eerr.Code != OutOfHostMemory {
		t.Fatalf("enqueue fault code %v", eerr.Code)
	}
	perr := in.Program("lenet", 7)
	if perr.Code != BuildProgramFailure {
		t.Fatalf("program fault code %v", perr.Code)
	}
	if x := in.Stall("kernel conv1", 8); x <= 1 {
		t.Fatalf("rate-1 stall factor %v", x)
	}
	var fe *Error
	if !errors.As(error(terr), &fe) {
		t.Fatal("fault errors must unwrap with errors.As")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain errors are not transient faults")
	}
}

func TestCodeStrings(t *testing.T) {
	for code, want := range map[Code]string{
		OutOfResources:          "CL_OUT_OF_RESOURCES",
		MemObjectAllocationFail: "CL_MEM_OBJECT_ALLOCATION_FAILURE",
		BuildProgramFailure:     "CL_BUILD_PROGRAM_FAILURE",
		Code(-99):               "CL_ERROR(-99)",
	} {
		if code.String() != want {
			t.Errorf("Code(%d) = %q, want %q", int(code), code, want)
		}
	}
}

func TestConcurrentProbesAreSafe(t *testing.T) {
	in := NewInjector(5, 0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Transfer(fmt.Sprintf("g%d-%d", g, i), float64(i))
			}
		}(g)
	}
	wg.Wait()
	recs := in.Records()
	if len(recs) == 0 {
		t.Fatal("no faults under concurrency")
	}
	for i, r := range recs {
		if r.Seq != i+1 {
			t.Fatalf("ledger sequence broken at %d: %+v", i, r)
		}
	}
}
