// Package fault is a deterministic, seed-driven fault injector for the
// runtime simulator. Channel-coupled OpenCL pipelines are the fragile part
// of the stack (§4.6): on real boards, PCIe transfers fail or corrupt data,
// kernels stall past any reasonable deadline, enqueue calls return transient
// CL_OUT_OF_* statuses, and fit/route occasionally flakes on a reprogram.
// The injector reproduces those failures on demand so the host's watchdog /
// retry / degradation ladder (internal/host) can be exercised and tested
// without hardware.
//
// Determinism contract: an Injector seeded with (seed, rate) produces the
// same fault sequence for the same sequence of probe calls. Probes draw from
// a splitmix64 stream owned by the injector, never from math/rand or the
// wall clock, so chaos tests are exactly reproducible across runs, platforms
// and Go versions. The injector is safe for concurrent use.
package fault

import (
	"errors"
	"fmt"
	"sync"
)

// Code mirrors the OpenCL status codes the host program sees on real
// hardware (cl.h); the injector tags every synthetic fault with the status
// the corresponding real failure would carry.
type Code int

const (
	Success                  Code = 0
	DeviceNotAvailable       Code = -2
	MemObjectAllocationFail  Code = -4
	OutOfResources           Code = -5
	OutOfHostMemory          Code = -6
	BuildProgramFailure      Code = -11
	ExecStatusErrorForEvents Code = -14
)

func (c Code) String() string {
	switch c {
	case Success:
		return "CL_SUCCESS"
	case DeviceNotAvailable:
		return "CL_DEVICE_NOT_AVAILABLE"
	case MemObjectAllocationFail:
		return "CL_MEM_OBJECT_ALLOCATION_FAILURE"
	case OutOfResources:
		return "CL_OUT_OF_RESOURCES"
	case OutOfHostMemory:
		return "CL_OUT_OF_HOST_MEMORY"
	case BuildProgramFailure:
		return "CL_BUILD_PROGRAM_FAILURE"
	case ExecStatusErrorForEvents:
		return "CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST"
	}
	return fmt.Sprintf("CL_ERROR(%d)", int(c))
}

// Kind enumerates the failure modes the injector models.
type Kind int

const (
	// TransferFail: a PCIe host<->device transfer errors out entirely.
	TransferFail Kind = iota
	// TransferCorrupt: the transfer completes but the payload is corrupted in
	// flight; the host detects it by checksum and must re-transfer.
	TransferCorrupt
	// KernelStall: a kernel runs far past its modeled time (a stuck channel
	// consumer on hardware); only a watchdog deadline catches it.
	KernelStall
	// EnqueueFail: the enqueue call itself fails transiently.
	EnqueueFail
	// FitFlake: programming the device fails (fit/route flakiness on
	// reconfiguration).
	FitFlake
)

func (k Kind) String() string {
	switch k {
	case TransferFail:
		return "transfer-fail"
	case TransferCorrupt:
		return "transfer-corrupt"
	case KernelStall:
		return "kernel-stall"
	case EnqueueFail:
		return "enqueue-fail"
	case FitFlake:
		return "fit-flake"
	}
	if name, ok := boardKindName(k); ok {
		return name
	}
	return "?"
}

// Error is one injected fault surfaced to the host as an OpenCL-style error.
type Error struct {
	Kind Kind
	Code Code
	// Op names the failed operation ("write input", "kernel conv1", ...).
	Op string
	// Transient faults are worth retrying; persistent ones require
	// degradation (reprogramming with a simpler design or falling back to
	// the CPU reference).
	Transient bool
}

func (e *Error) Error() string {
	t := "persistent"
	if e.Transient {
		t = "transient"
	}
	return fmt.Sprintf("fault: %s on %s: %s (%s)", e.Kind, e.Op, e.Code, t)
}

// IsTransient reports whether err carries a transient injected fault.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Transient
}

// Record is one ledger entry: every injected fault is logged so the run
// report can name each fault alongside the recovery taken.
type Record struct {
	Seq  int
	Kind Kind
	Code Code
	Op   string
	// AtUS is the simulated host time of the probe.
	AtUS float64
}

func (r Record) String() string {
	return fmt.Sprintf("#%d t=%.0fus %s %s on %s", r.Seq, r.AtUS, r.Kind, r.Code, r.Op)
}

// Injector decides, probe by probe, whether an operation faults. The zero
// value and the nil injector are inert (no faults, no overhead beyond a nil
// check), so the runtime can probe unconditionally.
type Injector struct {
	mu      sync.Mutex
	state   uint64
	rate    float64
	stallX  float64
	records []Record
	seq     int
}

// defaultStallFactor inflates a stalled kernel's modeled duration; large
// enough that any sane watchdog deadline catches it.
const defaultStallFactor = 64

// NewInjector returns an injector that fires each probe with probability
// rate, deterministically derived from seed. rate <= 0 yields an inert
// injector; rate >= 1 faults every probe.
func NewInjector(seed int64, rate float64) *Injector {
	return &Injector{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567, rate: rate, stallX: defaultStallFactor}
}

// SetStallFactor overrides the kernel-stall duration multiplier (tests).
func (in *Injector) SetStallFactor(x float64) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.stallX = x
	in.mu.Unlock()
}

// Enabled reports whether the injector can fire at all.
func (in *Injector) Enabled() bool { return in != nil && in.rate > 0 }

// next advances the splitmix64 stream. Callers hold in.mu.
func (in *Injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// draw returns a uniform float in [0,1). Callers hold in.mu.
func (in *Injector) draw() float64 {
	return float64(in.next()>>11) / float64(1<<53)
}

// fire decides one probe and logs it when it faults. Callers hold in.mu.
func (in *Injector) fire(kind Kind, code Code, op string, atUS float64) bool {
	if in.draw() >= in.rate {
		return false
	}
	in.seq++
	in.records = append(in.records, Record{Seq: in.seq, Kind: kind, Code: code, Op: op, AtUS: atUS})
	return true
}

// Transfer probes one PCIe transfer. A firing probe yields a hard transfer
// failure or (half the time) an in-flight corruption; both are transient —
// re-transferring is the correct recovery.
func (in *Injector) Transfer(op string, atUS float64) *Error {
	if !in.Enabled() {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.draw() >= in.rate {
		return nil
	}
	kind, code := TransferFail, OutOfResources
	if in.draw() < 0.5 {
		kind, code = TransferCorrupt, ExecStatusErrorForEvents
	}
	in.seq++
	in.records = append(in.records, Record{Seq: in.seq, Kind: kind, Code: code, Op: op, AtUS: atUS})
	return &Error{Kind: kind, Code: code, Op: op, Transient: true}
}

// Enqueue probes one kernel-enqueue call (transient CL_OUT_OF_HOST_MEMORY).
func (in *Injector) Enqueue(op string, atUS float64) *Error {
	if !in.Enabled() {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.fire(EnqueueFail, OutOfHostMemory, op, atUS) {
		return nil
	}
	return &Error{Kind: EnqueueFail, Code: OutOfHostMemory, Op: op, Transient: true}
}

// Stall probes one kernel execution; a firing probe returns a duration
// multiplier > 1 (the kernel wedges), otherwise 1. Stalls carry no CL error:
// only the watchdog deadline notices them.
func (in *Injector) Stall(op string, atUS float64) float64 {
	if !in.Enabled() {
		return 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.fire(KernelStall, Success, op, atUS) {
		return 1
	}
	return in.stallX
}

// Program probes one device-programming attempt (fit/route flakiness).
func (in *Injector) Program(op string, atUS float64) *Error {
	if !in.Enabled() {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.fire(FitFlake, BuildProgramFailure, op, atUS) {
		return nil
	}
	return &Error{Kind: FitFlake, Code: BuildProgramFailure, Op: op, Transient: true}
}

// Records returns a copy of the fault ledger in injection order.
func (in *Injector) Records() []Record {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Record, len(in.records))
	copy(out, in.records)
	return out
}

// Count returns the number of faults injected so far.
func (in *Injector) Count() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.records)
}
