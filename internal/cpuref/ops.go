// Package cpuref provides two things:
//
//  1. Native Go reference implementations of every CNN operator (ops.go).
//     These are the golden models: every IR schedule — naive or optimized,
//     pipelined or folded — is checked numerically against them, which is
//     this reproduction's equivalent of the thesis's on-hardware output
//     verification (§5.2 "output verification and debugging capabilities").
//
//  2. Analytic performance models of the thesis's CPU/GPU baselines
//     (baselines.go): Keras/TensorFlow on the Xeon 8280, TVM's LLVM backend
//     at 1–56 threads, and TensorFlow+cuDNN on the GTX 1060.
package cpuref

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/tensor"
)

// Conv2D computes a NCHW 2-D convolution (cross-correlation) with square
// filter f, stride s and zero padding p, with optional fused bias and ReLU —
// Eq. 2.1 of the thesis. in: [C1,H1,W1]; w: [C2,C1,F,F]; bias: [C2] or nil.
// Execution is lowered to im2col + cache-blocked GEMM (gemm.go); the direct
// loop nest survives as conv2DNaive, the test oracle.
func Conv2D(in, w, bias *tensor.Tensor, s, p int, relu bool) *tensor.Tensor {
	return Conv2DGEMM(in, w, bias, s, p, relu, 1)
}

// conv2DNaive is the direct 6-deep loop nest, kept as the independent oracle
// the GEMM path is tested against.
func conv2DNaive(in, w, bias *tensor.Tensor, s, p int, relu bool) *tensor.Tensor {
	c1, h1, w1 := in.Shape[0], in.Shape[1], in.Shape[2]
	c2, f := w.Shape[0], w.Shape[2]
	// Invariant, not input validation: every shape reaching cpuref was
	// produced by relay's shape inference, so a mismatch is a lowering bug.
	if w.Shape[1] != c1 {
		panic(fmt.Sprintf("cpuref: conv weights expect %d input channels, got %d", w.Shape[1], c1))
	}
	h2 := (h1-f+2*p)/s + 1
	w2 := (w1-f+2*p)/s + 1
	out := tensor.New(c2, h2, w2)
	for k := 0; k < c2; k++ {
		var b float32
		if bias != nil {
			b = bias.At(k)
		}
		for y := 0; y < h2; y++ {
			for x := 0; x < w2; x++ {
				sum := b
				for c := 0; c < c1; c++ {
					for fy := 0; fy < f; fy++ {
						iy := s*y + fy - p
						if iy < 0 || iy >= h1 {
							continue
						}
						for fx := 0; fx < f; fx++ {
							ix := s*x + fx - p
							if ix < 0 || ix >= w1 {
								continue
							}
							sum += in.At(c, iy, ix) * w.At(k, c, fy, fx)
						}
					}
				}
				if relu && sum < 0 {
					sum = 0
				}
				out.Set(sum, k, y, x)
			}
		}
	}
	return out
}

// DepthwiseConv2D applies one FxF filter per channel (§2.1.2).
// in: [C,H,W]; w: [C,F,F]; bias: [C] or nil.
func DepthwiseConv2D(in, w, bias *tensor.Tensor, s, p int, relu bool) *tensor.Tensor {
	c, h1, w1 := in.Shape[0], in.Shape[1], in.Shape[2]
	f := w.Shape[1]
	h2 := (h1-f+2*p)/s + 1
	w2 := (w1-f+2*p)/s + 1
	out := tensor.New(c, h2, w2)
	for ch := 0; ch < c; ch++ {
		var b float32
		if bias != nil {
			b = bias.At(ch)
		}
		for y := 0; y < h2; y++ {
			for x := 0; x < w2; x++ {
				sum := b
				for fy := 0; fy < f; fy++ {
					iy := s*y + fy - p
					if iy < 0 || iy >= h1 {
						continue
					}
					for fx := 0; fx < f; fx++ {
						ix := s*x + fx - p
						if ix < 0 || ix >= w1 {
							continue
						}
						sum += in.At(ch, iy, ix) * w.At(ch, fy, fx)
					}
				}
				if relu && sum < 0 {
					sum = 0
				}
				out.Set(sum, ch, y, x)
			}
		}
	}
	return out
}

// Dense computes y = Wx + bias with optional ReLU. in: [N]; w: [M,N].
func Dense(in, w, bias *tensor.Tensor, relu bool) *tensor.Tensor {
	m, n := w.Shape[0], w.Shape[1]
	// Invariant: see Conv2D — shapes are relay-inferred, never external.
	if in.Len() != n {
		panic(fmt.Sprintf("cpuref: dense expects input %d, got %d", n, in.Len()))
	}
	out := tensor.New(m)
	for j := 0; j < m; j++ {
		var sum float32
		if bias != nil {
			sum = bias.At(j)
		}
		for k := 0; k < n; k++ {
			sum += in.Data[k] * w.At(j, k)
		}
		if relu && sum < 0 {
			sum = 0
		}
		out.Set(sum, j)
	}
	return out
}

// MaxPool2D pools FxF regions with stride s. in: [C,H,W].
func MaxPool2D(in *tensor.Tensor, f, s int) *tensor.Tensor {
	c, h1, w1 := in.Shape[0], in.Shape[1], in.Shape[2]
	h2 := (h1-f)/s + 1
	w2 := (w1-f)/s + 1
	out := tensor.New(c, h2, w2)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h2; y++ {
			for x := 0; x < w2; x++ {
				best := float32(math.Inf(-1))
				for fy := 0; fy < f; fy++ {
					for fx := 0; fx < f; fx++ {
						if v := in.At(ch, s*y+fy, s*x+fx); v > best {
							best = v
						}
					}
				}
				out.Set(best, ch, y, x)
			}
		}
	}
	return out
}

// AvgPool2D averages FxF regions with stride s.
func AvgPool2D(in *tensor.Tensor, f, s int) *tensor.Tensor {
	c, h1, w1 := in.Shape[0], in.Shape[1], in.Shape[2]
	h2 := (h1-f)/s + 1
	w2 := (w1-f)/s + 1
	out := tensor.New(c, h2, w2)
	inv := 1 / float32(f*f)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h2; y++ {
			for x := 0; x < w2; x++ {
				var sum float32
				for fy := 0; fy < f; fy++ {
					for fx := 0; fx < f; fx++ {
						sum += in.At(ch, s*y+fy, s*x+fx)
					}
				}
				out.Set(sum*inv, ch, y, x)
			}
		}
	}
	return out
}

// Softmax normalizes to probabilities with the max-subtraction
// stabilization TVM uses (Eq. 2.4, §2.1.2).
func Softmax(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape...)
	maxv := float32(math.Inf(-1))
	for _, v := range in.Data {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for i, v := range in.Data {
		e := float32(math.Exp(float64(v - maxv)))
		out.Data[i] = e
		sum += e
	}
	for i := range out.Data {
		out.Data[i] /= sum
	}
	return out
}

// ReLU6 applies min(max(0,x),6) elementwise (the thesis's Eq. 2.3, as
// MobileNetV1 defines it).
func ReLU6(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		} else if v > 6 {
			out.Data[i] = 6
		}
	}
	return out
}

// ReLU applies max(0,x) elementwise.
func ReLU(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	_ = in
	return out
}

// Pad2D zero-pads the spatial dims of a [C,H,W] tensor by p on every side.
func Pad2D(in *tensor.Tensor, p int) *tensor.Tensor {
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	out := tensor.New(c, h+2*p, w+2*p)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				out.Set(in.At(ch, y, x), ch, y+p, x+p)
			}
		}
	}
	return out
}

// ConcatChannels concatenates [C,H,W] tensors along the channel axis.
func ConcatChannels(parts ...*tensor.Tensor) *tensor.Tensor {
	h, w := parts[0].Shape[1], parts[0].Shape[2]
	c := 0
	for _, p := range parts {
		// Invariant: relay.Concat defers a construction error on spatial
		// mismatch, so parts reaching here always agree.
		if p.Shape[1] != h || p.Shape[2] != w {
			panic("cpuref: concat spatial mismatch")
		}
		c += p.Shape[0]
	}
	out := tensor.New(c, h, w)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:off+p.Len()], p.Data)
		off += p.Len()
	}
	return out
}

// Add returns a+b elementwise (residual connections).
func Add(a, b *tensor.Tensor) *tensor.Tensor {
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Conv2DParallel is Conv2D with output-channel row panels distributed over
// worker goroutines — the same axis TVM's x86 schedule parallelizes (§6.4.2).
// It is used to validate the threading-efficiency story (LeNet's small C2
// gains nothing; MobileNet's wide layers scale). The panels are contiguous
// and statically assigned, so the result is identical for every worker count.
func Conv2DParallel(in, w, bias *tensor.Tensor, s, p int, relu bool, workers int) *tensor.Tensor {
	// Cap at the CPU count: the GEMM workers are pure compute, so anything
	// beyond NumCPU only adds scheduler churn. Callers already running inside
	// a parallel context (host.RunBatch workers, the fleet's cpuref rung) must
	// pass workers=1 — nesting a fan-out inside a fan-out oversubscribes the
	// machine W-fold (see relay.ExecuteWorkers).
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	if workers < 1 {
		workers = 1
	}
	return Conv2DGEMM(in, w, bias, s, p, relu, workers)
}
