package cpuref

import (
	"fmt"
	"math"
	"sort"
)

// The thesis compares its accelerators against Keras/TensorFlow on a 2×28-core
// Xeon 8280, TVM's LLVM CPU backend swept from 1 to 56 threads, and
// TensorFlow+cuDNN on a GTX 1060 (§6.2, Table 6.3). None of that hardware
// exists in this environment, so the baselines are analytic models calibrated
// to the thesis's measured anchor points (DESIGN.md, substitution table).
//
// The TVM-CPU model is a three-term time decomposition
//
//	t(n) = tPar / n^alpha  +  tSer  +  tax·n
//
// (parallelizable compute with sublinear scaling, serial remainder, and a
// per-thread coordination tax). The per-network parameters reproduce the
// thesis's curves: LeNet peaks at 1 thread and degrades (its channel counts
// are too small to parallelize, §6.4.2); MobileNet scales near-linearly to 16
// threads; the ResNets land between.

// CPUProfile holds the calibrated baseline parameters for one network.
type CPUProfile struct {
	Net   string
	FLOPs float64 // multiply+add operations per forward pass

	// TVM LLVM-CPU model parameters (microseconds).
	TParUS, TSerUS, TaxUS, Alpha float64

	// Anchor measurements from the thesis (frames per second).
	TFCPUFPS    float64 // Keras/TensorFlow, default thread pool
	TFCPUThread int     // threads TF actually used (§6.2 fn. 2)
	GPUFPS      float64 // TensorFlow + cuDNN on the GTX 1060
}

var profiles = map[string]*CPUProfile{
	"lenet5": {
		Net: "lenet5", FLOPs: 389e3,
		TParUS: 100, TSerUS: 326, TaxUS: 18, Alpha: 1.0,
		TFCPUFPS: 1075, TFCPUThread: 4, GPUFPS: 1604,
	},
	"mobilenetv1": {
		Net: "mobilenetv1", FLOPs: 1.11e9,
		TParUS: 63600, TSerUS: 500, TaxUS: 100, Alpha: 0.68,
		TFCPUFPS: 21.6, TFCPUThread: 112, GPUFPS: 43.7,
	},
	"resnet18": {
		Net: "resnet18", FLOPs: 3.66e9,
		TParUS: 171000, TSerUS: 1000, TaxUS: 100, Alpha: 0.664,
		TFCPUFPS: 16.3, TFCPUThread: 112, GPUFPS: 46.5,
	},
	"resnet34": {
		Net: "resnet34", FLOPs: 7.36e9,
		TParUS: 832000, TSerUS: 1000, TaxUS: 100, Alpha: 0.628,
		TFCPUFPS: 10.7, TFCPUThread: 112, GPUFPS: 31.7,
	},
}

// Profile returns the calibrated baseline profile for a network.
func Profile(net string) (*CPUProfile, error) {
	p, ok := profiles[net]
	if !ok {
		return nil, fmt.Errorf("cpuref: no baseline profile for %q (have %v)", net, Nets())
	}
	return p, nil
}

// Nets lists networks with baseline profiles, sorted.
func Nets() []string {
	out := make([]string, 0, len(profiles))
	for k := range profiles {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TVMCPUFPS models TVM's LLVM backend at n threads.
func TVMCPUFPS(net string, threads int) (float64, error) {
	p, err := Profile(net)
	if err != nil {
		return 0, err
	}
	if threads < 1 {
		return 0, fmt.Errorf("cpuref: thread count must be >= 1")
	}
	n := float64(threads)
	us := p.TParUS/math.Pow(n, p.Alpha) + p.TSerUS + p.TaxUS*n
	return 1e6 / us, nil
}

// TFCPUFPS returns the Keras/TensorFlow CPU anchor and the thread count the
// thesis observed TF using.
func TFCPUFPS(net string) (fps float64, threads int, err error) {
	p, err := Profile(net)
	if err != nil {
		return 0, 0, err
	}
	return p.TFCPUFPS, p.TFCPUThread, nil
}

// GPUFPS returns the TensorFlow+cuDNN (GTX 1060) anchor.
func GPUFPS(net string) (float64, error) {
	p, err := Profile(net)
	if err != nil {
		return 0, err
	}
	return p.GPUFPS, nil
}

// GFLOPS converts an FPS figure for a network into billions of float
// operations per second, the thesis's second metric (§6.1.2).
func GFLOPS(net string, fps float64) (float64, error) {
	p, err := Profile(net)
	if err != nil {
		return 0, err
	}
	return fps * p.FLOPs / 1e9, nil
}

// BestTVMThreads sweeps 1..56 threads and returns the fastest configuration,
// as plotted in Figs. 6.4–6.7.
func BestTVMThreads(net string) (threads int, fps float64, err error) {
	for n := 1; n <= 56; n++ {
		f, e := TVMCPUFPS(net, n)
		if e != nil {
			return 0, 0, e
		}
		if f > fps {
			fps, threads = f, n
		}
	}
	return threads, fps, nil
}
