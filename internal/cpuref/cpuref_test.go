package cpuref

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestConv2DFigure21Example(t *testing.T) {
	// Figure 2.1 of the thesis: 5x5 input, two 3x3 filters, S=1, P=0 gives a
	// 2x3x3 output. Verify one hand-computed element with simple data.
	in := tensor.New(1, 5, 5)
	for i := range in.Data {
		in.Data[i] = float32(i % 5)
	}
	w := tensor.New(2, 1, 3, 3)
	w.Fill(1)
	out := Conv2D(in, w, nil, 1, 0, false)
	if out.Shape[0] != 2 || out.Shape[1] != 3 || out.Shape[2] != 3 {
		t.Fatalf("shape = %v", out.Shape)
	}
	// Window at (0,0): columns 0,1,2 over 3 rows with values 0,1,2 -> 9.
	if got := out.At(0, 0, 0); got != 9 {
		t.Fatalf("out[0][0][0] = %v, want 9", got)
	}
	// Both filters identical -> identical channels.
	if tensor.MaxAbsDiff(tensor.FromData(out.Data[:9], 9), tensor.FromData(out.Data[9:], 9)) != 0 {
		t.Fatal("identical filters must give identical channels")
	}
}

func TestConv2DStridePadShapes(t *testing.T) {
	// ResNet conv1 geometry: 7x7/s2/p3 on 224 -> 112 (Table 2.3). Use a
	// reduced filter count to keep the single-core test fast.
	in := tensor.New(3, 224, 224)
	w := tensor.New(4, 3, 7, 7)
	out := Conv2D(in, w, nil, 2, 3, false)
	if out.Shape[0] != 4 || out.Shape[1] != 112 || out.Shape[2] != 112 {
		t.Fatalf("resnet conv1 shape = %v", out.Shape)
	}
}

func TestConv2DBiasAndReLU(t *testing.T) {
	in := tensor.New(1, 3, 3)
	in.Fill(1)
	w := tensor.New(1, 1, 3, 3)
	w.Fill(-1)
	bias := tensor.New(1)
	bias.Set(2, 0)
	noRelu := Conv2D(in, w, bias, 1, 0, false)
	if noRelu.At(0, 0, 0) != -7 {
		t.Fatalf("bias conv = %v, want -7", noRelu.At(0, 0, 0))
	}
	relu := Conv2D(in, w, bias, 1, 0, true)
	if relu.At(0, 0, 0) != 0 {
		t.Fatal("relu must clamp negatives")
	}
}

func TestDepthwiseMatchesGroupedConv(t *testing.T) {
	// Depthwise conv == full conv with block-diagonal weights.
	c, h, w, f := 4, 8, 8, 3
	in := tensor.New(c, h, w)
	in.FillSeq(7)
	dw := tensor.New(c, f, f)
	dw.FillSeq(8)
	full := tensor.New(c, c, f, f)
	for ch := 0; ch < c; ch++ {
		for fy := 0; fy < f; fy++ {
			for fx := 0; fx < f; fx++ {
				full.Set(dw.At(ch, fy, fx), ch, ch, fy, fx)
			}
		}
	}
	got := DepthwiseConv2D(in, dw, nil, 1, 1, false)
	want := Conv2D(in, full, nil, 1, 1, false)
	if !tensor.AllClose(got, want, 1e-5) {
		t.Fatalf("depthwise != block-diagonal conv, maxdiff %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestDenseMatchesManual(t *testing.T) {
	in := tensor.FromData([]float32{1, 2, 3}, 3)
	w := tensor.FromData([]float32{1, 0, 0, 0, 1, 1}, 2, 3)
	b := tensor.FromData([]float32{10, -10}, 2)
	out := Dense(in, w, b, false)
	if out.At(0) != 11 || out.At(1) != -5 {
		t.Fatalf("dense = %v", out.Data)
	}
	if r := Dense(in, w, b, true); r.At(1) != 0 {
		t.Fatal("dense relu failed")
	}
}

func TestPooling(t *testing.T) {
	in := tensor.FromData([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16}, 1, 4, 4)
	mx := MaxPool2D(in, 2, 2)
	if mx.At(0, 0, 0) != 6 || mx.At(0, 1, 1) != 16 {
		t.Fatalf("maxpool = %v", mx.Data)
	}
	av := AvgPool2D(in, 2, 2)
	if av.At(0, 0, 0) != 3.5 || av.At(0, 1, 1) != 13.5 {
		t.Fatalf("avgpool = %v", av.Data)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	in := tensor.FromData([]float32{1, 2, 3, 4, 1000}, 5)
	out := Softmax(in)
	if s := out.Sum(); math.Abs(s-1) > 1e-5 {
		t.Fatalf("softmax sum = %v", s)
	}
	// Stabilized against overflow: the huge logit must not produce NaN/Inf.
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax not numerically stable")
		}
	}
	if out.ArgMax() != 4 {
		t.Fatal("softmax must preserve argmax")
	}
}

func TestPad2D(t *testing.T) {
	in := tensor.New(2, 3, 3)
	in.Fill(5)
	out := Pad2D(in, 2)
	if out.Shape[1] != 7 || out.Shape[2] != 7 {
		t.Fatalf("pad shape = %v", out.Shape)
	}
	if out.At(0, 0, 0) != 0 || out.At(0, 2, 2) != 5 || out.At(1, 6, 6) != 0 {
		t.Fatal("pad values wrong")
	}
	if s := out.Sum(); s != 2*9*5 {
		t.Fatalf("pad must preserve mass: %v", s)
	}
}

func TestAddAndReLU(t *testing.T) {
	a := tensor.FromData([]float32{-1, 2}, 2)
	b := tensor.FromData([]float32{3, -4}, 2)
	s := Add(a, b)
	if s.At(0) != 2 || s.At(1) != -2 {
		t.Fatalf("add = %v", s.Data)
	}
	r := ReLU(s)
	if r.At(0) != 2 || r.At(1) != 0 {
		t.Fatalf("relu = %v", r.Data)
	}
	if a.At(0) != -1 {
		t.Fatal("Add must not mutate inputs")
	}
}

func TestConv2DParallelMatchesSerial(t *testing.T) {
	in := tensor.New(8, 14, 14)
	in.FillSeq(1)
	w := tensor.New(16, 8, 3, 3)
	w.FillSeq(2)
	bias := tensor.New(16)
	bias.FillSeq(3)
	serial := Conv2D(in, w, bias, 2, 1, true)
	for _, workers := range []int{2, 4, 16} {
		par := Conv2DParallel(in, w, bias, 2, 1, true, workers)
		if tensor.MaxAbsDiff(serial, par) != 0 {
			t.Fatalf("parallel(%d) diverges from serial", workers)
		}
	}
}

// Property: convolving with a one-hot filter centered at the origin with
// padding reproduces the input channel.
func TestQuickConvIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		in := tensor.New(2, 6, 6)
		in.FillSeq(seed)
		w := tensor.New(1, 2, 3, 3)
		w.Set(1, 0, 0, 1, 1) // center tap of channel 0
		out := Conv2D(in, w, nil, 1, 1, false)
		want := tensor.FromData(in.Data[:36], 1, 6, 6)
		return tensor.AllClose(out, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is always a probability vector.
func TestQuickSoftmaxSimplex(t *testing.T) {
	f := func(seed uint64) bool {
		in := tensor.New(17)
		in.FillSeq(seed)
		out := Softmax(in)
		var sum float64
		for _, v := range out.Data {
			if v < 0 || v > 1 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// ---- baseline models ----

func TestBaselineAnchors(t *testing.T) {
	// 1-thread TVM anchors from Tables 6.10/6.12/6.15 (within 5%).
	anchors := map[string]float64{"lenet5": 2345, "mobilenetv1": 15.6, "resnet18": 5.8, "resnet34": 1.2}
	for net, want := range anchors {
		got, err := TVMCPUFPS(net, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s TVM-1T = %.1f FPS, thesis anchor %.1f", net, got, want)
		}
	}
}

func TestBaselineCurveShapes(t *testing.T) {
	// LeNet: more threads never help much and eventually hurt (§6.4.1).
	l1, _ := TVMCPUFPS("lenet5", 1)
	l56, _ := TVMCPUFPS("lenet5", 56)
	if l56 >= l1 {
		t.Fatalf("LeNet must degrade with 56 threads: %v vs %v", l56, l1)
	}
	// MobileNet: near-linear to 16 threads (§6.4.2).
	m1, _ := TVMCPUFPS("mobilenetv1", 1)
	m16, _ := TVMCPUFPS("mobilenetv1", 16)
	if m16 < 4*m1 {
		t.Fatalf("MobileNet must scale well to 16T: %v vs %v", m16, m1)
	}
	// ResNet-18 at 56T lands near the thesis's 54.3 FPS.
	r56, _ := TVMCPUFPS("resnet18", 56)
	if math.Abs(r56-54.3)/54.3 > 0.15 {
		t.Fatalf("ResNet-18 TVM-56T = %v, thesis 54.3", r56)
	}
}

func TestBestTVMThreads(t *testing.T) {
	n, fps, err := BestTVMThreads("lenet5")
	if err != nil {
		t.Fatal(err)
	}
	if n > 4 {
		t.Fatalf("LeNet best thread count should be tiny, got %d (%.0f FPS)", n, fps)
	}
	n2, _, _ := BestTVMThreads("mobilenetv1")
	if n2 < 8 {
		t.Fatalf("MobileNet best thread count should be large, got %d", n2)
	}
}

func TestAnchorsTFAndGPU(t *testing.T) {
	fps, threads, err := TFCPUFPS("lenet5")
	if err != nil || fps != 1075 || threads != 4 {
		t.Fatalf("TF LeNet anchor wrong: %v %v %v", fps, threads, err)
	}
	g, err := GPUFPS("resnet34")
	if err != nil || g != 31.7 {
		t.Fatalf("GPU ResNet-34 anchor wrong: %v %v", g, err)
	}
	if _, err := GPUFPS("vgg"); err == nil {
		t.Fatal("unknown net must error")
	}
}

func TestGFLOPSConversion(t *testing.T) {
	// 4917 FPS LeNet ≈ 1.91 GFLOPS (Table 6.9).
	g, err := GFLOPS("lenet5", 4917)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-1.91) > 0.03 {
		t.Fatalf("GFLOPS = %v, want ~1.91", g)
	}
}
