package cpuref

// im2col + cache-blocked GEMM convolution — the host-side lowering TVM uses
// for its CPU conv schedules. The direct 6-deep loop nest in ops.go touches
// the input with stride f*f per output pixel and re-reads the filter for
// every (y,x); lowering to matrix multiply turns the inner product into
// sequential streams over two dense panels, which is where the CPU reference
// (the degradation ladder's last rung and every golden-model check) gets its
// throughput.
//
// Numerical contract: for a given output element the reduction runs in
// ascending k = (c*F + fy)*F + fx order, starting from the bias — exactly the
// order of the direct loops — so the GEMM path is bit-compatible with the
// naive oracle on unpadded convolutions and differs on padded ones only by
// adding exact zeros.

import (
	"runtime"
	"sync"

	"repro/internal/tensor"
)

// gemmKC is the reduction-axis block: a KC x W2H2 panel of the im2col matrix
// stays resident in L1/L2 while a row panel of weights streams over it.
const gemmKC = 240

// gemmParallelMinMACs is Conv2DGEMM's serial cutoff, in multiply-accumulates
// (c2*k*n; one MAC = two FLOPs, so this is ~2 MiMAC ≈ 4 MFLOP). Measured with
// BenchmarkGemmParallelCrossover (m=64, n=196, k swept): at 2^19 MACs a
// 4-worker Gemm is ~1.75x slower than serial (546µs vs 311µs — goroutine
// spawn/join dominates the ~300µs kernel), reaches parity at 2^20–2^21, and
// first wins at 2^22 (3.25ms vs 3.43ms), so the guard keeps layers under 2^21
// serial and lets anything at or above it fan out.
const gemmParallelMinMACs = 1 << 21

// Im2col unfolds a [C1,H1,W1] input into the [C1*F*F, H2*W2] patch matrix of
// a (f,s,p) convolution: row k = (c*F+fy)*F+fx holds input element
// in[c, s*y+fy-p, s*x+fx-p] for each output pixel n = y*W2+x (zero where the
// tap falls outside the input). The result is written into dst, which is
// grown as needed and returned, so callers can reuse one scratch buffer
// across images.
func Im2col(in *tensor.Tensor, f, s, p int, dst []float32) []float32 {
	return Im2colSlice(in.Data, in.Shape[0], in.Shape[1], in.Shape[2], f, s, p, dst)
}

// Im2colSlice is Im2col over a raw [c1*h1*w1] row-major slice, for callers
// (the sim's GEMM lowering) that hold flat buffers rather than tensors.
func Im2colSlice(data []float32, c1, h1, w1, f, s, p int, dst []float32) []float32 {
	h2 := (h1-f+2*p)/s + 1
	w2 := (w1-f+2*p)/s + 1
	n := h2 * w2
	rows := c1 * f * f
	if cap(dst) < rows*n {
		dst = make([]float32, rows*n)
	}
	dst = dst[:rows*n]
	for c := 0; c < c1; c++ {
		plane := data[c*h1*w1 : (c+1)*h1*w1]
		for fy := 0; fy < f; fy++ {
			for fx := 0; fx < f; fx++ {
				row := dst[((c*f+fy)*f+fx)*n : ((c*f+fy)*f+fx+1)*n]
				for y := 0; y < h2; y++ {
					iy := s*y + fy - p
					out := row[y*w2 : (y+1)*w2]
					if iy < 0 || iy >= h1 {
						clear(out)
						continue
					}
					src := plane[iy*w1 : (iy+1)*w1]
					if s == 1 {
						// Stride-1 fast path: the w2 taps are a contiguous
						// window of the input row, save the padded fringe.
						x0 := 0
						for ; x0 < w2 && x0+fx-p < 0; x0++ {
							out[x0] = 0
						}
						x1 := w2
						for ; x1 > x0 && x1-1+fx-p >= w1; x1-- {
							out[x1-1] = 0
						}
						copy(out[x0:x1], src[x0+fx-p:])
						continue
					}
					for x := 0; x < w2; x++ {
						ix := s*x + fx - p
						if ix < 0 || ix >= w1 {
							out[x] = 0
						} else {
							out[x] = src[ix]
						}
					}
				}
			}
		}
	}
	return dst
}

// gemmRows computes rows [m0,m1) of C[M,N] = A[M,K] * B[K,N], with C
// pre-initialized (bias) and accumulated in ascending-k order. The k loop is
// blocked so each B panel is streamed once per row while hot in cache; within
// a row the updates are rank-1 AXPYs over contiguous slices, which the
// compiler keeps in registers.
func gemmRows(a, b, c []float32, k, n, m0, m1 int) {
	for kb := 0; kb < k; kb += gemmKC {
		kEnd := kb + gemmKC
		if kEnd > k {
			kEnd = k
		}
		for m := m0; m < m1; m++ {
			arow := a[m*k : (m+1)*k]
			crow := c[m*n : (m+1)*n]
			for kk := kb; kk < kEnd; kk++ {
				av := arow[kk]
				brow := b[kk*n : (kk+1)*n]
				for j, bv := range brow {
					// The explicit temporary forces the product to round to
					// float32 before the add: the Go spec lets a compiler fuse
					// `crow[j] += av*bv` into an FMA (and does on arm64),
					// which would break bit-identity with the sim oracle's
					// round-each-step accumulation.
					p := av * bv
					crow[j] += p
				}
			}
		}
	}
}

// Gemm computes C += A*B for row-major A[M,K], B[K,N] into C[M,N], splitting
// the M axis into contiguous row panels across worker goroutines. Each output
// element is owned by exactly one worker and accumulated in ascending-k
// order, so the result is deterministic for every worker count.
func Gemm(a, b, c []float32, m, k, n, workers int) {
	if workers <= 1 || m < 2 {
		gemmRows(a, b, c, k, n, 0, m)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		m0 := m * w / workers
		m1 := m * (w + 1) / workers
		if m0 == m1 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			gemmRows(a, b, c, k, n, m0, m1)
		}()
	}
	wg.Wait()
}

// Conv2DGEMM is Conv2D lowered to im2col + blocked GEMM with the given
// worker count (<=0 selects GOMAXPROCS, capped so tiny layers stay serial).
// in: [C1,H1,W1]; w: [C2,C1,F,F] (row-major, so w.Data is already the
// [C2, C1*F*F] weight matrix); bias: [C2] or nil.
func Conv2DGEMM(in, w, bias *tensor.Tensor, s, p int, relu bool, workers int) *tensor.Tensor {
	c1, h1, w1 := in.Shape[0], in.Shape[1], in.Shape[2]
	c2, f := w.Shape[0], w.Shape[2]
	if w.Shape[1] != c1 {
		panic("cpuref: conv weights/input channel mismatch")
	}
	h2 := (h1-f+2*p)/s + 1
	w2 := (w1-f+2*p)/s + 1
	n := h2 * w2
	k := c1 * f * f
	out := tensor.New(c2, h2, w2)
	if bias != nil {
		for m := 0; m < c2; m++ {
			row := out.Data[m*n : (m+1)*n]
			bv := bias.At(m)
			for j := range row {
				row[j] = bv
			}
		}
	}
	patches := Im2col(in, f, s, p, nil)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(c2)*int64(k)*int64(n) < gemmParallelMinMACs {
		workers = 1
	}
	Gemm(w.Data, patches, out.Data, c2, k, n, workers)
	if relu {
		for i, v := range out.Data {
			if v < 0 {
				out.Data[i] = 0
			}
		}
	}
	return out
}
