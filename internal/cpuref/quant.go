package cpuref

// Quantized inference support for the §8.1 future-work projection: symmetric
// per-tensor int8 quantization with int32 accumulation, the arithmetic an
// int8 FPGA deployment would implement (two packed multiplies per DSP in
// 18x18 mode). These functions are the functional counterpart of the
// aoc.Options.Int8 analysis mode.

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// QTensor is a symmetric per-tensor-quantized int8 tensor: real ≈ scale*q.
type QTensor struct {
	Shape []int
	Data  []int8
	Scale float32
}

// Quantize converts a float tensor to int8 with a symmetric scale chosen
// from its max magnitude.
func Quantize(t *tensor.Tensor) *QTensor {
	maxAbs := float32(0)
	for _, v := range t.Data {
		if a := float32(math.Abs(float64(v))); a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	if scale == 0 {
		scale = 1
	}
	q := &QTensor{Shape: append([]int(nil), t.Shape...), Data: make([]int8, len(t.Data)), Scale: scale}
	for i, v := range t.Data {
		r := math.Round(float64(v / scale))
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		q.Data[i] = int8(r)
	}
	return q
}

// Dequantize converts back to float32.
func (q *QTensor) Dequantize() *tensor.Tensor {
	t := tensor.New(q.Shape...)
	for i, v := range q.Data {
		t.Data[i] = float32(v) * q.Scale
	}
	return t
}

// QuantConv2D computes an int8 convolution with int32 accumulation and a
// float bias, returning a dequantized float output (with optional ReLU).
// in: [C1,H1,W1]; w: [C2,C1,F,F].
func QuantConv2D(in, w *QTensor, bias *tensor.Tensor, s, p int, relu bool) (*tensor.Tensor, error) {
	if len(in.Shape) != 3 || len(w.Shape) != 4 {
		return nil, fmt.Errorf("cpuref: quant conv expects [C,H,W] and [K,C,F,F]")
	}
	c1, h1, w1 := in.Shape[0], in.Shape[1], in.Shape[2]
	c2, f := w.Shape[0], w.Shape[2]
	if w.Shape[1] != c1 {
		return nil, fmt.Errorf("cpuref: quant conv channel mismatch")
	}
	h2 := (h1-f+2*p)/s + 1
	w2 := (w1-f+2*p)/s + 1
	out := tensor.New(c2, h2, w2)
	rescale := in.Scale * w.Scale
	idxIn := func(c, y, x int) int { return (c*h1+y)*w1 + x }
	idxW := func(k, c, fy, fx int) int { return ((k*c1+c)*f+fy)*f + fx }
	for k := 0; k < c2; k++ {
		var b float32
		if bias != nil {
			b = bias.At(k)
		}
		for y := 0; y < h2; y++ {
			for x := 0; x < w2; x++ {
				var acc int32
				for c := 0; c < c1; c++ {
					for fy := 0; fy < f; fy++ {
						iy := s*y + fy - p
						if iy < 0 || iy >= h1 {
							continue
						}
						for fx := 0; fx < f; fx++ {
							ix := s*x + fx - p
							if ix < 0 || ix >= w1 {
								continue
							}
							acc += int32(in.Data[idxIn(c, iy, ix)]) * int32(w.Data[idxW(k, c, fy, fx)])
						}
					}
				}
				v := float32(acc)*rescale + b
				if relu && v < 0 {
					v = 0
				}
				out.Set(v, k, y, x)
			}
		}
	}
	return out, nil
}

// QuantDense computes an int8 dense layer (int32 accumulation, float bias).
func QuantDense(in, w *QTensor, bias *tensor.Tensor, relu bool) (*tensor.Tensor, error) {
	if len(in.Shape) != 1 || len(w.Shape) != 2 || w.Shape[1] != in.Shape[0] {
		return nil, fmt.Errorf("cpuref: quant dense shape mismatch")
	}
	m, n := w.Shape[0], w.Shape[1]
	out := tensor.New(m)
	rescale := in.Scale * w.Scale
	for j := 0; j < m; j++ {
		var acc int32
		for k := 0; k < n; k++ {
			acc += int32(in.Data[k]) * int32(w.Data[j*n+k])
		}
		v := float32(acc) * rescale
		if bias != nil {
			v += bias.At(j)
		}
		if relu && v < 0 {
			v = 0
		}
		out.Set(v, j)
	}
	return out, nil
}
