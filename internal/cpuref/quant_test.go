package cpuref

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestQuantizeRoundTrip(t *testing.T) {
	x := tensor.New(64)
	x.FillSeq(3)
	q := Quantize(x)
	back := q.Dequantize()
	// Symmetric int8: worst-case error is half a step.
	if d := tensor.MaxAbsDiff(x, back); d > float64(q.Scale)*0.51 {
		t.Fatalf("round-trip error %v exceeds half a quantization step (%v)", d, q.Scale)
	}
}

func TestQuantizeZeroTensor(t *testing.T) {
	x := tensor.New(8)
	q := Quantize(x)
	for _, v := range q.Data {
		if v != 0 {
			t.Fatal("zero tensor must quantize to zeros")
		}
	}
	if q.Scale <= 0 {
		t.Fatal("scale must stay positive")
	}
}

func TestQuantizeSaturates(t *testing.T) {
	x := tensor.FromData([]float32{-1, 1}, 2)
	q := Quantize(x)
	if q.Data[0] != -127 || q.Data[1] != 127 {
		t.Fatalf("extremes should map near ±127, got %v", q.Data)
	}
}

func TestQuantConv2DApproximatesFloat(t *testing.T) {
	in := tensor.New(4, 10, 10)
	in.FillSeq(5)
	w := tensor.New(6, 4, 3, 3)
	w.FillSeq(6)
	scaleDown(w, 0.2)
	bias := tensor.New(6)
	bias.FillSeq(7)
	scaleDown(bias, 0.1)

	want := Conv2D(in, w, bias, 1, 1, true)
	got, err := QuantConv2D(Quantize(in), Quantize(w), bias, 1, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	// int8 error budget: relative tolerance on a [~-2,2] output range.
	if !tensor.AllClose(got, want, 0.05) {
		t.Fatalf("quantized conv error too large: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestQuantDenseApproximatesFloat(t *testing.T) {
	in := tensor.New(64)
	in.FillSeq(9)
	w := tensor.New(10, 64)
	w.FillSeq(10)
	scaleDown(w, 0.15)
	b := tensor.New(10)
	b.FillSeq(11)
	scaleDown(b, 0.1)
	want := Dense(in, w, b, false)
	got, err := QuantDense(Quantize(in), Quantize(w), b, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, want, 0.05) {
		t.Fatalf("quantized dense error too large: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestQuantShapeErrors(t *testing.T) {
	a := Quantize(tensor.New(4))
	b := Quantize(tensor.New(3, 4))
	if _, err := QuantConv2D(a, b, nil, 1, 0, false); err == nil {
		t.Fatal("bad ranks must error")
	}
	if _, err := QuantDense(a, Quantize(tensor.New(5, 7)), nil, false); err == nil {
		t.Fatal("dense shape mismatch must error")
	}
}

// Property: quantization never increases magnitude beyond the original max.
func TestQuickQuantBounded(t *testing.T) {
	f := func(seed uint64) bool {
		x := tensor.New(33)
		x.FillSeq(seed)
		q := Quantize(x)
		maxAbs := 0.0
		for _, v := range x.Data {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		for _, v := range q.Dequantize().Data {
			if math.Abs(float64(v)) > maxAbs+float64(q.Scale) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func scaleDown(t *tensor.Tensor, s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Quantized LeNet end to end: the int8 chain must classify every digit the
// same way as the float32 reference (the §8.1 deployment's accuracy story).
func TestQuantLeNetClassificationConsistency(t *testing.T) {
	// Build a small LeNet-like float chain directly from ops to avoid an
	// import cycle with internal/nn.
	convW := tensor.New(6, 1, 3, 3)
	convW.FillSeq(100)
	scaleDown(convW, 0.3)
	convB := tensor.New(6)
	convB.FillSeq(101)
	scaleDown(convB, 0.1)
	fcW := tensor.New(10, 6*13*13)
	fcW.FillSeq(102)
	scaleDown(fcW, 0.05)
	fcB := tensor.New(10)
	fcB.FillSeq(103)
	scaleDown(fcB, 0.1)

	mismatches := 0
	for seed := uint64(0); seed < 10; seed++ {
		in := tensor.New(1, 28, 28)
		in.FillSeq(seed)
		for i := range in.Data {
			in.Data[i] = (in.Data[i] + 1) / 2
		}
		fx := MaxPool2D(Conv2D(in, convW, convB, 1, 0, true), 2, 2)
		fref := Softmax(Dense(fx.Reshape(6*13*13), fcW, fcB, false))

		qc, err := QuantConv2D(Quantize(in), Quantize(convW), convB, 1, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		qx := MaxPool2D(qc, 2, 2)
		qd, err := QuantDense(Quantize(qx.Reshape(6*13*13)), Quantize(fcW), fcB, false)
		if err != nil {
			t.Fatal(err)
		}
		qref := Softmax(qd)
		if fref.ArgMax() != qref.ArgMax() {
			mismatches++
		}
	}
	// int8 may flip genuinely borderline inputs; on these synthetic cases it
	// should almost never disagree.
	if mismatches > 1 {
		t.Fatalf("quantized chain flips %d/10 classifications", mismatches)
	}
}
