package cpuref

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// convCase enumerates the conv shapes the example networks actually lower
// (LeNet 5x5s1, MobileNet 1x1s1/3x3s2, ResNet 7x7s2/3x3s1) plus padded and
// degenerate corners.
type convCase struct {
	c1, h, w, c2, f, s, p int
	bias, relu            bool
}

func convCases() []convCase {
	return []convCase{
		{1, 28, 28, 6, 5, 1, 0, true, true},    // LeNet conv1
		{6, 12, 12, 16, 5, 1, 0, true, true},   // LeNet conv2
		{3, 32, 32, 8, 3, 2, 0, true, false},   // strided
		{3, 16, 16, 4, 3, 1, 1, true, true},    // padded 3x3
		{8, 14, 14, 16, 1, 1, 0, false, false}, // pointwise, no bias
		{4, 9, 9, 5, 7, 2, 3, true, false},     // large filter, pad+stride
		{2, 7, 7, 3, 7, 1, 0, false, true},     // output 1x1
		{16, 30, 30, 32, 3, 1, 0, true, true},  // wide enough to parallelize
	}
}

func randConv(tc convCase, seed uint64) (in, w, bias *tensor.Tensor) {
	in = tensor.New(tc.c1, tc.h, tc.w)
	in.FillSeq(seed)
	w = tensor.New(tc.c2, tc.c1, tc.f, tc.f)
	w.FillSeq(seed + 1)
	if tc.bias {
		bias = tensor.New(tc.c2)
		bias.FillSeq(seed + 2)
	}
	return
}

// TestConv2DGEMMMatchesNaive checks the GEMM lowering against the direct
// loop-nest oracle, bit-exactly on unpadded cases and to float tolerance on
// padded ones (the im2col zeros add exact +0.0 terms the naive loop skips).
func TestConv2DGEMMMatchesNaive(t *testing.T) {
	for i, tc := range convCases() {
		in, w, bias := randConv(tc, uint64(100+i))
		want := conv2DNaive(in, w, bias, tc.s, tc.p, tc.relu)
		for _, workers := range []int{1, 2, 5} {
			got := Conv2DGEMM(in, w, bias, tc.s, tc.p, tc.relu, workers)
			if tc.p == 0 {
				for j := range want.Data {
					if got.Data[j] != want.Data[j] {
						t.Fatalf("case %d workers %d: elem %d: gemm %v != naive %v (bit-exact contract)",
							i, workers, j, got.Data[j], want.Data[j])
					}
				}
			} else if d := tensor.MaxAbsDiff(got, want); d > 1e-5 {
				t.Fatalf("case %d workers %d: max |diff| = %v", i, workers, d)
			}
		}
	}
}

// TestConv2DGEMMDeterministicAcrossWorkers asserts the static row-panel split
// yields bit-identical output for every worker count.
func TestConv2DGEMMDeterministicAcrossWorkers(t *testing.T) {
	tc := convCase{16, 30, 30, 32, 3, 1, 1, true, true}
	in, w, bias := randConv(tc, 42)
	base := Conv2DGEMM(in, w, bias, tc.s, tc.p, tc.relu, 1)
	for _, workers := range []int{2, 3, 8, 64} {
		got := Conv2DGEMM(in, w, bias, tc.s, tc.p, tc.relu, workers)
		for j := range base.Data {
			if got.Data[j] != base.Data[j] {
				t.Fatalf("workers=%d: elem %d differs: %v vs %v", workers, j, got.Data[j], base.Data[j])
			}
		}
	}
}

// TestIm2colShape spot-checks the patch matrix against direct indexing.
func TestIm2colShape(t *testing.T) {
	tc := convCase{c1: 2, h: 5, w: 5, f: 3, s: 1, p: 1}
	in := tensor.New(tc.c1, tc.h, tc.w)
	in.FillSeq(7)
	h2 := (tc.h-tc.f+2*tc.p)/tc.s + 1
	w2 := (tc.w-tc.f+2*tc.p)/tc.s + 1
	m := Im2col(in, tc.f, tc.s, tc.p, nil)
	if len(m) != tc.c1*tc.f*tc.f*h2*w2 {
		t.Fatalf("im2col size %d", len(m))
	}
	for c := 0; c < tc.c1; c++ {
		for fy := 0; fy < tc.f; fy++ {
			for fx := 0; fx < tc.f; fx++ {
				for y := 0; y < h2; y++ {
					for x := 0; x < w2; x++ {
						iy, ix := tc.s*y+fy-tc.p, tc.s*x+fx-tc.p
						want := float32(0)
						if iy >= 0 && iy < tc.h && ix >= 0 && ix < tc.w {
							want = in.At(c, iy, ix)
						}
						got := m[((c*tc.f+fy)*tc.f+fx)*h2*w2+y*w2+x]
						if got != want {
							t.Fatalf("patch (%d,%d,%d) pixel (%d,%d): got %v want %v", c, fy, fx, y, x, got, want)
						}
					}
				}
			}
		}
	}
}

// TestIm2colReusesScratch asserts the dst-threading contract.
func TestIm2colReusesScratch(t *testing.T) {
	in := tensor.New(3, 8, 8)
	in.FillSeq(3)
	scratch := Im2col(in, 3, 1, 0, nil)
	again := Im2col(in, 3, 1, 0, scratch)
	if &again[0] != &scratch[0] {
		t.Fatal("Im2col allocated despite sufficient scratch")
	}
}

func BenchmarkConvGEMMvsNaive(b *testing.B) {
	tc := convCase{16, 30, 30, 32, 3, 1, 0, true, true}
	in, w, bias := randConv(tc, 1)
	for _, mode := range []string{"naive", "gemm1", "gemmN"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				switch mode {
				case "naive":
					conv2DNaive(in, w, bias, tc.s, tc.p, tc.relu)
				case "gemm1":
					Conv2DGEMM(in, w, bias, tc.s, tc.p, tc.relu, 1)
				case "gemmN":
					Conv2DGEMM(in, w, bias, tc.s, tc.p, tc.relu, 0)
				}
			}
		})
	}
}

// BenchmarkGemmParallelCrossover locates the problem size where a multi-worker
// Gemm first beats serial — the measurement behind gemmParallelMinMACs. Shapes
// mirror a folded conv layer (m output channels, n = 14x14 output pixels) with
// the reduction depth k swept so the MAC count crosses the cutoff from below
// and above.
func BenchmarkGemmParallelCrossover(b *testing.B) {
	const m, n = 64, 196
	for _, macExp := range []int{18, 19, 20, 21, 22, 23} {
		k := (1 << macExp) / (m * n)
		if k < 1 {
			k = 1
		}
		a := make([]float32, m*k)
		bb := make([]float32, k*n)
		c := make([]float32, m*n)
		for i := range a {
			a[i] = float32(i%13)*0.5 - 3
		}
		for i := range bb {
			bb[i] = float32(i%7)*0.25 - 1
		}
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("macs=2^%d/workers=%d", macExp, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Gemm(a, bb, c, m, k, n, workers)
				}
			})
		}
	}
}

// BenchmarkNestedFanout measures the oversubscription cost that motivated
// capping GEMM workers in already-parallel contexts: W concurrent goroutines
// (a RunBatch worker pool) each running a conv, either fanning every call out
// to 4 workers ("free", the pre-fix behavior — pool x 4 goroutines contending
// for the CPUs) or pinning each call serial ("pinned"), which is what
// relay.Execute and the sim GEMM tier now do.
func BenchmarkNestedFanout(b *testing.B) {
	tc := convCase{64, 16, 16, 64, 3, 1, 0, true, true}
	const pool = 4
	ins := make([]*tensor.Tensor, pool)
	ws := make([]*tensor.Tensor, pool)
	bs := make([]*tensor.Tensor, pool)
	for i := range ins {
		ins[i], ws[i], bs[i] = randConv(tc, uint64(i))
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"free", 4}, {"pinned", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for wkr := 0; wkr < pool; wkr++ {
					wg.Add(1)
					go func(wkr int) {
						defer wg.Done()
						Conv2DGEMM(ins[wkr], ws[wkr], bs[wkr], tc.s, tc.p, tc.relu, mode.workers)
					}(wkr)
				}
				wg.Wait()
			}
		})
	}
}

// im2colGather is the obvious per-element gather — the oracle for the
// stride-1 fast path's fringe arithmetic.
func im2colGather(data []float32, c1, h1, w1, f, s, p int) []float32 {
	h2 := (h1-f+2*p)/s + 1
	w2 := (w1-f+2*p)/s + 1
	out := make([]float32, c1*f*f*h2*w2)
	for c := 0; c < c1; c++ {
		for fy := 0; fy < f; fy++ {
			for fx := 0; fx < f; fx++ {
				for y := 0; y < h2; y++ {
					for x := 0; x < w2; x++ {
						iy, ix := s*y+fy-p, s*x+fx-p
						var v float32
						if iy >= 0 && iy < h1 && ix >= 0 && ix < w1 {
							v = data[(c*h1+iy)*w1+ix]
						}
						out[(((c*f+fy)*f+fx)*h2+y)*w2+x] = v
					}
				}
			}
		}
	}
	return out
}

// TestIm2colFringesMatchGather drives the stride-1 fast path through its
// fringe cases — taps hanging off both edges (p > 0), a filter nearly as wide
// as the input, the degenerate single-column output, and the s > 1 fallback —
// and diffs every element against the naive gather.
func TestIm2colFringesMatchGather(t *testing.T) {
	cases := []struct {
		name                string
		c1, h1, w1, f, s, p int
	}{
		{"pad-both-edges", 2, 7, 7, 3, 1, 2},
		{"filter-near-width", 1, 6, 6, 5, 1, 2},
		{"filter-equals-width", 1, 5, 5, 5, 1, 0},
		{"pad-exceeds-filter-reach", 1, 4, 4, 3, 1, 3},
		{"strided-fallback", 2, 9, 9, 3, 2, 1},
		{"strided-padded", 1, 8, 8, 5, 3, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := make([]float32, tc.c1*tc.h1*tc.w1)
			for i := range data {
				data[i] = float32(i%19)*0.5 - 4
			}
			got := Im2colSlice(data, tc.c1, tc.h1, tc.w1, tc.f, tc.s, tc.p, nil)
			want := im2colGather(data, tc.c1, tc.h1, tc.w1, tc.f, tc.s, tc.p)
			if len(got) != len(want) {
				t.Fatalf("length: got %d want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("patch[%d]: got %v want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestGemmDegenerateWorkers pins the worker-clamp edges: more workers than
// rows, and a single-row matrix, must both produce the serial result exactly.
func TestGemmDegenerateWorkers(t *testing.T) {
	for _, tc := range []struct{ m, k, n, workers int }{
		{3, 17, 9, 8}, // workers > m: clamp to one row per worker
		{1, 17, 9, 4}, // m == 1: serial short-circuit
		{2, 1, 1, 16}, // tiny everything
	} {
		a := make([]float32, tc.m*tc.k)
		b := make([]float32, tc.k*tc.n)
		for i := range a {
			a[i] = float32(i%11)*0.3 - 1.5
		}
		for i := range b {
			b[i] = float32(i%7)*0.25 - 0.75
		}
		want := make([]float32, tc.m*tc.n)
		got := make([]float32, tc.m*tc.n)
		for i := range want {
			want[i] = float32(i % 5)
			got[i] = want[i]
		}
		Gemm(a, b, want, tc.m, tc.k, tc.n, 1)
		Gemm(a, b, got, tc.m, tc.k, tc.n, tc.workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("m=%d k=%d n=%d workers=%d: c[%d] got %v want %v",
					tc.m, tc.k, tc.n, tc.workers, i, got[i], want[i])
			}
		}
	}
}
