package cpuref

import (
	"testing"

	"repro/internal/tensor"
)

// convCase enumerates the conv shapes the example networks actually lower
// (LeNet 5x5s1, MobileNet 1x1s1/3x3s2, ResNet 7x7s2/3x3s1) plus padded and
// degenerate corners.
type convCase struct {
	c1, h, w, c2, f, s, p int
	bias, relu            bool
}

func convCases() []convCase {
	return []convCase{
		{1, 28, 28, 6, 5, 1, 0, true, true},    // LeNet conv1
		{6, 12, 12, 16, 5, 1, 0, true, true},   // LeNet conv2
		{3, 32, 32, 8, 3, 2, 0, true, false},   // strided
		{3, 16, 16, 4, 3, 1, 1, true, true},    // padded 3x3
		{8, 14, 14, 16, 1, 1, 0, false, false}, // pointwise, no bias
		{4, 9, 9, 5, 7, 2, 3, true, false},     // large filter, pad+stride
		{2, 7, 7, 3, 7, 1, 0, false, true},     // output 1x1
		{16, 30, 30, 32, 3, 1, 0, true, true},  // wide enough to parallelize
	}
}

func randConv(tc convCase, seed uint64) (in, w, bias *tensor.Tensor) {
	in = tensor.New(tc.c1, tc.h, tc.w)
	in.FillSeq(seed)
	w = tensor.New(tc.c2, tc.c1, tc.f, tc.f)
	w.FillSeq(seed + 1)
	if tc.bias {
		bias = tensor.New(tc.c2)
		bias.FillSeq(seed + 2)
	}
	return
}

// TestConv2DGEMMMatchesNaive checks the GEMM lowering against the direct
// loop-nest oracle, bit-exactly on unpadded cases and to float tolerance on
// padded ones (the im2col zeros add exact +0.0 terms the naive loop skips).
func TestConv2DGEMMMatchesNaive(t *testing.T) {
	for i, tc := range convCases() {
		in, w, bias := randConv(tc, uint64(100+i))
		want := conv2DNaive(in, w, bias, tc.s, tc.p, tc.relu)
		for _, workers := range []int{1, 2, 5} {
			got := Conv2DGEMM(in, w, bias, tc.s, tc.p, tc.relu, workers)
			if tc.p == 0 {
				for j := range want.Data {
					if got.Data[j] != want.Data[j] {
						t.Fatalf("case %d workers %d: elem %d: gemm %v != naive %v (bit-exact contract)",
							i, workers, j, got.Data[j], want.Data[j])
					}
				}
			} else if d := tensor.MaxAbsDiff(got, want); d > 1e-5 {
				t.Fatalf("case %d workers %d: max |diff| = %v", i, workers, d)
			}
		}
	}
}

// TestConv2DGEMMDeterministicAcrossWorkers asserts the static row-panel split
// yields bit-identical output for every worker count.
func TestConv2DGEMMDeterministicAcrossWorkers(t *testing.T) {
	tc := convCase{16, 30, 30, 32, 3, 1, 1, true, true}
	in, w, bias := randConv(tc, 42)
	base := Conv2DGEMM(in, w, bias, tc.s, tc.p, tc.relu, 1)
	for _, workers := range []int{2, 3, 8, 64} {
		got := Conv2DGEMM(in, w, bias, tc.s, tc.p, tc.relu, workers)
		for j := range base.Data {
			if got.Data[j] != base.Data[j] {
				t.Fatalf("workers=%d: elem %d differs: %v vs %v", workers, j, got.Data[j], base.Data[j])
			}
		}
	}
}

// TestIm2colShape spot-checks the patch matrix against direct indexing.
func TestIm2colShape(t *testing.T) {
	tc := convCase{c1: 2, h: 5, w: 5, f: 3, s: 1, p: 1}
	in := tensor.New(tc.c1, tc.h, tc.w)
	in.FillSeq(7)
	h2 := (tc.h-tc.f+2*tc.p)/tc.s + 1
	w2 := (tc.w-tc.f+2*tc.p)/tc.s + 1
	m := Im2col(in, tc.f, tc.s, tc.p, nil)
	if len(m) != tc.c1*tc.f*tc.f*h2*w2 {
		t.Fatalf("im2col size %d", len(m))
	}
	for c := 0; c < tc.c1; c++ {
		for fy := 0; fy < tc.f; fy++ {
			for fx := 0; fx < tc.f; fx++ {
				for y := 0; y < h2; y++ {
					for x := 0; x < w2; x++ {
						iy, ix := tc.s*y+fy-tc.p, tc.s*x+fx-tc.p
						want := float32(0)
						if iy >= 0 && iy < tc.h && ix >= 0 && ix < tc.w {
							want = in.At(c, iy, ix)
						}
						got := m[((c*tc.f+fy)*tc.f+fx)*h2*w2+y*w2+x]
						if got != want {
							t.Fatalf("patch (%d,%d,%d) pixel (%d,%d): got %v want %v", c, fy, fx, y, x, got, want)
						}
					}
				}
			}
		}
	}
}

// TestIm2colReusesScratch asserts the dst-threading contract.
func TestIm2colReusesScratch(t *testing.T) {
	in := tensor.New(3, 8, 8)
	in.FillSeq(3)
	scratch := Im2col(in, 3, 1, 0, nil)
	again := Im2col(in, 3, 1, 0, scratch)
	if &again[0] != &scratch[0] {
		t.Fatal("Im2col allocated despite sufficient scratch")
	}
}

func BenchmarkConvGEMMvsNaive(b *testing.B) {
	tc := convCase{16, 30, 30, 32, 3, 1, 0, true, true}
	in, w, bias := randConv(tc, 1)
	for _, mode := range []string{"naive", "gemm1", "gemmN"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				switch mode {
				case "naive":
					conv2DNaive(in, w, bias, tc.s, tc.p, tc.relu)
				case "gemm1":
					Conv2DGEMM(in, w, bias, tc.s, tc.p, tc.relu, 1)
				case "gemmN":
					Conv2DGEMM(in, w, bias, tc.s, tc.p, tc.relu, 0)
				}
			}
		})
	}
}
