package aoc

import (
	"strings"
	"testing"

	"repro/internal/fpga"
	"repro/internal/ir"
)

func TestOptimizationReportShowsSerializationAndII(t *testing.T) {
	k := convNaive(8, 11, 11, 6, 3)
	m, err := Analyze(k, fpga.S10MX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	rep := m.OptimizationReport()
	if !strings.Contains(rep, "serialized by a global-memory dependency") {
		t.Fatalf("naive conv report must show serialization:\n%s", rep)
	}
	if !strings.Contains(rep, "II=5") {
		t.Fatalf("naive conv report must show the II=5 accumulator:\n%s", rep)
	}
}

func TestOptimizationReportShowsUnrolled(t *testing.T) {
	k, _ := optimizedDense(16, 64, 8)
	m, err := Analyze(k, fpga.S10MX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	rep := m.OptimizationReport()
	if !strings.Contains(rep, "FULLY UNROLLED") {
		t.Fatalf("report must flag the unrolled reduction:\n%s", rep)
	}
	if !strings.Contains(rep, "II=1") {
		t.Fatalf("optimized dense must pipeline at II=1:\n%s", rep)
	}
}

func TestAreaReportLSUDetails(t *testing.T) {
	k, _ := optimizedDense(120, 400, 8)
	m, err := Analyze(k, fpga.S10MX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	rep := m.AreaReport()
	for _, want := range []string{"burst-coalesced", "256-bit", "cached", "pipelined (on-chip)"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("area report missing %q:\n%s", want, rep)
		}
	}
}

func TestDesignReportVerdicts(t *testing.T) {
	k, _ := optimizedDense(120, 400, 8)
	d, err := Compile("rep", []*ir.Kernel{k}, fpga.A10, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	rep := d.DesignReport()
	for _, want := range []string{"static partition", "kernel system", "fmax:", "FIT: ok"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("design report missing %q:\n%s", want, rep)
		}
	}
	// A failing design reports the failure.
	var ks []*ir.Kernel
	for i := 0; i < 30; i++ {
		kk := convNaive(16, 28, 28, 64, 3)
		kk.Name = kk.Name + string(rune('a'+i%26)) + string(rune('a'+i/26))
		ks = append(ks, kk)
	}
	d2, err := Compile("big", ks, fpga.A10, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Synthesizable() {
		t.Skip("unexpectedly fits")
	}
	if rep := d2.DesignReport(); !strings.Contains(rep, "FAILED") {
		t.Fatalf("failing design must report FAILED:\n%s", rep)
	}
}

// topiConvParamForTest builds the ResNet 3x3 s1 kernel (7/8/3/3) without
// importing topi (cycle): a hand-rolled equivalent of the generated IR.
func topiConvParamForTest(t *testing.T) (*ir.Kernel, error) {
	t.Helper()
	c1 := ir.Param("p_c1")
	h := ir.Param("p_h")
	w := ir.Param("p_w")
	c2 := ir.Param("p_c2")
	cs := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	h2 := ir.AddE(ir.DivE(ir.SubE(h, cs(3)), cs(1)), cs(1))
	w2 := ir.AddE(ir.DivE(ir.SubE(w, cs(3)), cs(1)), cs(1))
	in := ir.NewBufferE("p_in", ir.Global, c1, h, w)
	wt := ir.NewBufferE("p_wt", ir.Global, c2, c1, cs(3), cs(3))
	out := ir.NewBufferE("p_out", ir.Global, c2, h2, w2)
	tmp := ir.NewBuffer("p_tmp", ir.Private, 1, 7)
	ax1o, ax1i := ir.V("ax1o"), ir.V("ax1i")
	yy, xxo, xxi := ir.V("yy"), ir.V("xxo"), ir.V("xxi")
	rco, rci := ir.V("rco"), ir.V("rci")
	ry, rx := ir.V("ry"), ir.V("rx")
	oc := ir.AddE(ax1o, ax1i)
	ic := ir.AddE(ir.MulE(rco, cs(8)), rci)
	ox := ir.AddE(ir.MulE(xxo, cs(7)), xxi)
	tIdx := []ir.Expr{ax1i, xxi}
	macc := &ir.Store{Buf: tmp, Index: tIdx,
		Value: ir.AddE(&ir.Load{Buf: tmp, Index: tIdx},
			ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{ic, ir.AddE(yy, ry), ir.AddE(ox, rx)}},
				&ir.Load{Buf: wt, Index: []ir.Expr{oc, ic, ry, rx}}))}
	red := ir.Stmt(macc)
	red = &ir.For{Var: rx, Extent: cs(3), Unroll: -1, Body: red}
	red = &ir.For{Var: ry, Extent: cs(3), Unroll: -1, Body: red}
	red = &ir.For{Var: xxi, Extent: cs(7), Unroll: -1, Body: red}
	red = &ir.For{Var: ax1i, Extent: cs(1), Unroll: -1, Body: red}
	red = &ir.For{Var: rci, Extent: cs(8), Unroll: -1, Body: red}
	initL := &ir.For{Var: ax1i, Extent: cs(1), Unroll: -1,
		Body: &ir.For{Var: xxi, Extent: cs(7), Unroll: -1,
			Body: &ir.Store{Buf: tmp, Index: tIdx, Value: ir.CFloat(0)}}}
	write := ir.Stmt(&ir.Store{Buf: out, Index: []ir.Expr{oc, yy, ox},
		Value: ir.MaxE(&ir.Load{Buf: tmp, Index: tIdx}, ir.CFloat(0))})
	write = &ir.For{Var: xxi, Extent: cs(7), Unroll: -1, Body: write}
	write = &ir.For{Var: ax1i, Extent: cs(1), Unroll: -1, Body: write}
	body := ir.LoopE(ax1o, c2, ir.LoopE(yy, h2, ir.LoopE(xxo, ir.DivE(w2, cs(7)),
		ir.Seq(initL, ir.LoopE(rco, ir.DivE(c1, cs(8)), red), write))))
	k := &ir.Kernel{Name: "p33", Args: []*ir.Buffer{in, wt, out},
		ScalarArgs: []*ir.Var{c1, h, w, c2}, Body: ir.Seq(&ir.Alloc{Buf: tmp}, body)}
	return k, k.Validate()
}
