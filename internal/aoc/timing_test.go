package aoc

import (
	"testing"

	"repro/internal/fpga"
	"repro/internal/ir"
)

// These tests pin the cycle-model semantics: perfect-nest flattening, the
// init/reduce/write block pipelining, serialization costs and the fill clamp.
// Every table in the evaluation rests on these rules.

func analyzeBody(t *testing.T, name string, args []*ir.Buffer, body ir.Stmt) *KernelModel {
	t.Helper()
	k := &ir.Kernel{Name: name, Args: args, Body: body}
	m, err := Analyze(k, fpga.S10MX, DefaultOptions) // no auto-unroll surprises
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCyclesPerfectNestFlattens(t *testing.T) {
	// for i in 100 { for j in 50 { out[i][j] = in[i][j] } } — one pipeline,
	// 5000 iterations at II=1 plus one fill.
	in := ir.NewBuffer("in", ir.Global, 100, 50)
	out := ir.NewBuffer("out", ir.Global, 100, 50)
	i, j := ir.V("i"), ir.V("j")
	body := ir.Loop(i, 100, ir.Loop(j, 50,
		&ir.Store{Buf: out, Index: []ir.Expr{i, j}, Value: &ir.Load{Buf: in, Index: []ir.Expr{i, j}}}))
	m := analyzeBody(t, "copy2d", []*ir.Buffer{in, out}, body)
	c := m.Cycles(nil)
	if c < 5000 || c > 5100 {
		t.Fatalf("perfect nest cycles = %d, want ~5000 + fill", c)
	}
}

func TestCyclesInitReduceWriteBlockPipelines(t *testing.T) {
	// The optimized-conv shape: outer loop whose body is {init leaf, inner
	// reduction loop, write leaf}. The outer loop must pipeline with
	// II = steady-state body cycles (no per-iteration fill).
	in := ir.NewBuffer("in", ir.Global, 64, 16)
	out := ir.NewBuffer("out", ir.Global, 64)
	acc := ir.NewBuffer("acc", ir.Private, 1)
	i, k := ir.V("i"), ir.V("k")
	z := []ir.Expr{ir.CInt(0)}
	body := ir.Seq(&ir.Alloc{Buf: acc},
		ir.Loop(i, 64, ir.Seq(
			&ir.Store{Buf: acc, Index: z, Value: ir.CFloat(0)},
			ir.Loop(k, 16, &ir.Store{Buf: acc, Index: z,
				Value: ir.AddE(&ir.Load{Buf: acc, Index: z}, &ir.Load{Buf: in, Index: []ir.Expr{i, k}})}),
			&ir.Store{Buf: out, Index: []ir.Expr{i}, Value: &ir.Load{Buf: acc, Index: z}},
		)))
	m := analyzeBody(t, "rowsum", []*ir.Buffer{in, out}, body)
	c := m.Cycles(nil)
	// Steady state: 64 × (2 leaves + 16×II1) = 64×18 = 1152 plus one fill —
	// far below the re-fill-per-row cost (64×(42+16+2) ≈ 3840).
	if c < 1152 || c > 1152+50 {
		t.Fatalf("block-body pipeline cycles = %d, want ~1152 + fill", c)
	}
}

func TestCyclesGlobalAccumulatorII5(t *testing.T) {
	in := ir.NewBuffer("in", ir.Global, 1000)
	acc := ir.NewBuffer("acc", ir.Global, 1)
	i := ir.V("i")
	z := []ir.Expr{ir.CInt(0)}
	body := ir.Loop(i, 1000, &ir.Store{Buf: acc, Index: z,
		Value: ir.AddE(&ir.Load{Buf: acc, Index: z}, &ir.Load{Buf: in, Index: []ir.Expr{i}})})
	m := analyzeBody(t, "gsum", []*ir.Buffer{in, acc}, body)
	c := m.Cycles(nil)
	if c < 5000 || c > 5100 {
		t.Fatalf("global accumulation cycles = %d, want ~1000x5 + fill", c)
	}
}

func TestCyclesFillClampOnShortLoops(t *testing.T) {
	// A 4-iteration pipeline cannot have a 42-cycle fill.
	in := ir.NewBuffer("in", ir.Global, 4)
	out := ir.NewBuffer("out", ir.Global, 4)
	i := ir.V("i")
	body := ir.Loop(i, 4, &ir.Store{Buf: out, Index: []ir.Expr{i}, Value: &ir.Load{Buf: in, Index: []ir.Expr{i}}})
	m := analyzeBody(t, "tiny", []*ir.Buffer{in, out}, body)
	if c := m.Cycles(nil); c > 4+8+4 {
		t.Fatalf("short loop cycles = %d, fill must be clamped", c)
	}
}

func TestCyclesSerialOuterCostsBodyPerIteration(t *testing.T) {
	// Naive-conv shape: outer loop serialized by a cross-statement global
	// RAW. Cycles = trips × (body + overhead).
	scratch := ir.NewBuffer("s", ir.Global, 16)
	out := ir.NewBuffer("o", ir.Global, 8, 16)
	i, j, j2 := ir.V("i"), ir.V("j"), ir.V("j2")
	body := ir.Loop(i, 8, ir.Seq(
		ir.Loop(j, 16, &ir.Store{Buf: scratch, Index: []ir.Expr{j}, Value: ir.CFloat(1)}),
		ir.Loop(j2, 16, &ir.Store{Buf: out, Index: []ir.Expr{i, j2},
			Value: &ir.Load{Buf: scratch, Index: []ir.Expr{j2}}}),
	))
	m := analyzeBody(t, "serial", []*ir.Buffer{scratch, out}, body)
	c := m.Cycles(nil)
	// Body ≈ 2 loops of 16 iters + 2 fills ≈ 80; serialized ×8 with overhead.
	min := int64(8 * (32 + 2))
	max := int64(8 * (32 + 2*24 + serialLoopOverhead + 10))
	if c < min || c > max {
		t.Fatalf("serial outer cycles = %d, want in [%d,%d]", c, min, max)
	}
}

func TestCyclesUnrolledLoopIsFree(t *testing.T) {
	in := ir.NewBuffer("in", ir.Global, 64, 8)
	out := ir.NewBuffer("out", ir.Global, 64)
	acc := ir.NewBuffer("acc", ir.Private, 1)
	i, u := ir.V("i"), ir.V("u")
	z := []ir.Expr{ir.CInt(0)}
	mk := func(unroll int) int64 {
		inner := &ir.For{Var: u, Extent: ir.CInt(8), Unroll: unroll,
			Body: &ir.Store{Buf: acc, Index: z,
				Value: ir.AddE(&ir.Load{Buf: acc, Index: z}, &ir.Load{Buf: in, Index: []ir.Expr{i, u}})}}
		body := ir.Seq(&ir.Alloc{Buf: acc},
			ir.Loop(i, 64, ir.Seq(
				&ir.Store{Buf: acc, Index: z, Value: ir.CFloat(0)},
				inner,
				&ir.Store{Buf: out, Index: []ir.Expr{i}, Value: &ir.Load{Buf: acc, Index: z}})))
		return analyzeBody(t, "unr", []*ir.Buffer{in, out}, body).Cycles(nil)
	}
	rolled := mk(0)
	unrolled := mk(-1)
	// Rolled: 64 x (2 leaves + 8 iters) = 640; unrolled: the reduction is
	// replicated hardware, 64 x 3 = 192 (both plus one fill).
	if rolled < 640 || rolled > 700 {
		t.Fatalf("rolled cycles = %d, want ~640 + fill", rolled)
	}
	if unrolled < 192 || unrolled > 250 {
		t.Fatalf("unrolled cycles = %d, want ~192 + fill", unrolled)
	}
	if unrolled*2 > rolled {
		t.Fatalf("full unroll should clearly win: rolled=%d unrolled=%d", rolled, unrolled)
	}
}

func TestTimeUSBandwidthFloorScalesWithBoard(t *testing.T) {
	// The same kernel is memory-bound on the S10MX (12.8 GB/s) long before
	// the S10SX (76.8 GB/s).
	n := 1 << 22
	in := ir.NewBuffer("in", ir.Global, n)
	out := ir.NewBuffer("out", ir.Global, n)
	i := ir.V("i")
	u := ir.V("u")
	body := ir.LoopE(i, ir.CInt(int64(n/16)),
		&ir.For{Var: u, Extent: ir.CInt(16), Unroll: -1,
			Body: &ir.Store{Buf: out, Index: []ir.Expr{ir.AddE(ir.MulE(i, ir.CInt(16)), u)},
				Value: &ir.Load{Buf: in, Index: []ir.Expr{ir.AddE(ir.MulE(i, ir.CInt(16)), u)}}}})
	k := &ir.Kernel{Name: "stream", Args: []*ir.Buffer{in, out}, Body: body}
	mMX, err := Analyze(k, fpga.S10MX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	mSX, err := Analyze(k, fpga.S10SX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	tMX := mMX.TimeUS(nil, 300, fpga.S10MX)
	tSX := mSX.TimeUS(nil, 300, fpga.S10SX)
	if tMX < 3*tSX {
		t.Fatalf("S10MX (12.8GB/s) must be much slower than S10SX (76.8GB/s): %v vs %v", tMX, tSX)
	}
}

func TestSymbolicCyclesScaleWithBindings(t *testing.T) {
	n := ir.Param("n")
	in := ir.NewBufferE("in", ir.Global, n)
	out := ir.NewBufferE("out", ir.Global, n)
	i := ir.V("i")
	k := &ir.Kernel{Name: "symc", Args: []*ir.Buffer{in, out}, ScalarArgs: []*ir.Var{n},
		Body: ir.LoopE(i, n, &ir.Store{Buf: out, Index: []ir.Expr{i}, Value: &ir.Load{Buf: in, Index: []ir.Expr{i}}})}
	m, err := Analyze(k, fpga.S10MX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	c1 := m.Cycles(map[*ir.Var]int64{n: 1000})
	c2 := m.Cycles(map[*ir.Var]int64{n: 4000})
	if c2 < 3*c1 {
		t.Fatalf("symbolic cycles must scale: %d vs %d", c1, c2)
	}
}
