package aoc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/fpga"
	"repro/internal/ir"
)

// symCopy builds a fresh symbolic-shape copy kernel. Every call allocates new
// Var/Buffer instances, so two calls are structurally identical but share no
// pointers — exactly what successive explorer candidates hand the compiler.
func symCopy(name string) (*ir.Kernel, *ir.Var) {
	n := ir.Param("n")
	in := ir.NewBufferE("in", ir.Global, n)
	out := ir.NewBufferE("out", ir.Global, n)
	i := ir.V("i")
	k := &ir.Kernel{Name: name, Args: []*ir.Buffer{in, out}, ScalarArgs: []*ir.Var{n},
		Body: ir.LoopE(i, n, &ir.Store{Buf: out, Index: []ir.Expr{i}, Value: &ir.Load{Buf: in, Index: []ir.Expr{i}}})}
	return k, n
}

func TestCompileCacheHitsStructurallyIdenticalKernels(t *testing.T) {
	cache := NewCompileCache()
	k1, _ := symCopy("sym")
	k2, _ := symCopy("sym")
	d1, err := CompileCached("a", []*ir.Kernel{k1}, fpga.S10SX, DefaultOptions, cache)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := CompileCached("b", []*ir.Kernel{k2}, fpga.S10SX, DefaultOptions, cache)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Kernels[0] != d2.Kernels[0] {
		t.Fatal("structurally identical kernels must share one cached KernelModel")
	}
	if h, m := cache.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", h, m)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
}

func TestCompileCacheMissesOnStructuralDifference(t *testing.T) {
	cache := NewCompileCache()
	k1, _ := symCopy("sym")
	k2, _ := symCopy("sym")
	k2.Body.(*ir.For).Unroll = -1 // same text shape, different hardware
	if _, err := CompileCached("a", []*ir.Kernel{k1}, fpga.S10SX, DefaultOptions, cache); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileCached("b", []*ir.Kernel{k2}, fpga.S10SX, DefaultOptions, cache); err != nil {
		t.Fatal(err)
	}
	if h, m := cache.Stats(); h != 0 || m != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 0/2", h, m)
	}
	// Different boards and options also key separately.
	k3, _ := symCopy("sym")
	if _, err := CompileCached("c", []*ir.Kernel{k3}, fpga.A10, DefaultOptions, cache); err != nil {
		t.Fatal(err)
	}
	if _, m := cache.Stats(); m != 3 {
		t.Fatalf("board change must miss, misses = %d", m)
	}
}

// TestCachedModelRebindsForeignVars checks that a model served from the cache
// evaluates bindings keyed by another kernel instance's vars: binding maps
// are pointer-keyed, so the model must translate them by scalar-arg name.
func TestCachedModelRebindsForeignVars(t *testing.T) {
	cache := NewCompileCache()
	k1, n1 := symCopy("sym")
	k2, n2 := symCopy("sym")
	d1, err := CompileCached("a", []*ir.Kernel{k1}, fpga.S10SX, DefaultOptions, cache)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := CompileCached("b", []*ir.Kernel{k2}, fpga.S10SX, DefaultOptions, cache)
	if err != nil {
		t.Fatal(err)
	}
	own := d1.Kernels[0].Cycles(map[*ir.Var]int64{n1: 1000})
	foreign := d2.Kernels[0].Cycles(map[*ir.Var]int64{n2: 1000})
	if own != foreign {
		t.Fatalf("cached model must honor foreign bindings: own %d vs foreign %d", own, foreign)
	}
	if tr := d2.Kernels[0].TrafficBytes(map[*ir.Var]int64{n2: 1000}); tr != d1.Kernels[0].TrafficBytes(map[*ir.Var]int64{n1: 1000}) {
		t.Fatal("traffic must match under foreign bindings")
	}
}

// TestCompileCacheConcurrent hammers one cache from many goroutines (run
// under -race); each distinct kernel must be analyzed exactly once.
// countingObserver tallies lookups; safe for concurrent use.
type countingObserver struct {
	hits, misses atomic.Int64
}

func (o *countingObserver) ObserveCompile(kernel string, hit bool) {
	if hit {
		o.hits.Add(1)
	} else {
		o.misses.Add(1)
	}
}

// TestCompileCacheShardedSingleflight drives far more distinct kernels than
// there are shards from many goroutines at once (run under -race): every
// distinct fingerprint must be analyzed exactly once no matter which shard it
// lands on, hit/miss accounting must be exact, and the observer must see the
// same totals as the counters.
func TestCompileCacheShardedSingleflight(t *testing.T) {
	cache := NewCompileCache()
	obs := &countingObserver{}
	cache.SetObserver(obs)
	const goroutines, distinct = 16, 3 * cacheShards
	kernels := make([]*ir.Kernel, distinct)
	for i := range kernels {
		kernels[i], _ = symCopy(fmt.Sprintf("shard%d", i))
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range kernels {
				// Fresh structural copy per goroutine: identical fingerprint,
				// zero shared pointers, like successive explorer candidates.
				k, _ := symCopy(kernels[i].Name)
				if _, err := CompileCached("s", []*ir.Kernel{k}, fpga.S10SX, DefaultOptions, cache); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	h, m := cache.Stats()
	if m != distinct {
		t.Fatalf("misses = %d, want %d (singleflight: one analysis per fingerprint)", m, distinct)
	}
	if h+m != goroutines*distinct {
		t.Fatalf("lookups = %d, want %d", h+m, goroutines*distinct)
	}
	if cache.Len() != distinct {
		t.Fatalf("cache holds %d entries, want %d", cache.Len(), distinct)
	}
	if oh, om := obs.hits.Load(), obs.misses.Load(); oh != h || om != m {
		t.Fatalf("observer saw %d/%d, counters say %d/%d", oh, om, h, m)
	}
}

// TestCompileCacheConcurrent hammers one cache from many goroutines (run
// under -race); each distinct kernel must be analyzed exactly once.
func TestCompileCacheConcurrent(t *testing.T) {
	cache := NewCompileCache()
	const goroutines, distinct = 8, 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < distinct; i++ {
				k, _ := symCopy(fmt.Sprintf("sym%d", i))
				if _, err := CompileCached("d", []*ir.Kernel{k}, fpga.S10SX, DefaultOptions, cache); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	h, m := cache.Stats()
	if h+m != goroutines*distinct {
		t.Fatalf("lookups = %d, want %d", h+m, goroutines*distinct)
	}
	if cache.Len() != distinct {
		t.Fatalf("cache holds %d entries, want %d", cache.Len(), distinct)
	}
	if m != distinct {
		t.Fatalf("misses = %d, want %d (each kernel analyzed once)", m, distinct)
	}
}
