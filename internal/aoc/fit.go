package aoc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fpga"
	"repro/internal/ir"
)

// Design is the result of compiling a set of kernels into one bitstream: the
// equivalent of an .aocx plus the Quartus fit/route reports the thesis reads
// its area and fmax numbers from.
type Design struct {
	Name    string
	Board   *fpga.Board
	Options Options
	Kernels []*KernelModel

	// Area is the kernel system alone; TotalArea includes the static
	// partition (what the thesis's utilization percentages report against
	// the full chip).
	Area      fpga.Resources
	TotalArea fpga.Resources
	FmaxMHz   float64

	// Fits is false when any resource class overflows; FailReason then names
	// it. Routed is false when the worst kernel's congestion demand exceeds
	// the board's routing capacity (§6.5, Fig. 6.8).
	Fits       bool
	FailReason string
	Routed     bool
	// WorstDemand / Capacity expose the congestion margin for Fig. 6.8.
	WorstDemand float64
	Capacity    float64
}

// Synthesizable reports whether the bitstream would come out of Quartus.
func (d *Design) Synthesizable() bool { return d.Fits && d.Routed }

// Err returns a descriptive error when the design cannot be built.
func (d *Design) Err() error {
	if d.Fits && d.Routed {
		return nil
	}
	if !d.Fits {
		return fmt.Errorf("design %s does not fit on %s: insufficient %s (kernel system %+v, usable %+v)",
			d.Name, d.Board.Name, d.FailReason, d.Area, d.Board.Usable())
	}
	return fmt.Errorf("design %s fails routing on %s: congestion demand %.0f exceeds capacity %.0f",
		d.Name, d.Board.Name, d.WorstDemand, d.Capacity)
}

// Utilization returns logic/RAM/DSP utilization fractions against the full
// chip, as the thesis's tables report.
func (d *Design) Utilization() (logic, ram, dsp float64) {
	l, _, r, ds := d.TotalArea.Utilization(d.Board.Total)
	return l, r, ds
}

// Model returns the compiled model for a kernel by name.
func (d *Design) Model(name string) *KernelModel {
	for _, m := range d.Kernels {
		if m.Kernel.Name == name {
			return m
		}
	}
	return nil
}

// Compile analyzes all kernels and runs the fit/route/fmax models,
// producing the design report. An error is returned only for malformed
// kernels; resource and routing failures are reported in the Design, the way
// AOC/Quartus report them.
func Compile(name string, kernels []*ir.Kernel, board *fpga.Board, opts Options) (*Design, error) {
	return CompileCached(name, kernels, board, opts, nil)
}

// CompileCached is Compile with per-kernel analysis memoized in cache (nil
// disables memoization). Safe for concurrent use: the package holds no
// mutable state — the calibration constants and the routeCapacity table are
// read-only after init — and every Analyze builds its model from scratch
// without touching the caller's IR.
func CompileCached(name string, kernels []*ir.Kernel, board *fpga.Board, opts Options, cache *CompileCache) (*Design, error) {
	d := &Design{Name: name, Board: board, Options: opts}
	seen := map[string]bool{}
	for _, k := range kernels {
		if seen[k.Name] {
			return nil, fmt.Errorf("aoc: duplicate kernel name %q in design %s", k.Name, name)
		}
		seen[k.Name] = true
		m, err := cache.analyze(k, board, opts)
		if err != nil {
			return nil, err
		}
		d.Kernels = append(d.Kernels, m)
		d.Area = d.Area.Add(m.Area)
	}
	d.TotalArea = d.Area.Add(board.Static)

	// Fit check against the usable fabric, with the router's practical
	// headroom limits (designs very close to full do not close).
	usable := board.Usable()
	d.Fits = true
	if ok, class := d.Area.FitsIn(usable); !ok {
		d.Fits, d.FailReason = false, class
	} else {
		if float64(d.Area.ALUTs) > routeLogicLimit*float64(usable.ALUTs) {
			d.Fits, d.FailReason = false, "logic (fitter headroom)"
		}
		if float64(d.Area.RAMs) > routeRAMLimit*float64(usable.RAMs) {
			d.Fits, d.FailReason = false, "BRAM (fitter headroom)"
		}
	}

	// Routing: worst single kernel's congestion demand vs board capacity.
	d.Capacity = routeCapacity[board.Name]
	for _, m := range d.Kernels {
		if m.Demand > d.WorstDemand {
			d.WorstDemand = m.Demand
		}
	}
	d.Routed = d.WorstDemand <= d.Capacity

	d.FmaxMHz = d.fmax()
	return d, nil
}

// fmax models timing closure: the base kernel clock degraded by (1) overall
// utilization, (2) the congestion demand of the worst kernel (fanout of wide
// LSU buses into the DSP array), and (3) the number of kernel clock regions.
func (d *Design) fmax() float64 {
	logic, _, ram, dsp := d.Area.Utilization(d.Board.Usable())
	util := 0.5*logic + 0.3*ram + 0.2*dsp
	f := d.Board.BaseFmaxMHz
	f *= 1 - fmaxUtilPenalty*util*util
	if d.Capacity > 0 {
		r := d.WorstDemand / d.Capacity
		if r > 1 {
			r = 1
		}
		f *= 1 - fmaxDemandPenalty*r*r
	}
	n := len(d.Kernels)
	if n > 1 {
		f *= 1 - fmaxKernelPenalty*float64(n-1)
	}
	return math.Max(f, fmaxFloorMHz)
}

// RoutingMap renders an ASCII routing-utilization heatmap in the spirit of
// Fig. 6.8: a grid of fabric regions whose saturation follows the congestion
// demand, with hot regions (>95%) marked '#'. Deterministic per design.
func (d *Design) RoutingMap(cols, rows int) []string {
	// Regions covered by the kernel system scale with logic utilization; the
	// hot fraction scales with demand/capacity.
	logic, _, _, _ := d.Area.Utilization(d.Board.Usable())
	ratio := 0.0
	if d.Capacity > 0 {
		ratio = d.WorstDemand / d.Capacity
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
		for c := range grid[r] {
			grid[r][c] = '.'
		}
	}
	total := cols * rows
	used := int(float64(total) * math.Min(1, logic*1.6))
	hot := int(float64(used) * math.Min(1, ratio*ratio))
	// Fill deterministically in a column-major serpentine, hottest first
	// (placement packs the kernel system from one die edge).
	idx := 0
	for c := 0; c < cols && idx < used; c++ {
		for r := 0; r < rows && idx < used; r++ {
			rr := r
			if c%2 == 1 {
				rr = rows - 1 - r
			}
			ch := byte('o') // moderate utilization
			if idx < hot {
				ch = '#'
			} else if idx >= used*3/4 {
				ch = '-' // fringe regions
			}
			grid[rr][c] = ch
			idx++
		}
	}
	out := make([]string, rows)
	for r := range grid {
		out[r] = string(grid[r])
	}
	return out
}

// SortKernelsByDemand returns kernel names ordered by congestion demand,
// highest first (used in reports).
func (d *Design) SortKernelsByDemand() []string {
	ms := append([]*KernelModel{}, d.Kernels...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Demand > ms[j].Demand })
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Kernel.Name
	}
	return names
}
