package aoc

// EvalFeatures is the flat numeric summary of one full compile-model
// evaluation: everything a search layer wants to learn from after paying for
// a complete Compile (fit + route + fmax). The design-space explorer's
// learned cost model trains on these labels; they are also what the trace
// registry publishes per candidate. All fields are pure functions of the
// Design, so exporting them costs nothing beyond the compile already paid.
type EvalFeatures struct {
	FmaxMHz   float64
	DSPs      int
	LogicFrac float64
	RAMFrac   float64
	DSPFrac   float64
	// Demand/Capacity expose the routing-congestion margin; DemandFrac is
	// their ratio (0 when the board has no capacity table entry).
	Demand     float64
	Capacity   float64
	DemandFrac float64
	Fits       bool
	Routed     bool
}

// Features exports the evaluation summary of a compiled design.
func (d *Design) Features() EvalFeatures {
	f := EvalFeatures{
		FmaxMHz:  d.FmaxMHz,
		DSPs:     d.TotalArea.DSPs,
		Demand:   d.WorstDemand,
		Capacity: d.Capacity,
		Fits:     d.Fits,
		Routed:   d.Routed,
	}
	f.LogicFrac, f.RAMFrac, f.DSPFrac = d.Utilization()
	if d.Capacity > 0 {
		f.DemandFrac = d.WorstDemand / d.Capacity
	}
	return f
}
