package aoc

// The analytic cycle model. A kernel's runtime on the FPGA is
//
//	time = max(cycles / fmax, traffic / effective-memory-bandwidth)
//
// where cycles come from the loop tree annotated during analysis:
//
//   - fully unrolled loops are replicated hardware and cost their body once;
//   - pipelined perfect nests flatten (AOC launches one iteration per II
//     across the whole nest) and pay one fill;
//   - loops whose body has several regions re-fill per iteration;
//   - serialized loops (global-scratchpad RAW, §3.2) pay their body plus the
//     serialization overhead every iteration.

import (
	"repro/internal/fpga"

	"repro/internal/ir"
)

// Cycles evaluates the kernel's cycle count for one invocation under the
// given symbolic-shape bindings (nil for constant-shape kernels).
func (m *KernelModel) Cycles(bind map[*ir.Var]int64) int64 {
	return evalNode(m.root, m.rebind(bind))
}

// TrafficBytes sums external-memory traffic over all LSU sites.
func (m *KernelModel) TrafficBytes(bind map[*ir.Var]int64) int64 {
	bind = m.rebind(bind)
	var n int64
	for _, l := range m.LSUs {
		n += l.TrafficBytes(bind)
	}
	return n
}

// rebind translates a binding map built against another structurally
// identical kernel instance onto this model's own scalar-argument vars.
// Compile caching hands one KernelModel to many designs, whose plans bind
// their own *ir.Var pointers; matching by name keeps those bindings valid.
// Returns the input map unchanged (no allocation) when the pointers already
// belong to this kernel.
func (m *KernelModel) rebind(bind map[*ir.Var]int64) map[*ir.Var]int64 {
	if len(bind) == 0 {
		return bind
	}
	same := true
	for v := range bind {
		if m.scalars[v.Name] != v {
			same = false
			break
		}
	}
	if same {
		return bind
	}
	out := make(map[*ir.Var]int64, len(bind))
	for v, n := range bind {
		if mv, ok := m.scalars[v.Name]; ok {
			out[mv] = n
		} else {
			out[v] = n
		}
	}
	return out
}

// TimeUS returns the modeled kernel execution time in microseconds on a
// design clocked at fmaxMHz with the given memory system.
func (m *KernelModel) TimeUS(bind map[*ir.Var]int64, fmaxMHz float64, board *fpga.Board) float64 {
	compute := float64(m.Cycles(bind)) / fmaxMHz        // cycles / (MHz) = microseconds
	memBW := board.PeakGBps * board.MemEfficiency * 1e3 // bytes per microsecond
	mem := float64(m.TrafficBytes(bind)) / memBW
	if mem > compute {
		return mem
	}
	return compute
}

func evalNode(n node, bind map[*ir.Var]int64) int64 {
	switch x := n.(type) {
	case *leafNode:
		return int64(x.stmts) * leafStmtCycles
	case *blockNode:
		var sum int64
		for _, c := range x.children {
			sum += evalNode(c, bind)
		}
		return sum
	case *loopNode:
		switch x.mode {
		case modeUnrolled:
			return evalNode(x.child, bind)
		case modeSerial:
			trips := evalInt(x.extent, bind)
			return trips * (evalNode(x.child, bind) + serialLoopOverhead)
		default: // pipelined
			iters, ii := flatten(x, bind)
			// The fill cannot exceed what the loop can hide: short nests
			// have shallow pipelines.
			fill := int64(pipelineFill)
			if f := 8 + iters; f < fill {
				fill = f
			}
			return fill + iters*ii
		}
	}
	return 0
}

// flatten collapses a chain of pipelined loops into (iterations, II). A
// perfect pipelined child multiplies iterations. A block body of the
// init/reduce/write shape (leaves plus at most one pipelined sub-loop — the
// optimized conv/dense schedules) still pipelines through the outer loop:
// the outer II becomes the body's steady-state cycles, without re-paying the
// pipeline fill every iteration. Any other body serializes per iteration.
func flatten(l *loopNode, bind map[*ir.Var]int64) (iters, ii int64) {
	trips := evalInt(l.extent, bind)
	switch c := l.child.(type) {
	case *loopNode:
		if c.mode == modePipelined {
			i2, ii2 := flatten(c, bind)
			ii = ii2
			if int64(l.ii) > ii {
				ii = int64(l.ii)
			}
			return trips * i2, ii
		}
		body := evalNode(c, bind)
		return trips, maxI64(body, int64(maxInt(l.ii, 1)))
	case *leafNode:
		body := maxI64(int64(c.stmts)*leafStmtCycles, 1)
		ii = maxI64(body, int64(maxInt(l.ii, 1)))
		return trips, ii
	case *blockNode:
		var leafCycles int64
		var inner *loopNode
		simple := true
		for _, ch := range c.children {
			switch x := ch.(type) {
			case *leafNode:
				leafCycles += int64(x.stmts) * leafStmtCycles
			case *loopNode:
				if x.mode == modeUnrolled {
					leafCycles += evalNode(x.child, bind)
				} else if x.mode == modePipelined && inner == nil {
					inner = x
				} else {
					simple = false
				}
			default:
				simple = false
			}
		}
		if simple {
			steady := leafCycles
			if inner != nil {
				i2, ii2 := flatten(inner, bind)
				steady += i2 * ii2
			}
			return trips, maxI64(steady, int64(maxInt(l.ii, 1)))
		}
		body := evalNode(l.child, bind)
		return trips, maxI64(body, int64(maxInt(l.ii, 1)))
	default:
		body := evalNode(l.child, bind)
		return trips, maxI64(body, int64(maxInt(l.ii, 1)))
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
