package aoc

import (
	"strings"
	"testing"

	"repro/internal/fpga"
	"repro/internal/ir"
)

// convNaive builds the Listing 5.1 shape: global scratchpad, separate
// reduction and activation loops.
func convNaive(c2, h, w, c1, f int) *ir.Kernel {
	scratch := ir.NewBuffer("scratchpad", ir.Global, h, w)
	in := ir.NewBuffer("in_fm", ir.Global, c1, h+f-1, w+f-1)
	wt := ir.NewBuffer("w", ir.Global, c2, c1, f, f)
	out := ir.NewBuffer("out_fm", ir.Global, c2, h, w)
	ax1, yy, xx, rc, ry, rx := ir.V("ax1"), ir.V("yy"), ir.V("xx"), ir.V("rc"), ir.V("ry"), ir.V("rx")
	ax2, ax3 := ir.V("ax2"), ir.V("ax3")
	acc := &ir.Store{Buf: scratch, Index: []ir.Expr{yy, xx},
		Value: ir.AddE(&ir.Load{Buf: scratch, Index: []ir.Expr{yy, xx}},
			ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{rc, ir.AddE(yy, ry), ir.AddE(xx, rx)}},
				&ir.Load{Buf: wt, Index: []ir.Expr{ax1, rc, ry, rx}}))}
	reduce := ir.Loop(yy, h, ir.Loop(xx, w, ir.Seq(
		&ir.Store{Buf: scratch, Index: []ir.Expr{yy, xx}, Value: ir.CFloat(0)},
		ir.Loop(rc, c1, ir.Loop(ry, f, ir.Loop(rx, f, acc))),
	)))
	writeback := ir.Loop(ax2, h, ir.Loop(ax3, w, &ir.Store{Buf: out, Index: []ir.Expr{ax1, ax2, ax3},
		Value: ir.MaxE(&ir.Load{Buf: scratch, Index: []ir.Expr{ax2, ax3}}, ir.CFloat(0))}))
	return &ir.Kernel{
		Name: "conv_naive",
		Args: []*ir.Buffer{scratch, in, wt, out},
		Body: ir.Loop(ax1, c2, ir.Seq(reduce, writeback)),
	}
}

func TestNaiveConvSerializedAndHighII(t *testing.T) {
	k := convNaive(16, 11, 11, 6, 3)
	m, err := Analyze(k, fpga.S10MX, DefaultOptions) // no auto-unroll
	if err != nil {
		t.Fatal(err)
	}
	root := m.root.(*loopNode) // ax1
	if root.mode != modeSerial {
		t.Fatalf("naive conv outer loop must serialize (global scratchpad RAW), mode=%d", root.mode)
	}
	// The reduction accumulates through global memory: II = 5 somewhere in
	// the nest.
	found := false
	var scan func(n node)
	scan = func(n node) {
		switch x := n.(type) {
		case *loopNode:
			if x.ii == iiGlobalAccum {
				found = true
			}
			scan(x.child)
		case *blockNode:
			for _, c := range x.children {
				scan(c)
			}
		}
	}
	scan(m.root)
	if !found {
		t.Fatal("global accumulation must have II=5")
	}
}

func TestAutoUnrollQuartusVersions(t *testing.T) {
	k := convNaive(16, 11, 11, 6, 3)
	mOld, err := Analyze(k, fpga.S10SX, DefaultOptions) // Quartus 18.1: auto-unrolls F×F
	if err != nil {
		t.Fatal(err)
	}
	mNew, err := Analyze(k, fpga.S10MX, DefaultOptions) // Quartus 19.1: no auto-unroll
	if err != nil {
		t.Fatal(err)
	}
	// Auto-unroll replicates the MAC 9x.
	if mOld.DSPs <= mNew.DSPs {
		t.Fatalf("auto-unrolled design must use more DSPs: %d vs %d", mOld.DSPs, mNew.DSPs)
	}
	if cOld, cNew := mOld.Cycles(nil), mNew.Cycles(nil); cOld >= cNew {
		t.Fatalf("auto-unrolled design must be faster: %d vs %d cycles", cOld, cNew)
	}
}

// optimizedDense builds Listing 5.6: private accumulator, inner loop unrolled.
func optimizedDense(mm, nn, uf int) (*ir.Kernel, *ir.Var) {
	in := ir.NewBuffer("I", ir.Global, nn)
	wt := ir.NewBuffer("W", ir.Global, mm, nn)
	bias := ir.NewBuffer("bias", ir.Global, mm)
	out := ir.NewBuffer("y", ir.Global, mm)
	acc := ir.NewBuffer("dot", ir.Private, 1)
	j, ko, ki := ir.V("j"), ir.V("ko"), ir.V("ki")
	z := []ir.Expr{ir.CInt(0)}
	kidx := ir.AddE(ir.MulE(ko, ir.CInt(int64(uf))), ki)
	inner := &ir.For{Var: ki, Extent: ir.CInt(int64(uf)), Unroll: -1,
		Body: &ir.Store{Buf: acc, Index: z,
			Value: ir.AddE(&ir.Load{Buf: acc, Index: z},
				ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{kidx}}, &ir.Load{Buf: wt, Index: []ir.Expr{j, kidx}}))}}
	body := ir.Loop(j, mm, ir.Seq(
		&ir.Store{Buf: acc, Index: z, Value: ir.CFloat(0)},
		ir.Loop(ko, nn/uf, inner),
		&ir.Store{Buf: out, Index: []ir.Expr{j},
			Value: ir.AddE(&ir.Load{Buf: acc, Index: z}, &ir.Load{Buf: bias, Index: []ir.Expr{j}})},
	))
	return &ir.Kernel{Name: "dense_opt", Args: []*ir.Buffer{in, wt, bias, out},
		Body: ir.Seq(&ir.Alloc{Buf: acc}, body)}, ko
}

func TestLSUCoalescingAndCaching(t *testing.T) {
	k, _ := optimizedDense(120, 400, 8)
	m, err := Analyze(k, fpga.S10MX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	var wLSU, iLSU *LSU
	for _, l := range m.LSUs {
		if l.Kind == Pipelined || l.IsWrite {
			continue
		}
		switch l.Buf.Name {
		case "W":
			wLSU = l
		case "I":
			iLSU = l
		}
	}
	if wLSU == nil || iLSU == nil {
		t.Fatal("missing LSUs for W/I")
	}
	// W[j][ko*8+ki]: contiguous in unrolled ki -> width 8, one replica, and
	// strictly sequential across (j, ko) -> a streaming LSU (§2.4.3).
	if wLSU.WidthWords != 8 || wLSU.Replicas != 1 {
		t.Fatalf("W LSU width=%d replicas=%d, want 8/1", wLSU.WidthWords, wLSU.Replicas)
	}
	if wLSU.Kind != Streaming {
		t.Fatalf("W LSU kind = %s, want streaming (sequential, no reuse)", wLSU.Kind)
	}
	// I[ko*8+ki] is invariant to the j loop -> cached (§5.1.2: "the cache
	// size for I is large enough for the vector to fit in BRAM").
	if !iLSU.Cached {
		t.Fatal("I LSU must be cached (reuse across j)")
	}
	if wLSU.Cached {
		t.Fatal("W has no reuse; must not be cached")
	}
	// Traffic: W reads the full matrix once (120*400*4 bytes); I only once.
	if got := wLSU.TrafficBytes(nil); got != 120*400*4 {
		t.Fatalf("W traffic = %d, want %d", got, 120*400*4)
	}
	if got := iLSU.TrafficBytes(nil); got != 400*4 {
		t.Fatalf("I traffic = %d, want %d", got, 400*4)
	}
}

func TestLocalAccumulatorIIWithFPRelaxed(t *testing.T) {
	k, _ := optimizedDense(16, 64, 8)
	m1, _ := Analyze(k, fpga.S10MX, Options{FPRelaxed: true, FPC: true})
	m2, _ := Analyze(k, fpga.S10MX, Options{FPRelaxed: false, FPC: true})
	if c1, c2 := m1.Cycles(nil), m2.Cycles(nil); c1 >= c2 {
		t.Fatalf("-fp-relaxed must reduce cycles via II=1 accumulator: %d vs %d", c1, c2)
	}
}

func TestMACFusionDSPs(t *testing.T) {
	k, _ := optimizedDense(16, 64, 8)
	mFused, _ := Analyze(k, fpga.S10MX, Options{FPRelaxed: true, FPC: true})
	mSplit, _ := Analyze(k, fpga.S10MX, Options{FPRelaxed: true, FPC: false})
	// 8-lane MAC: fused = 8 DSPs (+1 for the bias add), split = 16 (+1).
	if mFused.DSPs >= mSplit.DSPs {
		t.Fatalf("-fpc must reduce DSPs: %d vs %d", mFused.DSPs, mSplit.DSPs)
	}
	if mFused.DSPs != 9 {
		t.Fatalf("fused dense DSPs = %d, want 9 (8 MAC lanes + bias add)", mFused.DSPs)
	}
}

func TestReplicationForStridedAccess(t *testing.T) {
	// out[i] = in[k*i]: small strides coalesce into a wider over-fetching
	// access (stride-2 convolutions); large strides replicate the LSU.
	mk := func(stride int64) *KernelModel {
		in := ir.NewBuffer("in", ir.Global, 16*int(stride))
		out := ir.NewBuffer("out", ir.Global, 16)
		i := ir.V("i")
		body := &ir.For{Var: i, Extent: ir.CInt(16), Unroll: -1,
			Body: &ir.Store{Buf: out, Index: []ir.Expr{i},
				Value: &ir.Load{Buf: in, Index: []ir.Expr{ir.MulE(ir.CInt(stride), i)}}}}
		k := &ir.Kernel{Name: "gather", Args: []*ir.Buffer{in, out}, Body: body}
		m, err := Analyze(k, fpga.S10MX, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	wide := mk(2)
	for _, l := range wide.LSUs {
		if l.Buf.Name == "in" {
			// Span coverage: 1 + 2*(16-1) = 31 words, one unit.
			if l.Replicas != 1 || l.WidthWords != 31 {
				t.Fatalf("stride-2 load: width=%d replicas=%d, want 31/1", l.WidthWords, l.Replicas)
			}
		}
		if l.Buf.Name == "out" && (l.WidthWords != 16 || l.Replicas != 1) {
			t.Fatalf("contiguous store: width=%d replicas=%d, want 16/1", l.WidthWords, l.Replicas)
		}
	}
	far := mk(64)
	for _, l := range far.LSUs {
		if l.Buf.Name == "in" {
			if l.Replicas != 16 || l.WidthWords != 1 {
				t.Fatalf("stride-64 load: width=%d replicas=%d, want 1/16", l.WidthWords, l.Replicas)
			}
		}
	}
}

func TestSymbolicStridesPreventCoalescing(t *testing.T) {
	n := ir.Param("n")
	mk := func(explicit bool) *KernelModel {
		in := ir.NewBufferE("in", ir.Global, n)
		out := ir.NewBufferE("out", ir.Global, n)
		in.ExplicitStrides = explicit
		out.ExplicitStrides = explicit
		i, u := ir.V("i"), ir.V("u")
		body := ir.LoopE(i, ir.DivE(n, ir.CInt(8)),
			&ir.For{Var: u, Extent: ir.CInt(8), Unroll: -1,
				Body: &ir.Store{Buf: out, Index: []ir.Expr{ir.AddE(ir.MulE(i, ir.CInt(8)), u)},
					Value: ir.AddE(&ir.Load{Buf: in, Index: []ir.Expr{ir.AddE(ir.MulE(i, ir.CInt(8)), u)}}, ir.CFloat(1))}})
		k := &ir.Kernel{Name: "sym", Args: []*ir.Buffer{in, out}, ScalarArgs: []*ir.Var{n}, Body: body}
		m, err := Analyze(k, fpga.S10MX, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	withStrides := mk(true)
	workaround := mk(false)
	for _, l := range withStrides.LSUs {
		if l.WidthWords != 1 || l.Replicas != 8 || !l.Nonaligned {
			t.Fatalf("explicit-stride access must replicate nonaligned LSUs: %+v", l)
		}
	}
	for _, l := range workaround.LSUs {
		if l.WidthWords != 8 || l.Replicas != 1 {
			t.Fatalf("stride-1 workaround must coalesce: %+v", l)
		}
	}
	// The workaround is the cheaper and faster design (Listing 5.11's point).
	if workaround.Area.ALUTs >= withStrides.Area.ALUTs {
		t.Fatal("coalesced design must use less logic")
	}
	bind := map[*ir.Var]int64{n: 1024}
	if workaround.Cycles(bind) > withStrides.Cycles(bind) {
		t.Fatal("coalesced design must not be slower")
	}
}

func TestDesignFitAndRoute(t *testing.T) {
	k, _ := optimizedDense(120, 400, 8)
	d, err := Compile("dense-design", []*ir.Kernel{k}, fpga.A10, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Synthesizable() {
		t.Fatalf("small design must synthesize: %v", d.Err())
	}
	if d.FmaxMHz <= 0 || d.FmaxMHz > fpga.A10.BaseFmaxMHz {
		t.Fatalf("fmax out of range: %v", d.FmaxMHz)
	}
	logic, ram, dsp := d.Utilization()
	if logic <= 0 || logic > 1 || ram <= 0 || dsp < 0 {
		t.Fatalf("utilization out of range: %v %v %v", logic, ram, dsp)
	}
}

func TestDuplicateKernelNamesRejected(t *testing.T) {
	k1, _ := optimizedDense(16, 64, 8)
	k2, _ := optimizedDense(16, 64, 8)
	if _, err := Compile("dup", []*ir.Kernel{k1, k2}, fpga.A10, DefaultOptions); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestFmaxDegradesWithUnroll(t *testing.T) {
	var prev float64 = 1e9
	for _, uf := range []int{8, 40, 200} {
		k, _ := optimizedDense(120, 400, uf)
		d, err := Compile("d", []*ir.Kernel{k}, fpga.A10, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		if d.FmaxMHz > prev {
			t.Fatalf("fmax must not increase with unroll factor: uf=%d fmax=%v prev=%v", uf, d.FmaxMHz, prev)
		}
		prev = d.FmaxMHz
	}
}

func TestOverflowingDesignFailsFit(t *testing.T) {
	// 30 naive conv kernels (one per MobileNet layer) exhaust the A10 (the thesis's base MobileNet).
	var ks []*ir.Kernel
	for i := 0; i < 30; i++ {
		k := convNaive(16, 28, 28, 64, 3)
		k.Name = k.Name + string(rune('a'+i%26)) + string(rune('a'+i/26))
		ks = append(ks, k)
	}
	d, err := Compile("overflow", ks, fpga.A10, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if d.Fits {
		t.Fatalf("30 naive kernels must not fit the A10 (area %+v)", d.Area)
	}
	if d.Err() == nil {
		t.Fatal("Err must describe the failure")
	}
	// The same design fits the S10SX (the thesis deploys base MobileNet there).
	d2, err := Compile("overflow", ks, fpga.S10SX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Fits {
		t.Fatalf("naive design must fit the larger S10SX: %v", d2.Err())
	}
}

func TestCyclesScaleWithShape(t *testing.T) {
	k, _ := optimizedDense(120, 400, 8)
	m, err := Analyze(k, fpga.S10MX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Cycles(nil)
	if c <= 0 {
		t.Fatal("cycles must be positive")
	}
	k2, _ := optimizedDense(240, 400, 8)
	m2, _ := Analyze(k2, fpga.S10MX, DefaultOptions)
	if c2 := m2.Cycles(nil); c2 <= c {
		t.Fatalf("doubling rows must increase cycles: %d vs %d", c, c2)
	}
}

func TestTimeUSMemoryBound(t *testing.T) {
	// A huge, barely-computing kernel: copy 64 MB. Must be bandwidth-bound.
	n := 16 << 20
	in := ir.NewBuffer("in", ir.Global, n)
	out := ir.NewBuffer("out", ir.Global, n)
	i := ir.V("i")
	k := &ir.Kernel{Name: "copy", Args: []*ir.Buffer{in, out},
		Body: ir.Loop(i, n, &ir.Store{Buf: out, Index: []ir.Expr{i}, Value: &ir.Load{Buf: in, Index: []ir.Expr{i}}})}
	m, err := Analyze(k, fpga.S10MX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	tm := m.TimeUS(nil, 300, fpga.S10MX)
	minUS := float64(2*n*4) / (fpga.S10MX.PeakGBps * 1e3)
	if tm < minUS {
		t.Fatalf("time %v us beats the memory bandwidth floor %v us", tm, minUS)
	}
}

func TestRoutingMapShape(t *testing.T) {
	k, _ := optimizedDense(120, 400, 40)
	d, _ := Compile("d", []*ir.Kernel{k}, fpga.S10SX, DefaultOptions)
	rows := d.RoutingMap(40, 12)
	if len(rows) != 12 || len(rows[0]) != 40 {
		t.Fatalf("map dims wrong: %dx%d", len(rows), len(rows[0]))
	}
}

func TestResNet33LSUFormulaFromThesis(t *testing.T) {
	// §5.1.1 states the exact LSU inference for the tiled 3x3 convolution:
	// "there are C1vec × F LSUs for I with 32 × W2vec × F bit reads" and the
	// weight reads are "coalesced into an access width that is
	// 32 × C1vec × F × F bits wide". Check the model reproduces the formulas
	// for the ResNet 7/8/3/3 configuration (Table 6.13).
	pc, err := topiConvParamForTest(t)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Analyze(pc, fpga.S10SX, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	const (
		w2vec = 7
		c1vec = 8
		f     = 3
	)
	var iLSU, wLSU *LSU
	for _, l := range m.LSUs {
		if l.Kind == Pipelined || l.IsWrite {
			continue
		}
		switch {
		case strings.HasSuffix(l.Buf.Name, "_in"):
			iLSU = l
		case strings.HasSuffix(l.Buf.Name, "_wt"):
			wLSU = l
		}
	}
	if iLSU == nil || wLSU == nil {
		t.Fatal("missing I/W LSUs")
	}
	// I: C1vec × F replicas of 32·W2vec·F-bit reads.
	if iLSU.Replicas != c1vec*f {
		t.Fatalf("I replicas = %d, thesis formula gives C1vec*F = %d", iLSU.Replicas, c1vec*f)
	}
	if iLSU.WidthWords != w2vec*f {
		t.Fatalf("I width = %d words, thesis formula gives W2vec*F = %d", iLSU.WidthWords, w2vec*f)
	}
	// W: one unit of width 32·C1vec·F·F bits.
	if wLSU.Replicas != 1 || wLSU.WidthWords != c1vec*f*f {
		t.Fatalf("W LSU = %dx%d words, thesis formula gives 1x%d", wLSU.Replicas, wLSU.WidthWords, c1vec*f*f)
	}
}
