// Package aoc models the Intel FPGA SDK for OpenCL offline compiler (AOC)
// plus the Quartus fitter and router, as the thesis uses them (§2.4): it
// takes IR kernels and produces, for each, the load-store units AOC would
// infer (with coalescing widths, replication, caching and alignment), the DSP
// and soft-logic area, loop initiation intervals and pipelining/serialization
// decisions, and per-design fmax, fit and routability verdicts. It also
// provides the analytic cycle/traffic model used for kernel timing.
//
// AOC is treated exactly as the thesis treats it: a black box with observable
// behaviours. Each behaviour modeled here is one the thesis measures or cites
// from the Intel manuals; the constants live in calib.go.
package aoc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fpga"
	"repro/internal/ir"
)

// Options are the compiler flags the thesis passes to AOC (§4.10).
type Options struct {
	// FPRelaxed is -fp-relaxed: balanced reduction trees, enabling the
	// single-cycle float accumulator (II=1 for local accumulations).
	FPRelaxed bool
	// FPC is -fpc: fused multiply-accumulate without intermediate rounding,
	// so a MAC costs one DSP instead of two.
	FPC bool
	// Int8 models the §8.1 future-work quantized deployment: 8-bit
	// weights/activations packed two multiplies per DSP (18x18 mode), with
	// LSU widths, caches and traffic shrunk 4x. Functional int8 arithmetic
	// lives in cpuref; this flag drives the area/timing projection.
	Int8 bool
}

// DefaultOptions mirror the thesis: both float optimizations on for every
// bitstream.
var DefaultOptions = Options{FPRelaxed: true, FPC: true}

// LSUKind classifies load-store units (§2.4.3).
type LSUKind int

const (
	BurstCoalesced LSUKind = iota
	// Streaming LSUs serve strictly sequential accesses as a FIFO burst
	// stream (§2.4.3); cheaper than burst-coalesced units.
	Streaming
	// Prefetching LSUs burst-read ahead assuming near-sequential addresses.
	Prefetching
	Pipelined // on-chip (local/private) access
)

func (k LSUKind) String() string {
	switch k {
	case Streaming:
		return "streaming"
	case Prefetching:
		return "prefetching"
	case Pipelined:
		return "pipelined"
	}
	return "burst-coalesced"
}

// LSU is one inferred load-store unit site.
type LSU struct {
	Buf     *ir.Buffer
	IsWrite bool
	Kind    LSUKind
	// WidthWords is the coalesced access width in 32-bit lanes.
	WidthWords int
	// Replicas is the number of parallel LSU copies for non-contiguous
	// unrolled accesses.
	Replicas int
	// Cached marks a cached burst-coalesced LSU (BRAM-backed).
	Cached bool
	// Nonaligned marks accesses whose alignment AOC cannot prove (symbolic
	// strides, §5.3).
	Nonaligned bool
	// WriteAck marks stores participating in a read-after-write dependence.
	WriteAck bool
	// elemBytes is the element size this site moves (4 for float32, 1 for
	// the int8 projection).
	elemBytes int
	// loops records the enclosing non-unrolled loops, outermost first, with
	// whether this site's address depends on each. Dependent loops multiply
	// traffic. Invariant loops are reuse loops: their re-reads are served by
	// the inferred cache only while the working-set slice fits it (§2.4.3's
	// 256–512 kbit caches); larger slices are re-fetched from external
	// memory every iteration — the effect that starves the thesis's 3×3
	// convolutions of bandwidth (§6.5).
	loops []siteLoop
}

type siteLoop struct {
	extent    ir.Expr
	dependent bool
}

// lsuCacheBytes is the inferred cache capacity (512 kbit).
const lsuCacheBytes = 65536

// TrafficBytes evaluates this site's external-memory traffic for one kernel
// invocation under the given symbolic-shape bindings.
func (l *LSU) TrafficBytes(bind map[*ir.Var]int64) int64 {
	if l.Kind == Pipelined {
		return 0
	}
	eb := l.elemBytes
	if eb == 0 {
		eb = 4
	}
	n := int64(eb * l.WidthWords * l.Replicas)
	// Dependent traffic below each loop level, innermost outward.
	for i := len(l.loops) - 1; i >= 0; i-- {
		lp := l.loops[i]
		trips := evalInt(lp.extent, bind)
		if lp.dependent {
			n *= trips
			continue
		}
		// Reuse loop: free only if the slice touched per iteration fits the
		// cache (reads only — writes always go out).
		if !l.IsWrite && n <= lsuCacheBytes {
			continue
		}
		n *= trips
	}
	return n
}

// node is the timing-model tree mirroring the kernel's loop structure.
type node interface{ isNode() }

type blockNode struct{ children []node }

type leafNode struct{ stmts int }

const (
	modeUnrolled = iota
	modePipelined
	modeSerial
)

type loopNode struct {
	extent ir.Expr
	mode   int
	ii     int
	child  node
}

func (*blockNode) isNode() {}
func (*leafNode) isNode()  {}
func (*loopNode) isNode()  {}

// KernelModel is the compilation result for one kernel.
type KernelModel struct {
	Kernel *ir.Kernel
	LSUs   []*LSU
	// DSPs used by the kernel's datapath (replicated by unrolling).
	DSPs int
	Area fpga.Resources
	// Demand is the abstract routing-congestion contribution (fanout of
	// distributing operands from LSUs into the datapath).
	Demand float64
	// MaxWidthWords is the widest LSU access, for bandwidth sanity checks.
	MaxWidthWords int

	root node
	opts Options
	// scalars maps scalar-argument names to the kernel's own vars, so a
	// cached model can evaluate bindings built against a *different* (but
	// structurally identical) kernel instance: binding maps are keyed by
	// *ir.Var pointer, and rebind translates foreign pointers by name.
	scalars map[string]*ir.Var
}

// analysisCtx carries the enclosing-loop context during the walk.
type loopCtx struct {
	f        *ir.For
	unrolled bool
}

type analyzer struct {
	board *fpga.Board
	opts  Options
	model *KernelModel
	// auto records loops treated as unrolled by the Quartus auto-unroller.
	auto map[*ir.For]bool
}

// Analyze compiles a single kernel against a board, producing its LSUs, area
// and timing model. The kernel must validate.
//
// Analyze is safe for concurrent use: it never mutates the input IR (the
// auto-unroll marks live in a per-call side table, see markAutoUnroll), every
// call builds a fresh analyzer and KernelModel, and the only package-level
// state it reads — the calibration constants and the routeCapacity table —
// is immutable after init. Callers may therefore analyze distinct kernels,
// or even the same *ir.Kernel, from multiple goroutines, provided they do
// not concurrently mutate the kernel themselves. The returned KernelModel is
// immutable: Cycles, TrafficBytes and TimeUS are pure reads, so one model
// may be shared across designs and goroutines (CompileCache relies on this).
func Analyze(k *ir.Kernel, board *fpga.Board, opts Options) (*KernelModel, error) {
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("aoc: %w", err)
	}
	a := &analyzer{board: board, opts: opts, model: &KernelModel{Kernel: k, opts: opts}}
	a.model.scalars = make(map[string]*ir.Var, len(k.ScalarArgs))
	for _, v := range k.ScalarArgs {
		a.model.scalars[v.Name] = v
	}
	a.markAutoUnroll(k.Body)
	root := a.walk(k.Body, nil)
	a.model.root = root
	if opts.Int8 {
		// 18x18 DSP mode packs two int8 multiplies per block (§6.5/§8.1).
		a.model.DSPs = (a.model.DSPs + 1) / 2
	}
	a.area()
	return a.model, nil
}

// markAutoUnroll implements the Quartus < 19.1 behaviour of fully unrolling
// small constant-trip loops (§6.3.1 fn. 4): bottom-up, a loop is auto-unrolled
// when its extent is a small constant, everything below it is already
// unrolled, and the cumulative replication stays small. Marks are applied by
// setting For.Unroll = -1 in place on a cloned view — we must not mutate the
// caller's IR, so marks are recorded in a side table instead.
func (a *analyzer) markAutoUnroll(s ir.Stmt) {
	a.auto = map[*ir.For]bool{}
	if !a.board.AutoUnrollsSmallLoops() {
		return
	}
	var visit func(s ir.Stmt) (repl int64, allUnrolled bool)
	visit = func(s ir.Stmt) (int64, bool) {
		switch x := s.(type) {
		case nil:
			return 1, true
		case *ir.Block:
			r, all := int64(1), true
			for _, c := range x.Stmts {
				cr, ca := visit(c)
				if cr > r {
					r = cr
				}
				all = all && ca
			}
			return r, all
		case *ir.For:
			cr, ca := visit(x.Body)
			if x.Unroll == -1 {
				n, _ := ir.IsConst(x.Extent)
				return cr * n, ca
			}
			n, constant := ir.IsConst(x.Extent)
			if constant && ca && n <= autoUnrollMaxTrip && cr*n <= autoUnrollMaxRepl {
				a.auto[x] = true
				return cr * n, true
			}
			return cr, false
		case *ir.IfThen:
			r1, a1 := visit(x.Then)
			r2, a2 := visit(x.Else)
			if r2 > r1 {
				r1 = r2
			}
			return r1, a1 && a2
		default:
			return 1, true
		}
	}
	visit(s)
}

func (a *analyzer) isUnrolled(f *ir.For) bool {
	return f.Unroll == -1 || a.auto[f]
}

// walk builds the timing tree and infers LSUs/DSPs as it descends.
func (a *analyzer) walk(s ir.Stmt, ctx []loopCtx) node {
	switch x := s.(type) {
	case nil:
		return &leafNode{stmts: 0}
	case *ir.Block:
		b := &blockNode{}
		for _, c := range x.Stmts {
			b.children = append(b.children, a.walk(c, ctx))
		}
		return b
	case *ir.Alloc:
		return &leafNode{stmts: 0}
	case *ir.For:
		un := a.isUnrolled(x)
		child := a.walk(x.Body, append(ctx, loopCtx{f: x, unrolled: un}))
		ln := &loopNode{extent: x.Extent, child: child}
		switch {
		case un:
			ln.mode = modeUnrolled
		case a.isSerial(x), a.isOuterGlobalAccum(x, ctx):
			ln.mode = modeSerial
		default:
			ln.mode = modePipelined
			ln.ii = a.loopII(x)
		}
		return ln
	case *ir.Store:
		a.accessSite(x.Buf, x.Index, true, ctx)
		a.exprSites(x.Value, ctx)
		a.countDSPs(x, ctx)
		return &leafNode{stmts: 1}
	case *ir.ChannelWrite:
		a.exprSites(x.Value, ctx)
		a.countDSPsExpr(x.Value, ctx, nil)
		return &leafNode{stmts: 1}
	case *ir.IfThen:
		a.exprSites(x.Cond, ctx)
		t := a.walk(x.Then, ctx)
		e := a.walk(x.Else, ctx)
		return &blockNode{children: []node{t, e}}
	}
	// Invariant: the switch is exhaustive over ir's statement kinds; a new IR
	// node must be taught to the analyzer before it can be compiled.
	panic(fmt.Sprintf("aoc: unknown stmt %T", s))
}

// exprSites records access sites for loads inside an expression.
func (a *analyzer) exprSites(e ir.Expr, ctx []loopCtx) {
	ir.WalkExpr(e, func(x ir.Expr) {
		if l, ok := x.(*ir.Load); ok {
			a.accessSite(l.Buf, l.Index, false, ctx)
		}
	})
}

// isSerial reports whether AOC must serialize the loop: its body contains two
// distinct statement regions coupled by a read-after-write dependence through
// a *global* buffer (§3.2 issue 1 — the naive TVM schedule's scratchpad).
func (a *analyzer) isSerial(f *ir.For) bool {
	blk, ok := f.Body.(*ir.Block)
	if !ok {
		return false
	}
	// Gather per-child stored and loaded global buffers.
	type rw struct{ stores, loads map[*ir.Buffer]bool }
	infos := make([]rw, len(blk.Stmts))
	for i, c := range blk.Stmts {
		infos[i] = rw{stores: map[*ir.Buffer]bool{}, loads: map[*ir.Buffer]bool{}}
		ir.WalkStmt(c, func(s ir.Stmt) {
			if st, ok := s.(*ir.Store); ok && st.Buf.Scope == ir.Global {
				infos[i].stores[st.Buf] = true
			}
		})
		collectStmtLoads(c, func(b *ir.Buffer) {
			if b.Scope == ir.Global {
				infos[i].loads[b] = true
			}
		})
	}
	for i := range infos {
		for j := range infos {
			if i == j {
				continue
			}
			for b := range infos[i].stores {
				if infos[j].loads[b] {
					return true
				}
			}
		}
	}
	return false
}

func collectStmtLoads(s ir.Stmt, fn func(*ir.Buffer)) {
	ir.WalkExprs(s, func(e ir.Expr) {
		if l, ok := e.(*ir.Load); ok {
			fn(l.Buf)
		}
	})
}

// isOuterGlobalAccum reproduces the second serialization the thesis observes
// for F>1 convolutions (§6.4.3): "in the baseline 3×3 convolution, data
// dependencies prevent pipelining in two loops". A loop that carries an
// accumulation through a *global* scratchpad and whose body still contains a
// non-unrolled inner loop region cannot overlap its iterations: each
// iteration is a variable-latency region ending in a global read-modify-
// write. Only the outermost such loop of a chain serializes (the thesis
// names ax1 and rc, not ry/rx): if the parent loop carries the same
// dependence, this one stays pipelined at the accumulation II.
func (a *analyzer) isOuterGlobalAccum(f *ir.For, ctx []loopCtx) bool {
	if !a.carriesGlobalAccum(f) {
		return false
	}
	hasInnerLoop := false
	ir.WalkStmt(f.Body, func(s ir.Stmt) {
		if inner, ok := s.(*ir.For); ok && !a.isUnrolled(inner) {
			hasInnerLoop = true
		}
	})
	if !hasInnerLoop {
		return false
	}
	for i := len(ctx) - 1; i >= 0; i-- {
		if ctx[i].unrolled {
			continue
		}
		return !a.carriesGlobalAccum(ctx[i].f)
	}
	return true
}

// carriesGlobalAccum reports whether the loop carries a dependence through a
// global self-accumulating store whose address is invariant to the loop.
func (a *analyzer) carriesGlobalAccum(f *ir.For) bool {
	found := false
	ir.WalkStmt(f.Body, func(s ir.Stmt) {
		st, ok := s.(*ir.Store)
		if !ok || st.Buf.Scope != ir.Global {
			return
		}
		selfRead := false
		ir.WalkExpr(st.Value, func(e ir.Expr) {
			if l, ok := e.(*ir.Load); ok && l.Buf == st.Buf {
				selfRead = true
			}
		})
		if !selfRead {
			return
		}
		for _, ix := range st.Index {
			if ir.UsesVar(ix, f.Var) {
				return
			}
		}
		found = true
	})
	return found
}

// loopII returns the initiation interval the loop sustains. A loop carries an
// accumulation dependence when its body stores buf[idx] = f(load buf[idx])
// with idx invariant to the loop variable; the II then depends on where the
// accumulator lives (§5.1.1) and on -fp-relaxed.
func (a *analyzer) loopII(f *ir.For) int {
	ii := 1
	ir.WalkStmt(f.Body, func(s ir.Stmt) {
		st, ok := s.(*ir.Store)
		if !ok {
			return
		}
		selfRead := false
		ir.WalkExpr(st.Value, func(e ir.Expr) {
			if l, ok := e.(*ir.Load); ok && l.Buf == st.Buf {
				selfRead = true
			}
		})
		if !selfRead {
			return
		}
		// Dependence carried by f only if the address does not advance with f.
		varies := false
		for _, ix := range st.Index {
			if ir.UsesVar(ix, f.Var) {
				varies = true
			}
		}
		if varies {
			return
		}
		var want int
		if st.Buf.Scope == ir.Global {
			want = iiGlobalAccum
		} else if a.opts.FPRelaxed {
			want = iiLocalAccumRelaxed
		} else {
			want = iiLocalAccumStrict
		}
		if want > ii {
			ii = want
		}
	})
	return ii
}

// accessSite infers the LSU for one load/store site given the enclosing loops.
func (a *analyzer) accessSite(buf *ir.Buffer, idx []ir.Expr, isWrite bool, ctx []loopCtx) {
	l := &LSU{Buf: buf, IsWrite: isWrite, WidthWords: 1, Replicas: 1, elemBytes: 4}
	if a.opts.Int8 {
		l.elemBytes = 1
	}
	if buf.Scope != ir.Global && buf.Scope != ir.Constant {
		l.Kind = Pipelined
		// On-chip accesses replicate ports with unrolling but need no
		// coalescing analysis; the banking cost lands in the area model.
		for _, c := range ctx {
			if c.unrolled {
				if coef, known := flatCoef(buf, idx, c.f.Var); !known || coef != 0 {
					n, _ := ir.IsConst(c.f.Extent)
					l.Replicas *= int(n)
				}
			}
		}
		a.model.LSUs = append(a.model.LSUs, l)
		return
	}
	l.Kind = BurstCoalesced
	if buf.ExplicitStrides {
		// Symbolic strides: AOC cannot prove contiguity or alignment (§5.3).
		l.Nonaligned = true
	}
	// Coalescing/replication across unrolled loops.
	type cu struct {
		coef   int64
		known  bool
		extent int64
	}
	var units []cu
	for _, c := range ctx {
		if !c.unrolled {
			continue
		}
		n, _ := ir.IsConst(c.f.Extent)
		coef, known := flatCoef(buf, idx, c.f.Var)
		if buf.ExplicitStrides {
			known = false
		}
		units = append(units, cu{coef: coef, known: known, extent: n})
	}
	// Vars with unit stride coalesce into one wide access (their spans
	// overlap or abut — the thesis reports width 32·W2vec·F for the conv
	// input); others extend the contiguity chain when their stride equals
	// the width accumulated so far, and replicate the LSU otherwise. Sorting
	// by stride makes the chain (rx:1, ry:F, rci:F·F) resolve regardless of
	// loop order.
	sort.SliceStable(units, func(i, j int) bool {
		if units[i].known != units[j].known {
			return units[i].known
		}
		return units[i].coef < units[j].coef
	})
	for _, u := range units {
		switch {
		case u.known && u.coef == 0:
			// Broadcast: same address for every lane.
		case u.known && u.coef == 1:
			l.WidthWords *= int(u.extent)
		case u.known && int64(l.WidthWords) == u.coef:
			// Perfectly nested contiguity chain (e.g. rci stride F·F after
			// ry,rx coalesced).
			l.WidthWords *= int(u.extent)
		case u.known && u.coef > 1 && u.coef <= strideCoalesceMax:
			// Small constant stride (e.g. stride-2 convolution columns):
			// the burst-coalesced LSU fetches the covering span and drops
			// the gaps — wider access, same unit (over-fetch is charged to
			// width, and therefore to traffic).
			l.WidthWords += int(u.coef) * (int(u.extent) - 1)
		default:
			l.Replicas *= int(u.extent)
		}
	}
	// Classify enclosing loops as address-dependent (traffic multipliers) or
	// reuse loops. A read with any non-trivial reuse loop gets a cached
	// burst-coalesced LSU (§2.4.3 "when the access pattern seems
	// repetitive"); whether the cache actually captures the reuse is decided
	// per invocation in TrafficBytes against the cache capacity.
	var innermostDep *ir.Var
	hasReuse := false
	for _, c := range ctx {
		if c.unrolled {
			continue
		}
		dependsOn := false
		for _, ix := range idx {
			if ir.UsesVar(ix, c.f.Var) {
				dependsOn = true
				break
			}
		}
		l.loops = append(l.loops, siteLoop{extent: c.f.Extent, dependent: dependsOn || isWrite})
		if dependsOn {
			innermostDep = c.f.Var
		}
		if !dependsOn && !isWrite {
			if n, constant := ir.IsConst(c.f.Extent); !constant || n > 1 {
				l.Cached = true
				hasReuse = true
			}
		}
	}
	// LSU kind refinement (§2.4.3): with no reuse and a strictly sequential
	// innermost step the compiler emits a streaming LSU; near-sequential
	// forward strides get a prefetching LSU; everything else stays
	// burst-coalesced (cached when the pattern is repetitive).
	if !l.Nonaligned && !hasReuse && innermostDep != nil {
		if coef, known := flatCoef(buf, idx, innermostDep); known && coef > 0 {
			if coef == int64(l.WidthWords) {
				l.Kind = Streaming
			} else {
				l.Kind = Prefetching
			}
		}
	}
	if isWrite {
		// RAW detection: does this kernel also load the buffer?
		loads := false
		ir.WalkExprs(a.model.Kernel.Body, func(e ir.Expr) {
			if ld, ok := e.(*ir.Load); ok && ld.Buf == buf {
				loads = true
			}
		})
		l.WriteAck = loads
	}
	if l.WidthWords > a.model.MaxWidthWords {
		a.model.MaxWidthWords = l.WidthWords
	}
	a.model.LSUs = append(a.model.LSUs, l)
}

// flatCoef computes d(flatAddress)/d(v) for a multi-dimensional access,
// returning (coef, known). Row-major strides come from the buffer shape;
// symbolic extents make any dimension with a v-dependent subscript unknown,
// except the innermost (whose stride is the constant 1) — exactly the
// property the thesis exploits with its stride-1 workaround (Listing 5.11).
func flatCoef(buf *ir.Buffer, idx []ir.Expr, v *ir.Var) (int64, bool) {
	total := int64(0)
	stride := int64(1)
	strideKnown := true
	for d := len(idx) - 1; d >= 0; d-- {
		c, ok := linCoef(idx[d], v)
		if !ok {
			return 0, false
		}
		if c != 0 {
			if !strideKnown {
				return 0, false
			}
			total += c * stride
		}
		if n, constant := ir.IsConst(buf.Shape[d]); constant {
			if strideKnown {
				stride *= n
			}
		} else {
			strideKnown = false
		}
	}
	return total, true
}

// linCoef extracts the linear coefficient of v in e; ok=false when e is not
// affine in v.
func linCoef(e ir.Expr, v *ir.Var) (int64, bool) {
	switch x := e.(type) {
	case *ir.IntImm, *ir.FloatImm:
		return 0, true
	case *ir.Var:
		if x == v {
			return 1, true
		}
		return 0, true
	case *ir.Binary:
		a, aok := linCoef(x.A, v)
		b, bok := linCoef(x.B, v)
		switch x.Op {
		case ir.Add:
			if aok && bok {
				return a + b, true
			}
		case ir.Sub:
			if aok && bok {
				return a - b, true
			}
		case ir.Mul:
			ca, isA := ir.IsConst(x.A)
			cb, isB := ir.IsConst(x.B)
			if isA && bok {
				return ca * b, true
			}
			if isB && aok {
				return a * cb, true
			}
			if aok && bok && a == 0 && b == 0 {
				return 0, true
			}
		case ir.Div, ir.Mod:
			if aok && bok && a == 0 && b == 0 {
				return 0, true
			}
		}
		return 0, false
	default:
		// Loads/calls/selects in address math: affine only if v-free.
		if !ir.UsesVar(e, v) {
			return 0, true
		}
		return 0, false
	}
}

// countDSPs charges datapath DSPs for a store's value expression, replicated
// by the enclosing unrolled loops.
func (a *analyzer) countDSPs(st *ir.Store, ctx []loopCtx) {
	a.countDSPsExpr(st.Value, ctx, st.Buf)
}

func (a *analyzer) countDSPsExpr(value ir.Expr, ctx []loopCtx, accBuf *ir.Buffer) {
	repl := 1
	for _, c := range ctx {
		if c.unrolled {
			n, _ := ir.IsConst(c.f.Extent)
			repl *= int(n)
		}
	}
	dsps := 0
	// MAC fusion with -fpc: acc = acc + a*b is one DSP.
	if accBuf != nil && a.opts.FPC {
		if bin, ok := value.(*ir.Binary); ok && bin.Op == ir.Add {
			if ld, ok := bin.A.(*ir.Load); ok && ld.Buf == accBuf {
				if mul, ok := bin.B.(*ir.Binary); ok && mul.Op == ir.Mul {
					a.model.DSPs += repl
					// Remaining operand subtrees may still hold float ops.
					a.model.DSPs += repl * countOps(mul.A)
					a.model.DSPs += repl * countOps(mul.B)
					return
				}
			}
		}
	}
	dsps = countOps(value)
	a.model.DSPs += repl * dsps
}

// countOps counts DSP-mapped float operations in an expression: mul, add,
// sub each take a DSP; divide and exp take their fixed costs; integer address
// arithmetic is free (ALMs).
func countOps(e ir.Expr) int {
	n := 0
	ir.WalkExpr(e, func(x ir.Expr) {
		switch v := x.(type) {
		case *ir.Binary:
			if isFloatExpr(v.A) || isFloatExpr(v.B) {
				switch v.Op {
				case ir.Add, ir.Sub, ir.Mul:
					n++
				case ir.Div:
					n += divDSPs
				}
			}
		case *ir.Call:
			if v.Fn == "exp" {
				n += expDSPs
			}
		}
	})
	return n
}

// isFloatExpr distinguishes datapath (float) arithmetic from address (int)
// arithmetic: anything rooted at a Load, FloatImm, ChannelRead or float call.
func isFloatExpr(e ir.Expr) bool {
	found := false
	ir.WalkExpr(e, func(x ir.Expr) {
		switch x.(type) {
		case *ir.Load, *ir.FloatImm, *ir.ChannelRead:
			found = true
		case *ir.Call:
			found = true
		}
	})
	return found
}

// area fills the kernel's resource estimate from its LSUs, loops and DSPs.
func (a *analyzer) area() {
	m := a.model
	k := m.Kernel
	res := fpga.Resources{ALUTs: kernelBaseALUT, FFs: kernelBaseFF, RAMs: kernelBaseRAM}

	// Loop control for every loop that still exists in hardware.
	ir.WalkStmt(k.Body, func(s ir.Stmt) {
		if f, ok := s.(*ir.For); ok && !a.isUnrolled(f) {
			res.ALUTs += loopALUT
			res.FFs += loopFF
		}
	})

	demand := float64(m.DSPs) * demandDSPWeight
	for _, l := range m.LSUs {
		if l.Kind == Pipelined {
			res.ALUTs += pipelinedLSUALUT * l.Replicas
			res.FFs += pipelinedLSUFF * l.Replicas
			continue
		}
		alut := float64(lsuBaseALUT + lsuPerWordALUT*l.WidthWords)
		ff := float64(lsuBaseFF + lsuPerWordFF*l.WidthWords)
		switch l.Kind {
		case Streaming:
			alut *= streamingLSUFactor
			ff *= streamingLSUFactor
		case Prefetching:
			alut *= prefetchLSUFactor
			ff *= prefetchLSUFactor
		}
		if l.Nonaligned {
			alut *= lsuNonalignedFactor
			ff *= lsuNonalignedFactor
		}
		if l.WriteAck {
			alut += lsuWriteAckALUT
		}
		// Replicas beyond the first share burst/arbitration infrastructure.
		replCost := 1 + lsuReplicaFactor*float64(l.Replicas-1)
		res.ALUTs += int(alut * replCost)
		res.FFs += int(ff * replCost)
		res.RAMs += lsuBaseRAM * l.Replicas
		eb := l.elemBytes
		if eb == 0 {
			eb = 4
		}
		d := float64(l.Replicas) * math.Sqrt(float64(l.WidthWords*8*eb))
		if l.Cached {
			res.RAMs += lsuCacheRAM * l.Replicas
			d *= demandCachedFactor
		}
		demand += d
	}

	// On-chip allocations: registers below the threshold, else banked BRAM.
	for _, b := range k.Allocs() {
		bytes := int64(registerThresholdBytes + 1) // symbolic sizes: assume BRAM
		if n, ok := b.ConstLen(); ok {
			bytes = n * 4
		}
		ports := 1
		for _, l := range m.LSUs {
			if l.Buf == b && l.Replicas > ports {
				ports = l.Replicas
			}
		}
		if bytes <= registerThresholdBytes {
			res.FFs += int(bytes) * 8
		} else {
			blocks := int((bytes + m20kBytes - 1) / m20kBytes)
			res.RAMs += blocks * ports
		}
	}

	// Constant-scope arguments become ROMs.
	for _, b := range k.Args {
		if b.Scope == ir.Constant {
			if n, ok := b.ConstLen(); ok {
				res.RAMs += int((n*4 + m20kBytes - 1) / m20kBytes)
			}
		}
	}

	// Channels.
	reads, writes := k.Channels()
	for _, ch := range append(append([]*ir.Channel{}, reads...), writes...) {
		res.ALUTs += channelALUT
		res.FFs += channelFF
		if ch.Depth > channelRegDepthMax {
			res.RAMs += 1 + ch.Depth*4/m20kBytes*channelRAMPerKBDepth
		} else {
			res.FFs += ch.Depth * 32
		}
	}

	// Integer modulo in address math (naive padding kernels).
	ir.WalkExprs(k.Body, func(e ir.Expr) {
		if b, ok := e.(*ir.Binary); ok && b.Op == ir.Mod && !isFloatExpr(b.A) {
			res.ALUTs += modALUT
		}
	})

	res.DSPs = m.DSPs
	res.ALUTs += dspGlueALUT * m.DSPs
	res.FFs += dspGlueFF * m.DSPs
	m.Area = res
	m.Demand = demand
}

func evalInt(e ir.Expr, bind map[*ir.Var]int64) int64 {
	switch x := e.(type) {
	case *ir.IntImm:
		return x.Value
	case *ir.Var:
		v, ok := bind[x]
		// Invariant: bindings are built by the Param*.Bind constructors, which
		// cover every scalar argument; a hole means a host-program bug, not a
		// user mistake.
		if !ok {
			panic(fmt.Sprintf("aoc: unbound symbolic parameter %s", x.Name))
		}
		return v
	case *ir.Binary:
		a, b := evalInt(x.A, bind), evalInt(x.B, bind)
		switch x.Op {
		case ir.Add:
			return a + b
		case ir.Sub:
			return a - b
		case ir.Mul:
			return a * b
		case ir.Div:
			return a / b
		case ir.Mod:
			return a % b
		case ir.MaxOp:
			if a > b {
				return a
			}
			return b
		case ir.MinOp:
			if a < b {
				return a
			}
			return b
		}
	}
	// Invariant: loop bounds and indices are integer expressions by IR
	// construction; a float here means a topi/schedule bug.
	panic(fmt.Sprintf("aoc: cannot evaluate %T as int", e))
}
