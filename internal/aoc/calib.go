package aoc

// Calibration constants for the AOC/Quartus model. These are the "physics"
// of the simulated toolchain. They were tuned so that the shapes reported in
// the thesis's evaluation hold: the optimization ladder for LeNet, the
// tiling-sweep area/fmax trends of Table 6.6, the fit failures of the naive
// MobileNet/ResNet designs on the Arria 10, and the routing failures of the
// 7/16/8 (S10SX) and 7/32/8 (S10MX) tiling configurations. They are not
// per-experiment fudge factors: one set of constants drives every table.
const (
	// ---- initiation intervals (§2.4.4, §5.1.1) ----

	// iiGlobalAccum is the II of a reduction that accumulates through a
	// global-memory scratchpad: load + fadd + store round trip (the naive
	// TVM schedule; the thesis measures II=5).
	iiGlobalAccum = 5
	// iiLocalAccumRelaxed is the II of a private-register accumulator when
	// -fp-relaxed allows the single-cycle accumulator to be inferred.
	iiLocalAccumRelaxed = 1
	// iiLocalAccumStrict applies without -fp-relaxed: the floating add's
	// latency becomes loop-carried.
	iiLocalAccumStrict = 4

	// pipelineFill is the depth of a pipelined loop nest: cycles to fill and
	// drain once per entry into the nest.
	pipelineFill = 42
	// serialLoopOverhead is the per-iteration penalty of a loop AOC cannot
	// pipeline (control re-steering between the body's regions).
	serialLoopOverhead = 6
	// leafStmtCycles is the issue cost of one straight-line statement region.
	leafStmtCycles = 1

	// autoUnrollMaxTrip is the largest constant trip count Quartus < 19.1
	// unrolls automatically (covers the F×F = 9 case in the thesis), and
	// autoUnrollMaxRepl bounds the total automatic replication.
	autoUnrollMaxTrip = 9
	autoUnrollMaxRepl = 81

	// ---- area model (ALUT/FF/RAM/DSP) ----

	// Fixed cost of one kernel's control: dispatch, ID generators, state.
	kernelBaseALUT = 4000
	kernelBaseFF   = 7500
	kernelBaseRAM  = 9

	// Loop-control hardware per (non-fully-unrolled) loop.
	loopALUT = 240
	loopFF   = 410

	// Burst-coalesced LSU costs (§2.4.3): a base plus a per-width term.
	lsuBaseALUT    = 1300
	lsuBaseFF      = 2400
	lsuPerWordALUT = 230 // per 32-bit lane of access width
	lsuPerWordFF   = 420
	lsuBaseRAM     = 4 // burst buffering
	// Streaming and prefetching LSUs (§2.4.3) are simpler than
	// burst-coalesced units: a FIFO plus sequential address generation.
	streamingLSUFactor = 0.55
	prefetchLSUFactor  = 0.85

	// Nonaligned LSUs (unprovable alignment, e.g. symbolic strides) need the
	// realignment network.
	lsuNonalignedFactor = 1.8
	// Cached burst-coalesced LSUs add a BRAM cache; AOC sizes it 256–512 kbit
	// when the footprint is not statically known (§2.4.3). In M20Ks:
	lsuCacheRAM = 30
	// Write LSUs with a RAW dependence run in write-ack mode.
	lsuWriteAckALUT = 900

	// strideCoalesceMax is the largest constant element stride the burst-
	// coalesced LSU covers by over-fetching the span instead of replicating.
	strideCoalesceMax = 4

	// lsuReplicaFactor discounts LSU copies beyond the first: replicated
	// LSUs share burst/arbitration infrastructure.
	lsuReplicaFactor = 0.5

	// Pipelined (on-chip) LSU cost per access site.
	pipelinedLSUALUT = 160
	pipelinedLSUFF   = 240

	// DSP glue logic per DSP block.
	dspGlueALUT = 34
	dspGlueFF   = 68

	// M20K block payload in bytes (20 kbit).
	m20kBytes = 2560
	// Private arrays at or below this byte size become registers (§2.4.2).
	registerThresholdBytes = 64

	// Channel endpoint cost; FIFO storage beyond a cutoff goes to BRAM.
	channelALUT          = 90
	channelFF            = 150
	channelRegDepthMax   = 64 // deeper FIFOs spill into M20Ks
	channelRAMPerKBDepth = 1

	// Expensive scalarized float ops (softmax): DSPs for exp and divide.
	expDSPs = 8
	divDSPs = 4
	// Integer modulo in address math (the naive padding kernel) costs logic.
	modALUT = 900

	// ---- fmax model ----

	// fmaxUtilPenalty scales the quadratic utilization term.
	fmaxUtilPenalty = 0.42
	// fmaxDemandPenalty scales the per-kernel routing-demand term.
	fmaxDemandPenalty = 0.52
	// fmaxKernelPenalty is the cost of each additional kernel clock region.
	fmaxKernelPenalty = 0.013
	fmaxFloorMHz      = 55

	// ---- routing model ----

	// routeLogicLimit: the fitter fails designs above this logic fraction.
	routeLogicLimit = 0.94
	routeRAMLimit   = 0.97
	// demandCached weights cached LSUs (their BRAM halo) in the congestion
	// metric; demandDSPWeight charges operand-distribution fanout.
	demandCachedFactor = 1.5
	demandDSPWeight    = 3.0
)

// routeCapacity is the per-board abstract routing capacity against which the
// worst kernel's congestion demand is compared. Written only at package init
// and read concurrently by Compile/CompileCached workers — do not mutate at
// runtime. The relative ordering is not
// monotone in die size because the three BSPs/Quartus versions differ — the
// thesis observes exactly this (§6.5: 7/16/8 fails on the larger S10SX while
// the A10 routes 987-DSP configurations at degraded fmax).
var routeCapacity = map[string]float64{
	"A10":   4000,
	"S10SX": 2950,
	"S10MX": 5600,
}
