package aoc

// Compile-result memoization. A design-space explorer compiles hundreds of
// designs whose kernel sets overlap heavily: every candidate shares the
// depthwise/dense/pad/pool/softmax kernels verbatim, and each ConvSched
// appears in many candidates (the search is a cross product of per-signature
// tilings). Re-running Analyze on structurally identical kernels dominates
// exploration time, so CompileCached keys each per-kernel analysis on a
// canonical structural fingerprint and reuses the KernelModel.
//
// Concurrency: CompileCache is safe for concurrent use. Each distinct
// fingerprint is analyzed exactly once (duplicate concurrent requests wait on
// the first via sync.Once), which also makes the hit/miss counters
// deterministic for a deterministic multiset of lookups, independent of
// worker interleaving: entry creation happens under the shard lock, so
// exactly one lookup per fingerprint counts as a miss. The cached
// *KernelModel is shared across designs; this is sound because a KernelModel
// is immutable after Analyze returns — Cycles, TrafficBytes and TimeUS are
// pure functions of the model and the bindings.
//
// The entry map is sharded across cacheShards independently locked segments
// keyed on a hash of the kernel fingerprint. On a warm cache a lookup is a
// fingerprint render plus one short critical section; with a single mutex the
// guided explorer's evaluation workers serialize on that section at high
// worker counts (every worker fingerprints every kernel of every candidate),
// so the shards keep the hot path contention-free while preserving the
// exactly-once analysis guarantee per fingerprint (each fingerprint maps to
// exactly one shard).

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/fpga"
	"repro/internal/ir"
)

// cacheShards is the number of independently locked cache segments. 32 is
// comfortably above any worker count the explorer runs with, and small enough
// that Len's full sweep stays trivial.
const cacheShards = 32

// CompileObserver receives one callback per memoized kernel analysis lookup.
// It is defined here (and satisfied structurally by the observability layer)
// because the dependency arrow must point out of aoc: the trace package sits
// above the runtime, which sits above the compiler model.
type CompileObserver interface {
	// ObserveCompile reports one lookup: the kernel's name and whether the
	// analysis was served from the cache.
	ObserveCompile(kernel string, hit bool)
}

// CompileCache memoizes per-kernel Analyze results across designs. The zero
// value is not usable; construct with NewCompileCache. A nil *CompileCache is
// accepted everywhere and disables memoization.
type CompileCache struct {
	shards [cacheShards]cacheShard
	// obs is read on every lookup and written rarely; an atomic pointer keeps
	// the read off the shard locks.
	obs    atomic.Pointer[CompileObserver]
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	m    *KernelModel
	err  error
}

// NewCompileCache returns an empty thread-safe compile cache.
func NewCompileCache() *CompileCache {
	c := &CompileCache{}
	for i := range c.shards {
		c.shards[i].entries = map[string]*cacheEntry{}
	}
	return c
}

// shardFor maps a fingerprint to its shard with FNV-1a; any well-mixed hash
// works, the only requirement is that equal keys always land on the same
// shard so the exactly-once analysis guarantee holds.
func shardFor(key string) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return uint32(h % cacheShards)
}

// SetObserver installs an observer called on every lookup (nil removes it).
// The observer must be safe for concurrent use: the explorer analyzes from
// many workers at once. Nil-safe on the cache.
func (c *CompileCache) SetObserver(o CompileObserver) {
	if c == nil {
		return
	}
	if o == nil {
		c.obs.Store(nil)
		return
	}
	c.obs.Store(&o)
}

// Stats returns the cumulative hit/miss counters. Nil-safe.
func (c *CompileCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// HitRate returns hits/(hits+misses), or 0 before any lookup. Nil-safe.
func (c *CompileCache) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of distinct kernels cached. Nil-safe.
func (c *CompileCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// analyze returns the memoized Analyze result for the kernel, computing it
// (exactly once per fingerprint) on a miss. A nil cache analyzes directly.
func (c *CompileCache) analyze(k *ir.Kernel, board *fpga.Board, opts Options) (*KernelModel, error) {
	if c == nil {
		return Analyze(k, board, opts)
	}
	key := Fingerprint(k, board, opts)
	sh := &c.shards[shardFor(key)]
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		e = &cacheEntry{}
		sh.entries[key] = e
	}
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	if obs := c.obs.Load(); obs != nil {
		(*obs).ObserveCompile(k.Name, ok)
	}
	e.once.Do(func() { e.m, e.err = Analyze(k, board, opts) })
	return e.m, e.err
}

// Fingerprint renders a canonical structural key for a kernel compilation:
// everything Analyze reads — board, compiler options, kernel name and autorun
// flag, scalar args, argument buffer metadata (scope, element type, shape
// expressions, the ExplicitStrides flag that drives the §5.3 alignment
// behaviour), and the full loop/statement tree with unroll marks (which also
// covers allocs, channels and every buffer/var reference). Two kernels with
// equal fingerprints produce identical KernelModels. Buffer and channel
// identity is represented by name, which the topi generators keep unique
// within a kernel.
//
// The key is built by a direct byte-appending IR walk rather than ir.Dump:
// the explorer fingerprints every kernel of every candidate, so on a warm
// cache this is the whole cost of a lookup and must stay well under the cost
// of Analyze itself.
func Fingerprint(k *ir.Kernel, board *fpga.Board, opts Options) string {
	f := fingerprinter{buf: make([]byte, 0, 1<<12)}
	f.str(board.Name)
	f.bools(opts.FPRelaxed, opts.FPC, opts.Int8, k.Autorun)
	f.str(k.Name)
	for _, v := range k.ScalarArgs {
		f.str(v.Name)
	}
	for _, buf := range k.Args {
		f.buffer(buf)
	}
	f.stmt(k.Body)
	return string(f.buf)
}

// fingerprinter serializes IR into a compact canonical byte form. Each node
// is emitted as a one-byte tag followed by its fields, with strings
// length-prefixed so distinct trees can never serialize identically.
type fingerprinter struct{ buf []byte }

func (f *fingerprinter) str(s string) {
	f.buf = strconv.AppendInt(f.buf, int64(len(s)), 10)
	f.buf = append(f.buf, ':')
	f.buf = append(f.buf, s...)
}

func (f *fingerprinter) int(n int64) {
	f.buf = strconv.AppendInt(f.buf, n, 10)
	f.buf = append(f.buf, ';')
}

func (f *fingerprinter) bools(bs ...bool) {
	for _, b := range bs {
		if b {
			f.buf = append(f.buf, '1')
		} else {
			f.buf = append(f.buf, '0')
		}
	}
}

func (f *fingerprinter) buffer(b *ir.Buffer) {
	f.buf = append(f.buf, 'B')
	f.str(b.Name)
	f.int(int64(b.Scope))
	f.int(int64(b.Elem))
	f.bools(b.ExplicitStrides)
	f.int(int64(len(b.Shape)))
	for _, d := range b.Shape {
		f.expr(d)
	}
}

func (f *fingerprinter) stmt(s ir.Stmt) {
	switch x := s.(type) {
	case nil:
		f.buf = append(f.buf, '_')
	case *ir.Block:
		f.buf = append(f.buf, '{')
		for _, c := range x.Stmts {
			f.stmt(c)
		}
		f.buf = append(f.buf, '}')
	case *ir.Alloc:
		f.buf = append(f.buf, 'A')
		f.buffer(x.Buf)
	case *ir.For:
		f.buf = append(f.buf, 'F')
		f.str(x.Var.Name)
		f.int(int64(x.Unroll))
		f.expr(x.Extent)
		f.stmt(x.Body)
	case *ir.Store:
		f.buf = append(f.buf, '=')
		f.str(x.Buf.Name)
		f.int(int64(len(x.Index)))
		for _, e := range x.Index {
			f.expr(e)
		}
		f.expr(x.Value)
	case *ir.ChannelWrite:
		f.buf = append(f.buf, 'W')
		f.str(x.Ch.Name)
		f.int(int64(x.Ch.Depth))
		f.expr(x.Value)
	case *ir.IfThen:
		f.buf = append(f.buf, '?')
		f.expr(x.Cond)
		f.stmt(x.Then)
		f.stmt(x.Else)
	default:
		// New statement kinds must be added here before they can be cached.
		panic("aoc: fingerprint: unknown stmt")
	}
}

func (f *fingerprinter) expr(e ir.Expr) {
	switch x := e.(type) {
	case *ir.IntImm:
		f.buf = append(f.buf, 'i')
		f.int(x.Value)
	case *ir.FloatImm:
		f.buf = append(f.buf, 'f')
		f.buf = strconv.AppendUint(f.buf, math.Float64bits(x.Value), 16)
		f.buf = append(f.buf, ';')
	case *ir.Var:
		f.buf = append(f.buf, 'v')
		f.str(x.Name)
		f.bools(x.Param)
	case *ir.Binary:
		f.buf = append(f.buf, 'b')
		f.int(int64(x.Op))
		f.expr(x.A)
		f.expr(x.B)
	case *ir.Call:
		f.buf = append(f.buf, 'c')
		f.str(x.Fn)
		f.int(int64(len(x.Args)))
		for _, a := range x.Args {
			f.expr(a)
		}
	case *ir.Load:
		f.buf = append(f.buf, 'l')
		f.str(x.Buf.Name)
		f.int(int64(len(x.Index)))
		for _, i := range x.Index {
			f.expr(i)
		}
	case *ir.ChannelRead:
		f.buf = append(f.buf, 'r')
		f.str(x.Ch.Name)
		f.int(int64(x.Ch.Depth))
	case *ir.Select:
		f.buf = append(f.buf, 's')
		f.expr(x.Cond)
		f.expr(x.A)
		f.expr(x.B)
	default:
		// New expression kinds must be added here before they can be cached.
		panic("aoc: fingerprint: unknown expr")
	}
}
