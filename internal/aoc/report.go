package aoc

// AOC-style reports: the "optimization report" (loop analysis with pipelining
// status and II, as `aoc -rtl` emits) and the "area report" (per-kernel
// resource estimate with LSU details). The thesis reads exactly these
// artifacts to diagnose its kernels (§2.4, §5.1); this file renders our
// model's equivalents.

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// OptimizationReport renders the loop analysis for one kernel: every loop
// with its trip count, pipelining verdict and initiation interval, with the
// serialization causes AOC prints ("out-of-order outer loop", "memory
// dependency").
func (m *KernelModel) OptimizationReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel: %s\n", m.Kernel.Name)
	if m.Kernel.Autorun {
		b.WriteString("  autorun kernel (no host dispatch)\n")
	}
	var walk func(n node, depth int)
	walk = func(n node, depth int) {
		ind := strings.Repeat("  ", depth+1)
		switch x := n.(type) {
		case *loopNode:
			ext := "?"
			if c, ok := ir.IsConst(x.extent); ok {
				ext = fmt.Sprintf("%d", c)
			} else {
				ext = x.extent.String()
			}
			switch x.mode {
			case modeUnrolled:
				fmt.Fprintf(&b, "%sLoop (trip %s): FULLY UNROLLED\n", ind, ext)
			case modeSerial:
				fmt.Fprintf(&b, "%sLoop (trip %s): NOT pipelined — serialized by a global-memory dependency\n", ind, ext)
			default:
				fmt.Fprintf(&b, "%sLoop (trip %s): pipelined, II=%d\n", ind, ext, maxInt(x.ii, 1))
			}
			walk(x.child, depth+1)
		case *blockNode:
			for _, c := range x.children {
				walk(c, depth)
			}
		case *leafNode:
			if x.stmts > 0 {
				fmt.Fprintf(&b, "%s%d statement(s)\n", ind, x.stmts)
			}
		}
	}
	walk(m.root, 0)
	return b.String()
}

// AreaReport renders the per-kernel resource estimate with the LSU detail
// table (type, width, replication, caching, alignment).
func (m *KernelModel) AreaReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel: %s\n", m.Kernel.Name)
	fmt.Fprintf(&b, "  ALUTs: %d  FFs: %d  RAMs: %d  DSPs: %d\n",
		m.Area.ALUTs, m.Area.FFs, m.Area.RAMs, m.Area.DSPs)
	fmt.Fprintf(&b, "  Load-store units:\n")
	for _, l := range m.LSUs {
		if l.Kind == Pipelined {
			fmt.Fprintf(&b, "    %-16s %-10s pipelined (on-chip), ports x%d\n",
				l.Buf.Name, rw(l.IsWrite), l.Replicas)
			continue
		}
		attrs := []string{}
		if l.Cached {
			attrs = append(attrs, "cached")
		}
		if l.Nonaligned {
			attrs = append(attrs, "non-aligned")
		}
		if l.WriteAck {
			attrs = append(attrs, "write-ack")
		}
		fmt.Fprintf(&b, "    %-16s %-10s %s, %d-bit x%d %s\n",
			l.Buf.Name, rw(l.IsWrite), l.Kind, 32*l.WidthWords, l.Replicas, strings.Join(attrs, ","))
	}
	return b.String()
}

func rw(isWrite bool) string {
	if isWrite {
		return "store"
	}
	return "load"
}

// DesignReport renders the full Quartus-style fit summary for a design:
// per-kernel area, totals against the board, fmax and the route verdict.
func (d *Design) DesignReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Design %s on %s (%s)\n", d.Name, d.Board.Name, d.Board.SKU)
	fmt.Fprintf(&b, "%-20s %10s %10s %8s %7s %9s\n", "kernel", "ALUTs", "FFs", "RAMs", "DSPs", "demand")
	for _, m := range d.Kernels {
		fmt.Fprintf(&b, "%-20s %10d %10d %8d %7d %9.0f\n",
			m.Kernel.Name, m.Area.ALUTs, m.Area.FFs, m.Area.RAMs, m.Area.DSPs, m.Demand)
	}
	fmt.Fprintf(&b, "%-20s %10d %10d %8d %7d\n", "kernel system", d.Area.ALUTs, d.Area.FFs, d.Area.RAMs, d.Area.DSPs)
	st := d.Board.Static
	fmt.Fprintf(&b, "%-20s %10d %10d %8d %7d\n", "static partition", st.ALUTs, st.FFs, st.RAMs, st.DSPs)
	logic, _, ram, dsp := d.TotalArea.Utilization(d.Board.Total)
	fmt.Fprintf(&b, "%-20s %9.0f%% %10s %7.0f%% %6.0f%%\n", "utilization", logic*100, "", ram*100, dsp*100)
	fmt.Fprintf(&b, "fmax: %.0f MHz\n", d.FmaxMHz)
	switch {
	case !d.Fits:
		fmt.Fprintf(&b, "FIT: FAILED — insufficient %s\n", d.FailReason)
	case !d.Routed:
		fmt.Fprintf(&b, "ROUTE: FAILED — congestion (demand %.0f > capacity %.0f)\n", d.WorstDemand, d.Capacity)
	default:
		b.WriteString("FIT: ok  ROUTE: ok\n")
	}
	return b.String()
}
