// Package clrt is a discrete-event simulator of the Intel OpenCL host
// runtime as the thesis's custom host program drives it (§5.2): contexts,
// in-order command queues, device buffers, events with profiling timestamps,
// host→device/device→host transfers over a shared PCIe link, kernel
// execution serialized per compute unit, Intel channels coupling concurrent
// kernels into pipelines, and autorun kernels that run without host control.
//
// Time is simulated in microseconds; nothing here consults the wall clock,
// so every experiment is deterministic. Kernel durations come from the AOC
// cycle/traffic model; the runtime adds what the runtime really adds —
// enqueue overhead, dispatch latency, transfer time, queue serialization and
// profiling costs. Those overheads are exactly the quantities the thesis's
// Autorun and Concurrent-Execution optimizations attack.
package clrt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/aoc"
	"repro/internal/fault"
	"repro/internal/ir"
)

// ErrChannelDrain marks a channel dataflow whose fixed-point propagation
// never converges: a cyclic channel topology that can never drain. On
// hardware this is a hang; here it is a returned diagnostic.
var ErrChannelDrain = errors.New("clrt: channel dataflow does not converge (cyclic channel topology that can never drain)")

const (
	// dispatchUS is the device-side cost of launching a host-controlled
	// kernel (ID dispatch logic); autorun kernels avoid it (§4.7).
	dispatchUS = 11.0
	// stageLatencyUS is the channel hand-off latency between pipelined
	// kernels (fill of the downstream datapath).
	stageLatencyUS = 2.0
	// profilingOverheadUS is added to every command when the OpenCL event
	// profiler is enabled; profiling also forces blocking semantics (§5.2).
	profilingOverheadUS = 18.0
)

// Event mirrors a cl_event with profiling info.
type Event struct {
	Kind     string // "write", "read", "kernel"
	Name     string
	QueuedUS float64
	StartUS  float64
	EndUS    float64
	// Queue is the index (creation order) of the command queue the event ran
	// on — the trace exporter renders one track per queue.
	Queue int
	// Bytes is the transfer payload size for write/read events (0 for
	// kernels); with the duration it yields the effective PCIe bandwidth.
	Bytes int
	// StallUS is the portion of a kernel's span spent waiting for channel
	// producers to finish (the §4.6 rate-mismatch back-pressure): the amount
	// its end was pushed past start+modeled-duration by chanDone coupling.
	StallUS float64
	// Corrupt marks a transfer whose payload was damaged in flight by an
	// injected fault (the host detects it by checksum and re-transfers).
	Corrupt bool
	// Stalled marks a kernel execution inflated by an injected stall; only a
	// watchdog deadline catches it.
	Stalled bool
}

// Duration returns the command's execution span in microseconds.
func (e *Event) Duration() float64 { return e.EndUS - e.StartUS }

// Buffer is a device-side cl_mem allocation.
type Buffer struct {
	Name  string
	Bytes int

	writeAvail float64 // completion time of the last writer
	readAvail  float64 // completion time of the last reader
}

// Context holds one programmed device: the compiled design plus simulation
// state (PCIe link, per-kernel compute-unit availability, channel dataflow).
type Context struct {
	Design *aoc.Design
	// Profiling enables per-event timestamps and, as in the thesis's host
	// code, disables asynchronous/concurrent execution benefits by forcing
	// a sync after every command.
	Profiling bool
	// Injector, when set, injects deterministic faults into transfers,
	// enqueues and kernel executions. nil (the default) is inert.
	Injector *fault.Injector

	hostUS    float64
	pcieAvail float64
	// kernelAvail serializes executions per compute unit.
	kernelAvail map[string]float64
	// chanReady is the time a channel's stream becomes available to a
	// consumer (producer start + stage latency); chanDone is when the full
	// stream has been written.
	chanReady map[*ir.Channel]float64
	chanDone  map[*ir.Channel]float64
	events    []*Event
	queues    []*Queue
}

// NewContext programs the device with a synthesizable design.
func NewContext(d *aoc.Design) (*Context, error) {
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("clrt: cannot program device: %w", err)
	}
	return &Context{
		Design:      d,
		kernelAvail: map[string]float64{},
		chanReady:   map[*ir.Channel]float64{},
		chanDone:    map[*ir.Channel]float64{},
	}, nil
}

// NewBuffer allocates a device buffer.
func (c *Context) NewBuffer(name string, bytes int) *Buffer {
	return &Buffer{Name: name, Bytes: bytes}
}

// Queue is a command queue. In-order queues serialize their commands; an
// out-of-order queue (§2.3.2) lets commands run as soon as their explicit
// event dependencies and buffer hazards allow.
type Queue struct {
	ctx     *Context
	id      int
	avail   float64
	inOrder bool
}

// ID returns the queue's index in context creation order.
func (q *Queue) ID() int { return q.id }

// NewQueue creates an in-order command queue.
func (c *Context) NewQueue() *Queue {
	q := &Queue{ctx: c, id: len(c.queues), inOrder: true}
	c.queues = append(c.queues, q)
	return q
}

// NewOutOfOrderQueue creates an out-of-order command queue: commands on it
// are not serialized against each other; the programmer synchronizes with
// explicit event wait lists (§2.3.2).
func (c *Context) NewOutOfOrderQueue() *Queue {
	q := &Queue{ctx: c, id: len(c.queues)}
	c.queues = append(c.queues, q)
	return q
}

// gate returns the queue-ordering constraint for a new command.
func (q *Queue) gate() float64 {
	if q.inOrder {
		return q.avail
	}
	return 0
}

// release records a command's completion on the queue.
func (q *Queue) release(end float64) {
	if end > q.avail {
		q.avail = end
	}
}

func (c *Context) record(ev *Event) *Event {
	c.events = append(c.events, ev)
	return ev
}

// host advances the host cursor over one enqueue call and returns the
// enqueue timestamp. The per-call cost is a property of the platform's host
// system (fpga.Board.EnqueueUS) — it is the overhead the Autorun
// optimization eliminates for weight-less kernels (§4.7).
func (c *Context) host() float64 {
	c.hostUS += c.Design.Board.EnqueueUS
	if c.Profiling {
		c.hostUS += profilingOverheadUS
	}
	return c.hostUS
}

// EnqueueWrite transfers bytes from host to device. An injected transfer
// fault surfaces as an error: a hard failure costs only the enqueue call; a
// corruption completes the transfer (the PCIe time is spent) but returns the
// error alongside the event, the way a checksum-detecting host sees it.
func (q *Queue) EnqueueWrite(b *Buffer, bytes int) (*Event, error) {
	c := q.ctx
	queued := c.host()
	ferr := c.Injector.Transfer("write "+b.Name, queued)
	if ferr != nil && ferr.Kind == fault.TransferFail {
		return nil, ferr
	}
	start := math.Max(math.Max(queued, q.gate()), c.pcieAvail)
	start = math.Max(start, math.Max(b.readAvail, b.writeAvail))
	dur := c.Design.Board.PCIe.WriteTimeUS(bytes)
	end := start + dur
	q.release(end)
	c.pcieAvail, b.writeAvail = end, end
	if c.Profiling {
		c.hostUS = math.Max(c.hostUS, end) // blocking wait for the event
	}
	ev := c.record(&Event{Kind: "write", Name: b.Name, QueuedUS: queued, StartUS: start, EndUS: end,
		Queue: q.id, Bytes: bytes, Corrupt: ferr != nil})
	if ferr != nil {
		return ev, ferr
	}
	return ev, nil
}

// EnqueueRead transfers bytes from device to host and blocks the host until
// complete (the thesis's host reads back results synchronously). Injected
// faults surface as for EnqueueWrite.
func (q *Queue) EnqueueRead(b *Buffer, bytes int) (*Event, error) {
	c := q.ctx
	queued := c.host()
	ferr := c.Injector.Transfer("read "+b.Name, queued)
	if ferr != nil && ferr.Kind == fault.TransferFail {
		return nil, ferr
	}
	start := math.Max(math.Max(queued, q.gate()), c.pcieAvail)
	start = math.Max(start, b.writeAvail)
	dur := c.Design.Board.PCIe.ReadTimeUS(bytes)
	end := start + dur
	q.release(end)
	c.pcieAvail, b.readAvail = end, end
	c.hostUS = math.Max(c.hostUS, end)
	ev := c.record(&Event{Kind: "read", Name: b.Name, QueuedUS: queued, StartUS: start, EndUS: end,
		Queue: q.id, Bytes: bytes, Corrupt: ferr != nil})
	if ferr != nil {
		return ev, ferr
	}
	return ev, nil
}

// KernelCall describes one kernel invocation.
type KernelCall struct {
	Name string
	// Bindings give values to symbolic shape parameters (parameterized
	// kernels, §4.9); nil for constant-shape kernels.
	Bindings map[*ir.Var]int64
	// Reads/Writes list the global buffers this invocation touches, for
	// hazard tracking.
	Reads  []*Buffer
	Writes []*Buffer
	// Wait lists events that must complete before the kernel starts (the
	// explicit synchronization out-of-order queues require, §2.3.2).
	Wait []*Event
}

// EnqueueKernel launches a host-controlled kernel. Channel-coupled upstream
// producers (including autorun kernels) gate its start; its own channel
// writes become available to downstream consumers one stage-latency after it
// starts, which is what lets concurrently-enqueued kernels overlap into a
// pipeline (§4.6/§4.8).
func (q *Queue) EnqueueKernel(call KernelCall) (*Event, error) {
	c := q.ctx
	m := c.Design.Model(call.Name)
	if m == nil {
		return nil, fmt.Errorf("clrt: kernel %q not in design %s", call.Name, c.Design.Name)
	}
	if m.Kernel.Autorun {
		return nil, fmt.Errorf("clrt: kernel %q is autorun; it cannot be enqueued", call.Name)
	}
	queued := c.host()
	if ferr := c.Injector.Enqueue("kernel "+call.Name, queued); ferr != nil {
		return nil, ferr
	}
	start := math.Max(queued, q.gate())
	start = math.Max(start, c.kernelAvail[call.Name])
	for _, w := range call.Wait {
		start = math.Max(start, w.EndUS)
	}
	for _, b := range call.Reads {
		start = math.Max(start, b.writeAvail)
	}
	for _, b := range call.Writes {
		start = math.Max(start, math.Max(b.readAvail, b.writeAvail))
	}
	reads, writes := m.Kernel.Channels()
	for _, ch := range reads {
		if r, ok := c.chanReady[ch]; ok {
			start = math.Max(start, r)
		}
	}
	dur := m.TimeUS(call.Bindings, c.Design.FmaxMHz, c.Design.Board) + dispatchUS
	stall := c.Injector.Stall("kernel "+call.Name, queued)
	dur *= stall
	end := start + dur
	// A channel consumer cannot finish before its producers have finished
	// producing (unequal rates stall the pipeline, §4.6).
	for _, ch := range reads {
		if d, ok := c.chanDone[ch]; ok {
			end = math.Max(end, d+stageLatencyUS)
		}
	}
	chanStallUS := end - (start + dur)
	q.release(end)
	c.kernelAvail[call.Name] = end
	for _, b := range call.Reads {
		b.readAvail = math.Max(b.readAvail, end)
	}
	for _, b := range call.Writes {
		b.writeAvail = end
	}
	for _, ch := range writes {
		c.chanReady[ch] = start + stageLatencyUS
		c.chanDone[ch] = end
	}
	if c.Profiling {
		c.hostUS = math.Max(c.hostUS, end)
	}
	ev := c.record(&Event{Kind: "kernel", Name: call.Name, QueuedUS: queued, StartUS: start, EndUS: end,
		Queue: q.id, StallUS: chanStallUS, Stalled: stall > 1})
	if err := c.runAutorun(ev); err != nil {
		return ev, err
	}
	return ev, nil
}

// runAutorun propagates data through autorun kernels downstream of a just-
// executed producer: they consume from channels as data arrives and publish
// their own outputs, without any host interaction (§4.7).
//
// The propagation iterates to a fixed point. For any acyclic channel
// topology the fixed point is reached within one pass per pipeline stage; a
// cycle through autorun kernels keeps pushing channel timestamps forward
// forever — on hardware, a design that can never drain. The loop is
// therefore bounded: exceeding the cap returns ErrChannelDrain instead of
// hanging the simulator.
func (c *Context) runAutorun(producer *Event) error {
	// Any DAG converges in at most one iteration per autorun stage (plus one
	// to observe quiescence); the slack covers degenerate single-kernel sets.
	maxIters := 2*len(c.Design.Kernels) + 8
	iters := 0
	// Iterate to a fixed point over autorun kernels whose input channels got
	// fresh data.
	for changed := true; changed; {
		changed = false
		if iters++; iters > maxIters {
			return fmt.Errorf("design %s: autorun propagation exceeded %d iterations after kernel %s: %w",
				c.Design.Name, maxIters, producer.Name, ErrChannelDrain)
		}
		for _, m := range c.Design.Kernels {
			if !m.Kernel.Autorun {
				continue
			}
			reads, writes := m.Kernel.Channels()
			if len(reads) == 0 {
				continue
			}
			start := 0.0
			ok := true
			for _, ch := range reads {
				r, has := c.chanReady[ch]
				if !has {
					ok = false
					break
				}
				start = math.Max(start, r)
			}
			if !ok {
				continue
			}
			dur := m.TimeUS(nil, c.Design.FmaxMHz, c.Design.Board)
			end := start + dur
			for _, ch := range reads {
				if d, has := c.chanDone[ch]; has {
					end = math.Max(end, d+stageLatencyUS)
				}
			}
			for _, ch := range writes {
				nr := start + stageLatencyUS
				nd := end
				if c.chanReady[ch] != nr || c.chanDone[ch] != nd {
					c.chanReady[ch], c.chanDone[ch] = nr, nd
					changed = true
				}
			}
			if len(writes) == 0 && end > producer.EndUS {
				// Terminal autorun consumer extends the pipeline.
				producer.EndUS = end
			}
		}
	}
	return nil
}

// Finish blocks the host until all queues drain (clFinish on every queue).
func (c *Context) Finish() {
	for _, q := range c.queues {
		c.hostUS = math.Max(c.hostUS, q.avail)
	}
	c.hostUS = math.Max(c.hostUS, c.pcieAvail)
	for _, t := range c.kernelAvail {
		c.hostUS = math.Max(c.hostUS, t)
	}
	for _, d := range c.chanDone {
		c.hostUS = math.Max(c.hostUS, d)
	}
}

// ElapsedUS is the current simulated host time.
func (c *Context) ElapsedUS() float64 { return c.hostUS }

// AdvanceHost moves the host cursor forward by us microseconds — the
// simulated-time equivalent of the host sleeping, used by the resilience
// layer's retry backoff.
func (c *Context) AdvanceHost(us float64) {
	if us > 0 {
		c.hostUS += us
	}
}

// WatchdogExceeded returns the first event starting at or after sinceUS
// whose execution span exceeds deadlineUS — the watchdog a real host arms on
// queue completion to catch stalled kernels (which OpenCL never reports as
// errors). Returns nil when every command met the deadline.
func (c *Context) WatchdogExceeded(sinceUS, deadlineUS float64) *Event {
	if deadlineUS <= 0 {
		return nil
	}
	for _, e := range c.events {
		if e.StartUS >= sinceUS && e.Duration() > deadlineUS {
			return e
		}
	}
	return nil
}

// Events returns all recorded events in enqueue order.
func (c *Context) Events() []*Event { return c.events }

// Breakdown sums event durations by kind, for the Fig. 6.2 profile.
func (c *Context) Breakdown() map[string]float64 {
	out := map[string]float64{}
	for _, e := range c.events {
		out[e.Kind] += e.Duration()
	}
	return out
}

// BreakdownByName sums kernel event durations per kernel name, for the
// per-operation profiles of Tables 6.8/6.16.
func (c *Context) BreakdownByName() map[string]float64 {
	out := map[string]float64{}
	for _, e := range c.events {
		if e.Kind == "kernel" {
			out[e.Name] += e.Duration()
		}
	}
	return out
}

// SortedKinds returns breakdown keys in deterministic order.
func SortedKinds(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
