package clrt

// Double buffering (§4.8 / the thesis's concurrent-queue optimization): the
// host allocates a small ring of device buffers per logical stream and
// alternates through them image by image. Because each Buffer carries its own
// read/write-availability hazards while the PCIe link and compute units are
// shared, rotating buffers lets image i+1's H2D transfer start while image
// i's kernels still hold the other buffer — the runtime model then reports
// how much transfer time was hidden behind compute.

import (
	"fmt"
	"math"
	"sort"
)

// BufferRing is a fixed ring of same-sized device buffers backing one logical
// stream (network input or output) across a batch. Depth 2 is classic double
// buffering; depth 1 degenerates to a single buffer (no overlap).
type BufferRing struct {
	bufs []*Buffer
	next int
}

// NewBufferRing allocates depth device buffers of the given size. Depth is
// clamped to at least 1.
func (c *Context) NewBufferRing(name string, bytes, depth int) *BufferRing {
	if depth < 1 {
		depth = 1
	}
	r := &BufferRing{bufs: make([]*Buffer, depth)}
	for i := range r.bufs {
		r.bufs[i] = c.NewBuffer(fmt.Sprintf("%s[%d]", name, i), bytes)
	}
	return r
}

// Next returns the ring's current buffer and advances the cursor. Callers
// take one buffer per image; with depth d, image i and image i+d share a
// buffer and are serialized by its hazards, while images closer together
// proceed independently.
func (r *BufferRing) Next() *Buffer {
	b := r.bufs[r.next]
	r.next = (r.next + 1) % len(r.bufs)
	return b
}

// Depth returns the number of buffers in the ring.
func (r *BufferRing) Depth() int { return len(r.bufs) }

// Overlap quantifies how much transfer time the schedule hid behind kernel
// execution — the payoff of double buffering. All figures are simulated
// microseconds over the context's whole event history.
type Overlap struct {
	// TransferUS is the summed duration of all write/read events.
	TransferUS float64
	// KernelUS is the summed duration of all kernel events.
	KernelUS float64
	// HiddenUS is the portion of transfer time that ran while at least one
	// kernel was executing.
	HiddenUS float64
	// Ratio is HiddenUS / TransferUS (0 when there were no transfers).
	Ratio float64
}

// OverlapStats scans the recorded events and measures transfer/compute
// overlap: for each transfer event, the length of its span covered by the
// union of kernel execution spans. A serial schedule scores ~0; ideal double
// buffering approaches 1 on the steady-state transfers.
func (c *Context) OverlapStats() Overlap {
	return c.OverlapSince(0)
}

// OverlapSince is OverlapStats restricted to events starting at or after
// sinceUS — batch runs pass the post-setup timestamp so one-time parameter
// uploads (which nothing can overlap) do not dilute the steady-state ratio.
func (c *Context) OverlapSince(sinceUS float64) Overlap {
	var o Overlap
	type span struct{ s, e float64 }
	var kernels []span
	events := make([]*Event, 0, len(c.events))
	for _, ev := range c.events {
		if ev.StartUS >= sinceUS {
			events = append(events, ev)
		}
	}
	for _, ev := range events {
		switch ev.Kind {
		case "kernel":
			o.KernelUS += ev.Duration()
			if ev.EndUS > ev.StartUS {
				kernels = append(kernels, span{ev.StartUS, ev.EndUS})
			}
		case "write", "read":
			o.TransferUS += ev.Duration()
		}
	}
	if len(kernels) > 0 {
		// Merge kernel spans into a disjoint union.
		sort.Slice(kernels, func(i, j int) bool { return kernels[i].s < kernels[j].s })
		merged := kernels[:1]
		for _, sp := range kernels[1:] {
			last := &merged[len(merged)-1]
			if sp.s <= last.e {
				last.e = math.Max(last.e, sp.e)
			} else {
				merged = append(merged, sp)
			}
		}
		for _, ev := range events {
			if ev.Kind != "write" && ev.Kind != "read" {
				continue
			}
			for _, sp := range merged {
				lo := math.Max(ev.StartUS, sp.s)
				hi := math.Min(ev.EndUS, sp.e)
				if hi > lo {
					o.HiddenUS += hi - lo
				}
			}
		}
	}
	if o.TransferUS > 0 {
		o.Ratio = o.HiddenUS / o.TransferUS
	}
	return o
}
