package clrt

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/aoc"
	"repro/internal/fault"
	"repro/internal/fpga"
	"repro/internal/ir"
)

// simpleKernel: out[i] = in[i]*2 over n elements.
func simpleKernel(name string, n int) (*ir.Kernel, *ir.Buffer, *ir.Buffer) {
	in := ir.NewBuffer(name+"_in", ir.Global, n)
	out := ir.NewBuffer(name+"_out", ir.Global, n)
	i := ir.V("i")
	k := &ir.Kernel{Name: name, Args: []*ir.Buffer{in, out},
		Body: ir.Loop(i, n, &ir.Store{Buf: out, Index: []ir.Expr{i},
			Value: ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{i}}, ir.CFloat(2))})}
	return k, in, out
}

// chainKernels builds producer -> (autorun mid) -> consumer via channels.
func chainKernels(n int) []*ir.Kernel {
	c0 := &ir.Channel{Name: "c0", Depth: n}
	c1 := &ir.Channel{Name: "c1", Depth: n}
	a := ir.NewBuffer("a", ir.Global, n)
	d := ir.NewBuffer("d", ir.Global, n)
	i, j, l := ir.V("i"), ir.V("j"), ir.V("l")
	prod := &ir.Kernel{Name: "prod", Args: []*ir.Buffer{a},
		Body: ir.Loop(i, n, &ir.ChannelWrite{Ch: c0, Value: ir.AddE(&ir.Load{Buf: a, Index: []ir.Expr{i}}, ir.CFloat(1))})}
	mid := &ir.Kernel{Name: "mid", Autorun: true,
		Body: ir.Loop(j, n, &ir.ChannelWrite{Ch: c1, Value: ir.MulE(&ir.ChannelRead{Ch: c0}, ir.CFloat(0.5))})}
	cons := &ir.Kernel{Name: "cons", Args: []*ir.Buffer{d},
		Body: ir.Loop(l, n, &ir.Store{Buf: d, Index: []ir.Expr{l}, Value: &ir.ChannelRead{Ch: c1}})}
	return []*ir.Kernel{prod, mid, cons}
}

func mustDesign(t *testing.T, name string, ks []*ir.Kernel) *aoc.Design {
	t.Helper()
	d, err := aoc.Compile(name, ks, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Synthesizable() {
		t.Fatalf("design does not synthesize: %v", d.Err())
	}
	return d
}

func TestContextRejectsUnsynthesizableDesign(t *testing.T) {
	var ks []*ir.Kernel
	for i := 0; i < 60; i++ {
		k, _, _ := simpleKernel("k"+string(rune('a'+i%26))+string(rune('a'+i/26)), 1024)
		ks = append(ks, k)
	}
	d, err := aoc.Compile("big", ks, fpga.A10, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if d.Synthesizable() {
		t.Skip("design unexpectedly fits; adjust test size")
	}
	if _, err := NewContext(d); err == nil {
		t.Fatal("NewContext must reject unsynthesizable designs")
	}
}

func TestWriteKernelReadTimeline(t *testing.T) {
	k, _, _ := simpleKernel("k1", 4096)
	d := mustDesign(t, "d", []*ir.Kernel{k})
	ctx, err := NewContext(d)
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.NewQueue()
	in := ctx.NewBuffer("in", 4096*4)
	out := ctx.NewBuffer("out", 4096*4)
	w, err := q.EnqueueWrite(in, 4096*4)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := q.EnqueueKernel(KernelCall{Name: "k1", Reads: []*Buffer{in}, Writes: []*Buffer{out}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := q.EnqueueRead(out, 4096*4)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Finish()

	if w.StartUS >= w.EndUS || ev.StartUS >= ev.EndUS || r.StartUS >= r.EndUS {
		t.Fatal("events must have positive duration")
	}
	if ev.StartUS < w.EndUS {
		t.Fatal("in-order queue: kernel must wait for the write")
	}
	if r.StartUS < ev.EndUS {
		t.Fatal("read must wait for the kernel (buffer hazard)")
	}
	if ctx.ElapsedUS() < r.EndUS {
		t.Fatal("Finish must advance host time past the last event")
	}
	bd := ctx.Breakdown()
	if bd["write"] <= 0 || bd["kernel"] <= 0 || bd["read"] <= 0 {
		t.Fatalf("breakdown incomplete: %v", bd)
	}
}

func TestUnknownKernelRejected(t *testing.T) {
	k, _, _ := simpleKernel("k1", 64)
	d := mustDesign(t, "d", []*ir.Kernel{k})
	ctx, _ := NewContext(d)
	q := ctx.NewQueue()
	if _, err := q.EnqueueKernel(KernelCall{Name: "ghost"}); err == nil ||
		!strings.Contains(err.Error(), "not in design") {
		t.Fatalf("want unknown-kernel error, got %v", err)
	}
}

func TestAutorunCannotBeEnqueued(t *testing.T) {
	d := mustDesign(t, "chain", chainKernels(256))
	ctx, _ := NewContext(d)
	q := ctx.NewQueue()
	if _, err := q.EnqueueKernel(KernelCall{Name: "mid"}); err == nil ||
		!strings.Contains(err.Error(), "autorun") {
		t.Fatalf("want autorun error, got %v", err)
	}
}

func TestChannelPipelineOverlapsWithConcurrentQueues(t *testing.T) {
	run := func(concurrent bool) float64 {
		d := mustDesign(t, "chain", chainKernels(4096))
		ctx, _ := NewContext(d)
		var qp, qc *Queue
		qp = ctx.NewQueue()
		if concurrent {
			qc = ctx.NewQueue()
		} else {
			qc = qp
		}
		a := ctx.NewBuffer("a", 4096*4)
		dd := ctx.NewBuffer("d", 4096*4)
		if _, err := qp.EnqueueWrite(a, 4096*4); err != nil {
			t.Fatal(err)
		}
		if _, err := qp.EnqueueKernel(KernelCall{Name: "prod", Reads: []*Buffer{a}}); err != nil {
			t.Fatal(err)
		}
		if _, err := qc.EnqueueKernel(KernelCall{Name: "cons", Writes: []*Buffer{dd}}); err != nil {
			t.Fatal(err)
		}
		if _, err := qc.EnqueueRead(dd, 4096*4); err != nil {
			t.Fatal(err)
		}
		ctx.Finish()
		return ctx.ElapsedUS()
	}
	serial := run(false)
	conc := run(true)
	if conc >= serial {
		t.Fatalf("concurrent queues must beat a single queue for channelized kernels: %v vs %v us", conc, serial)
	}
}

func TestPipelinedThroughputAcrossImages(t *testing.T) {
	// Enqueuing many images through a channel pipeline with concurrent
	// queues must approach 1/max-stage throughput: total time much less than
	// N * single-image latency.
	d := mustDesign(t, "chain", chainKernels(4096))

	single := func() float64 {
		ctx, _ := NewContext(d)
		q1, q2 := ctx.NewQueue(), ctx.NewQueue()
		a := ctx.NewBuffer("a", 4096*4)
		dd := ctx.NewBuffer("d", 4096*4)
		q1.EnqueueWrite(a, 4096*4) //nolint:errcheck
		q1.EnqueueKernel(KernelCall{Name: "prod", Reads: []*Buffer{a}})
		q2.EnqueueKernel(KernelCall{Name: "cons", Writes: []*Buffer{dd}})
		ctx.Finish()
		return ctx.ElapsedUS()
	}()

	const n = 16
	ctx, _ := NewContext(d)
	q1, q2 := ctx.NewQueue(), ctx.NewQueue()
	a := ctx.NewBuffer("a", 4096*4)
	dd := ctx.NewBuffer("d", 4096*4)
	for i := 0; i < n; i++ {
		q1.EnqueueWrite(a, 4096*4) //nolint:errcheck
		q1.EnqueueKernel(KernelCall{Name: "prod", Reads: []*Buffer{a}})
		q2.EnqueueKernel(KernelCall{Name: "cons", Writes: []*Buffer{dd}})
	}
	ctx.Finish()
	total := ctx.ElapsedUS()
	if total >= float64(n)*single*0.95 {
		t.Fatalf("pipelining across images shows no overlap: %v vs %v per image", total, single)
	}
}

func TestProfilingSerializesAndAddsOverhead(t *testing.T) {
	k, _, _ := simpleKernel("k1", 4096)
	d := mustDesign(t, "d", []*ir.Kernel{k})

	run := func(prof bool) float64 {
		ctx, _ := NewContext(d)
		ctx.Profiling = prof
		q := ctx.NewQueue()
		in := ctx.NewBuffer("in", 4096*4)
		out := ctx.NewBuffer("out", 4096*4)
		for i := 0; i < 4; i++ {
			q.EnqueueWrite(in, 4096*4) //nolint:errcheck
			q.EnqueueKernel(KernelCall{Name: "k1", Reads: []*Buffer{in}, Writes: []*Buffer{out}})
			q.EnqueueRead(out, 4096*4) //nolint:errcheck
		}
		ctx.Finish()
		return ctx.ElapsedUS()
	}
	if run(true) <= run(false) {
		t.Fatal("profiling must slow execution down")
	}
}

func TestAutorunChainExtendsPipeline(t *testing.T) {
	d := mustDesign(t, "chain", chainKernels(4096))
	ctx, _ := NewContext(d)
	q := ctx.NewQueue()
	a := ctx.NewBuffer("a", 4096*4)
	ev, err := q.EnqueueKernel(KernelCall{Name: "prod", Reads: []*Buffer{a}})
	if err != nil {
		t.Fatal(err)
	}
	// mid (autorun) runs without being enqueued; its output channel must be
	// marked ready so a later consumer can proceed.
	if _, err := q.EnqueueKernel(KernelCall{Name: "cons"}); err != nil {
		t.Fatal(err)
	}
	ctx.Finish()
	if ctx.ElapsedUS() <= ev.EndUS {
		t.Fatal("downstream work must extend the timeline")
	}
	// Only two kernel events recorded: autorun never appears as a command.
	kernels := 0
	for _, e := range ctx.Events() {
		if e.Kind == "kernel" {
			kernels++
		}
	}
	if kernels != 2 {
		t.Fatalf("expected 2 kernel commands, got %d", kernels)
	}
}

func TestBreakdownByName(t *testing.T) {
	k1, _, _ := simpleKernel("alpha", 1024)
	k2, _, _ := simpleKernel("beta", 2048)
	d := mustDesign(t, "two", []*ir.Kernel{k1, k2})
	ctx, _ := NewContext(d)
	q := ctx.NewQueue()
	q.EnqueueKernel(KernelCall{Name: "alpha"})
	q.EnqueueKernel(KernelCall{Name: "beta"})
	q.EnqueueKernel(KernelCall{Name: "beta"})
	ctx.Finish()
	bn := ctx.BreakdownByName()
	if bn["alpha"] <= 0 || bn["beta"] <= bn["alpha"] {
		t.Fatalf("per-kernel breakdown wrong: %v", bn)
	}
	kinds := SortedKinds(bn)
	if len(kinds) != 2 || kinds[0] != "alpha" {
		t.Fatalf("SortedKinds = %v", kinds)
	}
}

func TestSameKernelSerializesOnComputeUnit(t *testing.T) {
	k, _, _ := simpleKernel("k1", 4096)
	d := mustDesign(t, "d", []*ir.Kernel{k})
	ctx, _ := NewContext(d)
	// Two queues, same kernel: executions must not overlap (one compute unit).
	q1, q2 := ctx.NewQueue(), ctx.NewQueue()
	e1, _ := q1.EnqueueKernel(KernelCall{Name: "k1"})
	e2, _ := q2.EnqueueKernel(KernelCall{Name: "k1"})
	if e2.StartUS < e1.EndUS {
		t.Fatalf("compute unit double-booked: [%v,%v] vs [%v,%v]", e1.StartUS, e1.EndUS, e2.StartUS, e2.EndUS)
	}
}

func TestTimelineRendersLanes(t *testing.T) {
	k1, _, _ := simpleKernel("alpha", 2048)
	k2, _, _ := simpleKernel("beta", 2048)
	d := mustDesign(t, "tl", []*ir.Kernel{k1, k2})
	ctx, _ := NewContext(d)
	q := ctx.NewQueue()
	in := ctx.NewBuffer("in", 8192)
	q.EnqueueWrite(in, 8192) //nolint:errcheck
	q.EnqueueKernel(KernelCall{Name: "alpha", Reads: []*Buffer{in}})
	q.EnqueueKernel(KernelCall{Name: "beta"})
	q.EnqueueRead(in, 8192) //nolint:errcheck
	ctx.Finish()
	tl := ctx.Timeline(40)
	for _, want := range []string{"kernel alpha", "kernel beta", "write in", "read in", "#", "W", "R"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
	// Serial queue: beta's bar must start at or after alpha's ends. Check by
	// lane content: the first '#' column of beta >= last '#' column of alpha.
	lines := strings.Split(tl, "\n")
	lane := func(name string) string {
		for _, l := range lines {
			if strings.Contains(l, name) {
				return l[strings.Index(l, "|"):]
			}
		}
		return ""
	}
	a, b := lane("kernel alpha"), lane("kernel beta")
	if strings.LastIndex(a, "#") > strings.Index(b, "#") {
		t.Fatalf("serial kernels overlap in timeline:\n%s", tl)
	}
}

func TestTimelineSinceFilters(t *testing.T) {
	k1, _, _ := simpleKernel("alpha", 2048)
	d := mustDesign(t, "tl2", []*ir.Kernel{k1})
	ctx, _ := NewContext(d)
	q := ctx.NewQueue()
	setup := ctx.NewBuffer("weights", 4096)
	q.EnqueueWrite(setup, 4096) //nolint:errcheck
	ctx.Finish()
	cut := ctx.ElapsedUS()
	q.EnqueueKernel(KernelCall{Name: "alpha"})
	ctx.Finish()
	tl := ctx.TimelineSince(40, cut)
	if strings.Contains(tl, "weights") {
		t.Fatalf("TimelineSince must exclude setup events:\n%s", tl)
	}
	if !strings.Contains(tl, "kernel alpha") {
		t.Fatalf("TimelineSince lost the measured event:\n%s", tl)
	}
	if ctx.Timeline(40) == tl {
		t.Fatal("full timeline should differ from the filtered one")
	}
}

func TestTimelineEmpty(t *testing.T) {
	k1, _, _ := simpleKernel("alpha", 64)
	d := mustDesign(t, "tl3", []*ir.Kernel{k1})
	ctx, _ := NewContext(d)
	if tl := ctx.Timeline(40); !strings.Contains(tl, "no events") {
		t.Fatalf("empty timeline should say so: %q", tl)
	}
}

func TestOutOfOrderQueueOverlapsIndependentKernels(t *testing.T) {
	k1, _, _ := simpleKernel("alpha", 4096)
	k2, _, _ := simpleKernel("beta", 4096)
	d := mustDesign(t, "ooo", []*ir.Kernel{k1, k2})

	run := func(inOrder bool) float64 {
		ctx, _ := NewContext(d)
		var q *Queue
		if inOrder {
			q = ctx.NewQueue()
		} else {
			q = ctx.NewOutOfOrderQueue()
		}
		q.EnqueueKernel(KernelCall{Name: "alpha"})
		q.EnqueueKernel(KernelCall{Name: "beta"})
		ctx.Finish()
		return ctx.ElapsedUS()
	}
	if ooo, serial := run(false), run(true); ooo >= serial {
		t.Fatalf("out-of-order queue must overlap independent kernels: %v vs %v", ooo, serial)
	}
}

func TestOutOfOrderQueueHonorsWaitList(t *testing.T) {
	k1, _, _ := simpleKernel("alpha", 4096)
	k2, _, _ := simpleKernel("beta", 4096)
	d := mustDesign(t, "ooo2", []*ir.Kernel{k1, k2})
	ctx, _ := NewContext(d)
	q := ctx.NewOutOfOrderQueue()
	e1, err := q.EnqueueKernel(KernelCall{Name: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := q.EnqueueKernel(KernelCall{Name: "beta", Wait: []*Event{e1}})
	if err != nil {
		t.Fatal(err)
	}
	if e2.StartUS < e1.EndUS {
		t.Fatalf("wait list violated: beta starts %v before alpha ends %v", e2.StartUS, e1.EndUS)
	}
}

func TestOutOfOrderQueueStillTracksBufferHazards(t *testing.T) {
	k1, _, _ := simpleKernel("alpha", 4096)
	d := mustDesign(t, "ooo3", []*ir.Kernel{k1})
	ctx, _ := NewContext(d)
	q := ctx.NewOutOfOrderQueue()
	buf := ctx.NewBuffer("x", 4096*4)
	w, err := q.EnqueueWrite(buf, 4096*4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := q.EnqueueKernel(KernelCall{Name: "alpha", Reads: []*Buffer{buf}})
	if err != nil {
		t.Fatal(err)
	}
	if e.StartUS < w.EndUS {
		t.Fatal("buffer hazard violated on OOO queue")
	}
}

func TestInjectedTransferFaultsSurfaceAsErrors(t *testing.T) {
	k, _, _ := simpleKernel("k1", 1024)
	d := mustDesign(t, "d", []*ir.Kernel{k})
	ctx, _ := NewContext(d)
	ctx.Injector = fault.NewInjector(7, 1.0) // every probe fires
	q := ctx.NewQueue()
	in := ctx.NewBuffer("in", 1024*4)

	sawHard, sawCorrupt := false, false
	for i := 0; i < 16 && !(sawHard && sawCorrupt); i++ {
		ev, err := q.EnqueueWrite(in, 1024*4)
		if err == nil {
			t.Fatal("rate-1 injector must fail every transfer")
		}
		var fe *fault.Error
		if !errors.As(err, &fe) || !fe.Transient {
			t.Fatalf("want transient *fault.Error, got %v", err)
		}
		switch fe.Kind {
		case fault.TransferFail:
			sawHard = true
			if ev != nil {
				t.Fatal("hard transfer failure must not record an event")
			}
		case fault.TransferCorrupt:
			sawCorrupt = true
			if ev == nil || !ev.Corrupt {
				t.Fatalf("corrupt transfer must record a Corrupt event, got %+v", ev)
			}
		default:
			t.Fatalf("unexpected fault kind %v", fe.Kind)
		}
	}
	if !sawHard || !sawCorrupt {
		t.Fatalf("expected both failure modes within 16 draws (hard=%v corrupt=%v)", sawHard, sawCorrupt)
	}
	if ctx.Injector.Count() == 0 {
		t.Fatal("injector ledger must record fired faults")
	}
}

func TestInjectedStallTripsWatchdog(t *testing.T) {
	k, _, _ := simpleKernel("k1", 4096)
	d := mustDesign(t, "d", []*ir.Kernel{k})

	base := func() float64 {
		ctx, _ := NewContext(d)
		q := ctx.NewQueue()
		ev, err := q.EnqueueKernel(KernelCall{Name: "k1"})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Duration()
	}()

	ctx, _ := NewContext(d)
	// Rate below 1 so the enqueue probe (checked first) lets some kernels
	// through to the stall probe.
	inj := fault.NewInjector(3, 0.5)
	inj.SetStallFactor(64)
	ctx.Injector = inj
	q := ctx.NewQueue()
	var stalled *Event
	for i := 0; i < 200; i++ {
		ev, err := q.EnqueueKernel(KernelCall{Name: "k1"})
		if err != nil {
			continue // transient enqueue fault; retry
		}
		if ev.Stalled {
			stalled = ev
			break
		}
	}
	if stalled == nil {
		t.Fatal("injector never stalled a kernel in 200 attempts at rate 0.5")
	}
	if stalled.Duration() <= base {
		t.Fatalf("stalled kernel (%v us) must exceed baseline (%v us)", stalled.Duration(), base)
	}
	if ctx.WatchdogExceeded(0, base*2) == nil {
		t.Fatal("watchdog must flag the stalled kernel against a 2x-baseline deadline")
	}
	if ctx.WatchdogExceeded(0, 0) != nil {
		t.Fatal("deadline <= 0 disables the watchdog")
	}
}

func TestAdvanceHostMovesCursor(t *testing.T) {
	k, _, _ := simpleKernel("k1", 64)
	d := mustDesign(t, "d", []*ir.Kernel{k})
	ctx, _ := NewContext(d)
	before := ctx.ElapsedUS()
	ctx.AdvanceHost(125)
	if got := ctx.ElapsedUS(); got < before+125 {
		t.Fatalf("AdvanceHost must move host time: %v -> %v", before, got)
	}
}

func TestEventInvariants(t *testing.T) {
	// Properties every recorded event stream must satisfy: monotone
	// queue/start/end times per event, no overlap among same-queue commands
	// on an in-order queue, and Breakdown equal to the summed durations.
	k1, _, _ := simpleKernel("alpha", 2048)
	k2, _, _ := simpleKernel("beta", 1024)
	d := mustDesign(t, "inv", []*ir.Kernel{k1, k2})
	ctx, _ := NewContext(d)
	q := ctx.NewQueue()
	in := ctx.NewBuffer("in", 8192)
	for i := 0; i < 5; i++ {
		q.EnqueueWrite(in, 8192) //nolint:errcheck
		q.EnqueueKernel(KernelCall{Name: "alpha", Reads: []*Buffer{in}})
		q.EnqueueKernel(KernelCall{Name: "beta"})
		q.EnqueueRead(in, 8192) //nolint:errcheck
	}
	ctx.Finish()
	events := ctx.Events()
	var prevEnd float64
	sums := map[string]float64{}
	for _, e := range events {
		if e.QueuedUS > e.StartUS || e.StartUS >= e.EndUS {
			t.Fatalf("event time disorder: %+v", e)
		}
		if e.StartUS < prevEnd {
			t.Fatalf("in-order queue overlap: %s starts %v before %v", e.Name, e.StartUS, prevEnd)
		}
		prevEnd = e.EndUS
		sums[e.Kind] += e.Duration()
	}
	bd := ctx.Breakdown()
	for k, v := range sums {
		if diff := bd[k] - v; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("breakdown[%s] = %v, summed %v", k, bd[k], v)
		}
	}
}
