package clrt

import (
	"testing"

	"repro/internal/ir"
)

// runSerial models the seed host loop: one buffer pair, one in-order queue,
// write/kernel/read strictly per image.
func runSerial(t *testing.T, images int) *Context {
	t.Helper()
	k, _, _ := simpleKernel("k1", 4096)
	d := mustDesign(t, "serial", []*ir.Kernel{k})
	ctx, err := NewContext(d)
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.NewQueue()
	in := ctx.NewBuffer("in", 4096*4)
	out := ctx.NewBuffer("out", 4096*4)
	for i := 0; i < images; i++ {
		if _, err := q.EnqueueWrite(in, in.Bytes); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueKernel(KernelCall{Name: "k1", Reads: []*Buffer{in}, Writes: []*Buffer{out}}); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueRead(out, out.Bytes); err != nil {
			t.Fatal(err)
		}
	}
	ctx.Finish()
	return ctx
}

// runDoubleBuffered models the batched host loop: depth-2 rings, transfers
// and kernels on separate queues, software-pipelined so image i+1's H2D and
// image i-1's D2H run while image i computes.
func runDoubleBuffered(t *testing.T, images, depth int) *Context {
	t.Helper()
	k, _, _ := simpleKernel("k1", 4096)
	d := mustDesign(t, "db", []*ir.Kernel{k})
	ctx, err := NewContext(d)
	if err != nil {
		t.Fatal(err)
	}
	wq, kq, rq := ctx.NewQueue(), ctx.NewQueue(), ctx.NewQueue()
	inRing := ctx.NewBufferRing("in", 4096*4, depth)
	outRing := ctx.NewBufferRing("out", 4096*4, depth)
	ins := make([]*Buffer, images)
	outs := make([]*Buffer, images)
	for i := 0; i < images; i++ {
		ins[i], outs[i] = inRing.Next(), outRing.Next()
		if _, err := wq.EnqueueWrite(ins[i], ins[i].Bytes); err != nil {
			t.Fatal(err)
		}
		if _, err := kq.EnqueueKernel(KernelCall{Name: "k1", Reads: []*Buffer{ins[i]}, Writes: []*Buffer{outs[i]}}); err != nil {
			t.Fatal(err)
		}
		if i >= 1 {
			if _, err := rq.EnqueueRead(outs[i-1], outs[i-1].Bytes); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := rq.EnqueueRead(outs[images-1], outs[images-1].Bytes); err != nil {
		t.Fatal(err)
	}
	ctx.Finish()
	return ctx
}

func TestBufferRingRotation(t *testing.T) {
	k, _, _ := simpleKernel("k1", 16)
	d := mustDesign(t, "ring", []*ir.Kernel{k})
	ctx, err := NewContext(d)
	if err != nil {
		t.Fatal(err)
	}
	r := ctx.NewBufferRing("act", 64, 2)
	if r.Depth() != 2 {
		t.Fatalf("depth = %d", r.Depth())
	}
	a, b, c, d2 := r.Next(), r.Next(), r.Next(), r.Next()
	if a == b || a != c || b != d2 {
		t.Fatal("ring must alternate between exactly two buffers")
	}
	if r0 := ctx.NewBufferRing("one", 64, 0); r0.Depth() != 1 {
		t.Fatalf("depth must clamp to 1, got %d", r0.Depth())
	}
}

// TestDoubleBufferingOverlapsTransfers is the core modeled-overlap assertion:
// the pipelined ring schedule must finish faster than the serial loop and hide
// a meaningful share of transfer time behind kernel execution.
func TestDoubleBufferingOverlapsTransfers(t *testing.T) {
	const images = 16
	serial := runSerial(t, images)
	db := runDoubleBuffered(t, images, 2)

	so, do := serial.OverlapStats(), db.OverlapStats()
	if db.ElapsedUS() >= serial.ElapsedUS() {
		t.Fatalf("double buffering did not help: %v >= %v us", db.ElapsedUS(), serial.ElapsedUS())
	}
	if do.Ratio <= so.Ratio {
		t.Fatalf("overlap ratio did not improve: %v <= %v", do.Ratio, so.Ratio)
	}
	if do.Ratio < 0.1 {
		t.Fatalf("steady-state overlap too low: %v", do.Ratio)
	}
	if do.Ratio > 1.0001 || so.Ratio < 0 {
		t.Fatalf("overlap ratio out of range: serial %v, db %v", so.Ratio, do.Ratio)
	}
	// The total modeled work (transfer + kernel) is the same in both runs;
	// only the schedule differs.
	if diff := (so.TransferUS + so.KernelUS) - (do.TransferUS + do.KernelUS); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("total busy time diverged: serial %v, db %v", so.TransferUS+so.KernelUS, do.TransferUS+do.KernelUS)
	}
}

// TestDepthOneRingMatchesSerialHazards: with depth 1 every image reuses the
// same buffers, so the hazards alone must serialize the schedule back to
// (at least) per-buffer ordering — no overlap regression into incorrectness.
func TestDepthOneRingMatchesSerialHazards(t *testing.T) {
	const images = 8
	db1 := runDoubleBuffered(t, images, 1)
	db2 := runDoubleBuffered(t, images, 2)
	if db2.ElapsedUS() > db1.ElapsedUS() {
		t.Fatalf("depth-2 slower than depth-1: %v > %v", db2.ElapsedUS(), db1.ElapsedUS())
	}
	// Depth-1 keeps per-image write->kernel->read ordering via hazards.
	var lastKernelEnd float64
	for _, ev := range db1.Events() {
		if ev.Kind == "kernel" {
			if ev.StartUS < lastKernelEnd {
				t.Fatalf("kernel %q started at %v before previous kernel finished at %v", ev.Name, ev.StartUS, lastKernelEnd)
			}
			lastKernelEnd = ev.EndUS
		}
	}
}
