package clrt

import (
	"strings"
	"testing"
)

// TestTimelineSinceBoundaries pins the cutoff semantics event by event: an
// event belongs to the window iff any positive part of it lies at or after
// sinceUS. The straddling case is the regression that motivated the table —
// the old filter (StartUS >= sinceUS) silently hid in-flight kernels from
// the steady-state view.
func TestTimelineSinceBoundaries(t *testing.T) {
	cases := []struct {
		name     string
		start    float64
		end      float64
		sinceUS  float64
		rendered bool
	}{
		{"entirely before cutoff", 0, 50, 100, false},
		{"ends exactly at cutoff", 0, 100, 100, false},
		{"straddles cutoff", 50, 150, 100, true},
		{"starts exactly at cutoff", 100, 150, 100, true},
		{"entirely after cutoff", 120, 150, 100, true},
		{"zero-span at cutoff", 100, 100, 100, true},
		{"zero-span before cutoff", 60, 60, 100, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// An anchor event keeps the window non-empty so "(no events)"
			// never masks the verdict on the probe event.
			anchor := &Event{Kind: "write", Name: "anchor", StartUS: tc.sinceUS, EndUS: tc.sinceUS + 200}
			probe := &Event{Kind: "kernel", Name: "probe", StartUS: tc.start, EndUS: tc.end}
			c := &Context{events: []*Event{anchor, probe}}
			tl := c.TimelineSince(40, tc.sinceUS)
			if got := strings.Contains(tl, "kernel probe"); got != tc.rendered {
				t.Fatalf("rendered=%v, want %v:\n%s", got, tc.rendered, tl)
			}
		})
	}
}

// TestTimelineSinceClipsStraddlingEvent checks a straddler is clipped to the
// window (not drawn from before it) and that the recorded event itself is
// not mutated by the rendering.
func TestTimelineSinceClipsStraddlingEvent(t *testing.T) {
	straddler := &Event{Kind: "kernel", Name: "k", StartUS: 0, EndUS: 100}
	other := &Event{Kind: "write", Name: "w", StartUS: 50, EndUS: 200}
	c := &Context{events: []*Event{straddler, other}}
	tl := c.TimelineSince(40, 50)
	if straddler.StartUS != 0 {
		t.Fatalf("recorded event mutated: StartUS = %v", straddler.StartUS)
	}
	var lane string
	for _, line := range strings.Split(tl, "\n") {
		if strings.Contains(line, "kernel k") {
			lane = line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
		}
	}
	if lane == "" {
		t.Fatalf("straddling kernel missing from timeline:\n%s", tl)
	}
	// Window [50,200], clipped kernel spans [50,100]: the first third of the
	// lane. The second half of the lane must stay empty.
	if !strings.HasPrefix(lane, "#") {
		t.Fatalf("clipped kernel should start at the window's left edge: %q", lane)
	}
	if strings.ContainsRune(lane[len(lane)/2:], '#') {
		t.Fatalf("clipped kernel bar extends past its end: %q", lane)
	}
}

// TestTimelineHeaderUsPerCol checks the header divides the span by the
// number of columns actually used for bar scaling (width-1), matching the
// lane geometry.
func TestTimelineHeaderUsPerCol(t *testing.T) {
	// span 117 us over width 40: 117/39 = 3.0 us/col (the old width divisor
	// would print 2.9).
	c := &Context{events: []*Event{{Kind: "kernel", Name: "k", StartUS: 0, EndUS: 117}}}
	tl := c.Timeline(40)
	if !strings.Contains(tl, "3.0 us/col") {
		t.Fatalf("header should report span/(width-1) us per column:\n%s", tl)
	}
}
