package clrt

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Timeline renders the recorded events as an ASCII Gantt chart: one row per
// distinct command (kernel name or buffer transfer), bars spanning
// [StartUS, EndUS]. It makes queue serialization, channel-pipeline overlap
// and the PCIe bottleneck visible at a glance — the picture behind the
// thesis's serial-vs-concurrent-execution results.
func (c *Context) Timeline(width int) string { return c.TimelineSince(width, 0) }

// TimelineSince renders only events starting at or after sinceUS — used to
// exclude one-time setup transfers (parameter loading) from the steady-state
// picture.
func (c *Context) TimelineSince(width int, sinceUS float64) string {
	events := make([]*Event, 0, len(c.events))
	for _, e := range c.events {
		switch {
		case e.StartUS >= sinceUS:
			events = append(events, e)
		case e.EndUS > sinceUS:
			// The event straddles the cutoff (an in-flight kernel or transfer).
			// Clip it to the window rather than dropping it — hiding in-flight
			// work makes the steady-state view lie about occupancy. Copy so the
			// recorded event is not mutated.
			clipped := *e
			clipped.StartUS = sinceUS
			events = append(events, &clipped)
		}
	}
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width < 20 {
		width = 20
	}
	var t0, t1 float64
	t0 = math.Inf(1)
	for _, e := range events {
		if e.StartUS < t0 {
			t0 = e.StartUS
		}
		if e.EndUS > t1 {
			t1 = e.EndUS
		}
	}
	span := t1 - t0
	if span <= 0 {
		span = 1
	}

	type row struct {
		label string
		kind  string
		first float64
	}
	rowsByLabel := map[string]*row{}
	var rows []*row
	for _, e := range events {
		label := e.Kind + " " + e.Name
		r, ok := rowsByLabel[label]
		if !ok {
			r = &row{label: label, kind: e.Kind, first: e.StartUS}
			rowsByLabel[label] = r
			rows = append(rows, r)
		}
		if e.StartUS < r.first {
			r.first = e.StartUS
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].first < rows[j].first })

	glyph := map[string]byte{"kernel": '#', "write": 'W', "read": 'R'}
	lanes := map[string][]byte{}
	for _, r := range rows {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		lanes[r.label] = lane
	}
	for _, e := range events {
		lane := lanes[e.Kind+" "+e.Name]
		a := int(float64(width-1) * (e.StartUS - t0) / span)
		b := int(float64(width-1) * (e.EndUS - t0) / span)
		if b < a {
			b = a
		}
		g := glyph[e.Kind]
		if g == 0 {
			g = '?'
		}
		for i := a; i <= b && i < width; i++ {
			lane[i] = g
		}
	}

	maxLabel := 0
	for _, r := range rows {
		if len(r.label) > maxLabel {
			maxLabel = len(r.label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %.0f us total (# kernel, W write, R read; %.1f us/col)\n",
		span, span/float64(width-1))
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-*s |%s|\n", maxLabel, r.label, lanes[r.label])
	}
	return b.String()
}
