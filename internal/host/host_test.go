package host

import (
	"math"
	"strings"
	"testing"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/ir"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/topi"
)

func lenetLayers(t *testing.T) []*relay.Layer {
	t.Helper()
	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		t.Fatal(err)
	}
	return layers
}

func TestPipelinedVariantsMatchGolden(t *testing.T) {
	layers := lenetLayers(t)
	input := nn.Digit(3)
	want, err := relay.Execute(layers, input)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range PipeVariants {
		p, err := BuildPipelined(layers, v, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !p.Design.Synthesizable() {
			t.Fatalf("%s: %v", v, p.Design.Err())
		}
		got, err := p.Infer(input)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !tensor.AllClose(got, want, 1e-4) {
			t.Fatalf("%s diverges from golden: %v", v, tensor.MaxAbsDiff(got, want))
		}
		if got.ArgMax() != want.ArgMax() {
			t.Fatalf("%s changes the classification", v)
		}
	}
}

func TestPipelinedOptimizationLadder(t *testing.T) {
	layers := lenetLayers(t)
	fpsOf := func(v PipeVariant, concurrent bool) float64 {
		p, err := BuildPipelined(layers, v, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(20, concurrent, false)
		if err != nil {
			t.Fatal(err)
		}
		return r.FPS
	}
	base := fpsOf(PipeBase, false)
	unroll := fpsOf(PipeUnroll, false)
	channels := fpsOf(PipeChannels, false)
	autorun := fpsOf(PipeAutorun, false)
	autorunCE := fpsOf(PipeAutorun, true)
	tvmCE := fpsOf(PipeTVMAutorun, true)

	// The Table 6.4 / Fig 6.1 ladder: each optimization helps.
	if !(base < unroll && unroll < channels && channels <= autorun && autorun < autorunCE) {
		t.Fatalf("ladder not monotone: base=%.0f unroll=%.0f channels=%.0f autorun=%.0f autorun[CE]=%.0f",
			base, unroll, channels, autorun, autorunCE)
	}
	// Best config lands in the thesis's 6-10x-over-base band (§6.3.1).
	speedup := tvmCE / base
	if speedup < 4 || speedup > 16 {
		t.Fatalf("best/base speedup = %.2f, thesis band ~6-10x", speedup)
	}
	// TVM-automated kernels match the hand-applied ones.
	if math.Abs(tvmCE-autorunCE)/autorunCE > 0.05 {
		t.Fatalf("TVM-Autorun (%.0f) should match Autorun (%.0f)", tvmCE, autorunCE)
	}
}

func TestPipelinedRejectsResiduals(t *testing.T) {
	g, _ := nn.ResNet(18)
	layers, err := relay.Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPipelined(layers, PipeChannels, fpga.S10SX, aoc.DefaultOptions); err == nil ||
		!strings.Contains(err.Error(), "linear chain") {
		t.Fatalf("want linear-chain error, got %v", err)
	}
}

func TestPipelinedProfilingBreakdown(t *testing.T) {
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeBase, fpga.S10MX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run(10, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Breakdown["write"] <= 0 || r.Breakdown["kernel"] <= 0 || r.Breakdown["read"] <= 0 {
		t.Fatalf("incomplete breakdown: %v", r.Breakdown)
	}
	// Fig. 6.2: on the S10MX the write time dominates kernel+read by a wide
	// margin for LeNet-sized transfers.
	if r.Breakdown["write"] < r.Breakdown["read"] {
		t.Fatalf("S10MX writes must dominate reads: %v", r.Breakdown)
	}
}

func lenetFoldedConfig() FoldedConfig {
	return FoldedConfig{
		Conv:       map[string]topi.ConvSched{"conv3x3s1": topi.OptSched(1, 1, 1)},
		DenseVec:   4,
		Workaround: true,
	}
}

func TestFoldedLeNetMatchesGolden(t *testing.T) {
	layers := lenetLayers(t)
	f, err := BuildFolded(layers, lenetFoldedConfig(), fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Design.Synthesizable() {
		t.Fatal(f.Design.Err())
	}
	input := nn.Digit(7)
	want, _ := relay.Execute(layers, input)
	got, err := f.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("folded LeNet diverges: %v", tensor.MaxAbsDiff(got, want))
	}
	// Kernel sharing: two convs map to one parameterized kernel, so the
	// design has fewer kernels than layers.
	if len(f.Design.Kernels) >= len(layers) {
		t.Fatalf("parameterized design should share kernels: %d kernels for %d layers",
			len(f.Design.Kernels), len(layers))
	}
}

func TestFoldedResidualNetwork(t *testing.T) {
	// A small residual net exercising skip buffers in the folded plan.
	g := relay.NewGraph()
	x := g.Input(4, 9, 9)
	skip := x
	y := g.ReLU(g.Conv(x, "a", 4, 3, 1, 1))
	y = g.Conv(y, "b", 4, 3, 1, 1)
	x = g.ReLU(g.Add(y, skip))
	x = g.Flatten(x)
	x = g.Dense(x, "fc", 6)
	x = g.Softmax(x)
	g.InitWeights(21)
	layers, err := relay.Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FoldedConfig{
		Conv: map[string]topi.ConvSched{
			"conv3x3s1":     topi.OptSched(1, 1, 2),
			"conv3x3s1_res": topi.OptSched(1, 1, 2),
		},
		DenseVec: 4, Workaround: true,
	}
	f, err := BuildFolded(layers, cfg, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	input := nn.RandomImage(5, 4, 9, 9)
	want, _ := relay.Execute(layers, input)
	got, err := f.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("folded residual net diverges: %v", tensor.MaxAbsDiff(got, want))
	}
	// Timed run must also work (skip buffer hazards).
	if _, err := f.Run(3, false); err != nil {
		t.Fatal(err)
	}
}

func TestFoldedNaiveVsOptimizedSpeedup(t *testing.T) {
	layers := lenetLayers(t)
	naive, err := BuildFolded(layers, FoldedConfig{Naive: true, Workaround: true}, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := BuildFolded(layers, lenetFoldedConfig(), fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := naive.Run(5, false)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := opt.Run(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if ro.FPS <= rn.FPS {
		t.Fatalf("optimized folded must beat naive: %.1f vs %.1f", ro.FPS, rn.FPS)
	}
}

func TestFoldedMobileNetPlanAndProfile(t *testing.T) {
	g := nn.MobileNetV1()
	layers, err := relay.Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FoldedConfig{
		Conv: map[string]topi.ConvSched{
			"conv1x1s1": topi.OptSched(7, 16, 4),
			"conv3x3s2": topi.OptSched(1, 1, 3),
		},
		DWVec:    map[string]int{"dw3x3s1": 7, "dw3x3s2": 7},
		DenseVec: 8, Workaround: true,
	}
	f, err := BuildFolded(layers, cfg, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Design.Synthesizable() {
		t.Fatal(f.Design.Err())
	}
	// Expected kernel groups: conv1x1s1, conv3x3s2, dw s1, dw s2, dense,
	// pad1, avgpool7x7s1, softmax1000 = 8.
	if n := len(f.Design.Kernels); n != 8 {
		names := []string{}
		for _, m := range f.Design.Kernels {
			names = append(names, m.Kernel.Name)
		}
		t.Fatalf("MobileNet kernel groups = %d (%v), want 8", n, names)
	}
	prof, err := f.ProfileOps()
	if err != nil {
		t.Fatal(err)
	}
	var timeSum, flopSum float64
	classes := map[string]OpProfile{}
	for _, p := range prof {
		timeSum += p.TimeShare
		flopSum += p.FLOPShare
		classes[p.Class] = p
	}
	if math.Abs(timeSum-1) > 1e-6 || math.Abs(flopSum-1) > 1e-6 {
		t.Fatalf("profile shares must sum to 1: %v %v", timeSum, flopSum)
	}
	// Table 6.8 shape: 1x1 convs carry ~94.8% of FLOPs and achieve the
	// highest GFLOPS among convolution classes.
	pw := classes["1x1 conv"]
	if pw.FLOPShare < 0.92 || pw.FLOPShare > 0.97 {
		t.Fatalf("1x1 FLOP share = %.3f", pw.FLOPShare)
	}
	if dw := classes["3x3 DW conv"]; dw.GFLOPS >= pw.GFLOPS {
		t.Fatalf("depthwise GFLOPS (%.1f) must trail 1x1 (%.1f) — Table 6.8", dw.GFLOPS, pw.GFLOPS)
	}
	// Padding consumes a noticeable share of runtime despite zero FLOPs
	// (12.7-20.7% in Table 6.8; our convolution model is more efficient than
	// the thesis's measured kernels, so the share inflates — accept a broad
	// band, see EXPERIMENTS.md).
	if pad := classes["pad"]; pad.TimeShare < 0.03 || pad.TimeShare > 0.60 {
		t.Fatalf("pad time share = %.3f, expected noticeable overhead", pad.TimeShare)
	}
}

func TestFoldedRunTimedMobileNet(t *testing.T) {
	g := nn.MobileNetV1()
	layers, _ := relay.Lower(g)
	cfg := FoldedConfig{
		Conv: map[string]topi.ConvSched{
			"conv1x1s1": topi.OptSched(7, 16, 4),
			"conv3x3s2": topi.OptSched(1, 1, 3),
		},
		DWVec:    map[string]int{"dw3x3s1": 7, "dw3x3s2": 7},
		DenseVec: 8, Workaround: true,
	}
	f, err := BuildFolded(layers, cfg, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Run(3, false)
	if err != nil {
		t.Fatal(err)
	}
	// Optimized MobileNet on the S10SX lands in the tens of FPS (thesis:
	// 30.3); accept a generous band for the model.
	if r.FPS < 5 || r.FPS > 200 {
		t.Fatalf("MobileNet folded FPS = %.2f, out of plausible band", r.FPS)
	}
}

func TestDenseUnrollDivisors(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{400, 40}, {120, 40}, {84, 4}, {1024, 32}, {1000, 40}, {13, 1},
	} {
		if got := denseUnroll(tc.n); got != tc.want {
			t.Fatalf("denseUnroll(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestChannelDepthsMatchPeakOccupancy(t *testing.T) {
	// §4.11: channel depths are sized to hold the producer's full output
	// feature map, "adequate to prevent channels from stalling". Verify the
	// functional run's peak FIFO occupancy never exceeds the declared depth.
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine()
	var kernels []*ir.Kernel
	for _, st := range p.stages {
		bindStageTensors(m, st)
		kernels = append(kernels, st.op.Kernel)
	}
	m.Bind(p.inBuf, nn.Digit(1).Data)
	out := tensor.New(10)
	m.Bind(p.outBuf, out.Data)
	if err := m.RunGraph(kernels, nil); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, k := range kernels {
		_, writes := k.Channels()
		for _, ch := range writes {
			peak := m.Channel(ch).Peak
			if peak > ch.Depth {
				t.Fatalf("channel %s peak %d exceeds declared depth %d (would stall)", ch.Name, peak, ch.Depth)
			}
			if peak != ch.Depth {
				t.Fatalf("channel %s sized %d but peaks at %d (thesis sizes depth = full OFM)", ch.Name, ch.Depth, peak)
			}
			checked++
		}
	}
	if checked < 8 {
		t.Fatalf("only %d channels checked", checked)
	}
}

func TestFoldedConcatInceptionStyle(t *testing.T) {
	// A new operator (channel concat) through the whole flow: graph, fusion,
	// a parameterized copy kernel, the folded plan and functional execution —
	// the §1.1 extensibility demonstration.
	g := relay.NewGraph()
	x := g.Input(4, 12, 12)
	b1 := g.ReLU(g.Conv(x, "b1", 4, 1, 1, 0)) // 1x1 branch
	b2 := g.ReLU(g.Conv(x, "b2", 6, 3, 1, 1)) // 3x3 branch
	b3 := g.MaxPool(x, 3, 1, 1)               // pool branch
	y := g.Concat(b1, b2, b3)                 // 14 channels
	y = g.ReLU(g.Conv(y, "merge", 8, 1, 1, 0))
	y = g.Flatten(y)
	y = g.Dense(y, "fc", 5)
	y = g.Softmax(y)
	g.InitWeights(77)
	layers, err := relay.Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FoldedConfig{DenseVec: 4, Workaround: true}
	f, err := BuildFolded(layers, cfg, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Design.Synthesizable() {
		t.Fatal(f.Design.Err())
	}
	input := nn.RandomImage(9, 4, 12, 12)
	want, err := relay.Execute(layers, input)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("concat network diverges: %v", tensor.MaxAbsDiff(got, want))
	}
	// Timed run works too (three copy invocations share one compute unit).
	r, err := f.Run(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.FPS <= 0 {
		t.Fatal("no throughput")
	}
	// Exactly one concat_copy kernel exists in the design.
	found := 0
	for _, m := range f.Design.Kernels {
		if m.Kernel.Name == "concat_copy" {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("concat_copy kernels = %d, want 1 (folded reuse)", found)
	}
}

func TestPipelinedRejectsConcat(t *testing.T) {
	g := relay.NewGraph()
	x := g.Input(2, 8, 8)
	a := g.ReLU(g.Conv(x, "a", 2, 3, 1, 1))
	b := g.ReLU(g.Conv(x, "b", 2, 3, 1, 1))
	y := g.Concat(a, b)
	y = g.Flatten(y)
	y = g.Dense(y, "fc", 3)
	g.Softmax(y)
	g.InitWeights(3)
	layers, err := relay.Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPipelined(layers, PipeChannels, fpga.S10SX, aoc.DefaultOptions); err == nil {
		t.Fatal("pipelined execution must reject multi-input layers")
	}
}

func TestFoldedRejectsBadTiling(t *testing.T) {
	layers := lenetLayers(t)
	// conv W2 values (26, 11) are not divisible by 7.
	cfg := FoldedConfig{
		Conv:       map[string]topi.ConvSched{"conv3x3s1": topi.OptSched(7, 1, 1)},
		DenseVec:   4,
		Workaround: true,
	}
	if _, err := BuildFolded(layers, cfg, fpga.S10SX, aoc.DefaultOptions); err == nil ||
		!strings.Contains(err.Error(), "not divisible") {
		t.Fatalf("want divisibility error, got %v", err)
	}
	// Dense unroll that does not divide every dense layer's N.
	cfg2 := FoldedConfig{DenseVec: 7, Workaround: true}
	if _, err := BuildFolded(layers, cfg2, fpga.S10SX, aoc.DefaultOptions); err == nil {
		t.Fatal("want dense divisibility error")
	}
}

func TestFoldedRunRefusesUnsynthesizable(t *testing.T) {
	g := nn.MobileNetV1()
	layers, err := relay.Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := BuildFolded(layers, FoldedConfig{Naive: true, Workaround: true}, fpga.A10, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Design.Synthesizable() {
		t.Skip("unexpectedly fits")
	}
	if _, err := dep.Run(1, false); err == nil {
		t.Fatal("Run must refuse an unsynthesizable design")
	}
	if _, err := dep.ProfileOps(); err == nil {
		t.Fatal("ProfileOps must refuse an unsynthesizable design")
	}
}
