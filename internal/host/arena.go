package host

// Execution arenas: persistent per-worker functional execution state for the
// batch engine. The seed Infer paths allocate a fresh sim.Machine (and, for
// folded plans, one per invocation) for every image, so a batch of N images
// pays N× the closure-compilation and buffer-allocation cost. An arena keeps
// one warm Machine per worker: kernels compile once, output/scratch slices
// come from a sync.Pool-backed arena and are reused (zeroed) across images,
// and channel FIFO storage persists. The returned closure is bit-identical to
// the cold-machine Infer because every piece of machine state a kernel can
// observe — scratches, outputs, channels, Alloc-ed temporaries — is reset to
// the cold-start contents (all zeros, empty FIFOs) before each image.

import (
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// inferFn runs one image functionally and returns a freshly allocated output
// tensor (safe to retain across subsequent calls).
type inferFn func(*tensor.Tensor) (*tensor.Tensor, error)

// arenaCache keeps warm arenas alive across RunBatch calls on a deployment,
// so repeated batches stop recompiling kernels and reallocating buffers.
// Workers check an arena out for the duration of a batch and return it
// afterwards; concurrent batches on one deployment simply build extra arenas
// instead of sharing one (an arena itself is single-threaded).
type arenaCache struct {
	mu   sync.Mutex
	pool *sim.BufPool
	free []inferFn
}

// bufPool returns the cache's shared slice pool, creating it on first use.
func (c *arenaCache) bufPool() *sim.BufPool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pool == nil {
		c.pool = &sim.BufPool{}
	}
	return c.pool
}

// checkout hands out a cached arena, or builds one with mk when none is free.
func (c *arenaCache) checkout(mk func(*sim.BufPool) inferFn) inferFn {
	pool := c.bufPool()
	c.mu.Lock()
	if n := len(c.free); n > 0 {
		fn := c.free[n-1]
		c.free = c.free[:n-1]
		c.mu.Unlock()
		return fn
	}
	c.mu.Unlock()
	return mk(pool)
}

// checkin returns an arena to the cache.
func (c *arenaCache) checkin(fn inferFn) {
	c.mu.Lock()
	c.free = append(c.free, fn)
	c.mu.Unlock()
}

// NewArena returns a warm-machine inference closure for a pipelined
// deployment. The closure is NOT safe for concurrent use; the batch engine
// gives each worker its own arena. pool may be shared across arenas (it is
// sync.Pool-backed); nil uses plain allocation.
func (p *Pipelined) NewArena(pool *sim.BufPool) inferFn {
	m := sim.NewMachine()
	m.SetPool(pool)
	m.SetStats(&p.simStats)
	// zero collects every slice that must be cleared before each image so a
	// warm run starts from the same state as a cold one.
	var zero [][]float32
	for i, st := range p.stages {
		bindStageTensors(m, st)
		for _, sc := range st.op.Scratches {
			if data := m.Buffer(sc); data != nil {
				zero = append(zero, data)
			}
		}
		if st.op.Out != nil {
			var n int64
			if i == len(p.stages)-1 {
				n = 1
				for _, d := range p.outShape {
					n *= int64(d)
				}
			} else {
				n, _ = st.op.Out.ConstLen()
			}
			data := m.Grab(int(n))
			m.Bind(st.op.Out, data)
			zero = append(zero, data)
		}
	}
	// Consumer inputs alias their producer's output, as in Infer; network
	// inputs are rebound per image.
	var netIns []*ir.Buffer
	kernels := make([]*ir.Kernel, 0, len(p.stages))
	for _, st := range p.stages {
		if st.op.In != nil {
			if st.layer.In < 0 {
				netIns = append(netIns, st.op.In)
			} else {
				m.Bind(st.op.In, m.Buffer(p.stages[st.layer.In].op.Out))
			}
		}
		kernels = append(kernels, st.op.Kernel)
	}
	return func(input *tensor.Tensor) (*tensor.Tensor, error) {
		for _, s := range zero {
			clear(s)
		}
		m.ResetChannels()
		for _, b := range netIns {
			m.Bind(b, input.Data)
		}
		if err := m.RunGraph(kernels, nil); err != nil {
			return nil, err
		}
		out := tensor.New(p.outShape...)
		copy(out.Data, m.Buffer(p.outBuf))
		return out, nil
	}
}

// NewArena returns a warm-machine inference closure for a folded deployment.
// One Machine executes the whole plan (the seed Infer spins up a Machine per
// invocation), so each parameterized kernel compiles exactly once per worker;
// per-invocation buffer arguments are rebound the way the host passes new
// cl_mem arguments. Not safe for concurrent use.
func (f *Folded) NewArena(pool *sim.BufPool) inferFn {
	m := sim.NewMachine()
	m.SetPool(pool)
	m.SetStats(&f.simStats)
	outs := make([][]float32, len(f.Layers))
	scratch := map[*ir.Buffer][]float32{}
	for _, inv := range f.plan {
		if outs[inv.outIdx] == nil {
			outs[inv.outIdx] = m.Grab(f.outBytes[inv.outIdx] / 4)
		}
		for _, sc := range inv.op.Scratches {
			if n, ok := sc.ConstLen(); ok && scratch[sc] == nil {
				scratch[sc] = m.Grab(int(n))
			}
		}
	}
	return func(input *tensor.Tensor) (*tensor.Tensor, error) {
		for _, o := range outs {
			if o != nil {
				clear(o)
			}
		}
		get := func(idx int) []float32 {
			if idx < 0 {
				return input.Data
			}
			return outs[idx]
		}
		for _, inv := range f.plan {
			op, l := inv.op, inv.layer
			if op.In != nil {
				m.Bind(op.In, get(inv.inIdx))
			}
			if op.Weights != nil {
				m.Bind(op.Weights, l.W.Data)
			}
			if op.Bias != nil {
				m.Bind(op.Bias, l.B.Data)
			}
			if op.Skip != nil {
				m.Bind(op.Skip, get(inv.skipIdx))
			}
			for _, sc := range op.Scratches {
				if s := scratch[sc]; s != nil {
					// Zeroed per invocation: a cold Infer binds a fresh slice
					// each time, and the same op can serve many layers.
					clear(s)
					m.Bind(sc, s)
				}
			}
			m.Bind(op.Out, outs[inv.outIdx])
			if err := m.Run(inv.kernel, inv.bindings); err != nil {
				return nil, fmt.Errorf("host: layer %s: %w", l.Name, err)
			}
		}
		last := f.plan[len(f.plan)-1]
		out := tensor.New(f.outShape...)
		copy(out.Data, outs[last.outIdx])
		return out, nil
	}
}
