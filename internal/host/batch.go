package host

// Batched, parallel inference: RunBatch streams N images through a bounded
// worker pool. Each worker owns (a) a warm functional arena (arena.go) that
// produces the actual outputs, and (b) its own simulated device context whose
// modeled time reflects double-buffered H2D/D2H transfer/compute overlap —
// the thesis's concurrent-queue optimization applied across images instead of
// across layers. Images are striped statically (image i → worker i mod K), so
// outputs, modeled time per worker, and the per-image fault ledgers are all
// deterministic for a given worker count, and the outputs are bit-identical
// to N sequential Infer calls for every worker count.

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/clrt"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/relay"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// BatchOptions configures a RunBatch call. The zero value is usable: all
// available CPUs, no cancellation, no tracing, no fault injection.
type BatchOptions struct {
	// Workers bounds the worker pool; <=0 selects GOMAXPROCS. Clamped to the
	// batch size.
	Workers int
	// Context cancels the batch between images; nil means Background.
	Context context.Context
	// Trace receives per-image spans, per-worker device timelines and batch
	// metrics (images/sec, overlap ratio). Nil disables tracing.
	Trace *trace.Collector
	// FaultSeed/FaultRate derive one deterministic injector per image
	// (seed+image index), so the ledger attributes every fault to the image
	// whose commands provoked it regardless of worker count. Rate 0 disables
	// injection.
	FaultSeed int64
	FaultRate float64
	// MaxRetries bounds retries per device command (default 3); BackoffUS is
	// the initial retry backoff in simulated microseconds, doubled per attempt
	// (default 50).
	MaxRetries int
	BackoffUS  float64
	// NoDoubleBuffer uses depth-1 buffer rings (the serial-transfer ablation).
	NoDoubleBuffer bool
}

// BatchFault is one injected fault attributed to the image whose commands
// provoked it.
type BatchFault struct {
	Image  int
	Record fault.Record
}

// BatchResult is the outcome of a RunBatch call.
type BatchResult struct {
	// Outputs[i] is the network output for inputs[i], bit-identical to a
	// sequential Infer(inputs[i]).
	Outputs []*tensor.Tensor
	Images  int
	Workers int
	// ModeledUS is the simulated wall time of the batch: the max over workers
	// of their device-context elapsed time (setup transfers excluded).
	ModeledUS    float64
	ImagesPerSec float64
	// Overlap aggregates transfer/compute overlap across workers; Ratio near
	// 0 means transfers serialized with kernels, higher means hidden.
	Overlap clrt.Overlap
	// Faults lists injected faults in image order; Retries counts device
	// commands re-enqueued after transient faults.
	Faults  []BatchFault
	Retries int
}

// timedBatch is one worker's device model: a programmed context with
// parameters uploaded (outside the measured window), transfer queues, and a
// closure enqueuing one image's kernels between a pair of ring buffers.
type timedBatch struct {
	ctx           *clrt.Context
	writeQ, readQ *clrt.Queue
	inBytes       int
	outBytes      int
	setupEvents   int
	// enqueue enqueues the image's kernels reading devIn and writing devOut,
	// wrapping every device call in try for fault retry.
	enqueue func(devIn, devOut *clrt.Buffer, try tryFn) error
}

// tryFn wraps one device command in bounded retry-with-backoff.
type tryFn func(op func() (*clrt.Event, error)) (*clrt.Event, error)

// RunBatch classifies a batch of images on a pipelined deployment. See
// BatchOptions/BatchResult; outputs are bit-identical to sequential Infer.
func (p *Pipelined) RunBatch(inputs []*tensor.Tensor, opt BatchOptions) (*BatchResult, error) {
	return runBatch(inputs, opt, &p.arenas, &p.simStats, p.NewArena, p.newTimedBatch)
}

// RunBatch classifies a batch of images on a folded deployment.
func (f *Folded) RunBatch(inputs []*tensor.Tensor, opt BatchOptions) (*BatchResult, error) {
	return runBatch(inputs, opt, &f.arenas, &f.simStats, f.NewArena, f.newTimedBatch)
}

// newTimedBatch programs one worker device for a pipelined deployment.
// Kernels get one queue each (concurrent execution, §4.8); host-side
// transfers run on dedicated write/read queues so ring-buffer hazards — not
// queue order — decide what serializes.
func (p *Pipelined) newTimedBatch() (*timedBatch, error) {
	if err := p.Design.Err(); err != nil {
		return nil, err
	}
	ctx, err := clrt.NewContext(p.Design)
	if err != nil {
		return nil, err
	}
	bufs := map[*ir.Buffer]*clrt.Buffer{}
	devBuf := func(b *ir.Buffer) *clrt.Buffer {
		if d, ok := bufs[b]; ok {
			return d
		}
		sz, _ := b.ConstLen()
		d := ctx.NewBuffer(b.Name, int(sz)*4)
		bufs[b] = d
		return d
	}
	setup := ctx.NewQueue()
	for _, st := range p.stages {
		if st.op.Weights != nil {
			if _, err := setup.EnqueueWrite(devBuf(st.op.Weights), st.layer.W.Bytes()); err != nil {
				return nil, err
			}
		}
		if st.op.Bias != nil {
			if _, err := setup.EnqueueWrite(devBuf(st.op.Bias), st.layer.B.Bytes()); err != nil {
				return nil, err
			}
		}
	}
	ctx.Finish()

	tb := &timedBatch{ctx: ctx, setupEvents: len(ctx.Events())}
	tb.writeQ, tb.readQ = ctx.NewQueue(), ctx.NewQueue()
	queues := map[string]*clrt.Queue{}
	queueFor := func(name string) *clrt.Queue {
		if q, ok := queues[name]; ok {
			return q
		}
		q := ctx.NewQueue()
		queues[name] = q
		return q
	}
	tb.inBytes, tb.outBytes = 4, 4
	for _, d := range p.inShape {
		tb.inBytes *= d
	}
	for _, d := range p.outShape {
		tb.outBytes *= d
	}
	tb.enqueue = func(devIn, devOut *clrt.Buffer, try tryFn) error {
		for _, st := range p.stages {
			if st.op.Kernel.Autorun {
				continue
			}
			call := clrt.KernelCall{Name: st.op.Kernel.Name}
			if st.op.In != nil {
				if st.layer.In < 0 {
					call.Reads = append(call.Reads, devIn)
				} else {
					call.Reads = append(call.Reads, devBuf(p.stages[st.layer.In].op.Out))
				}
			}
			for _, b := range []*ir.Buffer{st.op.Weights, st.op.Bias} {
				if b != nil {
					call.Reads = append(call.Reads, devBuf(b))
				}
			}
			for _, b := range st.op.Scratches {
				call.Writes = append(call.Writes, devBuf(b))
			}
			if st.op.Out != nil {
				if st.op.Out == p.outBuf {
					call.Writes = append(call.Writes, devOut)
				} else {
					call.Writes = append(call.Writes, devBuf(st.op.Out))
				}
			}
			q := queueFor(call.Name)
			if _, err := try(func() (*clrt.Event, error) { return q.EnqueueKernel(call) }); err != nil {
				return fmt.Errorf("kernel %s: %w", call.Name, err)
			}
		}
		return nil
	}
	return tb, nil
}

// newTimedBatch programs one worker device for a folded deployment: a single
// kernel queue (folded kernels time-multiplex one datapath, §4.11) plus
// dedicated transfer queues and persistent activation/scratch buffers.
func (f *Folded) newTimedBatch() (*timedBatch, error) {
	if err := f.Design.Err(); err != nil {
		return nil, err
	}
	ctx, err := clrt.NewContext(f.Design)
	if err != nil {
		return nil, err
	}
	setup := ctx.NewQueue()
	outBufs := make([]*clrt.Buffer, len(f.Layers))
	actOf := func(idx int) *clrt.Buffer {
		if outBufs[idx] == nil {
			outBufs[idx] = ctx.NewBuffer(fmt.Sprintf("act%d", idx), f.outBytes[idx])
		}
		return outBufs[idx]
	}
	wBufs := map[*relay.Layer]*clrt.Buffer{}
	bBufs := map[*relay.Layer]*clrt.Buffer{}
	for _, inv := range f.plan {
		if inv.layer.W != nil && inv.op.Weights != nil && wBufs[inv.layer] == nil {
			b := ctx.NewBuffer(inv.layer.Name+"_w", inv.layer.W.Bytes())
			wBufs[inv.layer] = b
			if _, err := setup.EnqueueWrite(b, inv.layer.W.Bytes()); err != nil {
				return nil, err
			}
		}
		if inv.layer.B != nil && inv.op.Bias != nil && bBufs[inv.layer] == nil {
			b := ctx.NewBuffer(inv.layer.Name+"_b", inv.layer.B.Bytes())
			bBufs[inv.layer] = b
			if _, err := setup.EnqueueWrite(b, inv.layer.B.Bytes()); err != nil {
				return nil, err
			}
		}
	}
	scratchBufs := map[*ir.Buffer]*clrt.Buffer{}
	for _, inv := range f.plan {
		for _, sc := range inv.op.Scratches {
			if n, ok := sc.ConstLen(); ok && scratchBufs[sc] == nil {
				scratchBufs[sc] = ctx.NewBuffer(sc.Name, int(n)*4)
			}
		}
	}
	ctx.Finish()

	tb := &timedBatch{ctx: ctx, setupEvents: len(ctx.Events())}
	tb.writeQ, tb.readQ = ctx.NewQueue(), ctx.NewQueue()
	kq := ctx.NewQueue()
	tb.inBytes, tb.outBytes = 4, 4
	for _, d := range f.inShape {
		tb.inBytes *= d
	}
	for _, d := range f.outShape {
		tb.outBytes *= d
	}
	last := f.plan[len(f.plan)-1]
	tb.enqueue = func(devIn, devOut *clrt.Buffer, try tryFn) error {
		devAct := func(idx int) *clrt.Buffer {
			if idx < 0 {
				return devIn
			}
			if idx == last.outIdx {
				return devOut
			}
			return actOf(idx)
		}
		for _, inv := range f.plan {
			call := clrt.KernelCall{Name: inv.kernel.Name, Bindings: inv.bindings,
				Reads: []*clrt.Buffer{devAct(inv.inIdx)}}
			if b := wBufs[inv.layer]; b != nil {
				call.Reads = append(call.Reads, b)
			}
			if b := bBufs[inv.layer]; b != nil {
				call.Reads = append(call.Reads, b)
			}
			if inv.skipIdx >= 0 || (inv.layer.HasSkip && inv.skipIdx == -1) {
				call.Reads = append(call.Reads, devAct(inv.skipIdx))
			}
			for _, sc := range inv.op.Scratches {
				if b := scratchBufs[sc]; b != nil {
					call.Writes = append(call.Writes, b)
				}
			}
			call.Writes = append(call.Writes, devAct(inv.outIdx))
			if _, err := try(func() (*clrt.Event, error) { return kq.EnqueueKernel(call) }); err != nil {
				return fmt.Errorf("kernel %s (layer %s): %w", call.Name, inv.layer.Name, err)
			}
		}
		return nil
	}
	return tb, nil
}

// wstat is one worker's contribution to the batch result.
type wstat struct {
	elapsed float64
	overlap clrt.Overlap
	retries int
	spans   []trace.Span
	events  []*clrt.Event
	err     error
}

func runBatch(inputs []*tensor.Tensor, opt BatchOptions, cache *arenaCache,
	simStats *sim.ExecStats, newArena func(*sim.BufPool) inferFn,
	newTimed func() (*timedBatch, error)) (*BatchResult, error) {

	n := len(inputs)
	res := &BatchResult{Images: n}
	if n == 0 {
		return res, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	res.Workers = workers
	cctx := opt.Context
	if cctx == nil {
		cctx = context.Background()
	}

	outputs := make([]*tensor.Tensor, n)
	ledgers := make([][]fault.Record, n)
	stats := make([]wstat, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stats[w] = runBatchWorker(w, workers, inputs, outputs, ledgers, opt, cctx, cache, newArena, newTimed)
		}(w)
	}
	wg.Wait()
	for w := range stats {
		if stats[w].err != nil {
			return nil, fmt.Errorf("host: batch worker %d: %w", w, stats[w].err)
		}
	}

	res.Outputs = outputs
	for w, st := range stats {
		res.Retries += st.retries
		if st.elapsed > res.ModeledUS {
			res.ModeledUS = st.elapsed
		}
		res.Overlap.TransferUS += st.overlap.TransferUS
		res.Overlap.KernelUS += st.overlap.KernelUS
		res.Overlap.HiddenUS += st.overlap.HiddenUS
		if tc := opt.Trace; tc != nil {
			tc.AddEventsAs(fmt.Sprintf("device w%d", w), st.events, st.elapsed, 0)
			for _, sp := range st.spans {
				tc.Add(sp)
			}
		}
	}
	if res.Overlap.TransferUS > 0 {
		res.Overlap.Ratio = res.Overlap.HiddenUS / res.Overlap.TransferUS
	}
	if res.ModeledUS > 0 {
		res.ImagesPerSec = float64(n) / res.ModeledUS * 1e6
	}
	for img, recs := range ledgers {
		for _, r := range recs {
			res.Faults = append(res.Faults, BatchFault{Image: img, Record: r})
		}
		opt.Trace.AddFaults(recs, 0)
	}
	if tc := opt.Trace; tc != nil {
		tc.Metrics().Counter("host.batch.images").Add(int64(n))
		tc.Metrics().Gauge("host.batch.workers").Set(float64(workers))
		tc.Metrics().Gauge("host.batch.images_per_sec").Set(res.ImagesPerSec)
		tc.Metrics().Gauge("host.batch.overlap_ratio").Set(res.Overlap.Ratio)
		publishSimStats(tc.Metrics(), simStats.Snapshot())
	}
	return res, nil
}

// runBatchWorker drives the images striped to one worker: functional results
// through a warm arena, modeled time through a software-pipelined enqueue
// loop (write i → kernels i → read i-1) over depth-2 buffer rings, bounded
// retry on transient injected faults, and a per-image injector whose ledger
// is collected as soon as the image's last command has been enqueued.
func runBatchWorker(w, workers int, inputs, outputs []*tensor.Tensor, ledgers [][]fault.Record,
	opt BatchOptions, cctx context.Context, cache *arenaCache,
	newArena func(*sim.BufPool) inferFn, newTimed func() (*timedBatch, error)) wstat {

	st := wstat{}
	maxRetries := opt.MaxRetries
	if maxRetries == 0 {
		maxRetries = 3
	}
	backoff0 := opt.BackoffUS
	if backoff0 == 0 {
		backoff0 = 50
	}
	depth := 2
	if opt.NoDoubleBuffer {
		depth = 1
	}

	infer := cache.checkout(newArena)
	defer cache.checkin(infer)
	tb, err := newTimed()
	if err != nil {
		st.err = err
		return st
	}
	start := tb.ctx.ElapsedUS()
	inRing := tb.ctx.NewBufferRing("batch_in", tb.inBytes, depth)
	outRing := tb.ctx.NewBufferRing("batch_out", tb.outBytes, depth)

	try := func(op func() (*clrt.Event, error)) (*clrt.Event, error) {
		backoff := backoff0
		for attempt := 0; ; attempt++ {
			ev, err := op()
			if err == nil {
				return ev, nil
			}
			if !fault.IsTransient(err) || attempt >= maxRetries {
				return ev, fmt.Errorf("after %d attempt(s): %w", attempt+1, err)
			}
			st.retries++
			tb.ctx.AdvanceHost(backoff)
			backoff *= 2
		}
	}

	// pending is an image whose D2H read is deferred one iteration so it can
	// overlap the next image's kernels (the software pipeline's drain stage).
	type pending struct {
		img   int
		buf   *clrt.Buffer
		inj   *fault.Injector
		write *clrt.Event
	}
	flush := func(p *pending) error {
		tb.ctx.Injector = p.inj
		rev, err := try(func() (*clrt.Event, error) { return tb.readQ.EnqueueRead(p.buf, tb.outBytes) })
		if err != nil {
			return fmt.Errorf("image %d output read: %w", p.img, err)
		}
		if p.inj != nil {
			ledgers[p.img] = p.inj.Records()
		}
		if opt.Trace != nil && p.write != nil && rev != nil {
			st.spans = append(st.spans, trace.Span{
				Proc:    "host",
				Track:   fmt.Sprintf("batch w%d", w),
				Name:    fmt.Sprintf("image %d", p.img),
				Cat:     "image",
				StartUS: p.write.StartUS,
				DurUS:   rev.EndUS - p.write.StartUS,
				Args:    map[string]string{"worker": fmt.Sprintf("%d", w)},
			})
		}
		return nil
	}

	var prev *pending
	for img := w; img < len(inputs); img += workers {
		select {
		case <-cctx.Done():
			st.err = cctx.Err()
			return st
		default:
		}
		out, err := infer(inputs[img])
		if err != nil {
			st.err = fmt.Errorf("image %d: %w", img, err)
			return st
		}
		outputs[img] = out

		var inj *fault.Injector
		if opt.FaultRate > 0 {
			inj = fault.NewInjector(opt.FaultSeed+int64(img)+1, opt.FaultRate)
		}
		tb.ctx.Injector = inj
		devIn, devOut := inRing.Next(), outRing.Next()
		wev, err := try(func() (*clrt.Event, error) { return tb.writeQ.EnqueueWrite(devIn, tb.inBytes) })
		if err != nil {
			st.err = fmt.Errorf("image %d input write: %w", img, err)
			return st
		}
		if err := tb.enqueue(devIn, devOut, try); err != nil {
			st.err = fmt.Errorf("image %d: %w", img, err)
			return st
		}
		cur := &pending{img: img, buf: devOut, inj: inj, write: wev}
		if prev != nil {
			if err := flush(prev); err != nil {
				st.err = err
				return st
			}
		}
		prev = cur
	}
	if prev != nil {
		if err := flush(prev); err != nil {
			st.err = err
			return st
		}
	}
	tb.ctx.Finish()
	st.elapsed = tb.ctx.ElapsedUS() - start
	st.overlap = tb.ctx.OverlapSince(start)
	st.events = tb.ctx.Events()[tb.setupEvents:]
	return st
}
