// Package host implements the thesis's custom OpenCL host program (§5.2) on
// top of the clrt runtime simulator: loading parameters, executing kernels
// with different buffer/parameter sets, toggleable concurrent execution
// (one command queue per kernel), asynchronous enqueueing, and output
// verification against the native references.
//
// Two deployment modes mirror §3.1: Pipelined (one kernel per layer, CL
// channels carrying activations, optional autorun, used for LeNet) and
// Folded (parameterized kernels time-multiplexed over layers, used for
// MobileNet and ResNet).
package host

import (
	"fmt"

	"repro/internal/aoc"
	"repro/internal/clrt"
	"repro/internal/fpga"
	"repro/internal/ir"
	"repro/internal/relay"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/topi"
	"repro/internal/trace"
)

// PipeVariant selects one of the Table 6.4 bitstreams.
type PipeVariant int

const (
	// PipeBase is the default TVM schedule: naive kernels, global buffers.
	PipeBase PipeVariant = iota
	// PipeUnroll adds hand-applied unrolling: the convolution inner product
	// loops (F×F) and the dense reductions (40/40/4 for LeNet).
	PipeUnroll
	// PipeChannels moves activations into CL channels with fused
	// activations, write caches and optimized schedules.
	PipeChannels
	// PipeAutorun additionally declares weight-less kernels autorun.
	PipeAutorun
	// PipeTVMAutorun is PipeAutorun with unrolling/fusion applied through
	// the schedule primitives instead of by hand (the automation validation
	// step of §6.3.1). The generated kernels are structurally identical.
	PipeTVMAutorun
)

func (v PipeVariant) String() string {
	switch v {
	case PipeBase:
		return "Base"
	case PipeUnroll:
		return "Unrolling"
	case PipeChannels:
		return "Channels"
	case PipeAutorun:
		return "Autorun"
	case PipeTVMAutorun:
		return "TVM-Autorun"
	}
	return "?"
}

// PipeVariants lists the Table 6.4 ladder in order.
var PipeVariants = []PipeVariant{PipeBase, PipeUnroll, PipeChannels, PipeAutorun, PipeTVMAutorun}

// denseUnrollFactors returns the hand-chosen dense unroll factors of Table
// 6.4 (40/40/4 for LeNet's three dense layers); other networks default to
// the largest divisor of N not exceeding 40.
func denseUnroll(n int) int {
	for _, f := range []int{40, 32, 20, 16, 10, 8, 5, 4, 2} {
		if n%f == 0 {
			return f
		}
	}
	return 1
}

// stage couples a lowered layer with its generated kernel and buffers.
type stage struct {
	layer *relay.Layer
	op    *topi.Op
	// scalars for symbolic kernels (nil for pipelined).
	bindings map[*ir.Var]int64
}

// Pipelined is a fully built pipelined deployment: kernels, design and the
// metadata needed to drive or verify it.
type Pipelined struct {
	Variant PipeVariant
	Board   *fpga.Board
	Design  *aoc.Design
	Layers  []*relay.Layer

	stages   []*stage
	inBuf    *ir.Buffer // network input (first kernel's global input)
	outBuf   *ir.Buffer // network output
	inShape  []int
	outShape []int

	// arenas caches warm batch-worker execution state across RunBatch calls.
	arenas arenaCache
	// simStats accumulates execution-tier counters across every sim machine
	// this deployment creates (Infer, DumpActivations, batch arenas).
	simStats sim.ExecStats
}

// SimStats returns the cumulative execution-tier counters (compile cache,
// vectorized vs fallback loops, guard bailouts) for this deployment.
func (p *Pipelined) SimStats() sim.StatsSnapshot { return p.simStats.Snapshot() }

// BuildPipelined generates one kernel per layer according to the variant
// and compiles the design for the board.
func BuildPipelined(layers []*relay.Layer, variant PipeVariant, board *fpga.Board, opts aoc.Options) (*Pipelined, error) {
	p := &Pipelined{Variant: variant, Board: board, Layers: layers}
	useChannels := variant >= PipeChannels
	useAutorun := variant >= PipeAutorun

	// Pipelined execution requires a linear chain (no residuals) — the
	// thesis pipelines LeNet only.
	for _, l := range layers {
		if l.HasSkip || len(l.Ins) > 1 {
			return nil, fmt.Errorf("host: pipelined execution requires a linear chain (layer %s)", l.Name)
		}
	}

	// Channels between consecutive layers, sized to hold the producer's
	// full output feature map (§4.11).
	var chans []*ir.Channel
	if useChannels {
		for i, l := range layers[:len(layers)-1] {
			n := 1
			for _, d := range l.OutShape {
				n *= d
			}
			chans = append(chans, &ir.Channel{Name: fmt.Sprintf("ch%d", i), Depth: n})
		}
	}
	chanIn := func(i int) *ir.Channel {
		if !useChannels || i == 0 {
			return nil
		}
		return chans[i-1]
	}
	chanOut := func(i int) *ir.Channel {
		if !useChannels || i == len(layers)-1 {
			return nil
		}
		return chans[i]
	}

	var kernels []*ir.Kernel
	for i, l := range layers {
		io := topi.ConvIO{InCh: chanIn(i), OutCh: chanOut(i)}
		naive := variant <= PipeUnroll
		autorun := useAutorun && io.InCh != nil && io.OutCh != nil &&
			(l.Kind == relay.KMaxPool || l.Kind == relay.KAvgPool || l.Kind == relay.KFlatten)
		op, err := buildLayerKernel(l, naive, io, autorun, denseUnroll)
		if err != nil {
			return nil, err
		}
		if variant == PipeUnroll {
			if err := applyHandUnroll(op, l); err != nil {
				return nil, err
			}
		}
		p.stages = append(p.stages, &stage{layer: l, op: op})
		kernels = append(kernels, op.Kernel)
	}

	// Locate the network input/output buffers.
	first, last := p.stages[0], p.stages[len(p.stages)-1]
	p.inBuf, p.outBuf = first.op.In, last.op.Out
	p.inShape, p.outShape = layers[0].InShape, last.layer.OutShape
	if p.inBuf == nil || p.outBuf == nil {
		return nil, fmt.Errorf("host: pipeline endpoints must be global buffers")
	}

	d, err := aoc.Compile(fmt.Sprintf("pipelined-%s", variant), kernels, board, opts)
	if err != nil {
		return nil, err
	}
	p.Design = d
	return p, nil
}

// buildLayerKernel generates the kernel for one lowered layer.
func buildLayerKernel(l *relay.Layer, naive bool, io topi.ConvIO, autorun bool, du func(int) int) (*topi.Op, error) {
	switch l.Kind {
	case relay.KConv:
		spec := topi.ConvSpec{Name: l.Name, C1: l.InShape[0], H: l.InShape[1], W: l.InShape[2],
			C2: l.OutShape[0], F: l.F, S: l.S, Relu: l.Relu, Relu6: l.Relu6, Bias: l.B != nil, Residual: l.HasSkip}
		sched := topi.ConvSched{Naive: naive}
		if !naive {
			sched = topi.OptSched(1, 1, 1)
		}
		return topi.Conv2D(spec, sched, io)
	case relay.KDepthwise:
		spec := topi.DepthwiseSpec{Name: l.Name, C: l.InShape[0], H: l.InShape[1], W: l.InShape[2],
			F: l.F, S: l.S, Relu: l.Relu, Relu6: l.Relu6, Bias: l.B != nil}
		return topi.DepthwiseConv2D(spec, naive, 1, io)
	case relay.KDense:
		spec := topi.DenseSpec{Name: l.Name, N: l.InShape[0], M: l.OutShape[0], Relu: l.Relu, Relu6: l.Relu6, Bias: l.B != nil}
		kvec := 1
		if !naive {
			kvec = du(l.InShape[0])
		}
		return topi.Dense(spec, naive, kvec, io)
	case relay.KMaxPool, relay.KAvgPool:
		spec := topi.PoolSpec{Name: l.Name, C: l.InShape[0], H: l.InShape[1], W: l.InShape[2],
			F: l.F, S: l.S, Avg: l.Kind == relay.KAvgPool}
		return topi.Pool2D(spec, naive, io, autorun)
	case relay.KFlatten:
		return topi.Flatten(l.Name, l.OutShape[0], io, autorun)
	case relay.KSoftmax:
		return topi.Softmax(l.Name, l.OutShape[0], naive, io)
	case relay.KPad:
		return topi.Pad2D(topi.PadSpec{Name: l.Name, C: l.InShape[0], H: l.InShape[1], W: l.InShape[2], P: l.P}, io)
	}
	return nil, fmt.Errorf("host: cannot build kernel for layer kind %v", l.Kind)
}

// applyHandUnroll reproduces the Table 6.4 "Unrolling" bitstream: explicit
// #pragma unroll on the convolution F×F product loops and strip-mine+unroll
// on the dense reductions, applied with the schedule primitives to the naive
// kernels.
func applyHandUnroll(op *topi.Op, l *relay.Layer) error {
	body := op.Kernel.Body
	var err error
	switch l.Kind {
	case relay.KConv, relay.KDepthwise:
		for _, loop := range []string{"ry", "rx"} {
			body, err = schedule.UnrollByName(body, loop, -1)
			if err != nil {
				return fmt.Errorf("host: unrolling %s of %s: %w", loop, l.Name, err)
			}
		}
	case relay.KDense:
		f := denseUnroll(l.InShape[0])
		if f > 1 {
			body, err = schedule.UnrollByName(body, "k", f)
			if err != nil {
				return fmt.Errorf("host: unrolling dense %s: %w", l.Name, err)
			}
		}
	default:
		return nil
	}
	op.Kernel.Body = body
	return nil
}

// Infer runs the pipeline functionally on the IR interpreter and returns the
// network output (the host program's verification path). In buffered
// variants the consumer's input buffer aliases the producer's output, as the
// host program passes the same cl_mem to both kernels.
func (p *Pipelined) Infer(input *tensor.Tensor) (*tensor.Tensor, error) {
	m := sim.NewMachine()
	m.SetStats(&p.simStats)
	// First pass: outputs and parameters.
	for i, st := range p.stages {
		bindStageTensors(m, st)
		if st.op.Out != nil {
			var data []float32
			if i == len(p.stages)-1 {
				data = make([]float32, len(tensor.New(p.outShape...).Data))
			} else {
				n, _ := st.op.Out.ConstLen()
				data = make([]float32, n)
			}
			m.Bind(st.op.Out, data)
		}
	}
	// Second pass: inputs alias their producer's output.
	var kernels []*ir.Kernel
	for _, st := range p.stages {
		if st.op.In != nil {
			if st.layer.In < 0 {
				m.Bind(st.op.In, input.Data)
			} else {
				prev := p.stages[st.layer.In]
				m.Bind(st.op.In, m.Buffer(prev.op.Out))
			}
		}
		kernels = append(kernels, st.op.Kernel)
	}
	if err := m.RunGraph(kernels, nil); err != nil {
		return nil, err
	}
	return tensor.FromData(m.Buffer(p.outBuf), p.outShape...), nil
}

func bindStageTensors(m *sim.Machine, st *stage) {
	if st.op.Weights != nil {
		m.Bind(st.op.Weights, st.layer.W.Data)
	}
	if st.op.Bias != nil {
		m.Bind(st.op.Bias, st.layer.B.Data)
	}
	for _, sc := range st.op.Scratches {
		if n, ok := sc.ConstLen(); ok {
			m.Bind(sc, make([]float32, n))
		}
	}
}

// RunResult summarizes a timed run.
type RunResult struct {
	Images    int
	ElapsedUS float64
	FPS       float64
	// Breakdown sums event time by kind ("kernel"/"write"/"read").
	Breakdown map[string]float64
	// PerKernelUS sums kernel time by kernel name.
	PerKernelUS map[string]float64
	// Timeline is an ASCII Gantt chart of the measured window (setup
	// transfers excluded), showing queue serialization and pipeline overlap.
	Timeline string
}

// Run simulates classifying n images and reports throughput. concurrent
// selects one command queue per kernel (§4.8); profiling enables the OpenCL
// event profiler (which serializes execution, §5.2).
func (p *Pipelined) Run(n int, concurrent, profiling bool) (*RunResult, error) {
	return p.RunTraced(n, concurrent, profiling, nil)
}

// RunTraced is Run with structured tracing: the clrt event stream becomes
// device-side spans and each image a host-side span, with run metrics
// (occupancy, stall %, bandwidth, FPS) published to the collector's
// registry. A nil collector is ignored, so Run delegates here for free.
func (p *Pipelined) RunTraced(n int, concurrent, profiling bool, tc *trace.Collector) (*RunResult, error) {
	if err := p.Design.Err(); err != nil {
		return nil, err
	}
	ctx, err := clrt.NewContext(p.Design)
	if err != nil {
		return nil, err
	}
	ctx.Profiling = profiling

	// Device buffers.
	bufs := map[*ir.Buffer]*clrt.Buffer{}
	devBuf := func(b *ir.Buffer) *clrt.Buffer {
		if b == nil {
			return nil
		}
		if d, ok := bufs[b]; ok {
			return d
		}
		sz, _ := b.ConstLen()
		d := ctx.NewBuffer(b.Name, int(sz)*4)
		bufs[b] = d
		return d
	}

	setup := ctx.NewQueue()
	// Parameters copied once at startup.
	for _, st := range p.stages {
		if st.op.Weights != nil {
			if _, err := setup.EnqueueWrite(devBuf(st.op.Weights), st.layer.W.Bytes()); err != nil {
				return nil, err
			}
		}
		if st.op.Bias != nil {
			if _, err := setup.EnqueueWrite(devBuf(st.op.Bias), st.layer.B.Bytes()); err != nil {
				return nil, err
			}
		}
	}
	ctx.Finish()

	// One queue total, or one per kernel.
	queues := map[string]*clrt.Queue{}
	shared := ctx.NewQueue()
	queueFor := func(name string) *clrt.Queue {
		if !concurrent {
			return shared
		}
		if q, ok := queues[name]; ok {
			return q
		}
		q := ctx.NewQueue()
		queues[name] = q
		return q
	}

	inBytes := 4
	for _, d := range p.inShape {
		inBytes *= d
	}
	outBytes := 4
	for _, d := range p.outShape {
		outBytes *= d
	}

	// In buffered variants the consumer reads the producer's output buffer:
	// resolve each stage's input to the producing stage's device buffer.
	devInOf := func(st *stage) *clrt.Buffer {
		if st.op.In == nil {
			return nil
		}
		if st.layer.In < 0 {
			return devBuf(p.inBuf)
		}
		return devBuf(p.stages[st.layer.In].op.Out)
	}

	start := ctx.ElapsedUS()
	// Event index range of each image's commands; spans are built after
	// Finish, since autorun propagation can still extend producer end times.
	imgRanges := make([][2]int, 0, n)
	for img := 0; img < n; img++ {
		evLo := len(ctx.Events())
		if _, err := queueFor(p.stages[0].op.Kernel.Name).EnqueueWrite(devBuf(p.inBuf), inBytes); err != nil {
			return nil, err
		}
		for _, st := range p.stages {
			if st.op.Kernel.Autorun {
				continue
			}
			call := clrt.KernelCall{Name: st.op.Kernel.Name}
			if in := devInOf(st); in != nil {
				call.Reads = append(call.Reads, in)
			}
			for _, b := range []*ir.Buffer{st.op.Weights, st.op.Bias} {
				if b != nil {
					call.Reads = append(call.Reads, devBuf(b))
				}
			}
			for _, b := range st.op.Scratches {
				call.Writes = append(call.Writes, devBuf(b))
			}
			if st.op.Out != nil {
				call.Writes = append(call.Writes, devBuf(st.op.Out))
			}
			if _, err := queueFor(st.op.Kernel.Name).EnqueueKernel(call); err != nil {
				return nil, err
			}
		}
		if _, err := queueFor(p.stages[len(p.stages)-1].op.Kernel.Name).EnqueueRead(devBuf(p.outBuf), outBytes); err != nil {
			return nil, err
		}
		imgRanges = append(imgRanges, [2]int{evLo, len(ctx.Events())})
	}
	ctx.Finish()
	elapsed := ctx.ElapsedUS() - start
	res := &RunResult{
		Images:      n,
		ElapsedUS:   elapsed,
		FPS:         float64(n) / elapsed * 1e6,
		Breakdown:   ctx.Breakdown(),
		PerKernelUS: ctx.BreakdownByName(),
		Timeline:    ctx.TimelineSince(72, start),
	}
	collectRunTrace(tc, ctx, imgRanges, start, res)
	if tc != nil {
		publishSimStats(tc.Metrics(), p.simStats.Snapshot())
	}
	return res, nil
}
