package host

import (
	"context"
	"errors"
	"testing"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func batchInputs(n int) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		ins[i] = nn.Digit(i % 10)
	}
	return ins
}

// bitEqual asserts two tensors are identical to the bit, not just close:
// RunBatch's contract is exact equivalence with sequential Infer.
func bitEqual(t *testing.T, tag string, got, want *tensor.Tensor) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: length %d vs %d", tag, len(got.Data), len(want.Data))
	}
	for j := range want.Data {
		if got.Data[j] != want.Data[j] {
			t.Fatalf("%s: elem %d: %v != %v (bit-exact contract)", tag, j, got.Data[j], want.Data[j])
		}
	}
}

// batchDeployments builds the three deployment shapes the batch engine must
// serve: a channel/autorun pipeline, a plain buffered pipeline, and a folded
// plan with parameterized kernels.
func batchDeployments(t *testing.T) map[string]interface {
	Infer(*tensor.Tensor) (*tensor.Tensor, error)
	RunBatch([]*tensor.Tensor, BatchOptions) (*BatchResult, error)
} {
	t.Helper()
	layers := lenetLayers(t)
	out := map[string]interface {
		Infer(*tensor.Tensor) (*tensor.Tensor, error)
		RunBatch([]*tensor.Tensor, BatchOptions) (*BatchResult, error)
	}{}
	for _, v := range []PipeVariant{PipeTVMAutorun, PipeBase} {
		p, err := BuildPipelined(layers, v, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		out["pipelined-"+v.String()] = p
	}
	f, err := BuildFolded(layers, lenetFoldedConfig(), fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	out["folded"] = f
	return out
}

// TestRunBatchMatchesSequential is the batch/serial equivalence property
// test: for every deployment shape and worker count, RunBatch outputs must be
// bit-identical to N sequential Infer calls.
func TestRunBatchMatchesSequential(t *testing.T) {
	const n = 12
	inputs := batchInputs(n)
	for name, dep := range batchDeployments(t) {
		want := make([]*tensor.Tensor, n)
		for i, in := range inputs {
			w, err := dep.Infer(in)
			if err != nil {
				t.Fatalf("%s: sequential image %d: %v", name, i, err)
			}
			want[i] = w
		}
		for _, workers := range []int{1, 2, 8} {
			res, err := dep.RunBatch(inputs, BatchOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if res.Images != n || len(res.Outputs) != n {
				t.Fatalf("%s workers=%d: %d/%d outputs", name, workers, len(res.Outputs), res.Images)
			}
			if res.ModeledUS <= 0 || res.ImagesPerSec <= 0 {
				t.Fatalf("%s workers=%d: no modeled time (%v us, %v img/s)", name, workers, res.ModeledUS, res.ImagesPerSec)
			}
			for i := range inputs {
				bitEqual(t, name, res.Outputs[i], want[i])
			}
		}
	}
}

// TestRunBatchFaultLedgerDeterministic checks the fault-attribution property:
// under injection, outputs stay bit-identical to fault-free sequential runs
// (transient faults are absorbed by retry) and the per-image fault ledger is
// identical for every worker count.
func TestRunBatchFaultLedgerDeterministic(t *testing.T) {
	const n = 16
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(n)
	want := make([]*tensor.Tensor, n)
	for i, in := range inputs {
		if want[i], err = p.Infer(in); err != nil {
			t.Fatal(err)
		}
	}
	opts := BatchOptions{FaultSeed: 42, FaultRate: 0.04, MaxRetries: 8}
	var ref *BatchResult
	for _, workers := range []int{1, 2, 8} {
		o := opts
		o.Workers = workers
		res, err := p.RunBatch(inputs, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range inputs {
			bitEqual(t, "faulted batch", res.Outputs[i], want[i])
		}
		if ref == nil {
			ref = res
			if len(res.Faults) == 0 {
				t.Fatal("fault rate 0.04 over 16 LeNet images injected nothing; test is vacuous")
			}
			continue
		}
		if len(res.Faults) != len(ref.Faults) {
			t.Fatalf("workers=%d: %d faults vs %d at workers=1", workers, len(res.Faults), len(ref.Faults))
		}
		// Op is excluded from the comparison: it names the physical ring slot
		// ("write batch_in[0]"), and which slot an image lands on depends on
		// the worker striping. Image index, kind, code and per-image sequence
		// are the attribution invariants.
		for i, bf := range res.Faults {
			rf := ref.Faults[i]
			if bf.Image != rf.Image || bf.Record.Kind != rf.Record.Kind ||
				bf.Record.Seq != rf.Record.Seq || bf.Record.Code != rf.Record.Code {
				t.Fatalf("workers=%d: fault %d = {img %d %s seq %d}, want {img %d %s seq %d}",
					res.Workers, i, bf.Image, bf.Record.Kind, bf.Record.Seq,
					rf.Image, rf.Record.Kind, rf.Record.Seq)
			}
		}
		if res.Retries != ref.Retries {
			t.Fatalf("workers=%d: %d retries vs %d at workers=1", workers, res.Retries, ref.Retries)
		}
	}
}

// TestRunBatchDoubleBufferingHelps: with double buffering on (default), the
// modeled batch time must beat the depth-1 ablation and hide more transfer
// time behind kernels.
func TestRunBatchDoubleBufferingHelps(t *testing.T) {
	const n = 16
	layers := lenetLayers(t)
	f, err := BuildFolded(layers, lenetFoldedConfig(), fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(n)
	db, err := f.RunBatch(inputs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := f.RunBatch(inputs, BatchOptions{Workers: 1, NoDoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if db.ModeledUS >= serial.ModeledUS {
		t.Fatalf("double buffering did not help: %v >= %v us", db.ModeledUS, serial.ModeledUS)
	}
	if db.Overlap.Ratio <= serial.Overlap.Ratio {
		t.Fatalf("overlap ratio did not improve: %v <= %v", db.Overlap.Ratio, serial.Overlap.Ratio)
	}
}

// TestRunBatchCancellation: a canceled context stops the batch with the
// context's error instead of finishing the work.
func TestRunBatchCancellation(t *testing.T) {
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeBase, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunBatch(batchInputs(8), BatchOptions{Workers: 2, Context: cctx}); err == nil {
		t.Fatal("canceled batch returned no error")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not carry the context cause: %v", err)
	}
}

// TestRunBatchTrace: the batch publishes per-image spans, per-worker device
// processes and throughput gauges to the collector.
func TestRunBatchTrace(t *testing.T) {
	const n = 6
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	tc := trace.NewCollector()
	res, err := p.RunBatch(batchInputs(n), BatchOptions{Workers: 2, Trace: tc})
	if err != nil {
		t.Fatal(err)
	}
	images, device := 0, 0
	for _, sp := range tc.Spans() {
		if sp.Cat == "image" {
			images++
		}
		if sp.Proc == "device w0" || sp.Proc == "device w1" {
			device++
		}
	}
	if images != n {
		t.Fatalf("%d image spans, want %d", images, n)
	}
	if device == 0 {
		t.Fatal("no per-worker device spans")
	}
	if got := tc.Metrics().Gauge("host.batch.images_per_sec").Value(); got != res.ImagesPerSec {
		t.Fatalf("images_per_sec gauge %v != result %v", got, res.ImagesPerSec)
	}
	if got := tc.Metrics().Gauge("host.batch.overlap_ratio").Value(); got != res.Overlap.Ratio {
		t.Fatalf("overlap_ratio gauge %v != result %v", got, res.Overlap.Ratio)
	}
	if got := tc.Metrics().Counter("host.batch.images").Value(); got != int64(n) {
		t.Fatalf("images counter %d != %d", got, n)
	}
}

// TestRunBatchPublishesSimStats: the execution-tier counters reach the
// metrics registry (satellite of the vector-tier work): the vector engine
// must actually fire on the LeNet kernels, the compiled-kernel cache must be
// warm across images, and in-bounds schedules must not guard-bail.
func TestRunBatchPublishesSimStats(t *testing.T) {
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	tc := trace.NewCollector()
	if _, err := p.RunBatch(batchInputs(8), BatchOptions{Workers: 2, Trace: tc}); err != nil {
		t.Fatal(err)
	}
	m := tc.Metrics()
	if v := m.Counter("sim.exec.vector_loops").Value(); v == 0 {
		t.Error("sim.exec.vector_loops not published or vectorizer never fired")
	}
	if v := m.Counter("sim.exec.vector_runs").Value(); v == 0 {
		t.Error("sim.exec.vector_runs not published")
	}
	if v := m.Counter("sim.compile.cache_hits").Value(); v == 0 {
		t.Error("sim.compile.cache_hits: warm arenas must hit the kernel cache")
	}
	if v := m.Counter("sim.exec.guard_bailouts").Value(); v != 0 {
		t.Errorf("sim.exec.guard_bailouts = %d on in-bounds LeNet schedules", v)
	}
	snap := p.SimStats()
	if snap.VectorRuns == 0 || snap.CacheMisses == 0 {
		t.Fatalf("deployment snapshot empty: %+v", snap)
	}
}

// TestRunBatchGemmTierMatchesInterpOracle is the GEMM-lowering property test
// at deployment scope: the folded plan's parameterized convs lower whole onto
// cpuref.Gemm on the vector tier, and every output across worker counts and
// under fault injection must be bit-identical to the tree-walking interpreter
// oracle. Zero guard bailouts expected on in-bounds folded schedules.
func TestRunBatchGemmTierMatchesInterpOracle(t *testing.T) {
	const n = 12
	layers := lenetLayers(t)
	inputs := batchInputs(n)
	prev := sim.DefaultTier()
	defer sim.SetDefaultTier(prev)

	sim.SetDefaultTier(sim.TierInterp)
	oracle, err := BuildFolded(layers, lenetFoldedConfig(), fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*tensor.Tensor, n)
	for i, in := range inputs {
		if want[i], err = oracle.Infer(in); err != nil {
			t.Fatalf("interp oracle image %d: %v", i, err)
		}
	}

	sim.SetDefaultTier(sim.TierVector)
	f, err := BuildFolded(layers, lenetFoldedConfig(), fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		res, err := f.RunBatch(inputs, BatchOptions{
			Workers: workers, FaultSeed: 7, FaultRate: 0.03, MaxRetries: 8})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range inputs {
			bitEqual(t, "gemm-tier batch vs interp oracle", res.Outputs[i], want[i])
		}
	}
	snap := f.SimStats()
	if snap.GemmLoops == 0 || snap.GemmRuns == 0 {
		t.Fatalf("folded convs did not take the GEMM lowering: %+v", snap)
	}
	if snap.GemmBailouts != 0 {
		t.Errorf("GemmBailouts = %d on in-bounds folded schedules", snap.GemmBailouts)
	}
}
