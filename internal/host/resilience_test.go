package host

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/aoc"
	"repro/internal/fault"
	"repro/internal/fpga"
	"repro/internal/ir"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/topi"
)

func mobilenetFoldedConfig() FoldedConfig {
	return FoldedConfig{
		Conv: map[string]topi.ConvSched{
			"conv1x1s1": topi.OptSched(7, 16, 4),
			"conv3x3s2": topi.OptSched(1, 1, 3),
		},
		DWVec:    map[string]int{"dw3x3s1": 7, "dw3x3s2": 7},
		DenseVec: 8, Workaround: true,
	}
}

// TestResilientLeNetLadderUnderFaults is the LeNet half of the chaos matrix:
// at fault rate 0.1 across three seeds, inference must complete with the
// correct output — by absorbing faults with retries, or by degrading — and
// must report what happened. FAULT_SEED selects the seed in CI.
func TestResilientLeNetLadderUnderFaults(t *testing.T) {
	layers := lenetLayers(t)
	input := nn.Digit(3)
	want, err := relay.Execute(layers, input)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3} {
		ctrl := RunControl{FaultSeed: seed, FaultRate: 0.1}
		rep, err := RunLadder("lenet5", layers, PipelinedLadder(layers, fpga.S10SX, aoc.DefaultOptions), input, 5, ctrl)
		if err != nil {
			t.Fatalf("seed %d: ladder must never fail outright: %v", seed, err)
		}
		if rep.Output == nil || rep.Output.ArgMax() != want.ArgMax() {
			t.Fatalf("seed %d: wrong classification under faults", seed)
		}
		if rep.Mode == "" {
			t.Fatalf("seed %d: report must name the serving mode", seed)
		}
		if len(rep.Faults) == 0 {
			t.Fatalf("seed %d: rate-0.1 run must record injected faults", seed)
		}
		if rep.Mode != "cpuref" && rep.Retries == 0 {
			t.Fatalf("seed %d: an accelerator rung at rate 0.1 must have retried (faults=%d)", seed, len(rep.Faults))
		}
		t.Logf("seed %d: %s", seed, rep.Summary())
	}
}

// TestResilientMobileNetUnderFaults is the MobileNet half of the chaos
// matrix: the timed resilient run must complete across three seeds at rate
// 0.1 without a panic, hang, or unrecovered error.
func TestResilientMobileNetUnderFaults(t *testing.T) {
	layers, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		t.Fatal(err)
	}
	f, err := BuildFolded(layers, mobilenetFoldedConfig(), fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3} {
		run, stats, err := f.RunResilient(2, RunControl{FaultSeed: seed, FaultRate: 0.1})
		if err != nil {
			t.Fatalf("seed %d: MobileNet must complete via retries: %v", seed, err)
		}
		if run.FPS <= 0 {
			t.Fatalf("seed %d: no throughput", seed)
		}
		if len(stats.Faults) == 0 || stats.Retries == 0 {
			t.Fatalf("seed %d: expected absorbed faults (faults=%d retries=%d)",
				seed, len(stats.Faults), stats.Retries)
		}
	}
}

// TestResilientMatchesPlainRunWithoutFaults: rate 0 and no watchdog must
// reproduce the plain runner's timing exactly.
func TestResilientMatchesPlainRunWithoutFaults(t *testing.T) {
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := p.Run(5, true, false)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := p.RunResilient(5, true, RunControl{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ElapsedUS != plain.ElapsedUS {
		t.Fatalf("fault-free resilient run must match plain run: %v vs %v us", res.ElapsedUS, plain.ElapsedUS)
	}
	if stats.Retries != 0 || stats.WatchdogTrips != 0 || len(stats.Faults) != 0 {
		t.Fatalf("fault-free run absorbed something: %+v", stats)
	}
}

// fakeDeployment lets ladder tests exercise individual failure causes
// without paying for real builds.
type fakeDeployment struct {
	designErr error
	kernels   []*ir.Kernel
	inferErr  error
	out       *tensor.Tensor
	runErr    error
}

func (d *fakeDeployment) Infer(*tensor.Tensor) (*tensor.Tensor, error) { return d.out, d.inferErr }
func (d *fakeDeployment) Resilient(n int, ctrl RunControl) (*RunResult, *Resilience, error) {
	if d.runErr != nil {
		return nil, &Resilience{Retries: ctrl.MaxRetries}, d.runErr
	}
	return &RunResult{Images: n, ElapsedUS: 1, FPS: 1}, &Resilience{}, nil
}
func (d *fakeDeployment) KernelSet() []*ir.Kernel { return d.kernels }
func (d *fakeDeployment) DesignErr() error        { return d.designErr }

// mismatchedKernels is a channel pair with unequal trip counts — the set the
// static verifier must keep off the device.
func mismatchedKernels() []*ir.Kernel {
	c := &ir.Channel{Name: "c", Depth: 8}
	d := ir.NewBuffer("d", ir.Global, 65)
	i, j := ir.V("i"), ir.V("j")
	prod := &ir.Kernel{Name: "prod",
		Body: ir.Loop(i, 64, &ir.ChannelWrite{Ch: c, Value: ir.CFloat(1)})}
	cons := &ir.Kernel{Name: "cons", Args: []*ir.Buffer{d},
		Body: ir.Loop(j, 65, &ir.Store{Buf: d, Index: []ir.Expr{j}, Value: &ir.ChannelRead{Ch: c}})}
	return []*ir.Kernel{prod, cons}
}

func TestLadderRecordsEveryFallbackCause(t *testing.T) {
	layers := lenetLayers(t)
	input := nn.Digit(8)
	want, err := relay.Execute(layers, input)
	if err != nil {
		t.Fatal(err)
	}
	rungs := []Rung{
		{Name: "broken-build", Build: func() (Deployment, error) {
			return nil, errors.New("tiling does not divide")
		}},
		{Name: "unfit", Build: func() (Deployment, error) {
			return &fakeDeployment{designErr: errors.New("logic 182% of device")}, nil
		}},
		{Name: "bad-channels", Build: func() (Deployment, error) {
			return &fakeDeployment{kernels: mismatchedKernels()}, nil
		}},
		{Name: "flaky-runtime", Build: func() (Deployment, error) {
			return &fakeDeployment{out: want, runErr: fmt.Errorf("kernel conv1: %w",
				&fault.Error{Kind: fault.EnqueueFail, Code: fault.OutOfHostMemory, Transient: true})}, nil
		}},
		{Name: "healthy", Build: func() (Deployment, error) {
			return BuildPipelined(layers, PipeBase, fpga.S10SX, aoc.DefaultOptions)
		}},
	}
	rep, err := RunLadder("lenet5", layers, rungs, input, 2, RunControl{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "healthy" || !rep.Degraded {
		t.Fatalf("should degrade to the healthy rung: mode=%s degraded=%v", rep.Mode, rep.Degraded)
	}
	if rep.Output.ArgMax() != want.ArgMax() {
		t.Fatal("degraded output must still classify correctly")
	}
	wantReasons := map[string]string{
		"broken-build":  "build failed",
		"unfit":         "does not fit",
		"bad-channels":  "verification rejected",
		"flaky-runtime": "timed run failed",
	}
	if len(rep.Fallbacks) != len(wantReasons) {
		t.Fatalf("fallbacks = %+v, want %d entries", rep.Fallbacks, len(wantReasons))
	}
	for _, fb := range rep.Fallbacks {
		if frag, ok := wantReasons[fb.From]; !ok || !strings.Contains(fb.Reason, frag) {
			t.Fatalf("fallback %q reason %q does not name its cause", fb.From, fb.Reason)
		}
	}
	sum := rep.Summary()
	for _, frag := range []string{"served by healthy", "fell back from broken-build", "fell back from bad-channels"} {
		if !strings.Contains(sum, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, sum)
		}
	}
}

func TestLadderFullyDegradesToCPUReference(t *testing.T) {
	layers := lenetLayers(t)
	input := nn.Digit(4)
	want, err := relay.Execute(layers, input)
	if err != nil {
		t.Fatal(err)
	}
	rungs := []Rung{
		{Name: "dead", Build: func() (Deployment, error) { return nil, errors.New("no bitstream") }},
	}
	rep, err := RunLadder("lenet5", layers, rungs, input, 1, RunControl{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "cpuref" || !rep.Degraded || rep.Run != nil {
		t.Fatalf("want cpuref degradation, got mode=%s degraded=%v run=%v", rep.Mode, rep.Degraded, rep.Run)
	}
	if !tensor.AllClose(rep.Output, want, 0) {
		t.Fatal("cpuref output must be the reference output")
	}
}

// TestWatchdogTripDegrades: an impossibly tight deadline fails every
// accelerator rung through the watchdog; the ladder must still answer via
// the CPU reference and count the trips.
func TestWatchdogTripDegrades(t *testing.T) {
	layers := lenetLayers(t)
	input := nn.Digit(6)
	rungs := []Rung{{Name: "pipelined-Base", Build: func() (Deployment, error) {
		return BuildPipelined(layers, PipeBase, fpga.S10SX, aoc.DefaultOptions)
	}}}
	rep, err := RunLadder("lenet5", layers, rungs, input, 1, RunControl{WatchdogUS: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "cpuref" {
		t.Fatalf("nothing completes under a 1e-6us deadline; got mode=%s", rep.Mode)
	}
	if rep.WatchdogTrips == 0 {
		t.Fatal("watchdog trips must be counted")
	}
	if len(rep.Fallbacks) != 1 || !strings.Contains(rep.Fallbacks[0].Reason, "watchdog") {
		t.Fatalf("fallback must blame the watchdog: %+v", rep.Fallbacks)
	}
}

// TestWatchdogGenerousDeadlinePasses: a deadline above the longest command
// must not trip.
func TestWatchdogGenerousDeadlinePasses(t *testing.T) {
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeBase, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := p.RunResilient(3, false, RunControl{WatchdogUS: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WatchdogTrips != 0 {
		t.Fatalf("generous deadline tripped %d times", stats.WatchdogTrips)
	}
}

// TestResilientRefusesUnsynthesizable: Design.Err() gates the resilient
// path exactly like the plain one.
func TestResilientRefusesUnsynthesizable(t *testing.T) {
	layers, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := BuildFolded(layers, FoldedConfig{Naive: true, Workaround: true}, fpga.A10, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Design.Synthesizable() {
		t.Skip("unexpectedly fits")
	}
	if _, _, err := dep.RunResilient(1, RunControl{}); err == nil {
		t.Fatal("RunResilient must refuse an unsynthesizable design")
	}
}
