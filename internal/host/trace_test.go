package host

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/aoc"
	"repro/internal/fault"
	"repro/internal/fpga"
	"repro/internal/nn"
	"repro/internal/trace"
)

func TestDumpActivationsTopologyError(t *testing.T) {
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeBase, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	// Doctor a self-referencing stage: its input names a producer that does
	// not strictly precede it, so the bind loop would read an unwritten
	// buffer. The dump must refuse with a typed error, not return zeros.
	p.stages[2].layer.In = 2
	_, err = p.DumpActivations(nn.Digit(1))
	var topo *TopologyError
	if !errors.As(err, &topo) {
		t.Fatalf("want *TopologyError, got %v", err)
	}
	if topo.Index != 2 || topo.In != 2 || topo.Stage != p.stages[2].layer.Name {
		t.Fatalf("error fields = %+v", topo)
	}
	if !strings.Contains(err.Error(), "topological") {
		t.Fatalf("error message should name the invariant: %v", err)
	}
}

func TestPipelinedRunTracedCollects(t *testing.T) {
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	tc := trace.NewCollector()
	r, err := p.RunTraced(3, true, false, tc)
	if err != nil {
		t.Fatal(err)
	}
	var kernelSpans, imageSpans, phaseSpans int
	for _, s := range tc.Spans() {
		switch {
		case s.Proc == "device" && s.Cat == "kernel":
			kernelSpans++
		case s.Proc == "host" && s.Track == "images":
			imageSpans++
		case s.Proc == "host" && s.Track == "phases":
			phaseSpans++
		}
	}
	if kernelSpans == 0 || imageSpans != 3 || phaseSpans != 2 {
		t.Fatalf("span mix kernels=%d images=%d phases=%d, want >0/3/2", kernelSpans, imageSpans, phaseSpans)
	}
	reg := tc.Metrics()
	if got := reg.Counter("host.images").Value(); got != 3 {
		t.Fatalf("host.images = %d, want 3", got)
	}
	if occ := reg.Gauge("clrt.kernel_occupancy").Value(); occ <= 0 || occ > 1 {
		t.Fatalf("kernel occupancy = %v, want in (0,1]", occ)
	}
	if fps := reg.Gauge("host.fps").Value(); fps != r.FPS {
		t.Fatalf("host.fps gauge = %v, run result FPS = %v", fps, r.FPS)
	}

	// Rebuilding and rerunning must export a byte-identical Chrome trace —
	// the determinism bar for the whole observability layer.
	p2, err := BuildPipelined(lenetLayers(t), PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	tc2 := trace.NewCollector()
	if _, err := p2.RunTraced(3, true, false, tc2); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := tc.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := tc2.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated traced runs export different Chrome traces")
	}
}

func TestFoldedRunTracedCollects(t *testing.T) {
	layers := lenetLayers(t)
	f, err := BuildFolded(layers, lenetFoldedConfig(), fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	tc := trace.NewCollector()
	if _, err := f.RunTraced(2, false, tc); err != nil {
		t.Fatal(err)
	}
	if got := tc.Metrics().Counter("host.images").Value(); got != 2 {
		t.Fatalf("host.images = %d, want 2", got)
	}
	var imageSpans int
	for _, s := range tc.Spans() {
		if s.Proc == "host" && s.Track == "images" {
			imageSpans++
		}
	}
	if imageSpans != 2 {
		t.Fatalf("image spans = %d, want 2", imageSpans)
	}
}

// TestLadderTraceFaultAccounting runs the degradation ladder with a shared
// caller-owned injector and checks the trace layer neither drops nor double
// counts faults across rungs (each rung slices the shared ledger).
func TestLadderTraceFaultAccounting(t *testing.T) {
	layers := lenetLayers(t)
	rungs := PipelinedLadder(layers, fpga.S10SX, aoc.DefaultOptions)
	tc := trace.NewCollector()
	inj := fault.NewInjector(7, 0.05)
	ctrl := RunControl{Injector: inj, Trace: tc}
	if _, err := RunLadder("lenet5", layers, rungs, nn.Digit(3), 4, ctrl); err != nil {
		t.Fatal(err)
	}
	var ladderSpans int
	for _, s := range tc.Spans() {
		if s.Proc == "host" && s.Track == "ladder" {
			ladderSpans++
		}
	}
	if ladderSpans == 0 {
		t.Fatal("no ladder spans recorded")
	}
	var counted int64
	for _, k := range []fault.Kind{fault.TransferFail, fault.TransferCorrupt, fault.KernelStall, fault.EnqueueFail, fault.FitFlake} {
		counted += tc.Metrics().Counter("fault." + k.String()).Value()
	}
	if counted != int64(inj.Count()) {
		t.Fatalf("fault counters sum to %d, injector fired %d", counted, inj.Count())
	}
}
