package host

import (
	"fmt"
	"sort"

	"repro/internal/aoc"
	"repro/internal/clrt"
	"repro/internal/fpga"
	"repro/internal/ir"
	"repro/internal/relay"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/topi"
	"repro/internal/trace"
)

// FoldedConfig selects the parameterized-kernel tiling for a folded
// deployment (Tables 6.7 and 6.13).
type FoldedConfig struct {
	// Naive builds one naive constant-shape kernel per layer instead of
	// parameterized kernels — the "base" folded bitstream. This is the
	// configuration that fails to fit on the Arria 10 (§6.3.2).
	Naive bool
	// Conv maps a convolution signature (see convSig) to its tiling.
	Conv map[string]topi.ConvSched
	// DWVec maps a depthwise signature to its W2 unroll factor.
	DWVec map[string]int
	// DenseVec is the dense reduction unroll.
	DenseVec int
	// Dense optionally overrides DenseVec per dense signature ("dense",
	// "dense_relu"); the guided explorer searches these axes independently.
	Dense map[string]int
	// Workaround applies the Listing 5.11 stride-1 coalescing fix
	// (on in all thesis deployments; off for the ablation).
	Workaround bool
}

func convSig(f, s int, relu, relu6, res bool) string {
	sig := fmt.Sprintf("conv%dx%ds%d", f, f, s)
	if res {
		sig += "_res"
	}
	if relu6 {
		sig += "_r6"
	} else if !relu {
		sig += "_lin"
	}
	return sig
}

// invocation is one kernel call in the per-image execution plan.
type invocation struct {
	kernel   *ir.Kernel
	op       *topi.Op
	bindings map[*ir.Var]int64
	layer    *relay.Layer
	// opClass labels the invocation for the per-operation profiles
	// ("1x1 conv", "3x3 DW conv", "pad", ...).
	opClass string
	// buffer indices: -1 = network input, else index into layer outputs.
	inIdx, skipIdx, outIdx int
}

// Folded is a folded (time-multiplexed parameterized kernels) deployment.
type Folded struct {
	Board  *fpga.Board
	Design *aoc.Design
	Layers []*relay.Layer
	Config FoldedConfig

	plan     []*invocation
	inShape  []int
	outShape []int
	// outBytes[i] is the byte size of layer i's output buffer.
	outBytes []int
	outIdxOf map[int]int // layer index -> buffer-producing layer index (flatten aliasing)

	// arenas caches warm batch-worker execution state across RunBatch calls.
	arenas arenaCache
	// simStats accumulates execution-tier counters across every sim machine
	// this deployment creates (Infer, DumpActivations, batch arenas).
	simStats sim.ExecStats
}

// SimStats returns the cumulative execution-tier counters (compile cache,
// vectorized vs fallback loops, guard bailouts) for this deployment.
func (f *Folded) SimStats() sim.StatsSnapshot { return f.simStats.Snapshot() }

// BuildFolded generates the kernel set and execution plan for a network.
func BuildFolded(layers []*relay.Layer, cfg FoldedConfig, board *fpga.Board, opts aoc.Options) (*Folded, error) {
	return BuildFoldedCached(layers, cfg, board, opts, nil)
}

// BuildFoldedCached is BuildFolded with kernel compilation memoized in cache
// (nil disables memoization). The design-space explorer calls this from many
// goroutines at once: the build touches no package-level state and reads the
// layers purely, so concurrent builds over the same layer slice are safe as
// long as callers do not mutate the layers. Each call gets its own kernels,
// plan and Folded; only the immutable cached KernelModels are shared.
func BuildFoldedCached(layers []*relay.Layer, cfg FoldedConfig, board *fpga.Board, opts aoc.Options, cache *aoc.CompileCache) (*Folded, error) {
	f := &Folded{Board: board, Layers: layers, Config: cfg, outIdxOf: map[int]int{}}
	f.inShape = layers[0].InShape
	f.outShape = layers[len(layers)-1].OutShape

	if cfg.Conv == nil {
		cfg.Conv = map[string]topi.ConvSched{}
	}
	if cfg.DWVec == nil {
		cfg.DWVec = map[string]int{}
	}
	if cfg.DenseVec == 0 {
		cfg.DenseVec = 1
	}

	// Resolve buffer aliasing: flatten layers are free reshapes on NCHW
	// row-major data and emit no kernel in the folded plan.
	bufOf := func(idx int) int {
		for idx >= 0 && layers[idx].Kind == relay.KFlatten {
			idx = layers[idx].In
		}
		return idx
	}

	f.outBytes = make([]int, len(layers))
	for i, l := range layers {
		n := 4
		for _, d := range l.OutShape {
			n *= d
		}
		f.outBytes[i] = n
	}

	// Parameterized kernel groups, or per-layer naive kernels.
	type group struct {
		conv  *topi.ParamConv
		dw    *topi.ParamDepthwise
		dense *topi.ParamDense
		pad   *topi.ParamPad
		pool  *topi.ParamPool
		cp    *topi.ParamCopy
	}
	groups := map[string]*group{}
	// naiveShared dedupes constant-shape naive kernels: TVM compiles one
	// kernel per distinct (operator, shape) signature and reuses it for
	// identical layers, even in the base flow — weights are arguments.
	naiveShared := map[string]*topi.Op{}
	var kernels []*ir.Kernel

	addKernel := func(k *ir.Kernel) { kernels = append(kernels, k) }

	for i, l := range layers {
		if l.Kind == relay.KFlatten {
			f.outIdxOf[i] = bufOf(i)
			continue
		}
		if l.Kind == relay.KConcat {
			// Channel concatenation lowers to one offset-copy invocation per
			// input part, all writing regions of the same output buffer.
			g := groups["concat_copy"]
			if g == nil || g.cp == nil {
				cp, err := topi.CopyParam("concat_copy", 1, cfg.Workaround)
				if err != nil {
					return nil, err
				}
				groups["concat_copy"] = &group{cp: cp}
				g = groups["concat_copy"]
				addKernel(cp.Op.Kernel)
			}
			total := f.outBytes[i] / 4
			off := 0
			for _, srcIdx := range l.Ins {
				src := bufOf(srcIdx)
				var partLen int
				if src < 0 {
					partLen = 4
					for _, d := range f.inShape {
						partLen *= d
					}
					partLen /= 4
				} else {
					partLen = f.outBytes[src] / 4
				}
				bind, err := g.cp.Bind(partLen, off, total)
				if err != nil {
					return nil, err
				}
				f.plan = append(f.plan, &invocation{layer: l, opClass: "concat",
					kernel: g.cp.Op.Kernel, op: g.cp.Op, bindings: bind,
					inIdx: src, skipIdx: -1, outIdx: i})
				off += partLen
			}
			continue
		}
		inv := &invocation{layer: l, inIdx: bufOf(l.In), skipIdx: -1, outIdx: i}
		if l.HasSkip {
			inv.skipIdx = bufOf(l.Skip)
		}
		inv.opClass = opClass(l)

		if cfg.Naive {
			sig := fmt.Sprintf("%s_%v_%v_f%ds%d_r%v_k%v_b%v", l.Kind, l.InShape, l.OutShape,
				l.F, l.S, l.Relu, l.HasSkip, l.B != nil)
			op := naiveShared[sig]
			if op == nil {
				var err error
				op, err = buildLayerKernel(l, true, topi.ConvIO{}, false, denseUnroll)
				if err != nil {
					return nil, fmt.Errorf("host: naive kernel for %s: %w", l.Name, err)
				}
				op.Kernel.Name = fmt.Sprintf("%s_k%d", l.Name, i)
				naiveShared[sig] = op
				addKernel(op.Kernel)
			}
			inv.kernel, inv.op = op.Kernel, op
			f.plan = append(f.plan, inv)
			continue
		}

		switch l.Kind {
		case relay.KConv:
			sig := convSig(l.F, l.S, l.Relu, l.Relu6, l.HasSkip)
			g := groups[sig]
			if g == nil || g.conv == nil {
				// Tiling configs may be keyed without the activation suffix
				// (the activation does not change the loop structure).
				sched, ok := cfg.Conv[sig]
				if !ok {
					base := convSig(l.F, l.S, true, false, l.HasSkip)
					sched, ok = cfg.Conv[base]
				}
				if !ok {
					sched = topi.OptSched(1, 1, 1)
				}
				pc, err := topi.ConvParamAct(sig, l.F, l.S, sched, l.Relu, l.Relu6, l.B != nil, l.HasSkip, cfg.Workaround)
				if err != nil {
					return nil, err
				}
				groups[sig] = &group{conv: pc}
				g = groups[sig]
				addKernel(pc.Op.Kernel)
			}
			bind, err := g.conv.Bind(l.InShape[0], l.InShape[1], l.InShape[2], l.OutShape[0])
			if err != nil {
				return nil, err
			}
			inv.kernel, inv.op, inv.bindings = g.conv.Op.Kernel, g.conv.Op, bind
		case relay.KDepthwise:
			sig := fmt.Sprintf("dw%dx%ds%d", l.F, l.F, l.S)
			if l.Relu6 {
				sig += "_r6"
			}
			g := groups[sig]
			if g == nil || g.dw == nil {
				w2v := cfg.DWVec[fmt.Sprintf("dw%dx%ds%d", l.F, l.F, l.S)]
				pd, err := topi.DepthwiseParamAct(sig, l.F, l.S, w2v, l.Relu, l.Relu6, l.B != nil, cfg.Workaround)
				if err != nil {
					return nil, err
				}
				groups[sig] = &group{dw: pd}
				g = groups[sig]
				addKernel(pd.Op.Kernel)
			}
			bind, err := g.dw.Bind(l.InShape[0], l.InShape[1], l.InShape[2])
			if err != nil {
				return nil, err
			}
			inv.kernel, inv.op, inv.bindings = g.dw.Op.Kernel, g.dw.Op, bind
		case relay.KDense:
			sig := "dense"
			if l.Relu {
				sig = "dense_relu"
			}
			g := groups[sig]
			if g == nil || g.dense == nil {
				kvec := cfg.DenseVec
				if v, ok := cfg.Dense[sig]; ok && v > 0 {
					kvec = v
				}
				pd, err := topi.DenseParam(sig, kvec, l.Relu, l.B != nil, cfg.Workaround)
				if err != nil {
					return nil, err
				}
				groups[sig] = &group{dense: pd}
				g = groups[sig]
				addKernel(pd.Op.Kernel)
			}
			bind, err := g.dense.Bind(l.InShape[0], l.OutShape[0])
			if err != nil {
				return nil, err
			}
			inv.kernel, inv.op, inv.bindings = g.dense.Op.Kernel, g.dense.Op, bind
		case relay.KPad:
			sig := fmt.Sprintf("pad%d", l.P)
			g := groups[sig]
			if g == nil || g.pad == nil {
				pp, err := topi.PadParam(sig, l.P, cfg.Workaround)
				if err != nil {
					return nil, err
				}
				groups[sig] = &group{pad: pp}
				g = groups[sig]
				addKernel(pp.Op.Kernel)
			}
			inv.kernel, inv.op = g.pad.Op.Kernel, g.pad.Op
			inv.bindings = g.pad.Bind(l.InShape[0], l.InShape[1], l.InShape[2])
		case relay.KMaxPool, relay.KAvgPool:
			avg := l.Kind == relay.KAvgPool
			sig := fmt.Sprintf("pool%dx%ds%d", l.F, l.F, l.S)
			if avg {
				sig = "avg" + sig
			}
			g := groups[sig]
			if g == nil || g.pool == nil {
				pl, err := topi.PoolParam(sig, l.F, l.S, avg, cfg.Workaround)
				if err != nil {
					return nil, err
				}
				groups[sig] = &group{pool: pl}
				g = groups[sig]
				addKernel(pl.Op.Kernel)
			}
			inv.kernel, inv.op = g.pool.Op.Kernel, g.pool.Op
			inv.bindings = g.pool.Bind(l.InShape[0], l.InShape[1], l.InShape[2])
		case relay.KSoftmax:
			// Constant-shape kernel: one per distinct class count.
			sig := fmt.Sprintf("softmax%d", l.OutShape[0])
			found := false
			for _, k := range kernels {
				if k.Name == sig {
					found = true
					for _, p := range f.plan {
						if p.kernel.Name == sig {
							inv.kernel, inv.op = p.kernel, p.op
						}
					}
				}
			}
			if !found {
				op, err := topi.Softmax(sig, l.OutShape[0], false, topi.ConvIO{})
				if err != nil {
					return nil, err
				}
				inv.kernel, inv.op = op.Kernel, op
				addKernel(op.Kernel)
			}
		default:
			return nil, fmt.Errorf("host: folded plan cannot handle layer kind %v", l.Kind)
		}
		f.plan = append(f.plan, inv)
	}

	d, err := aoc.CompileCached(foldedName(cfg), kernels, board, opts, cache)
	if err != nil {
		return nil, err
	}
	f.Design = d
	return f, nil
}

func foldedName(cfg FoldedConfig) string {
	if cfg.Naive {
		return "folded-base"
	}
	return "folded-optimized"
}

func opClass(l *relay.Layer) string {
	switch l.Kind {
	case relay.KConv:
		return fmt.Sprintf("%dx%d conv", l.F, l.F)
	case relay.KDepthwise:
		return fmt.Sprintf("%dx%d DW conv", l.F, l.F)
	case relay.KDense:
		return "dense"
	case relay.KPad:
		return "pad"
	case relay.KMaxPool, relay.KAvgPool:
		return "pool"
	case relay.KSoftmax:
		return "softmax"
	}
	return l.Kind.String()
}

// Infer runs the folded plan functionally on the IR interpreter (practical
// for small networks; the large networks are verified per-kernel and via
// the relay reference executor).
func (f *Folded) Infer(input *tensor.Tensor) (*tensor.Tensor, error) {
	outs := make([][]float32, len(f.Layers))
	get := func(idx int) []float32 {
		if idx < 0 {
			return input.Data
		}
		return outs[idx]
	}
	for _, inv := range f.plan {
		m := sim.NewMachine()
		m.SetStats(&f.simStats)
		op, l := inv.op, inv.layer
		if op.In != nil {
			m.Bind(op.In, get(inv.inIdx))
		}
		if op.Weights != nil {
			m.Bind(op.Weights, l.W.Data)
		}
		if op.Bias != nil {
			m.Bind(op.Bias, l.B.Data)
		}
		if op.Skip != nil {
			m.Bind(op.Skip, get(inv.skipIdx))
		}
		for _, sc := range op.Scratches {
			if n, ok := sc.ConstLen(); ok {
				m.Bind(sc, make([]float32, n))
			}
		}
		out := outs[inv.outIdx]
		if out == nil {
			out = make([]float32, f.outBytes[inv.outIdx]/4)
		}
		m.Bind(op.Out, out)
		if err := m.Run(inv.kernel, inv.bindings); err != nil {
			return nil, fmt.Errorf("host: layer %s: %w", l.Name, err)
		}
		outs[inv.outIdx] = out
	}
	last := f.plan[len(f.plan)-1]
	return tensor.FromData(outs[last.outIdx], f.outShape...), nil
}

// Run simulates classifying n images on a single command queue (concurrent
// execution is not applicable to folded kernels, §4.11).
func (f *Folded) Run(n int, profiling bool) (*RunResult, error) {
	return f.RunTraced(n, profiling, nil)
}

// RunTraced is Run with structured tracing (see Pipelined.RunTraced); a nil
// collector disables it.
func (f *Folded) RunTraced(n int, profiling bool, tc *trace.Collector) (*RunResult, error) {
	if err := f.Design.Err(); err != nil {
		return nil, err
	}
	ctx, err := clrt.NewContext(f.Design)
	if err != nil {
		return nil, err
	}
	ctx.Profiling = profiling
	q := ctx.NewQueue()

	inBytes := 4
	for _, d := range f.inShape {
		inBytes *= d
	}
	input := ctx.NewBuffer("input", inBytes)
	outBufs := make([]*clrt.Buffer, len(f.Layers))
	devOut := func(idx int) *clrt.Buffer {
		if outBufs[idx] == nil {
			outBufs[idx] = ctx.NewBuffer(fmt.Sprintf("act%d", idx), f.outBytes[idx])
		}
		return outBufs[idx]
	}
	devIn := func(idx int) *clrt.Buffer {
		if idx < 0 {
			return input
		}
		return devOut(idx)
	}

	// Parameters once at startup.
	weightBufs := map[*relay.Layer]*clrt.Buffer{}
	biasBufs := map[*relay.Layer]*clrt.Buffer{}
	for _, inv := range f.plan {
		if inv.layer.W != nil && inv.op.Weights != nil {
			b := ctx.NewBuffer(inv.layer.Name+"_w", inv.layer.W.Bytes())
			weightBufs[inv.layer] = b
			if _, err := q.EnqueueWrite(b, inv.layer.W.Bytes()); err != nil {
				return nil, err
			}
		}
		if inv.layer.B != nil && inv.op.Bias != nil {
			b := ctx.NewBuffer(inv.layer.Name+"_b", inv.layer.B.Bytes())
			biasBufs[inv.layer] = b
			if _, err := q.EnqueueWrite(b, inv.layer.B.Bytes()); err != nil {
				return nil, err
			}
		}
	}
	ctx.Finish()

	outBytes := 4
	for _, d := range f.outShape {
		outBytes *= d
	}
	start := ctx.ElapsedUS()
	imgRanges := make([][2]int, 0, n)
	for img := 0; img < n; img++ {
		evLo := len(ctx.Events())
		if _, err := q.EnqueueWrite(input, inBytes); err != nil {
			return nil, err
		}
		for _, inv := range f.plan {
			call := clrt.KernelCall{Name: inv.kernel.Name, Bindings: inv.bindings,
				Reads: []*clrt.Buffer{devIn(inv.inIdx)}}
			if b := weightBufs[inv.layer]; b != nil {
				call.Reads = append(call.Reads, b)
			}
			if b := biasBufs[inv.layer]; b != nil {
				call.Reads = append(call.Reads, b)
			}
			if inv.skipIdx >= 0 || (inv.layer.HasSkip && inv.skipIdx == -1) {
				call.Reads = append(call.Reads, devIn(inv.skipIdx))
			}
			for _, sc := range inv.op.Scratches {
				if nn, ok := sc.ConstLen(); ok {
					call.Writes = append(call.Writes, ctx.NewBuffer(sc.Name, int(nn)*4))
				}
			}
			call.Writes = append(call.Writes, devOut(inv.outIdx))
			if _, err := q.EnqueueKernel(call); err != nil {
				return nil, err
			}
		}
		last := f.plan[len(f.plan)-1]
		if _, err := q.EnqueueRead(devOut(last.outIdx), outBytes); err != nil {
			return nil, err
		}
		imgRanges = append(imgRanges, [2]int{evLo, len(ctx.Events())})
	}
	ctx.Finish()
	elapsed := ctx.ElapsedUS() - start
	res := &RunResult{
		Images:      n,
		ElapsedUS:   elapsed,
		FPS:         float64(n) / elapsed * 1e6,
		Breakdown:   ctx.Breakdown(),
		PerKernelUS: ctx.BreakdownByName(),
		Timeline:    ctx.TimelineSince(72, start),
	}
	collectRunTrace(tc, ctx, imgRanges, start, res)
	if tc != nil {
		publishSimStats(tc.Metrics(), f.simStats.Snapshot())
	}
	return res, nil
}

// ForwardTimeUS returns the modeled time of one forward pass: per-invocation
// kernel times summed in plan order. Unlike summing ProfileOps (whose
// grouping map iterates in random order), the result is bit-identical across
// runs — the design-space explorer ranks candidates with it.
func (f *Folded) ForwardTimeUS() (float64, error) {
	if err := f.Design.Err(); err != nil {
		return 0, err
	}
	var us float64
	for _, inv := range f.plan {
		m := f.Design.Model(inv.kernel.Name)
		if m == nil {
			return 0, fmt.Errorf("host: kernel %s missing from design", inv.kernel.Name)
		}
		us += m.TimeUS(inv.bindings, f.Design.FmaxMHz, f.Board)
	}
	return us, nil
}

// OpProfile aggregates modeled kernel time and GFLOPS by operation class
// for one image (Tables 6.8 and 6.16).
type OpProfile struct {
	Class     string
	TimeUS    float64
	FLOPs     int64
	GFLOPS    float64
	TimeShare float64
	FLOPShare float64
}

// ProfileOps returns the per-operation-class profile of a single forward
// pass using the AOC timing model at the design's fmax.
func (f *Folded) ProfileOps() ([]OpProfile, error) {
	if err := f.Design.Err(); err != nil {
		return nil, err
	}
	byClass := map[string]*OpProfile{}
	var classes []string // first-appearance order, so ties sort deterministically
	var totalUS float64
	var totalFL int64
	for _, inv := range f.plan {
		m := f.Design.Model(inv.kernel.Name)
		if m == nil {
			return nil, fmt.Errorf("host: kernel %s missing from design", inv.kernel.Name)
		}
		us := m.TimeUS(inv.bindings, f.Design.FmaxMHz, f.Board)
		fl := inv.layer.FLOPs()
		p := byClass[inv.opClass]
		if p == nil {
			p = &OpProfile{Class: inv.opClass}
			byClass[inv.opClass] = p
			classes = append(classes, inv.opClass)
		}
		p.TimeUS += us
		p.FLOPs += fl
		totalUS += us
		totalFL += fl
	}
	var out []OpProfile
	for _, c := range classes {
		p := byClass[c]
		if p.TimeUS > 0 {
			p.GFLOPS = float64(p.FLOPs) / p.TimeUS / 1e3
		}
		p.TimeShare = p.TimeUS / totalUS
		p.FLOPShare = float64(p.FLOPs) / float64(totalFL)
		out = append(out, *p)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].FLOPs > out[j].FLOPs })
	return out, nil
}
