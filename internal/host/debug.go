package host

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/relay"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// The thesis's host program includes "output verification and debugging
// capabilities (per-layer activation dump)" (§5.2). DumpActivations
// reproduces that: one tensor per layer, pulled from the device buffers
// after a functional run.

// TopologyError reports a stage whose input references a stage that does not
// strictly precede it. The dump binds each stage's input to its producer's
// output buffer in stage order; a forward (or self) reference would silently
// bind zeros — the consumer would run before its producer ever wrote — so it
// is rejected up front as a typed error the caller can match with errors.As.
type TopologyError struct {
	// Stage is the consumer layer's name; Index its position in the plan.
	Stage string
	Index int
	// In is the out-of-order producer index the stage references.
	In int
}

func (e *TopologyError) Error() string {
	return fmt.Sprintf("host: stage %d (%s) reads from stage %d: stages are not in topological order", e.Index, e.Stage, e.In)
}

// DumpActivations runs one inference and returns every layer's output
// feature map, in layer order. It requires a buffered bitstream (Base or
// Unrolling): channelized bitstreams stream activations kernel-to-kernel and
// never materialize them in global memory, which is exactly why the thesis's
// debug path uses the buffered configuration.
func (p *Pipelined) DumpActivations(input *tensor.Tensor) ([]*tensor.Tensor, error) {
	if p.Variant >= PipeChannels {
		return nil, fmt.Errorf("host: %s streams activations through channels; use a buffered bitstream (Base/Unrolling) for per-layer dumps", p.Variant)
	}
	m := sim.NewMachine()
	m.SetStats(&p.simStats)
	for _, st := range p.stages {
		bindStageTensors(m, st)
		// Idempotent: when two stages share an Out buffer, the first bind
		// wins — re-binding would orphan the slice the earlier stage (and any
		// consumer aliasing it) already holds.
		if st.op.Out != nil && m.Buffer(st.op.Out) == nil {
			n, _ := st.op.Out.ConstLen()
			m.Bind(st.op.Out, make([]float32, n))
		}
	}
	var kernels []*ir.Kernel
	for i, st := range p.stages {
		if st.op.In != nil {
			switch {
			case st.layer.In < 0:
				m.Bind(st.op.In, input.Data)
			case st.layer.In >= i:
				return nil, &TopologyError{Stage: st.layer.Name, Index: i, In: st.layer.In}
			default:
				m.Bind(st.op.In, m.Buffer(p.stages[st.layer.In].op.Out))
			}
		}
		kernels = append(kernels, st.op.Kernel)
	}
	if err := m.RunGraph(kernels, nil); err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, len(p.stages))
	for i, st := range p.stages {
		out[i] = tensor.FromData(m.Buffer(st.op.Out), st.layer.OutShape...)
	}
	return out, nil
}

// DumpActivations returns every layer's output feature map from a folded
// run (folded activations always live in global memory, so every bitstream
// supports the dump).
func (f *Folded) DumpActivations(input *tensor.Tensor) ([]*tensor.Tensor, error) {
	outs := make([][]float32, len(f.Layers))
	get := func(idx int) []float32 {
		if idx < 0 {
			return input.Data
		}
		return outs[idx]
	}
	for _, inv := range f.plan {
		m := sim.NewMachine()
		m.SetStats(&f.simStats)
		op, l := inv.op, inv.layer
		if op.In != nil {
			m.Bind(op.In, get(inv.inIdx))
		}
		if op.Weights != nil {
			m.Bind(op.Weights, l.W.Data)
		}
		if op.Bias != nil {
			m.Bind(op.Bias, l.B.Data)
		}
		if op.Skip != nil {
			m.Bind(op.Skip, get(inv.skipIdx))
		}
		for _, sc := range op.Scratches {
			if n, ok := sc.ConstLen(); ok {
				m.Bind(sc, make([]float32, n))
			}
		}
		buf := outs[inv.outIdx]
		if buf == nil {
			buf = make([]float32, f.outBytes[inv.outIdx]/4)
		}
		m.Bind(op.Out, buf)
		if err := m.Run(inv.kernel, inv.bindings); err != nil {
			return nil, fmt.Errorf("host: dump at layer %s: %w", l.Name, err)
		}
		outs[inv.outIdx] = buf
	}
	res := make([]*tensor.Tensor, len(f.Layers))
	for i, l := range f.Layers {
		src := i
		if l.Kind == relay.KFlatten {
			src = f.outIdxOf[i]
		}
		if outs[src] == nil {
			continue
		}
		res[i] = tensor.FromData(outs[src], l.OutShape...)
	}
	return res, nil
}
