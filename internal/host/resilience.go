// Host-side resilience (§5.2 hardening): bounded retry with backoff for
// transient OpenCL failures, a watchdog deadline on per-image completion,
// and a graceful-degradation ladder that falls from the optimized deployment
// through simpler bitstream variants down to the CPU reference executor,
// recording every fault, retry and fallback along the way. All timing is
// simulated clrt time; nothing here sleeps on the wall clock.

package host

import (
	"fmt"
	"strings"

	"repro/internal/aoc"
	"repro/internal/clrt"
	"repro/internal/fault"
	"repro/internal/fpga"
	"repro/internal/ir"
	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/verify"
)

// RunControl configures the resilient execution path.
type RunControl struct {
	// FaultSeed/FaultRate build a deterministic fault.Injector when Injector
	// is nil. Rate 0 disables injection.
	FaultSeed int64
	FaultRate float64
	// Injector overrides seed/rate with a caller-owned injector (shared
	// across ladder rungs so the fault sequence and ledger stay contiguous).
	Injector *fault.Injector
	// WatchdogUS is the per-image completion deadline in simulated
	// microseconds; 0 disables the watchdog.
	WatchdogUS float64
	// MaxRetries bounds retries per command and per image (default 3).
	MaxRetries int
	// BackoffUS is the initial retry backoff in simulated microseconds,
	// doubled each attempt (default 50).
	BackoffUS float64
	// Trace receives spans and metrics for the run; nil disables tracing.
	Trace *trace.Collector
	// TraceOffsetUS shifts this run's events on the global trace clock. The
	// degradation ladder runs every rung in a fresh clrt context starting at
	// 0, so it places each rung after the cumulative time of the ones before.
	TraceOffsetUS float64
}

func (c RunControl) withDefaults() RunControl {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffUS == 0 {
		c.BackoffUS = 50
	}
	return c
}

func (c RunControl) injector() *fault.Injector {
	if c.Injector != nil {
		return c.Injector
	}
	if c.FaultRate <= 0 {
		return nil
	}
	return fault.NewInjector(c.FaultSeed, c.FaultRate)
}

// Resilience reports what the resilient runner absorbed during one run.
type Resilience struct {
	Retries       int
	WatchdogTrips int
	Faults        []fault.Record
	// TotalUS is the run's total simulated time including setup — the amount
	// the degradation ladder advances its global trace clock by.
	TotalUS float64
}

// retrier wraps enqueue operations in bounded retry-with-backoff. Backoff
// advances the simulated host cursor, modeling the host spinning between
// clEnqueue attempts.
type retrier struct {
	ctx   *clrt.Context
	ctrl  RunControl
	stats *Resilience
}

func (r *retrier) do(op func() error) error {
	backoff := r.ctrl.BackoffUS
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if !fault.IsTransient(err) || attempt >= r.ctrl.MaxRetries {
			return fmt.Errorf("after %d attempt(s): %w", attempt+1, err)
		}
		r.stats.Retries++
		r.ctx.AdvanceHost(backoff)
		backoff *= 2
	}
}

// runImages drives n images through enqueueImage under the watchdog. When a
// deadline is set, each image is synchronized (clFinish) and checked; a trip
// re-enqueues the image, up to MaxRetries. Without a deadline images stream
// back-to-back and pipeline freely. The returned event index ranges cover
// each image's commands including retried attempts (the trace's image span
// shows what the image actually cost, not just the successful attempt).
func runImages(ctx *clrt.Context, ctrl RunControl, stats *Resilience, n int, enqueueImage func() error) ([][2]int, error) {
	imgRanges := make([][2]int, 0, n)
	for img := 0; img < n; img++ {
		evLo := len(ctx.Events())
		if ctrl.WatchdogUS <= 0 {
			if err := enqueueImage(); err != nil {
				return imgRanges, fmt.Errorf("image %d: %w", img, err)
			}
			imgRanges = append(imgRanges, [2]int{evLo, len(ctx.Events())})
			continue
		}
		backoff := ctrl.BackoffUS
		for attempt := 0; ; attempt++ {
			imgStart := ctx.ElapsedUS()
			if err := enqueueImage(); err != nil {
				return imgRanges, fmt.Errorf("image %d: %w", img, err)
			}
			ctx.Finish()
			ev := ctx.WatchdogExceeded(imgStart, ctrl.WatchdogUS)
			if ev == nil {
				break
			}
			stats.WatchdogTrips++
			if attempt >= ctrl.MaxRetries {
				return imgRanges, fmt.Errorf("image %d: %s %s exceeded the %v us watchdog deadline (%v us) %d time(s)",
					img, ev.Kind, ev.Name, ctrl.WatchdogUS, ev.Duration(), attempt+1)
			}
			ctx.AdvanceHost(backoff)
			backoff *= 2
		}
		imgRanges = append(imgRanges, [2]int{evLo, len(ctx.Events())})
	}
	ctx.Finish()
	return imgRanges, nil
}

func finishRun(ctx *clrt.Context, inj *fault.Injector, stats *Resilience, n int, start float64) (*RunResult, *Resilience) {
	if inj != nil {
		stats.Faults = inj.Records()
	}
	elapsed := ctx.ElapsedUS() - start
	return &RunResult{
		Images:      n,
		ElapsedUS:   elapsed,
		FPS:         float64(n) / elapsed * 1e6,
		Breakdown:   ctx.Breakdown(),
		PerKernelUS: ctx.BreakdownByName(),
		Timeline:    ctx.TimelineSince(72, start),
	}, stats
}

// RunResilient is Run with fault injection, bounded retry, and an optional
// per-image watchdog. It returns the absorbed-fault statistics alongside the
// usual timing result; an error means the deployment could not complete even
// with retries (the degradation ladder's cue to fall back).
func (p *Pipelined) RunResilient(n int, concurrent bool, ctrl RunControl) (*RunResult, *Resilience, error) {
	ctrl = ctrl.withDefaults()
	if err := p.Design.Err(); err != nil {
		return nil, nil, err
	}
	ctx, err := clrt.NewContext(p.Design)
	if err != nil {
		return nil, nil, err
	}
	inj := ctrl.injector()
	ctx.Injector = inj
	stats := &Resilience{}
	faultsBefore := inj.Count() // a ladder-shared injector already has records
	r := &retrier{ctx: ctx, ctrl: ctrl, stats: stats}

	bufs := map[*ir.Buffer]*clrt.Buffer{}
	devBuf := func(b *ir.Buffer) *clrt.Buffer {
		if b == nil {
			return nil
		}
		if d, ok := bufs[b]; ok {
			return d
		}
		sz, _ := b.ConstLen()
		d := ctx.NewBuffer(b.Name, int(sz)*4)
		bufs[b] = d
		return d
	}

	setup := ctx.NewQueue()
	for _, st := range p.stages {
		for _, pb := range []struct {
			buf *ir.Buffer
			t   *tensor.Tensor
		}{{st.op.Weights, st.layer.W}, {st.op.Bias, st.layer.B}} {
			if pb.buf == nil {
				continue
			}
			buf, bytes := devBuf(pb.buf), pb.t.Bytes()
			if err := r.do(func() error { _, e := setup.EnqueueWrite(buf, bytes); return e }); err != nil {
				return nil, stats, fmt.Errorf("parameter upload %s: %w", pb.buf.Name, err)
			}
		}
	}
	ctx.Finish()

	queues := map[string]*clrt.Queue{}
	shared := ctx.NewQueue()
	queueFor := func(name string) *clrt.Queue {
		if !concurrent {
			return shared
		}
		if q, ok := queues[name]; ok {
			return q
		}
		q := ctx.NewQueue()
		queues[name] = q
		return q
	}

	inBytes, outBytes := 4, 4
	for _, d := range p.inShape {
		inBytes *= d
	}
	for _, d := range p.outShape {
		outBytes *= d
	}
	devInOf := func(st *stage) *clrt.Buffer {
		if st.op.In == nil {
			return nil
		}
		if st.layer.In < 0 {
			return devBuf(p.inBuf)
		}
		return devBuf(p.stages[st.layer.In].op.Out)
	}

	start := ctx.ElapsedUS()
	enqueueImage := func() error {
		inQ := queueFor(p.stages[0].op.Kernel.Name)
		if err := r.do(func() error { _, e := inQ.EnqueueWrite(devBuf(p.inBuf), inBytes); return e }); err != nil {
			return fmt.Errorf("input write: %w", err)
		}
		for _, st := range p.stages {
			if st.op.Kernel.Autorun {
				continue
			}
			call := clrt.KernelCall{Name: st.op.Kernel.Name}
			if in := devInOf(st); in != nil {
				call.Reads = append(call.Reads, in)
			}
			for _, b := range []*ir.Buffer{st.op.Weights, st.op.Bias} {
				if b != nil {
					call.Reads = append(call.Reads, devBuf(b))
				}
			}
			for _, b := range st.op.Scratches {
				call.Writes = append(call.Writes, devBuf(b))
			}
			if st.op.Out != nil {
				call.Writes = append(call.Writes, devBuf(st.op.Out))
			}
			q := queueFor(st.op.Kernel.Name)
			if err := r.do(func() error { _, e := q.EnqueueKernel(call); return e }); err != nil {
				return fmt.Errorf("kernel %s: %w", call.Name, err)
			}
		}
		outQ := queueFor(p.stages[len(p.stages)-1].op.Kernel.Name)
		if err := r.do(func() error { _, e := outQ.EnqueueRead(devBuf(p.outBuf), outBytes); return e }); err != nil {
			return fmt.Errorf("output read: %w", err)
		}
		return nil
	}
	imgRanges, err := runImages(ctx, ctrl, stats, n, enqueueImage)
	stats.TotalUS = ctx.ElapsedUS()
	if err != nil {
		if inj != nil {
			stats.Faults = inj.Records()
		}
		collectResilientTrace(ctrl, ctx, inj, faultsBefore, stats, nil, imgRanges, start)
		return nil, stats, err
	}
	res, stats := finishRun(ctx, inj, stats, n, start)
	collectResilientTrace(ctrl, ctx, inj, faultsBefore, stats, res, imgRanges, start)
	return res, stats, nil
}

// RunResilient is the folded counterpart of the pipelined resilient runner.
func (f *Folded) RunResilient(n int, ctrl RunControl) (*RunResult, *Resilience, error) {
	ctrl = ctrl.withDefaults()
	if err := f.Design.Err(); err != nil {
		return nil, nil, err
	}
	ctx, err := clrt.NewContext(f.Design)
	if err != nil {
		return nil, nil, err
	}
	inj := ctrl.injector()
	ctx.Injector = inj
	stats := &Resilience{}
	faultsBefore := inj.Count() // a ladder-shared injector already has records
	r := &retrier{ctx: ctx, ctrl: ctrl, stats: stats}
	q := ctx.NewQueue()

	inBytes := 4
	for _, d := range f.inShape {
		inBytes *= d
	}
	input := ctx.NewBuffer("input", inBytes)
	outBufs := make([]*clrt.Buffer, len(f.Layers))
	devOut := func(idx int) *clrt.Buffer {
		if outBufs[idx] == nil {
			outBufs[idx] = ctx.NewBuffer(fmt.Sprintf("act%d", idx), f.outBytes[idx])
		}
		return outBufs[idx]
	}
	devIn := func(idx int) *clrt.Buffer {
		if idx < 0 {
			return input
		}
		return devOut(idx)
	}

	weightBufs := map[*relay.Layer]*clrt.Buffer{}
	biasBufs := map[*relay.Layer]*clrt.Buffer{}
	for _, inv := range f.plan {
		if inv.layer.W != nil && inv.op.Weights != nil && weightBufs[inv.layer] == nil {
			b := ctx.NewBuffer(inv.layer.Name+"_w", inv.layer.W.Bytes())
			weightBufs[inv.layer] = b
			bytes := inv.layer.W.Bytes()
			if err := r.do(func() error { _, e := q.EnqueueWrite(b, bytes); return e }); err != nil {
				return nil, stats, fmt.Errorf("parameter upload %s: %w", inv.layer.Name, err)
			}
		}
		if inv.layer.B != nil && inv.op.Bias != nil && biasBufs[inv.layer] == nil {
			b := ctx.NewBuffer(inv.layer.Name+"_b", inv.layer.B.Bytes())
			biasBufs[inv.layer] = b
			bytes := inv.layer.B.Bytes()
			if err := r.do(func() error { _, e := q.EnqueueWrite(b, bytes); return e }); err != nil {
				return nil, stats, fmt.Errorf("parameter upload %s: %w", inv.layer.Name, err)
			}
		}
	}
	ctx.Finish()

	outBytes := 4
	for _, d := range f.outShape {
		outBytes *= d
	}
	start := ctx.ElapsedUS()
	enqueueImage := func() error {
		if err := r.do(func() error { _, e := q.EnqueueWrite(input, inBytes); return e }); err != nil {
			return fmt.Errorf("input write: %w", err)
		}
		for _, inv := range f.plan {
			call := clrt.KernelCall{Name: inv.kernel.Name, Bindings: inv.bindings,
				Reads: []*clrt.Buffer{devIn(inv.inIdx)}}
			if b := weightBufs[inv.layer]; b != nil {
				call.Reads = append(call.Reads, b)
			}
			if b := biasBufs[inv.layer]; b != nil {
				call.Reads = append(call.Reads, b)
			}
			if inv.skipIdx >= 0 || (inv.layer.HasSkip && inv.skipIdx == -1) {
				call.Reads = append(call.Reads, devIn(inv.skipIdx))
			}
			for _, sc := range inv.op.Scratches {
				if nn, ok := sc.ConstLen(); ok {
					call.Writes = append(call.Writes, ctx.NewBuffer(sc.Name, int(nn)*4))
				}
			}
			call.Writes = append(call.Writes, devOut(inv.outIdx))
			if err := r.do(func() error { _, e := q.EnqueueKernel(call); return e }); err != nil {
				return fmt.Errorf("kernel %s (layer %s): %w", call.Name, inv.layer.Name, err)
			}
		}
		last := f.plan[len(f.plan)-1]
		if err := r.do(func() error { _, e := q.EnqueueRead(devOut(last.outIdx), outBytes); return e }); err != nil {
			return fmt.Errorf("output read: %w", err)
		}
		return nil
	}
	imgRanges, err := runImages(ctx, ctrl, stats, n, enqueueImage)
	stats.TotalUS = ctx.ElapsedUS()
	if err != nil {
		if inj != nil {
			stats.Faults = inj.Records()
		}
		collectResilientTrace(ctrl, ctx, inj, faultsBefore, stats, nil, imgRanges, start)
		return nil, stats, err
	}
	res, stats := finishRun(ctx, inj, stats, n, start)
	collectResilientTrace(ctrl, ctx, inj, faultsBefore, stats, res, imgRanges, start)
	return res, stats, nil
}

// Deployment is a built accelerator deployment the degradation ladder can
// drive: functional inference for output checking, resilient timed
// execution, and enough introspection to verify the kernel set.
type Deployment interface {
	Infer(input *tensor.Tensor) (*tensor.Tensor, error)
	Resilient(n int, ctrl RunControl) (*RunResult, *Resilience, error)
	KernelSet() []*ir.Kernel
	DesignErr() error
}

// Resilient implements Deployment (pipelined deployments always use
// concurrent queues on the ladder; serial execution is a benchmarking mode,
// not a deployment mode).
func (p *Pipelined) Resilient(n int, ctrl RunControl) (*RunResult, *Resilience, error) {
	return p.RunResilient(n, true, ctrl)
}

// KernelSet implements Deployment.
func (p *Pipelined) KernelSet() []*ir.Kernel { return designKernels(p.Design) }

// DesignErr implements Deployment.
func (p *Pipelined) DesignErr() error { return p.Design.Err() }

// Resilient implements Deployment.
func (f *Folded) Resilient(n int, ctrl RunControl) (*RunResult, *Resilience, error) {
	return f.RunResilient(n, ctrl)
}

// KernelSet implements Deployment.
func (f *Folded) KernelSet() []*ir.Kernel { return designKernels(f.Design) }

// DesignErr implements Deployment.
func (f *Folded) DesignErr() error { return f.Design.Err() }

func designKernels(d *aoc.Design) []*ir.Kernel {
	ks := make([]*ir.Kernel, len(d.Kernels))
	for i, m := range d.Kernels {
		ks[i] = m.Kernel
	}
	return ks
}

// Rung is one candidate deployment on the degradation ladder, ordered most
// to least optimized. Build is called lazily: lower rungs cost nothing
// unless an upper rung fails.
type Rung struct {
	Name  string
	Build func() (Deployment, error)
}

// Fallback records one step down the ladder and why it was taken.
type Fallback struct {
	From   string
	Reason string
}

// ResilientReport is the full outcome of a ladder run: which rung finally
// served, the output it produced, and everything absorbed on the way.
type ResilientReport struct {
	Net    string
	Mode   string // rung name, or "cpuref" when fully degraded
	Output *tensor.Tensor
	// Run is the timed result of the serving rung; nil when degraded to the
	// CPU reference (which has no device timeline).
	Run           *RunResult
	Faults        []fault.Record
	Fallbacks     []Fallback
	Retries       int
	WatchdogTrips int
	Degraded      bool
}

// Summary renders the report for humans.
func (r *ResilientReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: served by %s", r.Net, r.Mode)
	if r.Run != nil {
		fmt.Fprintf(&b, " (%d image(s), %.0f us, %.1f FPS)", r.Run.Images, r.Run.ElapsedUS, r.Run.FPS)
	}
	fmt.Fprintf(&b, "\n  retries=%d watchdog_trips=%d faults=%d degraded=%v\n",
		r.Retries, r.WatchdogTrips, len(r.Faults), r.Degraded)
	if len(r.Faults) > 0 {
		byKind := map[string]int{}
		var order []string
		for _, f := range r.Faults {
			if byKind[f.Kind.String()] == 0 {
				order = append(order, f.Kind.String())
			}
			byKind[f.Kind.String()]++
		}
		b.WriteString("  injected: ")
		for i, k := range order {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s x%d", k, byKind[k])
		}
		b.WriteString("\n")
	}
	for _, f := range r.Fallbacks {
		fmt.Fprintf(&b, "  fell back from %s: %s\n", f.From, f.Reason)
	}
	return b.String()
}

// RunLadder walks the rungs most-optimized first. A rung serves only if it
// builds, fits, passes static channel verification, produces output matching
// the CPU reference, and completes a timed resilient run of n images. Any
// failure records a Fallback and tries the next rung; when every rung fails
// the CPU reference executor serves the answer, so the ladder never returns
// an inference failure for a network the reference can run.
func RunLadder(net string, layers []*relay.Layer, rungs []Rung, input *tensor.Tensor, n int, ctrl RunControl) (*ResilientReport, error) {
	ctrl = ctrl.withDefaults()
	if ctrl.Injector == nil {
		ctrl.Injector = ctrl.injector() // share one ledger across rungs
	}
	want, err := relay.Execute(layers, input)
	if err != nil {
		return nil, fmt.Errorf("host: reference execution failed, nothing to degrade to: %w", err)
	}

	rep := &ResilientReport{Net: net}
	tc := ctrl.Trace
	// Cumulative clock of the ladder walk: every rung runs in a fresh clrt
	// context starting at 0, so its spans are shifted past the rungs before.
	offsetUS := ctrl.TraceOffsetUS
	fail := func(rung Rung, reason string) {
		rep.Fallbacks = append(rep.Fallbacks, Fallback{From: rung.Name, Reason: reason})
		tc.Metrics().Counter("host.fallbacks").Inc()
		tc.Instant("host", "ladder", rung.Name, "rung", offsetUS,
			map[string]string{"status": "failed", "reason": reason})
	}
	for _, rung := range rungs {
		dep, err := rung.Build()
		if err != nil {
			fail(rung, fmt.Sprintf("build failed: %v", err))
			continue
		}
		if err := dep.DesignErr(); err != nil {
			fail(rung, fmt.Sprintf("does not fit/route: %v", err))
			continue
		}
		if err := verify.Kernels(dep.KernelSet()).Err(); err != nil {
			fail(rung, fmt.Sprintf("static channel verification rejected the design: %v", err))
			continue
		}
		out, err := dep.Infer(input)
		if err != nil {
			fail(rung, fmt.Sprintf("functional execution failed: %v", err))
			continue
		}
		if out.ArgMax() != want.ArgMax() || tensor.MaxAbsDiff(out, want) > 1e-3 {
			fail(rung, fmt.Sprintf("output mismatch vs reference (max |diff| %.2e)", tensor.MaxAbsDiff(out, want)))
			continue
		}
		rungCtrl := ctrl
		rungCtrl.TraceOffsetUS = offsetUS
		run, stats, err := dep.Resilient(n, rungCtrl)
		status := "served"
		if err != nil {
			status = "failed"
		}
		if stats != nil {
			rep.Retries += stats.Retries
			rep.WatchdogTrips += stats.WatchdogTrips
			if stats.TotalUS > 0 {
				tc.Add(trace.Span{Proc: "host", Track: "ladder", Name: rung.Name, Cat: "rung",
					StartUS: offsetUS, DurUS: stats.TotalUS,
					Args: map[string]string{"status": status}})
				offsetUS += stats.TotalUS
			}
		}
		if err != nil {
			fail(rung, fmt.Sprintf("timed run failed despite retries: %v", err))
			continue
		}
		rep.Mode, rep.Output, rep.Run = rung.Name, out, run
		rep.Degraded = len(rep.Fallbacks) > 0
		if ctrl.Injector != nil {
			rep.Faults = ctrl.Injector.Records()
		}
		return rep, nil
	}

	// Fully degraded: serve from the CPU reference executor.
	rep.Mode, rep.Output, rep.Degraded = "cpuref", want, true
	tc.Instant("host", "ladder", "cpuref", "rung", offsetUS,
		map[string]string{"status": "served", "degraded": "true"})
	if ctrl.Injector != nil {
		rep.Faults = ctrl.Injector.Records()
	}
	return rep, nil
}

// PipelinedLadder builds the standard pipelined degradation ladder:
// the fully optimized autorun deployment, then channels without autorun,
// then the naive base bitstream.
func PipelinedLadder(layers []*relay.Layer, board *fpga.Board, opts aoc.Options) []Rung {
	mk := func(v PipeVariant) Rung {
		return Rung{
			Name: "pipelined-" + v.String(),
			Build: func() (Deployment, error) {
				return BuildPipelined(layers, v, board, opts)
			},
		}
	}
	return []Rung{mk(PipeTVMAutorun), mk(PipeChannels), mk(PipeBase)}
}

// FoldedLadder builds the folded degradation ladder: the tuned configuration
// first, then the untuned parameterized kernel set (vector width 1
// everywhere), which uses far less area.
func FoldedLadder(layers []*relay.Layer, tuned FoldedConfig, board *fpga.Board, opts aoc.Options) []Rung {
	return []Rung{
		{Name: "folded-tuned", Build: func() (Deployment, error) {
			return BuildFolded(layers, tuned, board, opts)
		}},
		{Name: "folded-untuned", Build: func() (Deployment, error) {
			return BuildFolded(layers, FoldedConfig{Workaround: true}, board, opts)
		}},
	}
}
