package host

import (
	"strings"
	"testing"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/tensor"
)

func TestPipelinedActivationDumpMatchesReference(t *testing.T) {
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeBase, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	input := nn.Digit(5)
	dumps, err := p.DumpActivations(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != len(layers) {
		t.Fatalf("dumped %d layers, want %d", len(dumps), len(layers))
	}
	// Every intermediate matches the reference executed up to that layer.
	for i := range layers {
		want, err := relay.Execute(layers[:i+1], input)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(dumps[i], want, 1e-4) {
			t.Fatalf("layer %d (%s) dump diverges: %v", i, layers[i].Name, tensor.MaxAbsDiff(dumps[i], want))
		}
	}
}

func TestPipelinedDumpRejectsChannelized(t *testing.T) {
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DumpActivations(nn.Digit(0)); err == nil ||
		!strings.Contains(err.Error(), "channels") {
		t.Fatalf("channelized dump must be rejected, got %v", err)
	}
}

func TestFoldedActivationDump(t *testing.T) {
	layers := lenetLayers(t)
	f, err := BuildFolded(layers, lenetFoldedConfig(), fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	input := nn.Digit(2)
	dumps, err := f.DumpActivations(input)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range layers {
		if dumps[i] == nil {
			t.Fatalf("layer %d (%s) not dumped", i, l.Name)
		}
		want, err := relay.Execute(layers[:i+1], input)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(dumps[i], want, 1e-4) {
			t.Fatalf("folded dump layer %d (%s) diverges", i, l.Name)
		}
	}
}

func TestRunResultTimeline(t *testing.T) {
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run(3, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Timeline, "timeline:") || !strings.Contains(r.Timeline, "#") {
		t.Fatalf("timeline missing content:\n%s", r.Timeline)
	}
	// Setup weight transfers are excluded from the measured window: the
	// timeline must not list the conv weight buffers as writes.
	if strings.Contains(r.Timeline, "write conv1_w") {
		t.Fatalf("timeline must exclude setup transfers:\n%s", r.Timeline)
	}
	// The autorun pools never appear as commands.
	if strings.Contains(r.Timeline, "max_pool") {
		t.Fatalf("autorun kernels must not appear as commands:\n%s", r.Timeline)
	}
}

func TestNoisyDigitRobustness(t *testing.T) {
	// The deployed pipeline must agree with the reference classifier on
	// noisy inputs — the bit-exactness story extends beyond clean digits.
	layers := lenetLayers(t)
	p, err := BuildPipelined(layers, PipeTVMAutorun, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d <= 9; d++ {
		for _, seed := range []uint64{1, 2} {
			in := nn.NoisyDigit(d, seed, 0.3)
			want, err := relay.Execute(layers, in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Infer(in)
			if err != nil {
				t.Fatal(err)
			}
			if got.ArgMax() != want.ArgMax() {
				t.Fatalf("digit %d seed %d: accelerator classifies %d, reference %d",
					d, seed, got.ArgMax(), want.ArgMax())
			}
			if !tensor.AllClose(got, want, 1e-4) {
				t.Fatalf("digit %d seed %d: outputs diverge", d, seed)
			}
		}
	}
}
