package host

// Bridging the host program into the observability layer (internal/trace):
// each finished run contributes its device event stream, a host-side phase
// span (setup vs. measured window) and one span per image, so a Chrome trace
// shows where each classified image spent its simulated time — the pictures
// the thesis reads off its execution timelines (§5.2), machine-readable.

import (
	"fmt"
	"math"

	"repro/internal/clrt"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// collectRunTrace records one finished run into the collector: device spans
// per queue (via trace.AddEvents), a host "phases" track with the setup and
// measured windows, and an "images" track with one span per image built from
// the event index ranges captured during enqueueing. startUS is the
// simulated time the measured window began. Safe on a nil collector.
func collectRunTrace(tc *trace.Collector, ctx *clrt.Context, imgRanges [][2]int, startUS float64, res *RunResult) {
	collectRunTraceAt(tc, ctx, imgRanges, startUS, res, 0)
}

// collectRunTraceAt is collectRunTrace on a shifted clock: offsetUS places
// the run on the global trace timeline. Degradation-ladder rungs each run in
// a fresh context starting at 0, so the ladder passes the cumulative time of
// the rungs before them.
func collectRunTraceAt(tc *trace.Collector, ctx *clrt.Context, imgRanges [][2]int, startUS float64, res *RunResult, offsetUS float64) {
	if tc == nil {
		return
	}
	events := ctx.Events()
	tc.AddEvents(events, ctx.ElapsedUS(), offsetUS)
	if startUS > 0 {
		tc.Add(trace.Span{Proc: "host", Track: "phases", Name: "setup", Cat: "phase",
			StartUS: offsetUS, DurUS: startUS})
	}
	tc.Add(trace.Span{Proc: "host", Track: "phases", Name: "run", Cat: "phase",
		StartUS: offsetUS + startUS, DurUS: res.ElapsedUS})
	for img, rg := range imgRanges {
		lo, hi := rg[0], rg[1]
		if lo >= hi || hi > len(events) {
			continue
		}
		s, e := math.Inf(1), math.Inf(-1)
		for _, ev := range events[lo:hi] {
			s = math.Min(s, ev.StartUS)
			e = math.Max(e, ev.EndUS)
		}
		tc.Add(trace.Span{Proc: "host", Track: "images", Name: fmt.Sprintf("image %d", img),
			Cat: "image", StartUS: offsetUS + s, DurUS: e - s,
			Args: map[string]string{"events": fmt.Sprintf("%d", hi-lo)}})
	}
	m := tc.Metrics()
	m.Counter("host.images").Add(int64(res.Images))
	m.Gauge("host.fps").Set(res.FPS)
}

// collectResilientTrace records one resilient run: the usual run spans when
// the run completed (res != nil), bare device spans when it died mid-flight,
// plus fault instants for the records this run added to the (possibly
// ladder-shared) injector ledger and the retry/watchdog counters. Safe when
// ctrl.Trace is nil.
func collectResilientTrace(ctrl RunControl, ctx *clrt.Context, inj *fault.Injector, faultsBefore int, stats *Resilience, res *RunResult, imgRanges [][2]int, startUS float64) {
	tc := ctrl.Trace
	if tc == nil {
		return
	}
	if res != nil {
		collectRunTraceAt(tc, ctx, imgRanges, startUS, res, ctrl.TraceOffsetUS)
	} else {
		tc.AddEvents(ctx.Events(), ctx.ElapsedUS(), ctrl.TraceOffsetUS)
	}
	if recs := inj.Records(); len(recs) > faultsBefore {
		tc.AddFaults(recs[faultsBefore:], ctrl.TraceOffsetUS)
	}
	m := tc.Metrics()
	m.Counter("host.retries").Add(int64(stats.Retries))
	m.Counter("host.watchdog_trips").Add(int64(stats.WatchdogTrips))
}

// publishSimStats mirrors the functional simulator's execution-tier counters
// into the metrics registry under the sim.* namespace. Deployment stats are
// cumulative, so counters are raised to the snapshot value rather than
// blindly incremented — publishing after every run (ladder rungs, repeated
// RunBatch calls on one deployment) stays correct. Safe on a nil registry.
func publishSimStats(reg *trace.Registry, s sim.StatsSnapshot) {
	set := func(name string, v int64) {
		c := reg.Counter(name)
		if d := v - c.Value(); d > 0 {
			c.Add(d)
		}
	}
	set("sim.compile.cache_hits", s.CacheHits)
	set("sim.compile.cache_misses", s.CacheMisses)
	set("sim.exec.vector_loops", s.VectorLoops)
	set("sim.exec.fallback_loops", s.FallbackLoops)
	set("sim.exec.vector_runs", s.VectorRuns)
	set("sim.exec.guard_bailouts", s.GuardBailouts)
	set("sim.exec.gemm_loops", s.GemmLoops)
	set("sim.exec.gemm_runs", s.GemmRuns)
	set("sim.exec.gemm_bailouts", s.GemmBailouts)
}
