package fpga

import (
	"math"
	"testing"
)

func TestBoardTableValues(t *testing.T) {
	// Spot-check against Table 6.1/6.2.
	if A10.Total.DSPs != 1518 || S10SX.Total.DSPs != 5760 || S10MX.Total.DSPs != 3960 {
		t.Fatal("DSP totals diverge from Table 6.2")
	}
	if S10SX.Total.ALUTs != 1666240 || S10MX.Total.RAMs != 6847 {
		t.Fatal("ALUT/RAM totals diverge from Table 6.2")
	}
	if A10.Static.ALUTs != 113900 {
		t.Fatal("A10 static partition diverges from Table 6.2")
	}
}

func TestUsableSubtractsStatic(t *testing.T) {
	u := A10.Usable()
	if u.ALUTs != 740500-113900 || u.RAMs != 2336-377 || u.DSPs != 1518 {
		t.Fatalf("usable = %+v", u)
	}
}

func TestBytesPerCycleMatchesThesisExample(t *testing.T) {
	// §4.11: A10 at 250 MHz supports ~136.4 B/cycle ≈ 32 floats.
	bpc := A10.BytesPerCycleAt(250)
	if math.Abs(bpc-136.4) > 0.5 {
		t.Fatalf("A10 bytes/cycle at 250MHz = %v, want ~136.4", bpc)
	}
	if floats := bpc / 4; floats < 32 || floats > 36 {
		t.Fatalf("A10 float lanes = %v, thesis bounds unroll at 32", floats)
	}
}

func TestFitsIn(t *testing.T) {
	r := Resources{ALUTs: 100, FFs: 100, RAMs: 10, DSPs: 5}
	if ok, _ := r.FitsIn(A10.Total); !ok {
		t.Fatal("small design must fit")
	}
	big := Resources{RAMs: 99999}
	if ok, class := big.FitsIn(A10.Total); ok || class != "BRAM" {
		t.Fatalf("overflow class = %q", class)
	}
}

func TestResourcesAddScaleUtilization(t *testing.T) {
	a := Resources{1, 2, 3, 4}
	b := a.Add(a)
	if b != (Resources{2, 4, 6, 8}) {
		t.Fatalf("Add = %+v", b)
	}
	if a.Scale(3) != (Resources{3, 6, 9, 12}) {
		t.Fatal("Scale wrong")
	}
	logic, _, _, dsp := (Resources{ALUTs: 740500 / 2, DSPs: 1518}).Utilization(A10.Total)
	if math.Abs(logic-0.5) > 1e-9 || math.Abs(dsp-1.0) > 1e-9 {
		t.Fatalf("utilization = %v %v", logic, dsp)
	}
}

func TestQuartusAutoUnroll(t *testing.T) {
	// §6.3.1 fn. 4: A10 (17.1) and S10SX (18.1) auto-unroll; S10MX (19.1)
	// does not.
	if !A10.AutoUnrollsSmallLoops() || !S10SX.AutoUnrollsSmallLoops() {
		t.Fatal("A10/S10SX must auto-unroll small loops")
	}
	if S10MX.AutoUnrollsSmallLoops() {
		t.Fatal("S10MX must not auto-unroll small loops")
	}
}

func TestPCIeMonotone(t *testing.T) {
	for _, b := range Boards {
		if b.PCIe.WriteTimeUS(1<<20) <= b.PCIe.WriteTimeUS(1<<10) {
			t.Fatalf("%s: write time not monotone in size", b.Name)
		}
		if b.PCIe.ReadTimeUS(0) != b.PCIe.ReadLatencyUS {
			t.Fatalf("%s: zero-byte read should cost exactly the latency", b.Name)
		}
	}
	// The S10MX engineering sample must have by far the slowest writes
	// (Fig. 6.2 / Appendix A).
	if S10MX.PCIe.WriteTimeUS(4096) < 4*S10SX.PCIe.WriteTimeUS(4096) {
		t.Fatal("S10MX writes must dominate (engineering-sample BSP)")
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("A10")
	if err != nil || b != A10 {
		t.Fatal("ByName(A10) failed")
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown board must error")
	}
}

func TestS10MXUsesOneHBMChannel(t *testing.T) {
	// §6.2: only one 12.8 GB/s pseudo-channel is used, not the full 409.6.
	if S10MX.PeakGBps != 12.8 {
		t.Fatalf("S10MX PeakGBps = %v, want single-PC 12.8", S10MX.PeakGBps)
	}
}
