// Package fpga models the three evaluation platforms of the thesis
// (Table 6.1/6.2): the Intel PAC with Arria 10 GX, the Intel PAC D5005 with
// Stratix 10 SX, and the Stratix 10 MX HBM development kit. A Board carries
// the chip resources, the static-partition (shell) overhead, external-memory
// and PCIe characteristics, and the Quartus-version-dependent compiler
// behaviours the thesis calls out (auto-unrolling of small loops before
// Quartus 19.1, §6.3.1 fn. 4).
package fpga

import "fmt"

// Resources is a bundle of the four FPGA resource classes tracked by the
// Quartus fitter reports in the thesis.
type Resources struct {
	ALUTs int
	FFs   int
	RAMs  int // M20K memory blocks
	DSPs  int
}

// Add returns the sum of two resource bundles.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.ALUTs + o.ALUTs, r.FFs + o.FFs, r.RAMs + o.RAMs, r.DSPs + o.DSPs}
}

// Scale returns r with every field multiplied by n.
func (r Resources) Scale(n int) Resources {
	return Resources{r.ALUTs * n, r.FFs * n, r.RAMs * n, r.DSPs * n}
}

// Utilization returns per-class utilization fractions of r against total.
func (r Resources) Utilization(total Resources) (logic, ff, ram, dsp float64) {
	return float64(r.ALUTs) / float64(total.ALUTs),
		float64(r.FFs) / float64(total.FFs),
		float64(r.RAMs) / float64(total.RAMs),
		float64(r.DSPs) / float64(total.DSPs)
}

// FitsIn reports whether r fits within total and, if not, the class with the
// largest proportional overflow (what the fitter reports first).
func (r Resources) FitsIn(total Resources) (bool, string) {
	worst := ""
	ratio := 1.0
	check := func(used, avail int, name string) {
		if used > avail {
			if q := float64(used) / float64(avail); q > ratio {
				ratio, worst = q, name
			}
		}
	}
	check(r.ALUTs, total.ALUTs, "logic")
	check(r.FFs, total.FFs, "FFs")
	check(r.RAMs, total.RAMs, "BRAM")
	check(r.DSPs, total.DSPs, "DSPs")
	return worst == "", worst
}

// PCIeModel captures host<->device transfer behaviour (Appendix A): a fixed
// per-command latency plus a bandwidth term. The S10MX engineering sample has
// dramatically slower effective host-to-device writes, which dominates its
// LeNet runtime (Fig. 6.2).
type PCIeModel struct {
	WriteLatencyUS float64 // per clEnqueueWriteBuffer fixed cost, microseconds
	WriteGBps      float64
	ReadLatencyUS  float64
	ReadGBps       float64
}

// WriteTimeUS returns the modeled host→device transfer time for n bytes.
func (p PCIeModel) WriteTimeUS(bytes int) float64 {
	return p.WriteLatencyUS + float64(bytes)/(p.WriteGBps*1e3) // GB/s == bytes/ns == 1e3 bytes/us
}

// ReadTimeUS returns the modeled device→host transfer time for n bytes.
func (p PCIeModel) ReadTimeUS(bytes int) float64 {
	return p.ReadLatencyUS + float64(bytes)/(p.ReadGBps*1e3)
}

// Board is one evaluation platform.
type Board struct {
	Name    string
	SKU     string
	Family  string // "Arria 10" or "Stratix 10"
	Total   Resources
	Static  Resources // static partition / shell (Table 6.2)
	MemName string
	// PeakGBps is the theoretical external-memory bandwidth available to the
	// kernel system. For the S10MX only one HBM pseudo-channel is used
	// (§6.2), so this is the single-PC figure, not the 409.6 GB/s aggregate.
	PeakGBps float64
	// MemEfficiency derates peak bandwidth for LSU-level effects the model
	// does not track individually (refresh, bank conflicts, burst gaps).
	MemEfficiency float64
	// BaseFmaxMHz is the kernel-system clock an empty design closes timing at.
	BaseFmaxMHz float64
	PCIe        PCIeModel
	// QuartusMajor drives version-dependent compiler behaviour: versions
	// before 19.1 auto-unroll small constant loops (§6.3.1 fn. 4).
	QuartusMajor float64
	// EnqueueUS is the host-side cost of one clEnqueue* call on this
	// platform's host system (they differ: Xeon 8180 vs 8280 vs i9, PCIe
	// x8 vs x16, driver generations).
	EnqueueUS float64
	// RouteCapacity is an abstract wiring-capacity figure for the congestion
	// model; larger chips have more routing but also longer paths.
	RouteCapacity float64
}

// AutoUnrollsSmallLoops reports whether this platform's Quartus version
// automatically unrolls small-trip-count loops (A10, S10SX in the thesis).
func (b *Board) AutoUnrollsSmallLoops() bool { return b.QuartusMajor < 19.1 }

// Usable returns the resources available to the kernel system after the
// static partition.
func (b *Board) Usable() Resources {
	return Resources{
		ALUTs: b.Total.ALUTs - b.Static.ALUTs,
		FFs:   b.Total.FFs - b.Static.FFs,
		RAMs:  b.Total.RAMs - b.Static.RAMs,
		DSPs:  b.Total.DSPs - b.Static.DSPs,
	}
}

// BytesPerCycleAt returns the external-memory bytes/cycle ceiling at a given
// clock, the quantity the thesis uses to bound unroll factors (§4.11: 34.1
// GB/s at 250 MHz ≈ 136 B/cycle ≈ 32 floats on the A10).
func (b *Board) BytesPerCycleAt(fmaxMHz float64) float64 {
	return b.PeakGBps * 1e9 / (fmaxMHz * 1e6)
}

func (b *Board) String() string { return b.Name }

// The three evaluation platforms (Tables 6.1 and 6.2).
var (
	A10 = &Board{
		Name:   "A10",
		SKU:    "10AX115N2F40E2LG",
		Family: "Arria 10",
		Total:  Resources{ALUTs: 740500, FFs: 1481000, RAMs: 2336, DSPs: 1518},
		Static: Resources{ALUTs: 113900, FFs: 227800, RAMs: 377, DSPs: 0},

		MemName:       "8 GB DDR4, 2 banks",
		PeakGBps:      34.1,
		MemEfficiency: 0.82,
		BaseFmaxMHz:   242,
		PCIe:          PCIeModel{WriteLatencyUS: 28, WriteGBps: 5.5, ReadLatencyUS: 30, ReadGBps: 5.0},
		QuartusMajor:  17.1,
		EnqueueUS:     45,
		RouteCapacity: 1.00,
	}
	S10SX = &Board{
		Name:   "S10SX",
		SKU:    "1SX280HN2F43E2VG",
		Family: "Stratix 10",
		Total:  Resources{ALUTs: 1666240, FFs: 3457330, RAMs: 11254, DSPs: 5760},
		Static: Resources{ALUTs: 200000, FFs: 275150, RAMs: 467, DSPs: 0},

		MemName:       "32 GB DDR4, 4 banks",
		PeakGBps:      76.8,
		MemEfficiency: 0.85,
		BaseFmaxMHz:   252,
		PCIe:          PCIeModel{WriteLatencyUS: 16, WriteGBps: 11.0, ReadLatencyUS: 18, ReadGBps: 10.0},
		QuartusMajor:  18.1,
		EnqueueUS:     22,
		RouteCapacity: 1.45,
	}
	S10MX = &Board{
		Name:   "S10MX",
		SKU:    "1SM21CHU2F53E1VG",
		Family: "Stratix 10",
		Total:  Resources{ALUTs: 1405440, FFs: 2810880, RAMs: 6847, DSPs: 3960},
		Static: Resources{ALUTs: 13132, FFs: 20030, RAMs: 112, DSPs: 0},

		// Only one HBM2 pseudo-channel is used (§6.2): 12.8 GB/s.
		MemName:       "8 GB HBM2, 1 of 32 PCs used",
		PeakGBps:      12.8,
		MemEfficiency: 0.88,
		BaseFmaxMHz:   330,
		// Engineering sample with experimental BSP: very slow effective
		// host-to-device writes (Fig. 6.2, Appendix A).
		PCIe:          PCIeModel{WriteLatencyUS: 320, WriteGBps: 0.45, ReadLatencyUS: 60, ReadGBps: 1.8},
		QuartusMajor:  19.1,
		EnqueueUS:     28,
		RouteCapacity: 1.30,
	}
)

// Boards lists the three platforms in the order the thesis tabulates them.
var Boards = []*Board{S10MX, S10SX, A10}

// ByName returns the board with the given short name.
func ByName(name string) (*Board, error) {
	for _, b := range Boards {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("fpga: unknown board %q (have S10MX, S10SX, A10)", name)
}
