package bench

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/topi"
)

// MobileNetConfig returns the folded-kernel tiling of Table 6.7 for a board:
// the 1×1 convolution tiled per platform (7/32/4 on the S10MX, 7/16/4 on the
// S10SX, 7/8/8 on the A10), the input 3×3 convolution unrolled C1×F×F
// (3×3×3), the depthwise kernels unrolled W2×F×F (7×3×3), and the dense
// reduction unrolled by 32.
func MobileNetConfig(board *fpga.Board) host.FoldedConfig {
	var pw topi.ConvSched
	switch board.Name {
	case "S10MX":
		pw = topi.OptSched(7, 32, 4)
	case "S10SX":
		pw = topi.OptSched(7, 16, 4)
	default: // A10
		pw = topi.OptSched(7, 8, 8)
	}
	return host.FoldedConfig{
		Conv: map[string]topi.ConvSched{
			"conv1x1s1": pw,
			"conv3x3s2": topi.OptSched(1, 1, 3),
		},
		DWVec:      map[string]int{"dw3x3s1": 7, "dw3x3s2": 7},
		DenseVec:   32,
		Workaround: true,
	}
}

// ResNetConfig returns the folded-kernel tiling of Table 6.13: the 7×7
// convolution unrolled F×F, the 3×3 convolutions tiled W2/C1/F/F = 7/8/3/3,
// the 1×1 projections unrolled C1=8, pooling windows fully unrolled and
// softmax left serial.
func ResNetConfig(board *fpga.Board) host.FoldedConfig {
	s33 := topi.OptSched(7, 1, 8)
	return host.FoldedConfig{
		Conv: map[string]topi.ConvSched{
			"conv7x7s2":     topi.OptSched(1, 1, 1),
			"conv3x3s1":     s33,
			"conv3x3s1_res": s33,
			"conv3x3s2":     s33,
			"conv1x1s2_lin": topi.OptSched(1, 1, 8),
		},
		DenseVec:   32,
		Workaround: true,
	}
}

// FoldedConfigFor returns the per-board folded config for a network.
func FoldedConfigFor(net string, board *fpga.Board) (host.FoldedConfig, error) {
	switch net {
	case "mobilenetv1":
		return MobileNetConfig(board), nil
	case "resnet18", "resnet34":
		return ResNetConfig(board), nil
	}
	return host.FoldedConfig{}, fmt.Errorf("bench: no folded config for %q", net)
}

// NaiveFolded is the base folded bitstream: one naive kernel per layer.
var NaiveFolded = host.FoldedConfig{Naive: true, Workaround: true}
