package bench

import (
	"fmt"
	"strings"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/topi"
)

// AlexNetConfig is the folded tiling for AlexNet on the Arria 10. Output
// widths per group: 11x11/s4 -> 55, 5x5 -> 27, 3x3 -> 13 (prime), so the
// spatial tile must divide those; parallelism comes mainly from the channel
// dimensions.
func AlexNetConfig() host.FoldedConfig {
	return host.FoldedConfig{
		Conv: map[string]topi.ConvSched{
			// The fully-unrolled F x F product already costs 121/25/9 DSPs
			// per lane, so channel/spatial tiles stay small on the A10.
			"conv11x11s4": topi.OptSched(1, 1, 1),
			"conv5x5s1":   topi.OptSched(1, 1, 2),
			"conv3x3s1":   topi.OptSched(13, 1, 4),
		},
		DenseVec:   32,
		Workaround: true,
	}
}

// AlexNetResult is the §6.6.2 extension: the AlexNet-to-AlexNet comparison
// against DNNWeaver that the thesis could only approximate with MobileNet.
type AlexNetResult struct {
	FPS, GFLOPS   float64
	DNNWeaver     float64 // GFLOPS reported by Venieris et al. for DNNWeaver on the A10
	FLOPs         int64
	Synthesizable bool
	FailReason    string
}

// AlexNetComparison deploys AlexNet (folded) on the Arria 10 and compares
// directly against DNNWeaver's published 184.33 GFLOPS — removing the
// MobileNet-vs-AlexNet caveat of Table 6.19.
func AlexNetComparison() (*AlexNetResult, string, error) {
	g := nn.AlexNet()
	layers, err := relay.Lower(g)
	if err != nil {
		return nil, "", err
	}
	res := &AlexNetResult{DNNWeaver: 184.33, FLOPs: g.FLOPs()}
	dep, err := host.BuildFolded(layers, AlexNetConfig(), fpga.A10, aoc.DefaultOptions)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Extension of Table 6.19: AlexNet-to-AlexNet vs DNNWeaver on the Arria 10 ==\n\n")
	fmt.Fprintf(&b, "AlexNet: %d fused layers, %.2fM params, %.2fG FLOPs\n\n",
		len(layers), float64(g.Params())/1e6, float64(res.FLOPs)/1e9)
	if !dep.Design.Synthesizable() {
		res.FailReason = dep.Design.FailReason
		fmt.Fprintf(&b, "deployment does not synthesize: %v\n", dep.Design.Err())
		return res, b.String(), nil
	}
	res.Synthesizable = true
	r, err := dep.Run(2, false)
	if err != nil {
		return nil, "", err
	}
	res.FPS = r.FPS
	res.GFLOPS = r.FPS * float64(res.FLOPs) / 1e9
	logic, ram, dsp := dep.Design.Utilization()
	tb := &table{header: []string{"", "DNNWeaver (16b fixed, RTL)", "This flow (32b float, HLS)"}}
	tb.add("Workload", "AlexNet", "AlexNet")
	tb.add("GFLOPS", "184.33", fmtNum(res.GFLOPS))
	tb.add("Ratio", "1.00x", speedup(res.GFLOPS/res.DNNWeaver))
	tb.add("FPS", "-", fmtNum(res.FPS))
	tb.add("fmax", "200", fmt.Sprintf("%.0f", dep.Design.FmaxMHz))
	tb.add("Area", "~95% DSP", fmt.Sprintf("logic %s, BRAM %s, DSP %s", pct(logic), pct(ram), pct(dsp)))
	b.WriteString(tb.String())
	b.WriteString("\nSame-network comparison the thesis could not make (§6.6.2 fn. 4): the gap\nvs hand-optimized 16-bit RTL remains large, as the thesis anticipates.\n")
	return res, b.String(), nil
}
