// Package bench regenerates every table and figure of the thesis's
// evaluation chapter (and the appendix) from the simulated flow: the LeNet
// optimization ladder (Table 6.4 / Figs 6.1–6.2 / Table 6.5), the 1×1
// convolution tiling sweep (Table 6.6 / Fig 6.3), the folded MobileNet and
// ResNet deployments with their per-operation profiles (Tables 6.7–6.16,
// Figs 6.4–6.7), the routing-congestion map (Fig 6.8), the related-work
// comparisons (Tables 6.17–6.19), the publication-count survey (Fig 7.1)
// and the buffer-transfer-speed appendix.
//
// Every experiment returns both a rendered text report and structured data
// so tests can assert the thesis's qualitative shapes (who wins, by roughly
// what factor, where the crossovers fall).
package bench

import (
	"fmt"
	"math"
	"strings"
)

// table renders an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// barChart renders a horizontal ASCII bar chart (the stand-in for the
// thesis's column figures).
func barChart(title string, labels []string, values []float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxv := 0.0
	maxl := 0
	for i, v := range values {
		if v > maxv {
			maxv = v
		}
		if len(labels[i]) > maxl {
			maxl = len(labels[i])
		}
	}
	if maxv <= 0 {
		maxv = 1
	}
	const width = 46
	for i, v := range values {
		n := int(math.Round(v / maxv * width))
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "  %-*s |%s %s\n", maxl, labels[i], strings.Repeat("#", n), fmtNum(v)+unit)
	}
	return b.String()
}

func fmtNum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

func pct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }

func speedup(x float64) string { return fmt.Sprintf("%.2fx", x) }
