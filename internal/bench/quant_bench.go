package bench

import (
	"fmt"
	"strings"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
)

// QuantResult compares the FP32 deployment against the int8 projection.
type QuantResult struct {
	Net, Board         string
	FP32FPS, Int8FPS   float64
	FP32DSPs, Int8DSPs int
	FP32Fits, Int8Fits bool
	Int8FailReason     string
}

// QuantizationProjection runs the §8.1 future-work experiment: the same
// folded deployments recompiled under the int8 analysis mode (two packed
// multiplies per DSP, 4x narrower LSUs/caches/traffic). Functional int8
// arithmetic is validated separately in cpuref; this is an area/throughput
// projection, clearly labeled as such.
func QuantizationProjection() ([]QuantResult, string, error) {
	var out []QuantResult
	var b strings.Builder
	fmt.Fprintf(&b, "== Future work (§8.1): int8 quantization projection ==\n\n")
	tb := &table{header: []string{"Net", "Board", "FP32 FPS", "int8 FPS", "gain", "FP32 DSPs", "int8 DSPs", "int8 status"}}
	for _, net := range []string{"mobilenetv1", "resnet18"} {
		g, err := nn.ByName(net)
		if err != nil {
			return nil, "", err
		}
		layers, err := relay.Lower(g)
		if err != nil {
			return nil, "", err
		}
		for _, board := range []*fpga.Board{fpga.S10SX, fpga.A10} {
			cfg, err := FoldedConfigFor(net, board)
			if err != nil {
				return nil, "", err
			}
			r := QuantResult{Net: net, Board: board.Name}
			fp, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
			if err != nil {
				return nil, "", err
			}
			if fp.Design.Synthesizable() {
				r.FP32Fits = true
				r.FP32DSPs = fp.Design.TotalArea.DSPs
				rr, err := fp.Run(2, false)
				if err != nil {
					return nil, "", err
				}
				r.FP32FPS = rr.FPS
			}
			q8, err := host.BuildFolded(layers, cfg, board,
				aoc.Options{FPRelaxed: true, FPC: true, Int8: true})
			if err != nil {
				return nil, "", err
			}
			r.Int8DSPs = q8.Design.TotalArea.DSPs
			if q8.Design.Synthesizable() {
				r.Int8Fits = true
				rr, err := q8.Run(2, false)
				if err != nil {
					return nil, "", err
				}
				r.Int8FPS = rr.FPS
			} else {
				r.Int8FailReason = q8.Design.FailReason
				if !q8.Design.Routed {
					r.Int8FailReason = "routing"
				}
			}
			out = append(out, r)
			fpFPS, q8FPS, gain := "na", "na", "-"
			if r.FP32Fits {
				fpFPS = fmtNum(r.FP32FPS)
			}
			status := "ok"
			if r.Int8Fits {
				q8FPS = fmtNum(r.Int8FPS)
				if r.FP32Fits {
					gain = speedup(r.Int8FPS / r.FP32FPS)
				}
			} else {
				status = "fails: " + r.Int8FailReason
			}
			tb.add(net, board.Name, fpFPS, q8FPS, gain,
				fmt.Sprintf("%d", r.FP32DSPs), fmt.Sprintf("%d", r.Int8DSPs), status)
		}
	}
	b.WriteString(tb.String())
	b.WriteString("\nProjection only: the analysis models 18x18 packed DSPs and 4x narrower\nLSUs/traffic; functional int8 kernels are validated in internal/cpuref.\nThe thesis predicts exactly these effects (§6.5, §8.1): higher compute\ndensity and relief of the LSU area/bandwidth bloat that bounds ResNet.\n")
	return out, b.String(), nil
}
