package bench

import (
	"fmt"
	"strings"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
)

const foldedImages = 4

// FoldedInference reproduces the folded-deployment comparisons: Tables
// 6.11/6.12 + Fig 6.5 for MobileNetV1, Tables 6.14/6.15 + Figs 6.6/6.7 for
// the ResNets. Base (naive per-layer) bitstreams that do not fit report
// their failure, as on the Arria 10 in the thesis.
func FoldedInference(net string) (*InferenceResult, string, error) {
	g, err := nn.ByName(net)
	if err != nil {
		return nil, "", err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return nil, "", err
	}
	res := newInference(net, g.FLOPs(), g.Params())
	var areaNote strings.Builder
	areaTb := &table{header: []string{"Board", "Bitstream", "Logic", "BRAM", "DSP", "fmax", "Status"}}
	for _, board := range fpga.Boards {
		// Base: naive per-layer kernels.
		baseDep, err := host.BuildFolded(layers, NaiveFolded, board, aoc.DefaultOptions)
		if err != nil {
			return nil, "", err
		}
		logic, ram, dsp := baseDep.Design.Utilization()
		if baseDep.Design.Synthesizable() {
			rb, err := baseDep.Run(1, false)
			if err != nil {
				return nil, "", err
			}
			res.BaseFPS[board.Name] = rb.FPS
			areaTb.add(board.Name, "Base", pct(logic), pct(ram), pct(dsp),
				fmt.Sprintf("%.0f", baseDep.Design.FmaxMHz), "ok")
		} else {
			areaTb.add(board.Name, "Base", pct(logic), pct(ram), pct(dsp), "-",
				"DOES NOT SYNTHESIZE: "+baseDep.Design.FailReason)
		}

		// Optimized: parameterized kernels with the per-board tiling.
		cfg, err := FoldedConfigFor(net, board)
		if err != nil {
			return nil, "", err
		}
		optDep, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
		if err != nil {
			return nil, "", err
		}
		logic, ram, dsp = optDep.Design.Utilization()
		if !optDep.Design.Synthesizable() {
			res.FailReason[board.Name] = optDep.Design.FailReason
			if !optDep.Design.Routed {
				res.FailReason[board.Name] = "routing"
			}
			areaTb.add(board.Name, "Optimized", pct(logic), pct(ram), pct(dsp), "-",
				"DOES NOT SYNTHESIZE: "+res.FailReason[board.Name])
			continue
		}
		ro, err := optDep.Run(foldedImages, false)
		if err != nil {
			return nil, "", err
		}
		res.FPS[board.Name] = ro.FPS
		res.GFLOPS[board.Name] = ro.FPS * float64(res.FLOPs) / 1e9
		areaTb.add(board.Name, "Optimized", pct(logic), pct(ram), pct(dsp),
			fmt.Sprintf("%.0f", optDep.Design.FmaxMHz), "ok")
	}
	title := map[string]string{
		"mobilenetv1": "Tables 6.11/6.12 + Fig 6.5: MobileNetV1 inference",
		"resnet18":    "Tables 6.14/6.15 + Fig 6.6: ResNet-18 inference",
		"resnet34":    "Tables 6.14/6.15 + Fig 6.7: ResNet-34 inference",
	}[net]
	report, err := renderInference(res, title)
	if err != nil {
		return nil, "", err
	}
	fmt.Fprintf(&areaNote, "\nResource utilization (fitter):\n%s", areaTb.String())
	return res, report + areaNote.String(), nil
}

// KernelTable reproduces Tables 6.7/6.13: the parameterized kernels and
// unroll factors used for each board's deployment.
func KernelTable(net string) (string, error) {
	var b strings.Builder
	switch net {
	case "mobilenetv1":
		fmt.Fprintf(&b, "== Table 6.7: parameterized kernels for MobileNetV1 ==\n\n")
		tb := &table{header: []string{"Kernel", "Tiled dims", "Unroll factors"}}
		tb.add("1x1 conv", "W2, C2, C1", "S10MX: 7/32/4  S10SX: 7/16/4  A10: 7/8/8")
		tb.add("3x3 conv", "C1, F, F", "3x3x3")
		tb.add("3x3 DW conv, S=1", "W2, F, F", "7x3x3")
		tb.add("3x3 DW conv, S=2", "W2, F, F", "7x3x3")
		tb.add("dense", "C1", "32")
		b.WriteString(tb.String())
	case "resnet18", "resnet34":
		fmt.Fprintf(&b, "== Table 6.13: parameterized kernels for ResNet ==\n\n")
		tb := &table{header: []string{"Kernel", "Tiled dims", "Unroll factors"}}
		tb.add("7x7 conv", "F, F", "7x7")
		tb.add("3x3 conv, S=1", "W2, C1, F, F", "7/8/3/3")
		tb.add("3x3 conv, S=2", "W2, C1, F, F", "7/8/3/3")
		tb.add("1x1 conv (projection)", "C1", "8")
		tb.add("3x3 pool", "F, F", "3x3")
		tb.add("softmax", "na", "1 (not unrolled)")
		b.WriteString(tb.String())
	default:
		return "", fmt.Errorf("bench: no kernel table for %q", net)
	}
	return b.String(), nil
}

// OpsProfile reproduces Tables 6.8/6.16: per-operation GFLOPS and runtime
// share for the optimized folded deployment on each Stratix 10 board (and
// the A10 for MobileNet).
func OpsProfile(net string) (map[string][]host.OpProfile, string, error) {
	g, err := nn.ByName(net)
	if err != nil {
		return nil, "", err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return nil, "", err
	}
	out := map[string][]host.OpProfile{}
	var b strings.Builder
	title := "Table 6.8"
	if strings.HasPrefix(net, "resnet") {
		title = "Table 6.16"
	}
	fmt.Fprintf(&b, "== %s: per-operation GFLOPS and runtime share (%s) ==\n\n", title, net)
	for _, board := range fpga.Boards {
		cfg, err := FoldedConfigFor(net, board)
		if err != nil {
			return nil, "", err
		}
		dep, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
		if err != nil {
			return nil, "", err
		}
		if !dep.Design.Synthesizable() {
			fmt.Fprintf(&b, "%s: does not synthesize (%s)\n\n", board.Name, dep.Design.FailReason)
			continue
		}
		prof, err := dep.ProfileOps()
		if err != nil {
			return nil, "", err
		}
		out[board.Name] = prof
		tb := &table{header: []string{"Operation", "% of FP ops", board.Name + " GFLOPS", board.Name + " time"}}
		for _, p := range prof {
			tb.add(p.Class, pct(p.FLOPShare), fmtNum(p.GFLOPS), pct(p.TimeShare))
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	return out, b.String(), nil
}
