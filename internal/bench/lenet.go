package bench

import (
	"fmt"
	"strings"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
)

const ladderImages = 40

// LadderResult holds Table 6.4 / Fig 6.1 data: FPS per bitstream per board,
// serial and concurrent.
type LadderResult struct {
	Boards   []string
	Variants []string
	// FPS[board][variant], FPSCE[board][variant]
	FPS   map[string]map[string]float64
	FPSCE map[string]map[string]float64
	// Area[board][variant] carries the Table 6.5 fitter numbers.
	Area map[string]map[string]AreaRow
}

// AreaRow is one Table 6.5 cell group.
type AreaRow struct {
	Logic, RAM, DSP float64
	FmaxMHz         float64
}

// LeNetLadder reproduces Table 6.4, Fig 6.1 and Table 6.5: five bitstreams
// per board, serial and concurrent execution.
func LeNetLadder() (*LadderResult, string, error) {
	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		return nil, "", err
	}
	res := &LadderResult{
		FPS:   map[string]map[string]float64{},
		FPSCE: map[string]map[string]float64{},
		Area:  map[string]map[string]AreaRow{},
	}
	for _, v := range host.PipeVariants {
		res.Variants = append(res.Variants, v.String())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 6.4 / Fig 6.1: LeNet-5 optimization ladder ==\n\n")
	tb := &table{header: []string{"Bitstream", "Board", "FPS", "FPS [CE]", "vs Base", "Logic", "RAM", "DSP", "fmax"}}
	for _, board := range fpga.Boards {
		res.Boards = append(res.Boards, board.Name)
		res.FPS[board.Name] = map[string]float64{}
		res.FPSCE[board.Name] = map[string]float64{}
		res.Area[board.Name] = map[string]AreaRow{}
		var base float64
		for _, v := range host.PipeVariants {
			p, err := host.BuildPipelined(layers, v, board, aoc.DefaultOptions)
			if err != nil {
				return nil, "", err
			}
			serial, err := p.Run(ladderImages, false, false)
			if err != nil {
				return nil, "", err
			}
			ce, err := p.Run(ladderImages, true, false)
			if err != nil {
				return nil, "", err
			}
			logic, ram, dsp := p.Design.Utilization()
			row := AreaRow{Logic: logic, RAM: ram, DSP: dsp, FmaxMHz: p.Design.FmaxMHz}
			res.FPS[board.Name][v.String()] = serial.FPS
			res.FPSCE[board.Name][v.String()] = ce.FPS
			res.Area[board.Name][v.String()] = row
			if v == host.PipeBase {
				base = serial.FPS
			}
			best := ce.FPS
			if serial.FPS > best {
				best = serial.FPS
			}
			tb.add(v.String(), board.Name,
				fmtNum(serial.FPS), fmtNum(ce.FPS), speedup(best/base),
				pct(logic), pct(ram), pct(dsp), fmt.Sprintf("%.0f", row.FmaxMHz))
		}
	}
	b.WriteString(tb.String())
	b.WriteString("\n")
	// Fig 6.1 as a bar chart per board (best of serial/CE).
	for _, board := range res.Boards {
		labels := []string{}
		vals := []float64{}
		for _, v := range res.Variants {
			labels = append(labels, v)
			vals = append(vals, res.FPS[board][v])
			labels = append(labels, v+" [CE]")
			vals = append(vals, res.FPSCE[board][v])
		}
		b.WriteString(barChart(fmt.Sprintf("Fig 6.1 (%s): LeNet FPS by bitstream", board), labels, vals, " FPS"))
		b.WriteString("\n")
	}
	return res, b.String(), nil
}

// ProfileResult holds Fig 6.2 data: runtime share by event kind.
type ProfileResult struct {
	// Share[board][bitstream][kind] in [0,1].
	Share map[string]map[string]map[string]float64
}

// LeNetProfile reproduces Fig 6.2: the kernel/write/read breakdown for the
// Base and Autorun bitstreams on each platform, measured with the OpenCL
// event profiler enabled (which is why the thesis notes the overhead).
func LeNetProfile() (*ProfileResult, string, error) {
	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		return nil, "", err
	}
	res := &ProfileResult{Share: map[string]map[string]map[string]float64{}}
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig 6.2: LeNet runtime breakdown (OpenCL event profiling) ==\n\n")
	tb := &table{header: []string{"Board", "Bitstream", "Kernel", "Write", "Read"}}
	for _, board := range fpga.Boards {
		res.Share[board.Name] = map[string]map[string]float64{}
		for _, v := range []host.PipeVariant{host.PipeBase, host.PipeAutorun} {
			p, err := host.BuildPipelined(layers, v, board, aoc.DefaultOptions)
			if err != nil {
				return nil, "", err
			}
			r, err := p.Run(20, false, true)
			if err != nil {
				return nil, "", err
			}
			total := r.Breakdown["kernel"] + r.Breakdown["write"] + r.Breakdown["read"]
			share := map[string]float64{}
			for k, t := range r.Breakdown {
				share[k] = t / total
			}
			res.Share[board.Name][v.String()] = share
			tb.add(board.Name, v.String(), pct(share["kernel"]), pct(share["write"]), pct(share["read"]))
		}
	}
	b.WriteString(tb.String())
	return res, b.String(), nil
}

// InferenceResult holds one network's Tables 6.9–6.15 comparison.
type InferenceResult struct {
	Net string
	// Per-board optimized and base FPS (0 when the design does not build).
	FPS, BaseFPS map[string]float64
	// FailReason is set when a board cannot build the design.
	FailReason map[string]string
	GFLOPS     map[string]float64
	TFCPUFPS   float64
	TVM1T      float64
	TVMBest    float64
	TVMBestN   int
	GPUFPS     float64
	FLOPs      int64
	Params     int64
}

// LeNetInference reproduces Tables 6.9/6.10 and Fig 6.4: the optimized
// pipelined deployment on all three boards against the CPU/GPU baselines.
func LeNetInference() (*InferenceResult, string, error) {
	g := nn.LeNet5()
	layers, err := relay.Lower(g)
	if err != nil {
		return nil, "", err
	}
	res := newInference("lenet5", g.FLOPs(), g.Params())
	for _, board := range fpga.Boards {
		base, err := host.BuildPipelined(layers, host.PipeBase, board, aoc.DefaultOptions)
		if err != nil {
			return nil, "", err
		}
		rb, err := base.Run(ladderImages, false, false)
		if err != nil {
			return nil, "", err
		}
		res.BaseFPS[board.Name] = rb.FPS
		opt, err := host.BuildPipelined(layers, host.PipeTVMAutorun, board, aoc.DefaultOptions)
		if err != nil {
			return nil, "", err
		}
		ro, err := opt.Run(ladderImages, true, false)
		if err != nil {
			return nil, "", err
		}
		res.FPS[board.Name] = ro.FPS
		res.GFLOPS[board.Name] = ro.FPS * float64(res.FLOPs) / 1e9
	}
	report, err := renderInference(res, "Tables 6.9/6.10 + Fig 6.4: LeNet-5 inference")
	return res, report, err
}

func newInference(net string, flops, params int64) *InferenceResult {
	return &InferenceResult{
		Net: net, FLOPs: flops, Params: params,
		FPS: map[string]float64{}, BaseFPS: map[string]float64{},
		GFLOPS: map[string]float64{}, FailReason: map[string]string{},
	}
}

func fillBaselines(res *InferenceResult) error {
	var err error
	res.TFCPUFPS, _, err = cpurefTF(res.Net)
	if err != nil {
		return err
	}
	res.TVM1T, err = cpurefTVM(res.Net, 1)
	if err != nil {
		return err
	}
	res.TVMBestN, res.TVMBest, err = cpurefBestTVM(res.Net)
	if err != nil {
		return err
	}
	res.GPUFPS, err = cpurefGPU(res.Net)
	return err
}

func renderInference(res *InferenceResult, title string) (string, error) {
	if err := fillBaselines(res); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n\n", title)
	fmt.Fprintf(&b, "Network: %s   FP ops: %.4g   Params: %.4g\n\n", res.Net, float64(res.FLOPs), float64(res.Params))
	tb := &table{header: []string{"Platform", "FPS", "GFLOPS", "vs Base", "vs TF-CPU", "vs TVM-1T", "vs GPU"}}
	for _, board := range []string{"S10MX", "S10SX", "A10"} {
		if reason, failed := res.FailReason[board]; failed {
			tb.add(board, "na ("+reason+")", "na", "-", "-", "-", "-")
			continue
		}
		fps := res.FPS[board]
		base := res.BaseFPS[board]
		vsBase := "-"
		if base > 0 {
			vsBase = speedup(fps / base)
		}
		tb.add(board, fmtNum(fps), fmtNum(res.GFLOPS[board]), vsBase,
			speedup(fps/res.TFCPUFPS), speedup(fps/res.TVM1T), speedup(fps/res.GPUFPS))
	}
	tb.add("TF-CPU", fmtNum(res.TFCPUFPS), "", "", "1.00x", "", "")
	tb.add("TVM-1T", fmtNum(res.TVM1T), "", "", "", "1.00x", "")
	tb.add(fmt.Sprintf("TVM-%dT (best)", res.TVMBestN), fmtNum(res.TVMBest), "", "", "", "", "")
	tb.add("TF-cuDNN (GTX1060)", fmtNum(res.GPUFPS), "", "", "", "", "1.00x")
	b.WriteString(tb.String())
	b.WriteString("\n")

	// Fig 6.4-style chart: TVM thread sweep plus accelerator lines.
	labels := []string{}
	vals := []float64{}
	for _, n := range []int{1, 2, 4, 8, 16, 32, 56} {
		f, err := cpurefTVM(res.Net, n)
		if err != nil {
			return "", err
		}
		labels = append(labels, fmt.Sprintf("TVM-%dT", n))
		vals = append(vals, f)
	}
	labels = append(labels, "TF-CPU", "TF-cuDNN")
	vals = append(vals, res.TFCPUFPS, res.GPUFPS)
	for _, board := range []string{"S10MX", "S10SX", "A10"} {
		if _, failed := res.FailReason[board]; !failed {
			labels = append(labels, "FPGA "+board)
			vals = append(vals, res.FPS[board])
		}
	}
	b.WriteString(barChart("FPS comparison", labels, vals, " FPS"))
	return b.String(), nil
}
