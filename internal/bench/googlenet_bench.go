package bench

import (
	"fmt"
	"strings"

	"repro/internal/aoc"
	"repro/internal/dse"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
)

// GoogLeNetResult is the concat/GoogLeNet feasibility extension.
type GoogLeNetResult struct {
	Board         string
	FPS, GFLOPS   float64
	FmaxMHz       float64
	Kernels       int
	Layers        int
	Synthesizable bool
	FailReason    string
	PWConfig      string
}

// GoogLeNetFeasibility deploys Inception-v1 through the folded flow with a
// DSE-chosen tiling — the §1.1 extensibility claim exercised at full scale:
// a network with an operator (concat) the thesis never deployed, handled
// with one new compute definition and no hand-designed hardware. Intel DLA
// (§7) runs GoogLeNet on hand-optimized overlay hardware at hundreds of FPS;
// this compiler-generated FP32 flow lands, as the thesis would predict, far
// below that but well above its own naive baseline.
func GoogLeNetFeasibility() ([]GoogLeNetResult, string, error) {
	g := nn.GoogLeNet()
	layers, err := relay.Lower(g)
	if err != nil {
		return nil, "", err
	}
	var out []GoogLeNetResult
	var b strings.Builder
	fmt.Fprintf(&b, "== Extension: GoogLeNet (Inception v1) feasibility via concat ==\n\n")
	fmt.Fprintf(&b, "GoogLeNet: %d fused layers, %.2fM params, %.2fG FLOPs, 9 inception modules\n\n",
		len(layers), float64(g.Params())/1e6, float64(g.FLOPs())/1e9)
	tb := &table{header: []string{"Board", "1x1 tiling (DSE)", "Kernels", "fmax", "FPS", "GFLOPS", "Status"}}
	for _, board := range []*fpga.Board{fpga.S10SX, fpga.A10} {
		res, err := dse.ExploreWith(layers, "googlenet", board, dse.Options{MaxCandidates: 10})
		if err != nil {
			return nil, "", err
		}
		r := GoogLeNetResult{Board: board.Name, Layers: len(layers)}
		best, err := res.Best()
		if err != nil {
			r.FailReason = "no synthesizable configuration"
			out = append(out, r)
			tb.add(board.Name, "-", "-", "-", "-", "-", r.FailReason)
			continue
		}
		dep, err := host.BuildFolded(layers, best.Config, board, aoc.DefaultOptions)
		if err != nil {
			return nil, "", err
		}
		r.Kernels = len(dep.Design.Kernels)
		r.FmaxMHz = dep.Design.FmaxMHz
		r.PWConfig = fmt.Sprintf("%d/%d/%d", best.PW.W2vec, best.PW.C2vec, best.PW.C1vec)
		if !dep.Design.Synthesizable() {
			r.FailReason = dep.Design.FailReason
			out = append(out, r)
			tb.add(board.Name, r.PWConfig, fmt.Sprintf("%d", r.Kernels), "-", "-", "-", "fails: "+r.FailReason)
			continue
		}
		run, err := dep.Run(2, false)
		if err != nil {
			return nil, "", err
		}
		r.Synthesizable = true
		r.FPS = run.FPS
		r.GFLOPS = run.FPS * float64(g.FLOPs()) / 1e9
		out = append(out, r)
		tb.add(board.Name, r.PWConfig, fmt.Sprintf("%d", r.Kernels),
			fmt.Sprintf("%.0f", r.FmaxMHz), fmtNum(r.FPS), fmtNum(r.GFLOPS), "ok")
	}
	b.WriteString(tb.String())
	b.WriteString("\nConcat lowers to a parameterized offset-copy kernel; the whole network\nfolds onto a handful of compute units. Hand-optimized overlays (Intel DLA,\n§7) reach hundreds of FPS on this workload — the compiler-generated flow\ntrades that headroom for zero hardware engineering, the thesis's thesis.\n")
	return out, b.String(), nil
}
