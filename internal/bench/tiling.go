package bench

import (
	"fmt"
	"strings"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/ir"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/topi"
)

// TilingConfig is one row of Table 6.6.
type TilingConfig struct {
	Index               int
	W2vec, C2vec, C1vec int
}

// TilingConfigs are the seven featured configurations of Table 6.6.
var TilingConfigs = []TilingConfig{
	{1, 7, 4, 8},
	{2, 7, 4, 16},
	{3, 7, 8, 4},
	{4, 7, 8, 8},
	{5, 7, 8, 16},
	{6, 7, 16, 4},
	{7, 7, 16, 8},
}

// TilingRow is one measured row of Table 6.6 / Fig 6.3.
type TilingRow struct {
	Config      TilingConfig
	Logic, RAM  float64
	DSPs        int
	FmaxMHz     float64
	TimeMS      float64
	Improvement float64
	Routed      bool
}

// TilingSweepResult holds the sweep plus the baseline.
type TilingSweepResult struct {
	Board      string
	BaseTimeMS float64
	Rows       []TilingRow
}

// pw1x1Layers extracts MobileNetV1's 1×1 convolution layers.
func pw1x1Layers() ([]*relay.Layer, error) {
	layers, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		return nil, err
	}
	var out []*relay.Layer
	for _, l := range layers {
		if l.Kind == relay.KConv && l.F == 1 {
			out = append(out, l)
		}
	}
	return out, nil
}

// TilingSweep reproduces Table 6.6 and Fig 6.3: parameterized 1×1
// convolution kernels at seven tiling configurations on the Arria 10,
// measured as the total time for all MobileNetV1 1×1 layers against the
// default-schedule baseline.
func TilingSweep(board *fpga.Board) (*TilingSweepResult, string, error) {
	layers, err := pw1x1Layers()
	if err != nil {
		return nil, "", err
	}
	res := &TilingSweepResult{Board: board.Name}

	// Baseline: the default TVM schedule per layer, compiled standalone.
	var baseUS float64
	for i, l := range layers {
		spec := topi.ConvSpec{Name: fmt.Sprintf("base1x1_%d", i), C1: l.InShape[0], H: l.InShape[1],
			W: l.InShape[2], C2: l.OutShape[0], F: 1, S: 1, Relu: l.Relu, Bias: l.B != nil}
		op, err := topi.Conv2D(spec, topi.ConvSched{Naive: true}, topi.ConvIO{})
		if err != nil {
			return nil, "", err
		}
		d, err := aoc.Compile(spec.Name, []*ir.Kernel{op.Kernel}, board, aoc.DefaultOptions)
		if err != nil {
			return nil, "", err
		}
		baseUS += d.Kernels[0].TimeUS(nil, d.FmaxMHz, board)
	}
	res.BaseTimeMS = baseUS / 1e3

	for _, cfg := range TilingConfigs {
		pc, err := topi.ConvParam(fmt.Sprintf("pw_%d_%d_%d", cfg.W2vec, cfg.C2vec, cfg.C1vec),
			1, 1, topi.OptSched(cfg.W2vec, cfg.C2vec, cfg.C1vec), true, true, false, true)
		if err != nil {
			return nil, "", err
		}
		d, err := aoc.Compile(pc.Op.Kernel.Name, []*ir.Kernel{pc.Op.Kernel}, board, aoc.DefaultOptions)
		if err != nil {
			return nil, "", err
		}
		row := TilingRow{Config: cfg, FmaxMHz: d.FmaxMHz, Routed: d.Routed}
		logic, ram, _ := d.Utilization()
		row.Logic, row.RAM = logic, ram
		row.DSPs = d.TotalArea.DSPs
		if d.Synthesizable() {
			var us float64
			for _, l := range layers {
				bind, err := pc.Bind(l.InShape[0], l.InShape[1], l.InShape[2], l.OutShape[0])
				if err != nil {
					return nil, "", err
				}
				us += d.Kernels[0].TimeUS(bind, d.FmaxMHz, board)
			}
			row.TimeMS = us / 1e3
			row.Improvement = res.BaseTimeMS / row.TimeMS
		}
		res.Rows = append(res.Rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== Table 6.6 / Fig 6.3: 1x1 convolution tiling sweep on %s ==\n\n", board.Name)
	fmt.Fprintf(&b, "Baseline (default TVM schedule): %.1f ms for all MobileNetV1 1x1 layers\n\n", res.BaseTimeMS)
	tb := &table{header: []string{"Cfg", "W2vec", "C2vec", "C1vec", "Logic", "RAM", "DSPs", "fmax", "Time(ms)", "Improvement", "Routed"}}
	labels := []string{}
	dspVals := []float64{}
	impVals := []float64{}
	for _, r := range res.Rows {
		routed := "yes"
		imp := speedup(r.Improvement)
		tm := fmt.Sprintf("%.2f", r.TimeMS)
		if !r.Routed {
			routed, imp, tm = "NO (congestion)", "-", "-"
		}
		tb.add(fmt.Sprintf("%d", r.Config.Index),
			fmt.Sprintf("%d", r.Config.W2vec), fmt.Sprintf("%d", r.Config.C2vec), fmt.Sprintf("%d", r.Config.C1vec),
			pct(r.Logic), pct(r.RAM), fmt.Sprintf("%d", r.DSPs), fmt.Sprintf("%.0f", r.FmaxMHz),
			tm, imp, routed)
		labels = append(labels, fmt.Sprintf("cfg%d (%d/%d/%d)", r.Config.Index, r.Config.W2vec, r.Config.C2vec, r.Config.C1vec))
		dspVals = append(dspVals, float64(r.DSPs))
		impVals = append(impVals, r.Improvement)
	}
	b.WriteString(tb.String())
	b.WriteString("\n")
	b.WriteString(barChart("Fig 6.3a: DSP blocks per configuration", labels, dspVals, " DSPs"))
	b.WriteString("\n")
	b.WriteString(barChart("Fig 6.3b: improvement over base schedule", labels, impVals, "x"))
	return res, b.String(), nil
}

// RoutingFailure captures one §6.5 congestion case.
type RoutingFailure struct {
	Board               string
	W2vec, C2vec, C1vec int
	Routed              bool
	Demand, Capacity    float64
}

// RoutingFailures reproduces the §6.5 observations: 7/16/8 fails to route on
// the S10SX and 7/32/8 on the S10MX, while the final deployment configs pass.
func RoutingFailures() ([]RoutingFailure, string, error) {
	cases := []struct {
		board     *fpga.Board
		w, c2, c1 int
	}{
		{fpga.S10SX, 7, 16, 4}, // deployed
		{fpga.S10SX, 7, 16, 8}, // fails (§6.5)
		{fpga.S10MX, 7, 32, 4}, // deployed
		{fpga.S10MX, 7, 32, 8}, // fails (§6.5)
		{fpga.A10, 7, 8, 8},    // deployed
		{fpga.A10, 7, 8, 16},   // Table 6.6 cfg 5: routes at degraded fmax
	}
	var out []RoutingFailure
	var b strings.Builder
	fmt.Fprintf(&b, "== §6.5 / Fig 6.8: routing outcomes for 1x1 tiling configurations ==\n\n")
	tb := &table{header: []string{"Board", "Config", "Demand", "Capacity", "fmax", "Routed"}}
	for _, c := range cases {
		pc, err := topi.ConvParam("pw_route", 1, 1, topi.OptSched(c.w, c.c2, c.c1), true, true, false, true)
		if err != nil {
			return nil, "", err
		}
		d, err := aoc.Compile("route-case", []*ir.Kernel{pc.Op.Kernel}, c.board, aoc.DefaultOptions)
		if err != nil {
			return nil, "", err
		}
		f := RoutingFailure{Board: c.board.Name, W2vec: c.w, C2vec: c.c2, C1vec: c.c1,
			Routed: d.Routed, Demand: d.WorstDemand, Capacity: d.Capacity}
		out = append(out, f)
		routed := "yes"
		if !d.Routed {
			routed = "NO"
		}
		tb.add(c.board.Name, fmt.Sprintf("%d/%d/%d", c.w, c.c2, c.c1),
			fmt.Sprintf("%.0f", f.Demand), fmt.Sprintf("%.0f", f.Capacity),
			fmt.Sprintf("%.0f", d.FmaxMHz), routed)
	}
	b.WriteString(tb.String())
	return out, b.String(), nil
}

// RoutingMap renders the Fig 6.8 heatmap for the failing S10SX 7/16/8 case.
func RoutingMap() (string, error) {
	pc, err := topi.ConvParam("pw_7_16_8", 1, 1, topi.OptSched(7, 16, 8), true, true, false, true)
	if err != nil {
		return "", err
	}
	d, err := aoc.Compile("fig6.8", []*ir.Kernel{pc.Op.Kernel}, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig 6.8: routing utilization, 1x1 conv 7/16/8 on the S10SX ==\n")
	fmt.Fprintf(&b, "('#' regions exceed 95%% routing utilization; demand %.0f vs capacity %.0f)\n\n",
		d.WorstDemand, d.Capacity)
	for _, row := range d.RoutingMap(64, 16) {
		b.WriteString("  " + row + "\n")
	}
	if !d.Routed {
		b.WriteString("\nRouter result: FAILED — congestion (as observed in the thesis)\n")
	} else {
		b.WriteString("\nRouter result: routed\n")
	}
	return b.String(), nil
}
