package bench

import "repro/internal/cpuref"

// Thin indirection over the baseline models so experiment code reads
// uniformly and tests can reach the same numbers.

func cpurefTF(net string) (float64, int, error)    { return cpuref.TFCPUFPS(net) }
func cpurefTVM(net string, n int) (float64, error) { return cpuref.TVMCPUFPS(net, n) }
func cpurefGPU(net string) (float64, error)        { return cpuref.GPUFPS(net) }
func cpurefBestTVM(net string) (int, float64, error) {
	return cpuref.BestTVMThreads(net)
}
