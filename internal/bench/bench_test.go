package bench

import (
	"strings"
	"testing"

	"repro/internal/dse"
	"repro/internal/fpga"
)

// The bench tests assert the thesis's qualitative results: who wins, by
// roughly what factor, and where designs stop fitting. Exact figures are
// model outputs; the bands are deliberately loose (see EXPERIMENTS.md for
// the paper-vs-measured accounting).

func TestLeNetLadderShapes(t *testing.T) {
	res, rep, err := LeNetLadder()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "Table 6.4") {
		t.Fatal("report header missing")
	}
	for _, board := range res.Boards {
		fps := res.FPS[board]
		base := fps["Base"]
		best := res.FPSCE[board]["TVM-Autorun"]
		if base <= 0 || best <= base {
			t.Fatalf("%s: best (%.0f) must beat base (%.0f)", board, best, base)
		}
		// Thesis band: 3-10x across boards; allow slack.
		if s := best / base; s < 2.5 || s > 25 {
			t.Errorf("%s: ladder speedup %.1fx outside band", board, s)
		}
		// Monotone: each step >= previous (serial execution).
		order := []string{"Base", "Unrolling", "Channels", "Autorun", "TVM-Autorun"}
		for i := 1; i < len(order); i++ {
			if fps[order[i]] < fps[order[i-1]]*0.99 {
				t.Errorf("%s: %s (%.0f) regressed vs %s (%.0f)", board,
					order[i], fps[order[i]], order[i-1], fps[order[i-1]])
			}
		}
		// CE never hurts channelized bitstreams.
		if res.FPSCE[board]["Autorun"] < fps["Autorun"]*0.99 {
			t.Errorf("%s: concurrent execution regressed autorun", board)
		}
	}
	// The S10SX is the fastest optimized deployment (Table 6.9).
	if !(res.FPSCE["S10SX"]["TVM-Autorun"] > res.FPSCE["S10MX"]["TVM-Autorun"]) {
		t.Error("S10SX must beat S10MX for optimized LeNet")
	}
	// Unrolling helps the S10MX (no auto-unroll) more than the S10SX.
	mx := res.FPS["S10MX"]["Unrolling"] / res.FPS["S10MX"]["Base"]
	sx := res.FPS["S10SX"]["Unrolling"] / res.FPS["S10SX"]["Base"]
	if mx <= sx {
		t.Errorf("unrolling gain on S10MX (%.2fx) must exceed S10SX (%.2fx) — Quartus auto-unroll", mx, sx)
	}
	// Table 6.5 area trends: unrolling raises DSP use; channels cut RAM
	// (activations leave global memory); autorun changes nothing.
	for _, board := range res.Boards {
		area := res.Area[board]
		if area["Unrolling"].DSP < area["Base"].DSP {
			t.Errorf("%s: unrolling must not reduce DSP use", board)
		}
		if area["Channels"].RAM >= area["Unrolling"].RAM {
			t.Errorf("%s: channels must cut RAM vs unrolling (%v vs %v)",
				board, area["Channels"].RAM, area["Unrolling"].RAM)
		}
		if area["Autorun"] != area["Channels"] {
			t.Errorf("%s: autorun must not change area/fmax", board)
		}
	}
}

func TestLeNetProfileShapes(t *testing.T) {
	res, _, err := LeNetProfile()
	if err != nil {
		t.Fatal(err)
	}
	// Fig 6.2: once kernels are fast (Autorun bitstream), the S10MX spends
	// most of its time in buffer writes, unlike the S10SX.
	mx := res.Share["S10MX"]["Autorun"]["write"]
	sx := res.Share["S10SX"]["Autorun"]["write"]
	if mx <= sx || mx < 0.4 {
		t.Fatalf("S10MX write share %.2f must dominate (S10SX %.2f)", mx, sx)
	}
	// And on every board the base bitstream is kernel-dominated.
	for b, shares := range res.Share {
		if shares["Base"]["kernel"] < 0.5 {
			t.Fatalf("%s base must be kernel-bound: %v", b, shares["Base"])
		}
	}
}

func TestLeNetInferenceCrossovers(t *testing.T) {
	res, rep, err := LeNetInference()
	if err != nil {
		t.Fatal(err)
	}
	if err := fillBaselines(res); err != nil {
		t.Fatal(err)
	}
	// Table 6.10 shape: the optimized S10SX beats TF-CPU and the GPU.
	sx := res.FPS["S10SX"]
	if sx <= res.TFCPUFPS {
		t.Fatalf("S10SX LeNet (%.0f) must beat TF-CPU (%.0f)", sx, res.TFCPUFPS)
	}
	if sx <= res.GPUFPS {
		t.Fatalf("S10SX LeNet (%.0f) must beat the GTX 1060 (%.0f)", sx, res.GPUFPS)
	}
	// All FPGA deployments beat their own base.
	for _, b := range []string{"S10MX", "S10SX", "A10"} {
		if res.FPS[b] <= res.BaseFPS[b] {
			t.Fatalf("%s optimized must beat base", b)
		}
	}
	if !strings.Contains(rep, "FPS comparison") {
		t.Fatal("missing figure")
	}
}

func TestTilingSweepShapes(t *testing.T) {
	res, rep, err := TilingSweep(fpga.A10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("want 7 configurations, got %d", len(res.Rows))
	}
	// DSPs grow with the tile volume; improvement grows with DSPs overall
	// (Fig 6.3): compare the smallest and largest routed configs.
	smallest, largest := res.Rows[2], res.Rows[6] // cfg3 (7/8/4), cfg7 (7/16/8)
	if largest.Routed && smallest.Routed {
		if largest.DSPs <= smallest.DSPs {
			t.Fatalf("cfg7 DSPs (%d) must exceed cfg3 (%d)", largest.DSPs, smallest.DSPs)
		}
		if largest.Improvement <= smallest.Improvement {
			t.Fatalf("cfg7 improvement must exceed cfg3")
		}
	}
	// fmax degrades for the big tiles (§6.3.2): cfg5 (7/8/16) well below
	// cfg3 (7/8/4).
	var cfg3, cfg5 TilingRow
	for _, r := range res.Rows {
		if r.Config.Index == 3 {
			cfg3 = r
		}
		if r.Config.Index == 5 {
			cfg5 = r
		}
	}
	if cfg5.FmaxMHz >= cfg3.FmaxMHz {
		t.Fatalf("large tiles must degrade fmax: cfg5 %.0f vs cfg3 %.0f", cfg5.FmaxMHz, cfg3.FmaxMHz)
	}
	// Improvements land in a generous band around the thesis's 64-123x.
	for _, r := range res.Rows {
		if !r.Routed {
			continue
		}
		if r.Improvement < 20 || r.Improvement > 3000 {
			t.Errorf("cfg%d improvement %.0fx implausible", r.Config.Index, r.Improvement)
		}
	}
	if !strings.Contains(rep, "Fig 6.3") {
		t.Fatal("figure missing")
	}
}

func TestRoutingFailuresMatchThesis(t *testing.T) {
	cases, _, err := RoutingFailures()
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string]bool{
		"S10SX 7/16/4": true, "S10SX 7/16/8": false,
		"S10MX 7/32/4": true, "S10MX 7/32/8": false,
		"A10 7/8/8": true, "A10 7/8/16": true,
	}
	for _, c := range cases {
		key := c.Board + " " + strings.Join([]string{itoa(c.W2vec), itoa(c.C2vec), itoa(c.C1vec)}, "/")
		want, ok := expect[key]
		if !ok {
			continue
		}
		if c.Routed != want {
			t.Errorf("%s: routed=%v, thesis says %v", key, c.Routed, want)
		}
	}
}

func itoa(n int) string {
	return strings.TrimSpace(strings.Replace(string(rune('0'+n%10)), "", "", -1))
}

func TestRoutingMapRenders(t *testing.T) {
	rep, err := RoutingMap()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "#") || !strings.Contains(rep, "FAILED") {
		t.Fatalf("routing map must show hot regions and the failure:\n%s", rep)
	}
}

func TestMobileNetInferenceCrossovers(t *testing.T) {
	res, _, err := FoldedInference("mobilenetv1")
	if err != nil {
		t.Fatal(err)
	}
	if err := fillBaselines(res); err != nil {
		t.Fatal(err)
	}
	// §6.4.2: base fails on the A10, optimized fits everywhere.
	if _, failed := res.FailReason["A10"]; failed {
		t.Fatal("optimized MobileNet must fit the A10")
	}
	if res.BaseFPS["A10"] != 0 {
		t.Fatal("base MobileNet must not fit the A10")
	}
	for _, b := range []string{"S10MX", "S10SX"} {
		if res.BaseFPS[b] <= 0 {
			t.Fatalf("base MobileNet must fit the %s", b)
		}
		if imp := res.FPS[b] / res.BaseFPS[b]; imp < 50 {
			t.Fatalf("%s improvement %.0fx too small (thesis: 84-184x)", b, imp)
		}
	}
	// Crossovers: FPGA ~ TF-CPU (0.8-1.4x in the thesis), beats TVM-1T,
	// loses to the GPU.
	sx := res.FPS["S10SX"]
	if r := sx / res.TFCPUFPS; r < 0.6 || r > 2.5 {
		t.Fatalf("S10SX/TF-CPU = %.2f outside thesis band", r)
	}
	if sx <= res.TVM1T {
		t.Fatal("S10SX must beat TVM-1T")
	}
	if sx >= res.GPUFPS {
		t.Fatal("the GTX 1060 must beat the MobileNet accelerator")
	}
}

func TestResNetInferenceCrossovers(t *testing.T) {
	for _, net := range []string{"resnet18", "resnet34"} {
		res, _, err := FoldedInference(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := fillBaselines(res); err != nil {
			t.Fatal(err)
		}
		// §6.4.3: the A10 cannot build ResNet (BRAM); the S10s can.
		if reason, failed := res.FailReason["A10"]; !failed || !strings.Contains(reason, "BRAM") {
			t.Fatalf("%s must fail on the A10 with BRAM, got %q", net, res.FailReason["A10"])
		}
		for _, b := range []string{"S10MX", "S10SX"} {
			if res.FPS[b] <= 0 {
				t.Fatalf("%s must build on the %s", net, b)
			}
		}
		// The headline slowdown: FPGA loses to TF-CPU (0.24-0.43x in the
		// thesis) and loses heavily to the GPU.
		sx := res.FPS["S10SX"]
		if r := sx / res.TFCPUFPS; r >= 0.8 {
			t.Fatalf("%s S10SX/TF-CPU = %.2f; thesis reports a clear slowdown", net, r)
		}
		if r := sx / res.GPUFPS; r >= 0.4 {
			t.Fatalf("%s must lose heavily to the GPU, got %.2f", net, r)
		}
		// But still faster than its own base.
		if res.BaseFPS["S10SX"] > 0 && res.FPS["S10SX"] <= res.BaseFPS["S10SX"] {
			t.Fatalf("%s optimized must beat base", net)
		}
	}
}

func TestOpsProfilesShapes(t *testing.T) {
	mob, _, err := OpsProfile("mobilenetv1")
	if err != nil {
		t.Fatal(err)
	}
	for board, prof := range mob {
		classes := map[string]float64{}
		gflops := map[string]float64{}
		for _, p := range prof {
			classes[p.Class] = p.FLOPShare
			gflops[p.Class] = p.GFLOPS
		}
		// Table 6.8: 1x1 convs carry ~94.8% of FLOPs and run fastest.
		if classes["1x1 conv"] < 0.92 {
			t.Errorf("%s: 1x1 FLOP share %.2f", board, classes["1x1 conv"])
		}
		if gflops["1x1 conv"] <= gflops["3x3 DW conv"] {
			t.Errorf("%s: 1x1 GFLOPS must exceed depthwise", board)
		}
	}
	r34, _, err := OpsProfile("resnet34")
	if err != nil {
		t.Fatal(err)
	}
	for board, prof := range r34 {
		for _, p := range prof {
			if p.Class == "3x3 conv" && p.FLOPShare < 0.9 {
				t.Errorf("%s: ResNet-34 3x3 share %.2f, want >90%% (Table 6.16)", board, p.FLOPShare)
			}
		}
	}
}

func TestKernelTables(t *testing.T) {
	mob, err := KernelTable("mobilenetv1")
	if err != nil || !strings.Contains(mob, "7/32/4") {
		t.Fatalf("MobileNet kernel table wrong: %v\n%s", err, mob)
	}
	rn, err := KernelTable("resnet18")
	if err != nil || !strings.Contains(rn, "7/8/3/3") {
		t.Fatalf("ResNet kernel table wrong: %v", err)
	}
	if _, err := KernelTable("vgg"); err == nil {
		t.Fatal("unknown net must error")
	}
}

func TestTransferSpeedsShapes(t *testing.T) {
	rows, rep := TransferSpeeds()
	if !strings.Contains(rep, "Appendix A") {
		t.Fatal("header missing")
	}
	// Bandwidth grows with size (latency amortized), and the S10MX writes
	// are the slowest at every size.
	byBoard := map[string][]TransferRow{}
	for _, r := range rows {
		byBoard[r.Board] = append(byBoard[r.Board], r)
	}
	for board, rs := range byBoard {
		for i := 1; i < len(rs); i++ {
			if rs[i].WriteGBps < rs[i-1].WriteGBps {
				t.Fatalf("%s: write bandwidth not monotone in size", board)
			}
		}
	}
	for i := range byBoard["S10MX"] {
		if byBoard["S10MX"][i].WriteGBps >= byBoard["S10SX"][i].WriteGBps {
			t.Fatal("S10MX writes must be slowest")
		}
	}
}

func TestPubCount(t *testing.T) {
	rep := PubCount()
	if !strings.Contains(rep, "329") || !strings.Contains(rep, "2018") {
		t.Fatalf("pubcount must total 329 over the survey years:\n%s", rep)
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Fatal("unknown experiment must error")
	}
	rep, err := Run("pubcount")
	if err != nil || rep == "" {
		t.Fatal("pubcount must run")
	}
	rep, err = Run("mobilenet-kernels")
	if err != nil || !strings.Contains(rep, "Table 6.7") {
		t.Fatal("mobilenet-kernels must run")
	}
}

func TestDSEExperimentBeatsOrMatchesHandConfig(t *testing.T) {
	results, rep, err := DSEExperiment(dse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "design-space exploration") {
		t.Fatal("report header missing")
	}
	for _, r := range results {
		if r.BestTimeMS > r.HandTimeMS*1.02 {
			t.Errorf("%s: DSE pick (%.1f ms) must match or beat hand config (%.1f ms)",
				r.Board, r.BestTimeMS, r.HandTimeMS)
		}
		if r.Evaluated == 0 {
			t.Errorf("%s: nothing evaluated", r.Board)
		}
	}
}

func TestQuantizationProjectionShapes(t *testing.T) {
	results, rep, err := QuantizationProjection()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "int8") {
		t.Fatal("report header missing")
	}
	for _, r := range results {
		if !r.FP32Fits {
			continue
		}
		if !r.Int8Fits {
			continue
		}
		// int8 must never be slower and must use fewer DSPs (packing).
		if r.Int8FPS < r.FP32FPS {
			t.Errorf("%s/%s: int8 slower than fp32", r.Net, r.Board)
		}
		if r.Int8DSPs >= r.FP32DSPs {
			t.Errorf("%s/%s: int8 DSPs %d not below fp32 %d", r.Net, r.Board, r.Int8DSPs, r.FP32DSPs)
		}
	}
	// The bandwidth-bound ResNet must gain more from int8 than the
	// compute-bound MobileNet (the §8.1 prediction).
	var mobGain, resGain float64
	for _, r := range results {
		if r.Board != "S10SX" || !r.FP32Fits || !r.Int8Fits {
			continue
		}
		g := r.Int8FPS / r.FP32FPS
		if r.Net == "mobilenetv1" {
			mobGain = g
		}
		if r.Net == "resnet18" {
			resGain = g
		}
	}
	if resGain <= mobGain {
		t.Errorf("ResNet int8 gain (%.2fx) should exceed MobileNet's (%.2fx)", resGain, mobGain)
	}
}

func TestAblationsExperiment(t *testing.T) {
	rows, rep, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("expected at least 5 ablation rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Value <= 1.0 {
			t.Errorf("%s: ablation value %.2f should show a benefit", r.Name, r.Value)
		}
	}
	if !strings.Contains(rep, "Listing 5.11") {
		t.Fatal("workaround ablation missing")
	}
}

func TestAlexNetComparison(t *testing.T) {
	res, rep, err := AlexNetComparison()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synthesizable {
		t.Fatalf("AlexNet must deploy on the A10: %s", res.FailReason)
	}
	// The thesis's proxy ratio (MobileNet vs DNNWeaver AlexNet) was 0.11x;
	// the direct comparison must land in the same regime: far below 1.
	if r := res.GFLOPS / res.DNNWeaver; r <= 0 || r > 0.5 {
		t.Fatalf("AlexNet/DNNWeaver ratio %.3f outside the expected regime", r)
	}
	if !strings.Contains(rep, "184.33") {
		t.Fatal("DNNWeaver anchor missing from report")
	}
}

func TestGoogLeNetFeasibility(t *testing.T) {
	results, rep, err := GoogLeNetFeasibility()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "inception") && !strings.Contains(rep, "Inception") {
		t.Fatal("report header missing")
	}
	var sx *GoogLeNetResult
	for i := range results {
		if results[i].Board == "S10SX" {
			sx = &results[i]
		}
	}
	if sx == nil || !sx.Synthesizable {
		t.Fatalf("GoogLeNet must deploy on the S10SX: %+v", results)
	}
	// Folding: >100 layers onto a small kernel set.
	if sx.Layers < 100 || sx.Kernels > 20 {
		t.Fatalf("folding shape wrong: %d layers on %d kernels", sx.Layers, sx.Kernels)
	}
	// FP32 compiler-generated flow: single-digit FPS, far below overlays.
	if sx.FPS <= 0.5 || sx.FPS > 100 {
		t.Fatalf("GoogLeNet FPS = %.2f outside plausible band", sx.FPS)
	}
}
