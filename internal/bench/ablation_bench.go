package bench

import (
	"fmt"
	"strings"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
)

// AblationRow is one design-choice measurement.
type AblationRow struct {
	Name   string
	Metric string
	Value  float64
}

// Ablations quantifies each design choice DESIGN.md calls out, using the
// full deployments (kernel-level ablations live in bench_test.go):
//
//   - fused+cached schedules vs the naive TVM default (folded LeNet);
//   - channels vs buffered hand-off (LeNet Unrolling -> Channels);
//   - autorun vs host-dispatched weight-less kernels;
//   - concurrent execution vs a single queue;
//   - the Listing 5.11 symbolic-stride workaround, end to end on MobileNet.
func Ablations() ([]AblationRow, string, error) {
	var rows []AblationRow
	add := func(name, metric string, v float64) {
		rows = append(rows, AblationRow{Name: name, Metric: metric, Value: v})
	}

	lenet, err := relay.Lower(nn.LeNet5())
	if err != nil {
		return nil, "", err
	}
	runPipe := func(v host.PipeVariant, ce bool) (float64, error) {
		p, err := host.BuildPipelined(lenet, v, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return 0, err
		}
		r, err := p.Run(20, ce, false)
		if err != nil {
			return 0, err
		}
		return r.FPS, nil
	}
	base, err := runPipe(host.PipeBase, false)
	if err != nil {
		return nil, "", err
	}
	unroll, err := runPipe(host.PipeUnroll, false)
	if err != nil {
		return nil, "", err
	}
	chans, err := runPipe(host.PipeChannels, false)
	if err != nil {
		return nil, "", err
	}
	autorun, err := runPipe(host.PipeAutorun, false)
	if err != nil {
		return nil, "", err
	}
	autorunCE, err := runPipe(host.PipeAutorun, true)
	if err != nil {
		return nil, "", err
	}
	add("unrolling (F×F + dense)", "speedup vs base", unroll/base)
	add("channels + fusion + write caches", "speedup vs unrolling", chans/unroll)
	add("autorun kernels", "speedup vs channels", autorun/chans)
	add("concurrent execution", "speedup vs serial autorun", autorunCE/autorun)

	// Symbolic-stride workaround, end to end on MobileNet (S10SX).
	mob, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		return nil, "", err
	}
	cfgOn := MobileNetConfig(fpga.S10SX)
	cfgOff := MobileNetConfig(fpga.S10SX)
	cfgOff.Workaround = false
	runFolded := func(cfg host.FoldedConfig) (fps float64, logic float64, ok bool, err error) {
		dep, err := host.BuildFolded(mob, cfg, fpga.S10SX, aoc.DefaultOptions)
		if err != nil {
			return 0, 0, false, err
		}
		logic, _, _ = dep.Design.Utilization()
		if !dep.Design.Synthesizable() {
			return 0, logic, false, nil
		}
		r, err := dep.Run(2, false)
		if err != nil {
			return 0, 0, false, err
		}
		return r.FPS, logic, true, nil
	}
	fpsOn, logicOn, okOn, err := runFolded(cfgOn)
	if err != nil {
		return nil, "", err
	}
	fpsOff, logicOff, okOff, err := runFolded(cfgOff)
	if err != nil {
		return nil, "", err
	}
	if okOn {
		if okOff {
			add("stride-1 workaround (Listing 5.11)", "MobileNet speedup", fpsOn/fpsOff)
		} else {
			add("stride-1 workaround (Listing 5.11)", "without it: does not synthesize (logic x)", logicOff/logicOn)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== Ablations: contribution of each design choice ==\n\n")
	tb := &table{header: []string{"Design choice", "Metric", "Value"}}
	for _, r := range rows {
		tb.add(r.Name, r.Metric, speedup(r.Value))
	}
	b.WriteString(tb.String())
	if okOn && !okOff {
		fmt.Fprintf(&b, "\nWithout the workaround the MobileNet design does not synthesize at all\n(nonaligned replicated LSUs, logic %.0f%% vs %.0f%%) — §5.3's point exactly.\n", logicOff*100, logicOn*100)
	}
	_ = fpsOff
	return rows, b.String(), nil
}
