package bench

import (
	"fmt"
	"strings"

	"repro/internal/fpga"
)

// RelatedWork reproduces Tables 6.17–6.19: the comparison against
// Caffeinated FPGAs (DiCecco et al.), TensorFlow-to-Cloud-FPGAs (Hadjis et
// al.) and DNNWeaver (Sharma et al.). The external numbers are quoted from
// the respective papers as the thesis quotes them; our side is measured from
// the simulated deployments passed in.
type RelatedWorkInputs struct {
	// ResNet34Conv3x3GFLOPS is our measured 3×3 s=1 convolution throughput
	// in ResNet-34 on the S10SX (Table 6.17's comparison point).
	ResNet34Conv3x3GFLOPS float64
	// LeNetLatencyMS and LeNetGFLOPS on the S10SX (Table 6.18).
	LeNetLatencyMS float64
	LeNetGFLOPS    float64
	// ResNet34GFLOPS on the S10SX (Table 6.18 right half).
	ResNet34GFLOPS float64
	// MobileNetGFLOPS and LeNet speedup vs TF-CPU on the A10 (Table 6.19).
	MobileNetA10GFLOPS float64
	LeNetVsCPU         float64
	MobileNetVsCPU     float64
}

// RelatedWork renders the three comparison tables.
func RelatedWork(in RelatedWorkInputs) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 6.17: vs Caffeinated FPGAs (DiCecco et al. 2016) ==\n\n")
	t1 := &table{header: []string{"", "DiCecco et al.", "This work"}}
	t1.add("Workload", "3x3 convs, 4 nets (geomean)", "3x3 s1 convs in ResNet-34")
	t1.add("Batch size", "32-64", "1")
	t1.add("Platform", "Virtex 7 XC7VX690T-2", "Stratix 10 SX")
	t1.add("Precision", "32b float", "32b float")
	t1.add("fmax (MHz)", "200", "(model)")
	t1.add("GFLOPS", "50", fmtNum(in.ResNet34Conv3x3GFLOPS))
	t1.add("Ratio", "1.00x", speedup(in.ResNet34Conv3x3GFLOPS/50))
	b.WriteString(t1.String())

	fmt.Fprintf(&b, "\n== Table 6.18: vs TensorFlow to Cloud FPGAs (Hadjis et al. 2019) ==\n\n")
	t2 := &table{header: []string{"", "Hadjis et al.", "This work"}}
	t2.add("Workload", "LeNet", "LeNet")
	t2.add("Platform", "Xilinx UltraScale+ VU9P", "Stratix 10 SX")
	t2.add("Precision", "32b fixed (Q10.22)", "32b float")
	t2.add("Latency (ms)", "0.656", fmt.Sprintf("%.3f", in.LeNetLatencyMS))
	t2.add("Speedup", "1.00x", speedup(0.656/in.LeNetLatencyMS))
	t2.add("", "", "")
	t2.add("Workload (2)", "ResNet-50", "ResNet-34")
	t2.add("GFLOPS", "36.1", fmtNum(in.ResNet34GFLOPS))
	t2.add("Ratio", "1.00x", speedup(in.ResNet34GFLOPS/36.1))
	b.WriteString(t2.String())

	fmt.Fprintf(&b, "\n== Table 6.19: vs DNNWeaver (Sharma et al. 2016) ==\n\n")
	t3 := &table{header: []string{"", "Sharma et al.", "This work"}}
	t3.add("Workload", "LeNet / AlexNet", "LeNet / MobileNetV1")
	t3.add("Platform", "Arria 10 GX", "Arria 10 GX")
	t3.add("Precision", "16b fixed (Q3.13)", "32b float")
	t3.add("LeNet vs CPU", "12x (Xeon-E3)", speedup(in.LeNetVsCPU)+" (Xeon-8280)")
	t3.add("AlexNet/MobileNet vs CPU", "4.2x (Xeon-E3)", speedup(in.MobileNetVsCPU)+" (Xeon-8280)")
	t3.add("GFLOPS (large net)", "184.33 (AlexNet)", fmtNum(in.MobileNetA10GFLOPS)+" (MobileNet)")
	t3.add("Ratio", "1.00x", speedup(in.MobileNetA10GFLOPS/184.33))
	b.WriteString(t3.String())
	return b.String()
}

// pubCounts is the Fig 7.1 survey data: publications with CNN/DNN/neural-
// network titles in FPGA/FPL/FCCM, per the thesis's count.
var pubCounts = []struct {
	Year  int
	Count int
}{
	{2015, 14}, {2016, 36}, {2017, 61}, {2018, 77}, {2019, 79}, {2020, 62},
}

// PubCount renders Fig 7.1.
func PubCount() string {
	labels := make([]string, len(pubCounts))
	vals := make([]float64, len(pubCounts))
	total := 0
	for i, p := range pubCounts {
		labels[i] = fmt.Sprintf("%d", p.Year)
		vals[i] = float64(p.Count)
		total += p.Count
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig 7.1: DNN publications in FPGA/FPL/FCCM (total %d) ==\n\n", total)
	b.WriteString(barChart("publications per year", labels, vals, ""))
	return b.String()
}

// TransferRow is one Appendix A measurement.
type TransferRow struct {
	Board     string
	Bytes     int
	WriteGBps float64
	ReadGBps  float64
}

// TransferSpeeds reproduces Appendix A: effective host<->device bandwidth
// versus buffer size on each platform.
func TransferSpeeds() ([]TransferRow, string) {
	sizes := []int{4 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20}
	var rows []TransferRow
	var b strings.Builder
	fmt.Fprintf(&b, "== Appendix A: FPGA buffer transfer speeds ==\n\n")
	tb := &table{header: []string{"Board", "Size", "Write GB/s", "Read GB/s"}}
	for _, board := range fpga.Boards {
		for _, sz := range sizes {
			w := float64(sz) / (board.PCIe.WriteTimeUS(sz) * 1e3)
			r := float64(sz) / (board.PCIe.ReadTimeUS(sz) * 1e3)
			rows = append(rows, TransferRow{Board: board.Name, Bytes: sz, WriteGBps: w, ReadGBps: r})
			tb.add(board.Name, sizeLabel(sz), fmt.Sprintf("%.3f", w), fmt.Sprintf("%.3f", r))
		}
	}
	b.WriteString(tb.String())
	b.WriteString("\nSmall transfers are latency-bound; the S10MX engineering sample's writes\nstay far below its link capacity at every size (the Fig 6.2 bottleneck).\n")
	return rows, b.String()
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%d MiB", n>>20)
	default:
		return fmt.Sprintf("%d KiB", n>>10)
	}
}
