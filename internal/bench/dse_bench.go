package bench

import (
	"fmt"
	"strings"

	"repro/internal/aoc"
	"repro/internal/dse"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
)

// DSEResult summarizes the explorer run per board.
type DSEResult struct {
	Board      string
	BestPW     string
	BestTimeMS float64
	HandTimeMS float64
	Evaluated  int
	Pruned     int
	// CacheHitRate is the fraction of kernel compilations served from the
	// explorer's memoization cache during this board's search.
	CacheHitRate float64
}

// DSEExperiment runs the future-work design-space explorer (§4.11/§8.1) for
// MobileNetV1 on every board and compares its pick against the thesis's
// hand-selected Table 6.7 configuration. The exploration itself runs through
// the parallel explorer; opts carries worker count, candidate budget and
// deadline (zero values mean GOMAXPROCS workers, the 24-candidate budget
// used by the thesis-comparison tables, and no deadline).
func DSEExperiment(opts dse.Options) ([]DSEResult, string, error) {
	layers, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		return nil, "", err
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 24
	}
	var out []DSEResult
	var b strings.Builder
	fmt.Fprintf(&b, "== Future work (§4.11/§8.1): design-space exploration for MobileNetV1 ==\n\n")
	tb := &table{header: []string{"Board", "Hand-picked (Table 6.7)", "ms", "DSE pick", "ms", "DSE gain", "Evaluated", "Pruned", "Cache"}}
	for _, board := range fpga.Boards {
		res, err := dse.ExploreWith(layers, "mobilenetv1", board, opts)
		if err != nil {
			return nil, "", err
		}
		best, err := res.Best()
		if err != nil {
			return nil, "", err
		}
		hand := MobileNetConfig(board)
		handDep, err := host.BuildFolded(layers, hand, board, aoc.DefaultOptions)
		if err != nil {
			return nil, "", err
		}
		var handUS float64
		prof, err := handDep.ProfileOps()
		if err != nil {
			return nil, "", err
		}
		for _, p := range prof {
			handUS += p.TimeUS
		}
		handSched := hand.Conv["conv1x1s1"]
		r := DSEResult{
			Board:        board.Name,
			BestPW:       fmt.Sprintf("%d/%d/%d", best.PW.W2vec, best.PW.C2vec, best.PW.C1vec),
			BestTimeMS:   best.TimeUS / 1e3,
			HandTimeMS:   handUS / 1e3,
			Evaluated:    res.Evaluated,
			Pruned:       res.Pruned,
			CacheHitRate: res.CacheHitRate(),
		}
		out = append(out, r)
		tb.add(board.Name,
			fmt.Sprintf("%d/%d/%d", handSched.W2vec, handSched.C2vec, handSched.C1vec),
			fmt.Sprintf("%.1f", r.HandTimeMS),
			r.BestPW, fmt.Sprintf("%.1f", r.BestTimeMS),
			speedup(r.HandTimeMS/r.BestTimeMS),
			fmt.Sprintf("%d", r.Evaluated), fmt.Sprintf("%d", r.Pruned),
			fmt.Sprintf("%.0f%%", r.CacheHitRate*100))
	}
	b.WriteString(tb.String())
	b.WriteString("\nThe explorer enumerates divisor-respecting tilings under the §4.11 rules,\npre-screens routability on the dominant kernel in parallel, compiles each\nsurvivor with the full AOC model (memoizing repeated kernel compilations —\nthe Cache column) and ranks by whole-network forward-pass time. Rankings\nare deterministic for any worker count.\n")
	return out, b.String(), nil
}
