package bench

import (
	"fmt"
	"strings"

	"repro/internal/dse"
	"repro/internal/fpga"
)

// GatherRelatedWork runs the measurements the Tables 6.17–6.19 comparison
// needs and fills the inputs struct.
func GatherRelatedWork() (RelatedWorkInputs, error) {
	var in RelatedWorkInputs

	// ResNet-34 per-op profile on the S10SX.
	prof, _, err := OpsProfile("resnet34")
	if err != nil {
		return in, err
	}
	for _, p := range prof["S10SX"] {
		if p.Class == "3x3 conv" {
			in.ResNet34Conv3x3GFLOPS = p.GFLOPS
		}
	}

	// LeNet on the S10SX.
	lenet, _, err := LeNetInference()
	if err != nil {
		return in, err
	}
	if fps := lenet.FPS["S10SX"]; fps > 0 {
		in.LeNetLatencyMS = 1e3 / fps
		in.LeNetGFLOPS = lenet.GFLOPS["S10SX"]
	}
	if err := fillBaselines(lenet); err != nil {
		return in, err
	}
	if lenet.FPS["A10"] > 0 {
		in.LeNetVsCPU = lenet.FPS["A10"] / lenet.TFCPUFPS
	}

	// ResNet-34 and MobileNet deployments.
	r34, _, err := FoldedInference("resnet34")
	if err != nil {
		return in, err
	}
	in.ResNet34GFLOPS = r34.GFLOPS["S10SX"]

	mob, _, err := FoldedInference("mobilenetv1")
	if err != nil {
		return in, err
	}
	in.MobileNetA10GFLOPS = mob.GFLOPS["A10"]
	if err := fillBaselines(mob); err != nil {
		return in, err
	}
	if mob.FPS["A10"] > 0 {
		in.MobileNetVsCPU = mob.FPS["A10"] / mob.TFCPUFPS
	}
	return in, nil
}

// Experiments lists every runnable experiment by CLI name.
var Experiments = []string{
	"platforms", "models",
	"lenet-ladder", "lenet-profile", "lenet-inference",
	"tiling-sweep", "routing-failures", "routing-map",
	"mobilenet-kernels", "mobilenet-ops", "mobilenet-inference",
	"resnet-kernels", "resnet-ops", "resnet-inference",
	"related-work", "pubcount", "transfer-speeds", "dse", "quantization", "alexnet", "googlenet", "ablations",
}

// Run executes one experiment by name and returns its report.
func Run(name string) (string, error) {
	switch name {
	case "platforms":
		return Platforms(), nil
	case "models":
		return Models()
	case "lenet-ladder":
		_, rep, err := LeNetLadder()
		return rep, err
	case "lenet-profile":
		_, rep, err := LeNetProfile()
		return rep, err
	case "lenet-inference":
		_, rep, err := LeNetInference()
		return rep, err
	case "tiling-sweep":
		_, rep, err := TilingSweep(fpga.A10)
		return rep, err
	case "routing-failures":
		_, rep, err := RoutingFailures()
		return rep, err
	case "routing-map":
		return RoutingMap()
	case "mobilenet-kernels":
		return KernelTable("mobilenetv1")
	case "mobilenet-ops":
		_, rep, err := OpsProfile("mobilenetv1")
		return rep, err
	case "mobilenet-inference":
		_, rep, err := FoldedInference("mobilenetv1")
		return rep, err
	case "resnet-kernels":
		return KernelTable("resnet18")
	case "resnet-ops":
		r18, rep18, err := OpsProfile("resnet18")
		if err != nil {
			return "", err
		}
		_ = r18
		_, rep34, err := OpsProfile("resnet34")
		if err != nil {
			return "", err
		}
		return rep18 + "\n" + rep34, nil
	case "resnet-inference":
		_, rep18, err := FoldedInference("resnet18")
		if err != nil {
			return "", err
		}
		_, rep34, err := FoldedInference("resnet34")
		if err != nil {
			return "", err
		}
		return rep18 + "\n" + rep34, nil
	case "related-work":
		in, err := GatherRelatedWork()
		if err != nil {
			return "", err
		}
		return RelatedWork(in), nil
	case "dse":
		_, rep, err := DSEExperiment(dse.Options{})
		return rep, err
	case "quantization":
		_, rep, err := QuantizationProjection()
		return rep, err
	case "alexnet":
		_, rep, err := AlexNetComparison()
		return rep, err
	case "googlenet":
		_, rep, err := GoogLeNetFeasibility()
		return rep, err
	case "ablations":
		_, rep, err := Ablations()
		return rep, err
	case "pubcount":
		return PubCount(), nil
	case "transfer-speeds":
		_, rep := TransferSpeeds()
		return rep, nil
	}
	return "", fmt.Errorf("bench: unknown experiment %q (have: %s)", name, strings.Join(Experiments, ", "))
}

// All runs every experiment and concatenates the reports in thesis order.
func All() (string, error) {
	var b strings.Builder
	for _, name := range Experiments {
		rep, err := Run(name)
		if err != nil {
			return "", fmt.Errorf("experiment %s: %w", name, err)
		}
		b.WriteString(rep)
		b.WriteString("\n" + strings.Repeat("=", 78) + "\n\n")
	}
	return b.String(), nil
}
