package bench

import (
	"fmt"
	"strings"

	"repro/internal/cpuref"
	"repro/internal/fpga"
	"repro/internal/nn"
	"repro/internal/relay"
)

// Platforms renders Tables 6.1–6.3 from the board models and baseline
// profiles, so the simulated platform parameters are inspectable next to the
// results they produce.
func Platforms() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 6.1: FPGA platforms ==\n\n")
	t1 := &table{header: []string{"Platform", "SKU", "External memory", "Peak BW", "Enqueue", "Quartus"}}
	for _, board := range fpga.Boards {
		t1.add(board.Name, board.SKU, board.MemName,
			fmt.Sprintf("%.1f GB/s", board.PeakGBps),
			fmt.Sprintf("%.0f us", board.EnqueueUS),
			fmt.Sprintf("%.1f", board.QuartusMajor))
	}
	b.WriteString(t1.String())

	fmt.Fprintf(&b, "\n== Table 6.2: chip resources and static partition ==\n\n")
	t2 := &table{header: []string{"Platform", "ALUTs", "FFs", "RAMs", "DSPs", "Static ALUTs", "Static RAMs"}}
	for _, board := range fpga.Boards {
		t2.add(board.Name,
			fmt.Sprintf("%d", board.Total.ALUTs), fmt.Sprintf("%d", board.Total.FFs),
			fmt.Sprintf("%d", board.Total.RAMs), fmt.Sprintf("%d", board.Total.DSPs),
			fmt.Sprintf("%d (%.0f%%)", board.Static.ALUTs, 100*float64(board.Static.ALUTs)/float64(board.Total.ALUTs)),
			fmt.Sprintf("%d (%.0f%%)", board.Static.RAMs, 100*float64(board.Static.RAMs)/float64(board.Total.RAMs)))
	}
	b.WriteString(t2.String())

	fmt.Fprintf(&b, "\n== Table 6.3: CPU and GPU baselines (analytic anchors) ==\n\n")
	t3 := &table{header: []string{"Network", "TF-CPU FPS (threads)", "TVM-1T FPS", "TVM best", "TF-cuDNN FPS"}}
	for _, net := range cpuref.Nets() {
		tf, threads, _ := cpuref.TFCPUFPS(net)
		tvm1, _ := cpuref.TVMCPUFPS(net, 1)
		bn, bf, _ := cpuref.BestTVMThreads(net)
		gpu, _ := cpuref.GPUFPS(net)
		t3.add(net, fmt.Sprintf("%s (%d)", fmtNum(tf), threads), fmtNum(tvm1),
			fmt.Sprintf("%s @%dT", fmtNum(bf), bn), fmtNum(gpu))
	}
	b.WriteString(t3.String())
	b.WriteString("\nBaselines are analytic models anchored to the thesis's measured FPS\n(Xeon 8280 2x28C, GTX 1060 6GB) — see DESIGN.md substitutions.\n")
	return b.String()
}

// Models renders the network-architecture tables (Tables 2.1–2.3 plus
// AlexNet) as fused layer listings.
func Models() (string, error) {
	var b strings.Builder
	for _, net := range []string{"lenet5", "mobilenetv1", "resnet18", "resnet34", "alexnet"} {
		g, err := nn.ByName(net)
		if err != nil {
			return "", err
		}
		layers, err := relay.Lower(g)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "== %s: %d fused layers, %.4gM params, %.4gG FLOPs ==\n\n",
			net, len(layers), float64(g.Params())/1e6, float64(g.FLOPs())/1e9)
		b.WriteString(relay.DumpLayers(layers))
		b.WriteString("\n")
	}
	return b.String(), nil
}
