// Package verify statically checks a kernel set's channel dataflow before it
// is handed to aoc.Compile. The Intel OpenCL channel model (§4.6) gives no
// runtime protection: a producer/consumer trip-count mismatch, a doubly
// driven channel, or a cyclic topology deadlocks silently on hardware and
// costs a multi-hour recompile to diagnose. This pass catches those classes
// at host-program build time with typed diagnostics instead of panics.
//
// Trip counts are computed symbolically: each channel operation contributes
// the product of its enclosing loop extents (ir.Expr, simplified via
// ir.Simplify), so parameterized kernels with symbolic shapes are checked
// without knowing concrete bindings. Operations under IfThen or inside
// Select arms are data-dependent; their counts are marked inexact and
// mismatches involving them demote to warnings.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Severity classifies a diagnostic. Errors make the design unrunnable
// (guaranteed or near-certain hardware deadlock); warnings flag risk the
// pass cannot prove either way.
type Severity int

const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding. Check names the rule ("trip-count",
// "discipline", "connectivity", "depth", "cycle", "autorun-args",
// "structure"); Kernel and Channel are set when the finding anchors to one.
type Diagnostic struct {
	Check    string
	Severity Severity
	Kernel   string
	Channel  string
	Msg      string
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]", d.Severity, d.Check)
	if d.Kernel != "" {
		fmt.Fprintf(&b, " kernel %s", d.Kernel)
	}
	if d.Channel != "" {
		fmt.Fprintf(&b, " channel %s", d.Channel)
	}
	fmt.Fprintf(&b, ": %s", d.Msg)
	return b.String()
}

// Result collects every diagnostic for one kernel set.
type Result struct {
	Diags []Diagnostic
}

// OK reports whether no error-severity diagnostics were found.
func (r *Result) OK() bool { return len(r.Errors()) == 0 }

// Errors returns the error-severity diagnostics.
func (r *Result) Errors() []Diagnostic { return r.filter(Error) }

// Warnings returns the warning-severity diagnostics.
func (r *Result) Warnings() []Diagnostic { return r.filter(Warning) }

func (r *Result) filter(s Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity == s {
			out = append(out, d)
		}
	}
	return out
}

// Err returns nil when the set passed, otherwise a single error summarizing
// every error-severity diagnostic.
func (r *Result) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	lines := make([]string, len(errs))
	for i, d := range errs {
		lines[i] = d.String()
	}
	return fmt.Errorf("verify: %d error(s):\n  %s", len(errs), strings.Join(lines, "\n  "))
}

func (r *Result) add(d Diagnostic) { r.Diags = append(r.Diags, d) }

// count is a symbolic trip count: the simplified sum of loop-extent products
// over all sites, plus an exactness bit (false when any site sits under a
// branch, so the static count is an upper bound, not a guarantee).
type count struct {
	n     ir.Expr
	exact bool
}

// chanUse aggregates per-channel counts across a kernel set.
type chanUse struct {
	writes    map[*ir.Channel]count
	reads     map[*ir.Channel]count
	writersBy map[*ir.Channel][]string // kernel names, first-use order
	readersBy map[*ir.Channel][]string
	order     []*ir.Channel // deterministic reporting order
	seen      map[*ir.Channel]bool
}

func newChanUse() *chanUse {
	return &chanUse{
		writes:    map[*ir.Channel]count{},
		reads:     map[*ir.Channel]count{},
		writersBy: map[*ir.Channel][]string{},
		readersBy: map[*ir.Channel][]string{},
		seen:      map[*ir.Channel]bool{},
	}
}

func (u *chanUse) note(ch *ir.Channel) {
	if !u.seen[ch] {
		u.seen[ch] = true
		u.order = append(u.order, ch)
	}
}

func addCount(m map[*ir.Channel]count, ch *ir.Channel, mult ir.Expr, exact bool) {
	c, ok := m[ch]
	if !ok {
		m[ch] = count{n: mult, exact: exact}
		return
	}
	m[ch] = count{n: ir.AddE(c.n, mult), exact: c.exact && exact}
}

func appendName(m map[*ir.Channel][]string, ch *ir.Channel, name string) {
	for _, n := range m[ch] {
		if n == name {
			return
		}
	}
	m[ch] = append(m[ch], name)
}

// countKernel walks one kernel body accumulating channel trip counts.
// mult is the product of enclosing loop extents; exact turns false under
// IfThen and inside Select arms.
func (u *chanUse) countKernel(k *ir.Kernel) {
	var walkExpr func(e ir.Expr, mult ir.Expr, exact bool)
	walkExpr = func(e ir.Expr, mult ir.Expr, exact bool) {
		switch x := e.(type) {
		case nil:
		case *ir.ChannelRead:
			u.note(x.Ch)
			addCount(u.reads, x.Ch, mult, exact)
			appendName(u.readersBy, x.Ch, k.Name)
		case *ir.Binary:
			walkExpr(x.A, mult, exact)
			walkExpr(x.B, mult, exact)
		case *ir.Call:
			for _, a := range x.Args {
				walkExpr(a, mult, exact)
			}
		case *ir.Load:
			for _, i := range x.Index {
				walkExpr(i, mult, exact)
			}
		case *ir.Select:
			walkExpr(x.Cond, mult, exact)
			// Only one arm evaluates; a ChannelRead inside either is
			// data-dependent.
			walkExpr(x.A, mult, false)
			walkExpr(x.B, mult, false)
		}
	}
	var walkStmt func(s ir.Stmt, mult ir.Expr, exact bool)
	walkStmt = func(s ir.Stmt, mult ir.Expr, exact bool) {
		switch x := s.(type) {
		case nil:
		case *ir.Block:
			for _, c := range x.Stmts {
				walkStmt(c, mult, exact)
			}
		case *ir.Alloc:
		case *ir.For:
			walkExpr(x.Extent, mult, exact)
			walkStmt(x.Body, ir.MulE(mult, x.Extent), exact)
		case *ir.IfThen:
			walkExpr(x.Cond, mult, exact)
			walkStmt(x.Then, mult, false)
			walkStmt(x.Else, mult, false)
		case *ir.Store:
			for _, i := range x.Index {
				walkExpr(i, mult, exact)
			}
			walkExpr(x.Value, mult, exact)
		case *ir.ChannelWrite:
			u.note(x.Ch)
			addCount(u.writes, x.Ch, mult, exact)
			appendName(u.writersBy, x.Ch, k.Name)
			walkExpr(x.Value, mult, exact)
		}
	}
	walkStmt(k.Body, ir.CInt(1), true)
}

// sameCount reports whether two simplified symbolic counts are provably
// equal: numerically when both are constant, structurally otherwise.
func sameCount(a, b ir.Expr) bool {
	ca, aok := ir.IsConst(a)
	cb, bok := ir.IsConst(b)
	if aok && bok {
		return ca == cb
	}
	if aok != bok {
		return false
	}
	return a.String() == b.String()
}

// Kernels runs every check over the kernel set and returns all findings.
// It never panics on malformed input; structural problems surface as
// "structure" diagnostics.
func Kernels(ks []*ir.Kernel) *Result {
	res := &Result{}
	use := newChanUse()
	for _, k := range ks {
		if k == nil {
			res.add(Diagnostic{Check: "structure", Severity: Error, Msg: "nil kernel in set"})
			continue
		}
		if err := k.Validate(); err != nil {
			res.add(Diagnostic{Check: "structure", Severity: Error, Kernel: k.Name, Msg: err.Error()})
			continue
		}
		checkAutorun(k, res)
		use.countKernel(k)
	}
	checkChannels(use, res)
	checkCycles(ks, res)
	return res
}

// checkAutorun flags autorun kernels that take host-visible arguments.
// ir.Validate rejects global buffer args but permits scalar args, which the
// hardware equally cannot deliver to an autorun compute unit.
func checkAutorun(k *ir.Kernel, res *Result) {
	if !k.Autorun {
		return
	}
	if len(k.Args) > 0 {
		res.add(Diagnostic{Check: "autorun-args", Severity: Error, Kernel: k.Name,
			Msg: fmt.Sprintf("autorun kernel takes %d global buffer argument(s); autorun compute units start before any host enqueue and cannot receive them", len(k.Args))})
	}
	if len(k.ScalarArgs) > 0 {
		names := make([]string, len(k.ScalarArgs))
		for i, v := range k.ScalarArgs {
			names[i] = v.Name
		}
		res.add(Diagnostic{Check: "autorun-args", Severity: Error, Kernel: k.Name,
			Msg: fmt.Sprintf("autorun kernel takes scalar argument(s) %s; autorun compute units launch without a host clSetKernelArg", strings.Join(names, ", "))})
	}
}

func checkChannels(use *chanUse, res *Result) {
	for _, ch := range use.order {
		writers, readers := use.writersBy[ch], use.readersBy[ch]

		// Connectivity: data pushed with no consumer fills the FIFO and
		// stalls the producer forever; reads with no producer block forever.
		if len(writers) == 0 {
			res.add(Diagnostic{Check: "connectivity", Severity: Error, Channel: ch.Name,
				Msg: fmt.Sprintf("read by %s but never written; the reader blocks forever", strings.Join(readers, ", "))})
		}
		if len(readers) == 0 {
			res.add(Diagnostic{Check: "connectivity", Severity: Error, Channel: ch.Name,
				Msg: fmt.Sprintf("written by %s but never read; the FIFO fills and stalls the writer", strings.Join(writers, ", "))})
		}

		// Discipline: the Intel channel model requires exactly one static
		// writer kernel and one static reader kernel per channel.
		if len(writers) > 1 {
			res.add(Diagnostic{Check: "discipline", Severity: Error, Channel: ch.Name,
				Msg: fmt.Sprintf("written by multiple kernels (%s); channels permit a single static writer", strings.Join(writers, ", "))})
		}
		if len(readers) > 1 {
			res.add(Diagnostic{Check: "discipline", Severity: Error, Channel: ch.Name,
				Msg: fmt.Sprintf("read by multiple kernels (%s); channels permit a single static reader", strings.Join(readers, ", "))})
		}

		// Depth: an unbuffered channel rendezvous-couples producer and
		// consumer; any II mismatch serializes the pipeline.
		if ch.Depth == 0 {
			res.add(Diagnostic{Check: "depth", Severity: Warning, Channel: ch.Name,
				Msg: "depth 0 (unbuffered); producer and consumer fully rendezvous-couple, stalling on any II mismatch"})
		}

		// Trip counts: writes and reads must balance or one side deadlocks.
		w, hasW := use.writes[ch]
		r, hasR := use.reads[ch]
		if !hasW || !hasR {
			continue // connectivity error already reported
		}
		wn, rn := ir.Simplify(w.n), ir.Simplify(r.n)
		if sameCount(wn, rn) {
			continue
		}
		sev := Error
		detail := "guaranteed deadlock on hardware"
		if !w.exact || !r.exact {
			sev = Warning
			detail = "counts are data-dependent (branch-guarded channel ops); cannot prove balance"
		}
		res.add(Diagnostic{Check: "trip-count", Severity: sev, Channel: ch.Name,
			Msg: fmt.Sprintf("write trip count %s (by %s) != read trip count %s (by %s); %s",
				wn, strings.Join(use.writersBy[ch], ", "), rn, strings.Join(use.readersBy[ch], ", "), detail)})
	}
}

// checkCycles flags cyclic channel topologies. The clrt host model (and the
// per-kernel sim) executes kernels to completion in dependency order; a
// cycle has no valid order and on hardware deadlocks unless every kernel in
// the loop carefully interleaves — a pattern this codebase never generates.
func checkCycles(ks []*ir.Kernel, res *Result) {
	type edge struct{ to, via string }
	readersOf := map[*ir.Channel][]string{}
	adj := map[string][]edge{}
	var names []string
	for _, k := range ks {
		if k == nil {
			continue
		}
		names = append(names, k.Name)
		reads, _ := k.Channels()
		for _, ch := range reads {
			readersOf[ch] = append(readersOf[ch], k.Name)
		}
	}
	for _, k := range ks {
		if k == nil {
			continue
		}
		_, writes := k.Channels()
		for _, ch := range writes {
			for _, r := range readersOf[ch] {
				adj[k.Name] = append(adj[k.Name], edge{to: r, via: ch.Name})
			}
		}
	}
	sort.Strings(names)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var found bool
	var visit func(n string)
	visit = func(n string) {
		if found {
			return
		}
		color[n] = gray
		stack = append(stack, n)
		for _, e := range adj[n] {
			switch color[e.to] {
			case white:
				visit(e.to)
			case gray:
				// Found a back edge: report the cycle path.
				i := 0
				for j, s := range stack {
					if s == e.to {
						i = j
						break
					}
				}
				path := append(append([]string{}, stack[i:]...), e.to)
				res.add(Diagnostic{Check: "cycle", Severity: Error,
					Msg: fmt.Sprintf("cyclic channel topology: %s (closing via channel %s); no kernel execution order can drain it", strings.Join(path, " -> "), e.via)})
				found = true
			}
			if found {
				return
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range names {
		if color[n] == white {
			visit(n)
		}
	}
}
