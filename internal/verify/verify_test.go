package verify

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
)

func prodCons(writeN, readN int, depth int) []*ir.Kernel {
	c := &ir.Channel{Name: "c", Depth: depth}
	a := ir.NewBuffer("a", ir.Global, writeN)
	d := ir.NewBuffer("d", ir.Global, readN)
	i, j := ir.V("i"), ir.V("j")
	prod := &ir.Kernel{Name: "prod", Args: []*ir.Buffer{a},
		Body: ir.Loop(i, writeN, &ir.ChannelWrite{Ch: c, Value: &ir.Load{Buf: a, Index: []ir.Expr{i}}})}
	cons := &ir.Kernel{Name: "cons", Args: []*ir.Buffer{d},
		Body: ir.Loop(j, readN, &ir.Store{Buf: d, Index: []ir.Expr{j}, Value: &ir.ChannelRead{Ch: c}})}
	return []*ir.Kernel{prod, cons}
}

func diag(res *Result, check string) *Diagnostic {
	for i := range res.Diags {
		if res.Diags[i].Check == check {
			return &res.Diags[i]
		}
	}
	return nil
}

func TestBalancedPipelinePasses(t *testing.T) {
	res := Kernels(prodCons(64, 64, 16))
	if !res.OK() {
		t.Fatalf("balanced pipeline must verify clean, got: %v", res.Err())
	}
	if res.Err() != nil {
		t.Fatal("Err must be nil when OK")
	}
}

func TestTripCountMismatchRejected(t *testing.T) {
	// 64 writes vs 65 reads: the same set deadlocks the simulator, which
	// verify must predict statically.
	ks := prodCons(64, 65, 16)

	m := sim.NewMachine()
	m.Bind(ks[0].Args[0], make([]float32, 64))
	m.Bind(ks[1].Args[0], make([]float32, 65))
	if err := m.RunGraph(ks, nil); !errors.Is(err, sim.ErrChannelDeadlock) {
		t.Fatalf("expected the simulator to deadlock on this set, got %v", err)
	}

	res := Kernels(ks)
	d := diag(res, "trip-count")
	if d == nil || d.Severity != Error {
		t.Fatalf("want trip-count error, got %v", res.Diags)
	}
	if d.Channel != "c" || !strings.Contains(d.Msg, "64") || !strings.Contains(d.Msg, "65") {
		t.Fatalf("diagnostic should name channel and both counts: %s", d)
	}
	if res.Err() == nil {
		t.Fatal("Err must be non-nil on trip-count error")
	}
}

func TestSymbolicTripCountsCompare(t *testing.T) {
	// Producer writes n*m in a nested loop; consumer reads m*n in one flat
	// loop over a product extent. Simplification must prove them equal.
	n, m := ir.Param("n"), ir.Param("m")
	c := &ir.Channel{Name: "c", Depth: 8}
	i, j, l := ir.V("i"), ir.V("j"), ir.V("l")
	prod := &ir.Kernel{Name: "prod", ScalarArgs: []*ir.Var{n, m},
		Body: ir.LoopE(i, n, ir.LoopE(j, m, &ir.ChannelWrite{Ch: c, Value: ir.CFloat(1)}))}
	sink := ir.NewBufferE("s", ir.Global, ir.CInt(1))
	cons := &ir.Kernel{Name: "cons", Args: []*ir.Buffer{sink}, ScalarArgs: []*ir.Var{n, m},
		Body: ir.LoopE(l, ir.MulE(n, m), &ir.Store{Buf: sink, Index: []ir.Expr{ir.CInt(0)}, Value: &ir.ChannelRead{Ch: c}})}
	res := Kernels([]*ir.Kernel{prod, cons})
	if d := diag(res, "trip-count"); d != nil {
		t.Fatalf("symbolic n*m vs n*m must balance, got %s", d)
	}

	// Now break the reader: n*m vs n*(m+1) must be caught symbolically.
	cons2 := &ir.Kernel{Name: "cons", Args: []*ir.Buffer{sink}, ScalarArgs: []*ir.Var{n, m},
		Body: ir.LoopE(l, ir.MulE(n, ir.AddE(m, ir.CInt(1))), &ir.Store{Buf: sink, Index: []ir.Expr{ir.CInt(0)}, Value: &ir.ChannelRead{Ch: c}})}
	res = Kernels([]*ir.Kernel{prod, cons2})
	d := diag(res, "trip-count")
	if d == nil || d.Severity != Error {
		t.Fatalf("want symbolic trip-count error, got %v", res.Diags)
	}
}

func TestBranchGuardedCountsDemoteToWarning(t *testing.T) {
	// The writer pushes under a branch: the static count is an upper bound,
	// so a mismatch must warn, not reject.
	c := &ir.Channel{Name: "c", Depth: 8}
	a := ir.NewBuffer("a", ir.Global, 64)
	d := ir.NewBuffer("d", ir.Global, 64)
	i, j := ir.V("i"), ir.V("j")
	prod := &ir.Kernel{Name: "prod", Args: []*ir.Buffer{a},
		Body: ir.Loop(i, 64, &ir.IfThen{
			Cond: &ir.Binary{Op: ir.LT, A: i, B: ir.CInt(32)},
			Then: &ir.ChannelWrite{Ch: c, Value: &ir.Load{Buf: a, Index: []ir.Expr{i}}},
		})}
	cons := &ir.Kernel{Name: "cons", Args: []*ir.Buffer{d},
		Body: ir.Loop(j, 32, &ir.Store{Buf: d, Index: []ir.Expr{j}, Value: &ir.ChannelRead{Ch: c}})}
	res := Kernels([]*ir.Kernel{prod, cons})
	dg := diag(res, "trip-count")
	if dg == nil {
		t.Fatal("branch-guarded mismatch should still be reported")
	}
	if dg.Severity != Warning {
		t.Fatalf("branch-guarded mismatch must be a warning, got %s", dg)
	}
	if !res.OK() {
		t.Fatalf("warnings alone must not fail verification: %v", res.Err())
	}
}

func TestSingleWriterSingleReaderDiscipline(t *testing.T) {
	c := &ir.Channel{Name: "c", Depth: 8}
	d := ir.NewBuffer("d", ir.Global, 128)
	i, j, l := ir.V("i"), ir.V("j"), ir.V("l")
	w1 := &ir.Kernel{Name: "w1", Body: ir.Loop(i, 64, &ir.ChannelWrite{Ch: c, Value: ir.CFloat(1)})}
	w2 := &ir.Kernel{Name: "w2", Body: ir.Loop(j, 64, &ir.ChannelWrite{Ch: c, Value: ir.CFloat(2)})}
	r := &ir.Kernel{Name: "r", Args: []*ir.Buffer{d},
		Body: ir.Loop(l, 128, &ir.Store{Buf: d, Index: []ir.Expr{l}, Value: &ir.ChannelRead{Ch: c}})}
	res := Kernels([]*ir.Kernel{w1, w2, r})
	dg := diag(res, "discipline")
	if dg == nil || dg.Severity != Error {
		t.Fatalf("want discipline error for double writer, got %v", res.Diags)
	}
	if !strings.Contains(dg.Msg, "w1") || !strings.Contains(dg.Msg, "w2") {
		t.Fatalf("diagnostic should name both writers: %s", dg)
	}
}

func TestUnconnectedAndDepthZeroChannels(t *testing.T) {
	cw := &ir.Channel{Name: "orphan_w", Depth: 4}
	cr := &ir.Channel{Name: "orphan_r", Depth: 0}
	d := ir.NewBuffer("d", ir.Global, 8)
	i, j := ir.V("i"), ir.V("j")
	w := &ir.Kernel{Name: "w", Body: ir.Loop(i, 8, &ir.ChannelWrite{Ch: cw, Value: ir.CFloat(1)})}
	r := &ir.Kernel{Name: "r", Args: []*ir.Buffer{d},
		Body: ir.Loop(j, 8, &ir.Store{Buf: d, Index: []ir.Expr{j}, Value: &ir.ChannelRead{Ch: cr}})}
	res := Kernels([]*ir.Kernel{w, r})
	conns := 0
	for _, dg := range res.Errors() {
		if dg.Check == "connectivity" {
			conns++
		}
	}
	if conns != 2 {
		t.Fatalf("want 2 connectivity errors (write-only + read-only), got %v", res.Diags)
	}
	dz := diag(res, "depth")
	if dz == nil || dz.Severity != Warning || dz.Channel != "orphan_r" {
		t.Fatalf("want depth-0 warning on orphan_r, got %v", res.Diags)
	}
}

func TestCyclicTopologyRejected(t *testing.T) {
	// a -> b -> a through two channels: no execution order drains it.
	c1 := &ir.Channel{Name: "c1", Depth: 4}
	c2 := &ir.Channel{Name: "c2", Depth: 4}
	i, j := ir.V("i"), ir.V("j")
	ka := &ir.Kernel{Name: "ka",
		Body: ir.Loop(i, 8, &ir.ChannelWrite{Ch: c1, Value: ir.AddE(&ir.ChannelRead{Ch: c2}, ir.CFloat(1))})}
	kb := &ir.Kernel{Name: "kb",
		Body: ir.Loop(j, 8, &ir.ChannelWrite{Ch: c2, Value: ir.AddE(&ir.ChannelRead{Ch: c1}, ir.CFloat(1))})}
	res := Kernels([]*ir.Kernel{ka, kb})
	dg := diag(res, "cycle")
	if dg == nil || dg.Severity != Error {
		t.Fatalf("want cycle error, got %v", res.Diags)
	}
	if !strings.Contains(dg.Msg, "ka") || !strings.Contains(dg.Msg, "kb") {
		t.Fatalf("cycle diagnostic should show the path: %s", dg)
	}
}

func TestAutorunScalarArgsRejected(t *testing.T) {
	// ir.Validate only rejects buffer args on autorun kernels; the verifier
	// must also reject scalar args, which have no host delivery path either.
	n := ir.Param("n")
	c := &ir.Channel{Name: "c", Depth: 4}
	i := ir.V("i")
	k := &ir.Kernel{Name: "auto", Autorun: true, ScalarArgs: []*ir.Var{n},
		Body: ir.LoopE(i, n, &ir.ChannelWrite{Ch: c, Value: &ir.ChannelRead{Ch: c}})}
	if err := k.Validate(); err != nil {
		t.Fatalf("ir.Validate accepts this kernel today (%v); verifier test assumes that", err)
	}
	res := Kernels([]*ir.Kernel{k})
	dg := diag(res, "autorun-args")
	if dg == nil || dg.Severity != Error || dg.Kernel != "auto" {
		t.Fatalf("want autorun-args error, got %v", res.Diags)
	}
}

func TestStructurallyInvalidKernelIsDiagnosedNotPanicked(t *testing.T) {
	// Store to a buffer that is neither an argument nor allocated.
	ghost := ir.NewBuffer("ghost", ir.Global, 4)
	i := ir.V("i")
	k := &ir.Kernel{Name: "bad",
		Body: ir.Loop(i, 4, &ir.Store{Buf: ghost, Index: []ir.Expr{i}, Value: ir.CFloat(0)})}
	res := Kernels([]*ir.Kernel{k, nil})
	structs := 0
	for _, dg := range res.Errors() {
		if dg.Check == "structure" {
			structs++
		}
	}
	if structs != 2 {
		t.Fatalf("want 2 structure errors (invalid kernel + nil kernel), got %v", res.Diags)
	}
}
