package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroes(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 || x.Bytes() != 96 {
		t.Fatalf("unexpected metadata: len=%d rank=%d bytes=%d", x.Len(), x.Rank(), x.Bytes())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("new tensor not zeroed")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 5)
	x.Set(7.5, 1, 2, 4)
	if got := x.At(1, 2, 4); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Flat offset of the last element must be Len-1.
	if x.Data[x.Len()-1] != 7.5 {
		t.Fatalf("row-major offset wrong: last elem = %v", x.Data[x.Len()-1])
	}
}

func TestOffsetRowMajor(t *testing.T) {
	x := New(3, 4)
	x.Set(1, 1, 2)
	if x.Data[1*4+2] != 1 {
		t.Fatal("row-major layout violated")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on OOB index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive dim")
		}
	}()
	New(2, 0)
}

func TestFromDataLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched data length")
		}
	}()
	FromData(make([]float32, 5), 2, 3)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(9, 2, 3)
	if x.At(1, 5) != 9 {
		t.Fatal("reshape must alias data")
	}
}

func TestReshapeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad reshape")
		}
	}()
	New(2, 3).Reshape(7)
}

func TestCloneIndependent(t *testing.T) {
	x := New(4)
	x.Fill(2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 2 {
		t.Fatal("clone aliases source")
	}
}

func TestFillSeqDeterministicAndBounded(t *testing.T) {
	a, b := New(1000), New(1000)
	a.FillSeq(42)
	b.FillSeq(42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("FillSeq not deterministic")
		}
		if v := float64(a.Data[i]); v < -1.0001 || v > 1.0001 {
			t.Fatalf("FillSeq out of [-1,1]: %v", v)
		}
	}
	c := New(1000)
	c.FillSeq(43)
	same := 0
	for i := range a.Data {
		if a.Data[i] == c.Data[i] {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestMaxAbsDiffAndAllClose(t *testing.T) {
	a, b := New(3), New(3)
	a.Data[1] = 1.0
	b.Data[1] = 1.5
	if d := MaxAbsDiff(a, b); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("MaxAbsDiff = %v, want 0.5", d)
	}
	if AllClose(a, b, 1e-3) {
		t.Fatal("AllClose should fail at tol 1e-3")
	}
	if !AllClose(a, b, 0.5) {
		t.Fatal("AllClose should pass at tol 0.5")
	}
}

func TestAllCloseNaN(t *testing.T) {
	a, b := New(1), New(1)
	a.Data[0] = float32(math.NaN())
	b.Data[0] = float32(math.NaN())
	if AllClose(a, b, 1) {
		t.Fatal("NaN must never compare close")
	}
}

func TestArgMax(t *testing.T) {
	x := FromData([]float32{-1, 3, 2, 3}, 4)
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d, want first maximum (1)", x.ArgMax())
	}
}

func TestSum(t *testing.T) {
	x := FromData([]float32{1, 2, 3.5}, 3)
	if s := x.Sum(); math.Abs(s-6.5) > 1e-9 {
		t.Fatalf("Sum = %v", s)
	}
}

// Property: Clone is always equal to its source, and FillSeq output is
// shape-independent for the same element count.
func TestQuickCloneEqual(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		x := New(n)
		x.FillSeq(seed)
		y := x.Clone()
		return MaxAbsDiff(x, y) == 0 && AllClose(x, y, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: At(Set(v)) == v for arbitrary in-range coordinates.
func TestQuickAtSet(t *testing.T) {
	f := func(a, b uint8, v float32) bool {
		h, w := int(a%7)+1, int(b%9)+1
		x := New(h, w)
		i, j := int(a)%h, int(b)%w
		x.Set(v, i, j)
		return x.At(i, j) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
