// Package tensor provides dense float32 tensors in NCHW layout plus the small
// set of shape and comparison utilities the rest of the flow needs. Tensors in
// this project mirror the tensors TVM lowers: a flat float32 buffer with a
// row-major shape. Batch size is always 1 (the thesis extracts no batch
// parallelism), but the type itself is rank-generic.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 array with an explicit shape.
//
// Shape and index violations panic, mirroring Go's own slice semantics: every
// shape flowing in here comes from relay's shape inference or a literal in
// code, never from external input, so a violation is a bug in the caller —
// not a condition to handle.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps an existing buffer. The buffer length must match the shape.
func FromData(data []float32, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Len() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Bytes returns the size of the tensor payload in bytes (float32 elements).
func (t *Tensor) Bytes() int { return 4 * t.Len() }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// offset computes the flat index for the given coordinates.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the given coordinates.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx...)] }

// Set writes the element at the given coordinates.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx...)] = v }

// Reshape returns a view with a new shape of the same total size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Len() != t.Len() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return v
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// FillSeq fills with a deterministic, well-conditioned pseudo-pattern. Used to
// build reproducible synthetic inputs and weights: values stay in [-1, 1] and
// no two nearby elements are equal, which flushes out indexing bugs that a
// constant fill would hide.
func (t *Tensor) FillSeq(seed uint64) {
	s := seed*2862933555777941757 + 3037000493
	for i := range t.Data {
		s = s*2862933555777941757 + 3037000493
		// Map the top bits to [-1, 1).
		t.Data[i] = float32(int32(s>>32)) / float32(math.MaxInt32)
	}
}

// MaxAbsDiff returns the maximum absolute elementwise difference between two
// same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("tensor: size mismatch %v vs %v", a.Shape, b.Shape))
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether two tensors agree within tol in max-abs terms,
// scaled by the magnitude of the values (relative for large values, absolute
// for small ones).
func AllClose(a, b *Tensor, tol float64) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Data {
		x, y := float64(a.Data[i]), float64(b.Data[i])
		d := math.Abs(x - y)
		scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		if d > tol*scale || math.IsNaN(d) {
			return false
		}
	}
	return true
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Sum returns the float64 sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elems)", t.Shape, t.Len())
}
