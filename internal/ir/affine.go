package ir

// Affine access classification: decompose index expressions into base +
// stride·var form with respect to a loop nest. This is the analysis half of
// the simulator's vectorized execution tier (internal/sim/vector.go) and is
// deliberately kept here, next to Simplify, so the AOC memory model can
// reuse the same stride/base extraction when classifying global-memory
// accesses as coalesced/strided (§5.2: the thesis's coalescing argument is
// exactly "innermost stride == 1").

// LinearExpr is the affine decomposition of an integer expression with
// respect to an ordered list of loop variables:
//
//	e  =  Base + Σ Coeffs[i]·vars[i]
//
// Base and every coefficient are themselves expressions that do not
// reference any of the nest variables — they may reference enclosing loop
// variables or symbolic shape parameters (parameterized folded kernels), so
// a decomposition is evaluable once per nest entry. Constant coefficients
// fold to *IntImm via the package's standard constructors.
type LinearExpr struct {
	Coeffs []Expr
	Base   Expr
}

// ConstCoeffs returns the coefficient vector as int64s when every
// coefficient is a literal (the common case for non-parameterized kernels).
func (l LinearExpr) ConstCoeffs() ([]int64, bool) {
	out := make([]int64, len(l.Coeffs))
	for i, c := range l.Coeffs {
		v, ok := IsConst(c)
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// Invariant reports whether the decomposition has no dependence on any nest
// variable (all coefficients are the literal zero).
func (l LinearExpr) Invariant() bool {
	for _, c := range l.Coeffs {
		if v, ok := IsConst(c); !ok || v != 0 {
			return false
		}
	}
	return true
}

// UsesAnyVar reports whether e references any of vars.
func UsesAnyVar(e Expr, vars []*Var) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if v, ok := x.(*Var); ok {
			for _, nv := range vars {
				if v == nv {
					found = true
					return
				}
			}
		}
	})
	return found
}

// Linearize decomposes integer expression e as an affine function of vars.
// It returns ok=false when e is not affine in vars: a product of two
// var-dependent factors, or a Div/Mod/Max/Min/comparison/Select whose
// operands depend on a nest variable (those are affine only when they are
// nest-invariant, in which case they fold into Base). Float-typed nodes
// (FloatImm, Load, Call, ChannelRead) are never valid index expressions and
// always fail.
func Linearize(e Expr, vars []*Var) (LinearExpr, bool) {
	switch x := e.(type) {
	case *IntImm:
		return invariantLin(x, vars), true
	case *Var:
		for i, v := range vars {
			if v == x {
				l := invariantLin(CInt(0), vars)
				l.Coeffs[i] = CInt(1)
				return l, true
			}
		}
		return invariantLin(x, vars), true
	case *Binary:
		switch x.Op {
		case Add, Sub:
			a, ok := Linearize(x.A, vars)
			if !ok {
				return LinearExpr{}, false
			}
			b, ok := Linearize(x.B, vars)
			if !ok {
				return LinearExpr{}, false
			}
			out := LinearExpr{Coeffs: make([]Expr, len(vars))}
			for i := range vars {
				if x.Op == Add {
					out.Coeffs[i] = AddE(a.Coeffs[i], b.Coeffs[i])
				} else {
					out.Coeffs[i] = SubE(a.Coeffs[i], b.Coeffs[i])
				}
			}
			if x.Op == Add {
				out.Base = AddE(a.Base, b.Base)
			} else {
				out.Base = SubE(a.Base, b.Base)
			}
			return out, true
		case Mul:
			aUses := UsesAnyVar(x.A, vars)
			bUses := UsesAnyVar(x.B, vars)
			if aUses && bUses {
				return LinearExpr{}, false // quadratic in the nest
			}
			lin, k := x.A, Expr(nil)
			if aUses {
				k = x.B
			} else {
				k, lin = x.A, x.B
			}
			l, ok := Linearize(lin, vars)
			if !ok {
				return LinearExpr{}, false
			}
			out := LinearExpr{Coeffs: make([]Expr, len(vars)), Base: MulE(k, l.Base)}
			for i := range vars {
				out.Coeffs[i] = MulE(k, l.Coeffs[i])
			}
			return out, true
		}
		// Div/Mod/Max/Min and comparisons are non-affine over the nest;
		// nest-invariant instances fold into the base untouched.
		if UsesAnyVar(e, vars) {
			return LinearExpr{}, false
		}
		return invariantLin(e, vars), true
	case *Select:
		if UsesAnyVar(e, vars) {
			return LinearExpr{}, false
		}
		return invariantLin(e, vars), true
	}
	return LinearExpr{}, false
}

func invariantLin(base Expr, vars []*Var) LinearExpr {
	cs := make([]Expr, len(vars))
	for i := range cs {
		cs[i] = CInt(0)
	}
	return LinearExpr{Coeffs: cs, Base: base}
}

// AccessPattern is the affine decomposition of one multi-dimensional buffer
// access: Index[d] = Dims[d].Base + Σ Dims[d].Coeffs[i]·vars[i]. The sim's
// vector tier turns this into flat base/stride pairs after evaluating the
// (possibly symbolic) buffer shape at run time.
type AccessPattern struct {
	Buf  *Buffer
	Dims []LinearExpr
}

// LinearizeAccess decomposes every dimension of a buffer access.
func LinearizeAccess(buf *Buffer, index []Expr, vars []*Var) (AccessPattern, bool) {
	ap := AccessPattern{Buf: buf, Dims: make([]LinearExpr, len(index))}
	for d, ix := range index {
		l, ok := Linearize(ix, vars)
		if !ok {
			return AccessPattern{}, false
		}
		ap.Dims[d] = l
	}
	return ap, true
}
