package ir

// Affine access classification: decompose index expressions into base +
// stride·var form with respect to a loop nest. This is the analysis half of
// the simulator's vectorized execution tier (internal/sim/vector.go) and is
// deliberately kept here, next to Simplify, so the AOC memory model can
// reuse the same stride/base extraction when classifying global-memory
// accesses as coalesced/strided (§5.2: the thesis's coalescing argument is
// exactly "innermost stride == 1").

// LinearExpr is the affine decomposition of an integer expression with
// respect to an ordered list of loop variables:
//
//	e  =  Base + Σ Coeffs[i]·vars[i]
//
// Base and every coefficient are themselves expressions that do not
// reference any of the nest variables — they may reference enclosing loop
// variables or symbolic shape parameters (parameterized folded kernels), so
// a decomposition is evaluable once per nest entry. Constant coefficients
// fold to *IntImm via the package's standard constructors.
type LinearExpr struct {
	Coeffs []Expr
	Base   Expr
}

// ConstCoeffs returns the coefficient vector as int64s when every
// coefficient is a literal (the common case for non-parameterized kernels).
func (l LinearExpr) ConstCoeffs() ([]int64, bool) {
	out := make([]int64, len(l.Coeffs))
	for i, c := range l.Coeffs {
		v, ok := IsConst(c)
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// Invariant reports whether the decomposition has no dependence on any nest
// variable (all coefficients are the literal zero).
func (l LinearExpr) Invariant() bool {
	for _, c := range l.Coeffs {
		if v, ok := IsConst(c); !ok || v != 0 {
			return false
		}
	}
	return true
}

// UsesAnyVar reports whether e references any of vars.
func UsesAnyVar(e Expr, vars []*Var) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if v, ok := x.(*Var); ok {
			for _, nv := range vars {
				if v == nv {
					found = true
					return
				}
			}
		}
	})
	return found
}

// Linearize decomposes integer expression e as an affine function of vars.
// It returns ok=false when e is not affine in vars: a product of two
// var-dependent factors, or a Div/Mod/Max/Min/comparison/Select whose
// operands depend on a nest variable (those are affine only when they are
// nest-invariant, in which case they fold into Base). Float-typed nodes
// (FloatImm, Load, Call, ChannelRead) are never valid index expressions and
// always fail.
func Linearize(e Expr, vars []*Var) (LinearExpr, bool) {
	switch x := e.(type) {
	case *IntImm:
		return invariantLin(x, vars), true
	case *Var:
		for i, v := range vars {
			if v == x {
				l := invariantLin(CInt(0), vars)
				l.Coeffs[i] = CInt(1)
				return l, true
			}
		}
		return invariantLin(x, vars), true
	case *Binary:
		switch x.Op {
		case Add, Sub:
			a, ok := Linearize(x.A, vars)
			if !ok {
				return LinearExpr{}, false
			}
			b, ok := Linearize(x.B, vars)
			if !ok {
				return LinearExpr{}, false
			}
			out := LinearExpr{Coeffs: make([]Expr, len(vars))}
			for i := range vars {
				if x.Op == Add {
					out.Coeffs[i] = AddE(a.Coeffs[i], b.Coeffs[i])
				} else {
					out.Coeffs[i] = SubE(a.Coeffs[i], b.Coeffs[i])
				}
			}
			if x.Op == Add {
				out.Base = AddE(a.Base, b.Base)
			} else {
				out.Base = SubE(a.Base, b.Base)
			}
			return out, true
		case Mul:
			aUses := UsesAnyVar(x.A, vars)
			bUses := UsesAnyVar(x.B, vars)
			if aUses && bUses {
				return LinearExpr{}, false // quadratic in the nest
			}
			lin, k := x.A, Expr(nil)
			if aUses {
				k = x.B
			} else {
				k, lin = x.A, x.B
			}
			l, ok := Linearize(lin, vars)
			if !ok {
				return LinearExpr{}, false
			}
			out := LinearExpr{Coeffs: make([]Expr, len(vars)), Base: MulE(k, l.Base)}
			for i := range vars {
				out.Coeffs[i] = MulE(k, l.Coeffs[i])
			}
			return out, true
		}
		// Div/Mod/Max/Min and comparisons are non-affine over the nest;
		// nest-invariant instances fold into the base untouched.
		if UsesAnyVar(e, vars) {
			return LinearExpr{}, false
		}
		return invariantLin(e, vars), true
	case *Select:
		if UsesAnyVar(e, vars) {
			return LinearExpr{}, false
		}
		return invariantLin(e, vars), true
	}
	return LinearExpr{}, false
}

func invariantLin(base Expr, vars []*Var) LinearExpr {
	cs := make([]Expr, len(vars))
	for i := range cs {
		cs[i] = CInt(0)
	}
	return LinearExpr{Coeffs: cs, Base: base}
}

// AccessPattern is the affine decomposition of one multi-dimensional buffer
// access: Index[d] = Dims[d].Base + Σ Dims[d].Coeffs[i]·vars[i]. The sim's
// vector tier turns this into flat base/stride pairs after evaluating the
// (possibly symbolic) buffer shape at run time.
type AccessPattern struct {
	Buf  *Buffer
	Dims []LinearExpr
}

// LinearizeAccess decomposes every dimension of a buffer access.
func LinearizeAccess(buf *Buffer, index []Expr, vars []*Var) (AccessPattern, bool) {
	ap := AccessPattern{Buf: buf, Dims: make([]LinearExpr, len(index))}
	for d, ix := range index {
		l, ok := Linearize(ix, vars)
		if !ok {
			return AccessPattern{}, false
		}
		ap.Dims[d] = l
	}
	return ap, true
}

// ---------------------------------------------------------------------------
// Whole-nest GEMM recognition.
//
// The per-loop analysis above vectorizes one innermost loop at a time, which
// leaves the matmul structure of conv/dense reduction nests on the table: the
// folded pointwise layers are literally C[m,n] += A[m,k]·B[k,n] after im2col,
// and TVM's CPU schedules win exactly by lowering the recognized nest onto a
// tiled GEMM. MatchGemmNest recognizes the *shape* of such a nest — a perfect
// outer loop chain around an {init, reduce, write-back} triple over a private
// accumulator tile — purely structurally; the stride-level classification
// (which loop is m, which is k, whether the B operand is a zero-copy matrix
// or needs an im2col gather) happens in the sim at run time, where symbolic
// extents and buffer bindings are known (internal/sim/gemm.go).

// GemmAct identifies the elementwise epilogue fused into a recognized nest's
// write-back: the activation applied after the accumulator + post-adds.
type GemmAct int

const (
	GemmActNone  GemmAct = iota
	GemmActRelu          // max(x, 0)
	GemmActRelu6         // min(max(x, 0), 6)
)

// GemmPart is one phase of a recognized nest: a perfect loop chain (possibly
// empty, for dense write-backs) around exactly one Store.
type GemmPart struct {
	Vars    []*Var
	Extents []Expr
	Store   *Store
}

// GemmNest is a whole reduction nest recognized in GEMM form:
//
//	for outer...:                  # OuterVars (tile coordinates)
//	  init:  for iv...: T[e] = c          # c nest-invariant
//	  red:   for rv...: T[e] += A[·]·B[·]
//	  write: for wv...: D[·] = act(T[e] (+ chain...))
//
// with T's index identical (structurally, and over the same variables) in all
// three phases. LoadA/LoadB keep the scalar operand order of the product —
// the sim tries both (A,B) assignments, since which operand is the weight
// matrix and which the patch matrix is a stride property, not a syntactic
// one. Chain holds the write-back's post-accumulator adds (bias, residual
// skip) in scalar evaluation order.
type GemmNest struct {
	OuterVars    []*Var
	OuterExtents []Expr

	Init, Red, Write GemmPart

	T, D         *Buffer
	LoadA, LoadB *Load
	TLoad        *Load
	Chain        []*Load
	Act          GemmAct
}

// MatchGemmNest reports whether f is a whole GEMM-shaped reduction nest.
// Returns nil when the shape does not match; everything the sim still has to
// verify at run time (stride classification, extent values, aliasing, bounds)
// is deliberately NOT checked here.
func MatchGemmNest(f *For) *GemmNest {
	g := &GemmNest{}
	// Perfect outer chain down to the {init, red, write} triple.
	var s Stmt = f
	var blk *Block
outer:
	for {
		switch x := s.(type) {
		case *For:
			g.OuterVars = append(g.OuterVars, x.Var)
			g.OuterExtents = append(g.OuterExtents, x.Extent)
			s = x.Body
		case *Block:
			switch len(x.Stmts) {
			case 1:
				s = x.Stmts[0]
			case 3:
				blk = x
				break outer
			default:
				return nil
			}
		default:
			return nil
		}
	}
	if !collectGemmPart(blk.Stmts[0], &g.Init) ||
		!collectGemmPart(blk.Stmts[1], &g.Red) ||
		!collectGemmPart(blk.Stmts[2], &g.Write) {
		return nil
	}

	g.T = g.Red.Store.Buf
	g.D = g.Write.Store.Buf
	if g.T == g.D {
		return nil
	}

	// Reduction body: T[e] = T[e] + LoadA·LoadB, with the accumulator re-load
	// on the left (ascending-k order starts from the running value).
	add, ok := g.Red.Store.Value.(*Binary)
	if !ok || add.Op != Add {
		return nil
	}
	accLd, ok := add.A.(*Load)
	if !ok || accLd.Buf != g.T || !IndexEq(accLd.Index, g.Red.Store.Index) {
		return nil
	}
	mul, ok := add.B.(*Binary)
	if !ok || mul.Op != Mul {
		return nil
	}
	if g.LoadA, ok = mul.A.(*Load); !ok {
		return nil
	}
	if g.LoadB, ok = mul.B.(*Load); !ok {
		return nil
	}

	// Init: same tile slot walk, nest-invariant value.
	if g.Init.Store.Buf != g.T || !IndexEq(g.Init.Store.Index, g.Red.Store.Index) {
		return nil
	}

	// Write-back: D[·] = act(T[e] + chain loads), left-associated, with the
	// accumulator as the leftmost (first-evaluated) term.
	val, act := stripGemmAct(g.Write.Store.Value)
	g.Act = act
	for {
		a, ok := val.(*Binary)
		if !ok || a.Op != Add {
			break
		}
		ld, ok := a.B.(*Load)
		if !ok {
			return nil
		}
		g.Chain = append(g.Chain, ld)
		val = a.A
	}
	for i, j := 0, len(g.Chain)-1; i < j; i, j = i+1, j-1 {
		g.Chain[i], g.Chain[j] = g.Chain[j], g.Chain[i]
	}
	tl, ok := val.(*Load)
	if !ok || tl.Buf != g.T || !IndexEq(tl.Index, g.Red.Store.Index) {
		return nil
	}
	g.TLoad = tl

	if !gemmScopesOK(f, g) {
		return nil
	}
	return g
}

// collectGemmPart walks a perfect loop chain (single-statement bodies) down
// to one Store. Anything else — a multi-statement block, an If, an Alloc, a
// channel write — fails the match.
func collectGemmPart(s Stmt, p *GemmPart) bool {
	for {
		switch x := s.(type) {
		case *For:
			p.Vars = append(p.Vars, x.Var)
			p.Extents = append(p.Extents, x.Extent)
			s = x.Body
		case *Block:
			if len(x.Stmts) != 1 {
				return false
			}
			s = x.Stmts[0]
		case *Store:
			p.Store = x
			return true
		default:
			return false
		}
	}
}

// stripGemmAct peels a recognized activation wrapper off a write-back value.
// Both the Binary (MaxE/MinE) and Call ("max"/"min") spellings are accepted;
// the constant must be the literal the scalar engines would see.
func stripGemmAct(e Expr) (Expr, GemmAct) {
	if x, c, ok := gemmMinMax(e, MinOp, "min"); ok && c == 6 {
		if y, c2, ok := gemmMinMax(x, MaxOp, "max"); ok && c2 == 0 {
			return y, GemmActRelu6
		}
		return e, GemmActNone
	}
	if x, c, ok := gemmMinMax(e, MaxOp, "max"); ok && c == 0 {
		return x, GemmActRelu
	}
	return e, GemmActNone
}

// gemmMinMax matches op(x, const) in either Binary or Call spelling.
func gemmMinMax(e Expr, op BinOp, fn string) (Expr, float64, bool) {
	var a, b Expr
	switch x := e.(type) {
	case *Binary:
		if x.Op != op {
			return nil, 0, false
		}
		a, b = x.A, x.B
	case *Call:
		if x.Fn != fn || len(x.Args) != 2 {
			return nil, 0, false
		}
		a, b = x.Args[0], x.Args[1]
	default:
		return nil, 0, false
	}
	switch c := b.(type) {
	case *FloatImm:
		return a, c.Value, true
	case *IntImm:
		return a, float64(c.Value), true
	}
	return nil, 0, false
}

// gemmScopesOK enforces the variable-scope discipline that lets the sim
// evaluate each phase independently: extents are nest-invariant (boxes), no
// channel reads anywhere, every phase only references its own loop variables
// (plus the outer ones and anything bound outside the nest), the init value
// is invariant, and the init chain covers exactly the tile-index variables of
// the reduction scope.
func gemmScopesOK(f *For, g *GemmNest) bool {
	all := map[*Var]bool{}
	WalkStmt(f, func(s Stmt) {
		if l, ok := s.(*For); ok {
			all[l.Var] = true
		}
	})

	bad := false
	WalkExprs(f, func(x Expr) {
		if _, ok := x.(*ChannelRead); ok {
			bad = true
		}
	})
	WalkStmt(f, func(s Stmt) {
		if l, ok := s.(*For); ok && usesVarFromSet(l.Extent, all) {
			bad = true
		}
	})
	if bad {
		return false
	}

	if !gemmVarsDistinct(g.OuterVars, g.Init.Vars) ||
		!gemmVarsDistinct(g.OuterVars, g.Red.Vars) ||
		!gemmVarsDistinct(g.OuterVars, g.Write.Vars) {
		return false
	}

	scoped := func(p *GemmPart) bool {
		scope := gemmVarSet(g.OuterVars, p.Vars)
		ok := true
		check := func(e Expr) {
			WalkExpr(e, func(x Expr) {
				if v, isVar := x.(*Var); isVar && all[v] && !scope[v] {
					ok = false
				}
			})
		}
		for _, ix := range p.Store.Index {
			check(ix)
		}
		check(p.Store.Value)
		return ok
	}
	if !scoped(&g.Init) || !scoped(&g.Red) || !scoped(&g.Write) {
		return false
	}

	// Init value: no loads (the sim fills the tile with one float), no
	// dependence on any nest variable.
	inv := true
	WalkExpr(g.Init.Store.Value, func(x Expr) {
		switch v := x.(type) {
		case *Load:
			inv = false
		case *Var:
			if all[v] {
				inv = false
			}
		}
	})
	if !inv {
		return false
	}

	// The init loops must enumerate exactly the reduction-scope variables
	// that appear in the tile index — same slots touched, extent values
	// checked at run time.
	need := map[*Var]bool{}
	redVars := gemmVarSet(nil, g.Red.Vars)
	for _, ix := range g.Red.Store.Index {
		WalkExpr(ix, func(x Expr) {
			if v, ok := x.(*Var); ok && redVars[v] {
				need[v] = true
			}
		})
	}
	if len(need) != len(g.Init.Vars) {
		return false
	}
	for _, v := range g.Init.Vars {
		if !need[v] {
			return false
		}
	}
	return true
}

func usesVarFromSet(e Expr, set map[*Var]bool) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if v, ok := x.(*Var); ok && set[v] {
			found = true
		}
	})
	return found
}

func gemmVarSet(a, b []*Var) map[*Var]bool {
	m := make(map[*Var]bool, len(a)+len(b))
	for _, v := range a {
		m[v] = true
	}
	for _, v := range b {
		m[v] = true
	}
	return m
}

func gemmVarsDistinct(lists ...[]*Var) bool {
	seen := map[*Var]bool{}
	for _, l := range lists {
		for _, v := range l {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
	}
	return true
}

// ExprEq reports structural equality of two expressions, with pointer
// identity for variables, buffers and channels. Stricter than comparing
// String() forms: two distinct loop variables may share a name.
func ExprEq(a, b Expr) bool {
	switch x := a.(type) {
	case *IntImm:
		y, ok := b.(*IntImm)
		return ok && x.Value == y.Value
	case *FloatImm:
		y, ok := b.(*FloatImm)
		return ok && x.Value == y.Value
	case *Var:
		return a == b
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && ExprEq(x.A, y.A) && ExprEq(x.B, y.B)
	case *Load:
		y, ok := b.(*Load)
		return ok && x.Buf == y.Buf && IndexEq(x.Index, y.Index)
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Fn != y.Fn || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !ExprEq(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Select:
		y, ok := b.(*Select)
		return ok && ExprEq(x.Cond, y.Cond) && ExprEq(x.A, y.A) && ExprEq(x.B, y.B)
	case *ChannelRead:
		y, ok := b.(*ChannelRead)
		return ok && x.Ch == y.Ch
	}
	return false
}

// IndexEq is ExprEq over index vectors.
func IndexEq(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ExprEq(a[i], b[i]) {
			return false
		}
	}
	return true
}
