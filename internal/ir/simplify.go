package ir

// Simplify applies the safe algebraic rewrites TVM's Simplify pass performs
// on index expressions before code generation: reassociation of constant
// addends/factors, distribution of constant multiplication over constant
// addends, and idempotent min/max. Every rule is exact over int64 (no
// division rules — integer division does not distribute), and the property
// tests in simplify_test.go check random-evaluation equivalence.

// Simplify rewrites e bottom-up until a fixed point (bounded).
func Simplify(e Expr) Expr {
	for i := 0; i < 8; i++ {
		next := simplifyOnce(e)
		if next == e {
			return e
		}
		e = next
	}
	return e
}

func simplifyOnce(e Expr) Expr {
	switch x := e.(type) {
	case nil, *IntImm, *FloatImm, *Var, *ChannelRead:
		return e
	case *Load:
		idx := make([]Expr, len(x.Index))
		changed := false
		for i, a := range x.Index {
			idx[i] = simplifyOnce(a)
			changed = changed || idx[i] != a
		}
		if !changed {
			return x
		}
		return &Load{Buf: x.Buf, Index: idx}
	case *Call:
		args := make([]Expr, len(x.Args))
		changed := false
		for i, a := range x.Args {
			args[i] = simplifyOnce(a)
			changed = changed || args[i] != a
		}
		if !changed {
			return x
		}
		return &Call{Fn: x.Fn, Args: args}
	case *Select:
		c, a, b := simplifyOnce(x.Cond), simplifyOnce(x.A), simplifyOnce(x.B)
		if cv, ok := IsConst(c); ok {
			if cv != 0 {
				return a
			}
			return b
		}
		if c != x.Cond || a != x.A || b != x.B {
			return &Select{Cond: c, A: a, B: b}
		}
		return x
	case *Binary:
		a, b := simplifyOnce(x.A), simplifyOnce(x.B)
		// Rebuild through fold for constant folding and identities.
		switch x.Op {
		case Add, Sub, Mul, Div, Mod:
			r := fold(x.Op, a, b)
			if bin, ok := r.(*Binary); ok {
				if s := reassociate(bin); s != nil {
					return s
				}
			}
			return r
		case MaxOp, MinOp:
			if sameExpr(a, b) {
				return a
			}
			if ca, okA := IsConst(a); okA {
				if cb, okB := IsConst(b); okB {
					if x.Op == MaxOp {
						return CInt(maxI64(ca, cb))
					}
					return CInt(minI64(ca, cb))
				}
			}
		}
		if a != x.A || b != x.B {
			return &Binary{Op: x.Op, A: a, B: b}
		}
		return x
	}
	return e
}

// reassociate applies exact integer rewrites:
//
//	(x + c1) + c2  -> x + (c1+c2)
//	(x * c1) * c2  -> x * (c1*c2)
//	(x + c1) * c2  -> x*c2 + c1*c2
//	c + x          -> x + c  (canonical constant-on-the-right)
//
// Returns nil when no rule applies.
func reassociate(e *Binary) Expr {
	switch e.Op {
	case Add:
		if c, ok := IsConst(e.A); ok {
			// Canonicalize: constant on the right.
			if _, bConst := IsConst(e.B); !bConst {
				return fold(Add, e.B, CInt(c))
			}
		}
		if c2, ok := IsConst(e.B); ok {
			if inner, ok := e.A.(*Binary); ok && inner.Op == Add {
				if c1, ok := IsConst(inner.B); ok {
					return fold(Add, inner.A, CInt(c1+c2))
				}
			}
		}
	case Mul:
		if c, ok := IsConst(e.A); ok {
			if _, bConst := IsConst(e.B); !bConst {
				return fold(Mul, e.B, CInt(c))
			}
		}
		if c2, ok := IsConst(e.B); ok {
			if inner, ok := e.A.(*Binary); ok {
				switch inner.Op {
				case Mul:
					if c1, ok := IsConst(inner.B); ok {
						return fold(Mul, inner.A, CInt(c1*c2))
					}
				case Add:
					if c1, ok := IsConst(inner.B); ok {
						return fold(Add, fold(Mul, inner.A, CInt(c2)), CInt(c1*c2))
					}
				}
			}
		}
	}
	return nil
}

// sameExpr reports structural equality (conservative: identical pointers or
// equal literals/variables; deeper trees compare by rendered form).
func sameExpr(a, b Expr) bool {
	if a == b {
		return true
	}
	ca, okA := IsConst(a)
	cb, okB := IsConst(b)
	if okA && okB {
		return ca == cb
	}
	return a.String() == b.String()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SimplifyStmt applies Simplify to every expression in a statement tree,
// returning a rewritten copy (buffers and channels shared).
func SimplifyStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *Block:
		out := make([]Stmt, len(x.Stmts))
		for i, c := range x.Stmts {
			out[i] = SimplifyStmt(c)
		}
		return &Block{Stmts: out}
	case *Alloc:
		return x
	case *For:
		return &For{Var: x.Var, Extent: Simplify(x.Extent), Body: SimplifyStmt(x.Body), Unroll: x.Unroll}
	case *Store:
		idx := make([]Expr, len(x.Index))
		for i, e := range x.Index {
			idx[i] = Simplify(e)
		}
		return &Store{Buf: x.Buf, Index: idx, Value: Simplify(x.Value)}
	case *ChannelWrite:
		return &ChannelWrite{Ch: x.Ch, Value: Simplify(x.Value)}
	case *IfThen:
		return &IfThen{Cond: Simplify(x.Cond), Then: SimplifyStmt(x.Then), Else: SimplifyStmt(x.Else)}
	}
	return s
}
