package ir_test

// Differential fuzzing for the simplifier: a random affine-ish index
// expression is wrapped into a tiny kernel twice — once raw, once through
// SimplifyStmt — and both versions must store bit-identical results under
// the interpreter oracle AND both compiled tiers. This catches algebraic
// rewrites that hold over the integers but not over the IR's evaluation
// rules (division, modulo, bounds) as well as simplifications that change
// which element a store lands on.
//
// Runs as a seed-corpus test under plain `go test` and as a fuzz target
// under `go test -fuzz=FuzzSimplifyDifferential ./internal/ir/`.

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
)

// buildIndexExpr derives a deterministic expression over loop vars i, j and
// scalar param p from the fuzz bytes. The grammar includes non-affine
// operators (div/mod/min/max) on purpose: the simplifier must be sound on
// everything it might meet, not just on what the vectorizer accepts.
func buildIndexExpr(data []byte, i, j, p *ir.Var) ir.Expr {
	e := ir.Expr(i)
	for n, b := range data {
		if n >= 12 {
			break
		}
		c := ir.CInt(int64(b%7) - 3)
		switch b % 11 {
		case 0:
			e = ir.AddE(e, c)
		case 1:
			e = ir.SubE(e, c)
		case 2:
			e = ir.MulE(e, ir.CInt(int64(b%3)+1))
		case 3:
			e = ir.AddE(e, j)
		case 4:
			e = ir.SubE(e, ir.MulE(j, c))
		case 5:
			e = ir.AddE(e, p)
		case 6:
			e = ir.AddE(ir.CInt(0), e) // identity fodder for the folder
		case 7:
			e = ir.MulE(e, ir.CInt(1))
		case 8:
			e = ir.MaxE(e, ir.SubE(e, c))
		case 9:
			e = ir.MinE(e, ir.AddE(e, ir.CInt(int64(b%5))))
		case 10:
			e = ir.AddE(e, ir.ModE(ir.AddE(j, ir.CInt(16)), ir.CInt(5)))
		}
	}
	return e
}

// wrapIndex clamps an arbitrary integer expression into [0, n) without
// division on negatives: ((e mod n) + n) mod n.
func wrapIndex(e ir.Expr, n int64) ir.Expr {
	return ir.ModE(ir.AddE(ir.ModE(e, ir.CInt(n)), ir.CInt(n)), ir.CInt(n))
}

func runSimplifyCase(t *testing.T, data []byte) {
	t.Helper()
	const bufN = 32
	i, j := ir.V("i"), ir.V("j")
	p := ir.Param("p")
	raw := buildIndexExpr(data, i, j, p)
	loadIdx := wrapIndex(ir.AddE(raw, j), bufN)
	storeIdx := wrapIndex(raw, bufN)

	build := func(simplify bool) (*ir.Kernel, *ir.Buffer, *ir.Buffer) {
		src := ir.NewBuffer("src", ir.Global, bufN)
		dst := ir.NewBuffer("dst", ir.Global, bufN)
		body := ir.Stmt(ir.Loop(i, 6, ir.Loop(j, 5,
			&ir.Store{Buf: dst, Index: []ir.Expr{storeIdx},
				Value: ir.AddE(&ir.Load{Buf: dst, Index: []ir.Expr{storeIdx}},
					&ir.Load{Buf: src, Index: []ir.Expr{loadIdx}})})))
		if simplify {
			body = ir.SimplifyStmt(body)
		}
		return &ir.Kernel{Name: "fz", Args: []*ir.Buffer{src, dst}, ScalarArgs: []*ir.Var{p}, Body: body}, src, dst
	}

	var ref []float32
	for _, simplified := range []bool{false, true} {
		kern, src, dst := build(simplified)
		if err := kern.Validate(); err != nil {
			t.Fatalf("simplified=%v: %v", simplified, err)
		}
		for _, tier := range []sim.Tier{sim.TierInterp, sim.TierClosure, sim.TierVector} {
			m := sim.NewMachine()
			m.SetTier(tier)
			srcData := make([]float32, bufN)
			for x := range srcData {
				srcData[x] = float32(x)*0.75 + 1
			}
			out := make([]float32, bufN)
			m.Bind(src, srcData)
			m.Bind(dst, out)
			if err := m.Run(kern, map[*ir.Var]int64{p: 3}); err != nil {
				t.Fatalf("simplified=%v tier=%s: %v", simplified, tier, err)
			}
			if ref == nil {
				ref = out
				continue
			}
			for x := range ref {
				if out[x] != ref[x] {
					t.Fatalf("simplified=%v tier=%s: elem %d: %v != %v\nraw index: %s\nsimplified: %s",
						simplified, tier, x, out[x], ref[x], storeIdx, ir.Simplify(storeIdx))
				}
			}
		}
	}
}

func FuzzSimplifyDifferential(f *testing.F) {
	f.Add([]byte{0, 3, 2, 4})
	f.Add([]byte{6, 7, 6, 7, 6, 7})
	f.Add([]byte{8, 9, 10, 1, 5})
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2})
	f.Add([]byte{10, 10, 10, 3, 4, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		runSimplifyCase(t, data)
	})
}

// TestSimplifyDifferentialSweep gives deterministic coverage without the
// fuzz engine: every 4-byte opcode window over a small alphabet.
func TestSimplifyDifferentialSweep(t *testing.T) {
	for a := byte(0); a < 11; a++ {
		for b := byte(0); b < 11; b += 2 {
			runSimplifyCase(t, []byte{a, b, byte(a + b), 5, a ^ b})
		}
	}
}
