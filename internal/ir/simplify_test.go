package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// evalConst evaluates an expression with x bound to val (int semantics).
func evalConst(t *testing.T, e Expr, x *Var, val int64) int64 {
	t.Helper()
	var ev func(Expr) int64
	ev = func(e Expr) int64 {
		switch v := e.(type) {
		case *IntImm:
			return v.Value
		case *Var:
			if v != x {
				t.Fatalf("unexpected var %s", v.Name)
			}
			return val
		case *Binary:
			a, b := ev(v.A), ev(v.B)
			switch v.Op {
			case Add:
				return a + b
			case Sub:
				return a - b
			case Mul:
				return a * b
			case Div:
				return a / b
			case Mod:
				return a % b
			case MaxOp:
				return maxI64(a, b)
			case MinOp:
				return minI64(a, b)
			}
		case *Select:
			if ev(v.Cond) != 0 {
				return ev(v.A)
			}
			return ev(v.B)
		}
		t.Fatalf("cannot eval %T", e)
		return 0
	}
	return ev(e)
}

func TestSimplifyReassociatesAddChains(t *testing.T) {
	x := V("x")
	// ((x+2)+3)+4 -> x+9
	e := AddE(AddE(AddE(x, CInt(2)), CInt(3)), CInt(4))
	s := Simplify(e)
	if s.String() != "(x + 9)" {
		t.Fatalf("got %s", s)
	}
}

func TestSimplifyMulChainsAndDistribution(t *testing.T) {
	x := V("x")
	if s := Simplify(MulE(MulE(x, CInt(3)), CInt(4))); s.String() != "(x * 12)" {
		t.Fatalf("mul chain: %s", s)
	}
	// (x+2)*3 -> x*3 + 6
	if s := Simplify(MulE(AddE(x, CInt(2)), CInt(3))); s.String() != "((x * 3) + 6)" {
		t.Fatalf("distribute: %s", s)
	}
}

func TestSimplifyCanonicalizesConstLeft(t *testing.T) {
	x := V("x")
	if s := Simplify(AddE(CInt(5), x)); s.String() != "(x + 5)" {
		t.Fatalf("const-left add: %s", s)
	}
	if s := Simplify(MulE(CInt(5), x)); s.String() != "(x * 5)" {
		t.Fatalf("const-left mul: %s", s)
	}
}

func TestSimplifyMinMax(t *testing.T) {
	x := V("x")
	if s := Simplify(MaxE(x, x)); s != Expr(x) {
		t.Fatalf("max(x,x): %s", s)
	}
	if v, ok := IsConst(Simplify(MinE(CInt(3), CInt(7)))); !ok || v != 3 {
		t.Fatal("min of constants")
	}
}

func TestSimplifySelectConstCond(t *testing.T) {
	x := V("x")
	s := Simplify(&Select{Cond: CInt(1), A: x, B: CInt(9)})
	if s != Expr(x) {
		t.Fatalf("select true: %s", s)
	}
	s = Simplify(&Select{Cond: CInt(0), A: x, B: CInt(9)})
	if v, ok := IsConst(s); !ok || v != 9 {
		t.Fatalf("select false: %s", s)
	}
}

func TestSimplifyStmtRewritesIndices(t *testing.T) {
	b := NewBuffer("b", Global, 100)
	i := V("i")
	st := Loop(i, 10, &Store{Buf: b, Index: []Expr{AddE(AddE(MulE(i, CInt(2)), CInt(1)), CInt(2))}, Value: CFloat(0)})
	out := SimplifyStmt(st)
	if !strings.Contains(Dump(out), "((i * 2) + 3)") {
		t.Fatalf("stmt simplify failed:\n%s", Dump(out))
	}
}

// Property: Simplify preserves value for random affine-ish expressions over
// one variable.
func TestQuickSimplifyEquivalence(t *testing.T) {
	x := V("x")
	build := func(seed uint64) Expr {
		// Construct a random expression tree from a small grammar.
		e := Expr(x)
		s := seed
		for d := 0; d < 6; d++ {
			s = s*2862933555777941757 + 3037000493
			c := int64(s%13) - 6
			if c == 0 {
				c = 2
			}
			switch (s >> 8) % 5 {
			case 0:
				e = AddE(e, CInt(c))
			case 1:
				e = MulE(e, CInt(c))
			case 2:
				e = AddE(CInt(c), e)
			case 3:
				e = MaxE(e, CInt(c))
			case 4:
				e = SubE(e, CInt(c))
			}
		}
		return e
	}
	f := func(seed uint64, valRaw int16) bool {
		e := build(seed)
		s := Simplify(e)
		val := int64(valRaw)
		return evalConst(t, e, x, val) == evalConst(t, s, x, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Simplify is idempotent.
func TestQuickSimplifyIdempotent(t *testing.T) {
	x := V("x")
	f := func(a, b, c int8) bool {
		e := MulE(AddE(MulE(x, CInt(int64(a))), CInt(int64(b))), CInt(int64(c)))
		s1 := Simplify(e)
		s2 := Simplify(s1)
		return s1.String() == s2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
