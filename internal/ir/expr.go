// Package ir defines the loop-nest tensor IR that sits between the graph
// level (internal/relay) and OpenCL code generation (internal/codegen). It
// mirrors the slice of TVM's TIR that the thesis manipulates: perfectly typed
// float32 buffers, integer loop variables, symbolic (runtime-parameter)
// extents, scoped allocations (global / local / private / constant), and
// Intel-extension channel reads/writes.
//
// Kernels are built by internal/topi, transformed by internal/schedule,
// printed as OpenCL C by internal/codegen, statically analysed by
// internal/aoc, and functionally interpreted by internal/sim. All of those
// consumers share this one representation, so a schedule transformation that
// breaks semantics is caught by the interpreter-vs-reference tests.
package ir

import (
	"fmt"
	"strings"
)

// DType is an element type. The thesis deploys float32 networks end to end;
// integers appear only as loop indices and symbolic shape parameters.
type DType int

const (
	F32 DType = iota
	I32
)

func (d DType) String() string {
	if d == F32 {
		return "float"
	}
	return "int"
}

// Expr is an IR expression node.
type Expr interface {
	isExpr()
	String() string
}

// IntImm is an integer literal.
type IntImm struct{ Value int64 }

// FloatImm is a float32 literal.
type FloatImm struct{ Value float64 }

// Var is a named integer variable: either a loop iterator or a symbolic
// kernel parameter (symbolic shapes, §5.3). Identity is pointer identity.
type Var struct {
	Name string
	// Param marks symbolic shape parameters passed as kernel arguments.
	Param bool
}

// BinOp enumerates binary operators.
type BinOp int

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	MaxOp
	MinOp
	LT
	GE
	EQ
	And
)

func (op BinOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	case MaxOp:
		return "max"
	case MinOp:
		return "min"
	case LT:
		return "<"
	case GE:
		return ">="
	case EQ:
		return "=="
	case And:
		return "&&"
	}
	return "?"
}

// Binary applies op to A and B.
type Binary struct {
	Op   BinOp
	A, B Expr
}

// Call is an intrinsic call: "exp", "relu" (lowered to max), "sqrt", etc.
type Call struct {
	Fn   string
	Args []Expr
}

// Load reads Buf at a multi-dimensional index.
type Load struct {
	Buf   *Buffer
	Index []Expr
}

// ChannelRead pops one float from an Intel OpenCL channel
// (read_channel_intel). It is an expression so it can feed stores directly.
type ChannelRead struct{ Ch *Channel }

// Select is a ternary cond ? a : b, used by the padding kernels.
type Select struct {
	Cond Expr
	A, B Expr
}

func (*IntImm) isExpr()      {}
func (*FloatImm) isExpr()    {}
func (*Var) isExpr()         {}
func (*Binary) isExpr()      {}
func (*Call) isExpr()        {}
func (*Load) isExpr()        {}
func (*ChannelRead) isExpr() {}
func (*Select) isExpr()      {}

func (e *IntImm) String() string   { return fmt.Sprintf("%d", e.Value) }
func (e *FloatImm) String() string { return fmt.Sprintf("%gf", e.Value) }
func (e *Var) String() string      { return e.Name }

func (e *Binary) String() string {
	switch e.Op {
	case MaxOp, MinOp:
		return fmt.Sprintf("%s(%s, %s)", e.Op, e.A, e.B)
	default:
		return fmt.Sprintf("(%s %s %s)", e.A, e.Op, e.B)
	}
}

func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(args, ", "))
}

func (e *Load) String() string {
	return fmt.Sprintf("%s%s", e.Buf.Name, indexString(e.Index))
}

func (e *ChannelRead) String() string {
	return fmt.Sprintf("read_channel_intel(%s)", e.Ch.Name)
}

func (e *Select) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", e.Cond, e.A, e.B)
}

func indexString(idx []Expr) string {
	var b strings.Builder
	for _, e := range idx {
		fmt.Fprintf(&b, "[%s]", e)
	}
	return b.String()
}

// ---- constructors ----

// CInt builds an integer literal.
func CInt(v int64) *IntImm { return &IntImm{Value: v} }

// CFloat builds a float literal.
func CFloat(v float64) *FloatImm { return &FloatImm{Value: v} }

// V builds a loop variable.
func V(name string) *Var { return &Var{Name: name} }

// Param builds a symbolic shape parameter variable.
func Param(name string) *Var { return &Var{Name: name, Param: true} }

// AddE, SubE, MulE, DivE, ModE build arithmetic nodes with trivial constant
// folding so generated code and trip-count analysis stay readable.
func AddE(a, b Expr) Expr { return fold(Add, a, b) }
func SubE(a, b Expr) Expr { return fold(Sub, a, b) }
func MulE(a, b Expr) Expr { return fold(Mul, a, b) }
func DivE(a, b Expr) Expr { return fold(Div, a, b) }
func ModE(a, b Expr) Expr { return fold(Mod, a, b) }

// MaxE and MinE build max/min nodes.
func MaxE(a, b Expr) Expr { return &Binary{Op: MaxOp, A: a, B: b} }
func MinE(a, b Expr) Expr { return &Binary{Op: MinOp, A: a, B: b} }

func fold(op BinOp, a, b Expr) Expr {
	ia, aok := a.(*IntImm)
	ib, bok := b.(*IntImm)
	if aok && bok {
		switch op {
		case Add:
			return CInt(ia.Value + ib.Value)
		case Sub:
			return CInt(ia.Value - ib.Value)
		case Mul:
			return CInt(ia.Value * ib.Value)
		case Div:
			if ib.Value != 0 {
				return CInt(ia.Value / ib.Value)
			}
		case Mod:
			if ib.Value != 0 {
				return CInt(ia.Value % ib.Value)
			}
		}
	}
	// Identity folds keep schedules from emitting (x*1) and (x+0).
	if bok {
		switch {
		case op == Mul && ib.Value == 1, op == Add && ib.Value == 0,
			op == Sub && ib.Value == 0, op == Div && ib.Value == 1:
			return a
		case op == Mul && ib.Value == 0:
			return CInt(0)
		}
	}
	if aok {
		switch {
		case op == Mul && ia.Value == 1, op == Add && ia.Value == 0:
			return b
		case op == Mul && ia.Value == 0:
			return CInt(0)
		}
	}
	return &Binary{Op: op, A: a, B: b}
}

// IsConst reports whether e is an integer literal, returning its value.
func IsConst(e Expr) (int64, bool) {
	if i, ok := e.(*IntImm); ok {
		return i.Value, true
	}
	return 0, false
}

// UsesVar reports whether expression e references v anywhere.
func UsesVar(e Expr, v *Var) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if x == Expr(v) {
			found = true
		}
	})
	return found
}

// WalkExpr visits e and all sub-expressions depth-first.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		WalkExpr(x.A, fn)
		WalkExpr(x.B, fn)
	case *Call:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *Load:
		for _, a := range x.Index {
			WalkExpr(a, fn)
		}
	case *Select:
		WalkExpr(x.Cond, fn)
		WalkExpr(x.A, fn)
		WalkExpr(x.B, fn)
	}
}

// SubstVar returns a copy of e with every occurrence of v replaced by repl.
// Shared Buffer and Channel pointers are preserved.
func SubstVar(e Expr, v *Var, repl Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntImm, *FloatImm, *ChannelRead:
		return x
	case *Var:
		if x == v {
			return repl
		}
		return x
	case *Binary:
		return fold(x.Op, SubstVar(x.A, v, repl), SubstVar(x.B, v, repl))
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = SubstVar(a, v, repl)
		}
		return &Call{Fn: x.Fn, Args: args}
	case *Load:
		idx := make([]Expr, len(x.Index))
		for i, a := range x.Index {
			idx[i] = SubstVar(a, v, repl)
		}
		return &Load{Buf: x.Buf, Index: idx}
	case *Select:
		return &Select{Cond: SubstVar(x.Cond, v, repl), A: SubstVar(x.A, v, repl), B: SubstVar(x.B, v, repl)}
	}
	// Invariant: exhaustive over the package's own expression kinds.
	panic(fmt.Sprintf("ir: unknown expr %T", e))
}
