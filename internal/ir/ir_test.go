package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		got  Expr
		want int64
	}{
		{AddE(CInt(2), CInt(3)), 5},
		{SubE(CInt(2), CInt(3)), -1},
		{MulE(CInt(4), CInt(3)), 12},
		{DivE(CInt(7), CInt(2)), 3},
		{ModE(CInt(7), CInt(2)), 1},
	}
	for _, c := range cases {
		v, ok := IsConst(c.got)
		if !ok || v != c.want {
			t.Errorf("fold %s = %v,%v want %d", c.got, v, ok, c.want)
		}
	}
}

func TestIdentityFolds(t *testing.T) {
	x := V("x")
	if AddE(x, CInt(0)) != Expr(x) {
		t.Error("x+0 should fold to x")
	}
	if MulE(x, CInt(1)) != Expr(x) {
		t.Error("x*1 should fold to x")
	}
	if MulE(CInt(1), x) != Expr(x) {
		t.Error("1*x should fold to x")
	}
	if v, ok := IsConst(MulE(x, CInt(0))); !ok || v != 0 {
		t.Error("x*0 should fold to 0")
	}
	if SubE(x, CInt(0)) != Expr(x) {
		t.Error("x-0 should fold to x")
	}
	if DivE(x, CInt(1)) != Expr(x) {
		t.Error("x/1 should fold to x")
	}
}

func TestSubstVar(t *testing.T) {
	x, y := V("x"), V("y")
	buf := NewBuffer("b", Global, 10)
	e := AddE(&Load{Buf: buf, Index: []Expr{x}}, MulE(x, y))
	r := SubstVar(e, x, CInt(2))
	if UsesVar(r, x) {
		t.Fatalf("substitution left x in %s", r)
	}
	if !UsesVar(r, y) {
		t.Fatal("substitution clobbered y")
	}
	// Buffer identity preserved.
	var found *Buffer
	WalkExpr(r, func(e Expr) {
		if l, ok := e.(*Load); ok {
			found = l.Buf
		}
	})
	if found != buf {
		t.Fatal("substitution changed buffer identity")
	}
}

func TestSubstVarShadowing(t *testing.T) {
	i := V("i")
	b := NewBuffer("b", Global, 10)
	inner := Loop(i, 4, &Store{Buf: b, Index: []Expr{i}, Value: CFloat(1)})
	out := SubstStmt(inner, i, CInt(9))
	// The loop re-binds i, so the body index must still be the loop var.
	f := out.(*For)
	st := f.Body.(*Store)
	if st.Index[0] != Expr(i) {
		t.Fatalf("shadowed loop var was substituted: %s", st.Index[0])
	}
}

func TestKernelValidateOK(t *testing.T) {
	in := NewBuffer("in", Global, 8)
	out := NewBuffer("out", Global, 8)
	i := V("i")
	k := &Kernel{
		Name: "copy",
		Args: []*Buffer{in, out},
		Body: Loop(i, 8, &Store{Buf: out, Index: []Expr{i}, Value: &Load{Buf: in, Index: []Expr{i}}}),
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelValidateUnboundVar(t *testing.T) {
	out := NewBuffer("out", Global, 8)
	j := V("j")
	k := &Kernel{
		Name: "bad",
		Args: []*Buffer{out},
		Body: &Store{Buf: out, Index: []Expr{j}, Value: CFloat(0)},
	}
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("want unbound-variable error, got %v", err)
	}
}

func TestKernelValidateUnknownBuffer(t *testing.T) {
	out := NewBuffer("out", Global, 8)
	ghost := NewBuffer("ghost", Global, 8)
	i := V("i")
	k := &Kernel{
		Name: "bad",
		Args: []*Buffer{out},
		Body: Loop(i, 8, &Store{Buf: out, Index: []Expr{i}, Value: &Load{Buf: ghost, Index: []Expr{i}}}),
	}
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "unknown buffer") {
		t.Fatalf("want unknown-buffer error, got %v", err)
	}
}

func TestKernelValidateRankMismatch(t *testing.T) {
	out := NewBuffer("out", Global, 4, 4)
	i := V("i")
	k := &Kernel{
		Name: "bad",
		Args: []*Buffer{out},
		Body: Loop(i, 4, &Store{Buf: out, Index: []Expr{i}, Value: CFloat(0)}),
	}
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "rank") {
		t.Fatalf("want rank error, got %v", err)
	}
}

func TestKernelValidateAutorunNoArgs(t *testing.T) {
	b := NewBuffer("b", Global, 4)
	k := &Kernel{Name: "auto", Args: []*Buffer{b}, Autorun: true, Body: Seq()}
	if err := k.Validate(); err == nil {
		t.Fatal("autorun kernel with global args must be invalid")
	}
}

func TestKernelValidateScalarArgs(t *testing.T) {
	n := Param("n")
	out := NewBufferE("out", Global, n)
	i := V("i")
	k := &Kernel{
		Name:       "fill",
		Args:       []*Buffer{out},
		ScalarArgs: []*Var{n},
		Body:       LoopE(i, n, &Store{Buf: out, Index: []Expr{i}, Value: CFloat(1)}),
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelsDiscovery(t *testing.T) {
	c0 := &Channel{Name: "c0"}
	c1 := &Channel{Name: "c1", Depth: 8}
	i := V("i")
	k := &Kernel{
		Name: "mid",
		Body: Loop(i, 8, &ChannelWrite{Ch: c1, Value: MulE(&ChannelRead{Ch: c0}, CFloat(0.35))}),
	}
	r, w := k.Channels()
	if len(r) != 1 || r[0] != c0 || len(w) != 1 || w[0] != c1 {
		t.Fatalf("channels: reads=%v writes=%v", r, w)
	}
}

func TestSeqFlattens(t *testing.T) {
	a := &Store{Buf: NewBuffer("a", Local, 1), Index: []Expr{CInt(0)}, Value: CFloat(0)}
	s := Seq(Seq(a, a), a)
	b, ok := s.(*Block)
	if !ok || len(b.Stmts) != 3 {
		t.Fatalf("Seq did not flatten: %T", s)
	}
	if Seq(a) != Stmt(a) {
		t.Fatal("singleton Seq should return the statement itself")
	}
}

func TestBufferConstLen(t *testing.T) {
	b := NewBuffer("b", Global, 3, 4)
	if n, ok := b.ConstLen(); !ok || n != 12 {
		t.Fatalf("ConstLen = %d,%v", n, ok)
	}
	s := NewBufferE("s", Global, Param("n"), CInt(4))
	if _, ok := s.ConstLen(); ok || !s.Symbolic() {
		t.Fatal("symbolic buffer must not have const len")
	}
}

func TestDumpRendersLoops(t *testing.T) {
	i := V("i")
	b := NewBuffer("b", Global, 8)
	f := Loop(i, 8, &Store{Buf: b, Index: []Expr{i}, Value: CFloat(1)})
	f.Unroll = 4
	out := Dump(f)
	if !strings.Contains(out, "#unroll(4)") || !strings.Contains(out, "for i in [0,8)") {
		t.Fatalf("dump missing pieces:\n%s", out)
	}
}

// Property: constant folding of Add/Mul agrees with int64 arithmetic.
func TestQuickFoldMatchesArithmetic(t *testing.T) {
	f := func(a, b int32) bool {
		s, ok1 := IsConst(AddE(CInt(int64(a)), CInt(int64(b))))
		p, ok2 := IsConst(MulE(CInt(int64(a)), CInt(int64(b))))
		return ok1 && ok2 && s == int64(a)+int64(b) && p == int64(a)*int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SubstVar(e, x, x) is structurally identity w.r.t. variable usage.
func TestQuickSubstSelf(t *testing.T) {
	x, y := V("x"), V("y")
	e := AddE(MulE(x, y), SubE(x, CInt(3)))
	r := SubstVar(e, x, x)
	if !UsesVar(r, x) || !UsesVar(r, y) {
		t.Fatal("self-substitution changed variable usage")
	}
}
