package ir

import (
	"fmt"
	"strings"
)

// Scope is an OpenCL memory region (§2.3.3). The AOC model maps Global to
// external memory LSUs, Local to BRAM, Private to registers (or BRAM when too
// large), and Constant to on-chip ROM.
type Scope int

const (
	Global Scope = iota
	Local
	Private
	Constant
)

func (s Scope) String() string {
	switch s {
	case Global:
		return "global"
	case Local:
		return "local"
	case Private:
		return "private"
	case Constant:
		return "constant"
	}
	return "?"
}

// Buffer is a typed multi-dimensional array. Shape extents may be symbolic
// (Var with Param=true) for parameterized kernels (§4.9/§5.3). Identity is
// pointer identity.
type Buffer struct {
	Name  string
	Shape []Expr
	Scope Scope
	Elem  DType
	// ExplicitStrides marks buffers of symbolic-shape kernels whose array
	// subscripts go through TVM-generated stride variables (§5.3). AOC cannot
	// prove such accesses contiguous and refuses to coalesce them; the
	// thesis's workaround (Listing 5.11) fixes the innermost stride to the
	// constant 1, which corresponds to leaving this flag false.
	ExplicitStrides bool
}

// NewBuffer builds a buffer with constant extents.
func NewBuffer(name string, scope Scope, dims ...int) *Buffer {
	shape := make([]Expr, len(dims))
	for i, d := range dims {
		shape[i] = CInt(int64(d))
	}
	return &Buffer{Name: name, Shape: shape, Scope: scope, Elem: F32}
}

// NewBufferE builds a buffer with expression extents (symbolic shapes).
func NewBufferE(name string, scope Scope, dims ...Expr) *Buffer {
	return &Buffer{Name: name, Shape: dims, Scope: scope, Elem: F32}
}

// ConstLen returns the element count if all extents are constant.
func (b *Buffer) ConstLen() (int64, bool) {
	n := int64(1)
	for _, d := range b.Shape {
		c, ok := IsConst(d)
		if !ok {
			return 0, false
		}
		n *= c
	}
	return n, true
}

// Symbolic reports whether any extent is non-constant.
func (b *Buffer) Symbolic() bool {
	_, ok := b.ConstLen()
	return !ok
}

// Channel is an Intel OpenCL channel (§4.6): a register FIFO between kernels.
// Depth 0 means an unbuffered channel.
type Channel struct {
	Name  string
	Depth int
}

// Stmt is an IR statement node.
type Stmt interface {
	isStmt()
}

// Block is a statement sequence.
type Block struct{ Stmts []Stmt }

// For is a counted loop over [0, Extent). Unroll carries the pragma state:
// 0 = no pragma (compiler may still pipeline), -1 = #pragma unroll (full),
// n>1 = #pragma unroll n (partial).
type For struct {
	Var    *Var
	Extent Expr
	Body   Stmt
	Unroll int
}

// Store writes Value into Buf at Index.
type Store struct {
	Buf   *Buffer
	Index []Expr
	Value Expr
}

// ChannelWrite pushes Value into Ch (write_channel_intel).
type ChannelWrite struct {
	Ch    *Channel
	Value Expr
}

// IfThen executes Then when Cond != 0, else Else (may be nil).
type IfThen struct {
	Cond Expr
	Then Stmt
	Else Stmt
}

// Alloc introduces a non-argument buffer (local/private scratchpad) for the
// remainder of the enclosing block. Extent expressions must be constant or
// kernel parameters.
type Alloc struct{ Buf *Buffer }

func (*Block) isStmt()        {}
func (*For) isStmt()          {}
func (*Store) isStmt()        {}
func (*ChannelWrite) isStmt() {}
func (*IfThen) isStmt()       {}
func (*Alloc) isStmt()        {}

// Seq builds a Block, flattening nested blocks.
func Seq(stmts ...Stmt) Stmt {
	var out []Stmt
	for _, s := range stmts {
		if s == nil {
			continue
		}
		if b, ok := s.(*Block); ok {
			out = append(out, b.Stmts...)
			continue
		}
		out = append(out, s)
	}
	if len(out) == 1 {
		return out[0]
	}
	return &Block{Stmts: out}
}

// Loop builds a For with a constant extent.
func Loop(v *Var, extent int, body Stmt) *For {
	return &For{Var: v, Extent: CInt(int64(extent)), Body: body}
}

// LoopE builds a For with an expression extent.
func LoopE(v *Var, extent Expr, body Stmt) *For {
	return &For{Var: v, Extent: extent, Body: body}
}

// Kernel is one OpenCL kernel: the unit AOC compiles to a compute unit.
type Kernel struct {
	Name string
	// Args are the global-memory buffer arguments in declaration order.
	Args []*Buffer
	// ScalarArgs are symbolic shape parameters (int kernel arguments).
	ScalarArgs []*Var
	Body       Stmt
	// Autorun marks __attribute__((autorun)) kernels (§4.7). Autorun kernels
	// must have no global buffer arguments.
	Autorun bool
}

// Validate checks structural invariants: autorun kernels take no global
// buffers, every loaded/stored buffer is an argument or allocated, every
// loop variable is bound before use.
func (k *Kernel) Validate() error {
	if k.Autorun && len(k.Args) > 0 {
		return fmt.Errorf("kernel %s: autorun kernels cannot have global buffer arguments", k.Name)
	}
	known := map[*Buffer]bool{}
	for _, b := range k.Args {
		if b.Scope != Global && b.Scope != Constant {
			return fmt.Errorf("kernel %s: argument %s must be global or constant scope, got %s", k.Name, b.Name, b.Scope)
		}
		known[b] = true
	}
	bound := map[*Var]bool{}
	for _, v := range k.ScalarArgs {
		bound[v] = true
	}
	return checkStmt(k.Name, k.Body, known, bound)
}

func checkStmt(kn string, s Stmt, known map[*Buffer]bool, bound map[*Var]bool) error {
	switch x := s.(type) {
	case nil:
		return nil
	case *Block:
		for _, c := range x.Stmts {
			if err := checkStmt(kn, c, known, bound); err != nil {
				return err
			}
		}
		return nil
	case *Alloc:
		if x.Buf.Scope == Global {
			return fmt.Errorf("kernel %s: cannot Alloc global buffer %s", kn, x.Buf.Name)
		}
		known[x.Buf] = true
		return nil
	case *For:
		if err := checkExpr(kn, x.Extent, known, bound); err != nil {
			return err
		}
		bound[x.Var] = true
		err := checkStmt(kn, x.Body, known, bound)
		delete(bound, x.Var)
		return err
	case *Store:
		if !known[x.Buf] {
			return fmt.Errorf("kernel %s: store to unknown buffer %s", kn, x.Buf.Name)
		}
		if len(x.Index) != len(x.Buf.Shape) {
			return fmt.Errorf("kernel %s: store to %s with %d indices, buffer rank %d", kn, x.Buf.Name, len(x.Index), len(x.Buf.Shape))
		}
		for _, e := range x.Index {
			if err := checkExpr(kn, e, known, bound); err != nil {
				return err
			}
		}
		return checkExpr(kn, x.Value, known, bound)
	case *ChannelWrite:
		return checkExpr(kn, x.Value, known, bound)
	case *IfThen:
		if err := checkExpr(kn, x.Cond, known, bound); err != nil {
			return err
		}
		if err := checkStmt(kn, x.Then, known, bound); err != nil {
			return err
		}
		return checkStmt(kn, x.Else, known, bound)
	}
	return fmt.Errorf("kernel %s: unknown stmt %T", kn, s)
}

func checkExpr(kn string, e Expr, known map[*Buffer]bool, bound map[*Var]bool) error {
	var err error
	WalkExpr(e, func(x Expr) {
		if err != nil {
			return
		}
		switch n := x.(type) {
		case *Var:
			if !bound[n] {
				err = fmt.Errorf("kernel %s: unbound variable %s", kn, n.Name)
			}
		case *Load:
			if !known[n.Buf] {
				err = fmt.Errorf("kernel %s: load from unknown buffer %s", kn, n.Buf.Name)
			} else if len(n.Index) != len(n.Buf.Shape) {
				err = fmt.Errorf("kernel %s: load from %s with %d indices, buffer rank %d", kn, n.Buf.Name, len(n.Index), len(n.Buf.Shape))
			}
		}
	})
	return err
}

// WalkStmt visits s and all sub-statements depth-first, pre-order.
func WalkStmt(s Stmt, fn func(Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch x := s.(type) {
	case *Block:
		for _, c := range x.Stmts {
			WalkStmt(c, fn)
		}
	case *For:
		WalkStmt(x.Body, fn)
	case *IfThen:
		WalkStmt(x.Then, fn)
		WalkStmt(x.Else, fn)
	}
}

// WalkExprs visits every expression occurring in s (loop extents, indices,
// stored values, conditions), including sub-expressions.
func WalkExprs(s Stmt, fn func(Expr)) {
	WalkStmt(s, func(st Stmt) {
		switch x := st.(type) {
		case *For:
			WalkExpr(x.Extent, fn)
		case *Store:
			for _, e := range x.Index {
				WalkExpr(e, fn)
			}
			WalkExpr(x.Value, fn)
		case *ChannelWrite:
			WalkExpr(x.Value, fn)
		case *IfThen:
			WalkExpr(x.Cond, fn)
		}
	})
}

// SubstStmt returns a copy of s with v replaced by repl in all expressions.
// For bodies are rebuilt; Buffer/Channel identities are preserved.
func SubstStmt(s Stmt, v *Var, repl Expr) Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *Block:
		out := make([]Stmt, len(x.Stmts))
		for i, c := range x.Stmts {
			out[i] = SubstStmt(c, v, repl)
		}
		return &Block{Stmts: out}
	case *Alloc:
		return x
	case *For:
		if x.Var == v {
			// Shadowed: extent may still reference v.
			return &For{Var: x.Var, Extent: SubstVar(x.Extent, v, repl), Body: x.Body, Unroll: x.Unroll}
		}
		return &For{Var: x.Var, Extent: SubstVar(x.Extent, v, repl), Body: SubstStmt(x.Body, v, repl), Unroll: x.Unroll}
	case *Store:
		idx := make([]Expr, len(x.Index))
		for i, e := range x.Index {
			idx[i] = SubstVar(e, v, repl)
		}
		return &Store{Buf: x.Buf, Index: idx, Value: SubstVar(x.Value, v, repl)}
	case *ChannelWrite:
		return &ChannelWrite{Ch: x.Ch, Value: SubstVar(x.Value, v, repl)}
	case *IfThen:
		return &IfThen{Cond: SubstVar(x.Cond, v, repl), Then: SubstStmt(x.Then, v, repl), Else: SubstStmt(x.Else, v, repl)}
	}
	// Invariant: exhaustive over the package's own statement kinds.
	panic(fmt.Sprintf("ir: unknown stmt %T", s))
}

// Channels returns the distinct channels read or written by the kernel, in
// first-use order.
func (k *Kernel) Channels() (reads, writes []*Channel) {
	seenR, seenW := map[*Channel]bool{}, map[*Channel]bool{}
	WalkStmt(k.Body, func(s Stmt) {
		if w, ok := s.(*ChannelWrite); ok && !seenW[w.Ch] {
			seenW[w.Ch] = true
			writes = append(writes, w.Ch)
		}
	})
	WalkExprs(k.Body, func(e Expr) {
		if r, ok := e.(*ChannelRead); ok && !seenR[r.Ch] {
			seenR[r.Ch] = true
			reads = append(reads, r.Ch)
		}
	})
	return reads, writes
}

// Allocs returns all buffers allocated inside the kernel body.
func (k *Kernel) Allocs() []*Buffer {
	var out []*Buffer
	WalkStmt(k.Body, func(s Stmt) {
		if a, ok := s.(*Alloc); ok {
			out = append(out, a.Buf)
		}
	})
	return out
}

// Dump renders the statement tree for debugging and golden tests.
func Dump(s Stmt) string {
	var b strings.Builder
	dump(&b, s, 0)
	return b.String()
}

func dump(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch x := s.(type) {
	case nil:
	case *Block:
		for _, c := range x.Stmts {
			dump(b, c, depth)
		}
	case *Alloc:
		fmt.Fprintf(b, "%salloc %s %s%s\n", ind, x.Buf.Scope, x.Buf.Name, indexString(x.Buf.Shape))
	case *For:
		tag := ""
		switch {
		case x.Unroll == -1:
			tag = " #unroll"
		case x.Unroll > 1:
			tag = fmt.Sprintf(" #unroll(%d)", x.Unroll)
		}
		fmt.Fprintf(b, "%sfor %s in [0,%s)%s\n", ind, x.Var.Name, x.Extent, tag)
		dump(b, x.Body, depth+1)
	case *Store:
		fmt.Fprintf(b, "%s%s%s = %s\n", ind, x.Buf.Name, indexString(x.Index), x.Value)
	case *ChannelWrite:
		fmt.Fprintf(b, "%swrite_channel(%s, %s)\n", ind, x.Ch.Name, x.Value)
	case *IfThen:
		fmt.Fprintf(b, "%sif %s\n", ind, x.Cond)
		dump(b, x.Then, depth+1)
		if x.Else != nil {
			fmt.Fprintf(b, "%selse\n", ind)
			dump(b, x.Else, depth+1)
		}
	}
}
