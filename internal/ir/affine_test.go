package ir

import (
	"testing"
	"testing/quick"
)

// evalVars evaluates an integer expression with an arbitrary binding map.
func evalVars(t *testing.T, e Expr, binds map[*Var]int64) int64 {
	t.Helper()
	var ev func(Expr) int64
	ev = func(e Expr) int64 {
		switch v := e.(type) {
		case *IntImm:
			return v.Value
		case *Var:
			val, ok := binds[v]
			if !ok {
				t.Fatalf("unbound var %s", v.Name)
			}
			return val
		case *Binary:
			a, b := ev(v.A), ev(v.B)
			switch v.Op {
			case Add:
				return a + b
			case Sub:
				return a - b
			case Mul:
				return a * b
			case Div:
				return a / b
			case Mod:
				return a % b
			case MaxOp:
				return maxI64(a, b)
			case MinOp:
				return minI64(a, b)
			}
		case *Select:
			if ev(v.Cond) != 0 {
				return ev(v.A)
			}
			return ev(v.B)
		}
		t.Fatalf("cannot eval %T", e)
		return 0
	}
	return ev(e)
}

// checkLin asserts that the decomposition reproduces e at a few sample
// points: e(vals) == Base + Σ Coeffs[i]·vals[i].
func checkLin(t *testing.T, e Expr, vars []*Var, lin LinearExpr, outer map[*Var]int64) {
	t.Helper()
	samples := [][]int64{{0, 0, 0, 0}, {1, 0, 2, 1}, {3, 5, 1, 2}, {7, 2, 4, 3}}
	for _, vals := range samples {
		binds := map[*Var]int64{}
		for v, x := range outer {
			binds[v] = x
		}
		for i, v := range vars {
			binds[v] = vals[i]
		}
		want := evalVars(t, e, binds)
		got := evalVars(t, lin.Base, binds)
		for i := range vars {
			got += evalVars(t, lin.Coeffs[i], binds) * vals[i]
		}
		if got != want {
			t.Fatalf("decomposition of %s at %v: got %d want %d", e, vals, got, want)
		}
	}
}

func TestLinearizeConvIndex(t *testing.T) {
	// The optimized conv input column: ix = S*(xxo*W2vec + xxi) + rx with
	// nest vars {xxi, rx} and outer var xxo — the exact shape the vector
	// tier must crack to recognize the kvec inner product.
	xxo, xxi, rx := V("xxo"), V("xxi"), V("rx")
	ix := AddE(MulE(CInt(2), AddE(MulE(xxo, CInt(4)), xxi)), rx)
	vars := []*Var{xxi, rx}
	lin, ok := Linearize(ix, vars)
	if !ok {
		t.Fatalf("conv index not affine: %s", ix)
	}
	cs, ok := lin.ConstCoeffs()
	if !ok || cs[0] != 2 || cs[1] != 1 {
		t.Fatalf("coeffs = %v (const=%v), want [2 1]", lin.Coeffs, ok)
	}
	if UsesAnyVar(lin.Base, vars) {
		t.Fatalf("base %s references nest vars", lin.Base)
	}
	checkLin(t, ix, vars, lin, map[*Var]int64{xxo: 3})
}

func TestLinearizeSymbolicCoeffs(t *testing.T) {
	// Parameterized folded kernels index with symbolic strides: i*w + j
	// where w is a shape parameter. The coefficient of i must stay the
	// symbolic expression, evaluable once per nest entry.
	w := Param("w")
	i, j := V("i"), V("j")
	e := AddE(MulE(i, w), j)
	lin, ok := Linearize(e, []*Var{i, j})
	if !ok {
		t.Fatalf("symbolic stride not affine: %s", e)
	}
	if _, constOK := lin.ConstCoeffs(); constOK {
		t.Fatal("coefficient of i should be symbolic, not constant")
	}
	checkLin(t, e, []*Var{i, j}, lin, map[*Var]int64{w: 9})
}

func TestLinearizeInvariantFolding(t *testing.T) {
	i := V("i")
	k := V("k")
	// Div/Mod/Select of nest-invariant operands fold into the base.
	e := AddE(i, DivE(k, CInt(2)))
	lin, ok := Linearize(e, []*Var{i})
	if !ok {
		t.Fatalf("invariant div should linearize: %s", e)
	}
	checkLin(t, e, []*Var{i}, lin, map[*Var]int64{k: 7})
	if lin.Invariant() {
		t.Fatal("expression depends on i; must not report invariant")
	}
	inv, ok := Linearize(DivE(k, CInt(2)), []*Var{i})
	if !ok || !inv.Invariant() {
		t.Fatal("nest-invariant expression must report Invariant")
	}
}

func TestLinearizeRejectsNonAffine(t *testing.T) {
	i, j := V("i"), V("j")
	vars := []*Var{i, j}
	bad := []Expr{
		MulE(i, j),       // quadratic
		DivE(i, CInt(2)), // division by var position
		ModE(j, CInt(3)), // modulo of a nest var
		MaxE(i, CInt(4)), // max over a nest var
		&Select{Cond: &Binary{Op: LT, A: i, B: CInt(2)}, A: i, B: j}, // var-dependent select
	}
	for _, e := range bad {
		if _, ok := Linearize(e, vars); ok {
			t.Errorf("expected non-affine: %s", e)
		}
	}
}

func TestLinearizeAccess(t *testing.T) {
	b := NewBuffer("b", Global, 8, 16)
	i, j := V("i"), V("j")
	ap, ok := LinearizeAccess(b, []Expr{AddE(i, CInt(1)), MulE(j, CInt(2))}, []*Var{i, j})
	if !ok || ap.Buf != b || len(ap.Dims) != 2 {
		t.Fatalf("access decomposition failed")
	}
	cs0, _ := ap.Dims[0].ConstCoeffs()
	cs1, _ := ap.Dims[1].ConstCoeffs()
	if cs0[0] != 1 || cs0[1] != 0 || cs1[0] != 0 || cs1[1] != 2 {
		t.Fatalf("dims = %v %v", cs0, cs1)
	}
	if _, ok := LinearizeAccess(b, []Expr{i, MulE(i, j)}, []*Var{i, j}); ok {
		t.Fatal("quadratic access must fail")
	}
}

// Property: Linearize agrees with direct evaluation on random affine trees
// over two nest vars and one invariant var.
func TestQuickLinearizeEquivalence(t *testing.T) {
	i, j, k := V("i"), V("j"), V("k")
	vars := []*Var{i, j}
	build := func(seed uint64) Expr {
		e := Expr(i)
		s := seed
		for d := 0; d < 7; d++ {
			s = s*2862933555777941757 + 3037000493
			c := int64(s%9) - 4
			switch (s >> 8) % 6 {
			case 0:
				e = AddE(e, CInt(c))
			case 1:
				e = MulE(e, CInt(c))
			case 2:
				e = AddE(e, j)
			case 3:
				e = SubE(e, MulE(j, CInt(c)))
			case 4:
				e = AddE(e, k)
			case 5:
				e = AddE(e, MulE(k, CInt(c)))
			}
		}
		return e
	}
	f := func(seed uint64, iv, jv, kv int8) bool {
		e := build(seed)
		lin, ok := Linearize(e, vars)
		if !ok {
			return false // grammar only emits affine forms
		}
		binds := map[*Var]int64{i: int64(iv), j: int64(jv), k: int64(kv)}
		want := evalVars(t, e, binds)
		got := evalVars(t, lin.Base, binds)
		got += evalVars(t, lin.Coeffs[0], binds) * int64(iv)
		got += evalVars(t, lin.Coeffs[1], binds) * int64(jv)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
