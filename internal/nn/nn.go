// Package nn is the model zoo: the three networks the thesis deploys —
// LeNet-5 (Table 2.1), MobileNetV1 (Table 2.2) and ResNet-18/34 (Table 2.3)
// — built as relay graphs with deterministic synthetic weights, plus a
// procedural MNIST-style digit generator for the examples.
package nn

import (
	"fmt"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// LeNet5 builds the LeNet-5 graph of Table 2.1 (ReLU activations, softmax
// output, stride-2 2×2 pools producing the table's output sizes).
func LeNet5() *relay.Graph {
	g := relay.NewGraph()
	x := g.Input(1, 28, 28)
	x = g.ReLU(g.Conv(x, "conv1", 6, 3, 1, 0))  // 6x26x26
	x = g.MaxPool(x, 2, 2, 0)                   // 6x13x13
	x = g.ReLU(g.Conv(x, "conv2", 16, 3, 1, 0)) // 16x11x11
	x = g.MaxPool(x, 2, 2, 0)                   // 16x5x5
	x = g.Flatten(x)                            // 400
	x = g.ReLU(g.Dense(x, "dense1", 120))
	x = g.ReLU(g.Dense(x, "dense2", 84))
	x = g.Dense(x, "dense3", 10)
	x = g.Softmax(x)
	g.InitWeights(41)
	return g
}

// MobileNetV1 builds the graph of Table 2.2: a stride-2 3×3 stem, thirteen
// depthwise-separable blocks (each depthwise + pointwise, both followed by
// batch-norm and ReLU), global average pooling and a 1000-way classifier.
func MobileNetV1() *relay.Graph {
	g := relay.NewGraph()
	x := g.Input(3, 224, 224)
	x = g.ReLU6(g.BatchNorm(g.Conv(x, "conv_1", 32, 3, 2, 1), "conv_1_bn")) // 32x112x112
	blocks := []struct {
		c2, s int
	}{
		{64, 1},
		{128, 2}, {128, 1},
		{256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for i, b := range blocks {
		dw := fmt.Sprintf("conv_%d_dw", i+2)
		pw := fmt.Sprintf("conv_%d", i+2)
		x = g.ReLU6(g.BatchNorm(g.Depthwise(x, dw, 3, b.s, 1), dw+"_bn"))
		x = g.ReLU6(g.BatchNorm(g.Conv(x, pw, b.c2, 1, 1, 0), pw+"_bn"))
	}
	x = g.AvgPool(x, 7, 1) // 1024x1x1
	x = g.Flatten(x)
	x = g.Dense(x, "fc", 1000)
	x = g.Softmax(x)
	g.InitWeights(42)
	return g
}

// ResNet builds ResNet-18 or ResNet-34 (Table 2.3) from basic residual
// blocks with identity shortcuts and stride-2 1×1 projections at stage
// boundaries.
func ResNet(depth int) (*relay.Graph, error) {
	var blocks []int
	switch depth {
	case 18:
		blocks = []int{2, 2, 2, 2}
	case 34:
		blocks = []int{3, 4, 6, 3}
	default:
		return nil, fmt.Errorf("nn: ResNet depth must be 18 or 34, got %d", depth)
	}
	g := relay.NewGraph()
	x := g.Input(3, 224, 224)
	x = g.ReLU(g.BatchNorm(g.Conv(x, "conv1", 64, 7, 2, 3), "bn1")) // 64x112x112
	x = g.MaxPool(x, 3, 2, 1)                                       // 64x56x56
	channels := []int{64, 128, 256, 512}
	for stage, n := range blocks {
		c2 := channels[stage]
		for b := 0; b < n; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			name := fmt.Sprintf("conv%d_%d", stage+2, b+1)
			skip := x
			if stride != 1 || x.OutShape[0] != c2 {
				skip = g.BatchNorm(g.Conv(x, name+"_proj", c2, 1, stride, 0), name+"_proj_bn")
			}
			y := g.ReLU(g.BatchNorm(g.Conv(x, name+"a", c2, 3, stride, 1), name+"a_bn"))
			y = g.BatchNorm(g.Conv(y, name+"b", c2, 3, 1, 1), name+"b_bn")
			x = g.ReLU(g.Add(y, skip))
		}
	}
	x = g.AvgPool(x, 7, 1) // 512x1x1
	x = g.Flatten(x)
	x = g.Dense(x, "fc", 1000)
	x = g.Softmax(x)
	g.InitWeights(uint64(depth))
	return g, nil
}

// AlexNet builds the 2012 ImageNet winner (Krizhevsky et al.) — the network
// DNNWeaver reports its headline GFLOPS on. The thesis could only compare
// its MobileNet accelerator against DNNWeaver's AlexNet numbers (§6.6.2,
// fn. 4); having AlexNet in the zoo lets this reproduction make the direct
// comparison. LRN layers are omitted (standard in modern reimplementations).
func AlexNet() *relay.Graph {
	g := relay.NewGraph()
	x := g.Input(3, 227, 227)
	x = g.ReLU(g.Conv(x, "conv1", 96, 11, 4, 0)) // 96x55x55
	x = g.MaxPool(x, 3, 2, 0)                    // 96x27x27
	x = g.ReLU(g.Conv(x, "conv2", 256, 5, 1, 2)) // 256x27x27
	x = g.MaxPool(x, 3, 2, 0)                    // 256x13x13
	x = g.ReLU(g.Conv(x, "conv3", 384, 3, 1, 1)) // 384x13x13
	x = g.ReLU(g.Conv(x, "conv4", 384, 3, 1, 1)) // 384x13x13
	x = g.ReLU(g.Conv(x, "conv5", 256, 3, 1, 1)) // 256x13x13
	x = g.MaxPool(x, 3, 2, 0)                    // 256x6x6
	x = g.Flatten(x)                             // 9216
	x = g.ReLU(g.Dense(x, "fc6", 4096))
	x = g.ReLU(g.Dense(x, "fc7", 4096))
	x = g.Dense(x, "fc8", 1000)
	x = g.Softmax(x)
	g.InitWeights(12)
	return g
}

// GoogLeNet builds Inception-v1 (Szegedy et al. 2015) — the network Intel
// DLA showcases (§7) and a workout for the concat operator: nine inception
// modules, each concatenating four branches along the channel axis.
// Auxiliary classifiers and LRN are omitted (standard for inference).
func GoogLeNet() *relay.Graph {
	g := relay.NewGraph()
	x := g.Input(3, 224, 224)
	x = g.ReLU(g.Conv(x, "conv1", 64, 7, 2, 3)) // 64x112x112
	x = g.MaxPool(x, 3, 2, 1)                   // 64x56x56
	x = g.ReLU(g.Conv(x, "conv2r", 64, 1, 1, 0))
	x = g.ReLU(g.Conv(x, "conv2", 192, 3, 1, 1)) // 192x56x56
	x = g.MaxPool(x, 3, 2, 1)                    // 192x28x28

	incep := func(x *relay.Node, name string, c1, r3, c3, r5, c5, pp int) *relay.Node {
		b1 := g.ReLU(g.Conv(x, name+"_1x1", c1, 1, 1, 0))
		b2 := g.ReLU(g.Conv(x, name+"_3x3r", r3, 1, 1, 0))
		b2 = g.ReLU(g.Conv(b2, name+"_3x3", c3, 3, 1, 1))
		b3 := g.ReLU(g.Conv(x, name+"_5x5r", r5, 1, 1, 0))
		b3 = g.ReLU(g.Conv(b3, name+"_5x5", c5, 5, 1, 2))
		b4 := g.MaxPool(x, 3, 1, 1)
		b4 = g.ReLU(g.Conv(b4, name+"_pool", pp, 1, 1, 0))
		return g.Concat(b1, b2, b3, b4)
	}
	x = incep(x, "3a", 64, 96, 128, 16, 32, 32)     // 256x28x28
	x = incep(x, "3b", 128, 128, 192, 32, 96, 64)   // 480x28x28
	x = g.MaxPool(x, 3, 2, 1)                       // 480x14x14
	x = incep(x, "4a", 192, 96, 208, 16, 48, 64)    // 512x14x14
	x = incep(x, "4b", 160, 112, 224, 24, 64, 64)   // 512x14x14
	x = incep(x, "4c", 128, 128, 256, 24, 64, 64)   // 512x14x14
	x = incep(x, "4d", 112, 144, 288, 32, 64, 64)   // 528x14x14
	x = incep(x, "4e", 256, 160, 320, 32, 128, 128) // 832x14x14
	x = g.MaxPool(x, 3, 2, 1)                       // 832x7x7
	x = incep(x, "5a", 256, 160, 320, 32, 128, 128) // 832x7x7
	x = incep(x, "5b", 384, 192, 384, 48, 128, 128) // 1024x7x7
	x = g.AvgPool(x, 7, 1)                          // 1024
	x = g.Flatten(x)
	x = g.Dense(x, "fc", 1000)
	x = g.Softmax(x)
	g.InitWeights(2015)
	return g
}

// ByName returns a built network by its canonical name.
func ByName(name string) (*relay.Graph, error) {
	switch name {
	case "lenet5":
		return LeNet5(), nil
	case "mobilenetv1":
		return MobileNetV1(), nil
	case "resnet18":
		return ResNet(18)
	case "resnet34":
		return ResNet(34)
	case "alexnet":
		return AlexNet(), nil
	case "googlenet":
		return GoogLeNet(), nil
	}
	return nil, fmt.Errorf("nn: unknown network %q", name)
}

// NoisyDigit renders digit d with deterministic additive noise in [0,amp],
// for robustness checks of the deployed classifiers.
func NoisyDigit(d int, seed uint64, amp float32) *tensor.Tensor {
	img := Digit(d)
	noise := tensor.New(1, 28, 28)
	noise.FillSeq(seed)
	for i := range img.Data {
		n := (noise.Data[i] + 1) / 2 * amp
		v := img.Data[i] + n
		if v > 1 {
			v = 1
		}
		img.Data[i] = v
	}
	return img
}

// digitFont is a 5x7 bitmap font for 0-9, used by the synthetic MNIST-style
// input generator.
var digitFont = [10][7]uint8{
	{0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110}, // 0
	{0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110}, // 1
	{0b01110, 0b10001, 0b00001, 0b00110, 0b01000, 0b10000, 0b11111}, // 2
	{0b01110, 0b10001, 0b00001, 0b00110, 0b00001, 0b10001, 0b01110}, // 3
	{0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010}, // 4
	{0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110}, // 5
	{0b01110, 0b10000, 0b11110, 0b10001, 0b10001, 0b10001, 0b01110}, // 6
	{0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000}, // 7
	{0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110}, // 8
	{0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00001, 0b01110}, // 9
}

// Digit renders digit d (0-9) as a 1x28x28 MNIST-style image: the 5x7 glyph
// upscaled 3x and centered, values in [0,1].
func Digit(d int) *tensor.Tensor {
	// Invariant: callers pass literal digits (tests, benchmarks); no CLI path
	// feeds this from user input.
	if d < 0 || d > 9 {
		panic(fmt.Sprintf("nn: digit out of range: %d", d))
	}
	img := tensor.New(1, 28, 28)
	const scale = 3
	offY := (28 - 7*scale) / 2
	offX := (28 - 5*scale) / 2
	for row := 0; row < 7; row++ {
		bits := digitFont[d][row]
		for col := 0; col < 5; col++ {
			if bits&(1<<(4-col)) == 0 {
				continue
			}
			for dy := 0; dy < scale; dy++ {
				for dx := 0; dx < scale; dx++ {
					img.Set(1, 0, offY+row*scale+dy, offX+col*scale+dx)
				}
			}
		}
	}
	return img
}

// RandomImage builds a deterministic synthetic input of the given shape with
// values in [0,1] (the thesis uses random ImageNet-size inputs because
// values do not affect computation time, §6.1.1).
func RandomImage(seed uint64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillSeq(seed)
	for i, v := range t.Data {
		t.Data[i] = (v + 1) / 2
	}
	return t
}
