package nn

import (
	"math"
	"testing"

	"repro/internal/relay"
)

func TestLeNetShapesAndCounts(t *testing.T) {
	g := LeNet5()
	if got := g.Output.OutShape[0]; got != 10 {
		t.Fatalf("LeNet output = %v", g.Output.OutShape)
	}
	// Table 2.1 intermediate shapes.
	shapes := map[string][]int{}
	for _, n := range g.Nodes {
		shapes[n.Name] = n.OutShape
	}
	if s := shapes["conv1"]; s[0] != 6 || s[1] != 26 {
		t.Fatalf("conv1 shape = %v", s)
	}
	if s := shapes["conv2"]; s[0] != 16 || s[1] != 11 {
		t.Fatalf("conv2 shape = %v", s)
	}
	// ~60K parameters, ~389K FLOPs (§6.3.1); allow model-definition slack.
	if p := g.Params(); p < 55e3 || p > 70e3 {
		t.Fatalf("LeNet params = %d, thesis reports ~60K", p)
	}
	if f := g.FLOPs(); f < 350e3 || f > 450e3 {
		t.Fatalf("LeNet FLOPs = %d, thesis reports 389K", f)
	}
}

func TestMobileNetShapesAndCounts(t *testing.T) {
	g := MobileNetV1()
	if g.Output.OutShape[0] != 1000 {
		t.Fatalf("output = %v", g.Output.OutShape)
	}
	// Table 2.2: conv_1 -> 32x112x112; conv_7 -> 512x14x14.
	for _, n := range g.Nodes {
		switch n.Name {
		case "conv_1":
			if n.OutShape[0] != 32 || n.OutShape[1] != 112 {
				t.Fatalf("conv_1 = %v", n.OutShape)
			}
		case "conv_8":
			if n.OutShape[0] != 512 || n.OutShape[1] != 14 {
				t.Fatalf("conv_8 = %v", n.OutShape)
			}
		case "conv_14":
			if n.OutShape[0] != 1024 || n.OutShape[1] != 7 {
				t.Fatalf("conv_14 = %v", n.OutShape)
			}
		}
	}
	// 4.2M params, 1.11G FLOPs (Table 6.11), within 10%.
	if p := g.Params(); math.Abs(float64(p)-4.2e6) > 0.1*4.2e6 {
		t.Fatalf("MobileNet params = %d, thesis 4.2M", p)
	}
	if f := g.FLOPs(); math.Abs(float64(f)-1.11e9) > 0.1*1.11e9 {
		t.Fatalf("MobileNet FLOPs = %d, thesis 1.11G", f)
	}
	// 1x1 convolutions carry ~94.9% of multiply-adds (§3.1).
	var pw, total int64
	layers, err := relay.Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range layers {
		total += l.FLOPs()
		if l.Kind == relay.KConv && l.F == 1 {
			pw += l.FLOPs()
		}
	}
	if frac := float64(pw) / float64(total); frac < 0.92 || frac > 0.97 {
		t.Fatalf("1x1 conv share = %.3f, thesis 0.949", frac)
	}
}

func TestResNetCounts(t *testing.T) {
	for _, tc := range []struct {
		depth  int
		params float64
		flops  float64
	}{
		{18, 11.7e6, 3.66e9},
		{34, 21.8e6, 7.36e9},
	} {
		g, err := ResNet(tc.depth)
		if err != nil {
			t.Fatal(err)
		}
		if g.Output.OutShape[0] != 1000 {
			t.Fatalf("ResNet-%d output = %v", tc.depth, g.Output.OutShape)
		}
		if p := float64(g.Params()); math.Abs(p-tc.params) > 0.08*tc.params {
			t.Fatalf("ResNet-%d params = %.0f, thesis %.0f", tc.depth, p, tc.params)
		}
		if f := float64(g.FLOPs()); math.Abs(f-tc.flops) > 0.08*tc.flops {
			t.Fatalf("ResNet-%d FLOPs = %.0f, thesis %.0f", tc.depth, f, tc.flops)
		}
	}
	if _, err := ResNet(50); err == nil {
		t.Fatal("ResNet-50 is out of scope and must error")
	}
}

func TestResNetLowersWithResiduals(t *testing.T) {
	g, _ := ResNet(18)
	layers, err := relay.Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	residuals, projections := 0, 0
	for _, l := range layers {
		if l.Skip >= 0 {
			residuals++
		}
		if l.Kind == relay.KConv && l.F == 1 {
			projections++
		}
	}
	// 8 basic blocks -> 8 fused residual adds; 3 stage-boundary projections.
	if residuals != 8 {
		t.Fatalf("ResNet-18 residual fusions = %d, want 8", residuals)
	}
	if projections != 3 {
		t.Fatalf("ResNet-18 projections = %d, want 3", projections)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"lenet5", "mobilenetv1", "resnet18", "resnet34"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("vgg16"); err == nil {
		t.Fatal("unknown net must error")
	}
}

func TestDigitGenerator(t *testing.T) {
	seen := map[string]bool{}
	for d := 0; d <= 9; d++ {
		img := Digit(d)
		if img.Shape[1] != 28 || img.Shape[2] != 28 {
			t.Fatalf("digit shape = %v", img.Shape)
		}
		if img.Sum() == 0 {
			t.Fatalf("digit %d is blank", d)
		}
		key := ""
		for _, v := range img.Data {
			if v > 0 {
				key += "1"
			} else {
				key += "0"
			}
		}
		if seen[key] {
			t.Fatalf("digit %d renders identically to another digit", d)
		}
		seen[key] = true
	}
}

func TestDigitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Digit(10)
}

func TestRandomImageRange(t *testing.T) {
	img := RandomImage(3, 3, 8, 8)
	for _, v := range img.Data {
		if v < 0 || v > 1 {
			t.Fatalf("value out of [0,1]: %v", v)
		}
	}
	img2 := RandomImage(3, 3, 8, 8)
	for i := range img.Data {
		if img.Data[i] != img2.Data[i] {
			t.Fatal("RandomImage must be deterministic")
		}
	}
}

func TestGoogLeNetShapesAndCounts(t *testing.T) {
	g := GoogLeNet()
	if g.Output.OutShape[0] != 1000 {
		t.Fatalf("output = %v", g.Output.OutShape)
	}
	// ~7.0M params and ~3.0G FLOPs (2x 1.5 GMACs) for Inception v1.
	if p := float64(g.Params()); math.Abs(p-7.0e6) > 0.15*7.0e6 {
		t.Fatalf("GoogLeNet params = %.0f, want ~7.0M", p)
	}
	if f := float64(g.FLOPs()); math.Abs(f-3.0e9) > 0.15*3.0e9 {
		t.Fatalf("GoogLeNet FLOPs = %.0f, want ~3.0G", f)
	}
	// Shape checks at module boundaries.
	for _, n := range g.Nodes {
		switch n.Name {
		case "3a_1x1":
			if n.Inputs[0].OutShape[0] != 192 {
				t.Fatalf("3a input channels = %v", n.Inputs[0].OutShape)
			}
		case "5b_pool":
			if n.OutShape[0] != 128 || n.OutShape[1] != 7 {
				t.Fatalf("5b pool proj = %v", n.OutShape)
			}
		}
	}
	// Concat outputs: 3a -> 256 channels.
	for _, n := range g.Nodes {
		if n.Kind == relay.KConcat && n.OutShape[0] == 256 && n.OutShape[1] == 28 {
			return
		}
	}
	t.Fatal("3a concat (256x28x28) not found")
}
