package codegen

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// HostProgram generates the skeleton of the thesis's custom OpenCL C++ host
// program (§5.2) for a set of kernels: context/program setup, buffer
// creation, kernel and command-queue creation (one queue per kernel when
// concurrent execution is requested), argument binding and the per-image
// enqueue loop. Autorun kernels are — correctly — never launched.
//
// The output is an artifact for inspection and porting to real hardware; the
// simulation executes through internal/clrt instead.
func HostProgram(programName string, kernels []*ir.Kernel, concurrent bool) string {
	var b strings.Builder
	w := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }

	w("// Generated host program for %s. Mirrors the custom host runtime of §5.2:", programName)
	w("// parameter loading, per-kernel command queues (concurrent execution: %v),", concurrent)
	w("// asynchronous enqueueing and output readback.")
	w("#include <CL/cl.h>")
	w("#include <cstdio>")
	w("#include <cstdlib>")
	w("#include <vector>")
	w("")
	w("#define CHECK(err) do { if ((err) != CL_SUCCESS) { fprintf(stderr, \"CL error %%d at %%s:%%d\\n\", err, __FILE__, __LINE__); exit(1); } } while (0)")
	w("")
	w("int main() {")
	w("  cl_int err;")
	w("  cl_platform_id platform; CHECK(clGetPlatformIDs(1, &platform, nullptr));")
	w("  cl_device_id device; CHECK(clGetDeviceIDs(platform, CL_DEVICE_TYPE_ACCELERATOR, 1, &device, nullptr));")
	w("  cl_context ctx = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err); CHECK(err);")
	w("")
	w("  // Program the FPGA with the offline-compiled bitstream (%s.aocx).", programName)
	w("  std::vector<unsigned char> binary = load_file(\"%s.aocx\");", programName)
	w("  const unsigned char* binPtr = binary.data(); size_t binLen = binary.size();")
	w("  cl_program program = clCreateProgramWithBinary(ctx, 1, &device, &binLen, &binPtr, nullptr, &err); CHECK(err);")
	w("  CHECK(clBuildProgram(program, 1, &device, \"\", nullptr, nullptr));")
	w("")

	// Buffers: every distinct global argument across kernels.
	seen := map[*ir.Buffer]bool{}
	var bufs []*ir.Buffer
	for _, k := range kernels {
		for _, a := range k.Args {
			if !seen[a] {
				seen[a] = true
				bufs = append(bufs, a)
			}
		}
	}
	w("  // Device buffers (sizes in bytes; symbolic extents use worst-case bounds).")
	for _, buf := range bufs {
		if n, ok := buf.ConstLen(); ok {
			w("  cl_mem %s = clCreateBuffer(ctx, CL_MEM_READ_WRITE, %d, nullptr, &err); CHECK(err);", buf.Name, n*4)
		} else {
			w("  cl_mem %s = clCreateBuffer(ctx, CL_MEM_READ_WRITE, %s_MAX_BYTES, nullptr, &err); CHECK(err);", buf.Name, strings.ToUpper(buf.Name))
		}
	}
	w("")

	w("  // Kernels and command queues. Autorun kernels need neither.")
	for _, k := range kernels {
		if k.Autorun {
			w("  // %s: autorun — executes without host control (§4.7).", k.Name)
			continue
		}
		w("  cl_kernel k_%s = clCreateKernel(program, \"%s\", &err); CHECK(err);", k.Name, k.Name)
		if concurrent {
			w("  cl_command_queue q_%s = clCreateCommandQueue(ctx, device, 0, &err); CHECK(err);", k.Name)
		}
	}
	if !concurrent {
		w("  cl_command_queue q = clCreateCommandQueue(ctx, device, 0, &err); CHECK(err);")
	}
	w("")

	w("  // Argument binding.")
	for _, k := range kernels {
		if k.Autorun {
			continue
		}
		for i, a := range k.Args {
			w("  CHECK(clSetKernelArg(k_%s, %d, sizeof(cl_mem), &%s));", k.Name, i, a.Name)
		}
		for j, sv := range k.ScalarArgs {
			w("  CHECK(clSetKernelArg(k_%s, %d, sizeof(cl_int), &%s)); // runtime shape", k.Name, len(k.Args)+j, sv.Name)
		}
	}
	w("")

	w("  // Per-image loop: write inputs, launch every host-controlled kernel")
	w("  // asynchronously, read the result back.")
	w("  for (int img = 0; img < NUM_IMAGES; ++img) {")
	if len(bufs) > 0 {
		first := bufs[0]
		w("    CHECK(clEnqueueWriteBuffer(%s, %s, CL_FALSE, 0, INPUT_BYTES, input_host, 0, nullptr, nullptr));",
			queueName(kernels, concurrent), first.Name)
	}
	for _, k := range kernels {
		if k.Autorun {
			continue
		}
		q := "q"
		if concurrent {
			q = "q_" + k.Name
		}
		w("    CHECK(clEnqueueTask(%s, k_%s, 0, nullptr, nullptr));", q, k.Name)
	}
	if len(bufs) > 0 {
		last := bufs[len(bufs)-1]
		w("    CHECK(clEnqueueReadBuffer(%s, %s, CL_TRUE, 0, OUTPUT_BYTES, output_host, 0, nullptr, nullptr));",
			queueName(kernels, concurrent), last.Name)
	}
	w("  }")
	w("  return 0;")
	w("}")
	return b.String()
}

func queueName(kernels []*ir.Kernel, concurrent bool) string {
	if !concurrent {
		return "q"
	}
	for _, k := range kernels {
		if !k.Autorun {
			return "q_" + k.Name
		}
	}
	return "q"
}
