package codegen

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/topi"
)

func hostKernels(t *testing.T) []*ir.Kernel {
	t.Helper()
	ch := &ir.Channel{Name: "c0", Depth: 64}
	conv, err := topi.Conv2D(
		topi.ConvSpec{Name: "conv1", C1: 1, H: 10, W: 10, C2: 2, F: 3, S: 1, Relu: true, Bias: true},
		topi.OptSched(1, 1, 1), topi.ConvIO{OutCh: ch})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := topi.Pool2D(topi.PoolSpec{Name: "pool1", C: 2, H: 8, W: 8, F: 2, S: 2},
		false, topi.ConvIO{InCh: ch, OutCh: &ir.Channel{Name: "c1"}}, true)
	if err != nil {
		t.Fatal(err)
	}
	return []*ir.Kernel{conv.Kernel, pool.Kernel}
}

func TestHostProgramConcurrent(t *testing.T) {
	src := HostProgram("lenet", hostKernels(t), true)
	for _, want := range []string{
		`clCreateProgramWithBinary`,
		`load_file("lenet.aocx")`,
		"cl_kernel k_conv1",
		"cl_command_queue q_conv1",
		"clSetKernelArg(k_conv1, 0, sizeof(cl_mem), &conv1_in)",
		"clEnqueueTask(q_conv1, k_conv1",
		"autorun — executes without host control",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("host program missing %q:\n%s", want, src)
		}
	}
	// The autorun pool must never be launched or given a queue.
	if strings.Contains(src, "k_pool1") || strings.Contains(src, "q_pool1") {
		t.Fatalf("autorun kernel must not be created/launched:\n%s", src)
	}
}

func TestHostProgramSerialQueue(t *testing.T) {
	src := HostProgram("lenet", hostKernels(t), false)
	if !strings.Contains(src, "cl_command_queue q =") {
		t.Fatal("serial mode must create a single queue")
	}
	if strings.Contains(src, "q_conv1") {
		t.Fatal("serial mode must not create per-kernel queues")
	}
}

func TestHostProgramSymbolicShapes(t *testing.T) {
	pc, err := topi.ConvParam("pconv", 3, 1, topi.OptSched(1, 1, 1), true, false, false, true)
	if err != nil {
		t.Fatal(err)
	}
	src := HostProgram("folded", []*ir.Kernel{pc.Op.Kernel}, false)
	if !strings.Contains(src, "PCONV_IN_MAX_BYTES") {
		t.Fatalf("symbolic buffers need worst-case sizing:\n%s", src)
	}
	if !strings.Contains(src, "sizeof(cl_int), &pconv_c1") {
		t.Fatalf("scalar shape arguments must be bound:\n%s", src)
	}
}
