package codegen

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/topi"
)

func TestKernelEmitsPragmasAndSignature(t *testing.T) {
	op, err := topi.Conv2D(
		topi.ConvSpec{Name: "conv2d_opt", C1: 8, H: 16, W: 16, C2: 8, F: 3, S: 1, Relu: true},
		topi.OptSched(7, 2, 4), topi.ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	src := Kernel(op.Kernel)
	for _, want := range []string{
		"kernel void conv2d_opt(",
		"global float* restrict conv2d_opt_in",
		"#pragma unroll",
		"float conv2d_opt_tmp[14];", // private write cache C2vec*W2vec
		"max(",                      // fused ReLU
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("generated source missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "read_channel_intel") {
		t.Fatal("buffered conv must not use channels")
	}
}

func TestProgramEmitsChannelsAndAutorun(t *testing.T) {
	ch1 := &ir.Channel{Name: "c0", Depth: 512}
	ch2 := &ir.Channel{Name: "c1"}
	conv, err := topi.Conv2D(
		topi.ConvSpec{Name: "conv1", C1: 1, H: 12, W: 12, C2: 4, F: 3, S: 1, Relu: true},
		topi.OptSched(1, 1, 1), topi.ConvIO{OutCh: ch1})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := topi.Pool2D(topi.PoolSpec{Name: "pool1", C: 4, H: 10, W: 10, F: 2, S: 2},
		false, topi.ConvIO{InCh: ch1, OutCh: ch2}, true)
	if err != nil {
		t.Fatal(err)
	}
	src := Program([]*ir.Kernel{conv.Kernel, pool.Kernel})
	for _, want := range []string{
		"#pragma OPENCL EXTENSION cl_intel_channels : enable",
		"channel float c0 __attribute__((depth(512)));",
		"channel float c1;",
		"__attribute__((autorun))",
		"__attribute__((max_global_work_dim(0)))",
		"write_channel_intel(c0,",
		"read_channel_intel(c0)",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("program missing %q:\n%s", want, src)
		}
	}
	// Channel declared once even though used by two kernels.
	if strings.Count(src, "channel float c0") != 1 {
		t.Fatal("channel c0 declared more than once")
	}
}

func TestSymbolicKernelSignature(t *testing.T) {
	pc, err := topi.ConvParam("pconv", 3, 1, topi.OptSched(1, 1, 1), true, false, false, true)
	if err != nil {
		t.Fatal(err)
	}
	src := Kernel(pc.Op.Kernel)
	for _, want := range []string{"int pconv_c1", "int pconv_h", "int pconv_w", "int pconv_c2"} {
		if !strings.Contains(src, want) {
			t.Fatalf("symbolic kernel missing scalar arg %q:\n%s", want, src)
		}
	}
	// Loop bounds reference the symbolic parameters.
	if !strings.Contains(src, "pconv_c2") || !strings.Contains(src, "for (int") {
		t.Fatal("symbolic loop bounds missing")
	}
}

func TestNaiveDenseMatchesListing55Shape(t *testing.T) {
	op, err := topi.Dense(topi.DenseSpec{Name: "fc", N: 400, M: 120, Bias: true}, true, 1, topi.ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	src := Kernel(op.Kernel)
	// The naive dense keeps its dot scratchpad as a global argument
	// (Listing 5.5's dot[0]).
	if !strings.Contains(src, "global float* restrict fc_dot") {
		t.Fatalf("naive dense must keep global scratchpad:\n%s", src)
	}
}

func TestFlatIndexLinearization(t *testing.T) {
	b := ir.NewBuffer("b", ir.Global, 4, 5, 6)
	i, j, k := ir.V("i"), ir.V("j"), ir.V("k")
	kern := &ir.Kernel{Name: "t", Args: []*ir.Buffer{b},
		Body: ir.Loop(i, 4, ir.Loop(j, 5, ir.Loop(k, 6,
			&ir.Store{Buf: b, Index: []ir.Expr{i, j, k}, Value: ir.CFloat(0)})))}
	src := Kernel(kern)
	if !strings.Contains(src, "(((i * 5) + j) * 6) + k") {
		t.Fatalf("row-major linearization wrong:\n%s", src)
	}
}

func TestPadKernelSelect(t *testing.T) {
	op, err := topi.Pad2D(topi.PadSpec{Name: "pad", C: 2, H: 4, W: 4, P: 1}, topi.ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	src := Kernel(op.Kernel)
	if !strings.Contains(src, "?") || !strings.Contains(src, "%") {
		t.Fatalf("pad kernel must show select + modulo addressing:\n%s", src)
	}
}
