package topi

import (
	"fmt"

	"repro/internal/ir"
)

// DenseSpec describes a fully-connected layer: out[M] = W[M,N]·in[N] + bias.
type DenseSpec struct {
	Name  string
	N, M  int
	Relu  bool
	Relu6 bool
	Bias  bool
}

// FLOPCount returns multiply+add ops.
func (s DenseSpec) FLOPCount() int64 { return 2 * int64(s.M) * int64(s.N) }

// Dense generates a fully-connected kernel. naive follows Listing 5.5
// (global dot scratchpad, serial row loop); otherwise the Listing 5.6
// schedule applies: private accumulator, reduction strip-mined by kvec and
// unrolled.
func Dense(spec DenseSpec, naive bool, kvec int, io ConvIO) (*Op, error) {
	if kvec == 0 {
		kvec = 1
	}
	if !naive {
		if err := requireDiv(spec.Name+" N", spec.N, kvec); err != nil {
			return nil, err
		}
	}
	op := &Op{OutShape: []int{spec.M}, FLOPs: spec.FLOPCount(), InCh: io.InCh, OutCh: io.OutCh}
	wt := ir.NewBuffer(spec.Name+"_w", ir.Global, spec.M, spec.N)
	op.Weights = wt
	args := []*ir.Buffer{}

	var in *ir.Buffer
	var prologue ir.Stmt
	if io.InCh != nil {
		// The dense layer re-reads the whole input per output row; channel
		// input must be staged in local memory (§4.6).
		in = ir.NewBuffer(spec.Name+"_inl", ir.Local, spec.N)
		prologue = ir.Seq(&ir.Alloc{Buf: in}, chanReadInto(io.InCh, in, []int{spec.N}))
	} else {
		in = ir.NewBuffer(spec.Name+"_in", ir.Global, spec.N)
		op.In = in
		args = append(args, in)
	}
	args = append(args, wt)
	var bias *ir.Buffer
	if spec.Bias {
		bias = ir.NewBuffer(spec.Name+"_b", ir.Global, spec.M)
		op.Bias = bias
		args = append(args, bias)
	}
	var out *ir.Buffer
	if io.OutCh == nil {
		out = ir.NewBuffer(spec.Name+"_out", ir.Global, spec.M)
		op.Out = out
		args = append(args, out)
	}

	j := ir.V("j")
	z := []ir.Expr{ir.CInt(0)}
	if naive {
		if io.InCh != nil || io.OutCh != nil {
			return nil, fmt.Errorf("topi: naive dense cannot be channelized")
		}
		dot := ir.NewBuffer(spec.Name+"_dot", ir.Global, 1)
		op.Scratches = append(op.Scratches, dot)
		args = append([]*ir.Buffer{dot}, args...)
		k := ir.V("k")
		body := ir.Loop(j, spec.M, ir.Seq(
			&ir.Store{Buf: dot, Index: z, Value: ir.CFloat(0)},
			ir.Loop(k, spec.N, &ir.Store{Buf: dot, Index: z,
				Value: ir.AddE(&ir.Load{Buf: dot, Index: z},
					ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{k}}, &ir.Load{Buf: wt, Index: []ir.Expr{j, k}}))}),
			&ir.Store{Buf: out, Index: []ir.Expr{j}, Value: act(denseWB(dot, bias, j, z), spec.Relu, spec.Relu6)},
		))
		op.Kernel = &ir.Kernel{Name: spec.Name, Args: args, Body: body}
		return op, op.Kernel.Validate()
	}

	dot := ir.NewBuffer(spec.Name+"_dot", ir.Private, 1)
	ko, ki := ir.V("ko"), ir.V("ki")
	kidx := ir.AddE(ir.MulE(ko, ir.CInt(int64(kvec))), ki)
	inner := &ir.For{Var: ki, Extent: ir.CInt(int64(kvec)), Unroll: -1,
		Body: &ir.Store{Buf: dot, Index: z,
			Value: ir.AddE(&ir.Load{Buf: dot, Index: z},
				ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{kidx}}, &ir.Load{Buf: wt, Index: []ir.Expr{j, kidx}}))}}
	wv := act(denseWB(dot, bias, j, z), spec.Relu, spec.Relu6)
	var write ir.Stmt
	if io.OutCh != nil {
		write = &ir.ChannelWrite{Ch: io.OutCh, Value: wv}
	} else {
		write = &ir.Store{Buf: out, Index: []ir.Expr{j}, Value: wv}
	}
	body := ir.Loop(j, spec.M, ir.Seq(
		&ir.Store{Buf: dot, Index: z, Value: ir.CFloat(0)},
		ir.Loop(ko, spec.N/kvec, inner),
		write,
	))
	op.Kernel = &ir.Kernel{Name: spec.Name, Args: args,
		Body: ir.Seq(&ir.Alloc{Buf: dot}, prologue, body)}
	return op, op.Kernel.Validate()
}

func denseWB(dot, bias *ir.Buffer, j *ir.Var, z []ir.Expr) ir.Expr {
	v := ir.Expr(&ir.Load{Buf: dot, Index: z})
	if bias != nil {
		v = ir.AddE(v, &ir.Load{Buf: bias, Index: []ir.Expr{j}})
	}
	return v
}
