package topi

import (
	"testing"
	"testing/quick"

	"repro/internal/cpuref"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Randomized schedule-equivalence properties: for arbitrary (small) layer
// shapes and legal tiling factors, the optimized kernels must agree with the
// native references. These are the repository's broadest correctness net —
// any legality bug in a schedule transformation shows up here as a numeric
// divergence.

// pick returns values[x % len(values)].
func pick(x uint8, values []int) int { return values[int(x)%len(values)] }

func TestQuickConvOptimizedEquivalence(t *testing.T) {
	f := func(seed uint64, c1s, c2s, ws, fs, tw, tc2, tc1 uint8) bool {
		c1 := pick(c1s, []int{1, 2, 4, 8})
		c2 := pick(c2s, []int{1, 2, 4, 8})
		ff := pick(fs, []int{1, 3})
		w := pick(ws, []int{8, 12, 16}) + ff - 1 // output dims 8/12/16
		h := w
		h2 := h - ff + 1
		// Legal tiling factors: divisors of the relevant extents.
		w2vecs := []int{1, 2, 4}
		var w2v int
		for _, cand := range []int{pick(tw, w2vecs), 1} {
			if h2%cand == 0 {
				w2v = cand
				break
			}
		}
		c2v := 1
		if c2%pick(tc2, []int{1, 2}) == 0 {
			c2v = pick(tc2, []int{1, 2})
		}
		c1v := 1
		if c1%pick(tc1, []int{1, 2, 4}) == 0 {
			c1v = pick(tc1, []int{1, 2, 4})
		}

		spec := ConvSpec{Name: "q", C1: c1, H: h, W: w, C2: c2, F: ff, S: 1, Relu: seed%2 == 0, Bias: seed%3 == 0}
		op, err := Conv2D(spec, OptSched(w2v, c2v, c1v), ConvIO{})
		if err != nil {
			return false
		}
		in := tensor.New(c1, h, w)
		in.FillSeq(seed)
		wt := tensor.New(c2, c1, ff, ff)
		wt.FillSeq(seed + 1)
		var bias *tensor.Tensor
		if spec.Bias {
			bias = tensor.New(c2)
			bias.FillSeq(seed + 2)
		}
		m := sim.NewMachine()
		m.Bind(op.In, in.Data)
		m.Bind(op.Weights, wt.Data)
		if op.Bias != nil {
			m.Bind(op.Bias, bias.Data)
		}
		out := tensor.New(op.OutShape...)
		m.Bind(op.Out, out.Data)
		if err := m.Run(op.Kernel, nil); err != nil {
			return false
		}
		want := cpuref.Conv2D(in, wt, bias, 1, 0, spec.Relu)
		return tensor.AllClose(out, want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParamConvEquivalence(t *testing.T) {
	pc, err := ConvParam("q", 3, 1, OptSched(1, 1, 1), true, true, false, true)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, c1s, c2s, ws uint8) bool {
		c1 := pick(c1s, []int{1, 2, 3, 5})
		c2 := pick(c2s, []int{1, 2, 4})
		w := pick(ws, []int{6, 9, 12})
		bind, err := pc.Bind(c1, w, w, c2)
		if err != nil {
			return false
		}
		in := tensor.New(c1, w, w)
		in.FillSeq(seed)
		wt := tensor.New(c2, c1, 3, 3)
		wt.FillSeq(seed + 1)
		bias := tensor.New(c2)
		bias.FillSeq(seed + 2)
		m := sim.NewMachine()
		m.Bind(pc.Op.In, in.Data)
		m.Bind(pc.Op.Weights, wt.Data)
		m.Bind(pc.Op.Bias, bias.Data)
		out := tensor.New(c2, w-2, w-2)
		m.Bind(pc.Op.Out, out.Data)
		if err := m.Run(pc.Op.Kernel, bind); err != nil {
			return false
		}
		want := cpuref.Conv2D(in, wt, bias, 1, 0, true)
		return tensor.AllClose(out, want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDenseEquivalence(t *testing.T) {
	f := func(seed uint64, ns, ms, ks uint8) bool {
		n := pick(ns, []int{8, 16, 24, 40})
		mm := pick(ms, []int{1, 5, 10})
		kvec := pick(ks, []int{1, 2, 4, 8})
		if n%kvec != 0 {
			kvec = 1
		}
		op, err := Dense(DenseSpec{Name: "q", N: n, M: mm, Relu: seed%2 == 1, Bias: true}, false, kvec, ConvIO{})
		if err != nil {
			return false
		}
		in := tensor.New(n)
		in.FillSeq(seed)
		wt := tensor.New(mm, n)
		wt.FillSeq(seed + 1)
		bias := tensor.New(mm)
		bias.FillSeq(seed + 2)
		m := sim.NewMachine()
		m.Bind(op.In, in.Data)
		m.Bind(op.Weights, wt.Data)
		m.Bind(op.Bias, bias.Data)
		out := tensor.New(mm)
		m.Bind(op.Out, out.Data)
		if err := m.Run(op.Kernel, nil); err != nil {
			return false
		}
		want := cpuref.Dense(in, wt, bias, seed%2 == 1)
		return tensor.AllClose(out, want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPoolEquivalence(t *testing.T) {
	f := func(seed uint64, cs, hs, fs uint8, avg bool) bool {
		c := pick(cs, []int{1, 3, 5})
		ff := pick(fs, []int{2, 3})
		h := pick(hs, []int{6, 8, 9}) + ff
		op, err := Pool2D(PoolSpec{Name: "q", C: c, H: h, W: h, F: ff, S: ff, Avg: avg}, false, ConvIO{}, false)
		if err != nil {
			return false
		}
		in := tensor.New(c, h, h)
		in.FillSeq(seed)
		m := sim.NewMachine()
		m.Bind(op.In, in.Data)
		out := tensor.New(op.OutShape...)
		m.Bind(op.Out, out.Data)
		if err := m.Run(op.Kernel, nil); err != nil {
			return false
		}
		var want *tensor.Tensor
		if avg {
			want = cpuref.AvgPool2D(in, ff, ff)
		} else {
			want = cpuref.MaxPool2D(in, ff, ff)
		}
		return tensor.AllClose(out, want, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSoftmaxEquivalence(t *testing.T) {
	f := func(seed uint64, ns uint8) bool {
		n := pick(ns, []int{2, 10, 33, 100})
		op, err := Softmax("q", n, false, ConvIO{})
		if err != nil {
			return false
		}
		in := tensor.New(n)
		in.FillSeq(seed)
		m := sim.NewMachine()
		m.Bind(op.In, in.Data)
		out := tensor.New(n)
		m.Bind(op.Out, out.Data)
		if err := m.Run(op.Kernel, nil); err != nil {
			return false
		}
		return tensor.AllClose(out, cpuref.Softmax(in), 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
