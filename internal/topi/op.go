// Package topi is this flow's TVM Operator Inventory (§2.5.1): compute
// definitions and schedules for every CNN operator the thesis deploys —
// 2-D convolution (including the 1×1 special case), depthwise convolution,
// dense, max/average pooling, softmax, padding and flatten — each in the
// naive form TVM's default HLS schedule emits (the Chapter 5 "base"
// listings) and in the thesis's optimized form (fused activation, cached
// writes, tiling/unrolling, LICM), plus parameterized (symbolic-shape)
// variants for folded execution (§4.9/§5.3) and channelized variants for
// pipelined execution (§4.6/§4.7).
package topi

import (
	"fmt"

	"repro/internal/ir"
)

// Op bundles a generated kernel with its tensor interface.
type Op struct {
	Kernel *ir.Kernel
	// Global buffer interface (entries are nil when the corresponding side
	// is channelized or absent).
	In, Out, Weights, Bias, Skip *ir.Buffer
	// Scratches are global scratchpad arguments the naive TVM schedules
	// allocate (the host must bind zero-filled buffers for them).
	Scratches []*ir.Buffer
	// Channel interface for pipelined execution.
	InCh, OutCh *ir.Channel
	// OutShape is the constant output shape (nil for symbolic kernels).
	OutShape []int
	// FLOPs counts multiply+add floating operations for one invocation
	// (constant-shape kernels only; symbolic kernels report via FLOPsFor).
	FLOPs int64
}

// requireDiv enforces the thesis's factor-selection requirement 2 (§4.11):
// tiling factors must evenly divide their loop extents — no epilogues.
func requireDiv(what string, n, factor int) error {
	if factor <= 0 {
		return fmt.Errorf("topi: %s factor must be positive, got %d", what, factor)
	}
	if n%factor != 0 {
		return fmt.Errorf("topi: %s extent %d is not divisible by factor %d (the flow generates no epilogue loops)", what, n, factor)
	}
	return nil
}

// act applies the activation: ReLU6 (min(max(x,0),6) — the thesis's Eq. 2.3
// as MobileNetV1 actually defines it), ReLU (max(x,0)), or identity.
func act(x ir.Expr, relu, relu6 bool) ir.Expr {
	if relu6 {
		return ir.MinE(ir.MaxE(x, ir.CFloat(0)), ir.CFloat(6))
	}
	if relu {
		return ir.MaxE(x, ir.CFloat(0))
	}
	return x
}

// chanReadInto builds the local-buffering prologue a channelized consumer
// needs: data read from a channel is discarded once consumed, so kernels
// that re-use inputs must first land them in local memory (§4.6).
func chanReadInto(ch *ir.Channel, local *ir.Buffer, dims []int) ir.Stmt {
	vars := make([]*ir.Var, len(dims))
	idx := make([]ir.Expr, len(dims))
	for i := range dims {
		vars[i] = ir.V(fmt.Sprintf("ld%d", i))
		idx[i] = vars[i]
	}
	body := ir.Stmt(&ir.Store{Buf: local, Index: idx, Value: &ir.ChannelRead{Ch: ch}})
	for i := len(dims) - 1; i >= 0; i-- {
		body = ir.Loop(vars[i], dims[i], body)
	}
	return body
}
