package topi

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/schedule"
)

// Softmax generates the softmax layer over n classes. The naive form is
// Listing 5.7: the maximum and the exponential sum are recomputed inside the
// per-class loop despite being loop-invariant. The optimized form is derived
// from it by applying the loop-invariant code-motion primitive (§4.4,
// Listing 5.8) plus cached writes for the scratchpads.
func Softmax(name string, n int, naive bool, io ConvIO) (*Op, error) {
	op := &Op{OutShape: []int{n}, InCh: io.InCh, OutCh: io.OutCh}
	args := []*ir.Buffer{}
	var in *ir.Buffer
	var prologue ir.Stmt
	if io.InCh != nil {
		if naive {
			return nil, fmt.Errorf("topi: naive softmax cannot be channelized")
		}
		in = ir.NewBuffer(name+"_inl", ir.Local, n)
		prologue = ir.Seq(&ir.Alloc{Buf: in}, chanReadInto(io.InCh, in, []int{n}))
	} else {
		in = ir.NewBuffer(name+"_in", ir.Global, n)
		op.In = in
		args = append(args, in)
	}
	var out *ir.Buffer
	if io.OutCh == nil {
		out = ir.NewBuffer(name+"_out", ir.Global, n)
		op.Out = out
		args = append(args, out)
	}

	// Scratchpads: global in the naive schedule (TVM allocates them in the
	// outermost scope), private after cache-write in the optimized one.
	scope := ir.Private
	if naive {
		scope = ir.Global
	}
	maxelem := ir.NewBuffer(name+"_maxelem", scope, 1)
	expbuf := ir.NewBuffer(name+"_exp", scope, n)
	expsum := ir.NewBuffer(name+"_expsum", scope, 1)

	i1, k, i11, k1 := ir.V("i1"), ir.V("k"), ir.V("i11"), ir.V("k1")
	z := []ir.Expr{ir.CInt(0)}
	maxLoop := ir.Seq(
		&ir.Store{Buf: maxelem, Index: z, Value: ir.CFloat(-3.402823e38)},
		ir.Loop(k, n, &ir.Store{Buf: maxelem, Index: z,
			Value: ir.MaxE(&ir.Load{Buf: maxelem, Index: z}, &ir.Load{Buf: in, Index: []ir.Expr{k}})}),
	)
	expLoop := ir.Loop(i11, n, &ir.Store{Buf: expbuf, Index: []ir.Expr{i11},
		Value: &ir.Call{Fn: "exp", Args: []ir.Expr{
			ir.SubE(&ir.Load{Buf: in, Index: []ir.Expr{i11}}, &ir.Load{Buf: maxelem, Index: z})}}})
	sumLoop := ir.Seq(
		&ir.Store{Buf: expsum, Index: z, Value: ir.CFloat(0)},
		ir.Loop(k1, n, &ir.Store{Buf: expsum, Index: z,
			Value: ir.AddE(&ir.Load{Buf: expsum, Index: z}, &ir.Load{Buf: expbuf, Index: []ir.Expr{k1}})}),
	)
	normVal := ir.DivE(&ir.Load{Buf: expbuf, Index: []ir.Expr{i1}}, &ir.Load{Buf: expsum, Index: z})
	var norm ir.Stmt
	if io.OutCh != nil {
		norm = &ir.ChannelWrite{Ch: io.OutCh, Value: normVal}
	} else {
		norm = &ir.Store{Buf: out, Index: []ir.Expr{i1}, Value: normVal}
	}

	// Listing 5.7: everything inside the i1 loop.
	body := ir.Loop(i1, n, ir.Seq(maxLoop, expLoop, sumLoop, norm))

	if naive {
		args = append([]*ir.Buffer{maxelem, expbuf, expsum}, args...)
		op.Scratches = append(op.Scratches, maxelem, expbuf, expsum)
		op.Kernel = &ir.Kernel{Name: name, Args: args, Body: body}
		return op, op.Kernel.Validate()
	}

	// Optimized: hoist the invariant max/exp/sum computation out of the
	// class loop with the LICM schedule primitive (Listing 5.8).
	hoisted, err := schedule.HoistInvariant(body, i1)
	if err != nil {
		return nil, fmt.Errorf("topi: softmax LICM failed: %w", err)
	}
	op.Kernel = &ir.Kernel{Name: name, Args: args,
		Body: ir.Seq(
			&ir.Alloc{Buf: maxelem}, &ir.Alloc{Buf: expbuf}, &ir.Alloc{Buf: expsum},
			prologue, hoisted)}
	return op, op.Kernel.Validate()
}
