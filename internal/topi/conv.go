package topi

import (
	"fmt"

	"repro/internal/ir"
)

// ConvSpec describes one convolution layer. Input dimensions are the
// already-padded feature map (padding is a separate kernel, as TVM emits it).
type ConvSpec struct {
	Name string
	C1   int // input channels
	H, W int // input spatial dims (after padding)
	C2   int // filters / output channels
	F, S int // filter size, stride
	Relu bool
	// Relu6 selects the clamped activation (MobileNetV1, Eq. 2.3).
	Relu6 bool
	Bias  bool
	// Residual adds a skip input elementwise before the activation (ResNet
	// shortcut fused into the convolution output, §3.1).
	Residual bool
}

// OutDims returns the output feature-map spatial dims.
func (s ConvSpec) OutDims() (h2, w2 int) {
	return (s.H-s.F)/s.S + 1, (s.W-s.F)/s.S + 1
}

// FLOPCount returns multiply+add ops for the convolution (2 per MAC).
func (s ConvSpec) FLOPCount() int64 {
	h2, w2 := s.OutDims()
	return 2 * int64(s.C2) * int64(h2) * int64(w2) * int64(s.C1) * int64(s.F) * int64(s.F)
}

// ConvSched selects the schedule: the naive default TVM emits (Listing 5.1)
// or the thesis's optimized schedule (Listings 5.2–5.4) with tile/unroll
// factors for output columns (W2vec), output channels (C2vec) and input
// channels (C1vec). UnrollFF fully unrolls the F×F reduction (§5.1.1 "we
// always fully unroll the inner loops ry and rx").
type ConvSched struct {
	Naive    bool
	W2vec    int
	C2vec    int
	C1vec    int
	UnrollFF bool
}

// OptSched returns the optimized schedule with the given factors.
func OptSched(w2vec, c2vec, c1vec int) ConvSched {
	return ConvSched{W2vec: w2vec, C2vec: c2vec, C1vec: c1vec, UnrollFF: true}
}

// ConvIO selects buffer or channel endpoints for pipelined execution.
type ConvIO struct {
	InCh  *ir.Channel
	OutCh *ir.Channel
}

// Conv2D generates a convolution kernel.
func Conv2D(spec ConvSpec, sched ConvSched, io ConvIO) (*Op, error) {
	if spec.F < 1 || spec.S < 1 || spec.C1 < 1 || spec.C2 < 1 {
		return nil, fmt.Errorf("topi: bad conv spec %+v", spec)
	}
	h2, w2 := spec.OutDims()
	if h2 < 1 || w2 < 1 {
		return nil, fmt.Errorf("topi: conv %s output is empty (%dx%d)", spec.Name, h2, w2)
	}
	if sched.Naive {
		if io.InCh != nil || io.OutCh != nil {
			return nil, fmt.Errorf("topi: naive conv schedule cannot be channelized")
		}
		return convNaive(spec)
	}
	if sched.W2vec == 0 {
		sched.W2vec = 1
	}
	if sched.C2vec == 0 {
		sched.C2vec = 1
	}
	if sched.C1vec == 0 {
		sched.C1vec = 1
	}
	if io.OutCh != nil && (sched.W2vec > 1 || sched.C2vec > 1) {
		// Channel consumers expect row-major element order; tiling the
		// output dimensions would interleave it.
		return nil, fmt.Errorf("topi: channelized conv %s requires W2vec=C2vec=1 (row-major channel order)", spec.Name)
	}
	if err := requireDiv(spec.Name+" W2", w2, sched.W2vec); err != nil {
		return nil, err
	}
	if err := requireDiv(spec.Name+" C2", spec.C2, sched.C2vec); err != nil {
		return nil, err
	}
	if err := requireDiv(spec.Name+" C1", spec.C1, sched.C1vec); err != nil {
		return nil, err
	}
	return convOpt(spec, sched, io)
}

// convNaive emits Listing 5.1: global scratchpad, serial activation loop.
func convNaive(spec ConvSpec) (*Op, error) {
	h2, w2 := spec.OutDims()
	scratch := ir.NewBuffer(spec.Name+"_scratch", ir.Global, h2, w2)
	in := ir.NewBuffer(spec.Name+"_in", ir.Global, spec.C1, spec.H, spec.W)
	wt := ir.NewBuffer(spec.Name+"_w", ir.Global, spec.C2, spec.C1, spec.F, spec.F)
	out := ir.NewBuffer(spec.Name+"_out", ir.Global, spec.C2, h2, w2)
	op := &Op{In: in, Out: out, Weights: wt, Scratches: []*ir.Buffer{scratch},
		OutShape: []int{spec.C2, h2, w2}, FLOPs: spec.FLOPCount()}
	args := []*ir.Buffer{scratch, in, wt}
	var bias, skip *ir.Buffer
	if spec.Bias {
		bias = ir.NewBuffer(spec.Name+"_b", ir.Global, spec.C2)
		op.Bias = bias
		args = append(args, bias)
	}
	if spec.Residual {
		skip = ir.NewBuffer(spec.Name+"_skip", ir.Global, spec.C2, h2, w2)
		op.Skip = skip
		args = append(args, skip)
	}
	args = append(args, out)

	ax1, yy, xx := ir.V("ax1"), ir.V("yy"), ir.V("xx")
	rc, ry, rx := ir.V("rc"), ir.V("ry"), ir.V("rx")
	ax2, ax3 := ir.V("ax2"), ir.V("ax3")
	sIdx := []ir.Expr{yy, xx}
	macc := &ir.Store{Buf: scratch, Index: sIdx,
		Value: ir.AddE(&ir.Load{Buf: scratch, Index: sIdx},
			ir.MulE(
				&ir.Load{Buf: in, Index: []ir.Expr{rc,
					ir.AddE(ir.MulE(ir.CInt(int64(spec.S)), yy), ry),
					ir.AddE(ir.MulE(ir.CInt(int64(spec.S)), xx), rx)}},
				&ir.Load{Buf: wt, Index: []ir.Expr{ax1, rc, ry, rx}}))}
	reduce := ir.Loop(yy, h2, ir.Loop(xx, w2, ir.Seq(
		&ir.Store{Buf: scratch, Index: sIdx, Value: ir.CFloat(0)},
		ir.Loop(rc, spec.C1, ir.Loop(ry, spec.F, ir.Loop(rx, spec.F, macc))),
	)))
	wb := ir.Expr(&ir.Load{Buf: scratch, Index: []ir.Expr{ax2, ax3}})
	if bias != nil {
		wb = ir.AddE(wb, &ir.Load{Buf: bias, Index: []ir.Expr{ax1}})
	}
	if skip != nil {
		wb = ir.AddE(wb, &ir.Load{Buf: skip, Index: []ir.Expr{ax1, ax2, ax3}})
	}
	writeback := ir.Loop(ax2, h2, ir.Loop(ax3, w2,
		&ir.Store{Buf: out, Index: []ir.Expr{ax1, ax2, ax3}, Value: act(wb, spec.Relu, spec.Relu6)}))

	op.Kernel = &ir.Kernel{Name: spec.Name, Args: args,
		Body: ir.Loop(ax1, spec.C2, ir.Seq(reduce, writeback))}
	return op, op.Kernel.Validate()
}

// convOpt emits the unified optimized schedule (Listings 5.2/5.3/5.4):
// fused activation, private write cache, F×F unroll, and tiling/unrolling
// along xx (W2vec), ax1 (C2vec) and rc (C1vec).
func convOpt(spec ConvSpec, sched ConvSched, io ConvIO) (*Op, error) {
	h2, w2 := spec.OutDims()
	op := &Op{OutShape: []int{spec.C2, h2, w2}, FLOPs: spec.FLOPCount(),
		InCh: io.InCh, OutCh: io.OutCh}

	wt := ir.NewBuffer(spec.Name+"_w", ir.Global, spec.C2, spec.C1, spec.F, spec.F)
	op.Weights = wt
	args := []*ir.Buffer{}
	var in *ir.Buffer
	var prologue ir.Stmt
	if io.InCh != nil {
		in = ir.NewBuffer(spec.Name+"_inl", ir.Local, spec.C1, spec.H, spec.W)
		prologue = ir.Seq(&ir.Alloc{Buf: in}, chanReadInto(io.InCh, in, []int{spec.C1, spec.H, spec.W}))
	} else {
		in = ir.NewBuffer(spec.Name+"_in", ir.Global, spec.C1, spec.H, spec.W)
		op.In = in
		args = append(args, in)
	}
	args = append(args, wt)
	var bias, skip *ir.Buffer
	if spec.Bias {
		bias = ir.NewBuffer(spec.Name+"_b", ir.Global, spec.C2)
		op.Bias = bias
		args = append(args, bias)
	}
	if spec.Residual {
		skip = ir.NewBuffer(spec.Name+"_skip", ir.Global, spec.C2, h2, w2)
		op.Skip = skip
		args = append(args, skip)
	}
	var out *ir.Buffer
	if io.OutCh == nil {
		out = ir.NewBuffer(spec.Name+"_out", ir.Global, spec.C2, h2, w2)
		op.Out = out
		args = append(args, out)
	}

	tmp := ir.NewBuffer(spec.Name+"_tmp", ir.Private, sched.C2vec, sched.W2vec)
	ax1o, ax1i := ir.V("ax1o"), ir.V("ax1i")
	yy, xxo, xxi := ir.V("yy"), ir.V("xxo"), ir.V("xxi")
	rco, rci := ir.V("rco"), ir.V("rci")
	ry, rx := ir.V("ry"), ir.V("rx")

	cS := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	oc := ir.AddE(ir.MulE(ax1o, cS(sched.C2vec)), ax1i) // output channel
	ic := ir.AddE(ir.MulE(rco, cS(sched.C1vec)), rci)   // input channel
	ox := ir.AddE(ir.MulE(xxo, cS(sched.W2vec)), xxi)   // output column
	iy := ir.AddE(ir.MulE(cS(spec.S), yy), ry)
	ix := ir.AddE(ir.MulE(cS(spec.S), ox), rx)
	tIdx := []ir.Expr{ax1i, xxi}

	macc := &ir.Store{Buf: tmp, Index: tIdx,
		Value: ir.AddE(&ir.Load{Buf: tmp, Index: tIdx},
			ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{ic, iy, ix}},
				&ir.Load{Buf: wt, Index: []ir.Expr{oc, ic, ry, rx}}))}

	// Innermost reduction: all unrolled dims.
	red := ir.Stmt(macc)
	if spec.F > 1 && sched.UnrollFF {
		red = &ir.For{Var: rx, Extent: cS(spec.F), Unroll: -1, Body: red}
		red = &ir.For{Var: ry, Extent: cS(spec.F), Unroll: -1, Body: red}
	} else if spec.F > 1 {
		red = ir.Loop(rx, spec.F, red)
		red = ir.Loop(ry, spec.F, red)
	} else {
		red = ir.SubstStmt(red, rx, ir.CInt(0))
		red = ir.SubstStmt(red, ry, ir.CInt(0))
	}
	red = &ir.For{Var: xxi, Extent: cS(sched.W2vec), Unroll: -1, Body: red}
	red = &ir.For{Var: ax1i, Extent: cS(sched.C2vec), Unroll: -1, Body: red}
	red = &ir.For{Var: rci, Extent: cS(sched.C1vec), Unroll: -1, Body: red}
	reduce := ir.Loop(rco, spec.C1/sched.C1vec, red)

	initLoop := &ir.For{Var: ax1i, Extent: cS(sched.C2vec), Unroll: -1,
		Body: &ir.For{Var: xxi, Extent: cS(sched.W2vec), Unroll: -1,
			Body: &ir.Store{Buf: tmp, Index: tIdx, Value: ir.CFloat(0)}}}

	wbVal := ir.Expr(&ir.Load{Buf: tmp, Index: tIdx})
	if bias != nil {
		wbVal = ir.AddE(wbVal, &ir.Load{Buf: bias, Index: []ir.Expr{oc}})
	}
	if skip != nil {
		wbVal = ir.AddE(wbVal, &ir.Load{Buf: skip, Index: []ir.Expr{oc, yy, ox}})
	}
	wbVal = act(wbVal, spec.Relu, spec.Relu6)
	var write ir.Stmt
	if io.OutCh != nil {
		write = &ir.ChannelWrite{Ch: io.OutCh, Value: wbVal}
	} else {
		write = &ir.Store{Buf: out, Index: []ir.Expr{oc, yy, ox}, Value: wbVal}
	}
	write = &ir.For{Var: xxi, Extent: cS(sched.W2vec), Unroll: -1, Body: write}
	write = &ir.For{Var: ax1i, Extent: cS(sched.C2vec), Unroll: -1, Body: write}

	body := ir.Loop(ax1o, spec.C2/sched.C2vec,
		ir.Loop(yy, h2,
			ir.Loop(xxo, w2/sched.W2vec,
				ir.Seq(initLoop, reduce, write))))
	op.Kernel = &ir.Kernel{Name: spec.Name, Args: args,
		Body: ir.Seq(&ir.Alloc{Buf: tmp}, prologue, body)}
	return op, op.Kernel.Validate()
}

// DepthwiseSpec describes a depthwise convolution layer (§2.1.2): one F×F
// filter per channel.
type DepthwiseSpec struct {
	Name  string
	C     int
	H, W  int // padded input dims
	F, S  int
	Relu  bool
	Relu6 bool
	Bias  bool
}

// OutDims returns the output spatial dims.
func (s DepthwiseSpec) OutDims() (int, int) {
	return (s.H-s.F)/s.S + 1, (s.W-s.F)/s.S + 1
}

// FLOPCount returns multiply+add ops (complexity C·H2·W2·F·F, §2.1.2).
func (s DepthwiseSpec) FLOPCount() int64 {
	h2, w2 := s.OutDims()
	return 2 * int64(s.C) * int64(h2) * int64(w2) * int64(s.F) * int64(s.F)
}

// DepthwiseConv2D generates a depthwise convolution kernel. The optimized
// schedule tiles W2 and unrolls F×F (Table 6.7: 7×3×3).
func DepthwiseConv2D(spec DepthwiseSpec, naive bool, w2vec int, io ConvIO) (*Op, error) {
	h2, w2 := spec.OutDims()
	if h2 < 1 || w2 < 1 {
		return nil, fmt.Errorf("topi: depthwise %s output is empty", spec.Name)
	}
	if w2vec == 0 {
		w2vec = 1
	}
	if !naive {
		if err := requireDiv(spec.Name+" W2", w2, w2vec); err != nil {
			return nil, err
		}
	}
	op := &Op{OutShape: []int{spec.C, h2, w2}, FLOPs: spec.FLOPCount(), InCh: io.InCh, OutCh: io.OutCh}
	wt := ir.NewBuffer(spec.Name+"_w", ir.Global, spec.C, spec.F, spec.F)
	op.Weights = wt
	args := []*ir.Buffer{}
	var in *ir.Buffer
	var prologue ir.Stmt
	if io.InCh != nil {
		in = ir.NewBuffer(spec.Name+"_inl", ir.Local, spec.C, spec.H, spec.W)
		prologue = ir.Seq(&ir.Alloc{Buf: in}, chanReadInto(io.InCh, in, []int{spec.C, spec.H, spec.W}))
	} else {
		in = ir.NewBuffer(spec.Name+"_in", ir.Global, spec.C, spec.H, spec.W)
		op.In = in
		args = append(args, in)
	}
	args = append(args, wt)
	var bias *ir.Buffer
	if spec.Bias {
		bias = ir.NewBuffer(spec.Name+"_b", ir.Global, spec.C)
		op.Bias = bias
		args = append(args, bias)
	}
	var out *ir.Buffer
	if io.OutCh == nil {
		out = ir.NewBuffer(spec.Name+"_out", ir.Global, spec.C, h2, w2)
		op.Out = out
		args = append(args, out)
	}

	c, yy, xxo, xxi := ir.V("c"), ir.V("yy"), ir.V("xxo"), ir.V("xxi")
	ry, rx := ir.V("ry"), ir.V("rx")
	cs := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	ox := ir.AddE(ir.MulE(xxo, cs(w2vec)), xxi)
	iy := ir.AddE(ir.MulE(cs(spec.S), yy), ry)
	ix := ir.AddE(ir.MulE(cs(spec.S), ox), rx)

	if naive {
		// Global scratchpad, separate loops — the TVM default.
		scratch := ir.NewBuffer(spec.Name+"_scratch", ir.Global, h2, w2)
		op.Scratches = append(op.Scratches, scratch)
		args = append([]*ir.Buffer{scratch}, args...)
		xx := ir.V("xx")
		oxN := xx
		ixN := ir.AddE(ir.MulE(cs(spec.S), oxN), rx)
		iyN := ir.AddE(ir.MulE(cs(spec.S), yy), ry)
		macc := &ir.Store{Buf: scratch, Index: []ir.Expr{yy, xx},
			Value: ir.AddE(&ir.Load{Buf: scratch, Index: []ir.Expr{yy, xx}},
				ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{c, iyN, ixN}},
					&ir.Load{Buf: wt, Index: []ir.Expr{c, ry, rx}}))}
		reduce := ir.Loop(yy, h2, ir.Loop(xx, w2, ir.Seq(
			&ir.Store{Buf: scratch, Index: []ir.Expr{yy, xx}, Value: ir.CFloat(0)},
			ir.Loop(ry, spec.F, ir.Loop(rx, spec.F, macc)),
		)))
		a2, a3 := ir.V("a2"), ir.V("a3")
		wv := ir.Expr(&ir.Load{Buf: scratch, Index: []ir.Expr{a2, a3}})
		if bias != nil {
			wv = ir.AddE(wv, &ir.Load{Buf: bias, Index: []ir.Expr{c}})
		}
		write := ir.Loop(a2, h2, ir.Loop(a3, w2,
			&ir.Store{Buf: out, Index: []ir.Expr{c, a2, a3}, Value: act(wv, spec.Relu, spec.Relu6)}))
		op.Kernel = &ir.Kernel{Name: spec.Name, Args: args,
			Body: ir.Loop(c, spec.C, ir.Seq(reduce, write))}
		return op, op.Kernel.Validate()
	}

	tmp := ir.NewBuffer(spec.Name+"_tmp", ir.Private, w2vec)
	macc := &ir.Store{Buf: tmp, Index: []ir.Expr{xxi},
		Value: ir.AddE(&ir.Load{Buf: tmp, Index: []ir.Expr{xxi}},
			ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{c, iy, ix}},
				&ir.Load{Buf: wt, Index: []ir.Expr{c, ry, rx}}))}
	red := ir.Stmt(&ir.For{Var: rx, Extent: cs(spec.F), Unroll: -1, Body: macc})
	red = &ir.For{Var: ry, Extent: cs(spec.F), Unroll: -1, Body: red}
	red = &ir.For{Var: xxi, Extent: cs(w2vec), Unroll: -1, Body: red}
	initLoop := &ir.For{Var: xxi, Extent: cs(w2vec), Unroll: -1,
		Body: &ir.Store{Buf: tmp, Index: []ir.Expr{xxi}, Value: ir.CFloat(0)}}
	wv := ir.Expr(&ir.Load{Buf: tmp, Index: []ir.Expr{xxi}})
	if bias != nil {
		wv = ir.AddE(wv, &ir.Load{Buf: bias, Index: []ir.Expr{c}})
	}
	wv = act(wv, spec.Relu, spec.Relu6)
	var write ir.Stmt
	if io.OutCh != nil {
		if w2vec != 1 {
			return nil, fmt.Errorf("topi: channelized depthwise %s requires W2vec=1", spec.Name)
		}
		write = &ir.ChannelWrite{Ch: io.OutCh, Value: wv}
	} else {
		write = &ir.Store{Buf: out, Index: []ir.Expr{c, yy, ox}, Value: wv}
	}
	write = &ir.For{Var: xxi, Extent: cs(w2vec), Unroll: -1, Body: write}
	body := ir.Loop(c, spec.C, ir.Loop(yy, h2, ir.Loop(xxo, w2/w2vec,
		ir.Seq(initLoop, red, write))))
	op.Kernel = &ir.Kernel{Name: spec.Name, Args: args,
		Body: ir.Seq(&ir.Alloc{Buf: tmp}, prologue, body)}
	return op, op.Kernel.Validate()
}
