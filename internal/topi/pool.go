package topi

import (
	"fmt"

	"repro/internal/ir"
)

// PoolSpec describes a pooling layer.
type PoolSpec struct {
	Name string
	C    int
	H, W int
	F, S int
	Avg  bool // average pooling instead of max
}

// OutDims returns the output spatial dims.
func (s PoolSpec) OutDims() (int, int) {
	return (s.H-s.F)/s.S + 1, (s.W-s.F)/s.S + 1
}

// Pool2D generates a max/avg pooling kernel. Pooling has no weights, so the
// channelized form can be autorun (§4.7, Table 6.4). The F×F window is fully
// unrolled in the optimized schedule.
func Pool2D(spec PoolSpec, naive bool, io ConvIO, autorun bool) (*Op, error) {
	h2, w2 := spec.OutDims()
	if h2 < 1 || w2 < 1 {
		return nil, fmt.Errorf("topi: pool %s output is empty", spec.Name)
	}
	if autorun && (io.InCh == nil || io.OutCh == nil) {
		return nil, fmt.Errorf("topi: autorun pool %s must be fully channelized", spec.Name)
	}
	op := &Op{OutShape: []int{spec.C, h2, w2}, InCh: io.InCh, OutCh: io.OutCh}
	args := []*ir.Buffer{}
	var in *ir.Buffer
	var prologue ir.Stmt
	if io.InCh != nil {
		in = ir.NewBuffer(spec.Name+"_inl", ir.Local, spec.C, spec.H, spec.W)
		prologue = ir.Seq(&ir.Alloc{Buf: in}, chanReadInto(io.InCh, in, []int{spec.C, spec.H, spec.W}))
	} else {
		in = ir.NewBuffer(spec.Name+"_in", ir.Global, spec.C, spec.H, spec.W)
		op.In = in
		args = append(args, in)
	}
	var out *ir.Buffer
	if io.OutCh == nil {
		out = ir.NewBuffer(spec.Name+"_out", ir.Global, spec.C, h2, w2)
		op.Out = out
		args = append(args, out)
	}

	c, y, x, fy, fx := ir.V("c"), ir.V("y"), ir.V("x"), ir.V("fy"), ir.V("fx")
	cs := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	iy := ir.AddE(ir.MulE(cs(spec.S), y), fy)
	ix := ir.AddE(ir.MulE(cs(spec.S), x), fx)
	acc := ir.NewBuffer(spec.Name+"_acc", ir.Private, 1)
	z := []ir.Expr{ir.CInt(0)}

	var initVal ir.Expr
	var accStmt ir.Stmt
	var finish ir.Expr
	if spec.Avg {
		initVal = ir.CFloat(0)
		accStmt = &ir.Store{Buf: acc, Index: z,
			Value: ir.AddE(&ir.Load{Buf: acc, Index: z}, &ir.Load{Buf: in, Index: []ir.Expr{c, iy, ix}})}
		finish = ir.MulE(&ir.Load{Buf: acc, Index: z}, ir.CFloat(1/float64(spec.F*spec.F)))
	} else {
		initVal = ir.CFloat(-3.402823e38)
		accStmt = &ir.Store{Buf: acc, Index: z,
			Value: ir.MaxE(&ir.Load{Buf: acc, Index: z}, &ir.Load{Buf: in, Index: []ir.Expr{c, iy, ix}})}
		finish = &ir.Load{Buf: acc, Index: z}
	}

	window := ir.Stmt(accStmt)
	if naive {
		window = ir.Loop(fx, spec.F, window)
		window = ir.Loop(fy, spec.F, window)
	} else {
		window = &ir.For{Var: fx, Extent: cs(spec.F), Unroll: -1, Body: window}
		window = &ir.For{Var: fy, Extent: cs(spec.F), Unroll: -1, Body: window}
	}
	var write ir.Stmt
	if io.OutCh != nil {
		write = &ir.ChannelWrite{Ch: io.OutCh, Value: finish}
	} else {
		write = &ir.Store{Buf: out, Index: []ir.Expr{c, y, x}, Value: finish}
	}
	body := ir.Loop(c, spec.C, ir.Loop(y, h2, ir.Loop(x, w2, ir.Seq(
		&ir.Store{Buf: acc, Index: z, Value: initVal},
		window,
		write,
	))))
	op.Kernel = &ir.Kernel{Name: spec.Name, Args: args, Autorun: autorun,
		Body: ir.Seq(&ir.Alloc{Buf: acc}, prologue, body)}
	return op, op.Kernel.Validate()
}

// Flatten generates the LeNet flatten layer: in NCHW row-major storage it is
// an element-order-preserving copy, so the channelized form is a pure
// pass-through (and autorun-eligible).
func Flatten(name string, n int, io ConvIO, autorun bool) (*Op, error) {
	op := &Op{OutShape: []int{n}, InCh: io.InCh, OutCh: io.OutCh}
	i := ir.V("i")
	switch {
	case io.InCh != nil && io.OutCh != nil:
		op.Kernel = &ir.Kernel{Name: name, Autorun: autorun,
			Body: ir.Loop(i, n, &ir.ChannelWrite{Ch: io.OutCh, Value: &ir.ChannelRead{Ch: io.InCh}})}
	case io.InCh == nil && io.OutCh == nil:
		in := ir.NewBuffer(name+"_in", ir.Global, n)
		out := ir.NewBuffer(name+"_out", ir.Global, n)
		op.In, op.Out = in, out
		op.Kernel = &ir.Kernel{Name: name, Args: []*ir.Buffer{in, out},
			Body: ir.Loop(i, n, &ir.Store{Buf: out, Index: []ir.Expr{i}, Value: &ir.Load{Buf: in, Index: []ir.Expr{i}}})}
	default:
		return nil, fmt.Errorf("topi: flatten %s must be fully channelized or fully buffered", name)
	}
	if autorun && (io.InCh == nil || io.OutCh == nil) {
		return nil, fmt.Errorf("topi: autorun flatten %s must be channelized", name)
	}
	return op, op.Kernel.Validate()
}
