package topi

import (
	"fmt"

	"repro/internal/ir"
)

// Parameterized kernels (§4.9, §5.3): one kernel per (operation, filter
// size, stride) group, with input/output channels and spatial dims passed as
// runtime scalar arguments, so a single compute unit is time-multiplexed
// over many layers (folded execution). Without the stride-1 workaround of
// Listing 5.11, AOC cannot coalesce the symbolic accesses; the Workaround
// flag reproduces both sides of that trade-off.

// ParamConv is a parameterized convolution kernel plus its symbolic
// interface.
type ParamConv struct {
	Op       *Op
	C1, H, W *ir.Var // input channels and padded input dims
	C2       *ir.Var // output channels
	F, S     int
	Sched    ConvSched
	HasSkip  bool
}

// Bind produces the scalar bindings for one layer invocation.
func (p *ParamConv) Bind(c1, h, w, c2 int) (map[*ir.Var]int64, error) {
	w2 := (w-p.F)/p.S + 1
	if c1%p.Sched.C1vec != 0 || c2%p.Sched.C2vec != 0 || w2%p.Sched.W2vec != 0 {
		return nil, fmt.Errorf("topi: layer (%d,%d,%d)->%d not divisible by tiling %d/%d/%d of kernel %s",
			c1, h, w, c2, p.Sched.W2vec, p.Sched.C2vec, p.Sched.C1vec, p.Op.Kernel.Name)
	}
	return map[*ir.Var]int64{
		p.C1: int64(c1), p.H: int64(h), p.W: int64(w), p.C2: int64(c2),
	}, nil
}

// FLOPsFor counts multiply+add ops for one bound invocation.
func (p *ParamConv) FLOPsFor(c1, h, w, c2 int) int64 {
	h2 := (h-p.F)/p.S + 1
	w2 := (w-p.F)/p.S + 1
	return 2 * int64(c2) * int64(h2) * int64(w2) * int64(c1) * int64(p.F) * int64(p.F)
}

// ConvParam builds a parameterized convolution kernel for a (F, S) group.
// workaround toggles the Listing 5.11 stride-1 fix that lets AOC coalesce.
func ConvParam(name string, f, s int, sched ConvSched, relu, bias, residual, workaround bool) (*ParamConv, error) {
	return ConvParamAct(name, f, s, sched, relu, false, bias, residual, workaround)
}

// ConvParamAct is ConvParam with an explicit ReLU6 selector.
func ConvParamAct(name string, f, s int, sched ConvSched, relu, relu6, bias, residual, workaround bool) (*ParamConv, error) {
	if sched.Naive {
		return nil, fmt.Errorf("topi: parameterized kernels use the optimized schedule")
	}
	if sched.W2vec == 0 {
		sched.W2vec = 1
	}
	if sched.C2vec == 0 {
		sched.C2vec = 1
	}
	if sched.C1vec == 0 {
		sched.C1vec = 1
	}
	c1 := ir.Param(name + "_c1")
	h := ir.Param(name + "_h")
	w := ir.Param(name + "_w")
	c2 := ir.Param(name + "_c2")
	cs := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	h2 := ir.AddE(ir.DivE(ir.SubE(h, cs(f)), cs(s)), cs(1))
	w2 := ir.AddE(ir.DivE(ir.SubE(w, cs(f)), cs(s)), cs(1))

	in := ir.NewBufferE(name+"_in", ir.Global, c1, h, w)
	wt := ir.NewBufferE(name+"_wt", ir.Global, c2, c1, cs(f), cs(f))
	out := ir.NewBufferE(name+"_out", ir.Global, c2, h2, w2)
	bufs := []*ir.Buffer{in, wt, out}
	op := &Op{In: in, Out: out, Weights: wt}
	args := []*ir.Buffer{in, wt}
	var biasBuf, skip *ir.Buffer
	if bias {
		biasBuf = ir.NewBufferE(name+"_b", ir.Global, c2)
		op.Bias = biasBuf
		args = append(args, biasBuf)
		bufs = append(bufs, biasBuf)
	}
	if residual {
		skip = ir.NewBufferE(name+"_skip", ir.Global, c2, h2, w2)
		op.Skip = skip
		args = append(args, skip)
		bufs = append(bufs, skip)
	}
	args = append(args, out)
	for _, b := range bufs {
		b.ExplicitStrides = !workaround
	}

	tmp := ir.NewBuffer(name+"_tmp", ir.Private, sched.C2vec, sched.W2vec)
	ax1o, ax1i := ir.V("ax1o"), ir.V("ax1i")
	yy, xxo, xxi := ir.V("yy"), ir.V("xxo"), ir.V("xxi")
	rco, rci := ir.V("rco"), ir.V("rci")
	ry, rx := ir.V("ry"), ir.V("rx")

	oc := ir.AddE(ir.MulE(ax1o, cs(sched.C2vec)), ax1i)
	ic := ir.AddE(ir.MulE(rco, cs(sched.C1vec)), rci)
	ox := ir.AddE(ir.MulE(xxo, cs(sched.W2vec)), xxi)
	iy := ir.AddE(ir.MulE(cs(s), yy), ry)
	ix := ir.AddE(ir.MulE(cs(s), ox), rx)
	tIdx := []ir.Expr{ax1i, xxi}

	macc := &ir.Store{Buf: tmp, Index: tIdx,
		Value: ir.AddE(&ir.Load{Buf: tmp, Index: tIdx},
			ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{ic, iy, ix}},
				&ir.Load{Buf: wt, Index: []ir.Expr{oc, ic, ry, rx}}))}
	red := ir.Stmt(macc)
	if f > 1 {
		red = &ir.For{Var: rx, Extent: cs(f), Unroll: -1, Body: red}
		red = &ir.For{Var: ry, Extent: cs(f), Unroll: -1, Body: red}
	} else {
		red = ir.SubstStmt(red, rx, ir.CInt(0))
		red = ir.SubstStmt(red, ry, ir.CInt(0))
	}
	red = &ir.For{Var: xxi, Extent: cs(sched.W2vec), Unroll: -1, Body: red}
	red = &ir.For{Var: ax1i, Extent: cs(sched.C2vec), Unroll: -1, Body: red}
	red = &ir.For{Var: rci, Extent: cs(sched.C1vec), Unroll: -1, Body: red}
	reduce := ir.LoopE(rco, ir.DivE(c1, cs(sched.C1vec)), red)

	initLoop := &ir.For{Var: ax1i, Extent: cs(sched.C2vec), Unroll: -1,
		Body: &ir.For{Var: xxi, Extent: cs(sched.W2vec), Unroll: -1,
			Body: &ir.Store{Buf: tmp, Index: tIdx, Value: ir.CFloat(0)}}}

	wv := ir.Expr(&ir.Load{Buf: tmp, Index: tIdx})
	if biasBuf != nil {
		wv = ir.AddE(wv, &ir.Load{Buf: biasBuf, Index: []ir.Expr{oc}})
	}
	if skip != nil {
		wv = ir.AddE(wv, &ir.Load{Buf: skip, Index: []ir.Expr{oc, yy, ox}})
	}
	wv = act(wv, relu, relu6)
	write := ir.Stmt(&ir.Store{Buf: out, Index: []ir.Expr{oc, yy, ox}, Value: wv})
	write = &ir.For{Var: xxi, Extent: cs(sched.W2vec), Unroll: -1, Body: write}
	write = &ir.For{Var: ax1i, Extent: cs(sched.C2vec), Unroll: -1, Body: write}

	body := ir.LoopE(ax1o, ir.DivE(c2, cs(sched.C2vec)),
		ir.LoopE(yy, h2,
			ir.LoopE(xxo, ir.DivE(w2, cs(sched.W2vec)),
				ir.Seq(initLoop, reduce, write))))
	op.Kernel = &ir.Kernel{Name: name, Args: args,
		ScalarArgs: []*ir.Var{c1, h, w, c2},
		Body:       ir.Seq(&ir.Alloc{Buf: tmp}, body)}
	if err := op.Kernel.Validate(); err != nil {
		return nil, err
	}
	return &ParamConv{Op: op, C1: c1, H: h, W: w, C2: c2, F: f, S: s, Sched: sched, HasSkip: residual}, nil
}

// ParamDepthwise is a parameterized depthwise convolution.
type ParamDepthwise struct {
	Op      *Op
	C, H, W *ir.Var
	F, S    int
	W2vec   int
}

// Bind produces scalar bindings for one layer invocation.
func (p *ParamDepthwise) Bind(c, h, w int) (map[*ir.Var]int64, error) {
	w2 := (w-p.F)/p.S + 1
	if w2%p.W2vec != 0 {
		return nil, fmt.Errorf("topi: depthwise layer W2=%d not divisible by %d", w2, p.W2vec)
	}
	return map[*ir.Var]int64{p.C: int64(c), p.H: int64(h), p.W: int64(w)}, nil
}

// FLOPsFor counts multiply+add ops for one bound invocation.
func (p *ParamDepthwise) FLOPsFor(c, h, w int) int64 {
	h2 := (h-p.F)/p.S + 1
	w2 := (w-p.F)/p.S + 1
	return 2 * int64(c) * int64(h2) * int64(w2) * int64(p.F) * int64(p.F)
}

// DepthwiseParam builds a parameterized depthwise kernel for an (F, S) group
// with the W2×F×F unrolling of Table 6.7.
func DepthwiseParam(name string, f, s, w2vec int, relu, bias, workaround bool) (*ParamDepthwise, error) {
	return DepthwiseParamAct(name, f, s, w2vec, relu, false, bias, workaround)
}

// DepthwiseParamAct is DepthwiseParam with an explicit ReLU6 selector.
func DepthwiseParamAct(name string, f, s, w2vec int, relu, relu6, bias, workaround bool) (*ParamDepthwise, error) {
	if w2vec == 0 {
		w2vec = 1
	}
	c := ir.Param(name + "_c")
	h := ir.Param(name + "_h")
	w := ir.Param(name + "_w")
	cs := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	h2 := ir.AddE(ir.DivE(ir.SubE(h, cs(f)), cs(s)), cs(1))
	w2 := ir.AddE(ir.DivE(ir.SubE(w, cs(f)), cs(s)), cs(1))

	in := ir.NewBufferE(name+"_in", ir.Global, c, h, w)
	wt := ir.NewBufferE(name+"_wt", ir.Global, c, cs(f), cs(f))
	out := ir.NewBufferE(name+"_out", ir.Global, c, h2, w2)
	op := &Op{In: in, Out: out, Weights: wt}
	args := []*ir.Buffer{in, wt}
	var biasBuf *ir.Buffer
	bufs := []*ir.Buffer{in, wt, out}
	if bias {
		biasBuf = ir.NewBufferE(name+"_b", ir.Global, c)
		op.Bias = biasBuf
		args = append(args, biasBuf)
		bufs = append(bufs, biasBuf)
	}
	args = append(args, out)
	for _, b := range bufs {
		b.ExplicitStrides = !workaround
	}

	tmp := ir.NewBuffer(name+"_tmp", ir.Private, w2vec)
	cc, yy, xxo, xxi := ir.V("c"), ir.V("yy"), ir.V("xxo"), ir.V("xxi")
	ry, rx := ir.V("ry"), ir.V("rx")
	ox := ir.AddE(ir.MulE(xxo, cs(w2vec)), xxi)
	iy := ir.AddE(ir.MulE(cs(s), yy), ry)
	ix := ir.AddE(ir.MulE(cs(s), ox), rx)
	macc := &ir.Store{Buf: tmp, Index: []ir.Expr{xxi},
		Value: ir.AddE(&ir.Load{Buf: tmp, Index: []ir.Expr{xxi}},
			ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{cc, iy, ix}},
				&ir.Load{Buf: wt, Index: []ir.Expr{cc, ry, rx}}))}
	red := ir.Stmt(&ir.For{Var: rx, Extent: cs(f), Unroll: -1, Body: macc})
	red = &ir.For{Var: ry, Extent: cs(f), Unroll: -1, Body: red}
	red = &ir.For{Var: xxi, Extent: cs(w2vec), Unroll: -1, Body: red}
	initLoop := &ir.For{Var: xxi, Extent: cs(w2vec), Unroll: -1,
		Body: &ir.Store{Buf: tmp, Index: []ir.Expr{xxi}, Value: ir.CFloat(0)}}
	wv := ir.Expr(&ir.Load{Buf: tmp, Index: []ir.Expr{xxi}})
	if biasBuf != nil {
		wv = ir.AddE(wv, &ir.Load{Buf: biasBuf, Index: []ir.Expr{cc}})
	}
	write := ir.Stmt(&ir.Store{Buf: out, Index: []ir.Expr{cc, yy, ox}, Value: act(wv, relu, relu6)})
	write = &ir.For{Var: xxi, Extent: cs(w2vec), Unroll: -1, Body: write}
	body := ir.LoopE(cc, c, ir.LoopE(yy, h2, ir.LoopE(xxo, ir.DivE(w2, cs(w2vec)),
		ir.Seq(initLoop, red, write))))
	op.Kernel = &ir.Kernel{Name: name, Args: args, ScalarArgs: []*ir.Var{c, h, w},
		Body: ir.Seq(&ir.Alloc{Buf: tmp}, body)}
	if err := op.Kernel.Validate(); err != nil {
		return nil, err
	}
	return &ParamDepthwise{Op: op, C: c, H: h, W: w, F: f, S: s, W2vec: w2vec}, nil
}

// ParamDense is a parameterized dense layer.
type ParamDense struct {
	Op   *Op
	N, M *ir.Var
	KVec int
}

// Bind produces scalar bindings.
func (p *ParamDense) Bind(n, m int) (map[*ir.Var]int64, error) {
	if n%p.KVec != 0 {
		return nil, fmt.Errorf("topi: dense N=%d not divisible by unroll %d", n, p.KVec)
	}
	return map[*ir.Var]int64{p.N: int64(n), p.M: int64(m)}, nil
}

// FLOPsFor counts multiply+add ops.
func (p *ParamDense) FLOPsFor(n, m int) int64 { return 2 * int64(n) * int64(m) }

// DenseParam builds a parameterized dense kernel with the reduction unrolled
// by kvec (Table 6.7: 32).
func DenseParam(name string, kvec int, relu, bias, workaround bool) (*ParamDense, error) {
	if kvec <= 0 {
		return nil, fmt.Errorf("topi: dense unroll must be positive")
	}
	n := ir.Param(name + "_n")
	m := ir.Param(name + "_m")
	in := ir.NewBufferE(name+"_in", ir.Global, n)
	wt := ir.NewBufferE(name+"_wt", ir.Global, m, n)
	out := ir.NewBufferE(name+"_out", ir.Global, m)
	op := &Op{In: in, Out: out, Weights: wt}
	args := []*ir.Buffer{in, wt}
	bufs := []*ir.Buffer{in, wt, out}
	var biasBuf *ir.Buffer
	if bias {
		biasBuf = ir.NewBufferE(name+"_b", ir.Global, m)
		op.Bias = biasBuf
		args = append(args, biasBuf)
		bufs = append(bufs, biasBuf)
	}
	args = append(args, out)
	for _, b := range bufs {
		b.ExplicitStrides = !workaround
	}

	dot := ir.NewBuffer(name+"_dot", ir.Private, 1)
	j, ko, ki := ir.V("j"), ir.V("ko"), ir.V("ki")
	z := []ir.Expr{ir.CInt(0)}
	cs := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	kidx := ir.AddE(ir.MulE(ko, cs(kvec)), ki)
	inner := &ir.For{Var: ki, Extent: cs(kvec), Unroll: -1,
		Body: &ir.Store{Buf: dot, Index: z,
			Value: ir.AddE(&ir.Load{Buf: dot, Index: z},
				ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{kidx}}, &ir.Load{Buf: wt, Index: []ir.Expr{j, kidx}}))}}
	wv := act(denseWB(dot, biasBuf, j, z), relu, false)
	body := ir.LoopE(j, m, ir.Seq(
		&ir.Store{Buf: dot, Index: z, Value: ir.CFloat(0)},
		ir.LoopE(ko, ir.DivE(n, cs(kvec)), inner),
		&ir.Store{Buf: out, Index: []ir.Expr{j}, Value: wv},
	))
	op.Kernel = &ir.Kernel{Name: name, Args: args, ScalarArgs: []*ir.Var{n, m},
		Body: ir.Seq(&ir.Alloc{Buf: dot}, body)}
	if err := op.Kernel.Validate(); err != nil {
		return nil, err
	}
	return &ParamDense{Op: op, N: n, M: m, KVec: kvec}, nil
}

// ParamPad is a parameterized zero-padding kernel.
type ParamPad struct {
	Op      *Op
	C, H, W *ir.Var
	P       int
}

// Bind produces scalar bindings.
func (p *ParamPad) Bind(c, h, w int) map[*ir.Var]int64 {
	return map[*ir.Var]int64{p.C: int64(c), p.H: int64(h), p.W: int64(w)}
}

// PadParam builds a parameterized padding kernel for pad width p, in the
// modulo-addressed form TVM generates (§6.3.2).
func PadParam(name string, pad int, workaround bool) (*ParamPad, error) {
	if pad < 1 {
		return nil, fmt.Errorf("topi: pad width must be positive")
	}
	c := ir.Param(name + "_c")
	h := ir.Param(name + "_h")
	w := ir.Param(name + "_w")
	cs := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	hp := ir.AddE(h, cs(2*pad))
	wp := ir.AddE(w, cs(2*pad))
	in := ir.NewBufferE(name+"_in", ir.Global, c, h, w)
	out := ir.NewBufferE(name+"_out", ir.Global, c, hp, wp)
	in.ExplicitStrides = !workaround
	out.ExplicitStrides = !workaround
	op := &Op{In: in, Out: out}

	i := ir.V("i")
	plane := ir.MulE(hp, wp)
	cc := ir.DivE(i, plane)
	rem := ir.ModE(i, plane)
	y := ir.DivE(rem, wp)
	x := ir.ModE(rem, wp)
	inBounds := &ir.Binary{Op: ir.And,
		A: &ir.Binary{Op: ir.And,
			A: &ir.Binary{Op: ir.GE, A: y, B: cs(pad)},
			B: &ir.Binary{Op: ir.LT, A: y, B: ir.AddE(h, cs(pad))}},
		B: &ir.Binary{Op: ir.And,
			A: &ir.Binary{Op: ir.GE, A: x, B: cs(pad)},
			B: &ir.Binary{Op: ir.LT, A: x, B: ir.AddE(w, cs(pad))}}}
	val := &ir.Select{Cond: inBounds,
		A: &ir.Load{Buf: in, Index: []ir.Expr{cc, ir.SubE(y, cs(pad)), ir.SubE(x, cs(pad))}},
		B: ir.CFloat(0)}
	op.Kernel = &ir.Kernel{Name: name, Args: []*ir.Buffer{in, out}, ScalarArgs: []*ir.Var{c, h, w},
		Body: ir.LoopE(i, ir.MulE(c, plane), &ir.Store{Buf: out, Index: []ir.Expr{cc, y, x}, Value: val})}
	if err := op.Kernel.Validate(); err != nil {
		return nil, err
	}
	return &ParamPad{Op: op, C: c, H: h, W: w, P: pad}, nil
}

// ParamCopy is a parameterized offset copy: out[off+i] = in[i]. It is the
// kernel behind channel concatenation — a worked example of the thesis's
// extensibility claim: a new operator needs only a compute definition and a
// schedule (§1.1).
type ParamCopy struct {
	Op            *Op
	N, Off, Total *ir.Var
	Vec           int
}

// Bind produces scalar bindings for copying n elements to offset off of an
// output of size total.
func (p *ParamCopy) Bind(n, off, total int) (map[*ir.Var]int64, error) {
	if off+n > total {
		return nil, fmt.Errorf("topi: copy overruns output: off %d + n %d > total %d", off, n, total)
	}
	if n%p.Vec != 0 {
		return nil, fmt.Errorf("topi: copy length %d not divisible by vector width %d", n, p.Vec)
	}
	return map[*ir.Var]int64{p.N: int64(n), p.Off: int64(off), p.Total: int64(total)}, nil
}

// CopyParam builds the parameterized copy kernel, strip-mined by vec and
// unrolled for wide coalesced accesses.
func CopyParam(name string, vec int, workaround bool) (*ParamCopy, error) {
	if vec <= 0 {
		return nil, fmt.Errorf("topi: copy vector width must be positive")
	}
	n := ir.Param(name + "_n")
	off := ir.Param(name + "_off")
	total := ir.Param(name + "_total")
	in := ir.NewBufferE(name+"_in", ir.Global, n)
	out := ir.NewBufferE(name+"_out", ir.Global, total)
	in.ExplicitStrides = !workaround
	out.ExplicitStrides = !workaround
	op := &Op{In: in, Out: out}
	i, u := ir.V("i"), ir.V("u")
	cs := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	idx := ir.AddE(ir.MulE(i, cs(vec)), u)
	body := ir.LoopE(i, ir.DivE(n, cs(vec)),
		&ir.For{Var: u, Extent: cs(vec), Unroll: -1,
			Body: &ir.Store{Buf: out, Index: []ir.Expr{ir.AddE(off, idx)},
				Value: &ir.Load{Buf: in, Index: []ir.Expr{idx}}}})
	op.Kernel = &ir.Kernel{Name: name, Args: []*ir.Buffer{in, out},
		ScalarArgs: []*ir.Var{n, off, total}, Body: body}
	if err := op.Kernel.Validate(); err != nil {
		return nil, err
	}
	return &ParamCopy{Op: op, N: n, Off: off, Total: total, Vec: vec}, nil
}

// ParamPool is a parameterized pooling kernel (max or average).
type ParamPool struct {
	Op      *Op
	C, H, W *ir.Var
	F, S    int
	Avg     bool
}

// Bind produces scalar bindings.
func (p *ParamPool) Bind(c, h, w int) map[*ir.Var]int64 {
	return map[*ir.Var]int64{p.C: int64(c), p.H: int64(h), p.W: int64(w)}
}

// PoolParam builds a parameterized pooling kernel for an (F, S) group.
func PoolParam(name string, f, s int, avg, workaround bool) (*ParamPool, error) {
	c := ir.Param(name + "_c")
	h := ir.Param(name + "_h")
	w := ir.Param(name + "_w")
	cs := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	h2 := ir.AddE(ir.DivE(ir.SubE(h, cs(f)), cs(s)), cs(1))
	w2 := ir.AddE(ir.DivE(ir.SubE(w, cs(f)), cs(s)), cs(1))
	in := ir.NewBufferE(name+"_in", ir.Global, c, h, w)
	out := ir.NewBufferE(name+"_out", ir.Global, c, h2, w2)
	in.ExplicitStrides = !workaround
	out.ExplicitStrides = !workaround
	op := &Op{In: in, Out: out}

	acc := ir.NewBuffer(name+"_acc", ir.Private, 1)
	z := []ir.Expr{ir.CInt(0)}
	cc, y, x, fy, fx := ir.V("c"), ir.V("y"), ir.V("x"), ir.V("fy"), ir.V("fx")
	iy := ir.AddE(ir.MulE(cs(s), y), fy)
	ix := ir.AddE(ir.MulE(cs(s), x), fx)
	var initVal ir.Expr
	var accStmt ir.Stmt
	var fin ir.Expr
	if avg {
		initVal = ir.CFloat(0)
		accStmt = &ir.Store{Buf: acc, Index: z,
			Value: ir.AddE(&ir.Load{Buf: acc, Index: z}, &ir.Load{Buf: in, Index: []ir.Expr{cc, iy, ix}})}
		fin = ir.MulE(&ir.Load{Buf: acc, Index: z}, ir.CFloat(1/float64(f*f)))
	} else {
		initVal = ir.CFloat(-3.402823e38)
		accStmt = &ir.Store{Buf: acc, Index: z,
			Value: ir.MaxE(&ir.Load{Buf: acc, Index: z}, &ir.Load{Buf: in, Index: []ir.Expr{cc, iy, ix}})}
		fin = &ir.Load{Buf: acc, Index: z}
	}
	window := ir.Stmt(&ir.For{Var: fx, Extent: cs(f), Unroll: -1, Body: accStmt})
	window = &ir.For{Var: fy, Extent: cs(f), Unroll: -1, Body: window}
	body := ir.LoopE(cc, c, ir.LoopE(y, h2, ir.LoopE(x, w2, ir.Seq(
		&ir.Store{Buf: acc, Index: z, Value: initVal},
		window,
		&ir.Store{Buf: out, Index: []ir.Expr{cc, y, x}, Value: fin},
	))))
	op.Kernel = &ir.Kernel{Name: name, Args: []*ir.Buffer{in, out}, ScalarArgs: []*ir.Var{c, h, w},
		Body: ir.Seq(&ir.Alloc{Buf: acc}, body)}
	if err := op.Kernel.Validate(); err != nil {
		return nil, err
	}
	return &ParamPool{Op: op, C: c, H: h, W: w, F: f, S: s, Avg: avg}, nil
}
