package topi

import (
	"strings"
	"testing"

	"repro/internal/cpuref"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// runOp executes a constant-shape op on the interpreter with seeded inputs
// and returns the output tensor.
func runOp(t *testing.T, op *Op, in, w, bias, skip *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	m := sim.NewMachine()
	if op.In != nil {
		m.Bind(op.In, in.Data)
	}
	if op.Weights != nil {
		m.Bind(op.Weights, w.Data)
	}
	if op.Bias != nil {
		m.Bind(op.Bias, bias.Data)
	}
	if op.Skip != nil {
		m.Bind(op.Skip, skip.Data)
	}
	for _, sc := range op.Scratches {
		if n, ok := sc.ConstLen(); ok {
			m.Bind(sc, make([]float32, n))
		}
	}
	out := tensor.New(op.OutShape...)
	if op.Out != nil {
		m.Bind(op.Out, out.Data)
	}
	if err := m.Run(op.Kernel, nil); err != nil {
		t.Fatal(err)
	}
	return out
}

func seeded(shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillSeq(uint64(len(shape))*77 + uint64(shape[0]))
	return t
}

func TestConvNaiveMatchesReference(t *testing.T) {
	spec := ConvSpec{Name: "c", C1: 3, H: 12, W: 12, C2: 4, F: 3, S: 1, Relu: true, Bias: true}
	op, err := Conv2D(spec, ConvSched{Naive: true}, ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	in, w, b := seeded(3, 12, 12), seeded(4, 3, 3, 3), seeded(4)
	got := runOp(t, op, in, w, b, nil)
	want := cpuref.Conv2D(in, w, b, 1, 0, true)
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("naive conv diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestConvOptimizedAllTilings(t *testing.T) {
	spec := ConvSpec{Name: "c", C1: 8, H: 16, W: 16, C2: 8, F: 3, S: 1, Relu: true, Bias: true}
	in, w, b := seeded(8, 16, 16), seeded(8, 8, 3, 3), seeded(8)
	want := cpuref.Conv2D(in, w, b, 1, 0, true)
	for _, tc := range []struct{ w2v, c2v, c1v int }{
		{1, 1, 1}, {7, 1, 1}, {7, 2, 4}, {14, 4, 8}, {2, 8, 2},
	} {
		op, err := Conv2D(spec, OptSched(tc.w2v, tc.c2v, tc.c1v), ConvIO{})
		if err != nil {
			t.Fatalf("tiling %v: %v", tc, err)
		}
		got := runOp(t, op, in, w, b, nil)
		if !tensor.AllClose(got, want, 1e-4) {
			t.Fatalf("optimized conv %v diverges: %v", tc, tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestConvStride2(t *testing.T) {
	spec := ConvSpec{Name: "c", C1: 4, H: 15, W: 15, C2: 4, F: 3, S: 2, Relu: false, Bias: false}
	in, w := seeded(4, 15, 15), seeded(4, 4, 3, 3)
	want := cpuref.Conv2D(in, w, nil, 2, 0, false)
	for _, sched := range []ConvSched{{Naive: true}, OptSched(7, 2, 2), OptSched(1, 1, 1)} {
		op, err := Conv2D(spec, sched, ConvIO{})
		if err != nil {
			t.Fatal(err)
		}
		got := runOp(t, op, in, w, nil, nil)
		if !tensor.AllClose(got, want, 1e-4) {
			t.Fatalf("stride-2 conv (naive=%v) diverges", sched.Naive)
		}
	}
}

func TestConv1x1SpecialCase(t *testing.T) {
	// Listing 5.4: F=1 drops the ry/rx loops entirely.
	spec := ConvSpec{Name: "c", C1: 8, H: 14, W: 14, C2: 16, F: 1, S: 1, Relu: true, Bias: true}
	in, w, b := seeded(8, 14, 14), seeded(16, 8, 1, 1), seeded(16)
	op, err := Conv2D(spec, OptSched(7, 4, 8), ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	// No ry/rx loops must remain in the kernel.
	ir.WalkStmt(op.Kernel.Body, func(s ir.Stmt) {
		if f, ok := s.(*ir.For); ok && (f.Var.Name == "ry" || f.Var.Name == "rx") {
			t.Fatal("1x1 conv must not emit filter loops")
		}
	})
	got := runOp(t, op, in, w, b, nil)
	want := cpuref.Conv2D(in, w, b, 1, 0, true)
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatal("1x1 conv diverges")
	}
}

func TestConvResidualFusion(t *testing.T) {
	spec := ConvSpec{Name: "c", C1: 4, H: 10, W: 10, C2: 4, F: 3, S: 1, Relu: true, Residual: true}
	in, w := seeded(4, 10, 10), seeded(4, 4, 3, 3)
	skip := seeded(4, 8, 8)
	op, err := Conv2D(spec, OptSched(4, 2, 2), ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	got := runOp(t, op, in, w, nil, skip)
	want := cpuref.ReLU(cpuref.Add(cpuref.Conv2D(in, w, nil, 1, 0, false), skip))
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatal("residual-fused conv diverges")
	}
}

func TestConvTilingDivisibilityErrors(t *testing.T) {
	spec := ConvSpec{Name: "c", C1: 8, H: 16, W: 16, C2: 8, F: 3, S: 1}
	if _, err := Conv2D(spec, OptSched(5, 1, 1), ConvIO{}); err == nil ||
		!strings.Contains(err.Error(), "divisible") {
		t.Fatalf("want divisibility error, got %v", err)
	}
	if _, err := Conv2D(spec, OptSched(1, 3, 1), ConvIO{}); err == nil {
		t.Fatal("C2 divisibility must be checked")
	}
	if _, err := Conv2D(spec, OptSched(1, 1, 5), ConvIO{}); err == nil {
		t.Fatal("C1 divisibility must be checked")
	}
}

func TestDepthwiseSchedules(t *testing.T) {
	spec := DepthwiseSpec{Name: "dw", C: 6, H: 16, W: 16, F: 3, S: 1, Relu: true, Bias: true}
	in, w, b := seeded(6, 16, 16), seeded(6, 3, 3), seeded(6)
	want := cpuref.DepthwiseConv2D(in, w, b, 1, 0, true)
	for _, naive := range []bool{true, false} {
		op, err := DepthwiseConv2D(spec, naive, 7, ConvIO{})
		if err != nil {
			t.Fatal(err)
		}
		got := runOp(t, op, in, w, b, nil)
		if !tensor.AllClose(got, want, 1e-4) {
			t.Fatalf("depthwise naive=%v diverges", naive)
		}
	}
	// Stride 2.
	spec2 := DepthwiseSpec{Name: "dw2", C: 4, H: 15, W: 15, F: 3, S: 2}
	in2, w2 := seeded(4, 15, 15), seeded(4, 3, 3)
	op, err := DepthwiseConv2D(spec2, false, 7, ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	got := runOp(t, op, in2, w2, nil, nil)
	want2 := cpuref.DepthwiseConv2D(in2, w2, nil, 2, 0, false)
	if !tensor.AllClose(got, want2, 1e-4) {
		t.Fatal("stride-2 depthwise diverges")
	}
}

func TestDenseSchedules(t *testing.T) {
	spec := DenseSpec{Name: "d", N: 40, M: 12, Relu: true, Bias: true}
	in, w, b := seeded(40), seeded(12, 40), seeded(12)
	want := cpuref.Dense(in, w, b, true)
	for _, tc := range []struct {
		naive bool
		kvec  int
	}{{true, 1}, {false, 1}, {false, 4}, {false, 40}} {
		op, err := Dense(spec, tc.naive, tc.kvec, ConvIO{})
		if err != nil {
			t.Fatal(err)
		}
		got := runOp(t, op, in, w, b, nil)
		if !tensor.AllClose(got, want, 1e-4) {
			t.Fatalf("dense naive=%v kvec=%d diverges", tc.naive, tc.kvec)
		}
	}
	if _, err := Dense(spec, false, 7, ConvIO{}); err == nil {
		t.Fatal("dense unroll divisibility must be checked")
	}
}

func TestPoolingSchedules(t *testing.T) {
	spec := PoolSpec{Name: "p", C: 3, H: 8, W: 8, F: 2, S: 2}
	in := seeded(3, 8, 8)
	wantMax := cpuref.MaxPool2D(in, 2, 2)
	for _, naive := range []bool{true, false} {
		op, err := Pool2D(spec, naive, ConvIO{}, false)
		if err != nil {
			t.Fatal(err)
		}
		got := runOp(t, op, in, nil, nil, nil)
		if !tensor.AllClose(got, wantMax, 1e-5) {
			t.Fatalf("maxpool naive=%v diverges", naive)
		}
	}
	avgSpec := PoolSpec{Name: "ap", C: 3, H: 8, W: 8, F: 2, S: 2, Avg: true}
	op, err := Pool2D(avgSpec, false, ConvIO{}, false)
	if err != nil {
		t.Fatal(err)
	}
	got := runOp(t, op, in, nil, nil, nil)
	if !tensor.AllClose(got, cpuref.AvgPool2D(in, 2, 2), 1e-5) {
		t.Fatal("avgpool diverges")
	}
}

func TestSoftmaxSchedules(t *testing.T) {
	in := seeded(10)
	want := cpuref.Softmax(in)
	for _, naive := range []bool{true, false} {
		op, err := Softmax("sm", 10, naive, ConvIO{})
		if err != nil {
			t.Fatal(err)
		}
		got := runOp(t, op, in, nil, nil, nil)
		if !tensor.AllClose(got, want, 1e-5) {
			t.Fatalf("softmax naive=%v diverges", naive)
		}
	}
	// The optimized kernel must not keep global scratchpads.
	op, _ := Softmax("sm2", 10, false, ConvIO{})
	if len(op.Kernel.Args) != 2 {
		t.Fatalf("optimized softmax should have in+out args only, got %d", len(op.Kernel.Args))
	}
}

func TestPad2DMatchesReference(t *testing.T) {
	spec := PadSpec{Name: "pad", C: 3, H: 6, W: 6, P: 2}
	in := seeded(3, 6, 6)
	op, err := Pad2D(spec, ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	got := runOp(t, op, in, nil, nil, nil)
	if !tensor.AllClose(got, cpuref.Pad2D(in, 2), 0) {
		t.Fatal("pad diverges")
	}
	// The generated kernel uses modulo addressing (the inefficiency the
	// thesis measures at 12-20% of runtime).
	mods := 0
	ir.WalkExprs(op.Kernel.Body, func(e ir.Expr) {
		if b, ok := e.(*ir.Binary); ok && b.Op == ir.Mod {
			mods++
		}
	})
	if mods == 0 {
		t.Fatal("pad kernel must use modulo addressing (TVM's form)")
	}
}

func TestFullyChannelizedPipelineLeNetFragment(t *testing.T) {
	// conv -> autorun pool -> dense -> softmax via channels, functionally
	// identical to the buffered path.
	c1 := &ir.Channel{Name: "p0", Depth: 1024}
	c2 := &ir.Channel{Name: "p1", Depth: 1024}
	c3 := &ir.Channel{Name: "p2", Depth: 256}

	convSpec := ConvSpec{Name: "conv", C1: 1, H: 12, W: 12, C2: 4, F: 3, S: 1, Relu: true, Bias: true}
	conv, err := Conv2D(convSpec, OptSched(1, 1, 1), ConvIO{OutCh: c1})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := Pool2D(PoolSpec{Name: "pool", C: 4, H: 10, W: 10, F: 2, S: 2},
		false, ConvIO{InCh: c1, OutCh: c2}, true)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Dense(DenseSpec{Name: "fc", N: 4 * 5 * 5, M: 10, Bias: true},
		false, 4, ConvIO{InCh: c2, OutCh: c3})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Softmax("sm", 10, false, ConvIO{InCh: c3})
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Kernel.Autorun {
		t.Fatal("pool must be autorun")
	}

	in := seeded(1, 12, 12)
	cw, cb := seeded(4, 1, 3, 3), seeded(4)
	dw, db := seeded(10, 100), seeded(10)

	m := sim.NewMachine()
	m.Bind(conv.In, in.Data)
	m.Bind(conv.Weights, cw.Data)
	m.Bind(conv.Bias, cb.Data)
	m.Bind(dense.Weights, dw.Data)
	m.Bind(dense.Bias, db.Data)
	out := tensor.New(10)
	m.Bind(sm.Out, out.Data)
	err = m.RunGraph([]*ir.Kernel{conv.Kernel, pool.Kernel, dense.Kernel, sm.Kernel}, nil)
	if err != nil {
		t.Fatal(err)
	}

	ref := cpuref.Softmax(cpuref.Dense(
		cpuref.MaxPool2D(cpuref.Conv2D(in, cw, cb, 1, 0, true), 2, 2).Reshape(100),
		dw, db, false))
	if !tensor.AllClose(out, ref, 1e-4) {
		t.Fatalf("pipelined LeNet fragment diverges: %v", tensor.MaxAbsDiff(out, ref))
	}
}

func TestChannelizedConvRequiresUntiledOutput(t *testing.T) {
	spec := ConvSpec{Name: "c", C1: 4, H: 16, W: 16, C2: 4, F: 3, S: 1}
	ch := &ir.Channel{Name: "c0"}
	if _, err := Conv2D(spec, OptSched(7, 1, 1), ConvIO{OutCh: ch}); err == nil {
		t.Fatal("channelized conv with W2vec>1 must be rejected (element order)")
	}
}

func TestParamConvMatchesReferenceAcrossLayers(t *testing.T) {
	pc, err := ConvParam("p3x3", 3, 1, OptSched(1, 2, 4), true, false, false, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range []struct{ c1, h, w, c2 int }{
		{4, 10, 10, 4}, {8, 9, 9, 6}, {4, 16, 16, 8},
	} {
		bind, err := pc.Bind(layer.c1, layer.h, layer.w, layer.c2)
		if err != nil {
			t.Fatal(err)
		}
		in := seeded(layer.c1, layer.h, layer.w)
		w := seeded(layer.c2, layer.c1, 3, 3)
		m := sim.NewMachine()
		m.Bind(pc.Op.In, in.Data)
		m.Bind(pc.Op.Weights, w.Data)
		h2, w2 := (layer.h-3)+1, (layer.w-3)+1
		out := tensor.New(layer.c2, h2, w2)
		m.Bind(pc.Op.Out, out.Data)
		if err := m.Run(pc.Op.Kernel, bind); err != nil {
			t.Fatal(err)
		}
		want := cpuref.Conv2D(in, w, nil, 1, 0, true)
		if !tensor.AllClose(out, want, 1e-4) {
			t.Fatalf("param conv diverges on layer %+v", layer)
		}
	}
	// Non-divisible layer rejected at bind time.
	if _, err := pc.Bind(5, 10, 10, 4); err == nil {
		t.Fatal("bind must check divisibility")
	}
}

func TestParamDepthwiseAndDense(t *testing.T) {
	pd, err := DepthwiseParam("pdw", 3, 2, 1, true, false, true)
	if err != nil {
		t.Fatal(err)
	}
	in, w := seeded(4, 11, 11), seeded(4, 3, 3)
	bind, err := pd.Bind(4, 11, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine()
	m.Bind(pd.Op.In, in.Data)
	m.Bind(pd.Op.Weights, w.Data)
	out := tensor.New(4, 5, 5)
	m.Bind(pd.Op.Out, out.Data)
	if err := m.Run(pd.Op.Kernel, bind); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(out, cpuref.DepthwiseConv2D(in, w, nil, 2, 0, true), 1e-4) {
		t.Fatal("param depthwise diverges")
	}

	pdn, err := DenseParam("pfc", 8, false, true, true)
	if err != nil {
		t.Fatal(err)
	}
	din, dw, db := seeded(32), seeded(10, 32), seeded(10)
	dbind, err := pdn.Bind(32, 10)
	if err != nil {
		t.Fatal(err)
	}
	m2 := sim.NewMachine()
	m2.Bind(pdn.Op.In, din.Data)
	m2.Bind(pdn.Op.Weights, dw.Data)
	m2.Bind(pdn.Op.Bias, db.Data)
	dout := tensor.New(10)
	m2.Bind(pdn.Op.Out, dout.Data)
	if err := m2.Run(pdn.Op.Kernel, dbind); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(dout, cpuref.Dense(din, dw, db, false), 1e-4) {
		t.Fatal("param dense diverges")
	}
}

func TestParamPadAndPool(t *testing.T) {
	pp, err := PadParam("ppad", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	in := seeded(3, 7, 7)
	m := sim.NewMachine()
	m.Bind(pp.Op.In, in.Data)
	out := tensor.New(3, 9, 9)
	m.Bind(pp.Op.Out, out.Data)
	if err := m.Run(pp.Op.Kernel, pp.Bind(3, 7, 7)); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(out, cpuref.Pad2D(in, 1), 0) {
		t.Fatal("param pad diverges")
	}

	pl, err := PoolParam("ppool", 3, 2, false, true)
	if err != nil {
		t.Fatal(err)
	}
	pin := seeded(2, 11, 11)
	m3 := sim.NewMachine()
	m3.Bind(pl.Op.In, pin.Data)
	pout := tensor.New(2, 5, 5)
	m3.Bind(pl.Op.Out, pout.Data)
	if err := m3.Run(pl.Op.Kernel, pl.Bind(2, 11, 11)); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(pout, cpuref.MaxPool2D(pin, 3, 2), 1e-5) {
		t.Fatal("param pool diverges")
	}

	avg, err := PoolParam("pavg", 7, 1, true, true)
	if err != nil {
		t.Fatal(err)
	}
	ain := seeded(3, 7, 7)
	m4 := sim.NewMachine()
	m4.Bind(avg.Op.In, ain.Data)
	aout := tensor.New(3, 1, 1)
	m4.Bind(avg.Op.Out, aout.Data)
	if err := m4.Run(avg.Op.Kernel, avg.Bind(3, 7, 7)); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(aout, cpuref.AvgPool2D(ain, 7, 1), 1e-5) {
		t.Fatal("param avgpool diverges")
	}
}

func TestParamConvResidual(t *testing.T) {
	pc, err := ConvParam("p3x3r", 3, 1, OptSched(1, 1, 2), true, false, true, true)
	if err != nil {
		t.Fatal(err)
	}
	in := seeded(4, 10, 10)
	w := seeded(4, 4, 3, 3)
	skip := seeded(4, 8, 8)
	bind, err := pc.Bind(4, 10, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine()
	m.Bind(pc.Op.In, in.Data)
	m.Bind(pc.Op.Weights, w.Data)
	m.Bind(pc.Op.Skip, skip.Data)
	out := tensor.New(4, 8, 8)
	m.Bind(pc.Op.Out, out.Data)
	if err := m.Run(pc.Op.Kernel, bind); err != nil {
		t.Fatal(err)
	}
	want := cpuref.ReLU(cpuref.Add(cpuref.Conv2D(in, w, nil, 1, 0, false), skip))
	if !tensor.AllClose(out, want, 1e-4) {
		t.Fatal("param residual conv diverges")
	}
}

func TestFLOPCounts(t *testing.T) {
	c := ConvSpec{C1: 64, H: 58, W: 58, C2: 64, F: 3, S: 1}
	// 2 * 64*56*56*64*9
	if got, want := c.FLOPCount(), int64(2*64*56*56*64*9); got != want {
		t.Fatalf("conv FLOPs = %d, want %d", got, want)
	}
	d := DenseSpec{N: 400, M: 120}
	if d.FLOPCount() != 96000 {
		t.Fatalf("dense FLOPs = %d", d.FLOPCount())
	}
	dw := DepthwiseSpec{C: 32, H: 114, W: 114, F: 3, S: 1}
	if got, want := dw.FLOPCount(), int64(2*32*112*112*9); got != want {
		t.Fatalf("dw FLOPs = %d, want %d", got, want)
	}
}

func TestParamWorkaroundControlsStrideFlag(t *testing.T) {
	with, _ := ConvParam("wa", 1, 1, OptSched(7, 2, 4), false, false, false, true)
	without, _ := ConvParam("nowa", 1, 1, OptSched(7, 2, 4), false, false, false, false)
	if with.Op.In.ExplicitStrides || !without.Op.In.ExplicitStrides {
		t.Fatal("workaround flag must control ExplicitStrides")
	}
}

func TestConvReLU6(t *testing.T) {
	// MobileNetV1's actual activation (Eq. 2.3): min(max(x,0),6), fused into
	// the convolution output.
	spec := ConvSpec{Name: "c6", C1: 2, H: 8, W: 8, C2: 2, F: 3, S: 1, Relu6: true, Bias: true}
	in, w, b := seeded(2, 8, 8), seeded(2, 2, 3, 3), seeded(2)
	// Scale the bias up so some outputs exceed 6 and the clamp is exercised.
	for i := range b.Data {
		b.Data[i] = b.Data[i]*2 + 5
	}
	op, err := Conv2D(spec, OptSched(1, 1, 1), ConvIO{})
	if err != nil {
		t.Fatal(err)
	}
	got := runOp(t, op, in, w, b, nil)
	want := cpuref.ReLU6(cpuref.Conv2D(in, w, b, 1, 0, false))
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("relu6 conv diverges: %v", tensor.MaxAbsDiff(got, want))
	}
	clamped := false
	for _, v := range got.Data {
		if v == 6 {
			clamped = true
		}
	}
	if !clamped {
		t.Fatal("test data never hit the clamp; strengthen the bias")
	}
}

func TestParamConvReLU6(t *testing.T) {
	pc, err := ConvParamAct("p6", 1, 1, OptSched(1, 2, 2), false, true, true, false, true)
	if err != nil {
		t.Fatal(err)
	}
	in := seeded(4, 6, 6)
	w := seeded(4, 4, 1, 1)
	b := seeded(4)
	for i := range b.Data {
		b.Data[i] = b.Data[i] + 6
	}
	bind, err := pc.Bind(4, 6, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine()
	m.Bind(pc.Op.In, in.Data)
	m.Bind(pc.Op.Weights, w.Data)
	m.Bind(pc.Op.Bias, b.Data)
	out := tensor.New(4, 6, 6)
	m.Bind(pc.Op.Out, out.Data)
	if err := m.Run(pc.Op.Kernel, bind); err != nil {
		t.Fatal(err)
	}
	want := cpuref.ReLU6(cpuref.Conv2D(in, w, b, 1, 0, false))
	if !tensor.AllClose(out, want, 1e-4) {
		t.Fatal("param relu6 conv diverges")
	}
}
