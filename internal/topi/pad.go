package topi

import (
	"fmt"

	"repro/internal/ir"
)

// PadSpec describes the zero-padding layer TVM generates in front of
// padded convolutions.
type PadSpec struct {
	Name string
	C    int
	H, W int // unpadded input dims
	P    int // pad width on every spatial side
}

// Pad2D generates the padding kernel. The generated form follows what the
// thesis observes TVM emitting (§6.3.2): a single flattened loop using
// integer division/modulo to recover coordinates and a conditional select
// between the input value and zero — "efficient in other platforms, but does
// not generate efficient hardware".
func Pad2D(spec PadSpec, io ConvIO) (*Op, error) {
	if spec.P < 1 {
		return nil, fmt.Errorf("topi: pad %s needs positive pad width", spec.Name)
	}
	hp, wp := spec.H+2*spec.P, spec.W+2*spec.P
	op := &Op{OutShape: []int{spec.C, hp, wp}, InCh: io.InCh, OutCh: io.OutCh}
	args := []*ir.Buffer{}
	var in *ir.Buffer
	var prologue ir.Stmt
	if io.InCh != nil {
		in = ir.NewBuffer(spec.Name+"_inl", ir.Local, spec.C, spec.H, spec.W)
		prologue = ir.Seq(&ir.Alloc{Buf: in}, chanReadInto(io.InCh, in, []int{spec.C, spec.H, spec.W}))
	} else {
		in = ir.NewBuffer(spec.Name+"_in", ir.Global, spec.C, spec.H, spec.W)
		op.In = in
		args = append(args, in)
	}
	var out *ir.Buffer
	if io.OutCh == nil {
		out = ir.NewBuffer(spec.Name+"_out", ir.Global, spec.C, hp, wp)
		op.Out = out
		args = append(args, out)
	}

	i := ir.V("i")
	cs := func(v int) ir.Expr { return ir.CInt(int64(v)) }
	plane := hp * wp
	c := ir.DivE(i, cs(plane))
	rem := ir.ModE(i, cs(plane))
	y := ir.DivE(rem, cs(wp))
	x := ir.ModE(rem, cs(wp))
	inBounds := &ir.Binary{Op: ir.And,
		A: &ir.Binary{Op: ir.And,
			A: &ir.Binary{Op: ir.GE, A: y, B: cs(spec.P)},
			B: &ir.Binary{Op: ir.LT, A: y, B: cs(spec.P + spec.H)}},
		B: &ir.Binary{Op: ir.And,
			A: &ir.Binary{Op: ir.GE, A: x, B: cs(spec.P)},
			B: &ir.Binary{Op: ir.LT, A: x, B: cs(spec.P + spec.W)}}}
	val := &ir.Select{Cond: inBounds,
		A: &ir.Load{Buf: in, Index: []ir.Expr{c, ir.SubE(y, cs(spec.P)), ir.SubE(x, cs(spec.P))}},
		B: ir.CFloat(0)}
	var write ir.Stmt
	if io.OutCh != nil {
		write = &ir.ChannelWrite{Ch: io.OutCh, Value: val}
	} else {
		write = &ir.Store{Buf: out, Index: []ir.Expr{c, y, x}, Value: val}
	}
	op.Kernel = &ir.Kernel{Name: spec.Name, Args: args,
		Body: ir.Seq(prologue, ir.Loop(i, spec.C*plane, write))}
	return op, op.Kernel.Validate()
}
