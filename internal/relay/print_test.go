package relay

import (
	"strings"
	"testing"
)

func TestDumpGraphRendersNodesAndEdges(t *testing.T) {
	g := smallGraph()
	out := DumpGraph(g)
	for _, want := range []string{"input()", "conv2d(", "batch_norm(", "relu(", "softmax(", "output: %"} {
		if !strings.Contains(out, want) {
			t.Fatalf("graph dump missing %q:\n%s", want, out)
		}
	}
	// Edges reference producing node IDs.
	if !strings.Contains(out, "(%0)") {
		t.Fatalf("graph dump missing input edge:\n%s", out)
	}
}

func TestDumpLayersShowsFusionFlags(t *testing.T) {
	g := NewGraph()
	x := g.Input(4, 8, 8)
	skip := x
	y := g.ReLU(g.Conv(x, "a", 4, 3, 1, 1))
	y = g.Conv(y, "b", 4, 3, 1, 1)
	g.ReLU(g.Add(y, skip))
	g.InitWeights(1)
	layers, err := Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	out := DumpLayers(layers)
	if !strings.Contains(out, "+relu") || !strings.Contains(out, "+skip(L-1)") || !strings.Contains(out, "+bias") {
		t.Fatalf("layer dump missing fusion flags:\n%s", out)
	}
}
