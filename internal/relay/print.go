package relay

import (
	"fmt"
	"strings"
)

// DumpGraph renders the operator graph before fusion, one node per line —
// the Relay-IR view of the imported model.
func DumpGraph(g *Graph) string {
	var b strings.Builder
	for _, n := range g.Nodes {
		ins := make([]string, len(n.Inputs))
		for i, in := range n.Inputs {
			ins[i] = fmt.Sprintf("%%%d", in.ID)
		}
		attr := ""
		switch n.Kind {
		case KConv, KDepthwise:
			attr = fmt.Sprintf(" f=%d s=%d c2=%d", n.F, n.S, n.C2)
		case KMaxPool, KAvgPool:
			attr = fmt.Sprintf(" f=%d s=%d", n.F, n.S)
		case KPad:
			attr = fmt.Sprintf(" p=%d", n.P)
		case KDense:
			attr = fmt.Sprintf(" units=%d", n.Units)
		}
		fmt.Fprintf(&b, "%%%-3d = %s(%s)%s -> %v", n.ID, n.Kind, strings.Join(ins, ", "), attr, n.OutShape)
		if n.Name != "" && !strings.HasPrefix(n.Name, n.Kind.String()) {
			fmt.Fprintf(&b, "  // %s", n.Name)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "output: %%%d\n", g.Output.ID)
	return b.String()
}

// DumpLayers renders the fused layer sequence — the post-fusion view that
// maps one-to-one onto generated kernels.
func DumpLayers(layers []*Layer) string {
	var b strings.Builder
	for i, l := range layers {
		flags := ""
		if l.Relu {
			flags += " +relu"
		}
		if l.Relu6 {
			flags += " +relu6"
		}
		if l.HasSkip {
			flags += fmt.Sprintf(" +skip(L%d)", l.Skip)
		}
		if l.B != nil {
			flags += " +bias"
		}
		fmt.Fprintf(&b, "L%-3d %-18s %-16s in=L%-3d %v -> %v%s\n",
			i, l.Name, l.Kind.String(), l.In, l.InShape, l.OutShape, flags)
	}
	return b.String()
}
