// Package relay is this flow's graph-level IR, mirroring the role TVM's
// Relay plays in the thesis (§2.5, §3.1): models imported from a framework
// become a dataflow graph of operators; graph passes fuse injective
// operators (bias-add, batch-norm, ReLU, residual add) into the complex
// operator that precedes them; and the fused graph lowers to a sequence of
// layer descriptors, one generated kernel per descriptor (one each for every
// convolution, dense, padding and softmax layer — §3.1).
package relay

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Kind enumerates operator kinds.
type Kind int

const (
	KInput Kind = iota
	KConv
	KDepthwise
	KDense
	KMaxPool
	KAvgPool
	KSoftmax
	KReLU
	KReLU6
	KAdd
	KPad
	KFlatten
	KBatchNorm
	// KConcat concatenates feature maps along the channel axis — the
	// Inception-style operator used to demonstrate that new operators only
	// need a compute definition and a schedule (§1.1, §3.1).
	KConcat
)

func (k Kind) String() string {
	switch k {
	case KInput:
		return "input"
	case KConv:
		return "conv2d"
	case KDepthwise:
		return "depthwise_conv2d"
	case KDense:
		return "dense"
	case KMaxPool:
		return "max_pool2d"
	case KAvgPool:
		return "avg_pool2d"
	case KSoftmax:
		return "softmax"
	case KReLU:
		return "relu"
	case KReLU6:
		return "relu6"
	case KAdd:
		return "add"
	case KPad:
		return "pad"
	case KFlatten:
		return "flatten"
	case KBatchNorm:
		return "batch_norm"
	case KConcat:
		return "concat"
	}
	return "?"
}

// Node is one operator in the graph.
type Node struct {
	ID     int
	Kind   Kind
	Name   string
	Inputs []*Node

	// Operator attributes (meaning depends on Kind).
	C2, F, S, P int // filters / window, stride, pad
	Units       int // dense output size

	OutShape []int

	// Parameters.
	W, B *tensor.Tensor
	// BatchNorm folded statistics: gamma/sqrt(var+eps) and beta-mean*scale.
	Scale, Shift *tensor.Tensor
}

// Graph is a single-output operator DAG under construction.
type Graph struct {
	Nodes  []*Node
	Output *Node

	// err records the first construction mistake (shape mismatch, empty
	// output, ...). Builder methods keep returning usable nodes so fluent
	// construction chains don't need per-call error checks; Lower surfaces
	// the deferred error before any kernel is generated.
	err error
}

// NewGraph creates an empty graph.
func NewGraph() *Graph { return &Graph{} }

// Err returns the first graph-construction error, or nil.
func (g *Graph) Err() error { return g.err }

func (g *Graph) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf(format, args...)
	}
}

func (g *Graph) add(n *Node) *Node {
	n.ID = len(g.Nodes)
	if n.Name == "" {
		n.Name = fmt.Sprintf("%s_%d", n.Kind, n.ID)
	}
	g.Nodes = append(g.Nodes, n)
	g.Output = n
	return n
}

// Input declares the network input [C,H,W].
func (g *Graph) Input(c, h, w int) *Node {
	return g.add(&Node{Kind: KInput, OutShape: []int{c, h, w}})
}

// Pad zero-pads spatial dims by p.
func (g *Graph) Pad(x *Node, p int) *Node {
	s := x.OutShape
	return g.add(&Node{Kind: KPad, Inputs: []*Node{x}, P: p,
		OutShape: []int{s[0], s[1] + 2*p, s[2] + 2*p}})
}

// Conv adds a 2-D convolution (c2 filters, f×f, stride s, pad p). Padding is
// materialized as a distinct Pad node, as TVM's lowering does.
func (g *Graph) Conv(x *Node, name string, c2, f, s, p int) *Node {
	if p > 0 {
		x = g.Pad(x, p)
	}
	in := x.OutShape
	h2 := (in[1]-f)/s + 1
	w2 := (in[2]-f)/s + 1
	if h2 < 1 || w2 < 1 {
		g.fail("relay: conv %s output empty (input %v, filter %d, stride %d)", name, in, f, s)
		h2, w2 = 1, 1
	}
	return g.add(&Node{Kind: KConv, Name: name, Inputs: []*Node{x},
		C2: c2, F: f, S: s, OutShape: []int{c2, h2, w2}})
}

// Depthwise adds a depthwise convolution.
func (g *Graph) Depthwise(x *Node, name string, f, s, p int) *Node {
	if p > 0 {
		x = g.Pad(x, p)
	}
	in := x.OutShape
	h2 := (in[1]-f)/s + 1
	w2 := (in[2]-f)/s + 1
	return g.add(&Node{Kind: KDepthwise, Name: name, Inputs: []*Node{x},
		C2: in[0], F: f, S: s, OutShape: []int{in[0], h2, w2}})
}

// BatchNorm adds an inference-mode batch normalization (folded into the
// preceding convolution by the fusion pass).
func (g *Graph) BatchNorm(x *Node, name string) *Node {
	return g.add(&Node{Kind: KBatchNorm, Name: name, Inputs: []*Node{x},
		OutShape: x.OutShape})
}

// ReLU adds an activation.
func (g *Graph) ReLU(x *Node) *Node {
	return g.add(&Node{Kind: KReLU, Inputs: []*Node{x}, OutShape: x.OutShape})
}

// ReLU6 adds the clamped activation MobileNetV1 uses (Eq. 2.3).
func (g *Graph) ReLU6(x *Node) *Node {
	return g.add(&Node{Kind: KReLU6, Inputs: []*Node{x}, OutShape: x.OutShape})
}

// Add adds a residual connection a+b.
func (g *Graph) Add(a, b *Node) *Node {
	if fmt.Sprint(a.OutShape) != fmt.Sprint(b.OutShape) {
		g.fail("relay: add shape mismatch %v vs %v", a.OutShape, b.OutShape)
	}
	return g.add(&Node{Kind: KAdd, Inputs: []*Node{a, b}, OutShape: a.OutShape})
}

// Concat concatenates two or more feature maps along the channel axis; the
// spatial dims must match.
func (g *Graph) Concat(xs ...*Node) *Node {
	if len(xs) == 0 {
		g.fail("relay: concat needs at least two inputs")
		return g.add(&Node{Kind: KConcat, OutShape: []int{1, 1, 1}})
	}
	if len(xs) < 2 {
		g.fail("relay: concat needs at least two inputs")
	}
	h, w := xs[0].OutShape[1], xs[0].OutShape[2]
	c := 0
	for _, x := range xs {
		if x.OutShape[1] != h || x.OutShape[2] != w {
			g.fail("relay: concat spatial mismatch %v vs %v", xs[0].OutShape, x.OutShape)
			continue
		}
		c += x.OutShape[0]
	}
	return g.add(&Node{Kind: KConcat, Inputs: xs, OutShape: []int{c, h, w}})
}

// MaxPool adds max pooling. Zero padding before max pooling is only sound
// for non-negative activations; callers place it after ReLU, as ResNet does.
func (g *Graph) MaxPool(x *Node, f, s, p int) *Node {
	if p > 0 {
		x = g.Pad(x, p)
	}
	in := x.OutShape
	return g.add(&Node{Kind: KMaxPool, Inputs: []*Node{x}, F: f, S: s,
		OutShape: []int{in[0], (in[1]-f)/s + 1, (in[2]-f)/s + 1}})
}

// AvgPool adds average pooling.
func (g *Graph) AvgPool(x *Node, f, s int) *Node {
	in := x.OutShape
	return g.add(&Node{Kind: KAvgPool, Inputs: []*Node{x}, F: f, S: s,
		OutShape: []int{in[0], (in[1]-f)/s + 1, (in[2]-f)/s + 1}})
}

// Flatten reshapes to a vector.
func (g *Graph) Flatten(x *Node) *Node {
	n := 1
	for _, d := range x.OutShape {
		n *= d
	}
	return g.add(&Node{Kind: KFlatten, Inputs: []*Node{x}, OutShape: []int{n}})
}

// Dense adds a fully-connected layer with units outputs.
func (g *Graph) Dense(x *Node, name string, units int) *Node {
	if len(x.OutShape) != 1 {
		g.fail("relay: dense %s requires flattened input, got shape %v", name, x.OutShape)
	}
	return g.add(&Node{Kind: KDense, Name: name, Inputs: []*Node{x}, Units: units,
		OutShape: []int{units}})
}

// Softmax adds the output activation.
func (g *Graph) Softmax(x *Node) *Node {
	return g.add(&Node{Kind: KSoftmax, Inputs: []*Node{x}, OutShape: x.OutShape})
}

// InitWeights fills every parameterized node with deterministic synthetic
// weights, scaled He-style (1/sqrt(fan-in)) so activations stay bounded
// through deep networks. This replaces the pretrained Keras parameters the
// thesis loads (the values do not affect timing, §6.1.1).
func (g *Graph) InitWeights(seed uint64) {
	for _, n := range g.Nodes {
		switch n.Kind {
		case KConv:
			c1 := n.Inputs[0].OutShape[0]
			n.W = tensor.New(n.C2, c1, n.F, n.F)
			n.W.FillSeq(seed + uint64(n.ID))
			scaleT(n.W, 1/math.Sqrt(float64(c1*n.F*n.F)))
			n.B = tensor.New(n.C2)
			n.B.FillSeq(seed + uint64(n.ID) + 1000)
			scaleT(n.B, 0.1)
		case KDepthwise:
			c := n.Inputs[0].OutShape[0]
			n.W = tensor.New(c, n.F, n.F)
			n.W.FillSeq(seed + uint64(n.ID))
			scaleT(n.W, 1/math.Sqrt(float64(n.F*n.F)))
			n.B = tensor.New(c)
			n.B.FillSeq(seed + uint64(n.ID) + 1000)
			scaleT(n.B, 0.1)
		case KDense:
			nIn := n.Inputs[0].OutShape[0]
			n.W = tensor.New(n.Units, nIn)
			n.W.FillSeq(seed + uint64(n.ID))
			scaleT(n.W, 1/math.Sqrt(float64(nIn)))
			n.B = tensor.New(n.Units)
			n.B.FillSeq(seed + uint64(n.ID) + 1000)
			scaleT(n.B, 0.1)
		case KBatchNorm:
			c := n.Inputs[0].OutShape[0]
			n.Scale = tensor.New(c)
			n.Shift = tensor.New(c)
			n.Scale.FillSeq(seed + uint64(n.ID))
			n.Shift.FillSeq(seed + uint64(n.ID) + 1000)
			for i := range n.Scale.Data {
				// Keep scales near 1 and shifts small.
				n.Scale.Data[i] = 1 + 0.1*n.Scale.Data[i]
				n.Shift.Data[i] *= 0.1
			}
		}
	}
}

func scaleT(t *tensor.Tensor, s float64) {
	for i := range t.Data {
		t.Data[i] *= float32(s)
	}
}

// Params counts trainable parameters (weights + biases), the figure the
// thesis reports per network (e.g. 60K for LeNet, 4.2M for MobileNetV1).
func (g *Graph) Params() int64 {
	var n int64
	for _, node := range g.Nodes {
		if node.W != nil {
			n += int64(node.W.Len())
		}
		if node.B != nil {
			n += int64(node.B.Len())
		}
	}
	return n
}

// FLOPs counts floating operations per forward pass as the thesis does
// (§6.1.2): 2 ops per multiply-accumulate, over convolution, depthwise and
// dense layers.
func (g *Graph) FLOPs() int64 {
	var n int64
	for _, node := range g.Nodes {
		switch node.Kind {
		case KConv:
			c1 := node.Inputs[0].OutShape[0]
			n += 2 * int64(node.C2) * int64(node.OutShape[1]) * int64(node.OutShape[2]) *
				int64(c1) * int64(node.F) * int64(node.F)
		case KDepthwise:
			n += 2 * int64(node.OutShape[0]) * int64(node.OutShape[1]) * int64(node.OutShape[2]) *
				int64(node.F) * int64(node.F)
		case KDense:
			n += 2 * int64(node.Units) * int64(node.Inputs[0].OutShape[0])
		}
	}
	return n
}
