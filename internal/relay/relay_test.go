package relay

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cpuref"
	"repro/internal/tensor"
)

func smallGraph() *Graph {
	g := NewGraph()
	x := g.Input(3, 10, 10)
	x = g.ReLU(g.BatchNorm(g.Conv(x, "c1", 4, 3, 1, 1), "bn1"))
	x = g.MaxPool(x, 2, 2, 0)
	x = g.Flatten(x)
	x = g.Dense(x, "fc", 7)
	x = g.Softmax(x)
	g.InitWeights(9)
	return g
}

func TestShapeInference(t *testing.T) {
	g := smallGraph()
	// conv with pad 1 keeps 10x10, pool halves to 5x5, flatten 100, dense 7.
	out := g.Output
	if out.OutShape[0] != 7 {
		t.Fatalf("output shape = %v", out.OutShape)
	}
	var pads, convs int
	for _, n := range g.Nodes {
		switch n.Kind {
		case KPad:
			pads++
		case KConv:
			convs++
			if n.Inputs[0].Kind != KPad {
				t.Fatal("padded conv must consume a pad node")
			}
		}
	}
	if pads != 1 || convs != 1 {
		t.Fatalf("pads=%d convs=%d", pads, convs)
	}
}

func TestLowerFusesInjectiveOps(t *testing.T) {
	g := smallGraph()
	layers, err := Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: pad, conv(relu, BN folded), pool, flatten, dense, softmax = 6.
	if len(layers) != 6 {
		names := []string{}
		for _, l := range layers {
			names = append(names, l.Kind.String())
		}
		t.Fatalf("lowered to %d layers: %s", len(layers), strings.Join(names, ","))
	}
	conv := layers[1]
	if conv.Kind != KConv || !conv.Relu {
		t.Fatal("relu must fuse into conv")
	}
	if conv.B == nil {
		t.Fatal("BN folding must produce a bias")
	}
}

func TestBatchNormFoldingNumerics(t *testing.T) {
	g := smallGraph()
	layers, err := Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(3, 10, 10)
	in.FillSeq(3)
	got, err := Execute(layers, in)
	if err != nil {
		t.Fatal(err)
	}
	// Manual reference: pad, conv, then explicit BN scale/shift, relu...
	var convN, bnN *Node
	for _, n := range g.Nodes {
		if n.Kind == KConv {
			convN = n
		}
		if n.Kind == KBatchNorm {
			bnN = n
		}
	}
	x := cpuref.Conv2D(cpuref.Pad2D(in, 1), convN.W, convN.B, 1, 0, false)
	for k := 0; k < 4; k++ {
		for i := 0; i < 10*10; i++ {
			x.Data[k*100+i] = x.Data[k*100+i]*bnN.Scale.At(k) + bnN.Shift.At(k)
		}
	}
	x = cpuref.ReLU(x)
	x = cpuref.MaxPool2D(x, 2, 2)
	var fcN *Node
	for _, n := range g.Nodes {
		if n.Kind == KDense {
			fcN = n
		}
	}
	want := cpuref.Softmax(cpuref.Dense(x.Reshape(100), fcN.W, fcN.B, false))
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("BN folding diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestResidualFusion(t *testing.T) {
	g := NewGraph()
	x := g.Input(4, 8, 8)
	skip := x
	y := g.ReLU(g.Conv(x, "a", 4, 3, 1, 1))
	y = g.Conv(y, "b", 4, 3, 1, 1)
	out := g.ReLU(g.Add(y, skip))
	_ = out
	g.InitWeights(5)
	layers, err := Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	var convB *Layer
	for _, l := range layers {
		if l.Name == "b" {
			convB = l
		}
	}
	if convB == nil {
		t.Fatal("missing conv b")
	}
	if !convB.HasSkip || convB.Skip != -1 {
		t.Fatalf("skip should reference the network input (HasSkip, -1), got %v %d", convB.HasSkip, convB.Skip)
	}
	if !convB.Relu {
		t.Fatal("relu after add must fuse into the anchored conv")
	}
	// Numerics.
	in := tensor.New(4, 8, 8)
	in.FillSeq(11)
	got, err := Execute(layers, in)
	if err != nil {
		t.Fatal(err)
	}
	var na, nb *Node
	for _, n := range g.Nodes {
		if n.Name == "a" {
			na = n
		}
		if n.Name == "b" {
			nb = n
		}
	}
	t1 := cpuref.Conv2D(cpuref.Pad2D(in, 1), na.W, na.B, 1, 0, true)
	t2 := cpuref.Conv2D(cpuref.Pad2D(t1, 1), nb.W, nb.B, 1, 0, false)
	want := cpuref.ReLU(cpuref.Add(t2, in))
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("residual execution diverges: %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestLowerRequiresWeights(t *testing.T) {
	g := NewGraph()
	x := g.Input(1, 6, 6)
	g.Conv(x, "c", 2, 3, 1, 0)
	if _, err := Lower(g); err == nil || !strings.Contains(err.Error(), "InitWeights") {
		t.Fatalf("want missing-weights error, got %v", err)
	}
}

func TestParamsAndFLOPs(t *testing.T) {
	g := smallGraph()
	// conv: 4*3*3*3 + 4 = 112; dense: 7*100 + 7 = 707; BN adds none to
	// Params (scale/shift folded, not counted as W/B).
	if p := g.Params(); p != 112+707 {
		t.Fatalf("params = %d", p)
	}
	// conv flops: 2*4*10*10*3*9 = 21600; dense: 2*7*100 = 1400.
	if f := g.FLOPs(); f != 21600+1400 {
		t.Fatalf("flops = %d", f)
	}
}

func TestAddShapeMismatchDefersError(t *testing.T) {
	g := NewGraph()
	a := g.Input(2, 4, 4)
	b := g.Conv(a, "c", 3, 3, 1, 1)
	g.Add(a, b) // shape mismatch: must not panic, must poison the graph
	g.Softmax(g.Output)
	if g.Err() == nil || !strings.Contains(g.Err().Error(), "add shape mismatch") {
		t.Fatalf("want deferred add-shape error, got %v", g.Err())
	}
	g.InitWeights(1)
	if _, err := Lower(g); err == nil || !strings.Contains(err.Error(), "add shape mismatch") {
		t.Fatalf("Lower must surface the construction error, got %v", err)
	}
}

func TestGraphErrKeepsFirstCause(t *testing.T) {
	g := NewGraph()
	x := g.Input(1, 2, 2)
	g.Conv(x, "tiny", 4, 5, 1, 0) // 2x2 input, 5x5 filter: empty output
	y := g.Conv(g.Output, "n", 2, 1, 1, 0)
	g.Dense(y, "fc", 3) // unflattened input: second error
	if g.Err() == nil || !strings.Contains(g.Err().Error(), "output empty") {
		t.Fatalf("Err must keep the first cause, got %v", g.Err())
	}
	if _, err := Lower(g); err == nil {
		t.Fatal("Lower must reject a poisoned graph")
	}
}

func TestConcatConstructionErrors(t *testing.T) {
	g := NewGraph()
	a := g.Input(2, 4, 4)
	g.Concat(a) // single input
	if g.Err() == nil || !strings.Contains(g.Err().Error(), "two inputs") {
		t.Fatalf("want concat arity error, got %v", g.Err())
	}
	g2 := NewGraph()
	x := g2.Input(2, 4, 4)
	y := g2.MaxPool(x, 2, 2, 0) // 2x2x2: spatial mismatch with x
	g2.Concat(x, y)
	if g2.Err() == nil || !strings.Contains(g2.Err().Error(), "spatial mismatch") {
		t.Fatalf("want concat spatial error, got %v", g2.Err())
	}
}

func TestExecuteDeterministic(t *testing.T) {
	g := smallGraph()
	layers, _ := Lower(g)
	in := tensor.New(3, 10, 10)
	in.FillSeq(7)
	o1, _ := Execute(layers, in)
	o2, _ := Execute(layers, in)
	if tensor.MaxAbsDiff(o1, o2) != 0 {
		t.Fatal("execution must be deterministic")
	}
	if s := o1.Sum(); math.Abs(s-1) > 1e-4 {
		t.Fatalf("softmax output must sum to 1, got %v", s)
	}
}
