package relay

import (
	"fmt"

	"repro/internal/cpuref"
	"repro/internal/tensor"
)

// Layer is one lowered, fused layer: the unit that becomes a single OpenCL
// kernel invocation (§3.1: "a distinct kernel generated for each
// convolution, dense, padding, and softmax layer"). Injective operators
// (batch-norm, bias, ReLU, residual add) have been fused into their
// producing complex operator.
type Layer struct {
	Name string
	Kind Kind
	// In is the index of the producing layer in the lowered list (-1 means
	// the network input). Skip is the layer whose output is added before the
	// activation (fused residual; -1 refers to the network input); it is
	// only meaningful when HasSkip is set.
	In, Skip int
	HasSkip  bool
	// Ins lists all producing layers for multi-input layers (concat); for
	// those, In holds Ins[0].
	Ins      []int
	InShape  []int
	OutShape []int
	F, S, P  int
	Relu     bool
	Relu6    bool
	W, B     *tensor.Tensor
}

// FLOPs counts multiply+add ops for this layer.
func (l *Layer) FLOPs() int64 {
	switch l.Kind {
	case KConv:
		return 2 * int64(l.OutShape[0]) * int64(l.OutShape[1]) * int64(l.OutShape[2]) *
			int64(l.InShape[0]) * int64(l.F) * int64(l.F)
	case KDepthwise:
		return 2 * int64(l.OutShape[0]) * int64(l.OutShape[1]) * int64(l.OutShape[2]) *
			int64(l.F) * int64(l.F)
	case KDense:
		return 2 * int64(l.OutShape[0]) * int64(l.InShape[0])
	}
	return 0
}

// Lower runs operator fusion over the graph and returns the layer sequence.
// Weights must already be initialized (BN folding rewrites them).
func Lower(g *Graph) ([]*Layer, error) {
	if g.Output == nil {
		return nil, fmt.Errorf("relay: empty graph")
	}
	if err := g.Err(); err != nil {
		return nil, fmt.Errorf("relay: graph construction failed: %w", err)
	}
	var layers []*Layer
	layerOf := map[*Node]int{}
	consumers := map[*Node]int{}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			consumers[in]++
		}
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case KInput:
			layerOf[n] = -1
		case KConcat:
			l := &Layer{Name: n.Name, Kind: n.Kind, In: layerOf[n.Inputs[0]], Skip: -1,
				InShape: n.Inputs[0].OutShape, OutShape: n.OutShape}
			for _, in := range n.Inputs {
				l.Ins = append(l.Ins, layerOf[in])
			}
			layers = append(layers, l)
			layerOf[n] = len(layers) - 1
		case KPad, KMaxPool, KAvgPool, KFlatten, KSoftmax:
			l := &Layer{Name: n.Name, Kind: n.Kind, In: layerOf[n.Inputs[0]], Skip: -1,
				InShape: n.Inputs[0].OutShape, OutShape: n.OutShape, F: n.F, S: n.S, P: n.P}
			layers = append(layers, l)
			layerOf[n] = len(layers) - 1
		case KConv, KDepthwise, KDense:
			if n.W == nil {
				return nil, fmt.Errorf("relay: node %s has no weights; call InitWeights first", n.Name)
			}
			l := &Layer{Name: n.Name, Kind: n.Kind, In: layerOf[n.Inputs[0]], Skip: -1,
				InShape: n.Inputs[0].OutShape, OutShape: n.OutShape, F: n.F, S: n.S,
				W: n.W.Clone()}
			if n.B != nil {
				l.B = n.B.Clone()
			}
			layers = append(layers, l)
			layerOf[n] = len(layers) - 1
		case KBatchNorm:
			// Fold into the producing conv/depthwise layer (§3.1: batch
			// normalizations fused to the output of convolutions).
			idx := layerOf[n.Inputs[0]]
			if idx < 0 {
				return nil, fmt.Errorf("relay: batch_norm %s has no producing layer", n.Name)
			}
			l := layers[idx]
			if l.Kind != KConv && l.Kind != KDepthwise {
				return nil, fmt.Errorf("relay: cannot fold batch_norm into %s layer %s", l.Kind, l.Name)
			}
			foldBN(l, n.Scale, n.Shift)
			layerOf[n] = idx
		case KReLU, KReLU6:
			idx := layerOf[n.Inputs[0]]
			if idx < 0 {
				return nil, fmt.Errorf("relay: relu on network input")
			}
			switch layers[idx].Kind {
			case KConv, KDepthwise, KDense:
				if n.Kind == KReLU6 {
					layers[idx].Relu6 = true
				} else {
					layers[idx].Relu = true
				}
			default:
				return nil, fmt.Errorf("relay: cannot fuse relu into %s layer", layers[idx].Kind)
			}
			layerOf[n] = idx
		case KAdd:
			// Residual connection: fuse into whichever input is a
			// convolution layer that this add exclusively consumes.
			a, b := n.Inputs[0], n.Inputs[1]
			anchor, skip := a, b
			if !(layerIsConv(layers, layerOf[anchor]) && consumers[anchor] == 1) {
				anchor, skip = b, a
			}
			idx := layerOf[anchor]
			if !(layerIsConv(layers, idx) && consumers[anchor] == 1) {
				return nil, fmt.Errorf("relay: add %s has no fusible convolution input", n.Name)
			}
			if layers[idx].HasSkip {
				return nil, fmt.Errorf("relay: layer %s already has a fused residual", layers[idx].Name)
			}
			if layers[idx].Relu || layers[idx].Relu6 {
				return nil, fmt.Errorf("relay: residual must be added before the activation of %s", layers[idx].Name)
			}
			layers[idx].Skip = layerOf[skip]
			layers[idx].HasSkip = true
			layerOf[n] = idx
		default:
			return nil, fmt.Errorf("relay: cannot lower node kind %s", n.Kind)
		}
	}
	return layers, nil
}

func layerIsConv(layers []*Layer, idx int) bool {
	return idx >= 0 && (layers[idx].Kind == KConv || layers[idx].Kind == KDepthwise)
}

func foldBN(l *Layer, scale, shift *tensor.Tensor) {
	c2 := l.OutShape[0]
	per := l.W.Len() / c2
	for k := 0; k < c2; k++ {
		s := scale.At(k)
		for i := 0; i < per; i++ {
			l.W.Data[k*per+i] *= s
		}
		if l.B == nil {
			l.B = tensor.New(c2)
		}
		l.B.Data[k] = l.B.Data[k]*s + shift.At(k)
	}
}

// Execute runs the lowered layer sequence with the native references — the
// functional golden model for end-to-end checks (the stand-in for verifying
// accelerator output against Keras). Convolutions run serially (workers=1):
// Execute is called from inside already-parallel contexts (host.RunBatch
// workers, the serve ladder's cpuref rung, the fleet's last-resort device),
// where nesting a per-conv goroutine fan-out would oversubscribe the machine
// W-fold. Standalone callers that own the whole machine should use
// ExecuteWorkers.
func Execute(layers []*Layer, input *tensor.Tensor) (*tensor.Tensor, error) {
	return ExecuteWorkers(layers, input, 1)
}

// ExecuteWorkers is Execute with an explicit GEMM worker count for the
// convolution layers (<=0 selects GOMAXPROCS, capped; see cpuref.Conv2DGEMM).
// The row-panel split is static, so the output is bit-identical for every
// worker count. Pass workers=1 from any context that is itself running on a
// worker pool.
func ExecuteWorkers(layers []*Layer, input *tensor.Tensor, workers int) (*tensor.Tensor, error) {
	outs := make([]*tensor.Tensor, len(layers))
	get := func(idx int) *tensor.Tensor {
		if idx < 0 {
			return input
		}
		return outs[idx]
	}
	for i, l := range layers {
		in := get(l.In)
		var out *tensor.Tensor
		switch l.Kind {
		case KPad:
			out = cpuref.Pad2D(in, l.P)
		case KConv:
			out = cpuref.Conv2DGEMM(in, l.W, l.B, l.S, 0, false, workers)
			if l.HasSkip {
				out = cpuref.Add(out, get(l.Skip))
			}
			if l.Relu {
				out = cpuref.ReLU(out)
			}
			if l.Relu6 {
				out = cpuref.ReLU6(out)
			}
		case KDepthwise:
			out = cpuref.DepthwiseConv2D(in, l.W, l.B, l.S, 0, l.Relu)
			if l.Relu6 {
				out = cpuref.ReLU6(out)
			}
		case KDense:
			out = cpuref.Dense(in, l.W, l.B, l.Relu)
			if l.Relu6 {
				out = cpuref.ReLU6(out)
			}
		case KMaxPool:
			out = cpuref.MaxPool2D(in, l.F, l.S)
		case KAvgPool:
			out = cpuref.AvgPool2D(in, l.F, l.S)
		case KFlatten:
			out = in.Reshape(l.OutShape...)
		case KSoftmax:
			out = cpuref.Softmax(in)
		case KConcat:
			parts := make([]*tensor.Tensor, len(l.Ins))
			for i, idx := range l.Ins {
				parts[i] = get(idx)
			}
			out = cpuref.ConcatChannels(parts...)
		default:
			return nil, fmt.Errorf("relay: cannot execute layer kind %s", l.Kind)
		}
		outs[i] = out
	}
	return outs[len(outs)-1], nil
}
