package dse

// Exhaustive enumeration of the joint schedule space. This is the guided
// tier's ground truth on spaces small enough to enumerate (LeNet: hundreds
// of points): bench-dse compares the guided best against this best and gates
// the evaluation-count ratio in CI. On the large joint spaces (MobileNet:
// hundreds of thousands of points) it is deliberately unusable — that is the
// point of the guided tier.

import (
	"context"
	"runtime"
	"sort"
	"time"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/relay"
	"repro/internal/trace"
)

// ExploreJointWith exhaustively evaluates every bandwidth-feasible point of
// the joint schedule space in deterministic odometer order. Unlike
// ExploreWith, MaxCandidates <= 0 means *unbounded* (evaluate the whole
// feasible space); a positive value truncates enumeration after that many
// reserved slots. Determinism and cancellation follow ExploreWith: slot
// arrays plus a stable sort make the Result byte-identical for any worker
// count.
func ExploreJointWith(layers []*relay.Layer, net string, board *fpga.Board, opts Options) (*JointResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cache := opts.Cache
	if cache == nil && !opts.NoCache {
		cache = aoc.NewCompileCache()
	}
	if opts.Metrics != nil {
		cache.SetObserver(trace.CacheObserver{Reg: opts.Metrics})
	}
	hits0, misses0 := cache.Stats()
	t0 := time.Now()

	space := BuildSpace(layers, net)
	res := &JointResult{
		Result:    Result{Board: board, Net: net},
		SpaceSize: space.Size(),
		SpaceSig:  space.Sig(),
	}
	defer func() {
		hits1, misses1 := cache.Stats()
		res.CacheHits = hits1 - hits0
		res.CacheMisses = misses1 - misses0
		if m := opts.Metrics; m != nil {
			m.Counter("dse.evaluated").Add(int64(res.Evaluated))
			m.Counter("dse.pruned").Add(int64(res.Pruned))
			m.Counter("dse.pruned_bandwidth").Add(int64(res.PrunedBandwidth))
			m.Counter("dse.pruned_route").Add(int64(res.PrunedRoute))
			m.Counter("dse.cache_hits").Add(res.CacheHits)
			m.Counter("dse.cache_misses").Add(res.CacheMisses)
			m.Gauge("dse.cache_hit_ratio").Set(res.CacheHitRate())
			m.Gauge("dse.space_size").Set(float64(res.SpaceSize))
			if el := time.Since(t0).Seconds(); el > 0 {
				m.Gauge("dse.candidates_per_sec").Set(float64(res.Evaluated) / el)
			}
		}
	}()

	// Slot assignment: enumerate feasible points up front (cheap integer
	// work), so the parallel phase has exact accounting.
	var slots []Point
	space.Enumerate(func(p Point) bool {
		if ok, _ := space.Feasible(p, board); !ok {
			res.Pruned++
			res.PrunedBandwidth++
			return true
		}
		if opts.MaxCandidates > 0 && len(slots) >= opts.MaxCandidates {
			return false
		}
		slots = append(slots, p.Clone())
		return true
	})

	cands := make([]*Candidate, len(slots))
	done, errs := runJobs(ctx, len(slots), workers, func(i int) error {
		cand, err := evaluate(layers, space.Config(slots[i]), board, cache)
		if err != nil {
			return err
		}
		cands[i] = cand
		return nil
	})
	for i, err := range errs {
		if done[i] && err != nil {
			return nil, err
		}
	}
	for i, c := range cands {
		if done[i] && c != nil {
			res.Candidates = append(res.Candidates, *c)
			res.Evaluated++
		}
	}
	res.Canceled = ctx.Err() != nil

	sort.SliceStable(res.Candidates, func(i, j int) bool {
		a, b := res.Candidates[i], res.Candidates[j]
		if a.Synthesizable != b.Synthesizable {
			return a.Synthesizable
		}
		if !a.Synthesizable {
			return false
		}
		return a.TimeUS < b.TimeUS
	})
	return res, nil
}
