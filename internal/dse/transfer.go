package dse

// Cross-board transfer tuning. A guided run serializes its fitted cost model
// and top-K evaluation history keyed by the space signature; a later run on
// a *different* board warm-starts from it — population seeded from the top-K
// points, model seeded from the transferred weights — so the new search
// begins where the old one ended instead of from the heuristic. The space
// signature is board-independent (space.go), so the coordinate systems match
// whenever the same lowered network is searched; boards only differ in the
// Feasible screen and the evaluator, which is exactly what transfer re-learns.

import (
	"encoding/json"
	"fmt"
	"os"
)

// TransferModel is the serializable fitted cost model.
type TransferModel struct {
	TimeWeights []float64 `json:"time_weights,omitempty"`
	FeasWeights []float64 `json:"feas_weights,omitempty"`
	MaxTimeUS   float64   `json:"max_time_us,omitempty"`
}

// TransferEntry is one remembered evaluation.
type TransferEntry struct {
	Key           string  `json:"key"`
	TimeUS        float64 `json:"time_us"`
	Synthesizable bool    `json:"synthesizable"`
}

// TransferState is the serialized search state of one guided run: enough to
// warm-start another board's search on the same network.
type TransferState struct {
	Net      string          `json:"net"`
	Board    string          `json:"board"`
	SpaceSig string          `json:"space_sig"`
	Model    TransferModel   `json:"model"`
	TopK     []TransferEntry `json:"top_k"`
}

// TransferState extracts the serializable search state from a finished run,
// keeping the top k ranked candidates (all of them when k <= 0).
func (r *GuidedResult) TransferState(k int) *TransferState {
	t := &TransferState{
		Net:      r.Net,
		Board:    r.Board.Name,
		SpaceSig: r.SpaceSig,
		Model:    r.Model,
	}
	for _, c := range r.Ranked {
		if k > 0 && len(t.TopK) >= k {
			break
		}
		t.TopK = append(t.TopK, TransferEntry{Key: c.Key, TimeUS: c.TimeUS, Synthesizable: c.Synthesizable})
	}
	return t
}

// SaveTransfer writes the state as indented JSON (deterministic: fixed field
// order, no timestamps).
func SaveTransfer(path string, t *TransferState) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadTransfer reads a state written by SaveTransfer.
func LoadTransfer(path string) (*TransferState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t := &TransferState{}
	if err := json.Unmarshal(data, t); err != nil {
		return nil, fmt.Errorf("dse: transfer state %s: %w", path, err)
	}
	return t, nil
}
