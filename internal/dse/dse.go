// Package dse implements the design-space explorer the thesis leaves to
// future work (§4.11: "A design space explorer would benefit the performance
// of work by maximizing overall network performance and resource utilization
// rather than the performance of individual layers. We leave resource
// modeling and exploration for a DSE to future work.").
//
// Given a lowered network and a board, the explorer enumerates tiling
// configurations that satisfy the thesis's factor-selection rules (§4.11):
//
//  1. the unroll width must not exceed what external memory bandwidth can
//     feed at the design clock;
//  2. factors must evenly divide every layer's extent they tile (no
//     epilogues);
//  3. the design must fit — and, beyond the thesis's list, must route.
//
// Candidates are ranked by the modeled end-to-end forward-pass time of the
// folded deployment, using exactly the same AOC model the evaluation uses,
// so the search optimizes whole-network throughput rather than a single
// kernel's.
package dse

import (
	"fmt"
	"sort"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/ir"
	"repro/internal/relay"
	"repro/internal/topi"
)

// Candidate is one evaluated configuration.
type Candidate struct {
	Config host.FoldedConfig
	// PW is the 1x1-convolution tiling (the dominant knob).
	PW topi.ConvSched
	// Conv33 is the 3x3-convolution tiling when the network has general 3x3
	// layers beyond the stem.
	Conv33 topi.ConvSched

	Synthesizable bool
	FailReason    string
	FmaxMHz       float64
	DSPs          int
	LogicFrac     float64
	// TimeUS is the modeled forward-pass time (sum of kernel times; the
	// ranking objective).
	TimeUS float64
}

// Result is the explorer's outcome.
type Result struct {
	Board      *fpga.Board
	Net        string
	Candidates []Candidate // sorted: synthesizable first, fastest first
	Evaluated  int
	Pruned     int // rejected before compilation (divisibility/bandwidth)
}

// Best returns the fastest synthesizable candidate.
func (r *Result) Best() (*Candidate, error) {
	for i := range r.Candidates {
		if r.Candidates[i].Synthesizable {
			return &r.Candidates[i], nil
		}
	}
	return nil, fmt.Errorf("dse: no synthesizable configuration for %s on %s", r.Net, r.Board.Name)
}

// layerFacts summarizes the constraints the network's layers impose.
type layerFacts struct {
	// common divisors per tiled dimension across all layers of a group.
	pwW2, pwC2, pwC1 int
	c33W2, c33C1     int
	hasPW, has33     bool
	// strided 1x1 projections (ResNet shortcuts).
	projC1   int
	hasProj  bool
	dwW2     int
	hasDW    bool
	denseN   int
	hasDense bool
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func gatherFacts(layers []*relay.Layer) layerFacts {
	f := layerFacts{}
	acc := func(cur *int, v int) {
		if *cur == 0 {
			*cur = v
		} else {
			*cur = gcd(*cur, v)
		}
	}
	for _, l := range layers {
		switch l.Kind {
		case relay.KConv:
			w2 := l.OutShape[2]
			switch {
			case l.F == 1 && l.S == 1:
				f.hasPW = true
				acc(&f.pwW2, w2)
				acc(&f.pwC2, l.OutShape[0])
				acc(&f.pwC1, l.InShape[0])
			case l.F == 1:
				f.hasProj = true
				acc(&f.projC1, l.InShape[0])
			case l.F == 3:
				f.has33 = true
				acc(&f.c33W2, w2)
				acc(&f.c33C1, l.InShape[0])
			}
		case relay.KDepthwise:
			f.hasDW = true
			acc(&f.dwW2, l.OutShape[2])
		case relay.KDense:
			f.hasDense = true
			acc(&f.denseN, l.InShape[0])
		}
	}
	return f
}

// divisorsOf returns the divisors of n not exceeding cap, ascending.
func divisorsOf(n, cap int) []int {
	var out []int
	for d := 1; d <= n && d <= cap; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// Explore enumerates and ranks configurations for a network on a board.
// maxCandidates bounds the number of compiled designs (the expensive step);
// enumeration order prefers balanced tilings first.
func Explore(layers []*relay.Layer, net string, board *fpga.Board, maxCandidates int) (*Result, error) {
	if maxCandidates <= 0 {
		maxCandidates = 64
	}
	facts := gatherFacts(layers)
	res := &Result{Board: board, Net: net}

	// Rule 1 (§4.11): the widest memory access must not exceed the memory
	// system's bytes/cycle at a conservative clock.
	maxFloats := int(board.BytesPerCycleAt(board.BaseFmaxMHz*0.7) / 4)

	type pwCfg struct{ w2, c2, c1 int }
	var pws []pwCfg
	if facts.hasPW {
		for _, w2 := range divisorsOf(facts.pwW2, 14) {
			for _, c2 := range divisorsOf(facts.pwC2, 64) {
				for _, c1 := range divisorsOf(facts.pwC1, 32) {
					if w2*c1 > 4*maxFloats || w2 < 2 {
						res.Pruned++
						continue
					}
					pws = append(pws, pwCfg{w2, c2, c1})
				}
			}
		}
	} else {
		pws = []pwCfg{{1, 1, 1}}
	}
	// Prefer larger total unroll first (throughput), break ties toward
	// balanced C2/C1.
	sort.Slice(pws, func(i, j int) bool {
		vi := pws[i].w2 * pws[i].c2 * pws[i].c1
		vj := pws[j].w2 * pws[j].c2 * pws[j].c1
		if vi != vj {
			return vi > vj
		}
		di := abs(pws[i].c2 - pws[i].c1)
		dj := abs(pws[j].c2 - pws[j].c1)
		return di < dj
	})

	var c33s []topi.ConvSched
	if facts.has33 {
		for _, w2 := range divisorsOf(facts.c33W2, 7) {
			for _, c1 := range divisorsOf(facts.c33C1, 16) {
				if w2*c1*9 > 16*maxFloats {
					res.Pruned++
					continue
				}
				c33s = append(c33s, topi.OptSched(w2, 1, c1))
			}
		}
		sort.Slice(c33s, func(i, j int) bool {
			return c33s[i].W2vec*c33s[i].C1vec > c33s[j].W2vec*c33s[j].C1vec
		})
		if len(c33s) > 4 {
			c33s = c33s[:4] // the 3x3 knob is secondary; keep the frontier
		}
	} else {
		c33s = []topi.ConvSched{topi.OptSched(1, 1, 1)}
	}

	denseVec := 1
	if facts.hasDense {
		dv := divisorsOf(facts.denseN, 32)
		denseVec = dv[len(dv)-1]
	}
	dwVec := 1
	if facts.hasDW {
		dw := divisorsOf(facts.dwW2, 7)
		dwVec = dw[len(dw)-1]
	}

	for _, pw := range pws {
		// Cheap feasibility pre-check: the dominant kernel compiled alone.
		// A 1x1 kernel that cannot route by itself can never route inside
		// the full design, so skip the expensive whole-network build.
		if facts.hasPW {
			probe, err := topi.ConvParam("dse_probe", 1, 1,
				topi.OptSched(pw.w2, pw.c2, pw.c1), true, true, false, true)
			if err != nil {
				res.Pruned++
				continue
			}
			pd, err := aoc.Compile("dse-probe", []*ir.Kernel{probe.Op.Kernel}, board, aoc.DefaultOptions)
			if err != nil {
				return nil, err
			}
			if !pd.Synthesizable() {
				res.Pruned++
				continue
			}
		}
		for _, c33 := range c33s {
			if res.Evaluated >= maxCandidates {
				break
			}
			cfg := buildConfig(layers, facts, pw.w2, pw.c2, pw.c1, c33, dwVec, denseVec)
			cand, err := evaluate(layers, cfg, board)
			if err != nil {
				return nil, err
			}
			cand.PW = topi.OptSched(pw.w2, pw.c2, pw.c1)
			cand.Conv33 = c33
			res.Candidates = append(res.Candidates, *cand)
			res.Evaluated++
		}
		if res.Evaluated >= maxCandidates {
			break
		}
	}

	sort.SliceStable(res.Candidates, func(i, j int) bool {
		a, b := res.Candidates[i], res.Candidates[j]
		if a.Synthesizable != b.Synthesizable {
			return a.Synthesizable
		}
		if !a.Synthesizable {
			return false
		}
		return a.TimeUS < b.TimeUS
	})
	return res, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// buildConfig assembles a FoldedConfig covering every conv signature the
// network uses. Strided 1x1 projections get their own channel unroll (they
// are small in FLOPs but crippling at 1 MAC/cycle).
func buildConfig(layers []*relay.Layer, facts layerFacts, pwW2, pwC2, pwC1 int, c33 topi.ConvSched, dwVec, denseVec int) host.FoldedConfig {
	conv := map[string]topi.ConvSched{}
	dw := map[string]int{}
	projC1 := 1
	if facts.hasProj {
		pd := divisorsOf(facts.projC1, 8)
		projC1 = pd[len(pd)-1]
	}
	for _, l := range layers {
		switch l.Kind {
		case relay.KConv:
			sig := convSigLocal(l)
			switch {
			case l.F == 1 && l.S == 1:
				conv[sig] = topi.OptSched(pwW2, pwC2, pwC1)
			case l.F == 1:
				conv[sig] = topi.OptSched(1, 1, projC1)
			case l.F == 3:
				conv[sig] = c33
			default:
				conv[sig] = topi.OptSched(1, 1, 1)
			}
		case relay.KDepthwise:
			dw[fmt.Sprintf("dw%dx%ds%d", l.F, l.F, l.S)] = dwVec
		}
	}
	return host.FoldedConfig{Conv: conv, DWVec: dw, DenseVec: denseVec, Workaround: true}
}

// convSigLocal mirrors host's signature naming for conv groups.
func convSigLocal(l *relay.Layer) string {
	sig := fmt.Sprintf("conv%dx%ds%d", l.F, l.F, l.S)
	if l.HasSkip {
		sig += "_res"
	}
	if l.Relu6 {
		sig += "_r6"
	} else if !l.Relu {
		sig += "_lin"
	}
	return sig
}

// evaluate compiles the configuration and models one forward pass.
func evaluate(layers []*relay.Layer, cfg host.FoldedConfig, board *fpga.Board) (*Candidate, error) {
	dep, err := host.BuildFolded(layers, cfg, board, aoc.DefaultOptions)
	if err != nil {
		// Divisibility misses surface as build errors: an unsynthesizable
		// candidate, not an explorer failure.
		return &Candidate{Config: cfg, FailReason: "bind: " + err.Error()}, nil
	}
	c := &Candidate{Config: cfg, FmaxMHz: dep.Design.FmaxMHz, DSPs: dep.Design.TotalArea.DSPs}
	c.LogicFrac, _, _ = dep.Design.Utilization()
	if !dep.Design.Synthesizable() {
		c.FailReason = dep.Design.FailReason
		if !dep.Design.Routed {
			c.FailReason = "routing"
		}
		return c, nil
	}
	c.Synthesizable = true
	prof, err := dep.ProfileOps()
	if err != nil {
		return nil, err
	}
	for _, p := range prof {
		c.TimeUS += p.TimeUS
	}
	return c, nil
}
